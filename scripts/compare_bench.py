#!/usr/bin/env python3
"""Bench-regression gate: diff fresh BENCH_*.json records against a baseline.

Usage:
    scripts/compare_bench.py --baseline bench/baseline --fresh build/bench-json
        [--metric total_seconds] [--threshold 0.30] [--min-seconds 1e-3]

Both directories hold BenchRecorder output:
    {"bench": ..., "git_sha": ..., "build_type": ..., "records": [
        {"series": ..., <config fields>, <measurement fields>}, ...]}

Records are matched by (bench, build_type, series, config), where the
config is every field that is not a measurement (measurements: *_seconds,
result_bytes, prf_calls, median_speedup, queries_per_second, and shards_routed
— a routing outcome, not a timing, so it must not fork record identities or be
gated as a latency). build_type is part of the
identity so Debug/sanitized records can never be gated against a release
baseline — they simply do not match. Repeat records with the same identity
collapse to their median metric. The gate FAILS (exit 1) when a matching identity
regresses by more than --threshold (default: 30% median latency). Pairs
whose baseline median is below --min-seconds are skipped: sub-millisecond
paths (e.g. warm cache hits) are pure timer noise percentage-wise.

Identities present on only one side never fail the gate (benches come and
go); they are listed so a silently dropped bench is visible in the CI log.

Refresh the baseline with scripts/update_bench_baseline.sh.
"""

import argparse
import json
import pathlib
import statistics
import sys

MEASUREMENT_KEYS = {"result_bytes", "prf_calls", "median_speedup", "queries_per_second",
                    "shards_routed"}


def is_measurement(key):
    return key.endswith("_seconds") or key in MEASUREMENT_KEYS


def load_records(directory, metric):
    """Maps (bench, build_type, series, config) -> list of metric values."""
    groups = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        with open(path) as f:
            doc = json.load(f)
        bench = doc.get("bench", path.stem)
        build_type = doc.get("build_type", "unknown")
        for record in doc.get("records", []):
            if metric not in record:
                continue
            config = tuple(
                sorted((k, v) for k, v in record.items()
                       if k != "series" and not is_measurement(k)))
            key = (bench, build_type, record.get("series", "?"), config)
            groups.setdefault(key, []).append(float(record[metric]))
    return {key: statistics.median(values) for key, values in groups.items()}


def describe(key):
    bench, build_type, series, config = key
    cfg = " ".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                   for k, v in config)
    return f"{bench}/{series} ({build_type})" + (f" [{cfg}]" if cfg else "")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--metric", default="total_seconds")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fail on regressions above this fraction (default 0.30)")
    parser.add_argument("--min-seconds", type=float, default=1e-3,
                        help="skip pairs whose baseline median is below this")
    args = parser.parse_args()

    baseline = load_records(args.baseline, args.metric)
    fresh = load_records(args.fresh, args.metric)
    if not baseline:
        print(f"compare_bench: no baseline records under {args.baseline}", file=sys.stderr)
        return 1
    if not fresh:
        print(f"compare_bench: no fresh records under {args.fresh}", file=sys.stderr)
        return 1

    regressions = []
    compared = skipped = 0
    for key, base_median in sorted(baseline.items()):
        if key not in fresh:
            print(f"  [baseline-only] {describe(key)}")
            continue
        if base_median < args.min_seconds:
            skipped += 1
            continue
        compared += 1
        ratio = fresh[key] / base_median
        status = "ok"
        if ratio > 1 + args.threshold:
            status = "REGRESSION"
            regressions.append(key)
        elif ratio < 1 - args.threshold:
            status = "improved"
        print(f"  [{status:>10}] {describe(key)}: "
              f"{base_median:.6f}s -> {fresh[key]:.6f}s ({ratio:.2f}x baseline)")
    for key in sorted(set(fresh) - set(baseline)):
        print(f"  [fresh-only] {describe(key)}")

    print(f"compare_bench: {compared} compared, {skipped} sub-threshold skipped, "
          f"{len(regressions)} regression(s) at >{args.threshold:.0%} on {args.metric}")
    if regressions:
        for key in regressions:
            print(f"REGRESSION: {describe(key)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
