#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the test suite, then smoke-run the
# benches so every commit leaves a machine-readable perf trajectory.
#
#   ./scripts/check.sh                 # incremental build + tests + bench smoke
#   BUILD_DIR=out ./scripts/check.sh
#   SMOKE_BENCH=0 ./scripts/check.sh   # tests only
#
# Bench smoke mode runs a representative subset on a tiny synthetic table
# (SEABED_BENCH_ROWS=20000) and archives the BENCH_*.json records under
# $BUILD_DIR/bench-json/ — CI uploads that directory as a build artifact, so
# successive commits accumulate comparable perf records.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
SMOKE_BENCH="${SMOKE_BENCH:-1}"
SMOKE_ROWS="${SMOKE_ROWS:-20000}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
# --no-tests=error: a configure that silently disabled the suite (e.g. GTest
# missing) must fail the check, not pass it with zero tests.
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$JOBS"

if [[ "$SMOKE_BENCH" == "1" ]]; then
  JSON_DIR="$BUILD_DIR/bench-json"
  mkdir -p "$JSON_DIR"
  for bench in bench_fig6_latency_rows bench_fig7_scalability bench_fig9a_groupby; do
    echo "--- smoke: $bench (rows=$SMOKE_ROWS) ---"
    SEABED_BENCH_ROWS="$SMOKE_ROWS" SEABED_BENCH_JSON_DIR="$JSON_DIR" \
      "$BUILD_DIR/bench/$bench" > /dev/null
  done
  echo "bench smoke OK — records in $JSON_DIR:"
  ls -l "$JSON_DIR"
fi
