#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the test suite, then smoke-run the
# benches so every commit leaves a machine-readable perf trajectory.
#
#   ./scripts/check.sh                  # incremental build + tests + bench smoke
#   BUILD_DIR=out ./scripts/check.sh
#   SMOKE_BENCH=0 ./scripts/check.sh    # tests only
#   SEABED_SANITIZE=1 CTEST_ARGS="-LE slow" SMOKE_BENCH=0 ./scripts/check.sh
#                                       # the CI sanitizer job: Debug + ASan/UBSan,
#                                       # fast test tier, no benches
#   SEABED_SANITIZE=thread CTEST_ARGS="-LE slow" SMOKE_BENCH=0 ./scripts/check.sh
#                                       # the CI TSan job (data races in the
#                                       # serving layer); keeps optimization on
#   SEABED_NO_SIMD=1 SMOKE_BENCH=0 ./scripts/check.sh
#                                       # the CI scalar-fallback job: scan
#                                       # kernels compiled without intrinsics,
#                                       # full suite incl. the fuzz tier
#   COMPARE_BENCH=0 ./scripts/check.sh  # skip the bench-regression gate
#
# Bench smoke mode runs a representative subset on a tiny synthetic table
# (SEABED_BENCH_ROWS=20000) and archives the BENCH_*.json records under
# $BUILD_DIR/bench-json/ — CI uploads that directory as a build artifact, so
# successive commits accumulate comparable perf records. Records must embed
# git_sha and build_type keys (harness provenance) or archiving fails, and
# scripts/compare_bench.py gates >30% median-latency regressions against the
# committed bench/baseline/ snapshot.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
SMOKE_BENCH="${SMOKE_BENCH:-1}"
SMOKE_ROWS="${SMOKE_ROWS:-20000}"
SEABED_SANITIZE="${SEABED_SANITIZE:-0}"
SEABED_NO_SIMD="${SEABED_NO_SIMD:-0}"
CTEST_ARGS="${CTEST_ARGS:-}"
COMPARE_BENCH="${COMPARE_BENCH:-1}"

# Both flags are passed explicitly every time: CMake caches them, and a
# sanitizer run must not leak ASan/Debug into the next plain run of this
# script (or into update_bench_baseline.sh) through a shared build dir.
CMAKE_ARGS=()
if [[ "$SEABED_SANITIZE" == "1" ]]; then
  # Sanitizer flavor: Debug + ASan/UBSan (the CI matrix's second job).
  CMAKE_ARGS+=(-DSEABED_SANITIZE=ON -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Debug}")
elif [[ "$SEABED_SANITIZE" == "thread" ]]; then
  # TSan flavor: races hide at -O0, so keep optimization (RelWithDebInfo).
  CMAKE_ARGS+=(-DSEABED_SANITIZE=thread -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}")
else
  CMAKE_ARGS+=(-DSEABED_SANITIZE=OFF -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}")
fi
# Same cache hygiene for the scan-kernel escape hatch: pass it explicitly
# both ways so a scalar-fallback run cannot leak into the next plain run.
if [[ "$SEABED_NO_SIMD" == "1" ]]; then
  CMAKE_ARGS+=(-DSEABED_NO_SIMD=ON)
else
  CMAKE_ARGS+=(-DSEABED_NO_SIMD=OFF)
fi
# ccache keeps the two-job CI matrix under its timeout; harmless locally.
if command -v ccache > /dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
# --no-tests=error: a configure that silently disabled the suite (e.g. GTest
# missing) must fail the check, not pass it with zero tests.
# CTEST_ARGS="-LE slow" skips the slow tier (fuzz equivalence + determinism);
# see the ctest label docs in README.
# shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$JOBS" $CTEST_ARGS

if [[ "$SMOKE_BENCH" == "1" ]]; then
  JSON_DIR="$BUILD_DIR/bench-json"
  mkdir -p "$JSON_DIR"
  # Attribute records to the commit being checked even when the build dir
  # was configured at an older commit.
  SEABED_GIT_SHA="$(git rev-parse --short HEAD 2> /dev/null || echo unknown)"
  export SEABED_GIT_SHA
  for bench in bench_fig6_latency_rows bench_fig7_scalability bench_fig9a_groupby \
               bench_fig11_dashboard bench_fig12_probe bench_fig13_rebalance \
               bench_fig14_service bench_fig15_snapshot bench_fig16_prepared \
               bench_fig17_kernels bench_fig18_placement; do
    echo "--- smoke: $bench (rows=$SMOKE_ROWS) ---"
    SEABED_BENCH_ROWS="$SMOKE_ROWS" SEABED_BENCH_JSON_DIR="$JSON_DIR" \
      "$BUILD_DIR/bench/$bench" > /dev/null
  done
  # Refuse to archive unattributable records: every BENCH_*.json must carry
  # the provenance keys the cross-commit trajectory relies on.
  for record in "$JSON_DIR"/BENCH_*.json; do
    for key in git_sha build_type; do
      if ! grep -q "\"$key\"" "$record"; then
        echo "ERROR: $record is missing the \"$key\" key — refusing to archive" >&2
        exit 1
      fi
    done
  done
  echo "bench smoke OK — records in $JSON_DIR:"
  ls -l "$JSON_DIR"

  # The committed baseline is a release snapshot: sanitized timings are
  # 10-50x slower and must never be gated (or baselined) against it.
  if [[ "$COMPARE_BENCH" == "1" && "$SEABED_SANITIZE" == "0" && -d bench/baseline ]]; then
    echo "--- bench-regression gate (vs bench/baseline) ---"
    python3 scripts/compare_bench.py --baseline bench/baseline --fresh "$JSON_DIR"
  fi
fi
