#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the test suite.
#
#   ./scripts/check.sh            # incremental
#   BUILD_DIR=out ./scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
# --no-tests=error: a configure that silently disabled the suite (e.g. GTest
# missing) must fail the check, not pass it with zero tests.
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j "$JOBS"
