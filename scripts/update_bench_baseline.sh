#!/usr/bin/env bash
# Refreshes the committed bench baseline (bench/baseline/) that
# scripts/compare_bench.py gates CI against.
#
#   ./scripts/update_bench_baseline.sh            # build + smoke-run + snapshot
#   SMOKE_ROWS=50000 ./scripts/update_bench_baseline.sh
#
# Run it after an intentional perf change (or on a new reference machine),
# eyeball the compare_bench diff it prints, and commit the updated JSON.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
SMOKE_ROWS="${SMOKE_ROWS:-20000}"
BASELINE_DIR="bench/baseline"

# Explicit release flags: a prior sanitizer configure of the same build dir
# must not poison the committed baseline with ASan/Debug timings.
CMAKE_ARGS=(-DSEABED_SANITIZE=OFF -DSEABED_NO_SIMD=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo)
if command -v ccache > /dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"

STAGE_DIR="$(mktemp -d)"
trap 'rm -rf "$STAGE_DIR"' EXIT

SEABED_GIT_SHA="$(git rev-parse --short HEAD 2> /dev/null || echo unknown)"
export SEABED_GIT_SHA
for bench in bench_fig6_latency_rows bench_fig7_scalability bench_fig9a_groupby \
             bench_fig11_dashboard bench_fig12_probe bench_fig13_rebalance \
             bench_fig14_service bench_fig15_snapshot bench_fig16_prepared \
             bench_fig17_kernels bench_fig18_placement; do
  echo "--- baseline: $bench (rows=$SMOKE_ROWS) ---"
  SEABED_BENCH_ROWS="$SMOKE_ROWS" SEABED_BENCH_JSON_DIR="$STAGE_DIR" \
    "$BUILD_DIR/bench/$bench" > /dev/null
done

if [[ -d "$BASELINE_DIR" ]]; then
  echo "--- diff vs the previous baseline (informational) ---"
  python3 scripts/compare_bench.py --baseline "$BASELINE_DIR" --fresh "$STAGE_DIR" || true
fi

mkdir -p "$BASELINE_DIR"
rm -f "$BASELINE_DIR"/BENCH_*.json
cp "$STAGE_DIR"/BENCH_*.json "$BASELINE_DIR/"
echo "baseline updated:"
ls -l "$BASELINE_DIR"
echo "review and commit $BASELINE_DIR to pin the new reference."
