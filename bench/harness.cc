#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"

namespace seabed {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::strtoull(value, nullptr, 10);
}

ClusterConfig BenchClusterConfig(size_t workers) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.job_overhead_seconds = 0.25;
  cfg.task_overhead_seconds = 0.004;
  return cfg;
}

SyntheticHarness::Options SyntheticHarness::FromEnv() { return FromEnv(Options()); }

SyntheticHarness::Options SyntheticHarness::FromEnv(Options options) {
  options.rows = EnvU64("SEABED_BENCH_ROWS", options.rows);
  options.paillier_rows = EnvU64("SEABED_BENCH_PAILLIER_ROWS", options.paillier_rows);
  options.paillier_bits =
      static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS",
                              static_cast<uint64_t>(options.paillier_bits)));
  return options;
}

SyntheticHarness::SyntheticHarness(const Options& options)
    : options_(options), keys_(ClientKeys::FromSeed(options.seed)) {
  if (options_.paillier_rows == 0) {
    options_.paillier_rows = std::max<uint64_t>(1, options_.rows / 8);
  }

  SyntheticSpec spec;
  spec.rows = options_.rows;
  spec.seed = options_.seed;
  spec.group_cardinality = options_.group_cardinality;
  plain_ = MakeSyntheticTable(spec);

  const PlainSchema schema = SyntheticSchema(spec);
  PlannerOptions popts;
  popts.expected_rows = options_.rows;
  const EncryptionPlan plan = PlanEncryption(schema, SyntheticSampleQueries(spec), popts);

  const Encryptor encryptor(keys_);
  db_ = encryptor.Encrypt(*plain_, schema, plan);
  server_.RegisterTable(db_.table);

  if (options_.build_paillier) {
    SyntheticSpec small = spec;
    small.rows = options_.paillier_rows;
    plain_small_ = MakeSyntheticTable(small);
    Rng rng(options_.seed + 1);
    paillier_.emplace(Paillier::GenerateKey(rng, options_.paillier_bits));
    paillier_db_ = encryptor.EncryptPaillierBaseline(*plain_small_, schema, plan,
                                                     *paillier_, rng);
  }
}

ResultSet SyntheticHarness::RunNoEnc(const Query& q, const Cluster& cluster) const {
  return ExecutePlain(*plain_, q, cluster);
}

ResultSet SyntheticHarness::RunSeabed(const Query& q, const Cluster& cluster,
                                      TranslatorOptions topts) const {
  topts.cluster_workers = cluster.num_workers();
  const Translator translator(db_, keys_);
  const TranslatedQuery tq = translator.Translate(q, topts);
  const EncryptedResponse response = server_.Execute(tq.server, cluster);
  const Client client(db_, keys_);
  return client.Decrypt(response, tq, cluster);
}

ResultSet SyntheticHarness::RunPaillier(const Query& q, const Cluster& cluster) const {
  SEABED_CHECK_MSG(paillier_db_.has_value(), "harness built without the Paillier baseline");
  TranslatorOptions topts;
  topts.cluster_workers = cluster.num_workers();
  topts.enable_group_inflation = false;
  const Translator translator(*paillier_db_, keys_);
  const TranslatedQuery tq = translator.Translate(q, topts);
  const PaillierBaseline exec(*paillier_);
  ResultSet result = exec.Execute(*paillier_db_, tq, cluster);
  // Scale per-row server compute up to the full table size (the baseline
  // table is built smaller because Paillier dataset construction is slow).
  const double scale =
      static_cast<double>(options_.rows) / static_cast<double>(options_.paillier_rows);
  result.job.server_seconds *= scale;
  result.job.total_compute_seconds *= scale;
  return result;
}

double ProjectServerSeconds(const ResultSet& r, double scale, double job_overhead) {
  const double variable = r.job.server_seconds - job_overhead;
  return job_overhead + std::max(0.0, variable) * scale;
}

double ProjectTotalSeconds(const ResultSet& r, double scale, double job_overhead) {
  return ProjectServerSeconds(r, scale, job_overhead) +
         (r.network_seconds + r.client_seconds) * scale;
}

std::string LatencyLine(const std::string& label, const ResultSet& r, double scale) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-28s total %9.3f s  (server %9.3f  network %7.3f  client %7.3f)",
                label.c_str(), r.TotalSeconds() * scale, r.job.server_seconds * scale,
                r.network_seconds * scale, r.client_seconds * scale);
  return buf;
}

}  // namespace seabed
