#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"

// Provenance compiled in by CMake; "unknown" outside a configured build.
#ifndef SEABED_GIT_SHA_DEFAULT
#define SEABED_GIT_SHA_DEFAULT "unknown"
#endif
#ifndef SEABED_BUILD_TYPE
#define SEABED_BUILD_TYPE "unknown"
#endif

namespace seabed {
namespace {

// The commit this record is attributable to: the runner can override the
// configure-time value (a stale build dir would otherwise misattribute).
const char* RecordGitSha() {
  const char* sha = std::getenv("SEABED_GIT_SHA");
  return (sha != nullptr && *sha != '\0') ? sha : SEABED_GIT_SHA_DEFAULT;
}

SyntheticHarness::Options Normalize(SyntheticHarness::Options options) {
  if (options.paillier_rows == 0) {
    options.paillier_rows = std::max<uint64_t>(1, options.rows / 8);
  }
  return options;
}

SyntheticSpec SpecOf(const SyntheticHarness::Options& options, uint64_t rows) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = options.seed;
  spec.group_cardinality = options.group_cardinality;
  return spec;
}

SessionOptions BackendOptions(BackendKind backend, const SyntheticHarness::Options& options) {
  SessionOptions so;
  so.backend = backend;
  // Sessions run on whatever cluster the bench passes per call (UseCluster);
  // keep the session-owned fallback cluster minimal.
  so.cluster.num_workers = 1;
  so.planner.expected_rows = options.rows;
  so.paillier.modulus_bits = options.paillier_bits;
  so.paillier.seed = options.seed + 1;
  so.key_seed = options.seed;
  return so;
}

}  // namespace

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::strtoull(value, nullptr, 10);
}

ClusterConfig BenchClusterConfig(size_t workers) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.job_overhead_seconds = 0.25;
  cfg.task_overhead_seconds = 0.004;
  return cfg;
}

SyntheticHarness::Options SyntheticHarness::FromEnv() { return FromEnv(Options()); }

SyntheticHarness::Options SyntheticHarness::FromEnv(Options options) {
  options.rows = EnvU64("SEABED_BENCH_ROWS", options.rows);
  options.paillier_rows = EnvU64("SEABED_BENCH_PAILLIER_ROWS", options.paillier_rows);
  options.paillier_bits =
      static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS",
                              static_cast<uint64_t>(options.paillier_bits)));
  return options;
}

SyntheticHarness::SyntheticHarness(const Options& options)
    : options_(Normalize(options)),
      plain_(MakeSyntheticTable(SpecOf(options_, options_.rows))),
      noenc_(BackendOptions(BackendKind::kPlain, options_)),
      seabed_(BackendOptions(BackendKind::kSeabed, options_)) {
  const SyntheticSpec spec = SpecOf(options_, options_.rows);
  schema_ = SyntheticSchema(spec);
  const std::vector<Query> samples = SyntheticSampleQueries(spec);

  noenc_.Attach(plain_, schema_, samples);
  seabed_.Attach(plain_, schema_, samples);

  if (options_.build_paillier) {
    plain_small_ = MakeSyntheticTable(SpecOf(options_, options_.paillier_rows));
    paillier_ = std::make_unique<Session>(BackendOptions(BackendKind::kPaillier, options_));
    paillier_->Attach(plain_small_, schema_, samples);
  }
}

SessionOptions SyntheticHarness::MakeSessionOptions(BackendKind backend) const {
  return BackendOptions(backend, options_);
}

std::unique_ptr<Session> SyntheticHarness::MakeShardedSession(size_t shards) {
  SessionOptions so = BackendOptions(BackendKind::kShardedSeabed, options_);
  so.shards = shards;
  auto session = std::make_unique<Session>(std::move(so));
  session->AttachPlanned(plain_, schema_, seabed_.plan("synthetic"));
  return session;
}

std::unique_ptr<Session> SyntheticHarness::MakeCachingSession(BackendKind inner, size_t shards) {
  SessionOptions so = BackendOptions(BackendKind::kCachingSeabed, options_);
  so.cache.inner = inner;
  so.shards = shards;
  auto session = std::make_unique<Session>(std::move(so));
  // A private copy of the table: caching benches Append (invalidation
  // measurements), which must not grow the plain_ instance the harness's
  // other sessions share.
  session->AttachPlanned(CloneTable(*plain_), schema_, seabed_.plan("synthetic"));
  return session;
}

ResultSet SyntheticHarness::RunNoEnc(const Query& q, const Cluster& cluster,
                                     QueryStats* stats) {
  noenc_.UseCluster(&cluster);
  ResultSet r = noenc_.Execute(q, stats);
  // Drop the borrowed pointer before returning — `cluster` is often a
  // per-sweep-iteration local that dies before the next Run* call.
  noenc_.UseCluster(nullptr);
  return r;
}

ResultSet SyntheticHarness::RunSeabed(const Query& q, const Cluster& cluster,
                                      TranslatorOptions topts, QueryStats* stats) {
  seabed_.UseCluster(&cluster);
  seabed_.set_translator_options(topts);
  ResultSet r = seabed_.Execute(q, stats);
  seabed_.UseCluster(nullptr);
  return r;
}

ResultSet SyntheticHarness::RunPaillier(const Query& q, const Cluster& cluster,
                                        QueryStats* stats) {
  SEABED_CHECK_MSG(paillier_ != nullptr, "harness built without the Paillier baseline");
  paillier_->UseCluster(&cluster);
  ResultSet r = paillier_->Execute(q, stats);
  paillier_->UseCluster(nullptr);
  if (stats != nullptr) {
    // Scale per-row server compute up to the full table size (the baseline
    // table is built smaller because Paillier dataset construction is slow).
    const double scale =
        static_cast<double>(options_.rows) / static_cast<double>(options_.paillier_rows);
    stats->server_seconds *= scale;
    stats->job.server_seconds *= scale;
    stats->job.total_compute_seconds *= scale;
  }
  return r;
}

double ProjectServerSeconds(const QueryStats& stats, double scale, double job_overhead) {
  const double variable = stats.server_seconds - job_overhead;
  return job_overhead + std::max(0.0, variable) * scale;
}

double ProjectTotalSeconds(const QueryStats& stats, double scale, double job_overhead) {
  return ProjectServerSeconds(stats, scale, job_overhead) +
         (stats.network_seconds + stats.client_seconds) * scale;
}

std::string LatencyLine(const std::string& label, const QueryStats& stats, double scale) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-28s total %9.3f s  (server %9.3f  network %7.3f  client %7.3f)",
                label.c_str(), stats.TotalSeconds() * scale, stats.server_seconds * scale,
                stats.network_seconds * scale, stats.client_seconds * scale);
  return buf;
}

// --- machine-readable records -------------------------------------------------

BenchRecorder::BenchRecorder(std::string name) : name_(std::move(name)) {}

std::string BenchRecorder::path() const {
  const char* dir = std::getenv("SEABED_BENCH_JSON_DIR");
  std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return base + "/BENCH_" + name_ + ".json";
}

void BenchRecorder::Add(const std::string& series, std::map<std::string, double> fields) {
  records_.push_back({series, std::move(fields)});
}

void BenchRecorder::AddStats(const std::string& series, std::map<std::string, double> fields,
                             const QueryStats& stats) {
  fields.emplace("total_seconds", stats.TotalSeconds());
  fields.emplace("server_seconds", stats.server_seconds);
  fields.emplace("network_seconds", stats.network_seconds);
  fields.emplace("client_seconds", stats.client_seconds);
  fields.emplace("result_bytes", static_cast<double>(stats.result_bytes));
  fields.emplace("prf_calls", static_cast<double>(stats.prf_calls));
  Add(series, std::move(fields));
}

BenchRecorder::~BenchRecorder() {
  const std::string file = path();
  FILE* out = std::fopen(file.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "BenchRecorder: cannot write %s\n", file.c_str());
    return;
  }
  // git_sha + build_type make archived records attributable across commits;
  // scripts/check.sh refuses to archive files missing either key.
  std::fprintf(out, "{\"bench\": \"%s\", \"git_sha\": \"%s\", \"build_type\": \"%s\", \"records\": [",
               name_.c_str(), RecordGitSha(), SEABED_BUILD_TYPE);
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    std::fprintf(out, "%s\n  {\"series\": \"%s\"", i == 0 ? "" : ",", r.series.c_str());
    for (const auto& [key, value] : r.fields) {
      std::fprintf(out, ", \"%s\": %.9g", key.c_str(), value);
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out, "\n]}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu records)\n", file.c_str(), records_.size());
}

}  // namespace seabed
