// Figure 6 reproduction: end-to-end aggregation latency vs dataset size.
//
// Paper: NoEnc flat ~0.6 s; Seabed linear, 1.8–11 s worst case at 1.75 B
// rows; Paillier > 1000 s. Series: NoEnc, ASHE sel=100% (best case),
// ASHE sel=50% (worst case), Paillier.
//
// Two blocks are printed: raw laptop-scale measurements (SEABED_BENCH_ROWS,
// default 2 M) and the projection to the paper's row counts (fixed cluster
// overhead + per-row costs scaled by paper_rows / measured_rows).
#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace seabed {
namespace {

int Main() {
  const uint64_t max_rows = EnvU64("SEABED_BENCH_ROWS", 2000000);
  const size_t workers = 100;
  const ClusterConfig cfg = BenchClusterConfig(workers);
  const Cluster cluster(cfg);
  BenchRecorder recorder("fig6_latency_rows");

  struct Row {
    uint64_t rows;
    QueryStats noenc;
    QueryStats sel100;
    QueryStats sel50;
    QueryStats paillier;
  };
  std::vector<Row> rows_out;

  const std::vector<double> fractions = {0.142857, 0.285714, 0.571429, 1.0};
  for (double f : fractions) {
    Row out;
    out.rows = static_cast<uint64_t>(static_cast<double>(max_rows) * f);
    SyntheticHarness::Options options = SyntheticHarness::FromEnv();
    options.rows = out.rows;
    SyntheticHarness harness(options);
    const Query q100 = SyntheticSumQuery(100);
    const Query q50 = SyntheticSumQuery(50);
    harness.RunNoEnc(q100, cluster, &out.noenc);
    harness.RunSeabed(q100, cluster, {}, &out.sel100);
    harness.RunSeabed(q50, cluster, {}, &out.sel50);
    harness.RunPaillier(q100, cluster, &out.paillier);
    rows_out.push_back(std::move(out));
  }

  std::printf("=== Figure 6: end-to-end latency vs rows (workers=%zu) ===\n", workers);
  std::printf("--- measured (laptop scale) ---\n");
  std::printf("%12s %12s %18s %18s %14s\n", "rows", "NoEnc(s)", "ASHE sel=100%(s)",
              "ASHE sel=50%(s)", "Paillier(s)");
  for (const Row& r : rows_out) {
    std::printf("%12llu %12.3f %18.3f %18.3f %14.3f\n",
                static_cast<unsigned long long>(r.rows), r.noenc.TotalSeconds(),
                r.sel100.TotalSeconds(), r.sel50.TotalSeconds(), r.paillier.TotalSeconds());
    const double rows = static_cast<double>(r.rows);
    recorder.AddStats("noenc", {{"rows", rows}}, r.noenc);
    recorder.AddStats("seabed_sel100", {{"rows", rows}}, r.sel100);
    recorder.AddStats("seabed_sel50", {{"rows", rows}}, r.sel50);
    recorder.AddStats("paillier", {{"rows", rows}}, r.paillier);
  }

  std::printf("--- projected to paper scale (row counts x%.0f) ---\n",
              kPaperRows / static_cast<double>(max_rows));
  std::printf("%12s %12s %18s %18s %14s\n", "rows(paper)", "NoEnc(s)", "ASHE sel=100%(s)",
              "ASHE sel=50%(s)", "Paillier(s)");
  for (const Row& r : rows_out) {
    const double scale = kPaperRows / static_cast<double>(max_rows);
    const double paper_rows = static_cast<double>(r.rows) * scale;
    std::printf("%12.0f %12.3f %18.3f %18.3f %14.1f\n", paper_rows,
                ProjectTotalSeconds(r.noenc, scale, cfg.job_overhead_seconds),
                ProjectTotalSeconds(r.sel100, scale, cfg.job_overhead_seconds),
                ProjectTotalSeconds(r.sel50, scale, cfg.job_overhead_seconds),
                ProjectTotalSeconds(r.paillier, scale, cfg.job_overhead_seconds));
  }
  std::printf("\npaper targets at 1.75B rows: NoEnc ~0.6s flat, ASHE 1.8-11s, "
              "Paillier >1000s.\n");
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
