// Shared experiment harness for the paper-reproduction benchmarks.
//
// Builds the three systems under test over the synthetic workload —
//   NoEnc   : plaintext Spark-style execution,
//   Seabed  : ASHE/SPLASHE/DET/ORE pipeline,
//   Paillier: CryptDB/Monomi-style baseline —
// and runs queries end-to-end, returning the latency breakdown the paper
// plots (server / network / client).
//
// Environment knobs (all optional):
//   SEABED_BENCH_ROWS          synthetic row count       (default 2,000,000)
//   SEABED_BENCH_PAILLIER_ROWS baseline row count        (default rows / 8)
//   SEABED_BENCH_PAILLIER_BITS Paillier modulus bits     (default 512)
//   SEABED_BENCH_REPEAT        repetitions per point     (default 3)
#ifndef SEABED_BENCH_HARNESS_H_
#define SEABED_BENCH_HARNESS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/crypto/paillier.h"
#include "src/query/plain_executor.h"
#include "src/seabed/client.h"
#include "src/seabed/paillier_baseline.h"
#include "src/seabed/planner.h"
#include "src/seabed/server.h"
#include "src/workload/synthetic.h"

namespace seabed {

// Reads a uint64 environment knob with a default.
uint64_t EnvU64(const char* name, uint64_t fallback);

// Paper-style cluster config with `workers` logical cores.
ClusterConfig BenchClusterConfig(size_t workers);

// A built set of systems over one synthetic table.
class SyntheticHarness {
 public:
  struct Options {
    uint64_t rows = 2000000;
    uint64_t paillier_rows = 0;     // 0 = rows / 8
    uint64_t group_cardinality = 0;  // adds the grp column
    int paillier_bits = 512;
    bool build_paillier = true;
    uint64_t seed = 42;
  };

  // Reads row counts from the environment, then applies `options` overrides.
  static Options FromEnv(Options options);
  static Options FromEnv();

  explicit SyntheticHarness(const Options& options);

  ResultSet RunNoEnc(const Query& q, const Cluster& cluster) const;
  ResultSet RunSeabed(const Query& q, const Cluster& cluster,
                      TranslatorOptions topts = {}) const;
  // Runs on the (possibly smaller) baseline table; latencies are scaled by
  // rows / paillier_rows so the reported numbers are per-full-table.
  ResultSet RunPaillier(const Query& q, const Cluster& cluster) const;

  uint64_t rows() const { return options_.rows; }
  uint64_t paillier_rows() const { return options_.paillier_rows; }
  const EncryptedDatabase& seabed_db() const { return db_; }
  const Table& plain_table() const { return *plain_; }
  const Server& server() const { return server_; }
  const ClientKeys& keys() const { return keys_; }

 private:
  Options options_;
  ClientKeys keys_;
  std::shared_ptr<Table> plain_;         // full size
  std::shared_ptr<Table> plain_small_;   // baseline size
  EncryptedDatabase db_;
  std::optional<Paillier> paillier_;
  std::optional<EncryptedDatabase> paillier_db_;
  Server server_;
};

// Formats a latency line: "label  total  (server/network/client)".
std::string LatencyLine(const std::string& label, const ResultSet& r, double scale = 1.0);

// Projects a measured latency to the paper's dataset scale: the fixed job
// overhead stays constant, per-row costs (server compute, shuffle, network,
// client decryption) multiply by `scale`. This is how the benches report
// "at 1.75 B rows" numbers from laptop-scale measurements; both raw and
// projected values are printed. `job_overhead` is the cluster's fixed cost.
double ProjectTotalSeconds(const ResultSet& r, double scale, double job_overhead);
double ProjectServerSeconds(const ResultSet& r, double scale, double job_overhead);

// The paper's flagship dataset size (Synthetic-Large).
constexpr double kPaperRows = 1.75e9;

}  // namespace seabed

#endif  // SEABED_BENCH_HARNESS_H_
