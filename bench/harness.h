// Shared experiment harness for the paper-reproduction benchmarks.
//
// Builds the three systems under test over the synthetic workload — one
// seabed::Session per backend:
//   NoEnc   : plaintext Spark-style execution,
//   Seabed  : ASHE/SPLASHE/DET/ORE pipeline,
//   Paillier: CryptDB/Monomi-style baseline —
// and runs queries end-to-end, returning the latency breakdown the paper
// plots (server / network / client) as QueryStats.
//
// Environment knobs (all optional):
//   SEABED_BENCH_ROWS          synthetic row count       (default 2,000,000)
//   SEABED_BENCH_PAILLIER_ROWS baseline row count        (default rows / 8)
//   SEABED_BENCH_PAILLIER_BITS Paillier modulus bits     (default 512)
//   SEABED_BENCH_REPEAT        repetitions per point     (default 3)
//   SEABED_BENCH_JSON_DIR      output dir for BENCH_*.json (default ".")
#ifndef SEABED_BENCH_HARNESS_H_
#define SEABED_BENCH_HARNESS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/query/parser.h"
#include "src/seabed/session.h"
#include "src/workload/synthetic.h"

namespace seabed {

// Reads a uint64 environment knob with a default.
uint64_t EnvU64(const char* name, uint64_t fallback);

// Paper-style cluster config with `workers` logical cores.
ClusterConfig BenchClusterConfig(size_t workers);

// A built set of backend sessions over one synthetic table.
class SyntheticHarness {
 public:
  struct Options {
    uint64_t rows = 2000000;
    uint64_t paillier_rows = 0;      // 0 = rows / 8
    uint64_t group_cardinality = 0;  // adds the grp column
    int paillier_bits = 512;
    bool build_paillier = true;
    uint64_t seed = 42;
  };

  // Reads row counts from the environment, then applies `options` overrides.
  static Options FromEnv(Options options);
  static Options FromEnv();

  explicit SyntheticHarness(const Options& options);

  ResultSet RunNoEnc(const Query& q, const Cluster& cluster, QueryStats* stats = nullptr);
  ResultSet RunSeabed(const Query& q, const Cluster& cluster, TranslatorOptions topts = {},
                      QueryStats* stats = nullptr);
  // Runs on the (possibly smaller) baseline table; latencies are scaled by
  // rows / paillier_rows so the reported numbers are per-full-table.
  ResultSet RunPaillier(const Query& q, const Cluster& cluster, QueryStats* stats = nullptr);

  // Builds a kShardedSeabed session over the same synthetic table, reusing
  // the seabed session's encryption plan, so scale-out sweeps measure the
  // real fan-out/merge path instead of the analytical cluster model.
  std::unique_ptr<Session> MakeShardedSession(size_t shards);

  // Builds a kCachingSeabed session (result + translated-plan cache over
  // `inner`; `shards` applies when the inner backend is sharded) over the
  // same synthetic table, reusing the seabed session's encryption plan.
  std::unique_ptr<Session> MakeCachingSession(BackendKind inner, size_t shards = 1);

  // Session options for `backend` matching this harness's planner/key setup
  // — for fronts that own their session stack but must stay comparable (the
  // seabed::Service bench builds on these plus AttachPlanned(plain_shared(),
  // schema(), seabed().plan("synthetic"))).
  SessionOptions MakeSessionOptions(BackendKind backend) const;
  const PlainSchema& schema() const { return schema_; }
  std::shared_ptr<Table> plain_shared() const { return plain_; }

  uint64_t rows() const { return options_.rows; }
  uint64_t paillier_rows() const { return options_.paillier_rows; }
  Session& noenc() { return noenc_; }
  Session& seabed() { return seabed_; }
  Session& paillier() { return *paillier_; }
  const EncryptedDatabase& seabed_db() const { return seabed_.encrypted_database("synthetic"); }
  const Table& plain_table() const { return *plain_; }

 private:
  Options options_;
  std::shared_ptr<Table> plain_;        // full size
  std::shared_ptr<Table> plain_small_;  // baseline size
  PlainSchema schema_;
  Session noenc_;
  Session seabed_;
  std::unique_ptr<Session> paillier_;
};

// Formats a latency line: "label  total  (server/network/client)".
std::string LatencyLine(const std::string& label, const QueryStats& stats, double scale = 1.0);

// Projects a measured latency to the paper's dataset scale: the fixed job
// overhead stays constant, per-row costs (server compute, shuffle, network,
// client decryption) multiply by `scale`. This is how the benches report
// "at 1.75 B rows" numbers from laptop-scale measurements; both raw and
// projected values are printed. `job_overhead` is the cluster's fixed cost.
double ProjectTotalSeconds(const QueryStats& stats, double scale, double job_overhead);
double ProjectServerSeconds(const QueryStats& stats, double scale, double job_overhead);

// The paper's flagship dataset size (Synthetic-Large).
constexpr double kPaperRows = 1.75e9;

// Machine-readable results: one record per measured point, flushed to
// BENCH_<name>.json on destruction (SEABED_BENCH_JSON_DIR, default cwd) so
// successive runs leave a perf trajectory next to the human-readable output.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name);
  ~BenchRecorder();  // writes the file; failures are reported, not fatal

  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  // Adds a record for `series` (e.g. "seabed") with numeric fields.
  void Add(const std::string& series, std::map<std::string, double> fields);

  // Same, plus the QueryStats latency breakdown merged into the fields.
  void AddStats(const std::string& series, std::map<std::string, double> fields,
                const QueryStats& stats);

  std::string path() const;

 private:
  struct Record {
    std::string series;
    std::map<std::string, double> fields;
  };
  std::string name_;
  std::vector<Record> records_;
};

}  // namespace seabed

#endif  // SEABED_BENCH_HARNESS_H_
