// Figure 7 reproduction: server-side latency vs number of cluster cores.
//
// Paper: NoEnc bottoms out ~1 s at 20 cores; Seabed sel=100% reaches 1.35 s
// and sel=50% 8.0 s at 50 cores; Paillier stays ~1000 s even at 100 cores.
// The cluster model maps logical workers onto the host (see
// src/engine/cluster.h); the projected block scales per-row costs to the
// paper's 1.75 B rows so the knee of each curve is visible.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"

namespace seabed {
namespace {

int Main() {
  SyntheticHarness::Options options = SyntheticHarness::FromEnv();
  SyntheticHarness harness(options);
  const double scale = kPaperRows / static_cast<double>(harness.rows());
  BenchRecorder recorder("fig7_scalability");

  std::printf("=== Figure 7: server-side latency vs workers (rows=%llu, projected x%.0f) ===\n",
              static_cast<unsigned long long>(harness.rows()), scale);
  std::printf("%8s | %10s %16s %16s %12s | %10s %16s %16s %12s\n", "workers", "NoEnc",
              "Seabed sel=100%", "Seabed sel=50%", "Paillier", "NoEnc*", "Seabed100*",
              "Seabed50*", "Paillier*");

  const Query q100 = SyntheticSumQuery(100);
  const Query q50 = SyntheticSumQuery(50);
  for (size_t workers : {10, 20, 30, 50, 70, 100}) {
    const ClusterConfig cfg = BenchClusterConfig(workers);
    const Cluster cluster(cfg);
    QueryStats noenc, sel100, sel50, paillier;
    harness.RunNoEnc(q100, cluster, &noenc);
    harness.RunSeabed(q100, cluster, {}, &sel100);
    harness.RunSeabed(q50, cluster, {}, &sel50);
    harness.RunPaillier(q100, cluster, &paillier);
    std::printf("%8zu | %10.3f %16.3f %16.3f %12.3f | %10.2f %16.2f %16.2f %12.1f\n",
                workers, noenc.server_seconds, sel100.server_seconds,
                sel50.server_seconds, paillier.server_seconds,
                ProjectServerSeconds(noenc, scale, cfg.job_overhead_seconds),
                ProjectServerSeconds(sel100, scale, cfg.job_overhead_seconds),
                ProjectServerSeconds(sel50, scale, cfg.job_overhead_seconds),
                ProjectServerSeconds(paillier, scale, cfg.job_overhead_seconds));
    const double w = static_cast<double>(workers);
    recorder.AddStats("noenc", {{"workers", w}}, noenc);
    recorder.AddStats("seabed_sel100", {{"workers", w}}, sel100);
    recorder.AddStats("seabed_sel50", {{"workers", w}}, sel50);
    recorder.AddStats("paillier", {{"workers", w}}, paillier);
  }
  std::printf("\n(* = projected to 1.75B rows. Paper: NoEnc ~1s by 20 cores, Seabed "
              "1.35s/8.0s by 50 cores, Paillier ~1000s at 100 cores.)\n");

  // --- real fan-out: the sharded backend ------------------------------------
  // Unlike the sweep above (one modeled cluster, more cores), each shard
  // here is an independent server scanning its hash partition; latency is
  // the slowest shard plus the coordinator merge, both measured on the real
  // fan-out path.
  constexpr size_t kShardWorkers = 10;
  std::printf("\n=== Real fan-out: ShardedSeabed (%zu workers per shard) ===\n", kShardWorkers);
  std::printf("%8s | %16s %16s | %16s %16s\n", "shards", "Seabed sel=100%",
              "Seabed sel=50%", "merge@100%(s)", "slowest@100%(s)");
  for (size_t shards : {1, 2, 4, 8}) {
    const std::unique_ptr<Session> session = harness.MakeShardedSession(shards);
    const ClusterConfig cfg = BenchClusterConfig(kShardWorkers);
    const Cluster cluster(cfg);
    session->UseCluster(&cluster);
    QueryStats s100, s50;
    session->Execute(q100, &s100);
    session->Execute(q50, &s50);
    session->UseCluster(nullptr);
    double slowest = 0;
    for (const double s : s100.shard_server_seconds) {
      slowest = std::max(slowest, s);
    }
    std::printf("%8zu | %16.3f %16.3f | %16.6f %16.3f\n", shards, s100.server_seconds,
                s50.server_seconds, s100.merge_seconds, slowest);
    // merge_seconds is not among AddStats's standard fields; record it as an
    // extra tag per series.
    const double n = static_cast<double>(shards);
    recorder.AddStats("sharded_sel100",
                      {{"shards", n}, {"merge_seconds", s100.merge_seconds}}, s100);
    recorder.AddStats("sharded_sel50",
                      {{"shards", n}, {"merge_seconds", s50.merge_seconds}}, s50);
  }
  std::printf("\n(Sharded rows are real fan-out measurements — each shard is an "
              "independent %zu-worker cluster; JSON records carry the shard count.)\n",
              kShardWorkers);
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
