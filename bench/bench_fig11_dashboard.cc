// "Figure 11" (beyond the paper): dashboard refresh latency with the caching
// backend.
//
// The paper's Section 5 workload study found BI dashboards re-issue a small
// set of aggregate shapes over and over. This bench models one dashboard of
// five panels refreshed repeatedly against kCachingSeabed (inner: the
// standard Seabed pipeline):
//
//   * round 0 is COLD — every panel misses, runs the full encrypted
//     pipeline, and seeds the result + translated-plan caches;
//   * rounds 1..N are WARM — repeats are answered from the client-side
//     result cache without the untrusted server seeing a query;
//   * an append then lands (invalidation), and one POST-APPEND round pays
//     the miss again — on fresh data, with translation still memoized.
//
// Reported per panel: cold latency, median warm latency, post-append
// latency, and the cold/warm speedup. The warm path must be >= 5x cheaper
// at the median; the bench prints a REGRESSION line otherwise (the CI bench
// gate compares the recorded medians across commits).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace seabed {
namespace {

struct Panel {
  const char* label;
  Query query;
};

std::vector<Panel> DashboardPanels(uint64_t groups) {
  std::vector<Panel> panels;
  panels.push_back({"sum_sel10", SyntheticSumQuery(10)});
  panels.push_back({"sum_sel25", SyntheticSumQuery(25)});
  {
    Query q = SyntheticSumQuery(50);
    q.Count("n").Avg("value", "mean");
    panels.push_back({"sum_count_avg_sel50", q});
  }
  panels.push_back({"groupby", SyntheticGroupByQuery(groups)});
  {
    // Same shape as sum_sel25 with reordered-equivalent filters would
    // collapse onto one fingerprint; a distinct literal stays a distinct
    // panel — exactly how a parameterized dashboard behaves.
    Query q = SyntheticSumQuery(75);
    q.Count("n");
    panels.push_back({"sum_count_sel75", q});
  }
  return panels;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int Main() {
  const uint64_t rows = EnvU64("SEABED_BENCH_ROWS", 2000000);
  // At least one warm round: the medians below index into the warm samples.
  const uint64_t warm_rounds = std::max<uint64_t>(1, EnvU64("SEABED_BENCH_DASHBOARD_ROUNDS", 5));
  const uint64_t groups = 100;
  const Cluster cluster(BenchClusterConfig(16));
  BenchRecorder recorder("fig11_dashboard");

  SyntheticHarness::Options options = SyntheticHarness::FromEnv();
  options.rows = rows;
  options.group_cardinality = groups;
  options.build_paillier = false;  // the comparison here is cold-vs-warm Seabed
  SyntheticHarness harness(options);
  std::unique_ptr<Session> session = harness.MakeCachingSession(BackendKind::kSeabed);
  session->UseCluster(&cluster);

  std::vector<Panel> panels = DashboardPanels(groups);
  std::printf("=== Figure 11: dashboard refresh with the caching backend "
              "(rows=%llu, %llu warm rounds) ===\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(warm_rounds));
  std::printf("%-22s %12s %12s %14s %10s\n", "panel", "cold(s)", "warm-med(s)",
              "post-append(s)", "speedup");

  std::vector<double> cold_latencies;
  std::vector<double> warm_latencies;
  std::vector<QueryStats> cold_stats(panels.size());
  std::vector<std::vector<QueryStats>> warm_stats(panels.size());

  for (size_t i = 0; i < panels.size(); ++i) {
    session->Execute(panels[i].query, &cold_stats[i]);
  }
  for (uint64_t round = 0; round < warm_rounds; ++round) {
    for (size_t i = 0; i < panels.size(); ++i) {
      QueryStats stats;
      session->Execute(panels[i].query, &stats);
      warm_stats[i].push_back(stats);
    }
  }

  // The append invalidates every cached result touching the table; the next
  // refresh pays one miss per panel, with translation still memoized.
  SyntheticSpec batch_spec;
  batch_spec.rows = std::max<uint64_t>(1, rows / 100);
  batch_spec.seed = 4242;
  batch_spec.group_cardinality = groups;
  const auto batch = MakeSyntheticTable(batch_spec);
  session->Append("synthetic", *batch);

  std::vector<QueryStats> post_append_stats(panels.size());
  for (size_t i = 0; i < panels.size(); ++i) {
    session->Execute(panels[i].query, &post_append_stats[i]);
  }

  for (size_t i = 0; i < panels.size(); ++i) {
    const QueryStats& cold = cold_stats[i];
    std::vector<double> warm_totals;
    for (const QueryStats& s : warm_stats[i]) {
      warm_totals.push_back(s.TotalSeconds() + s.cache_lookup_seconds);
    }
    // The warm-round stats closest to the median, for the full breakdown.
    std::vector<QueryStats> sorted = warm_stats[i];
    std::sort(sorted.begin(), sorted.end(), [](const QueryStats& a, const QueryStats& b) {
      return a.TotalSeconds() + a.cache_lookup_seconds <
             b.TotalSeconds() + b.cache_lookup_seconds;
    });
    const QueryStats& warm = sorted[sorted.size() / 2];
    const QueryStats& post = post_append_stats[i];

    const double cold_total = cold.TotalSeconds() + cold.cache_lookup_seconds;
    const double warm_total = Median(warm_totals);
    const double post_total = post.TotalSeconds() + post.cache_lookup_seconds;
    const double speedup = warm_total > 0 ? cold_total / warm_total : 0;
    cold_latencies.push_back(cold_total);
    warm_latencies.push_back(warm_total);

    std::printf("%-22s %12.4f %12.6f %14.4f %9.0fx%s\n", panels[i].label, cold_total,
                warm_total, post_total, speedup, warm.cache_hit ? "" : "  [NOT CACHED?]");

    const double panel = static_cast<double>(i);
    recorder.AddStats("cold", {{"panel", panel}, {"cache_hit", 0},
                               {"plan_cache_hit", cold.plan_cache_hit ? 1.0 : 0.0}},
                      cold);
    recorder.AddStats("warm",
                      {{"panel", panel}, {"cache_hit", warm.cache_hit ? 1.0 : 0.0},
                       {"cache_lookup_seconds", warm.cache_lookup_seconds}},
                      warm);
    recorder.AddStats("post_append",
                      {{"panel", panel}, {"cache_hit", post.cache_hit ? 1.0 : 0.0},
                       {"plan_cache_hit", post.plan_cache_hit ? 1.0 : 0.0}},
                      post);
  }

  const double median_cold = Median(cold_latencies);
  const double median_warm = Median(warm_latencies);
  const double median_speedup = median_warm > 0 ? median_cold / median_warm : 0;
  std::printf("\nmedian cold %.4f s, median warm %.6f s — %.0fx\n", median_cold, median_warm,
              median_speedup);
  if (median_speedup < 5.0) {
    std::printf("REGRESSION: warm path is less than 5x faster than cold\n");
  }
  recorder.Add("summary", {{"median_cold_seconds", median_cold},
                           {"median_warm_seconds", median_warm},
                           {"median_speedup", median_speedup}});
  return median_speedup < 5.0 ? 1 : 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
