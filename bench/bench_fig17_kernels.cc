// "Figure 17" (beyond the paper): vectorized scan kernels vs the legacy
// row-at-a-time server loop.
//
// Server::Execute evaluates encrypted predicates over every row of the fact
// table. The row-at-a-time loop pays a branchy per-row switch per predicate;
// the vectorized path (src/seabed/scan_kernels.h) fills selection bitmaps a
// row group at a time with SIMD compares over the contiguous ciphertext
// columns — DET tokens and plain int64s 2-4 rows per compare, ORE via one
// 16-byte equality that finds the first differing u-slot byte in a single
// instruction instead of a byte walk.
//
// This bench runs selective filter queries single-threaded under both scan
// modes (SetServerScanMode A/Bs one binary) and gates on the median
// server-time speedup:
//
//   * >= 4x on the DET-equality and ORE-range points when SIMD kernels are
//     compiled in (ScanKernelIsaName() != "scalar");
//   * >= 0.8x (no catastrophic regression) on a SEABED_NO_SIMD or
//     unsupported-ISA build, where both paths are scalar and the columnar
//     restructuring alone decides the ratio.
//
// Single worker and zeroed cluster/link overheads: the kernels change
// per-row scan cost, and fixed dispatch constants identical across the two
// modes would only dilute the ratio the gate checks. Selectivities are low
// (0.1-3%) so aggregation work — identical in both modes — stays negligible
// against the scan.
//
// Exit status is the CI gate.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/seabed/scan_kernels.h"

namespace seabed {
namespace {

// ts values cluster in a narrow band above this pivot (like timestamps in
// one epoch): ORE ciphertexts of nearby plaintexts share long prefixes,
// which is exactly where the scalar byte-walk comparison is slowest.
constexpr int64_t kTsPivot = 1'600'000'000;
constexpr int64_t kTsSpan = 1 << 20;

// seg frequencies, published to the planner as the ValueDistribution.
constexpr struct {
  const char* seg;
  double frequency;
} kSegments[] = {
    {"rare", 0.001}, {"s1", 0.049}, {"s2", 0.15}, {"s3", 0.30}, {"s4", 0.50},
};

std::shared_ptr<Table> MakeTable(uint64_t rows) {
  auto table = std::make_shared<Table>("scan");
  auto seg = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto value = std::make_shared<Int64Column>();
  Rng rng(1717);
  for (uint64_t i = 0; i < rows; ++i) {
    double draw = rng.NextDouble();
    const char* chosen = kSegments[std::size(kSegments) - 1].seg;
    for (const auto& s : kSegments) {
      if (draw < s.frequency) {
        chosen = s.seg;
        break;
      }
      draw -= s.frequency;
    }
    seg->Append(chosen);
    ts->Append(kTsPivot + rng.Range(0, kTsSpan - 1));
    value->Append(rng.Range(0, 1000));
  }
  table->AddColumn("seg", seg);
  table->AddColumn("ts", ts);
  table->AddColumn("value", value);
  return table;
}

PlainSchema ScanSchema() {
  PlainSchema schema;
  schema.table_name = "scan";
  ValueDistribution dist;
  for (const auto& s : kSegments) {
    dist.values.push_back(s.seg);
    dist.frequencies.push_back(s.frequency);
  }
  schema.columns.push_back({"seg", ColumnType::kString, true, dist});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"value", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

std::vector<Query> ScanSamples() {
  // seg in a GROUP BY -> DET (a SPLASHE-splayed filter leaves no server
  // predicate to vectorize); a range filter on ts -> ORE; Sum(value) -> ASHE.
  std::vector<Query> samples;
  Query q;
  q.table = "scan";
  q.Sum("value").Count();
  q.Where("seg", CmpOp::kEq, std::string("rare"));
  q.Where("ts", CmpOp::kLt, kTsPivot + 1000);
  q.GroupBy("seg");
  samples.push_back(q);
  return samples;
}

struct Point {
  const char* label;
  bool gated;  // included in the >= 4x acceptance check
  Query query;
};

std::vector<Point> Points() {
  std::vector<Point> points;
  {
    // Selective DET equality (~0.1%): the pure 64-bit token compare kernel.
    Query q;
    q.table = "scan";
    q.Count("n");
    q.Where("seg", CmpOp::kEq, std::string("rare"));
    points.push_back({"det_eq", true, std::move(q)});
  }
  {
    // Selective ORE range (~0.1%): the 16-byte first-differing-slot kernel.
    Query q;
    q.table = "scan";
    q.Count("n");
    q.Where("ts", CmpOp::kLt, kTsPivot + kTsSpan / 1024);
    points.push_back({"ore_lt", true, std::move(q)});
  }
  {
    // Compound: DET kills ~99.9% of each row group first, the ORE kernel
    // then skips the dead words entirely.
    Query q;
    q.table = "scan";
    q.Count("n");
    q.Where("seg", CmpOp::kEq, std::string("rare"));
    q.Where("ts", CmpOp::kLt, kTsPivot + kTsSpan / 4);
    points.push_back({"det+ore", true, std::move(q)});
  }
  {
    // End-to-end ASHE sum over the DET selection (ungated: ID-list encoding
    // and client decryption add identical mode-independent work).
    Query q;
    q.table = "scan";
    q.Sum("value", "total");
    q.Where("seg", CmpOp::kEq, std::string("rare"));
    points.push_back({"sum", false, std::move(q)});
  }
  return points;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int Main() {
  // Floor of 200k rows: the vectorized scan of a smoke-sized 20k-row table
  // finishes in single-digit microseconds and the ratio would gate timer
  // noise rather than kernel throughput.
  const uint64_t rows = std::max<uint64_t>(200000, EnvU64("SEABED_BENCH_ROWS", 2000000));
  const uint64_t repeat = std::max<uint64_t>(5, EnvU64("SEABED_BENCH_REPEAT", 5));
  BenchRecorder recorder("fig17_kernels");

  SessionOptions options;
  options.backend = BackendKind::kSeabed;
  // Single worker: the gate measures single-thread scan throughput; more
  // workers would just divide both modes' times by the same constant and
  // add dispatch jitter.
  options.cluster.num_workers = 1;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.cluster.client_link.latency_seconds = 0;
  options.planner.expected_rows = rows;
  Session session(std::move(options));
  session.Attach(MakeTable(rows), ScanSchema(), ScanSamples());
  {
    ProbeOptions popts = session.probe_options();
    popts.mode = ProbeMode::kOff;  // probe pruning would shrink the very scan under test
    session.set_probe_options(popts);
  }

  const bool simd = std::string(ScanKernelIsaName()) != "scalar";
  const double required = simd ? 4.0 : 0.8;

  std::printf("=== Figure 17: vectorized scan kernels vs row-at-a-time "
              "(rows=%llu, repeat=%llu, isa=%s, 1 worker) ===\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(repeat), ScanKernelIsaName());
  std::printf("%-8s %14s %14s %9s %8s\n", "point", "row(s)", "vector(s)", "speedup", "gate");

  bool gate_failed = false;
  const std::vector<Point> points = Points();
  for (const Point& point : points) {
    double medians[2] = {};
    constexpr ScanMode kModes[] = {ScanMode::kRowAtATime, ScanMode::kVectorized};
    const char* kSeries[] = {"rowatatime", "vectorized"};
    uint64_t touched[2] = {};
    for (size_t m = 0; m < 2; ++m) {
      SetServerScanMode(kModes[m]);
      session.Execute(point.query, nullptr);  // untimed warm-up
      std::vector<double> server;
      for (uint64_t r = 0; r < repeat; ++r) {
        QueryStats stats;
        session.Execute(point.query, &stats);
        server.push_back(stats.server_seconds);
        touched[m] = stats.rows_touched;
        recorder.AddStats(kSeries[m], {{"point", static_cast<double>(&point - points.data())}},
                          stats);
      }
      medians[m] = Median(std::move(server));
    }
    SetServerScanMode(ScanMode::kVectorized);

    const double speedup = medians[1] > 0 ? medians[0] / medians[1] : 0;
    recorder.Add(point.label, {{"median_speedup", speedup}});
    const bool pass = !point.gated || speedup >= required;
    std::printf("%-8s %14.6f %14.6f %8.1fx %8s\n", point.label, medians[0], medians[1],
                speedup, point.gated ? (pass ? "pass" : "FAIL") : "-");
    if (touched[0] != touched[1]) {
      std::printf("REGRESSION: %s touched %llu rows vectorized vs %llu row-at-a-time\n",
                  point.label, static_cast<unsigned long long>(touched[1]),
                  static_cast<unsigned long long>(touched[0]));
      gate_failed = true;
    }
    if (!pass) {
      std::printf("REGRESSION: %s vectorized is only %.2fx the row-at-a-time scan "
                  "(>= %.1fx required, isa=%s)\n",
                  point.label, speedup, required, ScanKernelIsaName());
      gate_failed = true;
    }
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
