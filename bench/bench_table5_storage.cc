// Table 5 reproduction: dataset storage footprint under NoEnc, Seabed and
// Paillier.
//
// Paper (selected rows):
//   Synthetic-Large  1.75B rows: disk 35.4 / 70.4 / 521.1 GB
//   BDB-Rankings       90M rows: disk  7.9 / 12   /  58.3 GB
//   Ad Analytics      759M rows: disk 132.3/142.45/ 176.3 GB
// Shapes to reproduce: Seabed ~2x NoEnc on narrow tables (id + pad per
// cell), Paillier ~15x (2048-bit ciphertexts), and much smaller relative
// overheads on wide tables where most columns stay plaintext.
#include <cstdio>

#include "bench/harness.h"
#include "src/engine/serialize.h"
#include "src/workload/ad_analytics.h"
#include "src/workload/bdb.h"

namespace seabed {
namespace {

// Seabed stores one explicit 8-byte ID column per table (our AsheColumn
// keeps ids implicit); Table 5 accounting adds it back when ASHE is present.
size_t IdColumnBytes(const Table& t, uint64_t rows) {
  for (const auto& name : t.column_names()) {
    if (t.GetColumn(name)->type() == ColumnType::kAshe) {
      return rows * 8;
    }
  }
  return 0;
}

struct Footprint {
  size_t disk = 0;    // serialized (the paper's "Disk size")
  size_t memory = 0;  // in-memory columnar ("Memory size")
};

Footprint Measure(const Table& t, size_t extra_id_bytes = 0) {
  Footprint f;
  f.disk = SerializedTableSize(t) + extra_id_bytes;
  f.memory = t.ByteSize() + extra_id_bytes;
  return f;
}

void PrintRow(const char* label, uint64_t rows, const Footprint& noenc, const Footprint& seabed,
              const Footprint& paillier, uint64_t pscale, BenchRecorder& recorder) {
  std::printf("%-18s %10llu | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f | %6.1fx %6.1fx\n", label,
              static_cast<unsigned long long>(rows), noenc.disk / 1e6, seabed.disk / 1e6,
              paillier.disk * static_cast<double>(pscale) / 1e6, noenc.memory / 1e6,
              seabed.memory / 1e6, paillier.memory * static_cast<double>(pscale) / 1e6,
              static_cast<double>(seabed.disk) / noenc.disk,
              paillier.disk * static_cast<double>(pscale) / noenc.disk);
  recorder.Add(label, {{"rows", static_cast<double>(rows)},
                       {"noenc_disk_bytes", static_cast<double>(noenc.disk)},
                       {"seabed_disk_bytes", static_cast<double>(seabed.disk)},
                       {"paillier_disk_bytes",
                        static_cast<double>(paillier.disk) * static_cast<double>(pscale)},
                       {"noenc_memory_bytes", static_cast<double>(noenc.memory)},
                       {"seabed_memory_bytes", static_cast<double>(seabed.memory)},
                       {"paillier_memory_bytes",
                        static_cast<double>(paillier.memory) * static_cast<double>(pscale)}});
}

SessionOptions StorageSessionOptions(BackendKind backend, uint64_t expected_rows,
                                     double storage_budget = 0) {
  SessionOptions options;
  options.backend = backend;
  options.cluster.num_workers = 1;
  options.planner.expected_rows = expected_rows;
  options.planner.max_storage_expansion = storage_budget;
  options.key_seed = 21;
  // 1024-bit modulus = the paper's 2048-bit ciphertexts.
  options.paillier.modulus_bits =
      static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS", 1024));
  options.paillier.seed = 5;
  return options;
}

int Main() {
  BenchRecorder recorder("table5_storage");
  std::printf("=== Table 5: dataset sizes (MB, scaled row counts) ===\n");
  std::printf("%-18s %10s | %9s %9s %9s | %9s %9s %9s | %6s %6s\n", "dataset", "rows",
              "disk:NoEnc", "Seabed", "Paillier", "mem:NoEnc", "Seabed", "Paillier", "Sbd/x",
              "Pail/x");

  // Synthetic (narrow: 1 measure) — the Synthetic-Large/Small rows.
  {
    SyntheticSpec spec;
    spec.rows = EnvU64("SEABED_BENCH_ROWS", 500000);
    const auto plain = MakeSyntheticTable(spec);
    const PlainSchema schema = SyntheticSchema(spec);
    const auto samples = SyntheticSampleQueries(spec);
    Session seabed(StorageSessionOptions(BackendKind::kSeabed, spec.rows));
    seabed.Attach(plain, schema, samples);
    const uint64_t pscale = 16;
    SyntheticSpec small = spec;
    small.rows = spec.rows / pscale;
    Session paillier(StorageSessionOptions(BackendKind::kPaillier, spec.rows));
    paillier.Attach(MakeSyntheticTable(small), schema, samples);
    const Table& enc = *seabed.encrypted_database("synthetic").table;
    PrintRow("Synthetic", spec.rows, Measure(*plain), Measure(enc, IdColumnBytes(enc, spec.rows)),
             Measure(*paillier.encrypted_database("synthetic").table), pscale, recorder);
  }

  // BDB Rankings + UserVisits.
  {
    BdbSpec spec;
    spec.rankings_rows = EnvU64("SEABED_BENCH_BDB_RANKINGS", 90000);
    spec.uservisits_rows = EnvU64("SEABED_BENCH_BDB_USERVISITS", 200000);
    const auto rankings = MakeRankingsTable(spec);
    const auto uservisits = MakeUserVisitsTable(spec);
    Session seabed(StorageSessionOptions(BackendKind::kSeabed, spec.uservisits_rows));
    seabed.Attach(rankings, RankingsSchema(), RankingsSampleQueries());
    seabed.Attach(uservisits, UserVisitsSchema(), UserVisitsSampleQueries());
    const uint64_t pscale = 16;
    BdbSpec small = spec;
    small.rankings_rows /= pscale;
    small.uservisits_rows /= pscale;
    Session paillier(StorageSessionOptions(BackendKind::kPaillier, small.uservisits_rows));
    paillier.Attach(MakeRankingsTable(small), RankingsSchema(), RankingsSampleQueries());
    paillier.Attach(MakeUserVisitsTable(small), UserVisitsSchema(), UserVisitsSampleQueries());
    const Table& renc = *seabed.encrypted_database("rankings").table;
    const Table& uenc = *seabed.encrypted_database("uservisits").table;
    PrintRow("BDB-Rankings", spec.rankings_rows, Measure(*rankings),
             Measure(renc, IdColumnBytes(renc, spec.rankings_rows)),
             Measure(*paillier.encrypted_database("rankings").table), pscale, recorder);
    PrintRow("BDB-UserVisits", spec.uservisits_rows, Measure(*uservisits),
             Measure(uenc, IdColumnBytes(uenc, spec.uservisits_rows)),
             Measure(*paillier.encrypted_database("uservisits").table), pscale, recorder);
  }

  // Ad Analytics (wide: 33 dims + 18 measures, storage budget 3x).
  {
    AdAnalyticsSpec spec;
    spec.rows = EnvU64("SEABED_BENCH_ADA_ROWS", 100000);
    const auto table = MakeAdAnalyticsTable(spec);
    const PlainSchema schema = AdAnalyticsSchema(spec);
    const auto samples = AdAnalyticsSampleQueries(spec);
    Session seabed(StorageSessionOptions(BackendKind::kSeabed, spec.rows, 3.0));
    seabed.Attach(table, schema, samples);
    const uint64_t pscale = 16;
    AdAnalyticsSpec small = spec;
    small.rows = spec.rows / pscale;
    Session paillier(StorageSessionOptions(BackendKind::kPaillier, spec.rows, 3.0));
    paillier.Attach(MakeAdAnalyticsTable(small), schema, samples);
    const Table& enc = *seabed.encrypted_database("ad_analytics").table;
    PrintRow("AdAnalytics", spec.rows, Measure(*table), Measure(enc, IdColumnBytes(enc, spec.rows)),
             Measure(*paillier.encrypted_database("ad_analytics").table), pscale, recorder);
  }
  std::printf("\nPaillier tables built at 1/16 scale and scaled back (construction cost).\n");
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
