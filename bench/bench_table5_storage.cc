// Table 5 reproduction: dataset storage footprint under NoEnc, Seabed and
// Paillier.
//
// Paper (selected rows):
//   Synthetic-Large  1.75B rows: disk 35.4 / 70.4 / 521.1 GB
//   BDB-Rankings       90M rows: disk  7.9 / 12   /  58.3 GB
//   Ad Analytics      759M rows: disk 132.3/142.45/ 176.3 GB
// Shapes to reproduce: Seabed ~2x NoEnc on narrow tables (id + pad per
// cell), Paillier ~15x (2048-bit ciphertexts), and much smaller relative
// overheads on wide tables where most columns stay plaintext.
#include <cstdio>

#include "bench/harness.h"
#include "src/engine/serialize.h"
#include "src/workload/ad_analytics.h"
#include "src/workload/bdb.h"

namespace seabed {
namespace {

// Seabed stores one explicit 8-byte ID column per table (our AsheColumn
// keeps ids implicit); Table 5 accounting adds it back when ASHE is present.
size_t IdColumnBytes(const Table& t, uint64_t rows) {
  for (const auto& name : t.column_names()) {
    if (t.GetColumn(name)->type() == ColumnType::kAshe) {
      return rows * 8;
    }
  }
  return 0;
}

struct Footprint {
  size_t disk = 0;    // serialized (the paper's "Disk size")
  size_t memory = 0;  // in-memory columnar ("Memory size")
};

Footprint Measure(const Table& t, size_t extra_id_bytes = 0) {
  Footprint f;
  f.disk = SerializedTableSize(t) + extra_id_bytes;
  f.memory = t.ByteSize() + extra_id_bytes;
  return f;
}

void PrintRow(const char* label, uint64_t rows, const Footprint& noenc, const Footprint& seabed,
              const Footprint& paillier, uint64_t pscale) {
  std::printf("%-18s %10llu | %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f | %6.1fx %6.1fx\n", label,
              static_cast<unsigned long long>(rows), noenc.disk / 1e6, seabed.disk / 1e6,
              paillier.disk * static_cast<double>(pscale) / 1e6, noenc.memory / 1e6,
              seabed.memory / 1e6, paillier.memory * static_cast<double>(pscale) / 1e6,
              static_cast<double>(seabed.disk) / noenc.disk,
              paillier.disk * static_cast<double>(pscale) / noenc.disk);
}

int Main() {
  const ClientKeys keys = ClientKeys::FromSeed(21);
  const Encryptor encryptor(keys);
  Rng rng(5);
  // 1024-bit modulus = the paper's 2048-bit ciphertexts.
  const Paillier paillier = Paillier::GenerateKey(
      rng, static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS", 1024)));

  std::printf("=== Table 5: dataset sizes (MB, scaled row counts) ===\n");
  std::printf("%-18s %10s | %9s %9s %9s | %9s %9s %9s | %6s %6s\n", "dataset", "rows",
              "disk:NoEnc", "Seabed", "Paillier", "mem:NoEnc", "Seabed", "Paillier", "Sbd/x",
              "Pail/x");

  // Synthetic (narrow: 1 measure) — the Synthetic-Large/Small rows.
  {
    SyntheticSpec spec;
    spec.rows = EnvU64("SEABED_BENCH_ROWS", 500000);
    const auto plain = MakeSyntheticTable(spec);
    const PlainSchema schema = SyntheticSchema(spec);
    PlannerOptions popts;
    popts.expected_rows = spec.rows;
    const EncryptionPlan plan = PlanEncryption(schema, SyntheticSampleQueries(spec), popts);
    const EncryptedDatabase db = encryptor.Encrypt(*plain, schema, plan);
    const uint64_t pscale = 16;
    SyntheticSpec small = spec;
    small.rows = spec.rows / pscale;
    const auto plain_small = MakeSyntheticTable(small);
    const EncryptedDatabase base =
        encryptor.EncryptPaillierBaseline(*plain_small, schema, plan, paillier, rng);
    PrintRow("Synthetic", spec.rows, Measure(*plain),
             Measure(*db.table, IdColumnBytes(*db.table, spec.rows)), Measure(*base.table),
             pscale);
  }

  // BDB Rankings + UserVisits.
  {
    BdbSpec spec;
    spec.rankings_rows = EnvU64("SEABED_BENCH_BDB_RANKINGS", 90000);
    spec.uservisits_rows = EnvU64("SEABED_BENCH_BDB_USERVISITS", 200000);
    const auto rankings = MakeRankingsTable(spec);
    const auto uservisits = MakeUserVisitsTable(spec);
    PlannerOptions popts;
    const EncryptionPlan rplan = PlanEncryption(RankingsSchema(), RankingsSampleQueries(), popts);
    const EncryptionPlan uplan =
        PlanEncryption(UserVisitsSchema(), UserVisitsSampleQueries(), popts);
    const EncryptedDatabase rdb = encryptor.Encrypt(*rankings, RankingsSchema(), rplan);
    const EncryptedDatabase udb = encryptor.Encrypt(*uservisits, UserVisitsSchema(), uplan);
    const uint64_t pscale = 16;
    BdbSpec small = spec;
    small.rankings_rows /= pscale;
    small.uservisits_rows /= pscale;
    const auto rankings_small = MakeRankingsTable(small);
    const auto uservisits_small = MakeUserVisitsTable(small);
    const EncryptedDatabase rbase =
        encryptor.EncryptPaillierBaseline(*rankings_small, RankingsSchema(), rplan, paillier, rng);
    const EncryptedDatabase ubase = encryptor.EncryptPaillierBaseline(
        *uservisits_small, UserVisitsSchema(), uplan, paillier, rng);
    PrintRow("BDB-Rankings", spec.rankings_rows, Measure(*rankings),
             Measure(*rdb.table, IdColumnBytes(*rdb.table, spec.rankings_rows)),
             Measure(*rbase.table), pscale);
    PrintRow("BDB-UserVisits", spec.uservisits_rows, Measure(*uservisits),
             Measure(*udb.table, IdColumnBytes(*udb.table, spec.uservisits_rows)),
             Measure(*ubase.table), pscale);
  }

  // Ad Analytics (wide: 33 dims + 18 measures, storage budget 3x).
  {
    AdAnalyticsSpec spec;
    spec.rows = EnvU64("SEABED_BENCH_ADA_ROWS", 100000);
    const auto table = MakeAdAnalyticsTable(spec);
    const PlainSchema schema = AdAnalyticsSchema(spec);
    PlannerOptions popts;
    popts.expected_rows = spec.rows;
    popts.max_storage_expansion = 3.0;
    const EncryptionPlan plan = PlanEncryption(schema, AdAnalyticsSampleQueries(spec), popts);
    const EncryptedDatabase db = encryptor.Encrypt(*table, schema, plan);
    const uint64_t pscale = 16;
    AdAnalyticsSpec small = spec;
    small.rows = spec.rows / pscale;
    const auto table_small = MakeAdAnalyticsTable(small);
    const EncryptedDatabase base =
        encryptor.EncryptPaillierBaseline(*table_small, schema, plan, paillier, rng);
    PrintRow("AdAnalytics", spec.rows, Measure(*table),
             Measure(*db.table, IdColumnBytes(*db.table, spec.rows)), Measure(*base.table),
             pscale);
  }
  std::printf("\nPaillier tables built at 1/16 scale and scaled back (construction cost).\n");
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
