// "Figure 16" (beyond the paper): prepared statements and the shared
// cross-session result cache.
//
// Phase A — the translate-once contract, serially on the Seabed backend. A
// parameterized dashboard sweeps one shape across N moving literals:
//
//   * AD-HOC, every literal is a fresh exact fingerprint: a plan-cache miss
//     and a full retranslation, N misses for N queries;
//   * PREPARED, the shape translates once and every execution only BINDS
//     the literal into the memoized plan: 1 miss, N-1 hits.
//
// The gate: the prepared warm path (bind) must be >= 5x cheaper than the
// ad-hoc retranslation at the median, and the prepared sweep's plan-cache
// miss count must be exactly 1. A REGRESSION line + exit 1 otherwise.
//
// Phase B (informational) — the multiply with the shared cache. A fleet of
// caching sessions refreshes the same parameterized dashboard; the four
// configurations {private|shared result cache} x {ad-hoc|prepared} show the
// two features compounding: the shared cache deduplicates results ACROSS
// sessions, prepared statements deduplicate translation WITHIN each.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/seabed/result_cache.h"
#include "src/seabed/translator.h"

namespace seabed {
namespace {

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// One dashboard shape: a fixed filter on a dimension plus a moving
// selectivity bound. Phase A marks `grp` sensitive, so ad-hoc retranslation
// re-derives the DET key and re-encrypts the fixed literal for EVERY moving
// bound — exactly the work the prepared handle pays once.
Query DashboardShape() {
  Query q;
  q.table = "synthetic";
  q.Sum("value", "total").Count("n").Avg("value", "mean");
  q.Where("grp", CmpOp::kEq, int64_t{7});
  q.WhereParam("sel", CmpOp::kLt);
  return q;
}

int Main() {
  const uint64_t rows = EnvU64("SEABED_BENCH_ROWS", 2000000);
  const uint64_t sweep = std::max<uint64_t>(8, EnvU64("SEABED_BENCH_PREPARED_SWEEP", 48));
  const uint64_t groups = 64;
  const Cluster cluster(BenchClusterConfig(16));
  BenchRecorder recorder("fig16_prepared");

  SyntheticHarness::Options options = SyntheticHarness::FromEnv();
  options.rows = rows;
  options.group_cardinality = groups;
  options.build_paillier = false;  // the comparison is ad-hoc vs prepared Seabed
  SyntheticHarness harness(options);

  const Query shape = DashboardShape();
  auto literal_of = [](uint64_t i) -> int64_t {
    return static_cast<int64_t>((i * 7 + 1) % 100);  // moving bound, never repeats mod N
  };

  // --- Phase A: serial translate-once sweep ----------------------------------
  std::printf("=== Figure 16: prepared statements (rows=%llu, sweep=%llu literals) ===\n",
              static_cast<unsigned long long>(rows), static_cast<unsigned long long>(sweep));

  // A dedicated session whose plan protects the dashboard's fixed dimension
  // with DET: the sample query teaches the planner `grp` equality, `sel`
  // range, `value` sums.
  PlainSchema schema = harness.schema();
  for (PlainColumnSpec& column : schema.columns) {
    if (column.name == "grp") {
      column.sensitive = true;
    }
  }
  Session session(harness.MakeSessionOptions(BackendKind::kSeabed));
  // The group-by sample steers the planner to DET for `grp` (SPLASHE cannot
  // serve GROUP BY), giving the shape its fixed encrypted-token predicate.
  session.Attach(harness.plain_shared(), schema,
                 {shape.BindParams(std::vector<Value>{int64_t{50}}),
                  SyntheticGroupByQuery(groups)});
  session.UseCluster(&cluster);

  auto adhoc_cache = std::make_shared<TranslatedPlanCache>(4096);
  session.executor().SetPlanCache(adhoc_cache);
  std::vector<double> adhoc_translate;
  for (uint64_t i = 0; i < sweep; ++i) {
    const std::vector<Value> params = {literal_of(i)};
    QueryStats stats;
    session.Execute(shape.BindParams(params), &stats);
    adhoc_translate.push_back(stats.translate_seconds);
  }

  auto prepared_cache = std::make_shared<TranslatedPlanCache>(4096);
  session.executor().SetPlanCache(prepared_cache);
  const PreparedQuery prepared = session.Prepare(shape);
  std::vector<double> prepared_bind;
  for (uint64_t i = 0; i < sweep; ++i) {
    const std::vector<Value> params = {literal_of(i)};
    QueryStats stats;
    session.Execute(prepared, params, &stats);
    prepared_bind.push_back(stats.bind_seconds);
  }
  session.UseCluster(nullptr);

  const double median_translate = Median(adhoc_translate);
  const double median_bind = Median(prepared_bind);
  const double speedup = median_bind > 0 ? median_translate / median_bind : 0;
  const uint64_t adhoc_misses = adhoc_cache->misses();
  const uint64_t prepared_misses = prepared_cache->misses();

  std::printf("%-28s %14s %14s\n", "sweep", "plan misses", "median(s)");
  std::printf("%-28s %14llu %14.6f   (translate per literal)\n", "ad-hoc",
              static_cast<unsigned long long>(adhoc_misses), median_translate);
  std::printf("%-28s %14llu %14.6f   (bind per literal)\n", "prepared",
              static_cast<unsigned long long>(prepared_misses), median_bind);
  std::printf("prepared warm path: %.0fx cheaper than retranslation\n", speedup);

  recorder.Add("adhoc", {{"sweep", static_cast<double>(sweep)},
                         {"plan_misses", static_cast<double>(adhoc_misses)},
                         {"median_translate_seconds", median_translate}});
  recorder.Add("prepared", {{"sweep", static_cast<double>(sweep)},
                            {"plan_misses", static_cast<double>(prepared_misses)},
                            {"median_bind_seconds", median_bind}});

  bool regression = false;
  if (prepared_misses != 1) {
    std::printf("REGRESSION: prepared sweep translated %llu times (want exactly 1)\n",
                static_cast<unsigned long long>(prepared_misses));
    regression = true;
  }
  if (adhoc_misses != sweep) {
    // Not a gate on the new path, but a broken premise invalidates the ratio.
    std::printf("REGRESSION: ad-hoc sweep missed %llu times (want %llu, one per literal)\n",
                static_cast<unsigned long long>(adhoc_misses),
                static_cast<unsigned long long>(sweep));
    regression = true;
  }
  if (speedup < 5.0) {
    std::printf("REGRESSION: prepared bind is less than 5x cheaper than retranslation\n");
    regression = true;
  }

  // --- Phase B: fleet refresh, shared cache x prepared -----------------------
  const uint64_t fleet_size = 4;
  const uint64_t panels = 8;
  std::printf("\n--- fleet refresh: %llu sessions x %llu panels ---\n",
              static_cast<unsigned long long>(fleet_size),
              static_cast<unsigned long long>(panels));
  std::printf("%-28s %14s %14s %14s\n", "config", "modeled(s)", "result hits", "translations");

  struct Config {
    const char* label;
    bool shared;
    bool prepare;
  };
  const Config configs[] = {{"private/ad-hoc", false, false},
                            {"private/prepared", false, true},
                            {"shared/ad-hoc", true, false},
                            {"shared/prepared", true, true}};
  for (const Config& config : configs) {
    auto shared_cache = std::make_shared<SharedResultCache>();
    std::vector<std::unique_ptr<Session>> fleet;
    for (uint64_t s = 0; s < fleet_size; ++s) {
      SessionOptions so = harness.MakeSessionOptions(BackendKind::kCachingSeabed);
      so.cache.inner = BackendKind::kSeabed;
      if (config.shared) {
        so.cache.shared = shared_cache;
      }
      auto member = std::make_unique<Session>(std::move(so));
      member->AttachPlanned(harness.plain_shared(), harness.schema(),
                            harness.seabed().plan("synthetic"));
      member->UseCluster(&cluster);
      fleet.push_back(std::move(member));
    }

    double modeled_seconds = 0;
    uint64_t result_hits = 0;
    uint64_t translations = 0;
    for (auto& member : fleet) {
      const PreparedQuery handle = config.prepare ? member->Prepare(shape) : PreparedQuery();
      for (uint64_t i = 0; i < panels; ++i) {
        const std::vector<Value> params = {literal_of(i)};
        QueryStats stats;
        if (config.prepare) {
          member->Execute(handle, params, &stats);
        } else {
          member->Execute(shape.BindParams(params), &stats);
        }
        modeled_seconds += stats.TotalSeconds() + stats.cache_lookup_seconds;
        result_hits += stats.cache_hit ? 1 : 0;
        translations += (!stats.cache_hit && !stats.plan_cache_hit) ? 1 : 0;
      }
      member->UseCluster(nullptr);
    }

    std::printf("%-28s %14.4f %14llu %14llu\n", config.label, modeled_seconds,
                static_cast<unsigned long long>(result_hits),
                static_cast<unsigned long long>(translations));
    recorder.Add(std::string("fleet_") + config.label,
                 {{"modeled_seconds", modeled_seconds},
                  {"result_hits", static_cast<double>(result_hits)},
                  {"translations", static_cast<double>(translations)}});
  }

  return regression ? 1 : 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
