// Figure 9(a) reproduction: group-by aggregation latency vs number of groups.
//
// Paper: very few groups (10) are slow for vanilla Seabed (reduce-phase
// bandwidth bottleneck); the inflation optimization fixes it; Seabed beats
// Paillier by 5–10x, the gap narrowing as group counts grow (shuffle
// dominates).
#include <cstdio>

#include "bench/harness.h"

namespace seabed {
namespace {

int Main() {
  const uint64_t rows = EnvU64("SEABED_BENCH_ROWS", 2000000);
  const Cluster cluster(BenchClusterConfig(100));
  BenchRecorder recorder("fig9a_groupby");

  const double scale = kPaperRows / static_cast<double>(rows);
  const double overhead = BenchClusterConfig(100).job_overhead_seconds;
  std::printf("=== Figure 9(a): group-by latency vs group count (rows=%llu, * = x%.0f) ===\n",
              static_cast<unsigned long long>(rows), scale);
  std::printf("%10s %10s %12s %18s %12s %10s %12s %14s %12s\n", "groups", "NoEnc(s)",
              "Seabed(s)", "Seabed-optimized(s)", "Paillier(s)", "NoEnc*", "Seabed*",
              "Seabed-opt*", "Paillier*");

  for (uint64_t groups : {10ull, 100ull, 10000ull, 1000000ull}) {
    SyntheticHarness::Options options = SyntheticHarness::FromEnv();
    options.rows = rows;
    options.group_cardinality = groups;
    // Paillier decryption costs ~0.5 ms per *group*; scale the baseline table
    // so its group count stays tractable, then project latencies back up.
    options.paillier_rows = std::min<uint64_t>(rows / 16, 20000);
    SyntheticHarness harness(options);

    Query q = SyntheticGroupByQuery(groups);

    QueryStats noenc, seabed, seabed_opt, paillier;
    harness.RunNoEnc(q, cluster, &noenc);

    TranslatorOptions vanilla;
    vanilla.enable_group_inflation = false;
    harness.RunSeabed(q, cluster, vanilla, &seabed);

    TranslatorOptions optimized;
    optimized.enable_group_inflation = true;
    harness.RunSeabed(q, cluster, optimized, &seabed_opt);

    harness.RunPaillier(q, cluster, &paillier);

    std::printf("%10llu %10.3f %12.3f %18.3f %12.3f %10.2f %12.2f %14.2f %12.1f\n",
                static_cast<unsigned long long>(groups), noenc.TotalSeconds(),
                seabed.TotalSeconds(), seabed_opt.TotalSeconds(), paillier.TotalSeconds(),
                ProjectTotalSeconds(noenc, scale, overhead),
                ProjectTotalSeconds(seabed, scale, overhead),
                ProjectTotalSeconds(seabed_opt, scale, overhead),
                ProjectTotalSeconds(paillier, scale, overhead));
    const double g = static_cast<double>(groups);
    recorder.AddStats("noenc", {{"groups", g}}, noenc);
    recorder.AddStats("seabed", {{"groups", g}}, seabed);
    recorder.AddStats("seabed_optimized", {{"groups", g}}, seabed_opt);
    recorder.AddStats("paillier", {{"groups", g}}, paillier);
  }
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
