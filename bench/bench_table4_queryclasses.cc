// Table 4 reproduction: how the three query sets split across Seabed's four
// support categories.
//
// Paper:        Total     Server    CPre    CPost   2RT
//   AdAnalytics 168,352   134,298   0       34,054  0
//   TPC-DS      99        69        2       25      3
//   MDX         38        17        12      4       5
#include <cstdio>

#include "bench/harness.h"
#include "src/workload/ad_analytics.h"
#include "src/workload/classifier.h"

namespace seabed {
namespace {

void PrintRow(const char* label, const CategoryCounts& counts, BenchRecorder& recorder) {
  std::printf("%-14s %10zu %12zu %10zu %10zu %10zu\n", label, counts.Total(),
              counts.server_only, counts.client_pre, counts.client_post,
              counts.two_round_trips);
  recorder.Add(label, {{"total", static_cast<double>(counts.Total())},
                       {"server_only", static_cast<double>(counts.server_only)},
                       {"client_pre", static_cast<double>(counts.client_pre)},
                       {"client_post", static_cast<double>(counts.client_post)},
                       {"two_round_trips", static_cast<double>(counts.two_round_trips)}});
}

int Main() {
  BenchRecorder recorder("table4_queryclasses");
  std::printf("=== Table 4: query-support categories ===\n");
  std::printf("%-14s %10s %12s %10s %10s %10s\n", "query set", "total", "server-only",
              "client-pre", "client-post", "two-RT");

  AdAnalyticsSpec spec;
  PrintRow("Ad Analytics", ClassifyAll(AdAnalyticsQueryLog(spec)), recorder);
  PrintRow("TPC-DS", ClassifyAll(TpcDsQuerySet()), recorder);
  PrintRow("MDX", ClassifyAll(MdxQuerySet()), recorder);
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
