// Figure 9(b,c) reproduction: the AmpLab Big Data Benchmark queries
// (Q1A–Q4) under NoEnc, Seabed and Paillier.
//
// Paper (32 cores, server-side time): Q1 fast for everyone (OPE adds
// overhead for the encrypted systems); Q2–Q4 show Seabed consistently faster
// than Paillier but closer than in the microbenchmarks because results have
// millions of groups.
#include <cstdio>

#include "bench/harness.h"
#include "src/workload/bdb.h"

namespace seabed {
namespace {

SessionOptions BdbSessionOptions(BackendKind backend) {
  SessionOptions options;
  options.backend = backend;
  options.cluster = BenchClusterConfig(32);
  options.key_seed = 3;
  options.paillier.modulus_bits =
      static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS", 512));
  options.paillier.seed = 7;
  return options;
}

int Main() {
  BdbSpec spec;
  spec.rankings_rows = EnvU64("SEABED_BENCH_BDB_RANKINGS", 90000);
  spec.uservisits_rows = EnvU64("SEABED_BENCH_BDB_USERVISITS", 400000);
  spec.num_urls = spec.rankings_rows / 3;
  BenchRecorder recorder("fig9bc_bdb");

  const auto rankings = MakeRankingsTable(spec);
  const auto uservisits = MakeUserVisitsTable(spec);

  Session noenc(BdbSessionOptions(BackendKind::kPlain));
  Session seabed(BdbSessionOptions(BackendKind::kSeabed));
  for (Session* s : {&noenc, &seabed}) {
    s->Attach(rankings, RankingsSchema(), RankingsSampleQueries());
    s->Attach(uservisits, UserVisitsSchema(), UserVisitsSampleQueries());
  }

  for (const auto& w : seabed.plan("rankings").warnings) {
    std::printf("planner [rankings]: %s\n", w.c_str());
  }
  for (const auto& w : seabed.plan("uservisits").warnings) {
    std::printf("planner [uservisits]: %s\n", w.c_str());
  }

  // Paillier baseline tables (scaled down; latencies scaled back up).
  const uint64_t scale = EnvU64("SEABED_BENCH_BDB_PAILLIER_SCALE", 8);
  BdbSpec small = spec;
  small.rankings_rows = std::max<uint64_t>(1, spec.rankings_rows / scale);
  small.uservisits_rows = std::max<uint64_t>(1, spec.uservisits_rows / scale);
  small.num_urls = std::max<uint64_t>(1, small.rankings_rows / 3);
  Session paillier(BdbSessionOptions(BackendKind::kPaillier));
  paillier.Attach(MakeRankingsTable(small), RankingsSchema(), RankingsSampleQueries());
  paillier.Attach(MakeUserVisitsTable(small), UserVisitsSchema(), UserVisitsSampleQueries());

  std::printf("=== Figure 9(b,c): BDB query latency (rankings=%llu, uservisits=%llu) ===\n",
              static_cast<unsigned long long>(spec.rankings_rows),
              static_cast<unsigned long long>(spec.uservisits_rows));
  std::printf("%6s %12s %12s %14s\n", "query", "NoEnc(s)", "Seabed(s)", "Paillier(s)");

  size_t query_index = 0;
  for (const BdbQuery& bq : BdbQuerySet()) {
    QueryStats noenc_stats, seabed_stats, paillier_stats;
    noenc.Execute(bq.query, &noenc_stats);
    seabed.Execute(bq.query, &seabed_stats);
    paillier.Execute(bq.query, &paillier_stats);
    paillier_stats.server_seconds *= static_cast<double>(scale);

    std::printf("%6s %12.3f %12.3f %14.3f\n", bq.label.c_str(), noenc_stats.server_seconds,
                seabed_stats.server_seconds, paillier_stats.server_seconds);
    const double idx = static_cast<double>(query_index++);
    recorder.AddStats("noenc_" + bq.label, {{"query_index", idx}}, noenc_stats);
    recorder.AddStats("seabed_" + bq.label, {{"query_index", idx}}, seabed_stats);
    recorder.AddStats("paillier_" + bq.label, {{"query_index", idx}}, paillier_stats);
  }
  std::printf("\nPaillier tables built at 1/%llu scale; its latencies scaled back up.\n",
              static_cast<unsigned long long>(scale));
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
