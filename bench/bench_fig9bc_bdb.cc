// Figure 9(b,c) reproduction: the AmpLab Big Data Benchmark queries
// (Q1A–Q4) under NoEnc, Seabed and Paillier.
//
// Paper (32 cores, server-side time): Q1 fast for everyone (OPE adds
// overhead for the encrypted systems); Q2–Q4 show Seabed consistently faster
// than Paillier but closer than in the microbenchmarks because results have
// millions of groups.
#include <cstdio>

#include "bench/harness.h"
#include "src/workload/bdb.h"

namespace seabed {
namespace {

int Main() {
  BdbSpec spec;
  spec.rankings_rows = EnvU64("SEABED_BENCH_BDB_RANKINGS", 90000);
  spec.uservisits_rows = EnvU64("SEABED_BENCH_BDB_USERVISITS", 400000);
  spec.num_urls = spec.rankings_rows / 3;
  const Cluster cluster(BenchClusterConfig(32));
  const ClientKeys keys = ClientKeys::FromSeed(3);

  const auto rankings = MakeRankingsTable(spec);
  const auto uservisits = MakeUserVisitsTable(spec);

  PlannerOptions popts;
  const EncryptionPlan rankings_plan =
      PlanEncryption(RankingsSchema(), RankingsSampleQueries(), popts);
  const EncryptionPlan uservisits_plan =
      PlanEncryption(UserVisitsSchema(), UserVisitsSampleQueries(), popts);
  const Encryptor encryptor(keys);
  const EncryptedDatabase rankings_db = encryptor.Encrypt(*rankings, RankingsSchema(),
                                                          rankings_plan);
  const EncryptedDatabase uservisits_db = encryptor.Encrypt(*uservisits, UserVisitsSchema(),
                                                            uservisits_plan);
  Server server;
  server.RegisterTable(rankings_db.table);
  server.RegisterTable(uservisits_db.table);

  // Paillier baseline tables (scaled down; latencies scaled back up).
  const uint64_t scale = EnvU64("SEABED_BENCH_BDB_PAILLIER_SCALE", 8);
  BdbSpec small = spec;
  small.rankings_rows = std::max<uint64_t>(1, spec.rankings_rows / scale);
  small.uservisits_rows = std::max<uint64_t>(1, spec.uservisits_rows / scale);
  small.num_urls = std::max<uint64_t>(1, small.rankings_rows / 3);
  const auto rankings_small = MakeRankingsTable(small);
  const auto uservisits_small = MakeUserVisitsTable(small);
  Rng rng(7);
  const Paillier paillier =
      Paillier::GenerateKey(rng, static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS", 512)));
  const EncryptedDatabase rankings_base = encryptor.EncryptPaillierBaseline(
      *rankings_small, RankingsSchema(), rankings_plan, paillier, rng);
  const EncryptedDatabase uservisits_base = encryptor.EncryptPaillierBaseline(
      *uservisits_small, UserVisitsSchema(), uservisits_plan, paillier, rng);

  std::printf("=== Figure 9(b,c): BDB query latency (rankings=%llu, uservisits=%llu) ===\n",
              static_cast<unsigned long long>(spec.rankings_rows),
              static_cast<unsigned long long>(spec.uservisits_rows));
  std::printf("%6s %12s %12s %14s\n", "query", "NoEnc(s)", "Seabed(s)", "Paillier(s)");

  for (const BdbQuery& bq : BdbQuerySet()) {
    const Table& fact = bq.on_uservisits ? *uservisits : *rankings;
    const EncryptedDatabase& db = bq.on_uservisits ? uservisits_db : rankings_db;
    const EncryptedDatabase& base = bq.on_uservisits ? uservisits_base : rankings_base;

    double noenc = 0;
    if (!bq.query.join.has_value()) {
      noenc = ExecutePlain(fact, bq.query, cluster).job.server_seconds;
    } else {
      // Plaintext join cost approximated by the fact-table scan.
      Query scan = bq.query;
      scan.join.reset();
      scan.aggregates.clear();
      scan.Sum("adRevenue");
      noenc = ExecutePlain(fact, scan, cluster).job.server_seconds;
    }

    TranslatorOptions topts;
    topts.cluster_workers = cluster.num_workers();
    const Translator translator(db, keys);
    TranslatedQuery tq = translator.Translate(bq.query, topts);
    if (tq.server.join.has_value()) {
      tq.server.join->right_table = rankings_db.table->name();
    }
    const EncryptedResponse response = server.Execute(tq.server, cluster);
    const Client client(db, keys);
    const ResultSet enc = client.Decrypt(response, tq, cluster, &rankings_db);

    TranslatorOptions base_topts = topts;
    base_topts.enable_group_inflation = false;
    const Translator base_translator(base, keys);
    TranslatedQuery base_tq = base_translator.Translate(bq.query, base_topts);
    const PaillierBaseline exec(paillier);
    ResultSet paillier_result =
        exec.Execute(base, base_tq, cluster, &rankings_base, rankings_base.table.get());
    paillier_result.job.server_seconds *= static_cast<double>(scale);

    std::printf("%6s %12.3f %12.3f %14.3f\n", bq.label.c_str(), noenc,
                enc.job.server_seconds, paillier_result.job.server_seconds);
  }
  std::printf("\nPaillier tables built at 1/%llu scale; its latencies scaled back up.\n",
              static_cast<unsigned long long>(scale));
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
