// Figure 8(c) reproduction: response time vs selectivity, aggregation alone
// vs aggregation behind an OPE (ORE) selection predicate.
//
// Paper: the ORE comparison adds a roughly constant ~5 s over the ASHE
// aggregation at every selectivity (comparisons scan every row regardless of
// how many pass).
#include <cstdio>

#include "bench/harness.h"

namespace seabed {
namespace {

int Main() {
  // Dedicated table: value + sel + an OPE-encrypted copy of sel. We reuse the
  // synthetic harness and mark `sel` sensitive by querying it with a range
  // predicate, which the planner turns into an ORE column.
  const uint64_t rows = EnvU64("SEABED_BENCH_ROWS", 2000000);

  SyntheticSpec spec;
  spec.rows = rows;
  const auto plain = MakeSyntheticTable(spec);
  PlainSchema schema = SyntheticSchema(spec);
  // Promote `sel` to a sensitive dimension so it gets an ORE column.
  for (auto& col : schema.columns) {
    if (col.name == "sel") {
      col.sensitive = true;
    }
  }
  std::vector<Query> samples;
  {
    Query q;
    q.table = "synthetic";
    q.Sum("value").Where("sel", CmpOp::kLt, int64_t{50});
    samples.push_back(q);
  }
  const ClientKeys keys = ClientKeys::FromSeed(42);
  PlannerOptions popts;
  popts.expected_rows = rows;
  const EncryptionPlan plan = PlanEncryption(schema, samples, popts);
  const Encryptor encryptor(keys);
  const EncryptedDatabase db = encryptor.Encrypt(*plain, schema, plan);
  Server server;
  server.RegisterTable(db.table);
  const Cluster cluster(BenchClusterConfig(100));

  std::printf("=== Figure 8(c): response time vs selectivity, rows=%llu ===\n",
              static_cast<unsigned long long>(rows));
  std::printf("%6s %18s %18s\n", "sel%", "Aggregation(s)", "+OPE selection(s)");

  for (int sel = 10; sel <= 100; sel += 10) {
    TranslatorOptions topts;
    topts.cluster_workers = cluster.num_workers();
    const Translator translator(db, keys);
    const Client client(db, keys);

    // Aggregation only: plaintext helper predicate (the Figure 8(a/b) path).
    Query plain_q;
    plain_q.table = "synthetic";
    plain_q.Sum("value");
    // Emulate selectivity without OPE cost by using a *plain* filter on a
    // shadow column is not possible here (sel is encrypted), so aggregate
    // over the leading sel% of rows via the OPE predicate replaced by an
    // all-rows scan timed separately:
    const TranslatedQuery tq_all = translator.Translate(plain_q, topts);
    EncryptedResponse resp = server.Execute(tq_all.server, cluster);
    const double agg_only = client.Decrypt(resp, tq_all, cluster).job.server_seconds;

    Query ope_q;
    ope_q.table = "synthetic";
    ope_q.Sum("value").Where("sel", CmpOp::kLt, static_cast<int64_t>(sel));
    const TranslatedQuery tq_ope = translator.Translate(ope_q, topts);
    resp = server.Execute(tq_ope.server, cluster);
    const double with_ope = client.Decrypt(resp, tq_ope, cluster).job.server_seconds;

    std::printf("%6d %18.3f %18.3f\n", sel, agg_only, with_ope);
  }
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
