// Figure 8(c) reproduction: response time vs selectivity, aggregation alone
// vs aggregation behind an OPE (ORE) selection predicate.
//
// Paper: the ORE comparison adds a roughly constant ~5 s over the ASHE
// aggregation at every selectivity (comparisons scan every row regardless of
// how many pass).
#include <cstdio>

#include "bench/harness.h"

namespace seabed {
namespace {

int Main() {
  // Dedicated table: value + sel + an OPE-encrypted copy of sel. We reuse the
  // synthetic workload and mark `sel` sensitive by querying it with a range
  // predicate, which the planner turns into an ORE column.
  const uint64_t rows = EnvU64("SEABED_BENCH_ROWS", 2000000);

  SyntheticSpec spec;
  spec.rows = rows;
  const auto plain = MakeSyntheticTable(spec);
  PlainSchema schema = SyntheticSchema(spec);
  // Promote `sel` to a sensitive dimension so it gets an ORE column.
  for (auto& col : schema.columns) {
    if (col.name == "sel") {
      col.sensitive = true;
    }
  }
  std::vector<Query> samples;
  {
    Query q;
    q.table = "synthetic";
    q.Sum("value").Where("sel", CmpOp::kLt, int64_t{50});
    samples.push_back(q);
  }

  SessionOptions options;
  options.backend = BackendKind::kSeabed;
  options.planner.expected_rows = rows;
  options.key_seed = 42;
  options.cluster = BenchClusterConfig(100);
  Session session(options);
  session.Attach(plain, schema, samples);
  BenchRecorder recorder("fig8c_ope");

  std::printf("=== Figure 8(c): response time vs selectivity, rows=%llu ===\n",
              static_cast<unsigned long long>(rows));
  std::printf("%6s %18s %18s\n", "sel%", "Aggregation(s)", "+OPE selection(s)");

  for (int sel = 10; sel <= 100; sel += 10) {
    // Aggregation only: the all-rows scan, timed without any predicate.
    Query plain_q;
    plain_q.table = "synthetic";
    plain_q.Sum("value");
    QueryStats agg_only;
    session.Execute(plain_q, &agg_only);

    Query ope_q;
    ope_q.table = "synthetic";
    ope_q.Sum("value").Where("sel", CmpOp::kLt, static_cast<int64_t>(sel));
    QueryStats with_ope;
    session.Execute(ope_q, &with_ope);

    std::printf("%6d %18.3f %18.3f\n", sel, agg_only.server_seconds, with_ope.server_seconds);
    recorder.AddStats("aggregation_only", {{"selectivity", static_cast<double>(sel)}}, agg_only);
    recorder.AddStats("with_ope", {{"selectivity", static_cast<double>(sel)}}, with_ope);
  }
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
