// Figure 10(b) reproduction: cumulative SPLASHE storage overhead per
// sensitive dimension (sorted by cardinality), basic vs enhanced.
//
// Paper: within a 2x budget, basic SPLASHE covers 1 dimension vs enhanced's
// 2; within 3x, 3 vs 6; with 6 dimensions enhanced-splayed, ~92% of queries
// touch at least one SPLASHE column.
#include <cstdio>

#include "bench/harness.h"
#include "src/seabed/splashe.h"
#include "src/workload/ad_analytics.h"
#include "src/workload/classifier.h"

namespace seabed {
namespace {

int Main() {
  BenchRecorder recorder("fig10b_splashe_storage");
  AdAnalyticsSpec spec;
  const PlainSchema schema = AdAnalyticsSchema(spec);
  const uint64_t expected_rows = 1000000;
  const size_t measures_per_dim = 2;  // measures co-queried with each dim

  std::printf("=== Figure 10(b): cumulative storage overhead per sensitive dimension ===\n");
  std::printf("%8s %12s %10s %22s %22s\n", "dim", "cardinality", "enhanced k",
              "cumulative basic (x)", "cumulative enhanced (x)");

  const double base_width = static_cast<double>(schema.columns.size());
  double basic_added = 0;
  double enhanced_added = 0;
  size_t dims_within_2x_basic = 0, dims_within_2x_enh = 0;
  size_t dims_within_3x_basic = 0, dims_within_3x_enh = 0;

  size_t dim_index = 0;
  for (const auto& col : schema.columns) {
    if (!col.distribution.has_value()) {
      continue;
    }
    ++dim_index;
    const size_t d = col.distribution->values.size();
    const SplasheLayout layout =
        BuildSplasheLayout(col.name, *col.distribution, {}, true, expected_rows);
    const size_t k = layout.splayed_values.size();

    basic_added += static_cast<double>(d) * (1.0 + measures_per_dim) - 1.0;
    enhanced_added +=
        static_cast<double>(k + 2) + static_cast<double>(k + 1) * measures_per_dim - 1.0;
    const double basic_factor = (base_width + basic_added) / base_width;
    const double enhanced_factor = (base_width + enhanced_added) / base_width;

    if (basic_factor <= 2.0) {
      dims_within_2x_basic = dim_index;
    }
    if (enhanced_factor <= 2.0) {
      dims_within_2x_enh = dim_index;
    }
    if (basic_factor <= 3.0) {
      dims_within_3x_basic = dim_index;
    }
    if (enhanced_factor <= 3.0) {
      dims_within_3x_enh = dim_index;
    }

    std::printf("%8s %12zu %10zu %22.2f %22.2f\n", col.name.c_str(), d, k, basic_factor,
                enhanced_factor);
    recorder.Add(col.name, {{"cardinality", static_cast<double>(d)},
                            {"enhanced_k", static_cast<double>(k)},
                            {"cumulative_basic_factor", basic_factor},
                            {"cumulative_enhanced_factor", enhanced_factor}});
  }

  std::printf("\nwithin 2x budget: basic covers %zu dims, enhanced covers %zu"
              " (paper: 1 vs 2)\n", dims_within_2x_basic, dims_within_2x_enh);
  std::printf("within 3x budget: basic covers %zu dims, enhanced covers %zu"
              " (paper: 3 vs 6)\n", dims_within_3x_basic, dims_within_3x_enh);
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
