// Figure 8(a,b) reproduction: ID-list size and response time vs selectivity
// for the encoding combinations of Table 3.
//
// Paper: range encoding bounds list size (peak at 50% selectivity, best at
// 100%); VB+Diff shrink further; Deflate(fast) wins end-to-end while
// Deflate(compact) costs more time than it saves. Bitmap variants "performed
// poorly" — included here to show why.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/encoding/bitmap.h"

namespace seabed {
namespace {

struct Combo {
  const char* label;
  IdListOptions options;
};

int Main() {
  SyntheticHarness::Options hopts = SyntheticHarness::FromEnv();
  hopts.build_paillier = false;
  SyntheticHarness harness(hopts);
  const Cluster cluster(BenchClusterConfig(100));
  BenchRecorder recorder("fig8_encoding");

  std::vector<Combo> combos;
  {
    IdListOptions o;
    o.use_range = true;
    o.use_diff = false;
    o.use_vb = true;
    o.compression = IdListCompression::kNone;
    combos.push_back({"Ranges & VB", o});
    o.use_diff = true;
    combos.push_back({"+Diff", o});
    o.compression = IdListCompression::kCompact;
    combos.push_back({"+Deflate(Compact)", o});
    o.compression = IdListCompression::kFast;
    combos.push_back({"+Deflate(Fast)", o});
  }

  std::printf("=== Figure 8(a): result (ID-list) size vs selectivity, rows=%llu ===\n",
              static_cast<unsigned long long>(harness.rows()));
  std::printf("%6s", "sel%");
  for (const Combo& c : combos) {
    std::printf(" %20s", c.label);
  }
  std::printf(" %14s\n", "Bitmap");

  // Collect per-selectivity response sizes and times.
  std::vector<std::vector<double>> times(combos.size());
  for (int sel = 10; sel <= 100; sel += 10) {
    const Query q = SyntheticSumQuery(sel);
    std::printf("%6d", sel);
    size_t bitmap_bytes = 0;
    for (size_t c = 0; c < combos.size(); ++c) {
      TranslatorOptions topts;
      topts.idlist = combos[c].options;
      QueryStats stats;
      harness.RunSeabed(q, cluster, topts, &stats);
      std::printf(" %17.3f MB", static_cast<double>(stats.result_bytes) / 1e6);
      times[c].push_back(stats.TotalSeconds());
      recorder.AddStats(combos[c].label, {{"selectivity", static_cast<double>(sel)}}, stats);
      if (c == 0) {
        // Bitmap comparison: re-encode the same selection as a bitmap.
        Rng rng(hopts.seed);  // mirror the sel column generation
        IdSet ids;
        for (uint64_t row = 0; row < harness.rows(); ++row) {
          rng.Range(0, 1000);  // value column draw (keep streams aligned)
          const bool selected = rng.Below(100) < static_cast<uint64_t>(sel);
          if (selected) {
            ids.Add(1 + row);
          }
        }
        bitmap_bytes = BitmapEncode(ids).size();
      }
    }
    std::printf(" %11.3f MB\n", static_cast<double>(bitmap_bytes) / 1e6);
  }

  std::printf("\n=== Figure 8(b): end-to-end response time vs selectivity ===\n");
  std::printf("%6s", "sel%");
  for (const Combo& c : combos) {
    std::printf(" %20s", c.label);
  }
  std::printf("\n");
  for (int i = 0; i < 10; ++i) {
    std::printf("%6d", (i + 1) * 10);
    for (size_t c = 0; c < combos.size(); ++c) {
      std::printf(" %18.3f s", times[c][i]);
    }
    std::printf("\n");
  }

  std::printf("\n=== Section 4.5 ablation: worker-side vs driver-side compression ===\n");
  const Query q = SyntheticSumQuery(50);
  for (bool worker_side : {true, false}) {
    TranslatorOptions topts;
    topts.worker_side_compression = worker_side;
    QueryStats stats;
    harness.RunSeabed(q, cluster, topts, &stats);
    std::printf("%-14s %s\n", worker_side ? "workers" : "driver",
                LatencyLine("sel=50%", stats).c_str());
    recorder.AddStats(worker_side ? "compress_workers" : "compress_driver",
                      {{"selectivity", 50.0}}, stats);
  }
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
