// Figure 10(a) reproduction: response-time CDF for the ad-analytics workload
// (15 queries: five each with 1, 4 and 8 groups), plus the Section 6.6
// bandwidth sensitivity check (100 Mbps/10 ms and 10 Mbps/100 ms links).
//
// Paper: Seabed 1.08–1.45x NoEnc (median +27%); Paillier median 6.7x Seabed;
// low-bandwidth links add only 1% / 12% because ID lists stay small
// (~163.5 KB average).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/workload/ad_analytics.h"

namespace seabed {
namespace {

int Main() {
  AdAnalyticsSpec spec;
  spec.rows = EnvU64("SEABED_BENCH_ADA_ROWS", 200000);
  const Cluster cluster(BenchClusterConfig(100));
  const ClientKeys keys = ClientKeys::FromSeed(11);

  const auto table = MakeAdAnalyticsTable(spec);
  const PlainSchema schema = AdAnalyticsSchema(spec);
  PlannerOptions popts;
  popts.expected_rows = spec.rows;
  popts.max_storage_expansion = 3.0;  // the paper's storage-budget regime
  const EncryptionPlan plan = PlanEncryption(schema, AdAnalyticsSampleQueries(spec), popts);
  const Encryptor encryptor(keys);
  const EncryptedDatabase db = encryptor.Encrypt(*table, schema, plan);
  Server server;
  server.RegisterTable(db.table);

  const uint64_t scale = EnvU64("SEABED_BENCH_ADA_PAILLIER_SCALE", 8);
  AdAnalyticsSpec small = spec;
  small.rows = std::max<uint64_t>(1, spec.rows / scale);
  const auto table_small = MakeAdAnalyticsTable(small);
  Rng rng(5);
  const Paillier paillier =
      Paillier::GenerateKey(rng, static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS", 512)));
  const EncryptedDatabase base =
      encryptor.EncryptPaillierBaseline(*table_small, schema, plan, paillier, rng);

  // 15 queries: five variants at each group count, as in the paper.
  struct Sample {
    double noenc;
    double seabed;
    double paillier;
    uint64_t prf_calls;
    size_t id_bytes;
  };
  std::vector<Sample> samples;
  for (size_t groups : {1, 4, 8}) {
    for (uint64_t variant = 0; variant < 5; ++variant) {
      const Query q = AdAnalyticsPerfQuery(groups, 2, variant);

      Sample s{};
      s.noenc = ExecutePlain(*table, q, cluster).TotalSeconds();

      TranslatorOptions topts;
      topts.cluster_workers = cluster.num_workers();
      const Translator translator(db, keys);
      const TranslatedQuery tq = translator.Translate(q, topts);
      const EncryptedResponse response = server.Execute(tq.server, cluster);
      const Client client(db, keys);
      const ResultSet enc = client.Decrypt(response, tq, cluster);
      s.seabed = enc.TotalSeconds();
      s.prf_calls = client.last_prf_calls();
      s.id_bytes = response.response_bytes;

      TranslatorOptions base_topts = topts;
      base_topts.enable_group_inflation = false;
      const Translator base_translator(base, keys);
      const TranslatedQuery base_tq = base_translator.Translate(q, base_topts);
      const PaillierBaseline exec(paillier);
      ResultSet pr = exec.Execute(base, base_tq, cluster);
      pr.job.server_seconds *= static_cast<double>(scale);
      s.paillier = pr.TotalSeconds();
      samples.push_back(s);
    }
  }

  auto cdf = [](std::vector<double> xs, const char* label) {
    std::sort(xs.begin(), xs.end());
    std::printf("%-10s", label);
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      const size_t idx = std::min(xs.size() - 1, static_cast<size_t>(p * xs.size()));
      std::printf("  p%-3.0f=%8.3fs", p * 100, xs[idx]);
    }
    std::printf("\n");
  };

  std::printf("=== Figure 10(a): Ad Analytics response-time CDF (rows=%llu, 15 queries) ===\n",
              static_cast<unsigned long long>(spec.rows));
  std::vector<double> noenc, seabed_t, paillier_t;
  double total_prf = 0;
  double total_bytes = 0;
  for (const Sample& s : samples) {
    noenc.push_back(s.noenc);
    seabed_t.push_back(s.seabed);
    paillier_t.push_back(s.paillier);
    total_prf += static_cast<double>(s.prf_calls);
    total_bytes += static_cast<double>(s.id_bytes);
  }
  cdf(noenc, "NoEnc");
  cdf(seabed_t, "Seabed");
  cdf(paillier_t, "Paillier");

  const double med_noenc = noenc[noenc.size() / 2];
  const double med_seabed = seabed_t[seabed_t.size() / 2];
  const double med_paillier = paillier_t[paillier_t.size() / 2];
  std::printf("\nmedian Seabed / NoEnc   = %.2fx (paper: 1.27x)\n", med_seabed / med_noenc);
  std::printf("median Paillier / Seabed = %.2fx (paper: 6.7x)\n", med_paillier / med_seabed);
  std::printf("avg ID-list bytes per query = %.1f KB, avg PRF calls per decrypt = %.0f\n",
              total_bytes / samples.size() / 1e3, total_prf / samples.size());

  // Bandwidth sensitivity (Section 6.6): rerun one 8-group query on slower
  // client links; only the network term changes.
  std::printf("\n=== link sensitivity (8-group query) ===\n");
  const Query q = AdAnalyticsPerfQuery(8, 2, 0);
  for (auto [label, model] :
       std::initializer_list<std::pair<const char*, NetworkModel>>{
           {"2Gbps/0.5ms", NetworkModel::InCluster()},
           {"100Mbps/10ms", NetworkModel::Wan100Mbps()},
           {"10Mbps/100ms", NetworkModel::Wan10Mbps()}}) {
    ClusterConfig cfg = BenchClusterConfig(100);
    cfg.client_link = model;
    const Cluster link_cluster(cfg);
    TranslatorOptions topts;
    topts.cluster_workers = link_cluster.num_workers();
    const Translator translator(db, keys);
    const TranslatedQuery tq = translator.Translate(q, topts);
    const EncryptedResponse response = server.Execute(tq.server, link_cluster);
    const Client client(db, keys);
    const ResultSet r = client.Decrypt(response, tq, link_cluster);
    std::printf("%s\n", LatencyLine(label, r).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
