// Figure 10(a) reproduction: response-time CDF for the ad-analytics workload
// (15 queries: five each with 1, 4 and 8 groups), plus the Section 6.6
// bandwidth sensitivity check (100 Mbps/10 ms and 10 Mbps/100 ms links).
//
// Paper: Seabed 1.08–1.45x NoEnc (median +27%); Paillier median 6.7x Seabed;
// low-bandwidth links add only 1% / 12% because ID lists stay small
// (~163.5 KB average).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/workload/ad_analytics.h"

namespace seabed {
namespace {

SessionOptions AdaSessionOptions(BackendKind backend, uint64_t rows) {
  SessionOptions options;
  options.backend = backend;
  options.cluster = BenchClusterConfig(100);
  options.planner.expected_rows = rows;
  options.planner.max_storage_expansion = 3.0;  // the paper's storage-budget regime
  options.key_seed = 11;
  options.paillier.modulus_bits =
      static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS", 512));
  options.paillier.seed = 5;
  return options;
}

int Main() {
  AdAnalyticsSpec spec;
  spec.rows = EnvU64("SEABED_BENCH_ADA_ROWS", 200000);
  BenchRecorder recorder("fig10a_ada_cdf");

  const auto table = MakeAdAnalyticsTable(spec);
  const PlainSchema schema = AdAnalyticsSchema(spec);

  Session noenc(AdaSessionOptions(BackendKind::kPlain, spec.rows));
  Session seabed(AdaSessionOptions(BackendKind::kSeabed, spec.rows));
  noenc.Attach(table, schema, AdAnalyticsSampleQueries(spec));
  seabed.Attach(table, schema, AdAnalyticsSampleQueries(spec));

  const uint64_t scale = EnvU64("SEABED_BENCH_ADA_PAILLIER_SCALE", 8);
  AdAnalyticsSpec small = spec;
  small.rows = std::max<uint64_t>(1, spec.rows / scale);
  Session paillier(AdaSessionOptions(BackendKind::kPaillier, spec.rows));
  paillier.Attach(MakeAdAnalyticsTable(small), schema, AdAnalyticsSampleQueries(spec));

  // 15 queries: five variants at each group count, as in the paper.
  struct Sample {
    double noenc;
    double seabed;
    double paillier;
    uint64_t prf_calls;
    size_t id_bytes;
  };
  std::vector<Sample> samples;
  for (size_t groups : {1, 4, 8}) {
    for (uint64_t variant = 0; variant < 5; ++variant) {
      const Query q = AdAnalyticsPerfQuery(groups, 2, variant);

      Sample s{};
      QueryStats noenc_stats, seabed_stats, paillier_stats;
      noenc.Execute(q, &noenc_stats);
      s.noenc = noenc_stats.TotalSeconds();

      seabed.Execute(q, &seabed_stats);
      s.seabed = seabed_stats.TotalSeconds();
      s.prf_calls = seabed_stats.prf_calls;
      s.id_bytes = seabed_stats.result_bytes;

      paillier.Execute(q, &paillier_stats);
      paillier_stats.server_seconds *= static_cast<double>(scale);
      s.paillier = paillier_stats.TotalSeconds();
      samples.push_back(s);

      const std::map<std::string, double> fields = {
          {"groups", static_cast<double>(groups)},
          {"variant", static_cast<double>(variant)}};
      recorder.AddStats("noenc", fields, noenc_stats);
      recorder.AddStats("seabed", fields, seabed_stats);
      recorder.AddStats("paillier", fields, paillier_stats);
    }
  }

  auto cdf = [](std::vector<double> xs, const char* label) {
    std::sort(xs.begin(), xs.end());
    std::printf("%-10s", label);
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      const size_t idx = std::min(xs.size() - 1, static_cast<size_t>(p * xs.size()));
      std::printf("  p%-3.0f=%8.3fs", p * 100, xs[idx]);
    }
    std::printf("\n");
  };

  std::printf("=== Figure 10(a): Ad Analytics response-time CDF (rows=%llu, 15 queries) ===\n",
              static_cast<unsigned long long>(spec.rows));
  std::vector<double> noenc_t, seabed_t, paillier_t;
  double total_prf = 0;
  double total_bytes = 0;
  for (const Sample& s : samples) {
    noenc_t.push_back(s.noenc);
    seabed_t.push_back(s.seabed);
    paillier_t.push_back(s.paillier);
    total_prf += static_cast<double>(s.prf_calls);
    total_bytes += static_cast<double>(s.id_bytes);
  }
  cdf(noenc_t, "NoEnc");
  cdf(seabed_t, "Seabed");
  cdf(paillier_t, "Paillier");

  const double med_noenc = noenc_t[noenc_t.size() / 2];
  const double med_seabed = seabed_t[seabed_t.size() / 2];
  const double med_paillier = paillier_t[paillier_t.size() / 2];
  std::printf("\nmedian Seabed / NoEnc   = %.2fx (paper: 1.27x)\n", med_seabed / med_noenc);
  std::printf("median Paillier / Seabed = %.2fx (paper: 6.7x)\n", med_paillier / med_seabed);
  std::printf("avg ID-list bytes per query = %.1f KB, avg PRF calls per decrypt = %.0f\n",
              total_bytes / samples.size() / 1e3, total_prf / samples.size());

  // Bandwidth sensitivity (Section 6.6): rerun one 8-group query on slower
  // client links; only the network term changes.
  std::printf("\n=== link sensitivity (8-group query) ===\n");
  const Query q = AdAnalyticsPerfQuery(8, 2, 0);
  for (auto [label, model] :
       std::initializer_list<std::pair<const char*, NetworkModel>>{
           {"2Gbps/0.5ms", NetworkModel::InCluster()},
           {"100Mbps/10ms", NetworkModel::Wan100Mbps()},
           {"10Mbps/100ms", NetworkModel::Wan10Mbps()}}) {
    ClusterConfig cfg = BenchClusterConfig(100);
    cfg.client_link = model;
    const Cluster link_cluster(cfg);
    seabed.UseCluster(&link_cluster);
    QueryStats stats;
    seabed.Execute(q, &stats);
    std::printf("%s\n", LatencyLine(label, stats).c_str());
    recorder.AddStats(std::string("link_") + label, {}, stats);
    seabed.UseCluster(nullptr);  // link_cluster dies with this iteration
  }
  return 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
