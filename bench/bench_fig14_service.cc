// "Figure 14" (beyond the paper): closed-loop serving throughput through
// seabed::Service.
//
// The paper's deployment target is many analysts refreshing dashboards
// against one encrypted store; PR 1-13 measured single-query latency on the
// caller's thread. This bench puts the Service front-end over the sharded
// backend (4 shards, the paper-style modeled cluster) and drives it with N
// CLOSED-LOOP clients — each client submits one query from a zipfian mix,
// waits for the answer, verifies it against the plaintext reference, and
// immediately submits the next. Reported per client count (1/4/16/64):
// queries/sec plus P50/P99 end-to-end latency (queue wait + execution +
// the modeled server round trip, which the service "sleeps out" so measured
// throughput reflects the simulated cluster rather than host core count).
//
// Throughput must come from the serving layer itself: request overlap across
// workers, cross-query shape batching (one translation + one dispatch per
// group), and exact-duplicate coalescing — the zipf head makes both common,
// exactly like a popular dashboard. The gate: >= 3x queries/sec at 16
// clients vs 1 client (SEABED_BENCH_FIG14_MIN_SPEEDUP overrides), and every
// single answer byte-equal to kPlain. REGRESSION + nonzero exit otherwise.
//
// Env knobs: SEABED_BENCH_ROWS, SEABED_BENCH_FIG14_SECONDS (seconds per
// client point, default 4), SEABED_BENCH_FIG14_MIN_SPEEDUP (default 3).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/seabed/service.h"

namespace seabed {
namespace {

constexpr size_t kClientSweep[] = {1, 4, 16, 64};
constexpr size_t kShards = 4;
constexpr uint64_t kGroups = 100;

// Canonical row strings (sorted, doubles at 4 places) for the per-answer
// plaintext equality check.
std::vector<std::string> CanonicalRows(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// The dashboard mix: a zipfian head of hot shapes (coalescing + plan-cache
// fodder) over a tail of parameter variants.
std::vector<Query> QueryMix() {
  std::vector<Query> mix;
  mix.push_back(SyntheticSumQuery(10));
  mix.push_back(SyntheticSumQuery(25));
  mix.push_back(SyntheticGroupByQuery(kGroups));
  {
    Query q = SyntheticSumQuery(50);
    q.Count("n");
    mix.push_back(q);
  }
  {
    Query q = SyntheticSumQuery(60);
    q.Avg("value", "mean");
    mix.push_back(q);
  }
  mix.push_back(SyntheticSumQuery(5));
  mix.push_back(SyntheticSumQuery(75));
  {
    Query q = SyntheticSumQuery(40);
    q.Count("n").Avg("value", "mean");
    mix.push_back(q);
  }
  mix.push_back(SyntheticSumQuery(90));
  mix.push_back(SyntheticSumQuery(100));
  mix.push_back(SyntheticSumQuery(20));
  {
    Query q = SyntheticGroupByQuery(kGroups);
    q.Where("sel", CmpOp::kLt, int64_t{50});
    mix.push_back(q);
  }
  return mix;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(values.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(values.size())));
  return values[idx];
}

int Main() {
  const double point_seconds =
      static_cast<double>(EnvU64("SEABED_BENCH_FIG14_SECONDS", 4));
  const double min_speedup =
      static_cast<double>(EnvU64("SEABED_BENCH_FIG14_MIN_SPEEDUP", 3));
  const Cluster cluster(BenchClusterConfig(16));
  BenchRecorder recorder("fig14_service");

  SyntheticHarness::Options options = SyntheticHarness::FromEnv();
  options.group_cardinality = kGroups;
  options.build_paillier = false;  // the story here is serving, not baselines
  SyntheticHarness harness(options);

  const std::vector<Query> mix = QueryMix();
  std::vector<std::vector<std::string>> references;
  references.reserve(mix.size());
  for (const Query& q : mix) {
    references.push_back(CanonicalRows(harness.RunNoEnc(q, cluster)));
  }

  // One service across the whole sweep (steady-state serving: the plan cache
  // stays warm between points, like a long-lived deployment).
  ServiceOptions sopts;
  sopts.session = harness.MakeSessionOptions(BackendKind::kShardedSeabed);
  sopts.session.shards = kShards;
  sopts.session.external_cluster = &cluster;
  sopts.num_workers = 80;  // parked in modeled latency most of the time
  sopts.max_queue_depth = 4096;
  sopts.max_batch = 16;
  sopts.pace_modeled_latency = true;  // sleep out the simulated round trip
  Service service(sopts);
  service.AttachPlanned(harness.plain_shared(), harness.schema(),
                        harness.seabed().plan("synthetic"));

  std::printf("=== Figure 14: closed-loop serving throughput, %zu-shard backend "
              "(rows=%llu, %.0fs per point) ===\n",
              kShards, static_cast<unsigned long long>(harness.rows()), point_seconds);
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "clients", "qps", "p50(s)", "p99(s)",
              "queries", "groups", "coalesced");

  std::atomic<uint64_t> mismatches{0};
  std::vector<double> qps_by_point;
  for (const size_t clients : kClientSweep) {
    const ServiceCounters before = service.counters();
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<uint64_t> completed{0};
    const auto start = std::chrono::steady_clock::now();
    const auto end = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(point_seconds));

    std::vector<std::thread> drivers;
    for (size_t c = 0; c < clients; ++c) {
      drivers.emplace_back([&, c] {
        Rng rng(1000 + 31 * c);
        const ZipfSampler zipf(mix.size(), 1.2);
        while (std::chrono::steady_clock::now() < end) {
          const size_t pick = static_cast<size_t>(zipf.Sample(rng));
          const auto issued = std::chrono::steady_clock::now();
          ServiceResult r = service.Submit(mix[pick]).get();
          const std::chrono::duration<double> took =
              std::chrono::steady_clock::now() - issued;
          if (!r.ok || CanonicalRows(r.rows) != references[pick]) {
            mismatches.fetch_add(1);
            continue;
          }
          latencies[c].push_back(took.count());
          completed.fetch_add(1);
        }
      });
    }
    for (std::thread& t : drivers) {
      t.join();
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    const double qps = static_cast<double>(completed.load()) / elapsed.count();
    const double p50 = Percentile(all, 0.50);
    const double p99 = Percentile(all, 0.99);
    const ServiceCounters after = service.counters();
    qps_by_point.push_back(qps);

    std::printf("%8zu %10.2f %10.4f %10.4f %10llu %10llu %10llu\n", clients, qps, p50, p99,
                static_cast<unsigned long long>(completed.load()),
                static_cast<unsigned long long>(after.groups - before.groups),
                static_cast<unsigned long long>(after.coalesced - before.coalesced));
    recorder.Add("sharded4", {{"clients", static_cast<double>(clients)},
                              {"queries_per_second", qps},
                              {"total_seconds", p50},
                              {"p99_seconds", p99}});
  }
  service.Shutdown();

  const double speedup = qps_by_point[0] > 0 ? qps_by_point[2] / qps_by_point[0] : 0;
  std::printf("\nqps @16 clients / qps @1 client = %.2fx (gate: >= %.0fx)\n", speedup,
              min_speedup);
  recorder.Add("summary", {{"median_speedup", speedup}});

  bool failed = false;
  if (mismatches.load() > 0) {
    std::printf("REGRESSION: %llu answers diverged from the plaintext reference\n",
                static_cast<unsigned long long>(mismatches.load()));
    failed = true;
  }
  if (speedup < min_speedup) {
    std::printf("REGRESSION: concurrent throughput scaled %.2fx, below the %.0fx gate\n",
                speedup, min_speedup);
    failed = true;
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
