// "Figure 18" (beyond the paper): value-aware shard placement and
// coordinator-side routing on the scale-out backend.
//
// Seabed's ad-analytics workloads are time-ordered and their queries are
// time-sliced, but hash placement scatters every time range across the whole
// fleet: a 1%-selective slice still fans out to — and scans — all shards.
// Under PlacementPolicy::kKeyRange (src/seabed/placement.h) each shard owns a
// contiguous clustering-key range, so the coordinator routes a clustering-key
// range predicate to the owning shard subset before any fan-out (round-zero
// pruning, QueryStats::shards_routed). This bench builds the same
// time-ordered table under both policies and gates three claims:
//
//   * ROUTING: at <= 1% selectivity the key-range fleet's median *fleet
//     compute* (sum of per-shard probe + round-two seconds plus the
//     coordinator merge) must be >= 3x below the hash fleet's, with
//     shards_routed < shards_total on every routed query and rows identical
//     to the plaintext reference. Fleet compute, not the parallel critical
//     path, is the gated metric: it is what an N-query workload actually
//     buys in throughput when slices stop occupying all 8 shards.
//   * NO REGRESSION: a non-routable full-table aggregate (no clustering-key
//     filter) reports the full fleet and its fleet compute stays within 1.5x
//     of hash placement — routing must not tax queries it cannot help.
//   * ZERO-MATCH: a slice beyond the occupied key space routes to zero
//     shards, skips both rounds outright (no probe, no rows touched), and
//     still returns the plaintext answer.
//
// Prepared execution is exercised on the same slice shape: routing happens
// after bind, so bound parameters must route identically to the ad-hoc query.
//
// Cluster job/task overheads and the client link latency are zeroed as in
// bench_fig12/fig13: both fleets pay identical constants, and at smoke scale
// those constants would swamp the compute ratio the gate measures. The probe
// is forced off for the timed runs so the gate isolates round-zero routing
// from round-one count-probe pruning (which also helps the hash fleet).
//
// Exit status is the CI gate: nonzero when any claim fails.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/seabed/sharded_backend.h"

namespace seabed {
namespace {

constexpr size_t kShards = 8;

// Time-ordered events: ts is the row index (monotone, as an ingest timestamp
// would be), value is the aggregated payload.
std::shared_ptr<Table> MakeEventTable(uint64_t rows) {
  auto table = std::make_shared<Table>("events");
  auto ts = std::make_shared<Int64Column>();
  auto value = std::make_shared<Int64Column>();
  Rng rng(4242);
  for (uint64_t row = 0; row < rows; ++row) {
    ts->Append(static_cast<int64_t>(row));
    value->Append(rng.Range(0, 1000));
  }
  table->AddColumn("ts", ts);
  table->AddColumn("value", value);
  return table;
}

PlainSchema EventSchema() {
  PlainSchema schema;
  schema.table_name = "events";
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"value", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

// The planner sees the slice shape it will serve: a closed ts range feeding
// an aggregate, so ts is realized with ORE.
std::vector<Query> EventSamples(uint64_t rows) {
  std::vector<Query> samples;
  Query q;
  q.table = "events";
  q.Sum("value", "total").Count("n");
  q.Where("ts", CmpOp::kGe, static_cast<int64_t>(rows / 4));
  q.Where("ts", CmpOp::kLe, static_cast<int64_t>(rows / 4 + rows / 100));
  samples.push_back(q);
  return samples;
}

Query SliceQuery(int64_t lo, int64_t hi) {
  Query q;
  q.table = "events";
  q.Sum("value", "total").Count("n");
  q.Where("ts", CmpOp::kGe, lo);
  q.Where("ts", CmpOp::kLe, hi);
  return q;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// Total work the fleet performed for one query: every shard's probe and
// round-two seconds plus the coordinator merge. Unlike server_seconds (the
// parallel critical path), this is the capacity a routed query frees up.
double FleetSeconds(const QueryStats& stats) {
  double total = stats.merge_seconds;
  total += std::accumulate(stats.shard_probe_seconds.begin(),
                           stats.shard_probe_seconds.end(), 0.0);
  total += std::accumulate(stats.shard_server_seconds.begin(),
                           stats.shard_server_seconds.end(), 0.0);
  return total;
}

// Order-insensitive row digest (doubles rounded), so encrypted pipelines
// compare equal to the plaintext reference regardless of group order.
std::vector<std::string> RowsKey(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

SessionOptions MakeOptions(BackendKind backend, uint64_t rows,
                           PlacementPolicy policy, size_t row_group_size) {
  SessionOptions options;
  options.backend = backend;
  options.shards = kShards;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.cluster.client_link.latency_seconds = 0;
  options.planner.expected_rows = rows;
  options.probe.row_group_size = row_group_size;
  options.probe.mode = ProbeMode::kOff;  // isolate routing from probe pruning
  options.shards_placement.policy = policy;
  if (policy == PlacementPolicy::kKeyRange) {
    options.shards_placement.clustering_columns["events"] = "ts";
  }
  return options;
}

int Main() {
  // 50k-row floor as in fig12/fig13: below that the gate measures timer noise.
  const uint64_t rows = std::max<uint64_t>(50000, EnvU64("SEABED_BENCH_ROWS", 400000));
  const uint64_t repeat = std::max<uint64_t>(3, EnvU64("SEABED_BENCH_REPEAT", 5));
  const size_t row_group_size = rows <= 100000 ? 256 : 1024;
  BenchRecorder recorder("fig18_placement");

  const auto data = MakeEventTable(rows);
  const PlainSchema schema = EventSchema();
  const std::vector<Query> samples = EventSamples(rows);

  Session plain(MakeOptions(BackendKind::kPlain, rows, PlacementPolicy::kHash,
                            row_group_size));
  Session hashed(MakeOptions(BackendKind::kShardedSeabed, rows,
                             PlacementPolicy::kHash, row_group_size));
  Session ranged(MakeOptions(BackendKind::kShardedSeabed, rows,
                             PlacementPolicy::kKeyRange, row_group_size));
  for (Session* s : {&plain, &hashed, &ranged}) {
    s->Attach(data, schema, samples);
  }

  std::printf("=== Figure 18: value-aware placement + shard routing "
              "(rows=%llu, shards=%zu, repeat=%llu) ===\n",
              static_cast<unsigned long long>(rows), kShards,
              static_cast<unsigned long long>(repeat));
  const auto& ranged_backend = static_cast<const ShardedSeabedBackend&>(ranged.executor());
  std::printf("%-10s", "key-range:");
  for (const size_t c : ranged_backend.ShardRowCounts("events")) {
    std::printf(" %8zu", c);
  }
  std::printf("\n");

  bool gate_failed = false;

  // --- claim 1: routed selective slices >= 3x less fleet compute -------------
  const struct {
    const char* label;
    double selectivity;
  } kSlices[] = {{"slice-1pct", 0.01}, {"slice-0.1pct", 0.001}};
  struct Fleet {
    const char* label;
    Session* session;
    bool routable;
  };
  const Fleet fleets[] = {{"hash", &hashed, false}, {"keyrange", &ranged, true}};
  for (const auto& slice : kSlices) {
    const int64_t width =
        std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(rows) * slice.selectivity));
    const int64_t lo = static_cast<int64_t>(rows) / 2;
    const Query q = SliceQuery(lo, lo + width - 1);
    const std::vector<std::string> reference = RowsKey(plain.Execute(q, nullptr));

    double medians[2] = {};
    uint64_t routed[2] = {};
    for (size_t f = 0; f < std::size(fleets); ++f) {
      fleets[f].session->Execute(q, nullptr);  // untimed warm-up
      std::vector<double> seconds;
      for (uint64_t r = 0; r < repeat; ++r) {
        QueryStats stats;
        const ResultSet result = fleets[f].session->Execute(q, &stats);
        if (RowsKey(result) != reference) {
          std::printf("REGRESSION: %s %s diverged from kPlain\n", fleets[f].label,
                      slice.label);
          gate_failed = true;
        }
        seconds.push_back(FleetSeconds(stats));
        routed[f] = stats.shards_routed;
        if (stats.shards_total != kShards) {
          std::printf("REGRESSION: %s %s reported shards_total=%llu (fleet is %zu)\n",
                      fleets[f].label, slice.label,
                      static_cast<unsigned long long>(stats.shards_total), kShards);
          gate_failed = true;
        }
        const bool subset = stats.shards_routed < stats.shards_total;
        if (subset != fleets[f].routable) {
          std::printf("REGRESSION: %s %s routed %llu/%llu shards (expected %s)\n",
                      fleets[f].label, slice.label,
                      static_cast<unsigned long long>(stats.shards_routed),
                      static_cast<unsigned long long>(stats.shards_total),
                      fleets[f].routable ? "a strict subset" : "the full fleet");
          gate_failed = true;
        }
        recorder.AddStats(fleets[f].label,
                          {{"selectivity", slice.selectivity},
                           {"fleet_seconds", FleetSeconds(stats)},
                           {"shards_routed", static_cast<double>(stats.shards_routed)}},
                          stats);
      }
      medians[f] = Median(std::move(seconds));
    }
    const double speedup = medians[1] > 0 ? medians[0] / medians[1] : 0;
    std::printf("%s fleet compute: hash=%.6f keyrange=%.6f (%.1fx, routed %llu/%zu)\n",
                slice.label, medians[0], medians[1], speedup,
                static_cast<unsigned long long>(routed[1]), kShards);
    if (speedup < 3.0) {
      std::printf("REGRESSION: %s key-range routing is only %.2fx better than hash "
                  "(>= 3x required)\n", slice.label, speedup);
      gate_failed = true;
    }
  }

  // --- claim 2: non-routable queries pay no routing tax ----------------------
  Query scan;
  scan.table = "events";
  scan.Sum("value", "total").Count("n");
  const std::vector<std::string> scan_reference = RowsKey(plain.Execute(scan, nullptr));
  double scan_medians[2] = {};
  for (size_t f = 0; f < std::size(fleets); ++f) {
    fleets[f].session->Execute(scan, nullptr);  // untimed warm-up
    std::vector<double> seconds;
    for (uint64_t r = 0; r < repeat; ++r) {
      QueryStats stats;
      const ResultSet result = fleets[f].session->Execute(scan, &stats);
      if (RowsKey(result) != scan_reference) {
        std::printf("REGRESSION: %s full scan diverged from kPlain\n", fleets[f].label);
        gate_failed = true;
      }
      if (stats.shards_routed != stats.shards_total) {
        std::printf("REGRESSION: %s full scan routed %llu/%llu shards "
                    "(non-routable queries must fan out)\n", fleets[f].label,
                    static_cast<unsigned long long>(stats.shards_routed),
                    static_cast<unsigned long long>(stats.shards_total));
        gate_failed = true;
      }
      seconds.push_back(FleetSeconds(stats));
      recorder.AddStats(fleets[f].label,
                        {{"selectivity", 1.0},
                         {"fleet_seconds", FleetSeconds(stats)},
                         {"shards_routed", static_cast<double>(stats.shards_routed)}},
                        stats);
    }
    scan_medians[f] = Median(std::move(seconds));
  }
  std::printf("full scan fleet compute: hash=%.6f keyrange=%.6f (%.2fx)\n",
              scan_medians[0], scan_medians[1],
              scan_medians[0] > 0 ? scan_medians[1] / scan_medians[0] : 0);
  if (scan_medians[1] > scan_medians[0] * 1.5) {
    std::printf("REGRESSION: key-range full scan costs %.2fx hash placement "
                "(<= 1.5x required on non-routable queries)\n",
                scan_medians[1] / scan_medians[0]);
    gate_failed = true;
  }

  // --- claim 3: zero-owner slices skip both rounds ---------------------------
  {
    const Query q = SliceQuery(static_cast<int64_t>(rows) * 2,
                               static_cast<int64_t>(rows) * 2 + 10);
    const std::vector<std::string> expect = RowsKey(plain.Execute(q, nullptr));
    QueryStats stats;
    const ResultSet result = ranged.Execute(q, &stats);
    std::printf("zero-match slice: routed %llu/%llu, rows_touched=%llu\n",
                static_cast<unsigned long long>(stats.shards_routed),
                static_cast<unsigned long long>(stats.shards_total),
                static_cast<unsigned long long>(stats.rows_touched));
    if (RowsKey(result) != expect) {
      std::printf("REGRESSION: zero-match slice diverged from kPlain\n");
      gate_failed = true;
    }
    if (stats.shards_routed != 0 || stats.rows_touched != 0 || stats.probe_used) {
      std::printf("REGRESSION: zero-match slice did not short-circuit "
                  "(routed=%llu rows=%llu probe=%d)\n",
                  static_cast<unsigned long long>(stats.shards_routed),
                  static_cast<unsigned long long>(stats.rows_touched),
                  stats.probe_used ? 1 : 0);
      gate_failed = true;
    }
  }

  // --- prepared execution routes on bound params -----------------------------
  {
    Query shape;
    shape.table = "events";
    shape.Sum("value", "total").Count("n");
    shape.WhereParam("ts", CmpOp::kGe);
    shape.WhereParam("ts", CmpOp::kLe);
    const int64_t lo = static_cast<int64_t>(rows) / 4;
    const int64_t hi = lo + static_cast<int64_t>(rows) / 200;
    const std::vector<Value> params = {lo, hi};
    const std::vector<std::string> expect =
        RowsKey(plain.Execute(SliceQuery(lo, hi), nullptr));
    const PreparedQuery prepared = ranged.Prepare(shape);
    QueryStats stats;
    const ResultSet result = ranged.Execute(prepared, params, &stats);
    std::printf("prepared slice: routed %llu/%llu\n",
                static_cast<unsigned long long>(stats.shards_routed),
                static_cast<unsigned long long>(stats.shards_total));
    if (RowsKey(result) != expect) {
      std::printf("REGRESSION: prepared slice diverged from kPlain\n");
      gate_failed = true;
    }
    if (stats.shards_routed >= stats.shards_total) {
      std::printf("REGRESSION: prepared slice did not route on bound params "
                  "(%llu/%llu)\n",
                  static_cast<unsigned long long>(stats.shards_routed),
                  static_cast<unsigned long long>(stats.shards_total));
      gate_failed = true;
    }
    recorder.AddStats("keyrange-prepared",
                      {{"selectivity", 0.005},
                       {"fleet_seconds", FleetSeconds(stats)},
                       {"shards_routed", static_cast<double>(stats.shards_routed)}},
                      stats);
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
