// "Figure 12" (beyond the paper): the two-round probe-and-prune crossover on
// the single-server backend.
//
// Sweeps query selectivity from 0.1% to 100% over a clustered table (rows
// laid out in contiguous runs per segment — the time/tenant-partitioned
// layout row-group pruning exists for) and runs every point at probe mode
// off, auto and forced (SessionOptions::probe, src/seabed/probe.h):
//
//   * at LOW selectivity the probe round prunes almost every row group, so
//     round two scans a sliver of the table — auto must be >= 2x cheaper
//     than off at <= 1% selectivity;
//   * at HIGH selectivity pruning cannot help; auto's cost gate (the
//     planner's selectivity estimate vs. the probe threshold) must DECLINE
//     to probe, staying within 10% of off, while forced shows the price of
//     probing anyway.
//
// The cluster's fixed job/task overheads and the client link's fixed latency
// are zeroed here: the probe is a driver-side summary lookup, not an extra
// cluster job or network round trip, so those constants are identical across
// the modes and would only flatten the crossover the sweep exists to show
// (at smoke-scale row counts the 0.5 ms link latency alone would swamp the
// entire scan).
//
// Exit status is the CI gate: nonzero when the low-selectivity win or the
// high-selectivity no-regression bound fails.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"

namespace seabed {
namespace {

// Segment frequencies, also published to the planner as the ValueDistribution
// auto mode's selectivity estimate reads. Runs are contiguous, so an equality
// filter on sK touches exactly one stretch of row groups.
constexpr struct {
  const char* seg;
  double frequency;
} kSegments[] = {
    {"s0", 0.001}, {"s1", 0.009}, {"s2", 0.04}, {"s3", 0.20}, {"s4", 0.75},
};

std::shared_ptr<Table> MakeClusteredTable(uint64_t rows) {
  auto table = std::make_shared<Table>("sweep");
  auto seg = std::make_shared<StringColumn>();
  auto value = std::make_shared<Int64Column>();
  Rng rng(4242);
  size_t emitted = 0;
  for (const auto& s : kSegments) {
    // The last segment absorbs the rounding remainder.
    const size_t run = &s == &kSegments[std::size(kSegments) - 1]
                           ? rows - emitted
                           : static_cast<size_t>(static_cast<double>(rows) * s.frequency);
    for (size_t i = 0; i < run; ++i) {
      seg->Append(s.seg);
      value->Append(rng.Range(0, 1000));
    }
    emitted += run;
  }
  table->AddColumn("seg", seg);
  table->AddColumn("value", value);
  return table;
}

PlainSchema SweepSchema() {
  PlainSchema schema;
  schema.table_name = "sweep";
  ValueDistribution dist;
  for (const auto& s : kSegments) {
    dist.values.push_back(s.seg);
    dist.frequencies.push_back(s.frequency);
  }
  schema.columns.push_back({"seg", ColumnType::kString, true, dist});
  schema.columns.push_back({"value", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

std::vector<Query> SweepSamples() {
  std::vector<Query> samples;
  // seg appears in a GROUP BY so the planner realizes it with DET rather
  // than SPLASHE — a splayed filter leaves no server predicate to probe.
  Query q;
  q.table = "sweep";
  q.Sum("value").Count();
  q.Where("seg", CmpOp::kEq, std::string("s0"));
  q.GroupBy("seg");
  samples.push_back(q);
  return samples;
}

struct Point {
  const char* label;
  double selectivity;
  Query query;
};

std::vector<Point> SweepPoints() {
  std::vector<Point> points;
  for (const auto& s : kSegments) {
    Query q;
    q.table = "sweep";
    q.Sum("value", "total").Count("n");
    q.Where("seg", CmpOp::kEq, std::string(s.seg));
    points.push_back({s.seg, s.frequency, std::move(q)});
  }
  {
    // The 100% point: a not-equals filter every row passes. It is prunable
    // (forced mode pays a useless probe) but estimates to selectivity 1.0,
    // so auto declines and must track off.
    Query q;
    q.table = "sweep";
    q.Sum("value", "total").Count("n");
    q.Where("seg", CmpOp::kNe, std::string("none"));
    points.push_back({"all", 1.0, std::move(q)});
  }
  return points;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int Main() {
  // Floor of 50k rows: below that the full scan itself is only tens of
  // microseconds and the gate would be measuring host-timer noise, not the
  // crossover. (The smoke run's 20k is raised; the sweep stays sub-second.)
  const uint64_t rows = std::max<uint64_t>(50000, EnvU64("SEABED_BENCH_ROWS", 2000000));
  const uint64_t repeat = std::max<uint64_t>(3, EnvU64("SEABED_BENCH_REPEAT", 5));
  BenchRecorder recorder("fig12_probe");

  SessionOptions options;
  options.backend = BackendKind::kSeabed;
  // 4 workers keeps the sweep scan-bound: with a very wide cluster the FULL
  // scan's critical path shrinks toward one pruned row group per worker and
  // host-thread dispatch jitter, not scan work, decides the ratio.
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.cluster.client_link.latency_seconds = 0;
  options.planner.expected_rows = rows;
  Session session(std::move(options));
  session.Attach(MakeClusteredTable(rows), SweepSchema(), SweepSamples());
  {
    // Smoke-scale tables get finer row groups: with the default 1024-row
    // groups a 20k-row table has only ~20 of them, so a 0.1% segment still
    // costs a whole kilorow-group scan and the crossover blurs into noise.
    ProbeOptions popts = session.probe_options();
    popts.row_group_size = rows <= 100000 ? 256 : 1024;
    session.set_probe_options(popts);
  }

  constexpr ProbeMode kModes[] = {ProbeMode::kOff, ProbeMode::kAuto, ProbeMode::kForced};
  const std::vector<Point> points = SweepPoints();

  std::printf("=== Figure 12: probe-and-prune crossover, single-server backend "
              "(rows=%llu, repeat=%llu, row groups of %zu) ===\n",
              static_cast<unsigned long long>(rows), static_cast<unsigned long long>(repeat),
              session.probe_options().row_group_size);
  std::printf("%-6s %8s %12s %12s %12s %9s %8s %12s\n", "point", "sel%", "off(s)", "auto(s)",
              "forced(s)", "speedup", "probed", "pruned");

  bool gate_failed = false;
  for (const Point& point : points) {
    double medians[std::size(kModes)] = {};
    QueryStats last_auto, last_forced;
    for (size_t m = 0; m < std::size(kModes); ++m) {
      ProbeOptions popts = session.probe_options();
      popts.mode = kModes[m];
      session.set_probe_options(popts);
      session.Execute(point.query, nullptr);  // untimed warm-up (pool spin-up)
      std::vector<double> totals;
      for (uint64_t r = 0; r < repeat; ++r) {
        QueryStats stats;
        session.Execute(point.query, &stats);
        totals.push_back(stats.TotalSeconds());
        recorder.AddStats(ProbeModeName(kModes[m]),
                          {{"selectivity", point.selectivity},
                           {"probe_used", stats.probe_used ? 1.0 : 0.0},
                           {"probe_seconds", stats.probe_seconds},
                           {"row_groups_pruned", static_cast<double>(stats.row_groups_pruned)},
                           {"row_groups_total", static_cast<double>(stats.row_groups_total)}},
                          stats);
        if (kModes[m] == ProbeMode::kAuto) {
          last_auto = stats;
        } else if (kModes[m] == ProbeMode::kForced) {
          last_forced = stats;
        }
      }
      medians[m] = Median(std::move(totals));
    }

    const double off = medians[0], auto_s = medians[1], forced = medians[2];
    const double speedup = auto_s > 0 ? off / auto_s : 0;
    char pruned[32];
    std::snprintf(pruned, sizeof(pruned), "%llu/%llu",
                  static_cast<unsigned long long>(last_forced.row_groups_pruned),
                  static_cast<unsigned long long>(last_forced.row_groups_total));
    std::printf("%-6s %8.2f %12.6f %12.6f %12.6f %8.1fx %8s %12s\n", point.label,
                point.selectivity * 100, off, auto_s, forced, speedup,
                last_auto.probe_used ? "yes" : "no", pruned);

    // --- the acceptance gates -------------------------------------------------
    if (point.selectivity <= 0.01) {
      if (last_auto.probe_used != true || speedup < 2.0) {
        std::printf("REGRESSION: %s (sel %.2f%%) auto is only %.2fx faster than off "
                    "(>= 2x required)\n",
                    point.label, point.selectivity * 100, speedup);
        gate_failed = true;
      }
    }
    if (point.selectivity >= 1.0) {
      // 1 ms absolute slack: at smoke row counts both medians are tens of
      // microseconds and a 10% relative bound would gate timer noise.
      if (last_auto.probe_used || auto_s > off * 1.10 + 1e-3) {
        std::printf("REGRESSION: %s auto did not decline the probe (probed=%d, "
                    "%.6fs vs off %.6fs)\n",
                    point.label, last_auto.probe_used ? 1 : 0, auto_s, off);
        gate_failed = true;
      }
    }
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
