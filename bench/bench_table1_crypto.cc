// Table 1 reproduction: cost of individual crypto operations.
//
//   Paper (2.2 GHz Xeon):          AES ctr 47 ns | Paillier enc 5.1 ms |
//   ASHE enc/dec 12-24 ns | plain add 1 ns | Paillier add 3.8 µs |
//   Paillier dec 3.4 ms
//
// Paillier numbers here use a portable bignum (no GMP) and a configurable
// modulus (SEABED_BENCH_PAILLIER_BITS, default 1024 = the paper's 2048-bit
// ciphertexts); absolute values differ from the paper but the orders of
// magnitude — ASHE ~ns, Paillier ~ms — are the point of the table.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/crypto/ashe.h"
#include "src/crypto/paillier.h"

namespace seabed {
namespace {

void BM_AesCounterMode(benchmark::State& state) {
  const Aes128 aes(AesKey::FromSeed(1));
  uint64_t words[2];
  uint64_t counter = 0;
  for (auto _ : state) {
    aes.EncryptCounter(counter++, words);
    benchmark::DoNotOptimize(words);
  }
  state.SetLabel(aes.using_hardware() ? "AES-NI" : "portable");
}
BENCHMARK(BM_AesCounterMode);

void BM_AesCounterModePortable(benchmark::State& state) {
  const Aes128 aes(AesKey::FromSeed(1), /*force_portable=*/true);
  uint8_t block[16] = {};
  uint8_t out[16];
  for (auto _ : state) {
    aes.EncryptBlock(block, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AesCounterModePortable);

void BM_AsheEncrypt(benchmark::State& state) {
  const Ashe ashe(AesKey::FromSeed(2));
  uint64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ashe.EncryptCell(12345, id++));
  }
}
BENCHMARK(BM_AsheEncrypt);

void BM_AsheDecryptCell(benchmark::State& state) {
  const Ashe ashe(AesKey::FromSeed(3));
  uint64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ashe.DecryptCell(987654, id++));
  }
}
BENCHMARK(BM_AsheDecryptCell);

void BM_AsheDecryptRangeSum(benchmark::State& state) {
  // Decrypting an aggregate over a contiguous range: 2 PRF calls total.
  const Ashe ashe(AesKey::FromSeed(4));
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  AsheCiphertext ct;
  for (uint64_t id = 1; id <= n; ++id) {
    ct.value += ashe.EncryptCell(id, id);
  }
  ct.ids = IdSet::FromRange(1, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ashe.Decrypt(ct));
  }
  state.SetLabel("range length " + std::to_string(n));
}
BENCHMARK(BM_AsheDecryptRangeSum)->Arg(1000)->Arg(1000000);

void BM_PlainAdd(benchmark::State& state) {
  uint64_t acc = 0;
  uint64_t x = 123;
  for (auto _ : state) {
    acc += x;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PlainAdd);

void BM_AsheAdd(benchmark::State& state) {
  // The homomorphic ⊕ on the server: native add + ID bookkeeping.
  AsheCiphertext acc;
  uint64_t id = 1;
  for (auto _ : state) {
    acc.value += 17;
    acc.ids.Add(id++);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_AsheAdd);

struct PaillierFixture {
  PaillierFixture()
      : rng(9),
        paillier(Paillier::GenerateKey(
            rng, static_cast<int>(EnvU64("SEABED_BENCH_PAILLIER_BITS", 1024)))) {}
  Rng rng;
  Paillier paillier;
};

PaillierFixture& GetPaillier() {
  static PaillierFixture fixture;
  return fixture;
}

void BM_PaillierEncrypt(benchmark::State& state) {
  auto& f = GetPaillier();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.paillier.Encrypt(BigNum(12345), f.rng));
  }
}
BENCHMARK(BM_PaillierEncrypt)->Unit(benchmark::kMicrosecond);

void BM_PaillierAdd(benchmark::State& state) {
  auto& f = GetPaillier();
  const BigNum c1 = f.paillier.Encrypt(BigNum(1), f.rng);
  BigNum acc = f.paillier.Encrypt(BigNum(0), f.rng);
  for (auto _ : state) {
    acc = f.paillier.Add(acc, c1);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PaillierAdd)->Unit(benchmark::kMicrosecond);

void BM_PaillierDecrypt(benchmark::State& state) {
  auto& f = GetPaillier();
  const BigNum ct = f.paillier.Encrypt(BigNum(424242), f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.paillier.Decrypt(ct));
  }
}
BENCHMARK(BM_PaillierDecrypt)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace seabed

BENCHMARK_MAIN();
