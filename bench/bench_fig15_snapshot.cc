// "Figure 15" (beyond the paper): snapshot-isolated serving under sustained
// ingest.
//
// The tentpole claim behind this bench: appends never block queries. The old
// serving path quiesced the whole service around every append — freeze the
// dispatch lanes, drain every in-flight query, then encrypt and merge the
// batch under an exclusive lock. That discipline is global: an append to ANY
// table stalls queries against EVERY table. The snapshot path builds the
// successor table version off to the side and publishes it with one atomic
// pointer swap; readers keep the version they pinned and tables are
// completely independent.
//
// The workload is the classic HTAP split that makes the difference visible:
//   - a small, hot "synthetic" dashboard table serving kClients closed-loop
//     query clients (cheap selective aggregates, paced by the modeled
//     cluster round trip — clients are mostly idle between answers, exactly
//     when ingest work should be running);
//   - a large "events" table taking a sustained append stream: kAppends
//     batches on a fixed wall-clock schedule (one every kAppendSpacing, the
//     cadence of a log-structured ingest pipeline), each batch several times
//     the events table's seed data;
//   - one mid-window "audit" query against the events table itself, which
//     must equal the plaintext answer at SOME append state — a reader of the
//     actively-ingesting table pins exactly one published version, so a torn
//     scan or half-applied batch is a correctness failure, not a perf blip.
//
// The A/B runs the SAME workload twice through seabed::Service over the
// sharded backend — once with force_quiesce_appends=true (the pre-snapshot
// lock discipline) and once in the default snapshot mode. Under the rwlock
// discipline every append spends its encrypt+merge (plus the drain of
// in-flight paced queries) with the service exclusively locked, so most of
// each ingest period is dead time for the dashboard; under snapshots the
// same append work overlaps the clients' paced idle gaps.
//
// Gates (REGRESSION + nonzero exit otherwise):
//   - every dashboard answer equals the plaintext reference, and every
//     events answer equals the plaintext reference at some append state,
//   - dashboard queries/sec under ingest >= 2x the quiescing baseline
//     (SEABED_BENCH_FIG15_MIN_SPEEDUP overrides),
//   - snapshot-mode p99 latency no worse than the baseline's p99
//     (SEABED_BENCH_FIG15_MAX_P99_PCT, percent, default 100): the whole
//     point is that the ingest stalls vanish from the tail.
//
// Env knobs: SEABED_BENCH_ROWS, SEABED_BENCH_FIG15_MIN_SPEEDUP,
// SEABED_BENCH_FIG15_MAX_P99_PCT.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/seabed/service.h"
#include "src/workload/synthetic.h"

namespace seabed {
namespace {

constexpr size_t kShards = 4;
constexpr uint64_t kGroups = 100;
constexpr size_t kClients = 2;
constexpr size_t kAppends = 12;
constexpr std::chrono::milliseconds kAppendSpacing{75};

// Canonical row strings (sorted, doubles at 4 places) for the per-answer
// plaintext equality check.
std::vector<std::string> CanonicalRows(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// The dashboard mix: selective aggregations over the small hot table (the
// interactive end of the paper's workload). The hot table never changes, so
// each shape has exactly one plaintext answer; what varies between the two
// modes is purely how often ingest work on the OTHER table gets in the way.
std::vector<Query> QueryMix() {
  std::vector<Query> mix;
  mix.push_back(SyntheticSumQuery(5));
  mix.push_back(SyntheticSumQuery(10));
  {
    Query q = SyntheticSumQuery(15);
    q.Count("n");
    mix.push_back(q);
  }
  {
    Query q = SyntheticSumQuery(20);
    q.Avg("value", "mean");
    mix.push_back(q);
  }
  return mix;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t idx = std::min(values.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(values.size())));
  return values[idx];
}

struct ModeResult {
  double qps = 0;
  double p50 = 0;
  double p99 = 0;
  double append_seconds = 0;  // wall time for the whole ingest stream
  double audit_seconds = 0;   // the mid-ingest events query's latency
  uint64_t queries = 0;
};

int Main() {
  const double min_speedup =
      static_cast<double>(EnvU64("SEABED_BENCH_FIG15_MIN_SPEEDUP", 2));
  const double max_p99_pct =
      static_cast<double>(EnvU64("SEABED_BENCH_FIG15_MAX_P99_PCT", 100));
  // A lighter modeled cluster than the other figures, so the window holds
  // enough queries to measure: queries pay one modeled round trip, appends
  // pay the modeled ingest job (encrypt stage + migration stage + shuffle —
  // see ShardedSeabedBackend::Append). Under the quiescing baseline that
  // ingest time passes with the service locked; under snapshots it passes
  // off to the side of serving.
  ClusterConfig cluster_config = BenchClusterConfig(16);
  cluster_config.job_overhead_seconds = 0.015;
  cluster_config.task_overhead_seconds = 0.001;
  const Cluster cluster(cluster_config);
  BenchRecorder recorder("fig15_snapshot");

  SyntheticHarness::Options options = SyntheticHarness::FromEnv();
  options.group_cardinality = kGroups;
  options.build_paillier = false;  // the story here is ingest vs serving
  SyntheticHarness harness(options);

  // The hot dashboard table: small, never appended to.
  SyntheticSpec hot_spec;
  hot_spec.rows = std::max<uint64_t>(harness.rows() / 4, 2048);
  hot_spec.seed = options.seed;
  hot_spec.group_cardinality = kGroups;
  const PlainSchema hot_schema = SyntheticSchema(hot_spec);

  // The ingest target: starts at the full row budget and takes kAppends
  // batches of the same size (the table several-folds during the window).
  SyntheticSpec ev_spec;
  ev_spec.rows = harness.rows();
  ev_spec.seed = options.seed + 777;
  PlainSchema ev_schema = SyntheticSchema(ev_spec);
  ev_schema.table_name = "events";
  std::vector<Query> ev_samples = SyntheticSampleQueries(ev_spec);
  for (Query& q : ev_samples) {
    q.table = "events";
  }
  Query audit = SyntheticSumQuery(10);
  audit.table = "events";

  const std::vector<Query> mix = QueryMix();

  // K fixed append batches, shared by the reference and both modes.
  std::vector<std::shared_ptr<Table>> batches;
  for (size_t j = 0; j < kAppends; ++j) {
    SyntheticSpec bspec = ev_spec;
    bspec.rows = ev_spec.rows * 3;
    bspec.seed = 9000 + j;
    batches.push_back(MakeSyntheticTable(bspec));
  }

  // Plaintext references: one answer per dashboard shape (the hot table is
  // immutable), and one audit answer per append state j in 0..kAppends.
  Session plain(harness.MakeSessionOptions(BackendKind::kPlain));
  plain.Attach(MakeSyntheticTable(hot_spec), hot_schema, SyntheticSampleQueries(hot_spec));
  plain.Attach(MakeSyntheticTable(ev_spec), ev_schema, ev_samples);
  std::vector<std::vector<std::string>> hot_refs;
  for (const Query& q : mix) {
    hot_refs.push_back(CanonicalRows(plain.Execute(q)));
  }
  std::vector<std::vector<std::string>> audit_refs;
  audit_refs.reserve(kAppends + 1);
  for (size_t j = 0; j <= kAppends; ++j) {
    audit_refs.push_back(CanonicalRows(plain.Execute(audit)));
    if (j < kAppends) {
      plain.Append("events", *batches[j]);
    }
  }

  std::printf("=== Figure 15: serving under sustained ingest, %zu-shard backend "
              "(hot rows=%llu, %zu clients; %zu appends of %llu rows to 'events') ===\n",
              kShards, static_cast<unsigned long long>(hot_spec.rows), kClients, kAppends,
              static_cast<unsigned long long>(batches[0]->NumRows()));
  std::printf("%10s %10s %10s %10s %10s %12s %10s\n", "mode", "qps", "p50(s)", "p99(s)",
              "queries", "ingest(s)", "audit(s)");

  std::atomic<uint64_t> mismatches{0};
  auto run_mode = [&](bool force_quiesce) {
    ServiceOptions sopts;
    sopts.session = harness.MakeSessionOptions(BackendKind::kShardedSeabed);
    sopts.session.shards = kShards;
    // Appends land whole batches on one shard (append locality), so the
    // skew-triggered rebalancer migrates row groups — re-encryption work the
    // quiescing baseline performs while every query waits, and the snapshot
    // path performs off to the side.
    sopts.session.shards_rebalance.enabled = true;
    sopts.session.shards_rebalance.max_skew_ratio = 1.1;
    sopts.session.shards_rebalance.row_group_size = 64;
    sopts.session.external_cluster = &cluster;
    sopts.num_workers = 8;
    sopts.max_queue_depth = 4096;
    sopts.max_batch = 8;
    sopts.pace_modeled_latency = true;
    sopts.force_quiesce_appends = force_quiesce;
    Service service(sopts);
    // Fresh tables per mode: appends grow the attached events table in
    // place, so the two modes must not share one.
    service.Attach(MakeSyntheticTable(hot_spec), hot_schema,
                   SyntheticSampleQueries(hot_spec));
    service.Attach(MakeSyntheticTable(ev_spec), ev_schema, ev_samples);

    // Warm the plan/translator caches and pin the state-0 answers before the
    // clock starts.
    for (size_t i = 0; i < mix.size(); ++i) {
      ServiceResult r = service.Submit(mix[i]).get();
      if (!r.ok || CanonicalRows(r.rows) != hot_refs[i]) {
        mismatches.fetch_add(1);
      }
    }
    {
      ServiceResult r = service.Submit(audit).get();
      if (!r.ok || CanonicalRows(r.rows) != audit_refs[0]) {
        mismatches.fetch_add(1);
      }
    }

    std::atomic<bool> done{false};
    std::vector<std::vector<double>> latencies(kClients);
    std::atomic<uint64_t> completed{0};
    const auto start = std::chrono::steady_clock::now();

    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(500 + 17 * c);
        while (!done.load(std::memory_order_acquire)) {
          const size_t pick = rng.Below(mix.size());
          const auto issued = std::chrono::steady_clock::now();
          ServiceResult r = service.Submit(mix[pick]).get();
          const std::chrono::duration<double> took =
              std::chrono::steady_clock::now() - issued;
          if (!r.ok || CanonicalRows(r.rows) != hot_refs[pick]) {
            mismatches.fetch_add(1);
            continue;
          }
          latencies[c].push_back(took.count());
          completed.fetch_add(1);
        }
      });
    }

    // The analyst: one query against the actively-ingesting table, fired
    // mid-window. Its answer must be SOME published state's answer — the
    // snapshot contract for readers racing the appender. (Under the quiescing
    // baseline it also stalls the append schedule: the barrier must drain it.)
    const auto ingest_begin = std::chrono::steady_clock::now();
    double audit_seconds = 0;
    std::thread auditor([&] {
      std::this_thread::sleep_until(ingest_begin + (kAppends / 2) * kAppendSpacing);
      const auto issued = std::chrono::steady_clock::now();
      ServiceResult r = service.Submit(audit).get();
      audit_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - issued).count();
      const std::vector<std::string> got = CanonicalRows(r.rows);
      bool matched = false;
      for (size_t j = 0; j <= kAppends && !matched; ++j) {
        matched = got == audit_refs[j];
      }
      if (!r.ok || !matched) {
        mismatches.fetch_add(1);
      }
    });

    // The sustained appender: a fixed wall-clock cadence, the steady drip of
    // a log-structured ingest pipeline. Both modes get the same schedule; the
    // quiescing baseline burns most of each period with the service locked
    // (drain + encrypt + merge), the snapshot path hides that work in the
    // clients' paced idle gaps.
    for (size_t j = 0; j < kAppends; ++j) {
      std::this_thread::sleep_until(ingest_begin + j * kAppendSpacing);
      ServiceResult r = service.SubmitAppend("events", batches[j]).get();
      if (!r.ok) {
        mismatches.fetch_add(1);
      }
    }
    const std::chrono::duration<double> ingest =
        std::chrono::steady_clock::now() - ingest_begin;
    auditor.join();
    done.store(true, std::memory_order_release);
    for (std::thread& t : clients) {
      t.join();
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

    // Post-window: the final events state must be plaintext-exact in full.
    {
      ServiceResult r = service.Submit(audit).get();
      if (!r.ok || CanonicalRows(r.rows) != audit_refs[kAppends]) {
        mismatches.fetch_add(1);
      }
    }
    service.Shutdown();

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    ModeResult m;
    m.queries = completed.load();
    m.qps = static_cast<double>(m.queries) / elapsed.count();
    m.p50 = Percentile(all, 0.50);
    m.p99 = Percentile(all, 0.99);
    m.append_seconds = ingest.count();
    m.audit_seconds = audit_seconds;
    const char* label = force_quiesce ? "rwlock" : "snapshot";
    std::printf("%10s %10.2f %10.4f %10.4f %10llu %12.3f %10.4f\n", label, m.qps, m.p50,
                m.p99, static_cast<unsigned long long>(m.queries), m.append_seconds,
                m.audit_seconds);
    recorder.Add(label, {{"queries_per_second", m.qps},
                         {"p50_seconds", m.p50},
                         {"p99_seconds", m.p99},
                         {"ingest_seconds", m.append_seconds},
                         {"audit_seconds", m.audit_seconds},
                         {"clients", static_cast<double>(kClients)}});
    return m;
  };

  // Baseline first: the quiescing discipline the snapshot path replaced.
  const ModeResult quiesce = run_mode(/*force_quiesce=*/true);
  const ModeResult snapshot = run_mode(/*force_quiesce=*/false);

  const double speedup = quiesce.qps > 0 ? snapshot.qps / quiesce.qps : 0;
  const double p99_pct = quiesce.p99 > 0 ? 100.0 * snapshot.p99 / quiesce.p99 : 0;
  std::printf("\nqps under ingest: snapshot / rwlock = %.2fx (gate: >= %.0fx)\n", speedup,
              min_speedup);
  std::printf("p99 under ingest: snapshot = %.0f%% of rwlock (gate: <= %.0f%%)\n", p99_pct,
              max_p99_pct);
  recorder.Add("summary", {{"qps_speedup", speedup}, {"p99_pct_of_rwlock", p99_pct}});

  bool failed = false;
  if (mismatches.load() > 0) {
    std::printf("REGRESSION: %llu answers diverged from every plaintext reference "
                "state\n",
                static_cast<unsigned long long>(mismatches.load()));
    failed = true;
  }
  if (speedup < min_speedup) {
    std::printf("REGRESSION: snapshot serving under ingest scaled %.2fx over the "
                "quiescing baseline, below the %.0fx gate\n",
                speedup, min_speedup);
    failed = true;
  }
  if (p99_pct > max_p99_pct) {
    std::printf("REGRESSION: snapshot p99 is %.0f%% of the quiescing baseline's, above "
                "the %.0f%% gate\n",
                p99_pct, max_p99_pct);
    failed = true;
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
