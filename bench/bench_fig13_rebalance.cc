// "Figure 13" (beyond the paper): skew-aware shard rebalancing and
// intra-shard row-group pruning on the scale-out backend.
//
// Appends place whole batches on the shard owning the batch's first global
// row (append locality), so a skewed stream concentrates rows on one shard
// and the fan-out's critical path degrades toward a single hot server. This
// bench drives a 10x-skewed stream — every batch steered onto one placement
// bucket — into two sharded sessions, rebalancing off vs. on
// (SessionOptions::shards_rebalance), and gates two claims:
//
//   * REBALANCE: after the stream, the rebalanced fleet's median
//     server_seconds on a full-scan aggregate must be >= 2x better than the
//     unbalanced fleet's — the hot shard holds most of the table, so its
//     scan dominates the unbalanced critical path;
//   * INTRA-SHARD PRUNING: at <= 1% selectivity a forced probe must prune
//     row groups *inside* surviving shards (row_groups_pruned > 0 with
//     row-group, not shard, granularity) and return rows identical to the
//     plaintext reference.
//
// Cluster job/task overheads and the client link latency are zeroed as in
// bench_fig12_probe: both sessions pay identical constants, and at smoke
// scale those constants would swamp the scan-time ratio the gate measures.
//
// The default row count is below the other benches' 2M: the stream is
// append-encrypted batch by batch and every rebalance re-encrypts the donor
// remainder, so table construction — not the measured queries — dominates
// the runtime at larger scales.
//
// Exit status is the CI gate: nonzero when either claim fails.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/seabed/sharded_backend.h"

namespace seabed {
namespace {

constexpr size_t kShards = 4;

// Segment frequencies (also the planner's ValueDistribution): contiguous
// runs, so the 0.1% segment occupies one short stretch of row groups.
constexpr struct {
  const char* seg;
  double frequency;
} kSegments[] = {
    {"s0", 0.001}, {"s1", 0.009}, {"s2", 0.04}, {"s3", 0.25}, {"s4", 0.70},
};

std::shared_ptr<Table> MakeClusteredTable(uint64_t rows) {
  auto table = std::make_shared<Table>("sweep");
  auto seg = std::make_shared<StringColumn>();
  auto value = std::make_shared<Int64Column>();
  Rng rng(1337);
  size_t emitted = 0;
  for (const auto& s : kSegments) {
    const size_t run = &s == &kSegments[std::size(kSegments) - 1]
                           ? rows - emitted
                           : static_cast<size_t>(static_cast<double>(rows) * s.frequency);
    for (size_t i = 0; i < run; ++i) {
      seg->Append(s.seg);
      value->Append(rng.Range(0, 1000));
    }
    emitted += run;
  }
  table->AddColumn("seg", seg);
  table->AddColumn("value", value);
  return table;
}

// Copies rows [begin, end) of the clustered table into a fresh batch.
std::shared_ptr<Table> Slice(const Table& src, size_t begin, size_t end) {
  auto out = std::make_shared<Table>("sweep");
  const auto* seg = static_cast<const StringColumn*>(src.GetColumn("seg").get());
  const auto* value = static_cast<const Int64Column*>(src.GetColumn("value").get());
  auto seg_out = std::make_shared<StringColumn>();
  auto value_out = std::make_shared<Int64Column>();
  for (size_t row = begin; row < end; ++row) {
    seg_out->Append(seg->Get(row));
    value_out->Append(value->Get(row));
  }
  out->AddColumn("seg", seg_out);
  out->AddColumn("value", value_out);
  return out;
}

PlainSchema SweepSchema() {
  PlainSchema schema;
  schema.table_name = "sweep";
  ValueDistribution dist;
  for (const auto& s : kSegments) {
    dist.values.push_back(s.seg);
    dist.frequencies.push_back(s.frequency);
  }
  schema.columns.push_back({"seg", ColumnType::kString, true, dist});
  schema.columns.push_back({"value", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

std::vector<Query> SweepSamples() {
  std::vector<Query> samples;
  // seg appears in a GROUP BY so the planner realizes it with DET rather
  // than SPLASHE — a splayed filter leaves no server predicate to probe.
  Query q;
  q.table = "sweep";
  q.Sum("value").Count();
  q.Where("seg", CmpOp::kEq, std::string("s0"));
  q.GroupBy("seg");
  samples.push_back(q);
  return samples;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// Order-insensitive row digest (doubles rounded), so encrypted pipelines
// compare equal to the plaintext reference regardless of group order.
std::vector<std::string> RowsKey(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

SessionOptions MakeOptions(BackendKind backend, uint64_t rows, bool rebalance,
                           size_t row_group_size) {
  SessionOptions options;
  options.backend = backend;
  options.shards = kShards;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.cluster.client_link.latency_seconds = 0;
  options.planner.expected_rows = rows;
  options.probe.row_group_size = row_group_size;
  if (rebalance) {
    options.shards_rebalance.enabled = true;
    options.shards_rebalance.max_skew_ratio = 1.25;
    options.shards_rebalance.row_group_size = row_group_size;
  }
  return options;
}

int Main() {
  // 50k-row floor as in fig12: below that the gate measures timer noise.
  const uint64_t rows = std::max<uint64_t>(50000, EnvU64("SEABED_BENCH_ROWS", 400000));
  const uint64_t repeat = std::max<uint64_t>(3, EnvU64("SEABED_BENCH_REPEAT", 5));
  const size_t row_group_size = rows <= 100000 ? 256 : 1024;
  BenchRecorder recorder("fig13_rebalance");

  const auto data = MakeClusteredTable(rows);
  const PlainSchema schema = SweepSchema();
  const std::vector<Query> samples = SweepSamples();

  Session plain(MakeOptions(BackendKind::kPlain, rows, false, row_group_size));
  Session unbalanced(MakeOptions(BackendKind::kShardedSeabed, rows, false, row_group_size));
  Session rebalanced(MakeOptions(BackendKind::kShardedSeabed, rows, true, row_group_size));
  std::vector<Session*> sessions = {&plain, &unbalanced, &rebalanced};

  // ~10% of the table attaches (hash-partitioned, balanced); the rest
  // arrives as an append stream steered onto one placement bucket. Fillers
  // are 1-row slices of the same stream, so the final logical table equals
  // the clustered table no matter how placement chopped it.
  const size_t seed_rows = rows / 10;
  for (Session* s : sessions) {
    s->Attach(Slice(*data, 0, seed_rows), schema, samples);
  }
  const auto& placement = static_cast<const ShardedSeabedBackend&>(unbalanced.executor());
  const size_t hot = placement.ShardOfRow(seed_rows);
  const size_t batch_rows = std::max<size_t>(1, rows / 16);
  size_t cursor = seed_rows;
  while (cursor < rows) {
    size_t take = 1;  // a filler: advance placement toward the hot bucket
    if (placement.ShardOfRow(cursor) == hot) {
      take = std::min<size_t>(batch_rows, rows - cursor);
    }
    const auto batch = Slice(*data, cursor, cursor + take);
    for (Session* s : sessions) {
      s->Append("sweep", *batch);
    }
    cursor += take;
  }

  auto& unbalanced_backend = static_cast<ShardedSeabedBackend&>(unbalanced.executor());
  auto& rebalanced_backend = static_cast<ShardedSeabedBackend&>(rebalanced.executor());
  const std::vector<size_t> skewed = unbalanced_backend.ShardRowCounts("sweep");
  const std::vector<size_t> balanced = rebalanced_backend.ShardRowCounts("sweep");
  const RebalanceStats moves = *rebalanced.rebalance_stats();

  std::printf("=== Figure 13: skew-aware rebalancing + intra-shard pruning "
              "(rows=%llu, shards=%zu, repeat=%llu, row groups of %zu) ===\n",
              static_cast<unsigned long long>(rows), kShards,
              static_cast<unsigned long long>(repeat), row_group_size);
  std::printf("%-12s", "unbalanced:");
  for (const size_t c : skewed) {
    std::printf(" %9zu", c);
  }
  std::printf("\n%-12s", "rebalanced:");
  for (const size_t c : balanced) {
    std::printf(" %9zu", c);
  }
  std::printf("\nrebalances=%llu row_groups_moved=%llu rows_moved=%llu "
              "rows_reencrypted=%llu migrate_seconds=%.3f\n",
              static_cast<unsigned long long>(moves.rebalances),
              static_cast<unsigned long long>(moves.row_groups_moved),
              static_cast<unsigned long long>(moves.rows_moved),
              static_cast<unsigned long long>(moves.rows_reencrypted), moves.seconds);

  bool gate_failed = false;

  // --- claim 1: the rebalanced fan-out is >= 2x faster on a full scan ---------
  Query scan;
  scan.table = "sweep";
  scan.Sum("value", "total").Count("n");
  const std::vector<std::string> reference = RowsKey(plain.Execute(scan, nullptr));
  struct Fleet {
    const char* label;
    Session* session;
  };
  double medians[2] = {};
  const Fleet fleets[] = {{"unbalanced", &unbalanced}, {"rebalanced", &rebalanced}};
  for (size_t f = 0; f < std::size(fleets); ++f) {
    fleets[f].session->Execute(scan, nullptr);  // untimed warm-up
    std::vector<double> seconds;
    for (uint64_t r = 0; r < repeat; ++r) {
      QueryStats stats;
      const ResultSet result = fleets[f].session->Execute(scan, &stats);
      if (RowsKey(result) != reference) {
        std::printf("REGRESSION: %s full scan diverged from kPlain\n", fleets[f].label);
        gate_failed = true;
      }
      seconds.push_back(stats.server_seconds);
      if (EnvU64("SEABED_BENCH_DEBUG", 0) != 0) {
        double max_shard = 0;
        for (const double s : stats.shard_server_seconds) {
          max_shard = std::max(max_shard, s);
        }
        std::printf("  [%s] server=%.6f job=%.6f merge=%.6f max_shard=%.6f tasks=%zu shards=[",
                    fleets[f].label, stats.server_seconds, stats.job.server_seconds,
                    stats.merge_seconds, max_shard, stats.job.num_tasks);
        for (const double s : stats.shard_server_seconds) {
          std::printf(" %.6f", s);
        }
        std::printf(" ]\n");
      }
      recorder.AddStats(fleets[f].label, {{"skew", 10.0}}, stats);
    }
    medians[f] = Median(std::move(seconds));
  }
  const double speedup = medians[1] > 0 ? medians[0] / medians[1] : 0;
  std::printf("full scan server_seconds: unbalanced=%.6f rebalanced=%.6f (%.1fx)\n",
              medians[0], medians[1], speedup);
  if (speedup < 2.0) {
    std::printf("REGRESSION: rebalanced fan-out is only %.2fx faster than unbalanced "
                "(>= 2x required)\n", speedup);
    gate_failed = true;
  }

  // --- claim 2: intra-shard pruning at <= 1% selectivity ----------------------
  const struct {
    const char* seg;
    double selectivity;
  } kSelective[] = {{"s0", 0.001}, {"s1", 0.009}};
  for (const auto& point : kSelective) {
    Query q;
    q.table = "sweep";
    q.Sum("value", "total").Count("n");
    q.Where("seg", CmpOp::kEq, std::string(point.seg));
    const std::vector<std::string> expect = RowsKey(plain.Execute(q, nullptr));

    ProbeOptions popts = rebalanced.probe_options();
    popts.mode = ProbeMode::kForced;
    rebalanced.set_probe_options(popts);
    QueryStats stats;
    const ResultSet result = rebalanced.Execute(q, &stats);
    popts.mode = ProbeMode::kOff;
    rebalanced.set_probe_options(popts);

    recorder.AddStats("pruning-forced",
                      {{"selectivity", point.selectivity},
                       {"row_groups_pruned", static_cast<double>(stats.row_groups_pruned)},
                       {"row_groups_total", static_cast<double>(stats.row_groups_total)}},
                      stats);
    std::printf("seg=%s forced probe: pruned %llu/%llu row groups, rows_touched=%llu\n",
                point.seg, static_cast<unsigned long long>(stats.row_groups_pruned),
                static_cast<unsigned long long>(stats.row_groups_total),
                static_cast<unsigned long long>(stats.rows_touched));
    if (RowsKey(result) != expect) {
      std::printf("REGRESSION: seg=%s pruned scan diverged from kPlain\n", point.seg);
      gate_failed = true;
    }
    if (!stats.probe_used || stats.row_groups_pruned == 0 ||
        stats.row_groups_total <= kShards) {
      std::printf("REGRESSION: seg=%s did not prune row groups inside shards "
                  "(probed=%d, %llu/%llu)\n", point.seg, stats.probe_used ? 1 : 0,
                  static_cast<unsigned long long>(stats.row_groups_pruned),
                  static_cast<unsigned long long>(stats.row_groups_total));
      gate_failed = true;
    }
  }
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace seabed

int main() { return seabed::Main(); }
