// The Seabed data planner (paper Section 4.2).
//
// Given the plaintext schema (with sensitivity annotations and optional value
// distributions) and a sample query set, the planner:
//
//   1. classifies each column as dimension, measure, or both, from how the
//      sample queries use it;
//   2. assigns ASHE to sensitive measures (adding a squared column when a
//      quadratic aggregate appears);
//   3. assigns SPLASHE to sensitive dimensions used only in equality filters
//      (enhanced when a distribution is available, basic otherwise),
//      prioritized lowest-cardinality-first under the storage budget;
//   4. falls back to DET (joins, group-bys) or OPE (range predicates) with a
//      warning when SPLASHE cannot apply.
#ifndef SEABED_SRC_SEABED_PLANNER_H_
#define SEABED_SRC_SEABED_PLANNER_H_

#include <optional>
#include <vector>

#include "src/query/query.h"
#include "src/seabed/placement.h"
#include "src/seabed/schema.h"

namespace seabed {

struct PlannerOptions {
  // Maximum tolerated storage expansion factor for the whole table (Figure
  // 10b's knob). 0 disables the budget (all SPLASHE candidates splayed).
  double max_storage_expansion = 0;

  // Expected table size, used to turn distribution frequencies into expected
  // counts for enhanced SPLASHE's k selection.
  uint64_t expected_rows = 1000000;
};

// Per-column usage facts extracted from the sample queries. Exposed for tests
// and for the Section 5 workload classifier.
struct ColumnUsage {
  bool linear_agg = false;     // sum / avg / count target
  bool quadratic_agg = false;  // variance / stddev
  bool minmax_agg = false;     // min / max
  bool eq_filter = false;
  bool range_filter = false;
  bool join_key = false;
  bool group_by = false;

  bool IsMeasure() const { return linear_agg || quadratic_agg || minmax_agg; }
  bool IsDimension() const { return eq_filter || range_filter || join_key || group_by; }
};

// Analyzes how `queries` use each column of `schema`.
std::map<std::string, ColumnUsage> AnalyzeUsage(const PlainSchema& schema,
                                                const std::vector<Query>& queries);

// Produces the encryption plan.
EncryptionPlan PlanEncryption(const PlainSchema& schema, const std::vector<Query>& queries,
                              const PlannerOptions& options = {});

// Estimated fraction of fact-table rows satisfying `query`'s fact-side
// filters, in [0, 1]. Per-filter estimates multiply (independence
// assumption). Columns with a ValueDistribution answer exactly: equality
// filters read the literal's frequency, range filters (on numeric domains)
// sum the frequencies of qualifying values. Without a distribution the
// textbook defaults apply — equality filters are assumed selective (0.15),
// ranges are not (0.5). Joined-table filters don't reduce the fact-side
// scan and are ignored. This is the cost gate for ProbeMode::kAuto: probe
// only when the estimate predicts round two will skip most of the table.
double EstimateFilterSelectivity(const Query& query, const PlainSchema& schema);

// The routing companion of EstimateFilterSelectivity's filter walk: the
// closed interval [lo, hi] of `column` values `query`'s fact-side filters
// admit, intersected across the conjunction. `query` must be fully bound
// (prepared statements route on the bound copy, so placeholder slots carry
// literals by the time this runs; an unbound placeholder is skipped, which
// only widens the interval — conservative). kNe filters, string operands and
// joined-table ("right:"-prefixed) references don't constrain the column and
// are ignored. Returns nullopt when no filter constrains `column` at all —
// the query is not routable and must fan out to the whole fleet — and an
// `empty` interval when the conjunction is contradictory (no row anywhere
// can match). Used by the sharded backend's round-zero shard routing under
// key-range placement (src/seabed/placement.h).
std::optional<ClusteringKeyRange> ExtractClusteringKeyRange(const Query& query,
                                                            const std::string& column);

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_PLANNER_H_
