#include "src/seabed/snapshot.h"

#include <utility>

#include "src/common/stopwatch.h"

namespace seabed {

EncryptedDatabase CopyEncryptedDatabase(const EncryptedDatabase& src) {
  EncryptedDatabase copy = src;  // plan, dictionaries, value types by value
  copy.table = DeepCopyTable(*src.table);
  return copy;
}

ServerProbeResult VersionProbeIndex::Probe(const Table& fact, const ProbeSection& probe,
                                           size_t row_group_size) const {
  Stopwatch sw;
  ServerProbeResult out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_group_size_.find(row_group_size);
    if (it == by_group_size_.end()) {
      it = by_group_size_.emplace(row_group_size, RowGroupIndex(row_group_size)).first;
    }
    RowGroupIndex& index = it->second;
    if (index.rows_summarized() < fact.NumRows()) {
      // First probe at this group size on this version (or on rows its seed
      // had not covered). The version is immutable, so this happens at most
      // once: a racing probe waits on mu_ and finds the summaries current.
      builds_.fetch_add(1, std::memory_order_relaxed);
      index.Refresh(fact);
    }
    RowGroupIndex::PruneResult pruned = index.Prune(probe);
    out.surviving = std::move(pruned.surviving);
    out.total_groups = pruned.total_groups;
    out.pruned_groups = pruned.pruned_groups;
  }
  out.seconds = sw.ElapsedSeconds();
  return out;
}

void VersionProbeIndex::SeedFrom(const VersionProbeIndex& parent, const Table& fact) {
  std::map<size_t, RowGroupIndex> seeded;
  {
    std::lock_guard<std::mutex> lock(parent.mu_);
    seeded = parent.by_group_size_;  // readers may still probe the parent
  }
  for (auto& [size, index] : seeded) {
    index.Refresh(fact);  // summarize only the appended tail
  }
  std::lock_guard<std::mutex> lock(mu_);
  by_group_size_ = std::move(seeded);
}

}  // namespace seabed
