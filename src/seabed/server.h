// The untrusted Seabed server (paper Sections 4.5, 6).
//
// Executes a ServerPlan over encrypted tables on the cluster model:
// evaluates DET/ORE predicates, performs ASHE aggregation (group-element sums
// plus ID-list maintenance), hash-joins on DET tokens, applies the group-by
// inflation the translator requested, and compresses ID lists either at the
// workers (parallel, Seabed's default) or at the driver (the rejected
// alternative of Section 4.5).
//
// The server never sees a key: everything here operates on ciphertexts,
// tokens and public row identifiers.
#ifndef SEABED_SRC_SEABED_SERVER_H_
#define SEABED_SRC_SEABED_SERVER_H_

#include <string>
#include <vector>

#include "src/engine/cluster.h"
#include "src/engine/table.h"
#include "src/engine/value.h"
#include "src/seabed/probe.h"
#include "src/seabed/translator.h"

namespace seabed {

// Per-aggregate server result within one group.
struct ServerAggResult {
  // kAsheSum: running group element + compressed ID list blobs (one per
  // partition under worker-side compression, a single blob otherwise).
  uint64_t ashe_value = 0;
  std::vector<Bytes> id_blobs;

  // kRowCount.
  uint64_t row_count = 0;

  // kOreMin / kOreMax: ORE winner with its companion ASHE cell + identifier.
  bool minmax_valid = false;
  OreCiphertext minmax_ore;
  uint64_t minmax_cipher = 0;
  uint64_t minmax_id = 0;
};

struct ServerGroup {
  // Serialized group key (includes the inflation suffix).
  std::string key;
  // Raw key parts: DET tokens (as int64), plain ints, or plain strings.
  std::vector<Value> key_parts;
  // Inflation suffix carried separately so the client can deflate.
  uint64_t inflation_suffix = 0;
  std::vector<ServerAggResult> aggs;
};

struct EncryptedResponse {
  std::vector<ServerGroup> groups;

  JobStats job;                 // scan + worker-side encode
  double driver_seconds = 0;    // merge + driver-side encode
  double shuffle_seconds = 0;   // modeled reduce-phase transfer
  size_t shuffle_bytes = 0;
  size_t response_bytes = 0;    // payload shipped to the client
  uint64_t rows_touched = 0;    // rows that survived the predicates

  double ServerSeconds() const {
    return job.server_seconds + driver_seconds + shuffle_seconds;
  }
};

// Round-one result of the server-side row-group probe.
struct ServerProbeResult {
  // Surviving row ranges of the fact table, in row order. Empty = no row
  // group can match (round two may be skipped entirely).
  std::vector<RowRange> surviving;
  size_t total_groups = 0;
  size_t pruned_groups = 0;
  double seconds = 0;  // measured round-one cost
};

// The server is stateless: it holds no table registry and no mutable probe
// state. Backends own immutable `TableVersion` snapshots (src/seabed/
// snapshot.h) and hand Execute the exact table objects to scan, so any number
// of queries run concurrently with zero server-side synchronization — the
// snapshot publish/reclaim protocol (src/common/epoch.h) is the only
// concurrency mechanism on the read path. Row-group probing lives with the
// snapshot too (`VersionProbeIndex`): summaries are built at most once per
// published version instead of being re-synced behind a mutex.
class Server {
 public:
  // Executes `plan` over `fact` (the fact table of the caller's pinned
  // snapshot; aborts when null — the caller resolved an unknown name). When
  // the plan joins, `right_override` must carry the joined table (a dimension
  // snapshot or the sharded backend's broadcast replica). `scan_ranges`, when
  // non-null, restricts the fact-table scan to those row ranges (the pruned
  // round two; a probe's `surviving` goes here).
  EncryptedResponse Execute(const ServerPlan& plan, const Cluster& cluster,
                            const Table* fact, const Table* right_override,
                            const std::vector<RowRange>* scan_ranges = nullptr) const;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SERVER_H_
