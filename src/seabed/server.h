// The untrusted Seabed server (paper Sections 4.5, 6).
//
// Executes a ServerPlan over encrypted tables on the cluster model:
// evaluates DET/ORE predicates, performs ASHE aggregation (group-element sums
// plus ID-list maintenance), hash-joins on DET tokens, applies the group-by
// inflation the translator requested, and compresses ID lists either at the
// workers (parallel, Seabed's default) or at the driver (the rejected
// alternative of Section 4.5).
//
// The server never sees a key: everything here operates on ciphertexts,
// tokens and public row identifiers.
#ifndef SEABED_SRC_SEABED_SERVER_H_
#define SEABED_SRC_SEABED_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/engine/cluster.h"
#include "src/engine/table.h"
#include "src/engine/value.h"
#include "src/seabed/probe.h"
#include "src/seabed/translator.h"

namespace seabed {

// Per-aggregate server result within one group.
struct ServerAggResult {
  // kAsheSum: running group element + compressed ID list blobs (one per
  // partition under worker-side compression, a single blob otherwise).
  uint64_t ashe_value = 0;
  std::vector<Bytes> id_blobs;

  // kRowCount.
  uint64_t row_count = 0;

  // kOreMin / kOreMax: ORE winner with its companion ASHE cell + identifier.
  bool minmax_valid = false;
  OreCiphertext minmax_ore;
  uint64_t minmax_cipher = 0;
  uint64_t minmax_id = 0;
};

struct ServerGroup {
  // Serialized group key (includes the inflation suffix).
  std::string key;
  // Raw key parts: DET tokens (as int64), plain ints, or plain strings.
  std::vector<Value> key_parts;
  // Inflation suffix carried separately so the client can deflate.
  uint64_t inflation_suffix = 0;
  std::vector<ServerAggResult> aggs;
};

struct EncryptedResponse {
  std::vector<ServerGroup> groups;

  JobStats job;                 // scan + worker-side encode
  double driver_seconds = 0;    // merge + driver-side encode
  double shuffle_seconds = 0;   // modeled reduce-phase transfer
  size_t shuffle_bytes = 0;
  size_t response_bytes = 0;    // payload shipped to the client
  uint64_t rows_touched = 0;    // rows that survived the predicates

  double ServerSeconds() const {
    return job.server_seconds + driver_seconds + shuffle_seconds;
  }
};

// Round-one result of the server-side row-group probe.
struct ServerProbeResult {
  // Surviving row ranges of the fact table, in row order. Empty = no row
  // group can match (round two may be skipped entirely).
  std::vector<RowRange> surviving;
  size_t total_groups = 0;
  size_t pruned_groups = 0;
  double seconds = 0;  // measured round-one cost
};

class Server {
 public:
  // Registers a table under its (encrypted) name. Re-registering a name
  // replaces the table and resets its row-group summary index — the probe's
  // row-count staleness check cannot detect an object swap (rebalancing,
  // re-attach) once the replacement regrows past the old count. Callers
  // must serialize registration against concurrent Execute/Probe calls (the
  // backends hold their state lock exclusively here).
  void RegisterTable(std::shared_ptr<Table> table);

  const std::shared_ptr<Table>& GetTable(const std::string& name) const;

  // Round one of two-round execution: evaluates `probe`'s predicates against
  // the coarse row-group summary index of `table` and returns the row groups
  // round two must still scan. The index is built lazily at the first probe
  // and re-synced with the table's row count on every call (appends grow the
  // registered table in place, behind the server's back).
  ServerProbeResult Probe(const std::string& table, const ProbeSection& probe,
                          size_t row_group_size) const;

  // Executes `plan`. When the plan joins and `right_override` is non-null,
  // the joined table is taken from the override instead of the registry —
  // the sharded backend broadcasts an unregistered replica this way.
  // `scan_ranges`, when non-null, restricts the fact-table scan to those row
  // ranges (the pruned round two; a probe's `surviving` goes here).
  EncryptedResponse Execute(const ServerPlan& plan, const Cluster& cluster,
                            const Table* right_override,
                            const std::vector<RowRange>* scan_ranges = nullptr) const;

 private:
  // Row-group summary index of one table plus its own lock, so concurrent
  // probes (Session::ExecuteBatch) only serialize per table — the first
  // probe after Attach/Append summarizes O(rows) and must not block probes
  // of other tables. `probe_mu_` guards only the map lookup/creation.
  struct ProbeIndexEntry {
    std::mutex mu;
    RowGroupIndex index;
  };

  std::map<std::string, std::shared_ptr<Table>> tables_;
  mutable std::mutex probe_mu_;
  mutable std::map<std::string, std::unique_ptr<ProbeIndexEntry>> probe_index_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SERVER_H_
