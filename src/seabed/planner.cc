#include "src/seabed/planner.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <set>

#include "src/common/check.h"
#include "src/seabed/splashe.h"

namespace seabed {
namespace {

// True when the column name refers to the joined (right) table.
bool IsRightRef(const std::string& name) { return name.rfind("right:", 0) == 0; }

bool ParseInt64(const std::string& s, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

std::map<std::string, ColumnUsage> AnalyzeUsage(const PlainSchema& schema,
                                                const std::vector<Query>& queries) {
  std::map<std::string, ColumnUsage> usage;
  for (const auto& col : schema.columns) {
    usage[col.name];  // default entry for every schema column
  }
  auto touch = [&](const std::string& name) -> ColumnUsage* {
    if (IsRightRef(name) || name.empty()) {
      return nullptr;  // joined-table columns are planned with their own schema
    }
    const auto it = usage.find(name);
    return it == usage.end() ? nullptr : &it->second;
  };

  for (const Query& q : queries) {
    for (const Aggregate& agg : q.aggregates) {
      ColumnUsage* u = touch(agg.column);
      if (u == nullptr) {
        continue;
      }
      switch (agg.func) {
        case AggFunc::kSum:
        case AggFunc::kCount:
        case AggFunc::kAvg:
          u->linear_agg = true;
          break;
        case AggFunc::kVariance:
        case AggFunc::kStddev:
          u->linear_agg = true;
          u->quadratic_agg = true;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          u->minmax_agg = true;
          break;
      }
    }
    for (const Predicate& pred : q.filters) {
      ColumnUsage* u = touch(pred.column);
      if (u == nullptr) {
        continue;
      }
      if (pred.op == CmpOp::kEq || pred.op == CmpOp::kNe) {
        u->eq_filter = true;
      } else {
        u->range_filter = true;
      }
    }
    for (const std::string& g : q.group_by) {
      if (ColumnUsage* u = touch(g)) {
        u->group_by = true;
      }
    }
    if (q.join.has_value()) {
      if (ColumnUsage* u = touch(q.join->left_column)) {
        u->join_key = true;
      }
      // The right-side key belongs to the right table's schema, but if this
      // schema *is* the right table (planned separately), mark it too.
      if (ColumnUsage* u = touch(q.join->right_column)) {
        u->join_key = true;
      }
    }
  }
  return usage;
}

EncryptionPlan PlanEncryption(const PlainSchema& schema, const std::vector<Query>& queries,
                              const PlannerOptions& options) {
  EncryptionPlan plan;
  plan.table_name = schema.table_name;

  const auto usage = AnalyzeUsage(schema, queries);

  // Measures co-occurring with each dimension in filtered queries; these are
  // the measures that must be splayed alongside the dimension (Section 4.2).
  // Dimensions filtered in queries that also compute MIN/MAX (or variance —
  // no squared splayed columns exist) cannot use SPLASHE: splaying encodes
  // the filter as zeros, which neutralizes sums but not order statistics.
  std::map<std::string, std::set<std::string>> co_measures;
  std::set<std::string> splashe_incompatible;
  for (const Query& q : queries) {
    std::set<std::string> measures;
    bool non_additive = false;
    for (const Aggregate& agg : q.aggregates) {
      if (!agg.column.empty() && !IsRightRef(agg.column)) {
        measures.insert(agg.column);
      }
      non_additive |= agg.func == AggFunc::kMin || agg.func == AggFunc::kMax ||
                      agg.func == AggFunc::kVariance || agg.func == AggFunc::kStddev;
    }
    for (const Predicate& pred : q.filters) {
      if (!IsRightRef(pred.column)) {
        co_measures[pred.column].insert(measures.begin(), measures.end());
        if (non_additive) {
          splashe_incompatible.insert(pred.column);
        }
      }
    }
  }

  // Canonical shared DET-key labels for join columns: both sides of an
  // equi-join derive the same key, so tokens match across tables.
  std::map<std::string, std::string> join_labels;
  for (const Query& q : queries) {
    if (!q.join.has_value()) {
      continue;
    }
    const std::string left =
        q.table + "/" + q.join->left_column;
    std::string right_col = q.join->right_column;
    if (IsRightRef(right_col)) {
      right_col = right_col.substr(6);
    }
    const std::string right = q.join->right_table + "/" + right_col;
    const std::string canonical =
        "join:" + std::min(left, right) + "+" + std::max(left, right);
    if (q.table == schema.table_name) {
      join_labels[q.join->left_column] = canonical;
    }
    if (q.join->right_table == schema.table_name) {
      join_labels[right_col] = canonical;
    }
  }

  // First pass: measures and forced dimension schemes.
  struct SplasheCandidate {
    std::string name;
    size_t cardinality = 0;
    bool enhanced = false;
  };
  std::vector<SplasheCandidate> candidates;

  for (const auto& col : schema.columns) {
    ColumnPlan cp;
    const ColumnUsage& u = usage.at(col.name);
    if (!col.sensitive) {
      cp.scheme = EncScheme::kPlain;
      plan.columns[col.name] = cp;
      continue;
    }
    if (u.IsMeasure() && !u.IsDimension()) {
      cp.scheme = EncScheme::kAshe;
      cp.needs_square = u.quadratic_agg;
      cp.add_ope = u.minmax_agg;  // MIN/MAX needs order comparisons
      plan.columns[col.name] = cp;
      continue;
    }
    // Dimension (or dimension + measure).
    if (u.join_key) {
      cp.scheme = EncScheme::kDet;
      const auto label_it = join_labels.find(col.name);
      if (label_it != join_labels.end()) {
        cp.det_key_label = label_it->second;
      }
      plan.warnings.push_back("dimension '" + col.name +
                              "' participates in joins; falling back to DET");
    } else if (u.range_filter) {
      cp.scheme = EncScheme::kOpe;
      cp.add_det = u.eq_filter || u.group_by;
      plan.warnings.push_back("dimension '" + col.name +
                              "' has range predicates; falling back to OPE");
    } else if (u.group_by) {
      cp.scheme = EncScheme::kDet;
      plan.warnings.push_back("dimension '" + col.name +
                              "' is used in GROUP BY; falling back to DET");
    } else if (u.eq_filter && splashe_incompatible.count(col.name)) {
      cp.scheme = EncScheme::kDet;
      plan.warnings.push_back("dimension '" + col.name +
                              "' is filtered alongside non-additive aggregates; "
                              "falling back to DET");
    } else if (u.eq_filter) {
      // SPLASHE candidate; decided below under the storage budget.
      const bool enhanced = col.distribution.has_value();
      const size_t cardinality =
          col.distribution.has_value() ? col.distribution->values.size() : 0;
      SEABED_CHECK_MSG(col.distribution.has_value(),
                       "SPLASHE requires the value domain for column " << col.name);
      candidates.push_back({col.name, cardinality, enhanced});
      cp.scheme = enhanced ? EncScheme::kSplasheEnhanced : EncScheme::kSplasheBasic;
    } else {
      // Sensitive but never used as a predicate: randomized encryption with
      // no query support needed — ASHE works and is cheapest.
      cp.scheme = EncScheme::kAshe;
    }
    // Dimensions that are also aggregated (role "both") carry an ASHE column.
    if (u.IsMeasure()) {
      cp.add_ashe = true;
      cp.needs_square = cp.needs_square || u.quadratic_agg;
      cp.add_ope = cp.add_ope || u.minmax_agg || u.range_filter;
    }
    plan.columns[col.name] = cp;
  }

  // Second pass: SPLASHE candidates lowest-cardinality-first under the
  // storage budget (Section 4.2: "prioritizes the dimensions ... based on
  // their cardinality, lowest cardinal dimension first").
  std::sort(candidates.begin(), candidates.end(),
            [](const SplasheCandidate& a, const SplasheCandidate& b) {
              return a.cardinality < b.cardinality;
            });
  const double base_width = static_cast<double>(schema.columns.size());
  double added_width = 0;
  for (const SplasheCandidate& cand : candidates) {
    const auto& spec = *schema.Find(cand.name);
    const auto measures_it = co_measures.find(cand.name);
    std::vector<std::string> measures;
    if (measures_it != co_measures.end()) {
      measures.assign(measures_it->second.begin(), measures_it->second.end());
    }
    SplasheLayout layout = BuildSplasheLayout(cand.name, *spec.distribution, measures,
                                              cand.enhanced, options.expected_rows);
    const size_t k = layout.splayed_values.size();
    double extra = 0;
    if (cand.enhanced) {
      extra = static_cast<double>(k + 2) + static_cast<double>(k + 1) * measures.size() - 1.0;
    } else {
      extra = static_cast<double>(k) + static_cast<double>(k) * measures.size() - 1.0;
    }
    const double factor_after = (base_width + added_width + extra) / base_width;
    if (options.max_storage_expansion > 0 && factor_after > options.max_storage_expansion) {
      plan.columns[cand.name].scheme = EncScheme::kDet;
      plan.warnings.push_back("dimension '" + cand.name +
                              "' exceeds the storage budget; falling back to DET");
      continue;
    }
    added_width += extra;
    plan.splashe.push_back(std::move(layout));
  }
  return plan;
}

double EstimateFilterSelectivity(const Query& query, const PlainSchema& schema) {
  double selectivity = 1.0;
  for (const Predicate& pred : query.filters) {
    if (IsRightRef(pred.column)) {
      continue;  // right-table filters don't shrink the fact-side scan
    }
    const bool is_eq = pred.op == CmpOp::kEq;
    const bool is_ne = pred.op == CmpOp::kNe;
    double estimate = is_eq ? 0.15 : (is_ne ? 0.85 : 0.5);

    const PlainColumnSpec* spec = schema.Find(pred.column);
    if (spec != nullptr && spec->distribution.has_value() &&
        spec->distribution->frequencies.size() >= spec->distribution->values.size()) {
      const ValueDistribution& dist = *spec->distribution;
      // Frequency mass of the values satisfying the predicate. String
      // domains answer eq/ne only; numeric domains answer ranges too.
      const int64_t* int_operand = std::get_if<int64_t>(&pred.operand);
      const std::string* str_operand = std::get_if<std::string>(&pred.operand);
      double mass = 0;
      bool known = true;
      for (size_t i = 0; i < dist.values.size() && known; ++i) {
        bool matches = false;
        if (int_operand != nullptr) {
          int64_t v = 0;
          if (!ParseInt64(dist.values[i], &v)) {
            known = false;  // non-numeric domain vs. int literal: no estimate
            break;
          }
          matches = CmpOpMatchesOrder(pred.op, v < *int_operand ? -1 : (v > *int_operand ? 1 : 0));
        } else if (str_operand != nullptr && (is_eq || is_ne)) {
          matches = is_eq ? dist.values[i] == *str_operand : dist.values[i] != *str_operand;
        } else {
          known = false;  // string range predicates: no order on the domain
          break;
        }
        if (matches) {
          mass += dist.frequencies[i];
        }
      }
      if (known) {
        estimate = mass;
      }
    }
    selectivity *= std::clamp(estimate, 0.0, 1.0);
  }
  return std::clamp(selectivity, 0.0, 1.0);
}

std::optional<ClusteringKeyRange> ExtractClusteringKeyRange(const Query& query,
                                                            const std::string& column) {
  if (column.empty()) {
    return std::nullopt;
  }
  ClusteringKeyRange range;
  bool constrained = false;
  for (const Predicate& pred : query.filters) {
    if (pred.column != column || pred.param >= 0) {
      continue;  // a different column, or a still-unbound placeholder slot
    }
    const int64_t* v = std::get_if<int64_t>(&pred.operand);
    if (v == nullptr) {
      continue;  // non-integer operand can't bound an int64 key
    }
    // Half-open ops tighten to closed bounds; at the domain edge the
    // interval is provably empty (x < INT64_MIN has no solutions).
    switch (pred.op) {
      case CmpOp::kEq:
        range.lo = std::max(range.lo, *v);
        range.hi = std::min(range.hi, *v);
        constrained = true;
        break;
      case CmpOp::kNe:
        break;  // punches a hole, doesn't shrink the hull
      case CmpOp::kLt:
        if (*v == std::numeric_limits<int64_t>::min()) {
          range.empty = true;
        } else {
          range.hi = std::min(range.hi, *v - 1);
        }
        constrained = true;
        break;
      case CmpOp::kLe:
        range.hi = std::min(range.hi, *v);
        constrained = true;
        break;
      case CmpOp::kGt:
        if (*v == std::numeric_limits<int64_t>::max()) {
          range.empty = true;
        } else {
          range.lo = std::max(range.lo, *v + 1);
        }
        constrained = true;
        break;
      case CmpOp::kGe:
        range.lo = std::max(range.lo, *v);
        constrained = true;
        break;
    }
  }
  if (!constrained) {
    return std::nullopt;
  }
  range.empty = range.empty || range.lo > range.hi;
  return range;
}

}  // namespace seabed
