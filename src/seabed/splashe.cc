#include "src/seabed/splashe.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace seabed {

size_t ChooseSplayK(const std::vector<uint64_t>& sorted_counts) {
  const size_t d = sorted_counts.size();
  for (size_t i = 1; i < d; ++i) {
    SEABED_CHECK_MSG(sorted_counts[i - 1] >= sorted_counts[i],
                     "counts must be sorted non-increasing");
  }
  uint64_t prefix = 0;  // sum of the k most frequent counts
  uint64_t total = std::accumulate(sorted_counts.begin(), sorted_counts.end(), uint64_t{0});
  for (size_t k = 0; k < d; ++k) {
    // Deficit to pad every value i > k up to n_{k+1} occurrences.
    const uint64_t threshold = sorted_counts[k];  // n_{k+1} with 0-based k
    const uint64_t suffix_total = total - prefix;
    const uint64_t suffix_count = d - k;
    // sum_{i>k}(threshold - n_i) over the values *not* splayed, which with
    // 0-based k are indices k..d-1 — but index k defines the threshold and is
    // itself in the suffix, contributing 0 deficit.
    const uint64_t deficit = threshold * suffix_count - suffix_total;
    if (prefix >= deficit) {
      return k;
    }
    prefix += sorted_counts[k];
  }
  return d;
}

double BasicSplasheExpansion(size_t cardinality, size_t num_measures) {
  const double base = 1.0 + static_cast<double>(num_measures);
  const double splayed = static_cast<double>(cardinality) * (1.0 + num_measures);
  return splayed / base;
}

double EnhancedSplasheExpansion(size_t k, size_t num_measures) {
  const double base = 1.0 + static_cast<double>(num_measures);
  // k+1 indicator columns, one DET column, (k+1) columns per measure.
  const double splayed = static_cast<double>(k + 2) + (k + 1.0) * num_measures;
  return splayed / base;
}

SplasheLayout BuildSplasheLayout(const std::string& dimension,
                                 const ValueDistribution& distribution,
                                 const std::vector<std::string>& splayed_measures,
                                 bool enhanced, uint64_t expected_rows) {
  SEABED_CHECK(distribution.values.size() == distribution.frequencies.size());
  SEABED_CHECK(!distribution.values.empty());

  SplasheLayout layout;
  layout.dimension = dimension;
  layout.splayed_measures = splayed_measures;
  layout.enhanced = enhanced;

  if (!enhanced) {
    layout.splayed_values = distribution.values;
    return layout;
  }

  // Sort values by expected count, descending.
  std::vector<size_t> order(distribution.values.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint64_t> counts(distribution.values.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<uint64_t>(distribution.frequencies[i] *
                                      static_cast<double>(expected_rows));
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return counts[a] > counts[b]; });
  std::vector<uint64_t> sorted_counts(counts.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_counts[i] = counts[order[i]];
  }

  const size_t k = ChooseSplayK(sorted_counts);
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < k) {
      layout.splayed_values.push_back(distribution.values[order[i]]);
    } else {
      layout.other_values.push_back(distribution.values[order[i]]);
    }
  }
  // Equalization target: the frequency of the most common non-splayed value.
  layout.target_count = k < sorted_counts.size() ? sorted_counts[k] : 0;
  return layout;
}

}  // namespace seabed
