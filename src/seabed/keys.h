// Client-side key management.
//
// Seabed chooses a different secret key for every encrypted column
// (Section 4.2). Keys are derived from one master secret with the column name
// as the derivation label, so the trusted proxy only has to store the master
// secret. The derivation PRF is AES-CMAC-style (DetToken) under the master
// key — standard KDF-by-PRF construction.
#ifndef SEABED_SRC_SEABED_KEYS_H_
#define SEABED_SRC_SEABED_KEYS_H_

#include <string>

#include "src/crypto/aes128.h"

namespace seabed {

class ClientKeys {
 public:
  explicit ClientKeys(const AesKey& master) : master_(master) {}

  // Deterministic test/demo keys.
  static ClientKeys FromSeed(uint64_t seed) { return ClientKeys(AesKey::FromSeed(seed)); }

  // Per-column key: KDF(master, label). Distinct labels yield independent
  // pseudo-random keys.
  AesKey DeriveColumnKey(const std::string& label) const;

 private:
  AesKey master_;
};

// Canonical key-derivation label for an encrypted column: "<table>/<column>".
// Including the table name keeps per-column keys distinct across tables even
// when column names collide (Section 4.2: "a different secret key k for each
// new column").
inline std::string ColumnKeyLabel(const std::string& table_name, const std::string& enc_column) {
  return table_name + "/" + enc_column;
}

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_KEYS_H_
