// The Seabed query translator (paper Section 4.4).
//
// Rewrites a plaintext Query into (a) a ServerPlan executable over the
// encrypted table — constants encrypted with the right scheme, SPLASHE
// filters rewritten into splayed-column aggregations, the ID column
// implicitly preserved, group-by inflation applied — and (b) a ClientPlan
// telling the decryption module how to reassemble final answers (AVG
// division, variance formula, group deflation, DET token rendering).
#ifndef SEABED_SRC_SEABED_TRANSLATOR_H_
#define SEABED_SRC_SEABED_TRANSLATOR_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/ore.h"
#include "src/encoding/id_list_codec.h"
#include "src/query/query.h"
#include "src/seabed/encryptor.h"

namespace seabed {

struct ServerPredicate {
  enum class Kind { kPlainInt, kPlainString, kDetEq, kOreCmp };
  Kind kind = Kind::kPlainInt;
  std::string column;  // encrypted column name
  CmpOp op = CmpOp::kEq;
  int64_t int_operand = 0;
  std::string str_operand;
  uint64_t det_token = 0;
  OreCiphertext ore_operand;
  bool on_right = false;  // evaluated against the joined table

  // Prepared-statement slot: -1 means the operand above is final; >= 0 means
  // this predicate is a typed placeholder — the operand is filled per
  // execution by BindTranslatedQuery, which encrypts params[param] under
  // bind_key (the per-column key, derived once at translation time so the
  // bind path pays only the DET/ORE encryption, not the KDF).
  int param = -1;
  AesKey bind_key;
};

struct ServerAggregate {
  enum class Kind {
    kAsheSum,    // homomorphic sum over an ASHE column
    kRowCount,   // number of matching rows (the ID list length)
    kOreMin,     // argmin by ORE comparisons; returns companion ASHE cell + id
    kOreMax,
  };
  Kind kind = Kind::kAsheSum;
  std::string column;        // ASHE column (kAsheSum) or ORE column (min/max)
  std::string value_column;  // companion ASHE column for min/max results
  bool on_right = false;
};

struct ServerGroupBy {
  std::string column;  // encrypted (DET) or plain column name
  bool on_right = false;
};

struct ServerPlan {
  std::string table;
  std::optional<Join> join;  // columns already rewritten to #det names
  std::vector<ServerPredicate> predicates;
  std::vector<ServerAggregate> aggregates;
  std::vector<ServerGroupBy> group_by;

  // Group inflation factor (Section 4.5): > 1 appends id % inflation to the
  // group key so the reduce phase uses more workers.
  size_t inflation = 1;

  // ID-list codec configuration; group-by plans drop range encoding.
  IdListOptions idlist;

  // Section 4.5: compress at workers (parallel) or at the driver.
  bool worker_side_compression = true;
};

// How the client turns decrypted server aggregates into final result values.
struct ClientOutput {
  enum class Kind {
    kSum,       // arg0 = ashe sum
    kCount,     // arg0 = row-count or ashe sum of an indicator column
    kAvg,       // arg0 = sum, arg1 = count
    kVariance,  // arg0 = sum of squares, arg1 = sum, arg2 = count
    kStddev,
    kMinMax,    // arg0 = ore min/max aggregate
  };
  Kind kind = Kind::kSum;
  size_t arg0 = 0;
  size_t arg1 = 0;
  size_t arg2 = 0;
  std::string alias;
};

struct ClientGroupOutput {
  enum class Kind { kPlainInt, kPlainString, kDetInt, kDetString };
  Kind kind = Kind::kPlainInt;
  std::string enc_column;   // for DET dictionary lookup
  std::string key_label;    // key-derivation label for DET decryption
  std::string plain_name;   // result column header
  bool on_right = false;    // column belongs to the joined table
};

struct ClientPlan {
  std::vector<ClientOutput> outputs;
  std::vector<ClientGroupOutput> group_outputs;
  size_t inflation = 1;
  // Index into ServerPlan::aggregates of the SPLASHE filter's matching-row
  // count, or -1. A SPLASHE-rewritten filter has no server predicate — the
  // server aggregates splayed columns over every scanned row — so with GROUP
  // BY, groups where the filtered value never occurs still reach the client
  // as all-zero rows. Plaintext semantics drop them (no matching rows, no
  // group); the client skips groups whose count decrypts to zero.
  int splashe_filter_count = -1;
};

// The round-one probe section of a translated plan (derived by
// DeriveProbeSection in src/seabed/probe.h): the fact-side server predicates
// a row-group summary index can evaluate. Derived once at translation time,
// so plan-cache hits skip the derivation along with the translation.
struct ProbeSection {
  std::vector<ServerPredicate> predicates;
  // False when no predicate can exclude a row group (e.g. unfiltered scans,
  // SPLASHE-rewritten filters, right-table-only filters) — backends skip the
  // probe round entirely then.
  bool prunable = false;
};

struct TranslatedQuery {
  ServerPlan server;
  ClientPlan client;
  ProbeSection probe;
};

struct TranslatorOptions {
  // Worker count hint for the inflation heuristic ("inflate the number of
  // groups to the number of available workers when we expect fewer groups
  // than workers" — Section 4.5).
  size_t cluster_workers = 1;
  bool enable_group_inflation = true;
  IdListOptions idlist = IdListOptions::Default();
  bool worker_side_compression = true;
};

class Translator {
 public:
  Translator(const EncryptedDatabase& db, const ClientKeys& keys)
      : db_(&db), keys_(&keys) {}

  // Rewrites `query` for the encrypted schema. Aborts (with a message) on
  // queries the planner did not provision for.
  TranslatedQuery Translate(const Query& query, const TranslatorOptions& options) const;

 private:
  const EncryptedDatabase* db_;
  const ClientKeys* keys_;
};

// Binds a parameterized plan: copies `shape`, encrypts params[slot] into
// each placeholder predicate (DET token for equality, ORE ciphertext for
// ranges, plain operand otherwise) under the pre-derived per-slot key, and
// re-derives the probe section over the now-bound predicates. The input plan
// is untouched, so concurrent executions may bind the same cached shape.
// Aborts on a type mismatch (e.g. a string bound to a range slot).
TranslatedQuery BindTranslatedQuery(const TranslatedQuery& shape,
                                    std::span<const Value> params);

// The plan-cache key: everything Translate reads beyond the encrypted schema
// — the exact query fingerprint (filters order-normalized, literals typed)
// plus the inflation hint and the TranslatorOptions digest. Translation is a
// pure function of (schema plan, keys, this key): DET tokens are
// deterministic per key, and appends never change column schemes, so a plan
// cached under this key stays valid for the lifetime of the attached table.
// Parameterized queries participate too: unbound placeholders fingerprint as
// their slot (`?N`), so one entry covers every binding of the shape.
std::string PlanCacheKey(const Query& query, const TranslatorOptions& options);

// The non-fingerprint tail of PlanCacheKey. Prepared statements cache the
// fingerprint half in the handle and append this per call, skipping the
// per-execution fingerprint walk.
std::string PlanCacheKeySuffix(size_t expected_groups, const TranslatorOptions& options);

// Thread-safe memo of translated plans, shared by the backends of one
// session (Session::ExecuteBatch translates concurrently) or by a whole
// Service fleet. Entries are immutable shared_ptrs, so a hit outlives a
// concurrent Clear(). Bounded, with LRU eviction: ad-hoc keys embed exact
// filter literals, so a dashboard sweeping a parameter (WHERE ts >= <moving
// t>) churns one-shot entries without limit — eviction must follow recency,
// or that churn flushes the hot shape-keyed entries prepared statements
// live on (FIFO would drop them in insertion order regardless of use).
class TranslatedPlanCache {
 public:
  explicit TranslatedPlanCache(size_t max_entries = 4096);

  // Returns the cached plan, or nullptr (counting a hit / miss).
  std::shared_ptr<const TranslatedQuery> Find(const std::string& key);
  void Insert(const std::string& key, std::shared_ptr<const TranslatedQuery> plan);
  void Clear();

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    std::shared_ptr<const TranslatedQuery> plan;
    std::list<std::string>::iterator lru;
  };

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> plans_;
  std::list<std::string> lru_;  // most recently used at the front
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_TRANSLATOR_H_
