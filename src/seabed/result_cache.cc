#include "src/seabed/result_cache.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace seabed {

size_t EstimateResultBytes(const ResultSet& result) {
  size_t bytes = sizeof(ResultSet);
  for (const std::string& name : result.column_names) {
    bytes += sizeof(std::string) + name.size();
  }
  for (const auto& row : result.rows) {
    bytes += sizeof(row) + row.size() * sizeof(Value);
    for (const Value& v : row) {
      if (const auto* s = std::get_if<std::string>(&v)) {
        bytes += s->size();
      }
    }
  }
  return bytes;
}

SharedResultCache::SharedResultCache() : SharedResultCache(Limits{}) {}

SharedResultCache::SharedResultCache(Limits limits) : limits_(limits) {
  SEABED_CHECK_MSG(limits_.max_entries >= 1, "result cache needs room for one entry");
}

SharedResultCache::Lookup SharedResultCache::Find(const std::string& key) {
  Lookup lookup;
  std::lock_guard<std::mutex> lock(mu_);
  lookup.epoch = epoch_.load(std::memory_order_acquire);
  const auto it = results_.find(key);
  if (it == results_.end()) {
    ++misses_;
    return lookup;
  }
  ++hits_;
  Entry& entry = it->second;
  lru_.splice(lru_.begin(), lru_, entry.lru);  // touch
  lookup.result = entry.result;
  lookup.result_bytes = entry.result_bytes;
  lookup.rows_touched = entry.rows_touched;
  return lookup;
}

void SharedResultCache::Insert(const std::string& key,
                               std::shared_ptr<const ResultSet> result, size_t result_bytes,
                               uint64_t rows_touched, std::vector<std::string> tables,
                               uint64_t lookup_epoch) {
  Entry entry;
  entry.bytes = key.size() + EstimateResultBytes(*result);
  entry.result = std::move(result);
  entry.result_bytes = result_bytes;
  entry.rows_touched = rows_touched;
  entry.tables = std::move(tables);

  std::lock_guard<std::mutex> lock(mu_);
  // Publish only if no invalidation ran since the lookup — a result computed
  // over the pre-append snapshot must not outlive the append.
  if (epoch_.load(std::memory_order_acquire) != lookup_epoch) {
    return;
  }
  InsertLocked(key, std::move(entry));
}

void SharedResultCache::InsertLocked(const std::string& key, Entry entry) {
  const auto it = results_.find(key);
  if (it != results_.end()) {
    // Concurrent miss on the same key: keep one copy, refresh its payload.
    total_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    results_.erase(it);
  }
  lru_.push_front(key);
  entry.lru = lru_.begin();
  total_bytes_ += entry.bytes;
  results_.emplace(key, std::move(entry));
  EvictLocked();
}

void SharedResultCache::EvictLocked() {
  while (!lru_.empty() &&
         (results_.size() > limits_.max_entries || total_bytes_ > limits_.max_bytes)) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = results_.find(victim);
    SEABED_CHECK(it != results_.end());
    total_bytes_ -= it->second.bytes;
    results_.erase(it);
  }
}

void SharedResultCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto it = results_.begin(); it != results_.end();) {
    const Entry& entry = it->second;
    if (std::find(entry.tables.begin(), entry.tables.end(), table) != entry.tables.end()) {
      total_bytes_ -= entry.bytes;
      lru_.erase(entry.lru);
      it = results_.erase(it);
    } else {
      ++it;
    }
  }
}

void SharedResultCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  results_.clear();
  lru_.clear();
  total_bytes_ = 0;
}

uint64_t SharedResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t SharedResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t SharedResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

size_t SharedResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

}  // namespace seabed
