#include "src/seabed/session.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace seabed {

Session::Session(SessionOptions options)
    : options_(std::move(options)), keys_(ClientKeys::FromSeed(options_.key_seed)) {
  if (options_.external_cluster == nullptr) {
    own_cluster_ = std::make_unique<Cluster>(options_.cluster);
  }
  context_.catalog = &catalog_;
  context_.keys = &keys_;
  context_.cluster =
      options_.external_cluster != nullptr ? options_.external_cluster : own_cluster_.get();
  context_.translator = options_.translator;
  context_.probe = options_.probe;
  context_.rebalance = options_.shards_rebalance;
  context_.placement = options_.shards_placement;
  executor_ = MakeExecutor(options_.backend, &context_, options_.paillier, options_.shards,
                           options_.cache);
}

Session::~Session() = default;

void Session::Attach(std::shared_ptr<Table> table, const PlainSchema& schema,
                     const std::vector<Query>& sample_queries) {
  AttachPlanned(std::move(table), schema,
                PlanEncryption(schema, sample_queries, options_.planner));
}

void Session::AttachPlanned(std::shared_ptr<Table> table, const PlainSchema& schema,
                            EncryptionPlan plan) {
  SEABED_CHECK_MSG(table != nullptr, "Attach requires a table");
  AttachedTable attached;
  attached.name = schema.table_name;
  attached.plain = std::move(table);
  attached.schema = schema;
  attached.plan = std::move(plan);
  executor_->Prepare(catalog_.Add(std::move(attached)));
}

void Session::Append(const std::string& table, const Table& new_rows, JobStats* stats) {
  // Backends own the growth policy: encrypted tables share the non-sensitive
  // plaintext columns with the attached table, so who appends what depends
  // on the backend (see Executor::Append).
  executor_->Append(catalog_.GetMutable(table), new_rows, stats);
}

ResultSet Session::Execute(const Query& query, QueryStats* stats) {
  return executor_->Execute(query, stats);
}

PreparedQuery Session::Prepare(const Query& shape) const {
  const AttachedTable& fact = catalog_.Get(shape.table);  // aborts when unattached
  const size_t num_params = shape.num_params();

  // Slots must be contiguous and unique: BindParams positions values by
  // slot, so a gap or duplicate is a client bug worth failing loudly at
  // Prepare time rather than silently mis-binding at execution time.
  std::vector<char> seen(num_params, 0);
  bool parameterized = true;
  for (const Predicate& p : shape.filters) {
    if (p.param < 0) {
      continue;
    }
    SEABED_CHECK_MSG(!seen[static_cast<size_t>(p.param)],
                     "Prepare: placeholder slot " << p.param << " used twice");
    seen[static_cast<size_t>(p.param)] = 1;
    // SPLASHE rewrites depend on the literal value (splayed vs. "others"
    // columns), so such a shape cannot be translated once; mark the handle
    // for the bind-then-ad-hoc fallback.
    if (p.column.rfind("right:", 0) != 0 && fact.plan.FindSplashe(p.column) != nullptr) {
      parameterized = false;
    }
  }
  for (size_t slot = 0; slot < num_params; ++slot) {
    SEABED_CHECK_MSG(seen[slot], "Prepare: placeholder slots are not contiguous (slot "
                                     << slot << " of " << num_params << " is unused)");
  }

  auto state = std::make_shared<PreparedQuery::State>();
  state->shape = shape;
  state->shape_key = shape.Fingerprint(Query::FingerprintMode::kShape);
  state->plan_key_base = shape.Fingerprint(Query::FingerprintMode::kExact);
  state->num_params = num_params;
  state->parameterized = parameterized;
  return PreparedQuery(std::move(state));
}

ResultSet Session::Execute(const PreparedQuery& prepared, std::span<const Value> params,
                           QueryStats* stats) {
  return executor_->ExecutePrepared(prepared, params, stats);
}

std::vector<ResultSet> Session::ExecutePreparedBatch(
    const PreparedQuery& prepared, std::span<const std::vector<Value>> param_sets,
    std::vector<QueryStats>* stats) {
  std::vector<ResultSet> results(param_sets.size());
  if (stats != nullptr) {
    stats->assign(param_sets.size(), QueryStats{});
  }
  if (param_sets.empty()) {
    return results;
  }
  const size_t threads =
      std::min(param_sets.size(),
               static_cast<size_t>(std::max(1u, std::thread::hardware_concurrency())));
  ThreadPool pool(threads);
  pool.ParallelFor(param_sets.size(), [&](size_t i) {
    results[i] = executor_->ExecutePrepared(prepared, param_sets[i],
                                            stats != nullptr ? &(*stats)[i] : nullptr);
  });
  return results;
}

std::vector<ResultSet> Session::ExecuteBatch(std::span<const Query> queries,
                                             std::vector<QueryStats>* stats) {
  std::vector<ResultSet> results(queries.size());
  if (stats != nullptr) {
    stats->assign(queries.size(), QueryStats{});
  }
  if (queries.empty()) {
    return results;
  }
  // Query-level parallelism runs on its own pool. Results are identical to
  // serial Execute, but concurrent queries share the host's cores, so the
  // measured per-task compute feeding QueryStats includes cross-query
  // interference — batch stats trade latency fidelity for throughput.
  const size_t threads =
      std::min(queries.size(),
               static_cast<size_t>(std::max(1u, std::thread::hardware_concurrency())));
  ThreadPool pool(threads);
  pool.ParallelFor(queries.size(), [&](size_t i) {
    results[i] = executor_->Execute(queries[i], stats != nullptr ? &(*stats)[i] : nullptr);
  });
  return results;
}

void Session::UseCluster(const Cluster* cluster) {
  if (cluster != nullptr) {
    context_.cluster = cluster;
    return;
  }
  if (own_cluster_ == nullptr) {
    own_cluster_ = std::make_unique<Cluster>(options_.cluster);
  }
  context_.cluster = own_cluster_.get();
}

void Session::set_translator_options(const TranslatorOptions& options) {
  context_.translator = options;
}

void Session::set_probe_options(const ProbeOptions& options) { context_.probe = options; }

const EncryptionPlan& Session::plan(const std::string& table) const {
  return catalog_.Get(table).plan;
}

const EncryptedDatabase& Session::encrypted_database(const std::string& table) const {
  const AttachedTable& attached = catalog_.Get(table);
  SEABED_CHECK_MSG(attached.enc.has_value(),
                   "backend " << BackendKindName(options_.backend)
                              << " keeps no encrypted database for " << table);
  return *attached.enc;
}

}  // namespace seabed
