#include "src/seabed/scan_kernels.h"

#include <algorithm>
#include <atomic>
#include <bit>

// ISA selection. SEABED_NO_SIMD (CMake escape hatch) forces the portable
// scalar fallback everywhere; otherwise x86-64 gets SSE2 baseline kernels
// with an AVX2 upgrade behind a runtime cpuid check (the AVX2 bodies carry a
// target attribute, so the rest of the file never emits VEX encodings and the
// binary stays runnable on SSE2-only hosts), and aarch64 gets NEON (baseline
// there).
#if !defined(SEABED_NO_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define SEABED_SCAN_X86 1
#include <immintrin.h>
#elif !defined(SEABED_NO_SIMD) && defined(__aarch64__)
#define SEABED_SCAN_NEON 1
#include <arm_neon.h>
#endif

namespace seabed {
namespace {

std::atomic<ScanMode> g_scan_mode{ScanMode::kVectorized};

#if defined(SEABED_SCAN_X86)
bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}
#endif

// ---- 64-row word kernels -----------------------------------------------------
// Each returns a 64-bit verdict word for rows [0, 64) of its span (bit i =
// row i passes). Tail blocks (< 64 rows) always run the scalar variant; the
// unused high bits it leaves zero are harmless because callers AND the word
// into a bitmap whose tail bits are already zero.

uint64_t DetEqWordScalar(const uint64_t* tokens, size_t n, uint64_t token) {
  uint64_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    m |= static_cast<uint64_t>(tokens[i] == token) << i;
  }
  return m;
}

uint64_t Int64CmpWordScalar(const int64_t* values, size_t n, CmpOp op, int64_t operand) {
  uint64_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    const int order = values[i] < operand ? -1 : (values[i] > operand ? 1 : 0);
    m |= static_cast<uint64_t>(CmpOpMatchesOrder(op, order)) << i;
  }
  return m;
}

#if defined(SEABED_SCAN_X86)

__attribute__((target("avx2"))) uint64_t DetEqWordAvx2(const uint64_t* tokens, uint64_t token) {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(token));
  uint64_t m = 0;
  for (int k = 0; k < 16; ++k) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tokens + k * 4));
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, needle)));
    m |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << (k * 4);
  }
  return m;
}

uint64_t DetEqWordSse2(const uint64_t* tokens, uint64_t token) {
  // SSE2 has no 64-bit compare: equal 64-bit lanes are lanes whose both
  // 32-bit halves compare equal.
  const __m128i needle = _mm_set1_epi64x(static_cast<long long>(token));
  uint64_t m = 0;
  for (int k = 0; k < 32; ++k) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tokens + k * 2));
    const __m128i eq32 = _mm_cmpeq_epi32(v, needle);
    const __m128i eq64 = _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    const int bits = _mm_movemask_pd(_mm_castsi128_pd(eq64));
    m |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << (k * 2);
  }
  return m;
}

__attribute__((target("avx2"))) uint64_t Int64CmpWordAvx2(const int64_t* values, CmpOp op,
                                                          int64_t operand) {
  // All six operators reduce to one compare + optional inversion:
  //   eq/ne from CMPEQ, gt/le from CMPGT(v, o), lt/ge from CMPGT(o, v).
  const bool use_eq = op == CmpOp::kEq || op == CmpOp::kNe;
  const bool swap = op == CmpOp::kLt || op == CmpOp::kGe;
  const bool invert = op == CmpOp::kNe || op == CmpOp::kLe || op == CmpOp::kGe;
  const __m256i o = _mm256_set1_epi64x(static_cast<long long>(operand));
  uint64_t m = 0;
  for (int k = 0; k < 16; ++k) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + k * 4));
    const __m256i c = use_eq   ? _mm256_cmpeq_epi64(v, o)
                      : swap   ? _mm256_cmpgt_epi64(o, v)
                               : _mm256_cmpgt_epi64(v, o);
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(c));
    m |= static_cast<uint64_t>(static_cast<unsigned>(bits)) << (k * 4);
  }
  return invert ? ~m : m;
}

#elif defined(SEABED_SCAN_NEON)

uint64_t DetEqWordNeon(const uint64_t* tokens, uint64_t token) {
  const uint64x2_t needle = vdupq_n_u64(token);
  uint64_t m = 0;
  for (int k = 0; k < 32; ++k) {
    const uint64x2_t v = vld1q_u64(tokens + k * 2);
    const uint64x2_t eq = vceqq_u64(v, needle);
    m |= (vgetq_lane_u64(eq, 0) & 1) << (k * 2);
    m |= (vgetq_lane_u64(eq, 1) & 1) << (k * 2 + 1);
  }
  return m;
}

uint64_t Int64CmpWordNeon(const int64_t* values, CmpOp op, int64_t operand) {
  const bool use_eq = op == CmpOp::kEq || op == CmpOp::kNe;
  const bool swap = op == CmpOp::kLt || op == CmpOp::kGe;
  const bool invert = op == CmpOp::kNe || op == CmpOp::kLe || op == CmpOp::kGe;
  const int64x2_t o = vdupq_n_s64(operand);
  uint64_t m = 0;
  for (int k = 0; k < 32; ++k) {
    const int64x2_t v = vld1q_s64(values + k * 2);
    const uint64x2_t c = use_eq ? vceqq_s64(v, o) : (swap ? vcgtq_s64(o, v) : vcgtq_s64(v, o));
    m |= (vgetq_lane_u64(c, 0) & 1) << (k * 2);
    m |= (vgetq_lane_u64(c, 1) & 1) << (k * 2 + 1);
  }
  return invert ? ~m : m;
}

#endif

// ---- per-row ORE order ------------------------------------------------------
// Ore::Compare semantics: scan the 64 2-bit u-slots MSB-first (= byte 0
// upward, low bit-pair first within a byte); at the first differing slot,
// ct > operand iff u_ct == u_op + 1 (mod 3). The SIMD variants replace the
// byte-by-byte walk over the shared prefix with one 16-byte equality.

[[maybe_unused]] int OreOrderFromByte(uint8_t x, uint8_t y) {
  // First differing 2-bit slot = the bit pair holding the lowest set bit of
  // the XOR; u values are in {0,1,2} by construction.
  const unsigned diff = static_cast<unsigned>(x ^ y);
  const int shift = std::countr_zero(diff) & ~1;
  const unsigned u1 = (static_cast<unsigned>(x) >> shift) & 3;
  const unsigned u2 = (static_cast<unsigned>(y) >> shift) & 3;
  return u1 == (u2 + 1) % 3 ? 1 : -1;
}

[[maybe_unused]] int OreOrderScalar(const OreCiphertext& ct, const OreCiphertext& operand) {
  return Ore::Compare(ct, operand).order;
}

#if defined(SEABED_SCAN_X86)

int OreOrderSse2(const OreCiphertext& ct, const OreCiphertext& operand, __m128i operand_vec) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ct.packed.data()));
  const unsigned eq = static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, operand_vec)));
  if (eq == 0xFFFFu) {
    return 0;
  }
  const int byte = std::countr_zero(~eq & 0xFFFFu);
  return OreOrderFromByte(ct.packed[byte], operand.packed[byte]);
}

// AVX2 drive: two 16-byte ciphertexts per 256-bit compare, one movemask for
// both rows' differing-byte masks. The per-word skip of dead words matches
// OreCmpDrive below.
__attribute__((target("avx2"))) void OreCmpDriveAvx2(const OreCiphertext* cells, size_t n,
                                                     CmpOp op, const OreCiphertext& operand,
                                                     SelectionBitmap& sel) {
  const __m256i op2 = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(operand.packed.data())));
  // Hoisted verdict table: order ∈ {-1, 0, 1} -> passes.
  const bool pass_lt = CmpOpMatchesOrder(op, -1);
  const bool pass_eq = CmpOpMatchesOrder(op, 0);
  const bool pass_gt = CmpOpMatchesOrder(op, 1);
  auto verdict = [&](const OreCiphertext& ct, uint32_t ne_mask) {
    if (ne_mask == 0) {
      return pass_eq;
    }
    const int byte = std::countr_zero(ne_mask);
    return OreOrderFromByte(ct.packed[byte], operand.packed[byte]) > 0 ? pass_gt : pass_lt;
  };
  uint64_t* words = sel.words();
  for (size_t w = 0; w * 64 < n; ++w) {
    if (words[w] == 0) {
      continue;
    }
    const size_t base = w * 64;
    const size_t limit = std::min<size_t>(64, n - base);
    uint64_t m = 0;
    size_t i = 0;
    for (; i + 2 <= limit; i += 2) {
      const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + base + i));
      const uint32_t ne = ~static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, op2)));
      m |= static_cast<uint64_t>(verdict(cells[base + i], ne & 0xFFFFu)) << i;
      m |= static_cast<uint64_t>(verdict(cells[base + i + 1], ne >> 16)) << (i + 1);
    }
    if (i < limit) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells[base + i].packed.data()));
      const uint32_t ne = ~static_cast<uint32_t>(
                              _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm256_castsi256_si128(op2)))) &
                          0xFFFFu;
      m |= static_cast<uint64_t>(verdict(cells[base + i], ne)) << i;
    }
    words[w] &= m;
  }
}

#elif defined(SEABED_SCAN_NEON)

int OreOrderNeon(const OreCiphertext& ct, const OreCiphertext& operand, uint8x16_t operand_vec) {
  const uint8x16_t v = vld1q_u8(ct.packed.data());
  const uint8x16_t ne = vmvnq_u8(vceqq_u8(v, operand_vec));
  // Narrowing shift turns the 16 lane verdicts into a 64-bit mask with 4
  // bits per byte — aarch64's movemask idiom.
  const uint64_t mask =
      vget_lane_u64(vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(ne), 4)), 0);
  if (mask == 0) {
    return 0;
  }
  const int byte = std::countr_zero(mask) >> 2;
  return OreOrderFromByte(ct.packed[byte], operand.packed[byte]);
}

#endif

// Builds verdict words from a per-row order functor, skipping words the
// earlier (cheaper) kernels already cleared — on a selective compound filter
// the ORE kernel only pays for row groups that still have candidates.
template <typename OrderFn>
void OreCmpDrive(const OreCiphertext* cells, size_t n, CmpOp op, SelectionBitmap& sel,
                 OrderFn&& order_of) {
  uint64_t* words = sel.words();
  for (size_t w = 0; w * 64 < n; ++w) {
    if (words[w] == 0) {
      continue;
    }
    const size_t limit = std::min<size_t>(64, n - w * 64);
    uint64_t m = 0;
    for (size_t i = 0; i < limit; ++i) {
      m |= static_cast<uint64_t>(CmpOpMatchesOrder(op, order_of(cells[w * 64 + i]))) << i;
    }
    words[w] &= m;
  }
}

}  // namespace

void SetServerScanMode(ScanMode mode) { g_scan_mode.store(mode, std::memory_order_relaxed); }

ScanMode ServerScanMode() { return g_scan_mode.load(std::memory_order_relaxed); }

const char* ScanKernelIsaName() {
#if defined(SEABED_SCAN_X86)
  return HasAvx2() ? "avx2" : "sse2";
#elif defined(SEABED_SCAN_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

void FilterDetEq(const uint64_t* tokens, size_t n, bool negate, uint64_t token,
                 SelectionBitmap& sel) {
  uint64_t* words = sel.words();
  const size_t full = n / 64;
  size_t w = 0;
#if defined(SEABED_SCAN_X86)
  if (HasAvx2()) {
    for (; w < full; ++w) {
      const uint64_t m = DetEqWordAvx2(tokens + w * 64, token);
      words[w] &= negate ? ~m : m;
    }
  } else {
    for (; w < full; ++w) {
      const uint64_t m = DetEqWordSse2(tokens + w * 64, token);
      words[w] &= negate ? ~m : m;
    }
  }
#elif defined(SEABED_SCAN_NEON)
  for (; w < full; ++w) {
    const uint64_t m = DetEqWordNeon(tokens + w * 64, token);
    words[w] &= negate ? ~m : m;
  }
#else
  for (; w < full; ++w) {
    const uint64_t m = DetEqWordScalar(tokens + w * 64, 64, token);
    words[w] &= negate ? ~m : m;
  }
#endif
  const size_t tail = n % 64;
  if (tail != 0) {
    const uint64_t m = DetEqWordScalar(tokens + full * 64, tail, token);
    // Under negation the garbage high bits of ~m are ones; the bitmap's
    // masked tail keeps them from resurrecting out-of-range rows.
    words[full] &= negate ? ~m : m;
  }
}

void FilterInt64Cmp(const int64_t* values, size_t n, CmpOp op, int64_t operand,
                    SelectionBitmap& sel) {
  uint64_t* words = sel.words();
  const size_t full = n / 64;
  size_t w = 0;
#if defined(SEABED_SCAN_X86)
  if (HasAvx2()) {
    for (; w < full; ++w) {
      words[w] &= Int64CmpWordAvx2(values + w * 64, op, operand);
    }
  }
  // SSE2 lacks a 64-bit signed compare; pre-AVX2 hosts take the scalar loop.
#elif defined(SEABED_SCAN_NEON)
  for (; w < full; ++w) {
    words[w] &= Int64CmpWordNeon(values + w * 64, op, operand);
  }
#endif
  for (; w < full; ++w) {
    words[w] &= Int64CmpWordScalar(values + w * 64, 64, op, operand);
  }
  const size_t tail = n % 64;
  if (tail != 0) {
    words[full] &= Int64CmpWordScalar(values + full * 64, tail, op, operand);
  }
}

void FilterOreCmp(const OreCiphertext* cells, size_t n, CmpOp op, const OreCiphertext& operand,
                  SelectionBitmap& sel) {
#if defined(SEABED_SCAN_X86)
  if (HasAvx2()) {
    OreCmpDriveAvx2(cells, n, op, operand, sel);
    return;
  }
  const __m128i operand_vec =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(operand.packed.data()));
  OreCmpDrive(cells, n, op, sel,
              [&](const OreCiphertext& ct) { return OreOrderSse2(ct, operand, operand_vec); });
#elif defined(SEABED_SCAN_NEON)
  const uint8x16_t operand_vec = vld1q_u8(operand.packed.data());
  OreCmpDrive(cells, n, op, sel,
              [&](const OreCiphertext& ct) { return OreOrderNeon(ct, operand, operand_vec); });
#else
  OreCmpDrive(cells, n, op, sel,
              [&](const OreCiphertext& ct) { return OreOrderScalar(ct, operand); });
#endif
}

}  // namespace seabed
