// Immutable published table versions for the snapshot-isolated read path.
//
// An append (or rebalance migration) never mutates a table a query might be
// scanning. Instead the writer builds a new version off to the side — deep
// copies of exactly the parts it touches, structural sharing for the rest —
// and publishes it with one atomic pointer swap. In-flight queries pin the
// version they started on through an `EpochDomain` guard (src/common/
// epoch.h); the swapped-out version is retired into the domain and freed once
// the last reader drains. The result: Execute takes no lock of any kind on
// tables or row-group indexes, and appends never block queries.
//
// The row-group probe index is part of the version rather than a
// mutex-guarded side map keyed by table name. Because a version is immutable,
// its summaries are built at most once per (version, group size) — the
// double-build race two first-touch probes used to hit behind
// `Server::probe_mu_` is structurally gone — and an append seeds the new
// version's index from its parent so only the appended tail is summarized.
#ifndef SEABED_SRC_SEABED_SNAPSHOT_H_
#define SEABED_SRC_SEABED_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/engine/table.h"
#include "src/seabed/encryptor.h"
#include "src/seabed/placement.h"
#include "src/seabed/probe.h"
#include "src/seabed/server.h"

namespace seabed {

// Independent copy of `src` for the append path: fresh table with copied
// columns (safe to grow), copied dictionaries (safe to extend). Requires the
// source table to own all its columns — Encryptor::Encrypt copies
// plain-scheme columns instead of sharing them for exactly this reason.
EncryptedDatabase CopyEncryptedDatabase(const EncryptedDatabase& src);

// Row-group summary indexes of one immutable table version, keyed by group
// size. Built lazily on first probe, exactly once per (version, group size):
// racing first-touch probes serialize on the internal mutex and the second
// one finds the summaries already current (the version's table never grows).
class VersionProbeIndex {
 public:
  VersionProbeIndex() = default;
  VersionProbeIndex(const VersionProbeIndex&) = delete;
  VersionProbeIndex& operator=(const VersionProbeIndex&) = delete;

  // Round one of two-round execution over `fact`, which must be the version's
  // own fact table (immutable while published).
  ServerProbeResult Probe(const Table& fact, const ProbeSection& probe,
                          size_t row_group_size) const;

  // Writer-side, pre-publish: copies the parent version's summaries and
  // extends them to `fact`'s row count, so the published version's first
  // probe pays only for rows the parent had not summarized. Not counted as a
  // build.
  void SeedFrom(const VersionProbeIndex& parent, const Table& fact);

  // Number of from-scratch or tail summary builds probes have triggered on
  // this version (regression hook: racing first-touch probes must cost one).
  uint64_t builds() const { return builds_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  mutable std::map<size_t, RowGroupIndex> by_group_size_;
  mutable std::atomic<uint64_t> builds_{0};
};

// One published version of a single-server table: the encrypted database
// (table + plan + DET dictionaries, all owned) and its probe index.
struct TableVersion {
  EncryptedDatabase enc;
  VersionProbeIndex probe;
};

// One published version of a sharded table. Untouched shards share their
// part tables and probe indexes with the parent version (shared_ptr); an
// append deep-copies only the destination shard, a rebalance only the
// donors/recipients it moves rows between.
struct ShardedTableVersion {
  std::vector<std::shared_ptr<Table>> plain_parts;
  std::vector<EncryptedDatabase> parts;
  std::vector<std::shared_ptr<VersionProbeIndex>> probes;  // parallel to parts

  // Merged client-side view (dictionaries across all shards; table points at
  // a representative part). Translator and Client read this.
  EncryptedDatabase view;

  // Broadcast replica for joins: the whole table re-encrypted in the replica
  // id space. Null until the first join; once a version carries a replica,
  // every later version does (appends grow a copy), so join consistency is
  // monotone.
  std::shared_ptr<const EncryptedDatabase> replica;

  // Next fresh ASHE id-space slot for rebalance re-encryption.
  uint64_t next_id_slot = 0;

  // Placement of this table's rows, fixed at attach (src/seabed/placement.h).
  // Under kKeyRange, `boundaries[s]` is the closed clustering-key interval
  // shard s's partition holds IN THIS VERSION — routing consults the pinned
  // version's boundaries, never live state, so a query overlapping a
  // rebalance sees boundaries consistent with the exact parts it scans.
  PlacementPolicy placement = PlacementPolicy::kHash;
  std::string clustering_column;                // empty under kHash
  std::vector<ShardKeyBoundary> boundaries;     // parallel to parts
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SNAPSHOT_H_
