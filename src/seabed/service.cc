#include "src/seabed/service.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/check.h"

namespace seabed {

namespace {

constexpr size_t kLanes = 2;  // ServiceLane::kInteractive, ServiceLane::kBatch

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

}  // namespace

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kRejectedQueueFull:
      return "rejected-queue-full";
    case AdmissionOutcome::kRejectedShutdown:
      return "rejected-shutdown";
    case AdmissionOutcome::kDeadlineExpired:
      return "deadline-expired";
  }
  return "unknown";
}

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      session_(options_.session),
      plan_cache_(std::make_shared<TranslatedPlanCache>(options_.session.cache.plan_cache_entries)),
      quiesce_appends_(options_.force_quiesce_appends ||
                       !session_.executor().snapshot_isolated()),
      queue_(options_.max_queue_depth, kLanes, /*quiesce_barriers=*/quiesce_appends_) {
  SEABED_CHECK_MSG(options_.num_workers >= 1, "Service needs at least one worker");
  SEABED_CHECK_MSG(options_.max_batch >= 1, "max_batch must be >= 1");
  // Share one translated-plan memo across every worker. A no-op on backends
  // that keep their own (kCachingSeabed) or never translate (kPlain).
  session_.executor().SetPlanCache(plan_cache_);
  if (options_.autostart) {
    Start();
  }
}

Service::~Service() { Shutdown(/*drain=*/true); }

void Service::Attach(std::shared_ptr<Table> table, const PlainSchema& schema,
                     const std::vector<Query>& sample_queries) {
  std::unique_lock<std::shared_mutex> lock(serve_mu_);
  session_.Attach(std::move(table), schema, sample_queries);
}

void Service::AttachPlanned(std::shared_ptr<Table> table, const PlainSchema& schema,
                            EncryptionPlan plan) {
  std::unique_lock<std::shared_mutex> lock(serve_mu_);
  session_.AttachPlanned(std::move(table), schema, std::move(plan));
}

void Service::Start() {
  if (started_.exchange(true)) {
    return;
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Service::Reject(Job&& job, AdmissionOutcome outcome, const std::string& error) {
  ServiceResult result;
  result.ok = false;
  result.error = error;
  result.stats.admission = outcome;
  result.stats.lane = job.lane;
  job.promise.set_value(std::move(result));
}

std::future<ServiceResult> Service::Submit(Query query, SubmitOptions options) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.kind = Job::Kind::kQuery;
  job.shape_key = "q:" + query.Fingerprint(Query::FingerprintMode::kShape);
  job.exact_key = query.Fingerprint(Query::FingerprintMode::kExact);
  job.query = std::move(query);
  job.lane = options.lane;
  job.deadline = options.deadline;
  job.enqueued = std::chrono::steady_clock::now();
  return Enqueue(std::move(job), static_cast<size_t>(options.lane));
}

std::future<ServiceResult> Service::Enqueue(Job job, size_t lane) {
  std::future<ServiceResult> future = job.promise.get_future();

  if (!accepting_.load(std::memory_order_acquire)) {
    counters_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    Reject(std::move(job), AdmissionOutcome::kRejectedShutdown, "service is shut down");
    return future;
  }
  if (!queue_.TryPush(std::move(job), lane)) {
    // TryPush fails both on depth and on a racing Close (it never consumes
    // the job on failure); report the honest cause where we can tell.
    if (!accepting_.load(std::memory_order_acquire) || queue_.closed()) {
      counters_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      Reject(std::move(job), AdmissionOutcome::kRejectedShutdown, "service is shut down");
    } else {
      counters_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      Reject(std::move(job), AdmissionOutcome::kRejectedQueueFull,
             "queue full (max_queue_depth=" + std::to_string(options_.max_queue_depth) + ")");
    }
  }
  return future;
}

PreparedQuery Service::Prepare(const Query& shape) {
  // Shared: Prepare only reads the catalog, so it may overlap query groups —
  // it just must not race an Attach rewiring the tables it validates against.
  std::shared_lock<std::shared_mutex> lock(serve_mu_);
  return session_.Prepare(shape);
}

std::future<ServiceResult> Service::SubmitPrepared(const PreparedQuery& prepared,
                                                   std::vector<Value> params,
                                                   SubmitOptions options) {
  SEABED_CHECK_MSG(prepared.valid(), "SubmitPrepared requires a prepared handle");
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  Job job;
  job.kind = Job::Kind::kQuery;
  job.prepared = prepared;
  // The bound query rides along for the coalescing key and the group's
  // dispatch-side bookkeeping; the backend re-binds against its cached
  // translated plan.
  job.query = prepared.Bind(params);
  job.params = std::move(params);
  job.shape_key = "p:" + prepared.plan_key_base();
  job.exact_key = job.query.Fingerprint(Query::FingerprintMode::kExact);
  job.lane = options.lane;
  job.deadline = options.deadline;
  job.enqueued = std::chrono::steady_clock::now();
  return Enqueue(std::move(job), static_cast<size_t>(options.lane));
}

std::vector<std::future<ServiceResult>> Service::SubmitBatch(std::vector<Query> queries,
                                                             SubmitOptions options) {
  std::vector<std::future<ServiceResult>> futures;
  futures.reserve(queries.size());
  for (Query& query : queries) {
    futures.push_back(Submit(std::move(query), options));
  }
  return futures;
}

std::future<ServiceResult> Service::SubmitAppend(std::string table,
                                                 std::shared_ptr<const Table> rows) {
  SEABED_CHECK_MSG(rows != nullptr, "SubmitAppend requires rows");
  Job job;
  job.kind = Job::Kind::kAppend;
  job.append_table = std::move(table);
  job.append_rows = std::move(rows);
  job.lane = ServiceLane::kInteractive;  // lane 0: ingest must not starve
  job.enqueued = std::chrono::steady_clock::now();
  return Enqueue(std::move(job), 0);
}

void Service::Shutdown(bool drain) {
  accepting_.store(false, std::memory_order_release);
  if (!drain) {
    for (Job& job : queue_.Drain()) {
      counters_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      Reject(std::move(job), AdmissionOutcome::kRejectedShutdown,
             "service shut down before this job was served");
    }
  }
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  // With no workers ever started (autostart=false, drain path) the backlog
  // has no one to serve it — fail it rather than leak unfulfilled promises.
  for (Job& job : queue_.Drain()) {
    counters_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    Reject(std::move(job), AdmissionOutcome::kRejectedShutdown,
           "service shut down before this job was served");
  }
}

ServiceCounters Service::counters() const {
  ServiceCounters snapshot;
  snapshot.submitted = counters_.submitted.load(std::memory_order_relaxed);
  snapshot.rejected_queue_full = counters_.rejected_queue_full.load(std::memory_order_relaxed);
  snapshot.rejected_shutdown = counters_.rejected_shutdown.load(std::memory_order_relaxed);
  snapshot.expired = counters_.expired.load(std::memory_order_relaxed);
  snapshot.executed = counters_.executed.load(std::memory_order_relaxed);
  snapshot.coalesced = counters_.coalesced.load(std::memory_order_relaxed);
  snapshot.groups = counters_.groups.load(std::memory_order_relaxed);
  snapshot.appends = counters_.appends.load(std::memory_order_relaxed);
  snapshot.max_group = counters_.max_group.load(std::memory_order_relaxed);
  return snapshot;
}

void Service::BumpMaxGroup(uint64_t group_size) {
  uint64_t current = counters_.max_group.load(std::memory_order_relaxed);
  while (group_size > current &&
         !counters_.max_group.compare_exchange_weak(current, group_size,
                                                    std::memory_order_relaxed)) {
  }
}

void Service::WorkerLoop() {
  std::vector<Job> group;
  for (;;) {
    group.clear();
    const size_t popped = queue_.PopGroup(
        &group, options_.max_batch,
        [](const Job& a, const Job& b) {
          return a.kind == Job::Kind::kQuery && b.kind == Job::Kind::kQuery &&
                 a.shape_key == b.shape_key;
        },
        [](const Job& job) { return job.kind != Job::Kind::kQuery; });
    if (popped == 0) {
      return;  // closed and drained
    }
    if (group.front().kind == Job::Kind::kAppend) {
      RunAppend(std::move(group.front()));  // thaws the queue itself
      queue_.GroupDone();
    } else {
      RunGroup(std::move(group));
      queue_.GroupDone();
    }
  }
}

void Service::RunAppend(Job job) {
  const auto dequeued = std::chrono::steady_clock::now();
  const auto exec_begin = std::chrono::steady_clock::now();
  // The backend reports the ingest job's modeled fabric cost (real measured
  // compute, synthetic parallelism — the same contract queries honor), and
  // pace_modeled_latency sleeps it out just like RunGroup does for queries.
  // WHERE that time passes is exactly the A/B under test below.
  JobStats ingest;
  if (quiesce_appends_) {
    // Legacy path: the queue barrier already quiesced every query group; the
    // exclusive serve lock additionally excludes a concurrent direct Attach.
    // The modeled ingest time passes with the service still locked and the
    // queue still frozen — while the cluster chews on the batch this path
    // has no way to serve around it. That stall is the discipline the
    // snapshot path deletes.
    std::unique_lock<std::shared_mutex> lock(serve_mu_);
    session_.Append(job.append_table, *job.append_rows, &ingest);
    if (options_.pace_modeled_latency && ingest.server_seconds > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(ingest.server_seconds));
    }
    queue_.Thaw();
  } else {
    {
      // Snapshot path: the backend builds the next table version off to the
      // side and publishes it atomically, so in-flight query groups (holding
      // this lock shared) keep running against their pinned versions. Shared
      // here only to exclude a concurrent Attach rewiring the catalog.
      std::shared_lock<std::shared_mutex> lock(serve_mu_);
      session_.Append(job.append_table, *job.append_rows, &ingest);
    }
    // The new version is published, so later-queued queries may dispatch now
    // (preserving SubmitAppend's ordering contract: they observe the append).
    // Only the appender's own completion waits out the modeled fabric time,
    // off to the side of the serving path.
    queue_.Thaw();
    if (options_.pace_modeled_latency && ingest.server_seconds > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(ingest.server_seconds));
    }
  }
  // The span covers the modeled-latency pacing, mirroring query groups: the
  // sleep stands in for the simulated cluster's ingest work.
  const auto exec_end = std::chrono::steady_clock::now();
  counters_.appends.fetch_add(1, std::memory_order_relaxed);
  ServiceResult result;
  result.ok = true;
  result.stats.admission = AdmissionOutcome::kAdmitted;
  result.stats.lane = job.lane;
  result.stats.queue_wait_seconds = Seconds(dequeued - job.enqueued);
  result.stats.batch_size = 1;
  result.stats.dispatch_seq = dispatch_seq_.fetch_add(1, std::memory_order_relaxed);
  result.stats.exec_begin = exec_begin;
  result.stats.exec_end = exec_end;
  result.stats.query.job = ingest;
  result.stats.query.server_seconds = ingest.server_seconds;
  job.promise.set_value(std::move(result));
}

void Service::RunGroup(std::vector<Job> jobs) {
  const auto dequeued = std::chrono::steady_clock::now();

  // Deadlines are honored at dequeue: expired queries fail without executing.
  std::vector<Job> live;
  live.reserve(jobs.size());
  for (Job& job : jobs) {
    if (job.deadline.has_value() && *job.deadline < dequeued) {
      counters_.expired.fetch_add(1, std::memory_order_relaxed);
      ServiceResult result;
      result.ok = false;
      result.error = "deadline expired before execution";
      result.stats.admission = AdmissionOutcome::kDeadlineExpired;
      result.stats.lane = job.lane;
      result.stats.queue_wait_seconds = Seconds(dequeued - job.enqueued);
      job.promise.set_value(std::move(result));
      continue;
    }
    live.push_back(std::move(job));
  }
  if (live.empty()) {
    return;
  }

  if (options_.pre_dispatch_hook) {
    options_.pre_dispatch_hook();
  }

  // Re-check at dispatch: the dequeue check above is not enough — time
  // passes between dequeue and the backend call (group assembly, and on a
  // busy worker the modeled-latency pacing of a preceding group), and a
  // query whose deadline lapsed in that window must fail fast, not execute.
  const auto dispatch = std::chrono::steady_clock::now();
  {
    std::vector<Job> still_live;
    still_live.reserve(live.size());
    for (Job& job : live) {
      if (job.deadline.has_value() && *job.deadline < dispatch) {
        counters_.expired.fetch_add(1, std::memory_order_relaxed);
        ServiceResult result;
        result.ok = false;
        result.error = "deadline expired before dispatch";
        result.stats.admission = AdmissionOutcome::kDeadlineExpired;
        result.stats.lane = job.lane;
        result.stats.queue_wait_seconds = Seconds(dequeued - job.enqueued);
        job.promise.set_value(std::move(result));
        continue;
      }
      still_live.push_back(std::move(job));
    }
    live = std::move(still_live);
  }
  if (live.empty()) {
    return;
  }

  // Coalesce byte-identical queries: one execution answers all duplicates.
  // Prepared groups (never mixed with ad-hoc ones — the shape-key prefix
  // keeps them apart) coalesce on the same bound-exact key, but dedupe into
  // parameter vectors for ExecutePreparedBatch instead of full queries.
  const bool is_prepared = live.front().prepared.valid();
  std::vector<Query> distinct;
  std::vector<std::vector<Value>> distinct_params;
  std::vector<size_t> owner(live.size());
  {
    std::map<std::string, size_t> seen;
    for (size_t i = 0; i < live.size(); ++i) {
      if (options_.coalesce_identical) {
        auto [it, inserted] = seen.try_emplace(live[i].exact_key, distinct.size());
        owner[i] = it->second;
        if (!inserted) {
          continue;
        }
      } else {
        owner[i] = distinct.size();
      }
      distinct.push_back(live[i].query);
      if (is_prepared) {
        distinct_params.push_back(live[i].params);
      }
    }
  }

  const uint64_t seq = dispatch_seq_.fetch_add(1, std::memory_order_relaxed);
  counters_.groups.fetch_add(1, std::memory_order_relaxed);
  BumpMaxGroup(live.size());

  std::vector<ResultSet> results;
  std::vector<QueryStats> stats;
  const auto exec_begin = std::chrono::steady_clock::now();
  {
    std::shared_lock<std::shared_mutex> lock(serve_mu_);
    if (is_prepared) {
      const PreparedQuery& prepared = live.front().prepared;
      if (distinct_params.size() == 1) {
        stats.emplace_back();
        results.push_back(session_.Execute(prepared, distinct_params[0], &stats[0]));
      } else {
        results = session_.ExecutePreparedBatch(prepared, distinct_params, &stats);
      }
    } else if (distinct.size() == 1) {
      stats.emplace_back();
      results.push_back(session_.Execute(distinct[0], &stats[0]));
    } else {
      results = session_.ExecuteBatch(distinct, &stats);
    }
  }

  if (options_.pace_modeled_latency) {
    // One modeled round trip per dispatched group: the whole shape group
    // ships as one batched job, so the group waits out the SLOWEST member's
    // modeled server + transfer latency, not the sum.
    double modeled = 0;
    for (const QueryStats& qs : stats) {
      modeled = std::max(modeled, qs.server_seconds + qs.network_seconds);
    }
    if (modeled > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(modeled));
    }
  }
  // The group's serving span covers the modeled-latency pacing: that sleep
  // stands in for the simulated cluster's work, so overlap assertions (did
  // an append run WHILE queries executed?) must see it.
  const auto exec_end = std::chrono::steady_clock::now();

  counters_.executed.fetch_add(live.size(), std::memory_order_relaxed);
  if (live.size() > distinct.size()) {
    counters_.coalesced.fetch_add(live.size() - distinct.size(), std::memory_order_relaxed);
  }

  std::vector<bool> owner_seen(distinct.size(), false);
  for (size_t i = 0; i < live.size(); ++i) {
    ServiceResult result;
    result.ok = true;
    result.rows = results[owner[i]];
    result.stats.admission = AdmissionOutcome::kAdmitted;
    result.stats.lane = live[i].lane;
    result.stats.queue_wait_seconds = Seconds(dequeued - live[i].enqueued);
    result.stats.batch_size = live.size();
    result.stats.coalesced = owner_seen[owner[i]];
    result.stats.dispatch_seq = seq;
    result.stats.exec_begin = exec_begin;
    result.stats.exec_end = exec_end;
    result.stats.query = stats[owner[i]];
    owner_seen[owner[i]] = true;
    live[i].promise.set_value(std::move(result));
  }
}

}  // namespace seabed
