#include "src/seabed/placement.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/common/check.h"

namespace seabed {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kHash:
      return "hash";
    case PlacementPolicy::kKeyRange:
      return "key-range";
  }
  return "unknown";
}

const std::string* ShardPlacementOptions::ClusteringColumnFor(const std::string& table) const {
  if (policy != PlacementPolicy::kKeyRange) {
    return nullptr;
  }
  const auto it = clustering_columns.find(table);
  return it == clustering_columns.end() ? nullptr : &it->second;
}

Placement::Placement(PlacementPolicy policy, std::string clustering_column, size_t shards)
    : policy_(policy), column_(std::move(clustering_column)), shards_(shards) {
  SEABED_CHECK(shards_ >= 1);
  SEABED_CHECK(policy_ == PlacementPolicy::kHash || !column_.empty());
}

Placement Placement::Resolve(const ShardPlacementOptions& options, const std::string& table_name,
                             const Table& plain, size_t shards) {
  const std::string* column = options.ClusteringColumnFor(table_name);
  if (column == nullptr) {
    return Placement(PlacementPolicy::kHash, "", shards);
  }
  // A configured clustering column that doesn't hold sortable keys is a
  // session misconfiguration, not a fallback case — fail loudly.
  SEABED_CHECK_MSG(plain.HasColumn(*column),
                   "clustering column " << *column << " not in table " << table_name);
  SEABED_CHECK_MSG(plain.GetColumn(*column)->type() == ColumnType::kInt64,
                   "clustering column " << *column << " of " << table_name << " must be int64");
  return Placement(PlacementPolicy::kKeyRange, *column, shards);
}

int64_t Placement::KeyAt(const Table& table, size_t row) const {
  SEABED_CHECK(policy_ == PlacementPolicy::kKeyRange);
  const auto* col = static_cast<const Int64Column*>(table.GetColumn(column_).get());
  return col->Get(row);
}

std::vector<std::vector<size_t>> Placement::PartitionRows(const Table& table) const {
  const size_t rows = table.NumRows();
  std::vector<std::vector<size_t>> assignment(shards_);
  if (policy_ == PlacementPolicy::kHash) {
    for (size_t row = 0; row < rows; ++row) {
      assignment[HashShardOfRow(row, shards_)].push_back(row);
    }
    return assignment;
  }

  // Key-range: sort rows by (key, row), cut the sorted order at near-equal
  // quantile positions, never inside a run of equal keys (ranges must stay
  // disjoint), and hand each shard its slice restored to row order.
  const auto* col = static_cast<const Int64Column*>(table.GetColumn(column_).get());
  std::vector<size_t> order(rows);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const int64_t ka = col->Get(a), kb = col->Get(b);
    return ka != kb ? ka < kb : a < b;
  });
  size_t start = 0;
  for (size_t s = 0; s < shards_; ++s) {
    size_t end = s + 1 == shards_ ? rows : ((s + 1) * rows) / shards_;
    end = std::max(end, start);
    while (end > start && end < rows && col->Get(order[end - 1]) == col->Get(order[end])) {
      ++end;  // keep the equal-key run whole
    }
    std::vector<size_t> slice(order.begin() + start, order.begin() + end);
    std::sort(slice.begin(), slice.end());
    assignment[s] = std::move(slice);
    start = end;
  }
  return assignment;
}

std::vector<ShardKeyBoundary> Placement::InitialBoundaries(
    const Table& table, const std::vector<std::vector<size_t>>& assignment) const {
  std::vector<ShardKeyBoundary> bounds(shards_);
  if (policy_ != PlacementPolicy::kKeyRange) {
    return bounds;
  }
  for (size_t s = 0; s < shards_; ++s) {
    bounds[s] = BoundaryOfRows(table, assignment[s]);
  }
  return bounds;
}

ShardKeyBoundary Placement::BoundaryOfRows(const Table& table,
                                           const std::vector<size_t>& rows) const {
  ShardKeyBoundary bound;
  for (const size_t row : rows) {
    const int64_t key = KeyAt(table, row);
    if (!bound.occupied) {
      bound.occupied = true;
      bound.lo = bound.hi = key;
    } else {
      bound.lo = std::min(bound.lo, key);
      bound.hi = std::max(bound.hi, key);
    }
  }
  return bound;
}

void Placement::WidenBoundary(const Table& table, const std::vector<size_t>& rows,
                              ShardKeyBoundary& bound) const {
  for (const size_t row : rows) {
    const int64_t key = KeyAt(table, row);
    if (!bound.occupied) {
      bound.occupied = true;
      bound.lo = bound.hi = key;
    } else {
      bound.lo = std::min(bound.lo, key);
      bound.hi = std::max(bound.hi, key);
    }
  }
}

std::vector<std::vector<size_t>> Placement::AssignAppend(
    const Table& batch, size_t prior_rows, const std::vector<ShardKeyBoundary>& bounds) const {
  std::vector<std::vector<size_t>> assignment(shards_);
  const size_t rows = batch.NumRows();
  if (policy_ == PlacementPolicy::kHash) {
    // Append locality, unchanged: the whole batch lands on the shard that
    // owns its first global row.
    std::vector<size_t>& dest = assignment[HashShardOfRow(prior_rows, shards_)];
    dest.resize(rows);
    std::iota(dest.begin(), dest.end(), size_t{0});
    return assignment;
  }

  SEABED_CHECK(bounds.size() == shards_);
  const auto* col = static_cast<const Int64Column*>(batch.GetColumn(column_).get());
  for (size_t row = 0; row < rows; ++row) {
    const int64_t key = col->Get(row);
    // Owner: the lowest-index occupied shard whose range holds the key;
    // otherwise the occupied shard with the smallest lo above the key (a gap
    // or below-all key extends that shard downward — ranges stay disjoint);
    // otherwise the key sits above every range and extends the shard with
    // the greatest hi. An entirely unoccupied fleet collects on shard 0.
    size_t dest = shards_;
    size_t next_above = shards_;
    size_t top = shards_;
    for (size_t s = 0; s < shards_; ++s) {
      if (!bounds[s].occupied) {
        continue;
      }
      if (key >= bounds[s].lo && key <= bounds[s].hi) {
        dest = s;
        break;
      }
      if (bounds[s].lo > key &&
          (next_above == shards_ || bounds[s].lo < bounds[next_above].lo)) {
        next_above = s;
      }
      if (top == shards_ || bounds[s].hi > bounds[top].hi) {
        top = s;
      }
    }
    if (dest == shards_) {
      dest = next_above != shards_ ? next_above : (top != shards_ ? top : 0);
    }
    assignment[dest].push_back(row);
  }
  return assignment;
}

std::vector<bool> Placement::RouteShards(const std::vector<ShardKeyBoundary>& bounds,
                                         const ClusteringKeyRange& range) {
  std::vector<bool> active(bounds.size(), false);
  if (range.empty || range.lo > range.hi) {
    return active;
  }
  for (size_t s = 0; s < bounds.size(); ++s) {
    active[s] = bounds[s].occupied && bounds[s].lo <= range.hi && bounds[s].hi >= range.lo;
  }
  return active;
}

}  // namespace seabed
