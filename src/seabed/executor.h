// Pluggable execution backends behind the seabed::Session facade.
//
// The paper's evaluation is a backend-for-backend comparison over identical
// queries: plaintext Spark execution (NoEnc), the CryptDB/Monomi-style
// Paillier baseline, and Seabed's ASHE/SPLASHE pipeline. This header gives
// the three paths one interface — an Executor turns a Query into a ResultSet
// plus per-call QueryStats — so examples, benches and tests swap systems by
// picking a backend instead of re-wiring translator/server/client objects.
#ifndef SEABED_SRC_SEABED_EXECUTOR_H_
#define SEABED_SRC_SEABED_EXECUTOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/epoch.h"
#include "src/crypto/paillier.h"
#include "src/query/query.h"
#include "src/seabed/encryptor.h"
#include "src/seabed/paillier_baseline.h"
#include "src/seabed/planner.h"
#include "src/seabed/prepared.h"
#include "src/seabed/probe.h"
#include "src/seabed/server.h"
#include "src/seabed/snapshot.h"
#include "src/seabed/translator.h"

namespace seabed {

class SharedResultCache;  // src/seabed/result_cache.h

enum class BackendKind {
  kPlain,          // NoEnc: plaintext execution on the cluster model
  kSeabed,         // ASHE/SPLASHE/DET/ORE encrypted pipeline
  kPaillier,       // CryptDB/Monomi-style Paillier baseline
  kShardedSeabed,  // scale-out Seabed: N partitioned servers + merge layer
  kCachingSeabed,  // result + translated-plan cache over an inner backend
};

const char* BackendKindName(BackendKind kind);

// Configuration of the kCachingSeabed decorator (see caching_backend.h).
struct CacheOptions {
  // The backend that executes misses. Any kind except kCachingSeabed.
  BackendKind inner = BackendKind::kSeabed;

  // Result-cache budget: entries beyond either limit evict in LRU order.
  // Ignored when `shared` is set — the shared cache carries its own limits.
  size_t max_entries = 1024;
  size_t max_bytes = 64u << 20;

  // Cross-session result cache (src/seabed/result_cache.h). When set, this
  // session's kCachingSeabed serves hits from — and inserts misses into —
  // the given cache, so a fleet of sessions shares warm results; any
  // session's Append invalidates the table for all of them. When null the
  // backend creates a private cache from the limits above.
  std::shared_ptr<SharedResultCache> shared;

  // Disables the translated-plan cache (result caching is unaffected).
  bool cache_plans = true;

  // Plan-memo budget: keys embed filter literals, so parameter sweeps mint
  // fresh keys; beyond this many plans the least recently used is dropped.
  size_t plan_cache_entries = 4096;
};

// Skew-aware shard rebalancing (kShardedSeabed only; the other backends
// ignore it). Appends place whole batches on one shard (append locality), so
// a skewed stream can concentrate rows; when enabled, Append migrates whole
// row-groups from overloaded shards to underloaded ones — moved rows are
// re-encrypted into the recipient's ASHE identifier space and the donor's
// remainder into a fresh disjoint slot, so coordinator merge semantics are
// untouched. Moves accumulate in RebalanceStats (src/query/query.h).
struct ShardRebalanceOptions {
  // Off by default: Append never migrates rows.
  bool enabled = false;

  // Trigger: rebalance when the largest shard exceeds this multiple of the
  // ideal per-shard row count (total rows / shards).
  double max_skew_ratio = 1.5;

  // Migration granularity — rows per migrated row-group. Moves are whole
  // groups carved off the donor's tail, so donor prefixes keep their
  // identifiers and summaries.
  size_t row_group_size = 1024;
};

// One table registered with a Session: the plaintext source, its schema, the
// planner's encryption plan, and (for encrypted backends) the encrypted form
// built by Executor::Prepare.
struct AttachedTable {
  std::string name;
  std::shared_ptr<Table> plain;
  PlainSchema schema;
  EncryptionPlan plan;

  // Encrypted form owned by the backend that prepared it: the Seabed
  // database for SeabedBackend, the baseline database for PaillierBackend,
  // absent for PlainExecutorBackend.
  std::optional<EncryptedDatabase> enc;
};

// Join-table registry shared by the Session and its backend: queries name
// plaintext tables; backends resolve fact and joined tables here.
class TableCatalog {
 public:
  AttachedTable& Add(AttachedTable table);
  const AttachedTable& Get(const std::string& name) const;  // aborts when absent
  AttachedTable& GetMutable(const std::string& name);
  const AttachedTable* Find(const std::string& name) const;

  const std::map<std::string, AttachedTable>& tables() const { return tables_; }

 private:
  std::map<std::string, AttachedTable> tables_;
};

// Session-owned state every backend reads at query time. The Session mutates
// `cluster` (core-count sweeps), `translator` (codec/inflation knobs) and
// `probe` (two-round mode sweeps) between Execute calls; backends must
// re-read them per call.
struct ExecutionContext {
  const TableCatalog* catalog = nullptr;
  const ClientKeys* keys = nullptr;
  const Cluster* cluster = nullptr;
  TranslatorOptions translator;
  ProbeOptions probe;
  ShardRebalanceOptions rebalance;
  ShardPlacementOptions placement;
};

// Abstract execution backend. Implementations are stateless per call apart
// from the prepared table state, so concurrent Execute calls are safe
// (Session::ExecuteBatch relies on this).
class Executor {
 public:
  virtual ~Executor();

  virtual const char* name() const = 0;

  // Builds backend state for a newly attached table (encryption, upload to
  // the untrusted server). Called once per table by Session::Attach.
  virtual void Prepare(AttachedTable& table) = 0;

  // Appends `new_rows` to the attached table (paper Section 4.1): grows
  // `table.plain` and the backend's encrypted state. Snapshot-isolated
  // backends build a new table version off to the side and publish it with
  // an atomic swap, so Append may run while queries execute. When `stats`
  // is non-null it receives the ingest job's simulated cluster cost — real
  // measured compute, synthetic parallel fabric, the same contract Execute
  // honors for queries (see src/engine/cluster.h).
  virtual void Append(AttachedTable& table, const Table& new_rows,
                      JobStats* stats = nullptr) = 0;

  // Runs `query` end-to-end and fills `stats` (when non-null) with the
  // latency breakdown of this call.
  virtual ResultSet Execute(const Query& query, QueryStats* stats) = 0;

  // Prepared execution: runs `prepared` with `params` bound to its
  // placeholder slots. Every backend returns exactly the rows of
  // Execute(prepared.Bind(params)); backends with a translation step
  // (kSeabed, kShardedSeabed) additionally reuse the shape's cached plan and
  // only encrypt the bound literals per call. The base implementation binds
  // and delegates to Execute — correct for backends with no translation to
  // skip (kPlain) or none worth parameterizing (kPaillier re-encrypts the
  // whole plan anyway). All implementations set stats->prepared and
  // stats->bind_seconds.
  virtual ResultSet ExecutePrepared(const PreparedQuery& prepared,
                                    std::span<const Value> params, QueryStats* stats);

  // Points the backend at a shared translated-plan memo. Shared ownership:
  // the cache may be installed into many backends across sessions (and into
  // a Service), so it must be able to outlive any one of them. Backends that
  // translate per call (kSeabed, kShardedSeabed) consult it before
  // rebuilding Translator state; the default ignores the cache. Installed by
  // the kCachingSeabed decorator and by seabed::Service.
  virtual void SetPlanCache(std::shared_ptr<TranslatedPlanCache> cache) { (void)cache; }

  // Snapshot of the cumulative skew-rebalancing detail, or nullopt on
  // backends that never migrate rows (everything but kShardedSeabed; the
  // caching decorator forwards to its inner backend). A copy taken under
  // the backend's state lock, so it is safe to call while appends run.
  virtual std::optional<RebalanceStats> rebalance_stats() const { return std::nullopt; }

  // True when Execute pins an immutable snapshot instead of relying on
  // callers for exclusion — appends and queries may then overlap freely
  // (kSeabed, kShardedSeabed; the caching decorator forwards its inner
  // backend's answer). The serving layer uses this to drop the quiescing
  // append barrier and the serve-side reader/writer lock.
  virtual bool snapshot_isolated() const { return false; }
};

// Appends `src`'s rows onto `dst`'s plaintext columns. Columns that `dst`
// shares (by object identity) with `shared_with` are skipped — the encrypted
// side grows those itself. Shared by the backends' Append implementations.
void GrowPlainTable(Table& dst, const Table& src, const Table* shared_with);

// Deep copy of a plaintext int/string table (fresh columns, no sharing).
// Sessions exercised with Append must each own their table — Append grows
// the attached table in place, so attaching one shared instance to several
// sessions would compound every batch. Used by benches and the equivalence
// suites.
std::shared_ptr<Table> CloneTable(const Table& src);

// Models one ingest job on the cluster fabric: `compute_seconds` of real
// measured work split into `num_tasks` row-range tasks round-robined over
// the modeled workers — the Cluster::RunJob accounting, applied to work that
// cannot be re-run as independent closures (encryption streams are
// sequential per destination column). Shared by the backends' Append
// implementations.
JobStats ModelIngestJob(const Cluster& cluster, double compute_seconds, size_t num_tasks);

// NoEnc: plaintext execution over the attached tables.
class PlainExecutorBackend : public Executor {
 public:
  explicit PlainExecutorBackend(const ExecutionContext* context) : context_(context) {}

  const char* name() const override { return "plain"; }
  void Prepare(AttachedTable& table) override;
  void Append(AttachedTable& table, const Table& new_rows,
              JobStats* stats = nullptr) override;
  ResultSet Execute(const Query& query, QueryStats* stats) override;

 private:
  const ExecutionContext* context_;
};

// Seabed: plan-driven encryption, translated server plans over the untrusted
// Server, client-side decryption. Tables live in immutable published
// versions: Execute pins the current version through an epoch guard and runs
// lock-free; Prepare/Append serialize on a writer mutex, build the next
// version off to the side, and publish it with one atomic swap.
class SeabedBackend : public Executor {
 public:
  explicit SeabedBackend(const ExecutionContext* context) : context_(context) {}

  const char* name() const override { return "seabed"; }
  void Prepare(AttachedTable& table) override;
  void Append(AttachedTable& table, const Table& new_rows,
              JobStats* stats = nullptr) override;
  ResultSet Execute(const Query& query, QueryStats* stats) override;
  ResultSet ExecutePrepared(const PreparedQuery& prepared, std::span<const Value> params,
                            QueryStats* stats) override;
  void SetPlanCache(std::shared_ptr<TranslatedPlanCache> cache) override {
    plan_cache_ = std::move(cache);
  }
  bool snapshot_isolated() const override { return true; }

  // The untrusted side, exposed for tests that inspect what the server sees.
  const Server& server() const { return server_; }

  // Summary-build count of the table's current version (see
  // VersionProbeIndex::builds; regression hook for the double-build race).
  uint64_t probe_index_builds(const std::string& table) const;

  // Reclamation domain, exposed for tests that assert retired versions drain.
  EpochDomain& epoch_domain() const { return epochs_; }

 private:
  struct TableState {
    // Owning reference to the published version; written under writer_mu_.
    std::shared_ptr<const TableVersion> owner;
    // Lock-free read point. Readers must hold an epochs_ guard across the
    // load and every dereference of the result.
    std::atomic<const TableVersion*> current{nullptr};
  };

  // Pinned pointer to `name`'s published version (caller holds a guard), or
  // null when the table was never prepared.
  const TableVersion* CurrentVersion(const std::string& name) const;
  TableState& StateFor(const std::string& name);

  // Post-translation execution shared by the ad-hoc and prepared paths:
  // probe round, server scan, client decryption, probe stats. `query` must
  // be fully bound; the caller holds the epoch guard that pins `fver`.
  ResultSet RunTranslated(const Query& query, const AttachedTable& fact,
                          const TableVersion* fver, const EncryptedDatabase* right_db,
                          const TranslatedQuery& tq, QueryStats* stats);

  const ExecutionContext* context_;
  Server server_;
  std::shared_ptr<TranslatedPlanCache> plan_cache_;
  // Shape-plan memo for the prepared path when no external cache was
  // installed: Prepare+bind must never retranslate per call even on a bare
  // kSeabed session. The ad-hoc path keeps ignoring it so uncached Execute
  // semantics (and its benchmarked translate cost) are unchanged.
  TranslatedPlanCache own_plan_cache_{256};

  mutable EpochDomain epochs_;
  std::mutex writer_mu_;  // serializes Prepare/Append (never held by readers)
  mutable std::mutex states_mu_;  // guards the states_ map shape only
  std::map<std::string, std::unique_ptr<TableState>> states_;
};

struct PaillierBackendOptions {
  int modulus_bits = 512;
  uint64_t seed = 1;
  // Construction-time randomness pool (see Paillier::MakeRandomnessPool).
  size_t randomness_pool_size = 64;
};

// CryptDB/Monomi baseline: Paillier measures, DET/ORE dimensions.
class PaillierBackend : public Executor {
 public:
  PaillierBackend(const ExecutionContext* context, const PaillierBackendOptions& options);

  const char* name() const override { return "paillier"; }
  void Prepare(AttachedTable& table) override;
  void Append(AttachedTable& table, const Table& new_rows,
              JobStats* stats = nullptr) override;
  ResultSet Execute(const Query& query, QueryStats* stats) override;

  const Paillier& paillier() const { return paillier_; }

 private:
  const ExecutionContext* context_;
  Rng rng_;
  Paillier paillier_;
  size_t randomness_pool_size_;
};

// Builds the backend for `kind`. `paillier_options` configures kPaillier;
// `shards` sets the fan-out width of kShardedSeabed; `cache` configures
// kCachingSeabed, whose inner backend is built by recursing on
// `cache.inner` (each knob is ignored by the kinds it does not concern).
std::unique_ptr<Executor> MakeExecutor(BackendKind kind, const ExecutionContext* context,
                                       const PaillierBackendOptions& paillier_options,
                                       size_t shards, const CacheOptions& cache);

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_EXECUTOR_H_
