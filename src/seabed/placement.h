// Pluggable shard placement for the scale-out backend.
//
// PR 2 welded row→shard assignment into ShardedSeabedBackend as a fixed
// multiplicative hash. This module lifts placement into a first-class policy
// so the coordinator can also place rows by VALUE: the ad-analytics workloads
// Seabed targets are time-ordered, and under `kKeyRange` each shard owns a
// contiguous range of a per-table clustering column (e.g. a timestamp). The
// owning ranges — per-shard `[lo, hi]` boundary metadata — are part of the
// table's immutable published snapshot (ShardedTableVersion), which is what
// makes coordinator-side routing safe against concurrent rebalancing: a query
// routes against the same version's boundaries its scan pins, never against
// live mutable state.
//
//   * kHash     — today's placement, bit-for-bit: multiplicative hash of the
//                 global row index at attach, whole batches by first global
//                 row on append. Not routable (a range predicate says nothing
//                 about which hash bucket matches).
//   * kKeyRange — contiguous clustering-key ranges. Attach splits the sorted
//                 key space into per-shard quantiles (equal keys never split
//                 across shards); appends place each row into the owning
//                 range, widening boundaries at the edges; rebalance moves
//                 boundary segments between neighbors. A clustering-key
//                 range predicate routes to the shards whose `[lo, hi]`
//                 intersects it — round-zero pruning before any fan-out.
#ifndef SEABED_SRC_SEABED_PLACEMENT_H_
#define SEABED_SRC_SEABED_PLACEMENT_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/engine/table.h"

namespace seabed {

enum class PlacementPolicy {
  kHash,      // multiplicative hash of the global row index (PR-2 behavior)
  kKeyRange,  // contiguous ranges of a per-table clustering column
};

const char* PlacementPolicyName(PlacementPolicy policy);

// SessionOptions::shards_placement — how the kShardedSeabed backend assigns
// rows to shards. kKeyRange applies per table: only tables with an entry in
// `clustering_columns` place by value (the named column must exist and be
// int64); every other table keeps hash placement, so mixed catalogs work.
struct ShardPlacementOptions {
  PlacementPolicy policy = PlacementPolicy::kHash;

  // table name → clustering column (int64, typically a timestamp). Consulted
  // only when `policy` is kKeyRange.
  std::map<std::string, std::string> clustering_columns;

  // The configured clustering column for `table`, or nullptr when `table`
  // should fall back to hash placement.
  const std::string* ClusteringColumnFor(const std::string& table) const;
};

// Per-shard clustering-key ownership of one published version: the closed
// interval [lo, hi] of clustering-column values the shard's partition holds.
// `occupied == false` marks a shard with no rows (it owns no range and is
// never routed to). Under kHash every entry stays unoccupied.
struct ShardKeyBoundary {
  bool occupied = false;
  int64_t lo = 0;
  int64_t hi = 0;
};

// A closed clustering-key interval [lo, hi] implied by a query's filters
// (planner.h's ExtractClusteringKeyRange). `empty` marks a contradictory
// conjunction (e.g. ts >= 10 AND ts < 5): no row anywhere can match.
struct ClusteringKeyRange {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  bool empty = false;
};

// One table's resolved placement: the policy plus (under kKeyRange) the
// clustering column. Stateless — boundary state lives in the table's
// published ShardedTableVersion, not here.
class Placement {
 public:
  // Hash placement for `table_name`, whatever `options` says about others.
  Placement(PlacementPolicy policy, std::string clustering_column, size_t shards);

  // Resolves `options` for one table: kKeyRange when the table has a
  // configured clustering column (which must exist in `plain` as int64 —
  // misconfiguration aborts), kHash otherwise.
  static Placement Resolve(const ShardPlacementOptions& options, const std::string& table_name,
                           const Table& plain, size_t shards);

  PlacementPolicy policy() const { return policy_; }
  const std::string& clustering_column() const { return column_; }

  // The PR-2 multiplicative hash, unchanged: placement must not correlate
  // with data order. Shared by attach partitioning and append locality.
  static size_t HashShardOfRow(size_t row, size_t shards) {
    return static_cast<size_t>((row * 0x9E3779B97F4A7C15ULL) >> 33) % shards;
  }

  // Attach-time partition of `table`'s rows. kHash assigns row i to
  // HashShardOfRow(i) in row order (bit-for-bit the PR-2 loop). kKeyRange
  // splits the key-sorted rows into near-equal contiguous quantile ranges,
  // shard index order == key order; a run of equal keys never splits across
  // shards, so owning ranges are disjoint. Rows within a shard keep their
  // original relative order (time-ordered input stays time-ordered per
  // shard — row-group pruning composes with placement).
  std::vector<std::vector<size_t>> PartitionRows(const Table& table) const;

  // Boundary metadata matching a PartitionRows assignment (all-unoccupied
  // under kHash).
  std::vector<ShardKeyBoundary> InitialBoundaries(const Table& table,
                                                  const std::vector<std::vector<size_t>>& assignment) const;

  // Append-time assignment of `batch`'s rows given the parent version's
  // boundaries. kHash: the whole batch lands on HashShardOfRow(prior_rows)
  // (append locality, unchanged). kKeyRange: each row goes to the shard
  // whose range holds its key; keys in a gap extend the right neighbor
  // downward, keys past either end extend the edge shard, and an entirely
  // unoccupied fleet collects on shard 0.
  std::vector<std::vector<size_t>> AssignAppend(const Table& batch, size_t prior_rows,
                                                const std::vector<ShardKeyBoundary>& bounds) const;

  // Widens `bound` to cover the clustering keys of `rows` in `table`.
  void WidenBoundary(const Table& table, const std::vector<size_t>& rows,
                     ShardKeyBoundary& bound) const;

  // Recomputes a shard's boundary from scratch over its remaining rows
  // (rebalance donors shrink; min/max of what stayed).
  ShardKeyBoundary BoundaryOfRows(const Table& table, const std::vector<size_t>& rows) const;

  // Clustering key of one row (requires kKeyRange).
  int64_t KeyAt(const Table& table, size_t row) const;

  // Round-zero routing: which shards may own a row with key in `range`. A
  // shard is active iff it is occupied and its [lo, hi] intersects `range`
  // (an empty `range` activates nothing). Pass the boundaries of the SAME
  // pinned version the scan will run on — never live state — so a query
  // racing a rebalance can't miss rows.
  static std::vector<bool> RouteShards(const std::vector<ShardKeyBoundary>& bounds,
                                       const ClusteringKeyRange& range);

 private:
  PlacementPolicy policy_;
  std::string column_;  // empty under kHash
  size_t shards_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_PLACEMENT_H_
