// seabed::Service — a concurrent query-serving front-end (ROADMAP: "serve
// concurrent traffic").
//
// Every backend built so far executes on the caller's thread; the paper's
// setting is the opposite — many analysts hammering one dashboard deployment.
// Service puts a real serving layer in front of one configured Session (any
// BackendKind, including caching/sharded stacks):
//
//   ServiceOptions opts;
//   opts.session.backend = BackendKind::kShardedSeabed;
//   Service service(opts);
//   service.Attach(table, schema, sample_queries);
//   std::future<ServiceResult> f = service.Submit(MustParseSql(sql));
//   ResultSet rows = f.get().rows;          // blocks until served
//   service.Shutdown(/*drain=*/true);
//
// Inside:
//   * a bounded MPMC submission queue (src/common/mpmc_queue.h) provides
//     admission control — Submit never blocks; past `max_queue_depth` the
//     future resolves immediately with kRejectedQueueFull backpressure;
//   * two priority lanes (kInteractive beats kBatch) so cheap dashboard
//     probes are not stuck behind bulk scans;
//   * per-query deadlines are honored twice: at DEQUEUE (a query whose
//     deadline passed while queued fails with kDeadlineExpired without
//     executing) and re-checked at DISPATCH — time spent between dequeue and
//     the backend call (group assembly, a slow sibling group pacing out
//     modeled latency on the same worker) must not smuggle an expired query
//     into execution;
//   * cross-query SHAPE BATCHING — consecutive queued queries with equal
//     Query::Fingerprint(kShape) pop as one group, translate once via the
//     service-owned TranslatedPlanCache, and execute as one
//     Session::ExecuteBatch. Identical queries (equal kExact fingerprints)
//     additionally coalesce onto a single execution. Prepared submissions
//     (SubmitPrepared) batch on the prepared handle's shape and serve as one
//     Session::ExecutePreparedBatch — the group binds per member but
//     translates at most once, ever;
//   * appends ride the SAME queue as barrier jobs. On snapshot-isolated
//     backends (Executor::snapshot_isolated — kSeabed, kShardedSeabed and
//     caching stacks over them) the barrier is ORDERING ONLY: the append
//     runs concurrently with in-flight query groups (each pinned to its own
//     published table version) and merely holds back work queued after it
//     until the new version is published — appends never block queries.
//     Legacy backends keep the quiescing barrier: the queue waits out
//     in-flight groups, runs the append exclusively, then thaws. Either
//     way every query observes either the pre- or post-append table, never
//     a torn state, and same-lane queries submitted after the append are
//     guaranteed the post-append table. The priority lanes may reorder
//     dispatch across lanes, so a kBatch query still queued when an append
//     (lane 0) dispatches observes the post-append table.
//
// Per-query ServiceStats stack queue_wait_seconds, admission outcome, lane,
// and batch size on top of the usual QueryStats.
#ifndef SEABED_SRC_SEABED_SERVICE_H_
#define SEABED_SRC_SEABED_SERVICE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mpmc_queue.h"
#include "src/seabed/session.h"

namespace seabed {

// Scheduler lane. Lower values dequeue first.
enum class ServiceLane { kInteractive = 0, kBatch = 1 };

enum class AdmissionOutcome {
  kAdmitted,            // executed (or coalesced onto an identical execution)
  kRejectedQueueFull,   // backpressure: queue was at max_queue_depth
  kRejectedShutdown,    // submitted after Shutdown, or dropped by a no-drain one
  kDeadlineExpired,     // deadline passed while queued; never executed
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

struct SubmitOptions {
  ServiceLane lane = ServiceLane::kInteractive;
  // Absolute deadline; checked when the query is dequeued (a query the
  // scheduler cannot reach in time fails fast instead of wasting a worker).
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

// Serving-layer stats layered on top of the per-query QueryStats.
struct ServiceStats {
  AdmissionOutcome admission = AdmissionOutcome::kAdmitted;
  ServiceLane lane = ServiceLane::kInteractive;
  double queue_wait_seconds = 0;  // enqueue -> dequeue
  size_t batch_size = 0;          // queries served by this query's shape group
  bool coalesced = false;         // answered by an identical query's execution
  uint64_t dispatch_seq = 0;      // global dispatch order of the group
  // Wall-clock span of this job's backend work (query group execution incl.
  // modeled-latency pacing, or the append itself). Tests use these to prove
  // an append's span OVERLAPS concurrently-executing query spans — the
  // never-blocks contract is observable, not just asserted. Zero (epoch)
  // when the job never executed.
  std::chrono::steady_clock::time_point exec_begin{};
  std::chrono::steady_clock::time_point exec_end{};
  QueryStats query;               // zeroed when the query never executed
};

struct ServiceResult {
  bool ok = false;
  std::string error;  // set when !ok (rejected / expired / dropped)
  ResultSet rows;
  ServiceStats stats;
};

// Monotonic service-lifetime counters (snapshot via Service::counters()).
struct ServiceCounters {
  uint64_t submitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t expired = 0;
  uint64_t executed = 0;   // queries that ran (coalesced ones count)
  uint64_t coalesced = 0;  // duplicates answered without their own execution
  uint64_t groups = 0;     // shape groups dispatched
  uint64_t appends = 0;    // barrier jobs executed
  uint64_t max_group = 0;  // largest shape group dispatched
};

struct ServiceOptions {
  // The session stack the service owns and serves (backend, shards, cache,
  // probe — everything Session supports).
  SessionOptions session;

  // Worker threads pumping the queue. More workers than cores is deliberate:
  // against the modeled cluster a worker spends most of a query parked in
  // simulated server latency, so oversubscription is what overlaps requests.
  size_t num_workers = 8;

  // Admission control: TryPush fails past this many queued jobs.
  size_t max_queue_depth = 1024;

  // Largest shape group one worker pops (and the ExecuteBatch width cap).
  size_t max_batch = 16;

  // Answer byte-identical queries (equal kExact fingerprints) inside one
  // group with a single execution.
  bool coalesce_identical = true;

  // Sleep out the MODELED server + network latency of each dispatched group
  // (one modeled round trip per group). Off by default — unit tests want
  // wall-clock-free behavior; the closed-loop bench turns it on so measured
  // throughput reflects the simulated cluster instead of the host's cores.
  bool pace_modeled_latency = false;

  // Spawn workers in the constructor. Tests that probe pure queue behavior
  // (admission, drop-on-shutdown) set false and never Start().
  bool autostart = true;

  // Forces the legacy quiescing append barrier (and the exclusive serve
  // lock) even on snapshot-isolated backends. The appends-block-queries
  // baseline for A/B benches (bench_fig15_snapshot); leave off in real use.
  bool force_quiesce_appends = false;

  // Test-only: runs on the worker after a query group is dequeued, before
  // the dispatch-time deadline re-check and execution. Lets tests widen the
  // dequeue->dispatch window deterministically.
  std::function<void()> pre_dispatch_hook;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  ~Service();  // Shutdown(/*drain=*/true)

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // --- setup -----------------------------------------------------------------
  // Attach tables before opening the floodgates. Safe while workers run (the
  // serve lock excludes in-flight queries) but NOT barrier-ordered against
  // queued work — unlike Append, which is.
  void Attach(std::shared_ptr<Table> table, const PlainSchema& schema,
              const std::vector<Query>& sample_queries);
  void AttachPlanned(std::shared_ptr<Table> table, const PlainSchema& schema,
                     EncryptionPlan plan);

  // --- serving ---------------------------------------------------------------
  // Never blocks: rejections resolve the future immediately.
  std::future<ServiceResult> Submit(Query query, SubmitOptions options = {});
  std::vector<std::future<ServiceResult>> SubmitBatch(std::vector<Query> queries,
                                                      SubmitOptions options = {});
  // Prepares a placeholder shape against the owned session (see
  // Session::Prepare). Call after Attach; the handle stays valid for the
  // service's lifetime and is safe to Submit from many threads.
  PreparedQuery Prepare(const Query& shape);
  // Submits one execution of a prepared shape with `params` bound to its
  // slots. Prepared submissions batch on the prepared shape (all queued
  // executions of one handle's shape pop as a single group served by
  // Session::ExecutePreparedBatch) and never mix into ad-hoc shape groups;
  // identical parameter vectors coalesce exactly like identical ad-hoc
  // queries.
  std::future<ServiceResult> SubmitPrepared(const PreparedQuery& prepared,
                                            std::vector<Value> params,
                                            SubmitOptions options = {});
  // Queues an exclusive barrier job appending `rows` to `table`. Completes
  // after everything dequeued before it and before everything queued after.
  std::future<ServiceResult> SubmitAppend(std::string table,
                                          std::shared_ptr<const Table> rows);

  // Spawns the worker pool (idempotent; no-op after the autostart ctor).
  void Start();
  // Stops admissions, then either serves the backlog (`drain`) or fails it
  // with kRejectedShutdown. Idempotent; joins the workers either way.
  void Shutdown(bool drain = true);

  // --- observability ---------------------------------------------------------
  ServiceCounters counters() const;
  const TranslatedPlanCache& plan_cache() const { return *plan_cache_; }
  size_t queue_depth() const { return queue_.size(); }
  // The owned session. Execute/Append through it directly only when no
  // workers are running — traffic belongs in Submit/SubmitAppend.
  Session& session() { return session_; }

 private:
  struct Job {
    enum class Kind { kQuery, kAppend };
    Kind kind = Kind::kQuery;
    Query query;
    // Prepared submissions carry the handle and the bound values instead of a
    // full Query; `prepared.valid()` distinguishes the two flavors.
    PreparedQuery prepared;
    std::vector<Value> params;
    // Grouping key, precomputed at submit. Ad-hoc: "q:" + Fingerprint(kShape).
    // Prepared: "p:" + the handle's plan_key_base — the kExact shape
    // fingerprint, NOT the kShape one, because two shapes differing only in a
    // FIXED literal share a kShape fingerprint but translate to different
    // plans. The prefixes keep prepared and ad-hoc groups from ever mixing.
    std::string shape_key;
    std::string exact_key;  // bound Fingerprint(kExact), for coalescing
    std::string append_table;
    std::shared_ptr<const Table> append_rows;
    ServiceLane lane = ServiceLane::kInteractive;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<ServiceResult> promise;
  };

  // Admission tail shared by every Submit flavor: push or reject-with-cause.
  std::future<ServiceResult> Enqueue(Job job, size_t lane);
  void WorkerLoop();
  void RunAppend(Job job);
  void RunGroup(std::vector<Job> jobs);
  static void Reject(Job&& job, AdmissionOutcome outcome, const std::string& error);
  void BumpMaxGroup(uint64_t group_size);

  ServiceOptions options_;
  Session session_;
  // Shared (not owned solely by the service) so SetPlanCache's installee can
  // outlive a torn-down service without dangling.
  std::shared_ptr<TranslatedPlanCache> plan_cache_;
  // True when appends must exclude queries: the backend is not snapshot-
  // isolated (or force_quiesce_appends is set). Decides both the queue's
  // barrier mode and RunAppend's serve-lock mode. Initialized after
  // session_, before queue_ — declaration order matters.
  const bool quiesce_appends_;
  MpmcQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> dispatch_seq_{0};

  // Excludes setup (Attach, exclusive) from serving (query groups, shared).
  // Appends on snapshot-isolated backends hold it SHARED — they overlap
  // query groups by design and only need to exclude a concurrent Attach.
  // With quiesce_appends_ the queue barrier has already drained in-flight
  // groups, so the append's exclusive acquisition cannot deadlock.
  std::shared_mutex serve_mu_;

  struct Counters {
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> rejected_queue_full{0};
    std::atomic<uint64_t> rejected_shutdown{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> coalesced{0};
    std::atomic<uint64_t> groups{0};
    std::atomic<uint64_t> appends{0};
    std::atomic<uint64_t> max_group{0};
  };
  Counters counters_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SERVICE_H_
