#include "src/seabed/server.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/encoding/bitmap.h"
#include "src/encoding/id_list_codec.h"
#include "src/seabed/scan_kernels.h"

namespace seabed {
namespace {

// Resolved reference to a column in either the fact or the joined table.
struct ColRef {
  const Column* col = nullptr;
  const AsheColumn* ashe = nullptr;
  const DetColumn* det = nullptr;
  const OreColumn* ore = nullptr;
  const Int64Column* i64 = nullptr;
  const StringColumn* str = nullptr;
  bool on_right = false;
};

ColRef Resolve(const Table& fact, const Table* right, const std::string& name, bool on_right) {
  const Table& t = on_right ? *right : fact;
  ColRef ref;
  ref.on_right = on_right;
  ref.col = t.GetColumn(name).get();
  switch (ref.col->type()) {
    case ColumnType::kAshe:
      ref.ashe = static_cast<const AsheColumn*>(ref.col);
      break;
    case ColumnType::kDet:
      ref.det = static_cast<const DetColumn*>(ref.col);
      break;
    case ColumnType::kOre:
      ref.ore = static_cast<const OreColumn*>(ref.col);
      break;
    case ColumnType::kInt64:
      ref.i64 = static_cast<const Int64Column*>(ref.col);
      break;
    case ColumnType::kString:
      ref.str = static_cast<const StringColumn*>(ref.col);
      break;
    default:
      SEABED_CHECK_MSG(false, "unsupported server column type for " << name);
  }
  return ref;
}

// Running aggregate state for one group within one partition.
struct PartialAgg {
  uint64_t value = 0;
  IdSet ids;
  uint64_t count = 0;
  bool minmax_valid = false;
  OreCiphertext minmax_ore;
  uint64_t minmax_cipher = 0;
  uint64_t minmax_id = 0;
};

struct PartialGroup {
  std::vector<Value> key_parts;
  uint64_t suffix = 0;
  std::vector<PartialAgg> aggs;
  std::vector<Bytes> blobs;  // one per ASHE aggregate after worker encode
};

// Rows per kernel row group: the unit the vectorized scan fills one
// selection bitmap for. 4096 rows = 64 bitmap words; even the widest
// per-group column slice (ORE, 16 B/row = 64 KiB) stays cache-resident.
constexpr size_t kKernelRowGroup = 4096;

}  // namespace

EncryptedResponse Server::Execute(const ServerPlan& plan, const Cluster& cluster,
                                  const Table* fact_table, const Table* right_override,
                                  const std::vector<RowRange>* scan_ranges) const {
  SEABED_CHECK_MSG(fact_table != nullptr, "server has no table named " << plan.table);
  const Table& fact = *fact_table;
  const Table* right = nullptr;

  // Broadcast hash join on DET tokens (built once at the driver, like a Spark
  // broadcast join). Multi-map: join keys need not be unique.
  std::unordered_multimap<uint64_t, size_t> join_index;
  const DetColumn* join_left = nullptr;
  Stopwatch driver_sw;
  if (plan.join.has_value()) {
    SEABED_CHECK_MSG(right_override != nullptr,
                     "join plan requires the caller's snapshot to supply " << plan.join->right_table);
    right = right_override;
    const ColRef right_key = Resolve(fact, right, plan.join->right_column, true);
    SEABED_CHECK_MSG(right_key.det != nullptr, "join keys must be DET encrypted");
    for (size_t row = 0; row < right->NumRows(); ++row) {
      join_index.emplace(right_key.det->Get(row), row);
    }
    const ColRef left_key = Resolve(fact, right, plan.join->left_column, false);
    SEABED_CHECK_MSG(left_key.det != nullptr, "join keys must be DET encrypted");
    join_left = left_key.det;
  }
  double driver_seconds = driver_sw.ElapsedSeconds();

  // Resolve predicate / aggregate / group columns once.
  std::vector<ColRef> pred_cols;
  pred_cols.reserve(plan.predicates.size());
  for (const auto& p : plan.predicates) {
    pred_cols.push_back(Resolve(fact, right, p.column, p.on_right));
  }
  struct AggCols {
    ColRef main;
    ColRef companion;  // ASHE value column for min/max
  };
  std::vector<AggCols> agg_cols;
  agg_cols.reserve(plan.aggregates.size());
  for (const auto& a : plan.aggregates) {
    AggCols ac;
    if (a.kind != ServerAggregate::Kind::kRowCount) {
      ac.main = Resolve(fact, right, a.column, a.on_right);
    }
    if (a.kind == ServerAggregate::Kind::kOreMin || a.kind == ServerAggregate::Kind::kOreMax) {
      ac.companion = Resolve(fact, right, a.value_column, a.on_right);
    }
    agg_cols.push_back(ac);
  }
  std::vector<ColRef> group_cols;
  group_cols.reserve(plan.group_by.size());
  for (const auto& g : plan.group_by) {
    group_cols.push_back(Resolve(fact, right, g.column, g.on_right));
  }

  // The scan's unit of parallel work: one task per partition for a full
  // scan, or the probe's surviving row groups re-balanced across the workers
  // for a pruned round two.
  std::vector<std::vector<RowRange>> tasks;
  if (scan_ranges == nullptr) {
    for (const RowRange& part : fact.Partitions(cluster.num_workers())) {
      tasks.push_back({part});
    }
  } else {
    tasks = PartitionRanges(*scan_ranges, cluster.num_workers());
  }
  std::vector<std::unordered_map<std::string, PartialGroup>> partials(tasks.size());

  // Per-task scan state, padded to cache-line granularity: the touched
  // counter is bumped once per surviving row by concurrent workers, and
  // adjacent uint64_t slots in a plain vector false-share on the hottest
  // counter (the same treatment src/common/epoch.h applies to its slots).
  struct alignas(64) TaskScanState {
    uint64_t touched = 0;
  };
  std::vector<TaskScanState> task_state(tasks.size());

  // Kernel-scan classification (vectorized mode, non-join plans): DET and
  // plain-int predicates run first (whole 64-row words per compare), then
  // ORE (per-row SIMD that skips dead words), and plain-string predicates
  // run scalar over the surviving bits only. Reordering is safe — the
  // predicates AND. Joined scans keep the row-at-a-time path: the join
  // fan-out is inherently per-row.
  const bool use_kernels =
      ServerScanMode() == ScanMode::kVectorized && !plan.join.has_value();
  std::vector<size_t> kernel_preds;    // det + int, then ore, in plan order
  std::vector<size_t> residual_preds;  // plain strings, scalar over survivors
  std::vector<uint32_t> residual_codes(plan.predicates.size(), UINT32_MAX);
  if (use_kernels) {
    for (size_t i = 0; i < plan.predicates.size(); ++i) {
      const ServerPredicate::Kind kind = plan.predicates[i].kind;
      if (kind == ServerPredicate::Kind::kDetEq || kind == ServerPredicate::Kind::kPlainInt) {
        kernel_preds.push_back(i);
      }
    }
    for (size_t i = 0; i < plan.predicates.size(); ++i) {
      if (plan.predicates[i].kind == ServerPredicate::Kind::kOreCmp) {
        kernel_preds.push_back(i);
      }
    }
    for (size_t i = 0; i < plan.predicates.size(); ++i) {
      if (plan.predicates[i].kind == ServerPredicate::Kind::kPlainString) {
        residual_preds.push_back(i);
        // Dictionary codes compare like the strings they encode; an absent
        // operand (UINT32_MAX, never a valid code) matches no row.
        residual_codes[i] = pred_cols[i].str->Lookup(plan.predicates[i].str_operand);
      }
    }
  }

  const JobStats job = cluster.RunJob(tasks.size(), [&](size_t p) {
    auto& local = partials[p];

    // Aggregation for one surviving row: group-key building + accumulation.
    // Shared by both scan paths — the kernel path drives it from the set
    // bits of the final bitmap, the row path after the predicate chain.
    auto accumulate = [&](size_t row, size_t right_row) {
      // Group key. Every part is length-prefixed (AppendGroupKeyPart): raw
      // '\x1f'-separated concatenation let distinct keys like ("a\x1f", "b")
      // and ("a", "\x1fb") collide and silently merge their aggregates.
      std::string key;
      std::vector<Value> key_parts;
      key_parts.reserve(group_cols.size());
      for (const ColRef& ref : group_cols) {
        const size_t r = ref.on_right ? right_row : row;
        if (ref.det != nullptr) {
          const uint64_t token = ref.det->Get(r);
          AppendGroupKeyPart(key, token);
          key_parts.emplace_back(static_cast<int64_t>(token));
        } else if (ref.i64 != nullptr) {
          const int64_t v = ref.i64->Get(r);
          AppendGroupKeyPart(key, static_cast<uint64_t>(v));
          key_parts.emplace_back(v);
        } else if (ref.str != nullptr) {
          AppendGroupKeyPart(key, ref.str->Get(r));
          key_parts.emplace_back(ref.str->Get(r));
        } else {
          SEABED_CHECK_MSG(false, "group-by on an unsupported encrypted column");
        }
      }
      uint64_t suffix = 0;
      if (plan.inflation > 1) {
        // The artificial group id of Section 4.5. Hashed rather than
        // row % inflation so it cannot correlate with data-derived groups.
        suffix = (row * 0x9e3779b97f4a7c15ULL >> 33) % plan.inflation;
        AppendGroupKeyPart(key, suffix);
      }

      PartialGroup& group = local[key];
      if (group.aggs.empty()) {
        group.aggs.resize(plan.aggregates.size());
        group.key_parts = std::move(key_parts);
        group.suffix = suffix;
      }
      for (size_t a = 0; a < plan.aggregates.size(); ++a) {
        const ServerAggregate& sa = plan.aggregates[a];
        const AggCols& ac = agg_cols[a];
        PartialAgg& pa = group.aggs[a];
        const size_t r = sa.on_right ? right_row : row;
        switch (sa.kind) {
          case ServerAggregate::Kind::kAsheSum: {
            pa.value += ac.main.ashe->Get(r);
            pa.ids.Add(ac.main.ashe->IdOfRow(r));
            break;
          }
          case ServerAggregate::Kind::kRowCount:
            ++pa.count;
            break;
          case ServerAggregate::Kind::kOreMin:
          case ServerAggregate::Kind::kOreMax: {
            const OreCiphertext& ct = ac.main.ore->Get(r);
            bool better = !pa.minmax_valid;
            if (!better) {
              const int order = Ore::Compare(ct, pa.minmax_ore).order;
              better = sa.kind == ServerAggregate::Kind::kOreMin ? order < 0 : order > 0;
            }
            if (better) {
              pa.minmax_valid = true;
              pa.minmax_ore = ct;
              pa.minmax_cipher = ac.companion.ashe->Get(r);
              pa.minmax_id = ac.companion.ashe->IdOfRow(r);
            }
            break;
          }
        }
      }
    };

    // Row-at-a-time evaluation: the join path and the kRowAtATime fallback.
    auto process = [&](size_t row, size_t right_row) {
      for (size_t i = 0; i < plan.predicates.size(); ++i) {
        const ServerPredicate& sp = plan.predicates[i];
        const ColRef& ref = pred_cols[i];
        const size_t r = ref.on_right ? right_row : row;
        bool pass = true;
        switch (sp.kind) {
          case ServerPredicate::Kind::kPlainInt: {
            const int64_t v = ref.i64->Get(r);
            pass = CmpOpMatchesOrder(sp.op, v < sp.int_operand ? -1 : (v > sp.int_operand ? 1 : 0));
            break;
          }
          case ServerPredicate::Kind::kPlainString: {
            const bool eq = ref.str->Get(r) == sp.str_operand;
            pass = sp.op == CmpOp::kEq ? eq : !eq;
            break;
          }
          case ServerPredicate::Kind::kDetEq: {
            const bool eq = ref.det->Get(r) == sp.det_token;
            pass = sp.op == CmpOp::kEq ? eq : !eq;
            break;
          }
          case ServerPredicate::Kind::kOreCmp: {
            const OreComparison cmp = Ore::Compare(ref.ore->Get(r), sp.ore_operand);
            pass = CmpOpMatchesOrder(sp.op, cmp.order);
            break;
          }
        }
        if (!pass) {
          return;
        }
      }
      ++task_state[p].touched;
      accumulate(row, right_row);
    };

    if (use_kernels) {
      // Columnar path: per kernel row group, fill one selection bitmap by
      // ANDing each predicate's verdicts, then aggregate the set bits.
      SelectionBitmap sel;
      for (const RowRange& range : tasks[p]) {
        for (size_t begin = range.begin; begin < range.end; begin += kKernelRowGroup) {
          const size_t n = std::min<size_t>(kKernelRowGroup, range.end - begin);
          sel.Reset(n, /*all_set=*/true);
          bool dead = false;
          for (const size_t i : kernel_preds) {
            const ServerPredicate& sp = plan.predicates[i];
            const ColRef& ref = pred_cols[i];
            switch (sp.kind) {
              case ServerPredicate::Kind::kDetEq:
                FilterDetEq(ref.det->tokens().data() + begin, n, sp.op != CmpOp::kEq,
                            sp.det_token, sel);
                break;
              case ServerPredicate::Kind::kPlainInt:
                FilterInt64Cmp(ref.i64->values().data() + begin, n, sp.op, sp.int_operand, sel);
                break;
              case ServerPredicate::Kind::kOreCmp:
                FilterOreCmp(ref.ore->cells().data() + begin, n, sp.op, sp.ore_operand, sel);
                break;
              default:
                break;
            }
            if (!sel.Any()) {
              dead = true;
              break;
            }
          }
          if (dead) {
            continue;
          }
          for (const size_t i : residual_preds) {
            const ServerPredicate& sp = plan.predicates[i];
            const StringColumn* str = pred_cols[i].str;
            const uint32_t code = residual_codes[i];
            const bool want_eq = sp.op == CmpOp::kEq;
            sel.Retain(
                [&](size_t bit) { return (str->GetCode(begin + bit) == code) == want_eq; });
          }
          const size_t hits = sel.Count();
          if (hits == 0) {
            continue;
          }
          task_state[p].touched += hits;
          sel.ForEachSet([&](size_t bit) { accumulate(begin + bit, 0); });
        }
      }
    } else {
      for (const RowRange& range : tasks[p]) {
        for (size_t row = range.begin; row < range.end; ++row) {
          if (join_left != nullptr) {
            const auto [lo, hi] = join_index.equal_range(join_left->Get(row));
            for (auto it = lo; it != hi; ++it) {
              process(row, it->second);
            }
          } else {
            process(row, 0);
          }
        }
      }
    }

    // Worker-side ID-list compression (Section 4.5's winning configuration):
    // encode inside the task so the cost lands on the worker's clock.
    if (plan.worker_side_compression) {
      for (auto& [key, group] : local) {
        group.blobs.resize(plan.aggregates.size());
        for (size_t a = 0; a < plan.aggregates.size(); ++a) {
          if (plan.aggregates[a].kind == ServerAggregate::Kind::kAsheSum) {
            group.blobs[a] = IdListEncode(group.aggs[a].ids, plan.idlist);
            group.aggs[a].ids = IdSet();  // shipped as a blob from here on
          }
        }
      }
    }
  });

  // Shuffle accounting (group-by jobs only): every partition ships its partial
  // groups to reduce tasks; with fewer groups than workers, few reducers
  // drain all the data (the bottleneck group inflation removes).
  EncryptedResponse response;
  size_t distinct_groups = 0;
  if (!plan.group_by.empty() || plan.inflation > 1) {
    std::unordered_map<std::string, bool> seen;
    size_t bytes = 0;
    for (const auto& local : partials) {
      for (const auto& [key, group] : local) {
        seen.emplace(key, true);
        bytes += key.size();
        for (size_t a = 0; a < plan.aggregates.size(); ++a) {
          bytes += 8;
          if (plan.worker_side_compression) {
            bytes += group.blobs[a].size();
          } else {
            bytes += group.aggs[a].ids.NumRuns() * 10;  // raw run estimate
          }
        }
      }
    }
    distinct_groups = seen.size();
    response.shuffle_bytes = bytes;
    response.shuffle_seconds = cluster.ShuffleSeconds(bytes, distinct_groups);
  }

  // Driver-side merge (and compression, when configured).
  driver_sw.Restart();

  // Collect per-partition blob lists before the merge moves groups away: when
  // worker-compressed, every partition contributes one blob per ASHE
  // aggregate per group.
  std::map<std::string, std::vector<std::vector<Bytes>>> blob_lists;
  if (plan.worker_side_compression) {
    for (const auto& local : partials) {
      for (const auto& [key, group] : local) {
        auto& lists = blob_lists[key];
        if (lists.empty()) {
          lists.resize(plan.aggregates.size());
        }
        for (size_t a = 0; a < plan.aggregates.size(); ++a) {
          if (!group.blobs.empty() && !group.blobs[a].empty()) {
            lists[a].push_back(group.blobs[a]);
          }
        }
      }
    }
  }

  std::map<std::string, PartialGroup> merged;
  for (auto& local : partials) {
    for (auto& [key, group] : local) {
      auto [it, inserted] = merged.try_emplace(key, std::move(group));
      if (inserted) {
        continue;
      }
      PartialGroup& dst = it->second;
      for (size_t a = 0; a < plan.aggregates.size(); ++a) {
        PartialAgg& pa = dst.aggs[a];
        PartialAgg& src = group.aggs[a];
        const ServerAggregate& sa = plan.aggregates[a];
        switch (sa.kind) {
          case ServerAggregate::Kind::kAsheSum:
            pa.value += src.value;
            if (!plan.worker_side_compression) {
              pa.ids.UnionWith(src.ids);
            }
            break;
          case ServerAggregate::Kind::kRowCount:
            pa.count += src.count;
            break;
          case ServerAggregate::Kind::kOreMin:
          case ServerAggregate::Kind::kOreMax: {
            if (src.minmax_valid) {
              bool better = !pa.minmax_valid;
              if (!better) {
                const int order = Ore::Compare(src.minmax_ore, pa.minmax_ore).order;
                better = sa.kind == ServerAggregate::Kind::kOreMin ? order < 0 : order > 0;
              }
              if (better) {
                pa.minmax_valid = src.minmax_valid;
                pa.minmax_ore = src.minmax_ore;
                pa.minmax_cipher = src.minmax_cipher;
                pa.minmax_id = src.minmax_id;
              }
            }
            break;
          }
        }
      }
    }
  }

  for (auto& [key, group] : merged) {
    ServerGroup out;
    out.key = key;
    out.key_parts = group.key_parts;
    out.inflation_suffix = group.suffix;
    out.aggs.resize(plan.aggregates.size());
    for (size_t a = 0; a < plan.aggregates.size(); ++a) {
      ServerAggResult& res = out.aggs[a];
      const PartialAgg& pa = group.aggs[a];
      const ServerAggregate& sa = plan.aggregates[a];
      switch (sa.kind) {
        case ServerAggregate::Kind::kAsheSum:
          res.ashe_value = pa.value;
          if (plan.worker_side_compression) {
            res.id_blobs = std::move(blob_lists[key][a]);
          } else {
            res.id_blobs.push_back(IdListEncode(pa.ids, plan.idlist));
          }
          break;
        case ServerAggregate::Kind::kRowCount:
          res.row_count = pa.count;
          break;
        case ServerAggregate::Kind::kOreMin:
        case ServerAggregate::Kind::kOreMax:
          res.minmax_valid = pa.minmax_valid;
          res.minmax_ore = pa.minmax_ore;
          res.minmax_cipher = pa.minmax_cipher;
          res.minmax_id = pa.minmax_id;
          break;
      }
    }
    response.groups.push_back(std::move(out));
  }
  driver_seconds += driver_sw.ElapsedSeconds();

  // Response size accounting.
  size_t bytes = 0;
  for (const ServerGroup& g : response.groups) {
    bytes += g.key.size();
    for (const ServerAggResult& agg : g.aggs) {
      bytes += 8;
      for (const Bytes& blob : agg.id_blobs) {
        bytes += blob.size();
      }
      if (agg.minmax_valid) {
        bytes += 16;  // cipher + id
      }
    }
  }
  response.response_bytes = bytes;
  response.job = job;
  response.driver_seconds = driver_seconds;
  for (const TaskScanState& t : task_state) {
    response.rows_touched += t.touched;
  }
  return response;
}

}  // namespace seabed
