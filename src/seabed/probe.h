// Shared probe-and-prune machinery for two-round query execution.
//
// PR 2's sharded backend introduced a probe round: spend one cheap round
// trip so round two touches less data. This module generalizes that idea so
// single-server backends profit too (the classic message-rounds vs. work
// tradeoff — an extra round is a win whenever selectivity is low):
//
//   * CountProbePlan turns any translated ServerPlan into the sharded
//     backend's round-one plan (same predicates/join, one row count, no
//     grouping) — round two then re-issues only to shards that matched;
//   * ProbeSection (derived once at translation time, cached inside the
//     TranslatedQuery by the plan cache) is the subset of fact-side server
//     predicates a row-group summary can evaluate;
//   * RowGroupIndex holds coarse per-row-group summaries of an encrypted
//     table — DET token sets, ORE/plain min-max ranges, plain string sets —
//     and prunes the row groups that cannot contain a matching row. The
//     server can maintain it without any key material: DET tokens compare by
//     equality and ORE ciphertexts by Ore::Compare, which is exactly the
//     leakage those schemes already grant the server.
//
// Pruning is conservative: a summary may keep a group that holds no match
// (overflowed token set, range gap) but never drops one that does, so a
// pruned scan returns byte-identical rows to a full scan.
#ifndef SEABED_SRC_SEABED_PROBE_H_
#define SEABED_SRC_SEABED_PROBE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/engine/table.h"
#include "src/seabed/translator.h"

namespace seabed {

// When a backend runs the round-one probe.
enum class ProbeMode {
  kOff,     // never probe (PR-2 behavior; `needs_two_round_trips` still
            // triggers the sharded backend's shard-level probe)
  kAuto,    // probe when the planner's selectivity estimate predicts a win
  kForced,  // probe every query with prunable predicates (test/debug mode)
};

const char* ProbeModeName(ProbeMode mode);

struct ProbeOptions {
  ProbeMode mode = ProbeMode::kOff;

  // Rows per summary group. Smaller groups prune more precisely but cost
  // more round-one work (the probe scans one summary per group).
  size_t row_group_size = 1024;

  // kAuto probes only when the estimated filter selectivity is at or below
  // this fraction — at high selectivity round two scans almost everything
  // anyway and the probe round is pure overhead.
  double auto_selectivity_threshold = 0.25;
};

// The sharded backend's round-one plan: same table, predicates and join, but
// a single row count and no grouping — just enough for the coordinator to
// learn which shards hold matching rows.
ServerPlan CountProbePlan(const ServerPlan& plan);

// Derives the probe section of a translated plan: every fact-side server
// predicate (all four kinds summarize; joined-table predicates cannot prune
// fact row groups and are dropped). Called once by the Translator so cached
// plans carry their probe section.
ProbeSection DeriveProbeSection(const ServerPlan& plan);

// Coarse summary of one contiguous row group of an encrypted (or plain)
// table. Only prunable column kinds are summarized; ASHE/Paillier cells are
// opaque and skipped.
struct RowGroupSummary {
  RowRange rows;

  // Distinct-value sets give up beyond this many values: a group that
  // contains "everything" cannot be pruned anyway, and unbounded sets would
  // make the index as large as the column.
  static constexpr size_t kMaxDistinct = 64;

  struct TokenSet {
    std::vector<uint64_t> tokens;  // sorted; meaningless once overflowed
    bool overflowed = false;
  };
  struct StringSet {
    std::vector<std::string> values;  // sorted; meaningless once overflowed
    bool overflowed = false;
  };
  struct OreRange {
    OreCiphertext min, max;
  };
  struct IntRange {
    int64_t min = 0, max = 0;
  };

  std::map<std::string, TokenSet> det;      // DET column -> distinct tokens
  std::map<std::string, OreRange> ore;      // ORE column -> ciphertext range
  std::map<std::string, IntRange> ints;     // plain int column -> value range
  std::map<std::string, StringSet> strings; // plain string column -> values
};

// Summarizes rows [range.begin, range.end) of `table`.
RowGroupSummary SummarizeRowGroup(const Table& table, RowRange range);

// Conservative group-level predicate evaluation: false only when no row of
// the group can satisfy every predicate.
bool GroupMayMatch(const RowGroupSummary& group,
                   const std::vector<ServerPredicate>& predicates);

// Per-table row-group summary index. Built lazily at the first probe and
// lazily extended when the underlying table has grown (appends land in the
// encrypted table behind the server's back, so every probe re-checks the row
// count and re-summarizes the trailing partial group — the stale-summary
// hazard the probe tests trap). Not internally synchronized; the Server
// guards it with its probe mutex.
class RowGroupIndex {
 public:
  explicit RowGroupIndex(size_t group_size = 1024);

  size_t group_size() const { return group_size_; }
  size_t num_groups() const { return groups_.size(); }
  size_t rows_summarized() const { return rows_summarized_; }

  // Brings the summaries up to date with `table`'s current row count.
  void Refresh(const Table& table);

  struct PruneResult {
    // Surviving row ranges in row order, adjacent groups coalesced.
    std::vector<RowRange> surviving;
    size_t total_groups = 0;
    size_t pruned_groups = 0;
  };
  PruneResult Prune(const ProbeSection& probe) const;

 private:
  size_t group_size_;
  size_t rows_summarized_ = 0;
  std::vector<RowGroupSummary> groups_;
};

// Splits `ranges` (disjoint, ordered) into at most `max_tasks` lists of
// near-equal total row count, splitting large ranges at task boundaries so a
// pruned scan still parallelizes across the cluster's workers. Intra-range
// split points are rounded up to 64-row multiples so the scan kernels'
// selection-bitmap words never straddle a task boundary.
std::vector<std::vector<RowRange>> PartitionRanges(const std::vector<RowRange>& ranges,
                                                   size_t max_tasks);

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_PROBE_H_
