// The Seabed decryption module (paper Section 4.6).
//
// Takes the server's encrypted response, decompresses the ID lists, runs the
// ASHE PRF over the identifier runs to remove the pads, undoes group-by
// inflation, renders DET tokens back to plaintext values, and applies the
// client-side post-processing the translator scheduled (AVG division,
// variance/stddev formulas, MIN/MAX cell decryption).
//
// All client work is wall-clock measured and reported in
// QueryStats::client_seconds; the modeled server→client transfer goes to
// QueryStats::network_seconds, and the Section 6.6 "AES operations required
// for decryption" statistic to QueryStats::prf_calls. Stats are per-call, so
// one Client may decrypt concurrent responses (Session::ExecuteBatch).
#ifndef SEABED_SRC_SEABED_CLIENT_H_
#define SEABED_SRC_SEABED_CLIENT_H_

#include "src/query/query.h"
#include "src/seabed/encryptor.h"
#include "src/seabed/server.h"
#include "src/seabed/translator.h"

namespace seabed {

class Client {
 public:
  Client(const EncryptedDatabase& db, const ClientKeys& keys) : db_(&db), keys_(&keys) {}

  // Decrypts `response` for the translated query `tq`. `right_db` supplies
  // keys/dictionaries for joined-table aggregates and group columns (nullptr
  // for non-join queries). `stats`, when non-null, receives the latency
  // breakdown and PRF-call count.
  ResultSet Decrypt(const EncryptedResponse& response, const TranslatedQuery& tq,
                    const Cluster& cluster, const EncryptedDatabase* right_db,
                    QueryStats* stats) const;

 private:
  const EncryptedDatabase* db_;
  const ClientKeys* keys_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_CLIENT_H_
