// The Seabed decryption module (paper Section 4.6).
//
// Takes the server's encrypted response, decompresses the ID lists, runs the
// ASHE PRF over the identifier runs to remove the pads, undoes group-by
// inflation, renders DET tokens back to plaintext values, and applies the
// client-side post-processing the translator scheduled (AVG division,
// variance/stddev formulas, MIN/MAX cell decryption).
//
// All client work is wall-clock measured and reported in
// ResultSet::client_seconds; the modeled server→client transfer goes to
// ResultSet::network_seconds.
#ifndef SEABED_SRC_SEABED_CLIENT_H_
#define SEABED_SRC_SEABED_CLIENT_H_

#include "src/query/query.h"
#include "src/seabed/encryptor.h"
#include "src/seabed/server.h"
#include "src/seabed/translator.h"

namespace seabed {

class Client {
 public:
  Client(const EncryptedDatabase& db, const ClientKeys& keys) : db_(&db), keys_(&keys) {}

  // Decrypts `response` for the translated query `tq`. `right_db` supplies
  // keys/dictionaries for joined-table aggregates and group columns.
  ResultSet Decrypt(const EncryptedResponse& response, const TranslatedQuery& tq,
                    const Cluster& cluster, const EncryptedDatabase* right_db = nullptr) const;

  // Total PRF invocations performed by the last Decrypt call — the
  // "AES operations required for decryption" statistic of Section 6.6.
  uint64_t last_prf_calls() const { return last_prf_calls_; }

 private:
  const EncryptedDatabase* db_;
  const ClientKeys* keys_;
  mutable uint64_t last_prf_calls_ = 0;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_CLIENT_H_
