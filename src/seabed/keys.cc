#include "src/seabed/keys.h"

#include <cstring>

#include "src/crypto/det.h"

namespace seabed {

AesKey ClientKeys::DeriveColumnKey(const std::string& label) const {
  const DetToken kdf(master_);
  // Two PRF calls give 16 key bytes with domain-separated labels.
  const uint64_t lo = kdf.Tag("key:" + label + ":0");
  const uint64_t hi = kdf.Tag("key:" + label + ":1");
  AesKey key;
  std::memcpy(key.bytes.data(), &lo, 8);
  std::memcpy(key.bytes.data() + 8, &hi, 8);
  return key;
}

}  // namespace seabed
