#include "src/seabed/translator.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/crypto/det.h"
#include "src/seabed/probe.h"

namespace seabed {
namespace {

bool IsRightRef(const std::string& name) { return name.rfind("right:", 0) == 0; }

std::string StripRight(const std::string& name) {
  return IsRightRef(name) ? name.substr(6) : name;
}

std::string OperandAsString(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    return std::to_string(*i);
  }
  return std::get<std::string>(v);
}

}  // namespace

TranslatedQuery Translator::Translate(const Query& query,
                                      const TranslatorOptions& options) const {
  TranslatedQuery out;
  ServerPlan& server = out.server;
  ClientPlan& client = out.client;
  const EncryptionPlan& plan = db_->plan;

  server.table = db_->table->name();
  SEABED_CHECK_MSG(!query.join.has_value() || !IsRightRef(query.join->left_column),
                   "join left column must belong to the fact table");

  // --- SPLASHE filter rewriting ---------------------------------------------
  // At most one SPLASHE-protected dimension may be filtered per query; the
  // rewrite redirects measure/count columns to the splayed variants.
  std::map<std::string, std::string> measure_map;  // plain measure -> enc col
  std::string splashe_count_column;                // enc indicator column
  bool have_splashe_filter = false;

  std::vector<Predicate> remaining_filters;
  for (const Predicate& pred : query.filters) {
    if (IsRightRef(pred.column)) {
      remaining_filters.push_back(pred);
      continue;
    }
    const SplasheLayout* layout = plan.FindSplashe(pred.column);
    if (layout == nullptr) {
      remaining_filters.push_back(pred);
      continue;
    }
    SEABED_CHECK_MSG(pred.op == CmpOp::kEq,
                     "SPLASHE dimensions support equality predicates only");
    SEABED_CHECK_MSG(pred.param < 0,
                     "placeholder on SPLASHE-protected column '"
                         << pred.column
                         << "': the rewrite depends on the literal value; bind before "
                            "translating (Session::Prepare falls back automatically)");
    SEABED_CHECK_MSG(!have_splashe_filter,
                     "at most one SPLASHE-protected dimension per query");
    have_splashe_filter = true;
    const std::string value = OperandAsString(pred.operand);

    if (layout->IsSplayedValue(value)) {
      // Frequent (or basic-mode) value: no server predicate at all; the
      // splayed columns already encode the filter.
      splashe_count_column = layout->CountColumn(value);
      for (const std::string& m : layout->splayed_measures) {
        measure_map[m] = SplasheLayout::MeasureColumn(m, value);
      }
    } else {
      SEABED_CHECK_MSG(layout->enhanced,
                       "value '" << value << "' missing from basic SPLASHE domain of "
                                 << pred.column);
      // Infrequent value: DET equality on the equalized column, aggregates
      // over the "others" columns.
      ServerPredicate sp;
      sp.kind = ServerPredicate::Kind::kDetEq;
      sp.column = layout->DetColumn();
      sp.op = CmpOp::kEq;
      const DetToken det(
          keys_->DeriveColumnKey(ColumnKeyLabel(plan.table_name, layout->DetColumn())));
      sp.det_token = det.Tag(value);
      server.predicates.push_back(sp);
      splashe_count_column = layout->OthersCountColumn();
      for (const std::string& m : layout->splayed_measures) {
        measure_map[m] = SplasheLayout::OthersMeasureColumn(m);
      }
    }
  }

  // --- remaining predicates ---------------------------------------------------
  auto plan_for = [&](const std::string& plain_col, bool on_right) -> const ColumnPlan& {
    SEABED_CHECK_MSG(!on_right, "right-table predicates need the right plan; rewrite "
                                "the query against that table instead");
    return plan.Plan(plain_col);
  };

  for (const Predicate& pred : remaining_filters) {
    const bool on_right = IsRightRef(pred.column);
    const std::string col = StripRight(pred.column);
    ServerPredicate sp;
    sp.on_right = on_right;
    sp.op = pred.op;
    sp.param = pred.param;
    if (on_right) {
      // Right-table columns are assumed plaintext or pre-translated by the
      // caller; only plain predicates are supported through this path.
      sp.column = col;
      if (pred.param >= 0) {
        sp.kind = ServerPredicate::Kind::kPlainInt;  // refined by the bound value's type
      } else if (const auto* i = std::get_if<int64_t>(&pred.operand)) {
        sp.kind = ServerPredicate::Kind::kPlainInt;
        sp.int_operand = *i;
      } else {
        sp.kind = ServerPredicate::Kind::kPlainString;
        sp.str_operand = std::get<std::string>(pred.operand);
      }
      server.predicates.push_back(sp);
      continue;
    }
    const ColumnPlan& cp = plan_for(col, false);
    const bool is_range = pred.op != CmpOp::kEq && pred.op != CmpOp::kNe;
    if (cp.scheme == EncScheme::kPlain) {
      sp.column = col;
      if (pred.param >= 0) {
        sp.kind = ServerPredicate::Kind::kPlainInt;  // refined by the bound value's type
      } else if (const auto* i = std::get_if<int64_t>(&pred.operand)) {
        sp.kind = ServerPredicate::Kind::kPlainInt;
        sp.int_operand = *i;
      } else {
        sp.kind = ServerPredicate::Kind::kPlainString;
        sp.str_operand = std::get<std::string>(pred.operand);
      }
    } else if (is_range) {
      SEABED_CHECK_MSG(cp.scheme == EncScheme::kOpe || cp.add_ope,
                       "range predicate on column '" << col << "' which has no OPE column");
      sp.kind = ServerPredicate::Kind::kOreCmp;
      sp.column = col + "#ope";
      const AesKey key = keys_->DeriveColumnKey(ColumnKeyLabel(plan.table_name, sp.column));
      if (pred.param >= 0) {
        sp.bind_key = key;
      } else {
        const Ore ore(key);
        sp.ore_operand = ore.Encrypt(static_cast<uint64_t>(std::get<int64_t>(pred.operand)));
      }
    } else {
      SEABED_CHECK_MSG(cp.scheme == EncScheme::kDet || cp.add_det,
                       "equality predicate on column '" << col << "' which has no DET column");
      sp.kind = ServerPredicate::Kind::kDetEq;
      sp.column = col + "#det";
      const AesKey key = keys_->DeriveColumnKey(plan.DetKeyLabelFor(col));
      if (pred.param >= 0) {
        sp.bind_key = key;
      } else if (const auto* i = std::get_if<int64_t>(&pred.operand)) {
        sp.det_token = DetInt(key).Encrypt(static_cast<uint64_t>(*i));
      } else {
        sp.det_token = DetToken(key).Tag(std::get<std::string>(pred.operand));
      }
    }
    server.predicates.push_back(sp);
  }

  // --- join -------------------------------------------------------------------
  if (query.join.has_value()) {
    Join j = *query.join;
    const ColumnPlan& cp = plan.Plan(j.left_column);
    if (cp.scheme == EncScheme::kDet || cp.add_det) {
      j.left_column += "#det";
      j.right_column = StripRight(j.right_column) + "#det";
    }
    server.join = j;
  }

  // --- aggregates ---------------------------------------------------------------
  auto add_server_agg = [&](ServerAggregate agg) -> size_t {
    for (size_t i = 0; i < server.aggregates.size(); ++i) {
      const ServerAggregate& e = server.aggregates[i];
      if (e.kind == agg.kind && e.column == agg.column && e.on_right == agg.on_right) {
        return i;
      }
    }
    server.aggregates.push_back(std::move(agg));
    return server.aggregates.size() - 1;
  };

  auto ashe_col_for = [&](const std::string& plain_measure, bool on_right) -> std::string {
    if (!on_right) {
      const auto it = measure_map.find(plain_measure);
      if (it != measure_map.end()) {
        return it->second;
      }
    }
    return plain_measure + "#ashe";
  };

  auto add_count_agg = [&]() -> size_t {
    if (!splashe_count_column.empty()) {
      ServerAggregate agg;
      agg.kind = ServerAggregate::Kind::kAsheSum;
      agg.column = splashe_count_column;
      return add_server_agg(std::move(agg));
    }
    ServerAggregate agg;
    agg.kind = ServerAggregate::Kind::kRowCount;
    return add_server_agg(std::move(agg));
  };

  for (const Aggregate& agg : query.aggregates) {
    const bool on_right = IsRightRef(agg.column);
    const std::string col = StripRight(agg.column);
    ClientOutput output;
    output.alias = agg.alias;
    switch (agg.func) {
      case AggFunc::kSum: {
        ServerAggregate sa;
        sa.kind = ServerAggregate::Kind::kAsheSum;
        sa.column = ashe_col_for(col, on_right);
        sa.on_right = on_right;
        output.kind = ClientOutput::Kind::kSum;
        output.arg0 = add_server_agg(std::move(sa));
        break;
      }
      case AggFunc::kCount: {
        output.kind = ClientOutput::Kind::kCount;
        output.arg0 = add_count_agg();
        break;
      }
      case AggFunc::kAvg: {
        ServerAggregate sum;
        sum.kind = ServerAggregate::Kind::kAsheSum;
        sum.column = ashe_col_for(col, on_right);
        sum.on_right = on_right;
        output.kind = ClientOutput::Kind::kAvg;
        output.arg0 = add_server_agg(std::move(sum));
        output.arg1 = add_count_agg();
        break;
      }
      case AggFunc::kVariance:
      case AggFunc::kStddev: {
        SEABED_CHECK_MSG(measure_map.find(col) == measure_map.end(),
                         "variance over SPLASHE-splayed measures is not supported");
        ServerAggregate sq;
        sq.kind = ServerAggregate::Kind::kAsheSum;
        sq.column = col + "#sq#ashe";
        sq.on_right = on_right;
        ServerAggregate sum;
        sum.kind = ServerAggregate::Kind::kAsheSum;
        sum.column = col + "#ashe";
        sum.on_right = on_right;
        output.kind = agg.func == AggFunc::kVariance ? ClientOutput::Kind::kVariance
                                                     : ClientOutput::Kind::kStddev;
        output.arg0 = add_server_agg(std::move(sq));
        output.arg1 = add_server_agg(std::move(sum));
        output.arg2 = add_count_agg();
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        SEABED_CHECK_MSG(!have_splashe_filter,
                         "MIN/MAX cannot be combined with a SPLASHE-rewritten filter; "
                         "the planner should have used DET for this dimension");
        ServerAggregate mm;
        mm.kind = agg.func == AggFunc::kMin ? ServerAggregate::Kind::kOreMin
                                            : ServerAggregate::Kind::kOreMax;
        mm.column = col + "#ope";
        mm.value_column = col + "#ashe";
        mm.on_right = on_right;
        output.kind = ClientOutput::Kind::kMinMax;
        output.arg0 = add_server_agg(std::move(mm));
        break;
      }
    }
    client.outputs.push_back(std::move(output));
  }

  // A SPLASHE-rewritten filter never reaches the server as a predicate, so
  // grouped scans materialize every group the OTHER predicates admit — even
  // ones where the filtered value never occurs. Ship the filter's count
  // aggregate (deduped against any COUNT/AVG already using it) so the client
  // can drop those all-zero groups, matching plaintext GROUP BY semantics.
  if (!splashe_count_column.empty() && !query.group_by.empty()) {
    client.splashe_filter_count = static_cast<int>(add_count_agg());
  }

  // --- group by ---------------------------------------------------------------
  for (const std::string& g : query.group_by) {
    const bool on_right = IsRightRef(g);
    const std::string col = StripRight(g);
    ServerGroupBy sg;
    sg.on_right = on_right;
    ClientGroupOutput cg;
    cg.plain_name = col;
    cg.on_right = on_right;
    if (on_right) {
      sg.column = col;
      cg.kind = ClientGroupOutput::Kind::kPlainString;  // resolved at decode time
      cg.enc_column = col;
    } else {
      const ColumnPlan& cp = plan.Plan(col);
      if (cp.scheme == EncScheme::kPlain) {
        sg.column = col;
        cg.kind = ClientGroupOutput::Kind::kPlainInt;  // refined at decode time
        cg.enc_column = col;
      } else {
        SEABED_CHECK_MSG(cp.scheme == EncScheme::kDet || cp.add_det,
                         "GROUP BY on column '" << col << "' which has no DET column");
        sg.column = col + "#det";
        cg.enc_column = sg.column;
        cg.key_label = plan.DetKeyLabelFor(col);
        const auto type_it = db_->det_value_types.find(sg.column);
        SEABED_CHECK(type_it != db_->det_value_types.end());
        cg.kind = type_it->second == ColumnType::kInt64 ? ClientGroupOutput::Kind::kDetInt
                                                        : ClientGroupOutput::Kind::kDetString;
      }
    }
    server.group_by.push_back(std::move(sg));
    client.group_outputs.push_back(std::move(cg));
  }

  // --- group inflation + codec selection (Section 4.5) -------------------------
  server.idlist = options.idlist;
  server.worker_side_compression = options.worker_side_compression;
  if (!server.group_by.empty()) {
    // Group-by ID lists are sparse: drop range encoding, keep diff + VB.
    server.idlist.use_range = false;
    if (options.enable_group_inflation && query.expected_groups > 0 &&
        query.expected_groups < options.cluster_workers) {
      server.inflation =
          (options.cluster_workers + query.expected_groups - 1) / query.expected_groups;
    }
  }
  client.inflation = server.inflation;

  // --- probe section (two-round execution, src/seabed/probe.h) -----------------
  out.probe = DeriveProbeSection(server);
  return out;
}

// --- parameter binding -------------------------------------------------------

TranslatedQuery BindTranslatedQuery(const TranslatedQuery& shape,
                                    std::span<const Value> params) {
  TranslatedQuery out = shape;
  for (ServerPredicate& sp : out.server.predicates) {
    if (sp.param < 0) {
      continue;
    }
    SEABED_CHECK_MSG(static_cast<size_t>(sp.param) < params.size(),
                     "bind: no value for placeholder slot " << sp.param);
    const Value& v = params[static_cast<size_t>(sp.param)];
    switch (sp.kind) {
      case ServerPredicate::Kind::kOreCmp: {
        const auto* i = std::get_if<int64_t>(&v);
        SEABED_CHECK_MSG(i != nullptr, "bind: range placeholder on '"
                                           << sp.column << "' requires an integer value");
        sp.ore_operand = Ore(sp.bind_key).Encrypt(static_cast<uint64_t>(*i));
        break;
      }
      case ServerPredicate::Kind::kDetEq: {
        if (const auto* i = std::get_if<int64_t>(&v)) {
          sp.det_token = DetInt(sp.bind_key).Encrypt(static_cast<uint64_t>(*i));
        } else {
          const auto* s = std::get_if<std::string>(&v);
          SEABED_CHECK_MSG(s != nullptr, "bind: equality placeholder on '"
                                             << sp.column
                                             << "' requires an int or string value");
          sp.det_token = DetToken(sp.bind_key).Tag(*s);
        }
        break;
      }
      case ServerPredicate::Kind::kPlainInt:
      case ServerPredicate::Kind::kPlainString: {
        if (const auto* i = std::get_if<int64_t>(&v)) {
          sp.kind = ServerPredicate::Kind::kPlainInt;
          sp.int_operand = *i;
        } else {
          const auto* s = std::get_if<std::string>(&v);
          SEABED_CHECK_MSG(s != nullptr, "bind: plain placeholder on '"
                                             << sp.column
                                             << "' requires an int or string value");
          sp.kind = ServerPredicate::Kind::kPlainString;
          sp.str_operand = *s;
        }
        break;
      }
    }
  }
  // The probe section holds verbatim copies of the fact-side predicates
  // (DeriveProbeSection), so its slots mirror the server ones — copy each
  // bound predicate over by slot instead of re-deriving (and re-copying)
  // the whole section on the per-execution warm path.
  for (ServerPredicate& pp : out.probe.predicates) {
    if (pp.param < 0) {
      continue;
    }
    for (const ServerPredicate& sp : out.server.predicates) {
      if (sp.param == pp.param && !sp.on_right) {
        pp = sp;
        break;
      }
    }
    pp.param = -1;
  }
  for (ServerPredicate& sp : out.server.predicates) {
    sp.param = -1;
  }
  return out;
}

// --- translated-plan cache ---------------------------------------------------

std::string PlanCacheKey(const Query& query, const TranslatorOptions& options) {
  return query.Fingerprint(Query::FingerprintMode::kExact) +
         PlanCacheKeySuffix(query.expected_groups, options);
}

std::string PlanCacheKeySuffix(size_t expected_groups, const TranslatorOptions& options) {
  std::string key = ";eg=" + std::to_string(expected_groups);
  key += ";w=" + std::to_string(options.cluster_workers);
  key += ";gi=" + std::to_string(options.enable_group_inflation ? 1 : 0);
  key += ";il=" + std::to_string(options.idlist.use_range ? 1 : 0) +
         std::to_string(options.idlist.use_diff ? 1 : 0) +
         std::to_string(options.idlist.use_vb ? 1 : 0) +
         std::to_string(static_cast<int>(options.idlist.compression));
  key += ";wc=" + std::to_string(options.worker_side_compression ? 1 : 0);
  return key;
}

TranslatedPlanCache::TranslatedPlanCache(size_t max_entries)
    : max_entries_(max_entries > 0 ? max_entries : 1) {}

std::shared_ptr<const TranslatedQuery> TranslatedPlanCache::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
  return it->second.plan;
}

void TranslatedPlanCache::Insert(const std::string& key,
                                 std::shared_ptr<const TranslatedQuery> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    it->second.plan = std::move(plan);  // refresh in place, keep its slot
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  while (plans_.size() >= max_entries_) {
    plans_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  plans_.emplace(key, Entry{std::move(plan), lru_.begin()});
}

void TranslatedPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  lru_.clear();
}

size_t TranslatedPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

uint64_t TranslatedPlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t TranslatedPlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace seabed
