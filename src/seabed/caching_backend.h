// Caching Seabed: a memoization layer over any inner execution backend.
//
// The paper's target workload (Section 5: BI dashboards) re-issues
// near-identical aggregate queries — the same handful of shapes, refreshed
// on every dashboard load. This decorator makes the warm path cheap twice
// over:
//
//   * a RESULT CACHE keyed by Query::Fingerprint() (filters
//     order-normalized, literals typed) memoizes the decrypted answer, so a
//     repeated query skips the untrusted server entirely. The cache itself
//     is a SharedResultCache (src/seabed/result_cache.h): LRU under entry +
//     byte budgets, per-table invalidation, epoch-fenced inserts. By default
//     each backend owns a private one; pass CacheOptions::shared to attach
//     many sessions (or a Service fleet) to one cross-session cache — warm
//     hits travel between sessions, and any session's Append invalidates
//     the table for all of them;
//   * a TRANSLATED-PLAN CACHE (TranslatedPlanCache, shared with the inner
//     backend via Executor::SetPlanCache) memoizes the translator's output
//     per plan key, so even a cache MISS skips rebuilding Translator state
//     for a shape the dashboard has issued before. Plans survive appends —
//     translation reads only the encryption plan and keys, never rows.
//
// The cache lives on the CLIENT side of the trust boundary: it stores final
// decrypted rows (the client is trusted; ciphertext re-decryption would only
// add latency), and the untrusted server learns nothing new — a hit means
// the server sees no query at all.
//
// QueryStats: hits report cache_hit=true, the result shape of the original
// cold run (result_rows / result_bytes / rows_touched), and only
// cache_lookup_seconds of latency; misses report the inner backend's full
// breakdown plus plan_cache_hit when translation was memoized. Prepared
// executions (ExecutePrepared) are cached too — the result cache keys on the
// BOUND query's exact fingerprint, so a prepared hit and an ad-hoc hit of
// the same literals share one entry.
//
// THREAD SAFETY: fully safe for multi-threaded fronts (seabed::Service).
// The result cache is internally synchronized. When the inner backend is
// snapshot-isolated (Executor::snapshot_isolated), appends run concurrently
// with in-flight misses — each miss executes over its pinned table version
// and the cache's invalidation epoch fences its insert: a miss whose lookup
// predates the append's invalidation is dropped instead of republishing a
// result computed over the old table. Legacy inner backends (no snapshot
// path) keep the serve rwlock: Prepare/Append exclusive, misses shared.
#ifndef SEABED_SRC_SEABED_CACHING_BACKEND_H_
#define SEABED_SRC_SEABED_CACHING_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>

#include "src/seabed/executor.h"
#include "src/seabed/result_cache.h"

namespace seabed {

class CachingSeabedBackend : public Executor {
 public:
  // Wraps `inner` (built by MakeExecutor from `options.inner`); installs the
  // plan cache into it unless `options.cache_plans` is off. Uses
  // `options.shared` as the result cache when set, else builds a private one
  // from the options' limits.
  CachingSeabedBackend(const CacheOptions& options, std::unique_ptr<Executor> inner);

  const char* name() const override { return "caching-seabed"; }
  void Prepare(AttachedTable& table) override;
  void Append(AttachedTable& table, const Table& new_rows,
              JobStats* stats = nullptr) override;
  ResultSet Execute(const Query& query, QueryStats* stats) override;
  ResultSet ExecutePrepared(const PreparedQuery& prepared, std::span<const Value> params,
                            QueryStats* stats) override;
  std::optional<RebalanceStats> rebalance_stats() const override {
    return inner_->rebalance_stats();
  }
  bool snapshot_isolated() const override { return inner_->snapshot_isolated(); }

  // Drops every cached result (plan cache untouched — plans never go stale).
  void InvalidateResults() { results_->InvalidateAll(); }
  // Drops cached results that read `table` as fact or join right side.
  void InvalidateTable(const std::string& table) { results_->InvalidateTable(table); }

  // --- observability, exposed for tests and benches --------------------------
  // Forwarded from the result cache — cache-global counters when `shared`
  // attaches several sessions to one cache.
  uint64_t hits() const { return results_->hits(); }
  uint64_t misses() const { return results_->misses(); }
  size_t entries() const { return results_->entries(); }
  size_t cached_bytes() const { return results_->bytes(); }
  const SharedResultCache& result_cache() const { return *results_; }
  const TranslatedPlanCache& plan_cache() const { return *plan_cache_; }
  Executor& inner() { return *inner_; }

 private:
  // The shared miss/hit protocol of Execute and ExecutePrepared: probes the
  // cache under `bound`'s exact fingerprint, else runs `run_inner` (outside
  // every cache lock, under the serve lock for legacy inner backends) and
  // publishes its result epoch-fenced.
  ResultSet ExecuteVia(const Query& bound, QueryStats* stats,
                       const std::function<ResultSet(QueryStats*)>& run_inner);

  CacheOptions options_;
  std::unique_ptr<Executor> inner_;
  std::shared_ptr<SharedResultCache> results_;
  std::shared_ptr<TranslatedPlanCache> plan_cache_;

  // Structural serve lock for LEGACY (non-snapshot-isolated) inner backends:
  // a miss holds it SHARED across the inner execution; Prepare/Append hold
  // it EXCLUSIVE while mutating the inner backend's tables. Snapshot-
  // isolated inner backends synchronize internally, so Append skips this
  // lock entirely and misses overlap appends (Prepare stays exclusive: a
  // re-attach also rewires catalog state). Ordered before the result cache's
  // internal mutex (never acquire serve_mu_ from inside the cache).
  mutable std::shared_mutex serve_mu_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_CACHING_BACKEND_H_
