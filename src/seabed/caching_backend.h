// Caching Seabed: a memoization layer over any inner execution backend.
//
// The paper's target workload (Section 5: BI dashboards) re-issues
// near-identical aggregate queries — the same handful of shapes, refreshed
// on every dashboard load. This decorator makes the warm path cheap twice
// over:
//
//   * a RESULT CACHE keyed by Query::Fingerprint() (filters
//     order-normalized, literals typed) memoizes the decrypted answer, so a
//     repeated query skips the untrusted server entirely. Entries are
//     evicted LRU under both an entry budget and a byte budget, and
//     invalidated whenever a table they read (fact or join right side) is
//     appended to or re-attached;
//   * a TRANSLATED-PLAN CACHE (TranslatedPlanCache, shared with the inner
//     backend via Executor::SetPlanCache) memoizes the translator's output
//     per plan key, so even a cache MISS skips rebuilding Translator state
//     for a shape the dashboard has issued before. Plans survive appends —
//     translation reads only the encryption plan and keys, never rows.
//
// The cache lives on the CLIENT side of the trust boundary: it stores final
// decrypted rows (the client is trusted; ciphertext re-decryption would only
// add latency), and the untrusted server learns nothing new — a hit means
// the server sees no query at all.
//
// QueryStats: hits report cache_hit=true, the result shape of the original
// cold run (result_rows / result_bytes / rows_touched), and only
// cache_lookup_seconds of latency; misses report the inner backend's full
// breakdown plus plan_cache_hit when translation was memoized.
//
// THREAD SAFETY: fully safe for multi-threaded fronts (seabed::Service).
// The result cache and stats are mutex-guarded. When the inner backend is
// snapshot-isolated (Executor::snapshot_isolated), appends run concurrently
// with in-flight misses — each miss executes over its pinned table version
// and the atomic invalidation epoch fences its insert: a miss whose lookup
// predates the append's invalidation is dropped instead of republishing a
// result computed over the old table. Legacy inner backends (no snapshot
// path) keep the serve rwlock: Prepare/Append exclusive, misses shared.
#ifndef SEABED_SRC_SEABED_CACHING_BACKEND_H_
#define SEABED_SRC_SEABED_CACHING_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/seabed/executor.h"

namespace seabed {

// Rough client-memory footprint of a cached ResultSet, used for the byte
// budget (value payloads + per-row/-string overheads).
size_t EstimateResultBytes(const ResultSet& result);

class CachingSeabedBackend : public Executor {
 public:
  // Wraps `inner` (built by MakeExecutor from `options.inner`); installs the
  // plan cache into it unless `options.cache_plans` is off.
  CachingSeabedBackend(const CacheOptions& options, std::unique_ptr<Executor> inner);

  const char* name() const override { return "caching-seabed"; }
  void Prepare(AttachedTable& table) override;
  void Append(AttachedTable& table, const Table& new_rows,
              JobStats* stats = nullptr) override;
  ResultSet Execute(const Query& query, QueryStats* stats) override;
  std::optional<RebalanceStats> rebalance_stats() const override {
    return inner_->rebalance_stats();
  }
  bool snapshot_isolated() const override { return inner_->snapshot_isolated(); }

  // Drops every cached result (plan cache untouched — plans never go stale).
  void InvalidateResults();
  // Drops cached results that read `table` as fact or join right side.
  void InvalidateTable(const std::string& table);

  // --- observability, exposed for tests and benches --------------------------
  uint64_t hits() const;
  uint64_t misses() const;
  size_t entries() const;
  size_t cached_bytes() const;
  const TranslatedPlanCache& plan_cache() const { return plan_cache_; }
  Executor& inner() { return *inner_; }

 private:
  struct Entry {
    // Immutable shared payload: hits snapshot the pointer under the lock
    // and copy the rows outside it, so concurrent warm hits in ExecuteBatch
    // never serialize on the row copy (and a hit outlives eviction).
    std::shared_ptr<const ResultSet> result;
    // Result-shape stats of the cold run, replayed into hit stats.
    size_t result_bytes = 0;
    uint64_t rows_touched = 0;
    size_t bytes = 0;                  // EstimateResultBytes at insert time
    std::vector<std::string> tables;   // fact + join right side
    std::list<std::string>::iterator lru;  // position in lru_ (front = hottest)
  };

  // All three require `mu_` held.
  void TouchLocked(Entry& entry, const std::string& key);
  void InsertLocked(const std::string& key, Entry entry);
  void EvictLocked();

  CacheOptions options_;
  std::unique_ptr<Executor> inner_;
  TranslatedPlanCache plan_cache_;

  // Structural serve lock for LEGACY (non-snapshot-isolated) inner backends:
  // a miss holds it SHARED across the inner execution; Prepare/Append hold
  // it EXCLUSIVE while mutating the inner backend's tables. Snapshot-
  // isolated inner backends synchronize internally, so Append skips this
  // lock entirely and misses overlap appends (Prepare stays exclusive: a
  // re-attach also rewires catalog state). Ordered before `mu_` (never
  // acquire serve_mu_ while holding mu_).
  mutable std::shared_mutex serve_mu_;

  // Result cache. Guarded by `mu_`: Session::ExecuteBatch issues concurrent
  // Execute calls. Misses run the inner backend OUTSIDE the lock — two
  // concurrent misses on one key both execute and the later insert wins
  // (idempotent: equivalence says both computed the same rows).
  mutable std::mutex mu_;
  std::map<std::string, Entry> results_;
  std::list<std::string> lru_;  // most-recently-used at the front
  size_t total_bytes_ = 0;
  // Invalidation epoch, fencing misses against invalidation: an insert whose
  // lookup predates an InvalidateTable/InvalidateResults is dropped instead
  // of republishing a result computed over the old table. Atomic with
  // acquire/release ordering — with a snapshot-isolated inner backend an
  // append's invalidation races the miss path, and the fence must be visible
  // without relying on `mu_` alone: the release increment happens after the
  // inner backend published its post-append version, so a miss whose acquire
  // load still sees the old epoch pinned the old version and is dropped.
  std::atomic<uint64_t> epoch_{0};
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_CACHING_BACKEND_H_
