// Vectorized columnar scan kernels for the encrypted server's hot loop.
//
// Server::Execute used to evaluate predicates row-at-a-time through a branchy
// per-row switch. These kernels restructure the scan to row-group-at-a-time:
// each predicate kind fills (ANDs into) a SelectionBitmap over a whole row
// group, predicates combine by bitmap intersection instead of per-row
// short-circuiting, and aggregation iterates the set bits of the final
// bitmap. The ciphertext layouts make this profitable without any key
// material:
//
//   * DET tokens are plain 64-bit equality — one SIMD compare covers 4 (AVX2)
//     or 2 (SSE2/NEON) rows;
//   * plain int64 predicates are signed compares, same widths;
//   * ORE comparison is "find the first differing 2-bit u-slot": one 16-byte
//     SIMD equality against the operand locates the first differing byte over
//     all shared-prefix bytes at once (the scalar path walks them one by
//     one), and a two-instruction bit-trick resolves the order from that
//     byte. Real-world range operands share long prefixes with the data
//     (timestamps in one epoch), which is exactly where the byte walk hurts;
//   * plain strings are dictionary codes; equality runs scalar over the
//     surviving bits only (see SelectionBitmap::Retain).
//
// Dispatch is compile-time ISA selection (SSE2/AVX2 on x86-64, NEON on
// aarch64) with a runtime AVX2 check, plus a portable scalar fallback that is
// always compiled and takes over entirely under -DSEABED_NO_SIMD (the CI
// escape hatch; see CMakeLists.txt). Every kernel is semantically identical
// to the scalar predicate it replaces — the fuzz-equivalence suite pins this
// on both builds.
#ifndef SEABED_SRC_SEABED_SCAN_KERNELS_H_
#define SEABED_SRC_SEABED_SCAN_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "src/crypto/ore.h"
#include "src/encoding/bitmap.h"
#include "src/query/query.h"

namespace seabed {

// Process-wide scan-path selector. kVectorized is the production path; the
// legacy row-at-a-time loop is kept callable so the kernel bench can A/B the
// two on one binary and the fuzz suite can pin their equivalence. Joined
// scans always take the row-at-a-time path (the join fan-out is per-row).
enum class ScanMode {
  kVectorized,   // columnar kernels + selection bitmaps (default)
  kRowAtATime,   // the pre-kernel scalar loop (bench baseline / fallback)
};

// Bench/test hook; reads are lock-free, set it only between queries.
void SetServerScanMode(ScanMode mode);
ScanMode ServerScanMode();

// The instruction set the kernels dispatched to: "avx2", "sse2", "neon" or
// "scalar". Diagnostic only (bench output); resolved once at first use.
const char* ScanKernelIsaName();

// All kernels AND their verdicts into `sel` over rows [0, n) of the given
// column span — bit i of `sel` corresponds to span element i, and a kernel
// can only clear bits. `sel` must hold exactly n bits with its tail already
// masked (SelectionBitmap::Reset guarantees this).

// DET equality: keeps rows whose token equals `token` (negated: differs).
void FilterDetEq(const uint64_t* tokens, size_t n, bool negate, uint64_t token,
                 SelectionBitmap& sel);

// Plain int64 comparison: keeps rows where `values[i] <op> operand`.
void FilterInt64Cmp(const int64_t* values, size_t n, CmpOp op, int64_t operand,
                    SelectionBitmap& sel);

// ORE comparison: keeps rows where the plaintext of cells[i] is <op> the
// plaintext of `operand` (per Ore::Compare's order).
void FilterOreCmp(const OreCiphertext* cells, size_t n, CmpOp op,
                  const OreCiphertext& operand, SelectionBitmap& sel);

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SCAN_KERNELS_H_
