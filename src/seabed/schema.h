// Plaintext schema descriptions and the planner's encrypted-schema output.
//
// The user hands the planner a plaintext schema annotated with sensitivity
// flags and (optionally) per-dimension value distributions; the planner emits
// an EncryptionPlan describing how every column is realized in the encrypted
// table (paper Section 4.2). Encrypted column naming conventions:
//
//   m#ashe        ASHE group elements for measure m
//   m#sq#ashe     ASHE of m^2 (client pre-processing for variance/stddev)
//   m#paillier    Paillier ciphertexts (baseline system only)
//   d#det         DET tokens for dimension d
//   d#ope         ORE ciphertexts for dimension d
//   d@v#cnt       SPLASHE 0/1 indicator for value v of dimension d (ASHE)
//   d@#cnt        SPLASHE "others" indicator (enhanced only, ASHE)
//   m@v#ashe      SPLASHE-splayed measure m for value v
//   m@#ashe       SPLASHE-splayed measure m, "others" column
#ifndef SEABED_SRC_SEABED_SCHEMA_H_
#define SEABED_SRC_SEABED_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/engine/column.h"

namespace seabed {

// Expected domain and relative frequency of a dimension's values; required
// for enhanced SPLASHE (Section 3.4: "we do need to know the distribution").
struct ValueDistribution {
  std::vector<std::string> values;
  std::vector<double> frequencies;  // same order as values; sums to ~1
};

struct PlainColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kInt64;  // kInt64 or kString
  bool sensitive = false;
  std::optional<ValueDistribution> distribution;
};

struct PlainSchema {
  std::string table_name;
  std::vector<PlainColumnSpec> columns;

  const PlainColumnSpec* Find(const std::string& name) const;
};

// How one plaintext column is realized in the encrypted schema.
enum class EncScheme {
  kPlain,            // not sensitive: stored in the clear
  kAshe,             // measure, ASHE
  kSplasheBasic,     // dimension, basic SPLASHE (one column per value)
  kSplasheEnhanced,  // dimension, enhanced SPLASHE (frequent values + others)
  kDet,              // dimension, deterministic encryption
  kOpe,              // dimension, order-revealing encryption
};

const char* EncSchemeName(EncScheme scheme);

// Layout of one splayed dimension (basic or enhanced).
struct SplasheLayout {
  std::string dimension;
  bool enhanced = false;

  // Values with a dedicated column. Basic: the full domain. Enhanced: the k
  // most frequent values (paper Section 3.4).
  std::vector<std::string> splayed_values;

  // Enhanced only: values routed to the "others" columns, and the per-value
  // target occurrence count t used to equalize DET frequencies.
  std::vector<std::string> other_values;
  uint64_t target_count = 0;

  // Measures co-splayed with this dimension.
  std::vector<std::string> splayed_measures;

  bool IsSplayedValue(const std::string& v) const;

  // Encrypted column names.
  std::string CountColumn(const std::string& value) const {
    return dimension + "@" + value + "#cnt";
  }
  std::string OthersCountColumn() const { return dimension + "@#cnt"; }
  std::string DetColumn() const { return dimension + "#det"; }
  static std::string MeasureColumn(const std::string& measure, const std::string& value) {
    return measure + "@" + value + "#ashe";
  }
  static std::string OthersMeasureColumn(const std::string& measure) {
    return measure + "@#ashe";
  }
};

struct ColumnPlan {
  EncScheme scheme = EncScheme::kPlain;
  // For measures: the client pre-computes and uploads an ASHE-encrypted
  // squared column (enables server-side variance — Section 4.2).
  bool needs_square = false;
  // Additional ORE column: range predicates or MIN/MAX on this column.
  bool add_ope = false;
  // Additional DET column (e.g. equality or joins on an OPE dimension).
  bool add_det = false;
  // Additional ASHE column for an OPE/DET column whose values are also
  // aggregated or must be recoverable from MIN/MAX results.
  bool add_ashe = false;
  // Join columns must tokenize identically on both sides, so their DET key
  // is derived from a canonical label shared by the two tables (CryptDB's
  // join-key adjustment, resolved statically by the planner). Empty = the
  // default per-column label.
  std::string det_key_label;
};

// The planner's output: everything the encryptor, translator and client need.
struct EncryptionPlan {
  std::string table_name;
  std::map<std::string, ColumnPlan> columns;
  std::vector<SplasheLayout> splashe;  // one entry per splayed dimension

  // Dimensions the planner wanted to protect with SPLASHE but could not
  // (join use, or storage budget exhausted) — surfaced as warnings.
  std::vector<std::string> warnings;

  const SplasheLayout* FindSplashe(const std::string& dimension) const;
  const ColumnPlan& Plan(const std::string& column) const;

  // Key-derivation label for the DET column of plaintext column
  // `plain_column`: the shared join label when one was assigned, else the
  // default "<table>/<column>#det".
  std::string DetKeyLabelFor(const std::string& plain_column) const;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SCHEMA_H_
