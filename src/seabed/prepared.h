// Prepared statements: translate once per shape, bind per execution.
//
// The paper's target workload (Section 5) is BI dashboards re-issuing the
// same handful of query shapes with different literals. A PreparedQuery is
// the client-side handle for one such shape: Session::Prepare validates the
// placeholder slots and freezes the shape's fingerprints; the first
// execution translates the shape (server plan, client plan, probe section,
// per-slot column keys) into the shape-keyed plan cache; every later
// execution only encrypts the bound literals (DET token / ORE ciphertext per
// slot) — no parser, no planner lookup, no retranslation.
//
// Handles are cheap to copy (shared immutable state) and safe to use from
// many threads concurrently, including through seabed::Service.
#ifndef SEABED_SRC_SEABED_PREPARED_H_
#define SEABED_SRC_SEABED_PREPARED_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "src/query/query.h"

namespace seabed {

class PreparedQuery {
 public:
  // An invalid handle; Session::Prepare returns valid ones.
  PreparedQuery() = default;

  bool valid() const { return state_ != nullptr; }

  // The shape query with its unbound placeholder predicates.
  const Query& shape() const { return state_->shape; }

  // Fingerprint(kShape), frozen at Prepare: Service batches on it, and
  // diagnostics name the shape with it.
  const std::string& shape_key() const { return state_->shape_key; }

  // Fingerprint(kExact) of the shape (placeholders render as `?N`), frozen
  // at Prepare: backends append the translator-options digest to form the
  // plan-cache key without re-walking the query per execution.
  const std::string& plan_key_base() const { return state_->plan_key_base; }

  size_t num_params() const { return state_->num_params; }

  // False when some placeholder sits on a SPLASHE-protected column: its
  // rewrite depends on the literal value, so backends bind first and
  // translate per execution (correct, just not accelerated).
  bool parameterized() const { return state_->parameterized; }

  // The fully-bound Query (every backend's fallback, and what result caches
  // and plaintext backends execute).
  Query Bind(std::span<const Value> params) const { return state_->shape.BindParams(params); }

 private:
  friend class Session;

  struct State {
    Query shape;
    std::string shape_key;
    std::string plan_key_base;
    size_t num_params = 0;
    bool parameterized = false;
  };

  explicit PreparedQuery(std::shared_ptr<const State> state) : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_PREPARED_H_
