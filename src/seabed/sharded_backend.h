// Scale-out Seabed: N partitioned Server instances behind one Executor.
//
// The paper's Figure 7 sweeps cluster cores inside ONE simulated Spark
// cluster; this backend adds the next axis — multiple servers. Attach
// hash-partitions each table's rows into one encrypted database per shard;
// the first join that needs a table as its right side builds one full
// encrypted replica of it, broadcast to every shard. Execute translates the
// query once and fans the same server plan out to all shards concurrently,
// and a coordinator merge layer combines the partial encrypted responses
// before a single client decryption:
//
//   * ASHE sums add ciphertext-side (group elements add, ID-list blobs
//     concatenate — shards encrypt into disjoint identifier spaces, so the
//     multiset union never collides);
//   * COUNTs add;
//   * GROUP BY groups union-merge by serialized key;
//   * ORE MIN/MAX reduce by comparing the shards' winners.
//
// Queries flagged `needs_two_round_trips` probe all shards with a cheap
// row-count plan first and re-issue the full plan only to shards that
// matched — round two touches a subset of the fleet. When no shard matches,
// round two is skipped entirely (the empty merged response decrypts to the
// same rows a zero-match scan produces). Inside surviving shards, round two
// additionally consults each shard Server's row-group summary index
// (Server::Probe, src/seabed/probe.h) under the session's probe mode, so the
// pruned-scan Execute(scan_ranges) path runs *within* shards and
// QueryStats::row_groups_total/pruned aggregate the per-shard indexes.
//
// Appends place whole batches on the shard that owns the batch's first
// global row (append locality — one encryption stream per batch, mirroring
// log-structured ingest), so a skewed append stream concentrates rows on few
// shards. SessionOptions::shards_rebalance (off by default) repairs that:
// past the configured skew ratio, Append migrates whole row-groups off the
// donor's tail — moved rows re-encrypt into the recipient's ASHE identifier
// space (the canonical append path) and the donor's remainder into a fresh
// disjoint slot, so identifiers are never reused across re-encryptions and
// coordinator merge semantics are untouched. Moves accumulate in
// RebalanceStats.
//
// Latency model: the shards are independent clusters of the session's
// cluster shape running in parallel, so simulated server time is the slowest
// shard plus the measured merge; QueryStats reports the per-shard breakdown
// with probe-round and round-two time separated.
#ifndef SEABED_SRC_SEABED_SHARDED_BACKEND_H_
#define SEABED_SRC_SEABED_SHARDED_BACKEND_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/seabed/executor.h"

namespace seabed {

class ShardedSeabedBackend : public Executor {
 public:
  ShardedSeabedBackend(const ExecutionContext* context, size_t shards);

  const char* name() const override { return "sharded-seabed"; }
  void Prepare(AttachedTable& table) override;
  void Append(AttachedTable& table, const Table& new_rows) override;
  ResultSet Execute(const Query& query, QueryStats* stats) override;
  void SetPlanCache(TranslatedPlanCache* cache) override { plan_cache_ = cache; }
  std::optional<RebalanceStats> rebalance_stats() const override {
    // Append mutates the counters under the exclusive state lock; snapshot
    // under the shared one so monitors can poll during an append stream.
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    return rebalance_stats_;
  }

  size_t num_shards() const { return shards_; }
  // The untrusted side of shard `shard`, exposed for tests.
  const Server& shard_server(size_t shard) const;
  // Shard `shard`'s partition of `table` (aborts when not attached).
  const EncryptedDatabase& shard_database(const std::string& table, size_t shard) const;
  // The full-table join replica of `table`, or nullptr while no join query
  // has needed one. Exposed for tests; taken under the backend's state lock,
  // so don't hold the returned pointer across a concurrent Append — snapshot
  // what you need before resuming mutation traffic.
  const EncryptedDatabase* replica_database(const std::string& table) const;

  // Per-shard row counts of `table`'s partitions, exposed so tests and
  // benches can observe skew and rebalancing.
  std::vector<size_t> ShardRowCounts(const std::string& table) const;

  // Deterministic placement: which shard owns global row `row` at Attach
  // time, and which shard an append batch starting at global row `row` lands
  // on whole (append locality). Exposed so tests can pin — and deliberately
  // skew — the partitioning.
  size_t ShardOfRow(size_t row) const;

 private:
  // Everything the backend keeps per attached table.
  struct ShardedTable {
    // Per-shard plaintext sub-tables (the rows this shard owns) and their
    // encrypted form. Parallel vectors of size `shards_`.
    std::vector<std::shared_ptr<Table>> plain_parts;
    std::vector<EncryptedDatabase> parts;
    // Full-table replica for the broadcast side of joins, built by the
    // first query that needs it (guarded by `replica_mu_`). Never enters
    // the server registries — Execute hands it to the servers directly.
    std::optional<EncryptedDatabase> replica;
    // Next free ASHE identifier-space slot for this table. Slots 0..shards-1
    // are the shard partitions, slot `shards` is the replica; rebalancing
    // re-encrypts donor remainders into fresh slots from here so identifiers
    // are never reused across two encryptions of the same table.
    uint64_t next_id_slot = 0;
  };

  ShardedTable& State(const std::string& table);
  const ShardedTable& State(const std::string& table) const;

  // Returns `right`'s replica, encrypting it on first use.
  const EncryptedDatabase& EnsureReplica(const AttachedTable& right);

  // Runs `plan` on every shard in `active` concurrently (skipped shards get
  // a default-constructed response). `right` is the broadcast join table
  // (nullptr for non-join plans).
  std::vector<EncryptedResponse> FanOut(const ServerPlan& plan, const std::vector<bool>& active,
                                        const Table* right) const;

  // Migrates whole row-groups between shards when an Append left the fleet
  // skewed past `context_->rebalance.max_skew_ratio`. Requires `state_mu_`
  // held exclusively (called from Append).
  void MaybeRebalance(const AttachedTable& table, ShardedTable& state,
                      const Encryptor& encryptor);

  const ExecutionContext* context_;
  size_t shards_;
  TranslatedPlanCache* plan_cache_ = nullptr;
  std::vector<Server> servers_;
  std::map<std::string, ShardedTable> tables_;
  RebalanceStats rebalance_stats_;
  // Readers/writer lock over the shard state: Execute (and the test
  // accessors) hold it shared for their whole duration, Prepare/Append hold
  // it exclusive — an Append mutating a shard partition or the join replica
  // in place (column growth reallocates) must never interleave with a
  // fan-out reading them. Concurrent Executes (Session::ExecuteBatch) still
  // run in parallel.
  mutable std::shared_mutex state_mu_;
  // Serializes lazy replica construction between concurrent Executes (which
  // hold `state_mu_` only shared). Ordered after `state_mu_`.
  mutable std::mutex replica_mu_;
  // Fan-out pool shared by all queries of this backend (shards run
  // concurrently; each shard's scan then parallelizes on the cluster model).
  mutable ThreadPool pool_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SHARDED_BACKEND_H_
