// Scale-out Seabed: N partitioned Server instances behind one Executor.
//
// The paper's Figure 7 sweeps cluster cores inside ONE simulated Spark
// cluster; this backend adds the next axis — multiple servers. Attach
// hash-partitions each table's rows into one encrypted database per shard;
// the first join that needs a table as its right side builds one full
// encrypted replica of it, broadcast to every shard. Execute translates the
// query once and fans the same server plan out to all shards concurrently,
// and a coordinator merge layer combines the partial encrypted responses
// before a single client decryption:
//
//   * ASHE sums add ciphertext-side (group elements add, ID-list blobs
//     concatenate — shards encrypt into disjoint identifier spaces, so the
//     multiset union never collides);
//   * COUNTs add;
//   * GROUP BY groups union-merge by serialized key;
//   * ORE MIN/MAX reduce by comparing the shards' winners.
//
// Queries flagged `needs_two_round_trips` probe all shards with a cheap
// row-count plan first and re-issue the full plan only to shards that
// matched — round two touches a subset of the fleet.
//
// Latency model: the shards are independent clusters of the session's
// cluster shape running in parallel, so simulated server time is the slowest
// shard plus the measured merge; QueryStats reports the per-shard breakdown.
#ifndef SEABED_SRC_SEABED_SHARDED_BACKEND_H_
#define SEABED_SRC_SEABED_SHARDED_BACKEND_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/seabed/executor.h"

namespace seabed {

class ShardedSeabedBackend : public Executor {
 public:
  ShardedSeabedBackend(const ExecutionContext* context, size_t shards);

  const char* name() const override { return "sharded-seabed"; }
  void Prepare(AttachedTable& table) override;
  void Append(AttachedTable& table, const Table& new_rows) override;
  ResultSet Execute(const Query& query, QueryStats* stats) override;
  void SetPlanCache(TranslatedPlanCache* cache) override { plan_cache_ = cache; }

  size_t num_shards() const { return shards_; }
  // The untrusted side of shard `shard`, exposed for tests.
  const Server& shard_server(size_t shard) const;
  // Shard `shard`'s partition of `table` (aborts when not attached).
  const EncryptedDatabase& shard_database(const std::string& table, size_t shard) const;
  // The full-table join replica of `table`, or nullptr while no join query
  // has needed one. Exposed for tests.
  const EncryptedDatabase* replica_database(const std::string& table) const;

  // Deterministic row placement: which shard owns global row `row` of an
  // attached table. Exposed so tests can pin the partitioning.
  size_t ShardOfRow(size_t row) const;

 private:
  // Everything the backend keeps per attached table.
  struct ShardedTable {
    // Per-shard plaintext sub-tables (the rows this shard owns) and their
    // encrypted form. Parallel vectors of size `shards_`.
    std::vector<std::shared_ptr<Table>> plain_parts;
    std::vector<EncryptedDatabase> parts;
    // Full-table replica for the broadcast side of joins, built by the
    // first query that needs it (guarded by `replica_mu_`). Never enters
    // the server registries — Execute hands it to the servers directly.
    std::optional<EncryptedDatabase> replica;
  };

  ShardedTable& State(const std::string& table);
  const ShardedTable& State(const std::string& table) const;

  // Returns `right`'s replica, encrypting it on first use.
  const EncryptedDatabase& EnsureReplica(const AttachedTable& right);

  // Runs `plan` on every shard in `active` concurrently (skipped shards get
  // a default-constructed response). `right` is the broadcast join table
  // (nullptr for non-join plans).
  std::vector<EncryptedResponse> FanOut(const ServerPlan& plan, const std::vector<bool>& active,
                                        const Table* right) const;

  const ExecutionContext* context_;
  size_t shards_;
  TranslatedPlanCache* plan_cache_ = nullptr;
  std::vector<Server> servers_;
  std::map<std::string, ShardedTable> tables_;
  // Serializes lazy replica construction (Execute may run concurrently via
  // Session::ExecuteBatch).
  mutable std::mutex replica_mu_;
  // Fan-out pool shared by all queries of this backend (shards run
  // concurrently; each shard's scan then parallelizes on the cluster model).
  mutable ThreadPool pool_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SHARDED_BACKEND_H_
