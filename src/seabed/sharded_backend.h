// Scale-out Seabed: N partitioned Server instances behind one Executor.
//
// The paper's Figure 7 sweeps cluster cores inside ONE simulated Spark
// cluster; this backend adds the next axis — multiple servers. Attach
// partitions each table's rows into one encrypted database per shard under
// the session's placement policy (src/seabed/placement.h): multiplicative
// hash by default, or contiguous clustering-key ranges (kKeyRange), whose
// per-shard [lo, hi] boundaries ride in the published snapshot and let the
// coordinator route clustering-key range predicates to the owning shard
// subset before any fan-out (round-zero pruning, QueryStats::shards_routed);
// the first join that needs a table as its right side builds one full
// encrypted replica of it, broadcast to every shard. Execute translates the
// query once and fans the same server plan out to all shards concurrently,
// and a coordinator merge layer combines the partial encrypted responses
// before a single client decryption:
//
//   * ASHE sums add ciphertext-side (group elements add, ID-list blobs
//     concatenate — shards encrypt into disjoint identifier spaces, so the
//     multiset union never collides);
//   * COUNTs add;
//   * GROUP BY groups union-merge by serialized key;
//   * ORE MIN/MAX reduce by comparing the shards' winners.
//
// Queries flagged `needs_two_round_trips` probe all shards with a cheap
// row-count plan first and re-issue the full plan only to shards that
// matched — round two touches a subset of the fleet. When no shard matches,
// round two is skipped entirely (the empty merged response decrypts to the
// same rows a zero-match scan produces). Inside surviving shards, round two
// additionally consults each shard's row-group summary index (part of the
// published snapshot: VersionProbeIndex, src/seabed/snapshot.h) under the
// session's probe mode, so the pruned-scan Execute(scan_ranges) path runs
// *within* shards and QueryStats::row_groups_total/pruned aggregate the
// per-shard indexes.
//
// Concurrency: tables live in immutable published versions
// (ShardedTableVersion). Execute pins the current version through an epoch
// guard and never takes a lock; Prepare/Append/rebalance serialize on a
// writer mutex, build the successor version off to the side (copying only
// the shards they touch), and publish it with one atomic swap. Retired
// versions drain through epoch-based reclamation (src/common/epoch.h).
//
// Appends place whole batches on the shard that owns the batch's first
// global row (append locality — one encryption stream per batch, mirroring
// log-structured ingest), so a skewed append stream concentrates rows on few
// shards. SessionOptions::shards_rebalance (off by default) repairs that:
// past the configured skew ratio, Append migrates whole row-groups off the
// donor's tail — moved rows re-encrypt into the recipient's ASHE identifier
// space (the canonical append path) and the donor's remainder into a fresh
// disjoint slot, so identifiers are never reused across re-encryptions and
// coordinator merge semantics are untouched. Moves accumulate in
// RebalanceStats.
//
// Latency model: the shards are independent clusters of the session's
// cluster shape running in parallel, so simulated server time is the slowest
// shard plus the measured merge; QueryStats reports the per-shard breakdown
// with probe-round and round-two time separated.
#ifndef SEABED_SRC_SEABED_SHARDED_BACKEND_H_
#define SEABED_SRC_SEABED_SHARDED_BACKEND_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/epoch.h"
#include "src/common/thread_pool.h"
#include "src/seabed/executor.h"
#include "src/seabed/snapshot.h"

namespace seabed {

class ShardedSeabedBackend : public Executor {
 public:
  ShardedSeabedBackend(const ExecutionContext* context, size_t shards);

  const char* name() const override { return "sharded-seabed"; }
  void Prepare(AttachedTable& table) override;
  void Append(AttachedTable& table, const Table& new_rows,
              JobStats* stats = nullptr) override;
  ResultSet Execute(const Query& query, QueryStats* stats) override;
  ResultSet ExecutePrepared(const PreparedQuery& prepared, std::span<const Value> params,
                            QueryStats* stats) override;
  void SetPlanCache(std::shared_ptr<TranslatedPlanCache> cache) override {
    plan_cache_ = std::move(cache);
  }
  bool snapshot_isolated() const override { return true; }
  std::optional<RebalanceStats> rebalance_stats() const override;

  size_t num_shards() const { return shards_; }
  // The untrusted side of shard `shard`, exposed for tests.
  const Server& shard_server(size_t shard) const;
  // Shard `shard`'s partition of `table` in the currently published version
  // (aborts when not attached). The reference stays valid until the version
  // is retired AND drained, so don't hold it across a concurrent Append —
  // snapshot what you need before resuming mutation traffic.
  const EncryptedDatabase& shard_database(const std::string& table, size_t shard) const;
  // The full-table join replica of `table`'s current version, or nullptr
  // while no join query has needed one. Same lifetime caveat as
  // shard_database.
  const EncryptedDatabase* replica_database(const std::string& table) const;

  // Per-shard row counts of `table`'s partitions, exposed so tests and
  // benches can observe skew and rebalancing.
  std::vector<size_t> ShardRowCounts(const std::string& table) const;

  // Deterministic HASH placement: which shard owns global row `row` at
  // Attach time, and which shard an append batch starting at global row
  // `row` lands on whole (append locality). Exposed so tests can pin — and
  // deliberately skew — the partitioning. Key-range tables place by value
  // instead (see ShardedTableVersion::boundaries).
  size_t ShardOfRow(size_t row) const;

  // Summary-build count of shard `shard`'s probe index in the current
  // version (see VersionProbeIndex::builds).
  uint64_t probe_index_builds(const std::string& table, size_t shard) const;

  // Reclamation domain, exposed for tests that assert retired versions drain.
  EpochDomain& epoch_domain() const { return epochs_; }

 private:
  struct TableState {
    // Owning reference to the published version; written under writer_mu_.
    std::shared_ptr<const ShardedTableVersion> owner;
    // Lock-free read point. Readers must hold an epochs_ guard across the
    // load and every dereference of the result.
    std::atomic<const ShardedTableVersion*> current{nullptr};
  };

  TableState& StateFor(const std::string& table);
  // Pinned pointer to `table`'s published version (caller holds a guard), or
  // null when the table was never prepared.
  const ShardedTableVersion* CurrentVersion(const std::string& table) const;
  // Swaps `next` in as `state`'s published version and retires the old one
  // into the epoch domain. Requires writer_mu_.
  void Publish(TableState& state, std::shared_ptr<const ShardedTableVersion> next);

  // Guarantees `right`'s published version carries a join replica, building
  // one (as a new version) on first use. Once a version has a replica every
  // later version does — appends grow a copy — so a reader that pins after
  // this returns always finds one.
  void EnsureReplica(const AttachedTable& right);

  // Runs `plan` on every shard in `active` concurrently (skipped shards get
  // a default-constructed response), over `version`'s part tables. `right`
  // is the broadcast join table (nullptr for non-join plans).
  std::vector<EncryptedResponse> FanOut(const ShardedTableVersion& version,
                                        const ServerPlan& plan, const std::vector<bool>& active,
                                        const Table* right) const;

  // Post-translation execution shared by the ad-hoc and prepared paths:
  // shard count probe, intra-shard pruning, round-two fan-out, coordinator
  // merge, client decryption, stats fill (except translate_seconds /
  // plan_cache_hit — the callers own those). `query` must be fully bound;
  // the caller holds the epoch guard that pins `ver`.
  ResultSet RunTranslated(const Query& query, const AttachedTable& fact,
                          const ShardedTableVersion* ver, const EncryptedDatabase* right_db,
                          const Table* right_table, const TranslatedQuery& tq,
                          QueryStats* stats);

  // Migrates whole row-groups between shards when an Append left the fleet
  // skewed past `context_->rebalance.max_skew_ratio`. Operates on the
  // unpublished successor version `next`; `rebuilt[s]` marks shards whose
  // part objects `next` already owns (copied or rebuilt — everything else
  // is still structurally shared with the published version and must be
  // copied before growing). Requires writer_mu_ (called from Append).
  void MaybeRebalance(const AttachedTable& table, ShardedTableVersion& next,
                      const Encryptor& encryptor, std::vector<char>& rebuilt);

  // The key-range arm of MaybeRebalance: policy-mediated boundary moves.
  // Instead of carving row-groups off the hottest shard's tail for an
  // arbitrary recipient, the donor sheds a boundary SEGMENT — its lowest or
  // highest clustering keys — to a key-space neighbor (shard index order ==
  // key order), so owning ranges stay contiguous and routable. Moved rows
  // re-encrypt into the recipient's identifier space via the canonical
  // append path and the donor's remainder into a fresh slot, exactly like
  // the hash arm; `next`'s boundary metadata is updated alongside the parts
  // it describes, so the published version is self-consistent.
  void MaybeRebalanceKeyRange(const AttachedTable& table, ShardedTableVersion& next,
                              const Encryptor& encryptor, std::vector<char>& rebuilt);

  const ExecutionContext* context_;
  size_t shards_;
  std::shared_ptr<TranslatedPlanCache> plan_cache_;
  // Shape-plan memo for the prepared path when no external cache was
  // installed (mirrors SeabedBackend::own_plan_cache_; the ad-hoc path
  // ignores it).
  TranslatedPlanCache own_plan_cache_{256};
  std::vector<Server> servers_;
  RebalanceStats rebalance_stats_;  // guarded by writer_mu_

  mutable EpochDomain epochs_;
  // Serializes Prepare/Append/EnsureReplica (version builders). Never held
  // by the read path: Execute pins a version through `epochs_` and runs
  // lock-free, so appends and queries overlap freely.
  mutable std::mutex writer_mu_;
  mutable std::mutex states_mu_;  // guards the states_ map shape only
  std::map<std::string, std::unique_ptr<TableState>> states_;
  // Fan-out pool shared by all queries of this backend (shards run
  // concurrently; each shard's scan then parallelizes on the cluster model).
  mutable ThreadPool pool_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SHARDED_BACKEND_H_
