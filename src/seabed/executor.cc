#include "src/seabed/executor.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/query/plain_executor.h"
#include "src/seabed/caching_backend.h"
#include "src/seabed/client.h"
#include "src/seabed/sharded_backend.h"

namespace seabed {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPlain:
      return "plain";
    case BackendKind::kSeabed:
      return "seabed";
    case BackendKind::kPaillier:
      return "paillier";
    case BackendKind::kShardedSeabed:
      return "sharded-seabed";
    case BackendKind::kCachingSeabed:
      return "caching-seabed";
  }
  return "?";
}

AttachedTable& TableCatalog::Add(AttachedTable table) {
  SEABED_CHECK_MSG(tables_.find(table.name) == tables_.end(),
                   "table " << table.name << " attached twice");
  const std::string name = table.name;
  return tables_.emplace(name, std::move(table)).first->second;
}

const AttachedTable& TableCatalog::Get(const std::string& name) const {
  const auto it = tables_.find(name);
  SEABED_CHECK_MSG(it != tables_.end(), "table " << name << " is not attached to the session");
  return it->second;
}

AttachedTable& TableCatalog::GetMutable(const std::string& name) {
  const auto it = tables_.find(name);
  SEABED_CHECK_MSG(it != tables_.end(), "table " << name << " is not attached to the session");
  return it->second;
}

const AttachedTable* TableCatalog::Find(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Executor::~Executor() = default;

void GrowPlainTable(Table& dst, const Table& src, const Table* shared_with) {
  for (const std::string& name : dst.column_names()) {
    const ColumnPtr& col = dst.GetColumn(name);
    if (shared_with != nullptr && shared_with->HasColumn(name) &&
        shared_with->GetColumn(name).get() == col.get()) {
      continue;
    }
    const ColumnPtr& from = src.GetColumn(name);
    SEABED_CHECK_MSG(from->type() == col->type(), "append schema mismatch on " << name);
    if (col->type() == ColumnType::kInt64) {
      auto* d = static_cast<Int64Column*>(col.get());
      const auto* s = static_cast<const Int64Column*>(from.get());
      for (size_t row = 0; row < src.NumRows(); ++row) {
        d->Append(s->Get(row));
      }
    } else {
      SEABED_CHECK_MSG(col->type() == ColumnType::kString,
                       "append supports plaintext int/string columns only");
      auto* d = static_cast<StringColumn*>(col.get());
      const auto* s = static_cast<const StringColumn*>(from.get());
      for (size_t row = 0; row < src.NumRows(); ++row) {
        d->Append(s->Get(row));
      }
    }
  }
}

std::shared_ptr<Table> CloneTable(const Table& src) {
  auto out = std::make_shared<Table>(src.name());
  for (const std::string& name : src.column_names()) {
    const ColumnPtr& col = src.GetColumn(name);
    if (col->type() == ColumnType::kInt64) {
      auto c = std::make_shared<Int64Column>();
      const auto* s = static_cast<const Int64Column*>(col.get());
      for (size_t i = 0; i < src.NumRows(); ++i) {
        c->Append(s->Get(i));
      }
      out->AddColumn(name, std::move(c));
    } else {
      SEABED_CHECK_MSG(col->type() == ColumnType::kString,
                       "clone supports plaintext int/string columns only (" << name << ")");
      auto c = std::make_shared<StringColumn>();
      const auto* s = static_cast<const StringColumn*>(col.get());
      for (size_t i = 0; i < src.NumRows(); ++i) {
        c->Append(s->Get(i));
      }
      out->AddColumn(name, std::move(c));
    }
  }
  return out;
}

// --- NoEnc -------------------------------------------------------------------

void PlainExecutorBackend::Prepare(AttachedTable& table) {
  (void)table;  // plaintext execution needs no preparation
}

void PlainExecutorBackend::Append(AttachedTable& table, const Table& new_rows) {
  GrowPlainTable(*table.plain, new_rows, nullptr);
}

ResultSet PlainExecutorBackend::Execute(const Query& query, QueryStats* stats) {
  const AttachedTable& fact = context_->catalog->Get(query.table);
  const Table* right = nullptr;
  if (query.join.has_value()) {
    right = context_->catalog->Get(query.join->right_table).plain.get();
  }
  return ExecutePlain(*fact.plain, query, *context_->cluster, right, stats);
}

// --- Seabed ------------------------------------------------------------------

void SeabedBackend::Prepare(AttachedTable& table) {
  const Encryptor encryptor(*context_->keys);
  table.enc = encryptor.Encrypt(*table.plain, table.schema, table.plan);
  server_.RegisterTable(table.enc->table);
}

void SeabedBackend::Append(AttachedTable& table, const Table& new_rows) {
  SEABED_CHECK_MSG(table.enc.has_value(), "append to unprepared table " << table.name);
  // AppendRows grows the non-sensitive columns the encrypted table shares
  // with the plaintext one; grow only the rest here.
  GrowPlainTable(*table.plain, new_rows, table.enc->table.get());
  const Encryptor encryptor(*context_->keys);
  encryptor.AppendRows(*table.enc, new_rows, table.schema);
}

ResultSet SeabedBackend::Execute(const Query& query, QueryStats* stats) {
  const AttachedTable& fact = context_->catalog->Get(query.table);
  SEABED_CHECK_MSG(fact.enc.has_value(), "table " << fact.name << " was not prepared");

  Stopwatch translate_sw;
  TranslatorOptions topts = context_->translator;
  topts.cluster_workers = context_->cluster->num_workers();

  // Joined-table resolution: the translator leaves the plaintext name; the
  // server's registry is keyed by the encrypted table name. Resolved before
  // the plan-cache probe because decryption needs `right_db` on hits too.
  const EncryptedDatabase* right_db = nullptr;
  if (query.join.has_value()) {
    const AttachedTable& right = context_->catalog->Get(query.join->right_table);
    SEABED_CHECK_MSG(right.enc.has_value(), "joined table " << right.name << " not prepared");
    right_db = &*right.enc;
  }

  std::shared_ptr<const TranslatedQuery> tq;
  bool plan_cache_hit = false;
  std::string plan_key;
  if (plan_cache_ != nullptr) {
    plan_key = PlanCacheKey(query, topts);
    tq = plan_cache_->Find(plan_key);
    plan_cache_hit = tq != nullptr;
  }
  if (tq == nullptr) {
    const Translator translator(*fact.enc, *context_->keys);
    auto fresh = std::make_shared<TranslatedQuery>(translator.Translate(query, topts));
    if (fresh->server.join.has_value()) {
      // The resolution is deterministic (encrypted table names are fixed at
      // Prepare), so the cached plan carries it.
      fresh->server.join->right_table = right_db->table->name();
    }
    tq = std::move(fresh);
    if (plan_cache_ != nullptr) {
      plan_cache_->Insert(plan_key, tq);
    }
  }
  const double translate_seconds = translate_sw.ElapsedSeconds();

  // Round one (adaptive two-round execution): evaluate the plan's probe
  // section against the server's row-group summaries, then scan only the
  // surviving groups — or skip round two entirely when nothing can match.
  // kAuto pays the probe only when the planner's selectivity estimate (or an
  // explicit client two-round hint) predicts round two will skip most rows.
  const ProbeOptions& popts = context_->probe;
  bool probe_used = false;
  ServerProbeResult probe;
  if (popts.mode != ProbeMode::kOff && tq->probe.prunable) {
    bool go = popts.mode == ProbeMode::kForced || query.needs_two_round_trips;
    if (!go) {
      go = EstimateFilterSelectivity(query, fact.schema) <= popts.auto_selectivity_threshold;
    }
    if (go) {
      probe = server_.Probe(tq->server.table, tq->probe, popts.row_group_size);
      probe_used = true;
    }
  }

  EncryptedResponse response;
  if (probe_used && probe.surviving.empty()) {
    // Zero-match short-circuit: no row group can satisfy the predicates, so
    // round two never runs. An empty response decrypts to the same rows a
    // zero-match scan produces (global aggregates still yield the SQL zero
    // row).
    response = EncryptedResponse{};
  } else {
    response = server_.Execute(tq->server, *context_->cluster, nullptr,
                               probe_used ? &probe.surviving : nullptr);
  }
  const Client client(*fact.enc, *context_->keys);
  ResultSet result = client.Decrypt(response, *tq, *context_->cluster, right_db, stats);
  if (stats != nullptr) {
    stats->translate_seconds = translate_seconds;
    stats->plan_cache_hit = plan_cache_hit;
    stats->probe_used = probe_used;
    stats->probe_seconds = probe.seconds;
    stats->row_groups_total = probe.total_groups;
    stats->row_groups_pruned = probe.pruned_groups;
    stats->server_seconds += probe.seconds;  // round one is server latency too
  }
  return result;
}

// --- Paillier baseline -------------------------------------------------------

PaillierBackend::PaillierBackend(const ExecutionContext* context,
                                 const PaillierBackendOptions& options)
    : context_(context),
      rng_(options.seed),
      paillier_(Paillier::GenerateKey(rng_, options.modulus_bits)),
      randomness_pool_size_(options.randomness_pool_size) {}

void PaillierBackend::Prepare(AttachedTable& table) {
  const Encryptor encryptor(*context_->keys);
  table.enc = encryptor.EncryptPaillierBaseline(*table.plain, table.schema, table.plan,
                                                paillier_, rng_, randomness_pool_size_);
}

void PaillierBackend::Append(AttachedTable& table, const Table& new_rows) {
  // The baseline has no incremental path (Paillier construction dominates
  // anyway — Table 1); grow the plaintext table and re-encrypt it.
  GrowPlainTable(*table.plain, new_rows, nullptr);
  Prepare(table);
}

ResultSet PaillierBackend::Execute(const Query& query, QueryStats* stats) {
  const AttachedTable& fact = context_->catalog->Get(query.table);
  SEABED_CHECK_MSG(fact.enc.has_value(), "table " << fact.name << " was not prepared");

  Stopwatch translate_sw;
  TranslatorOptions topts = context_->translator;
  topts.cluster_workers = context_->cluster->num_workers();
  topts.enable_group_inflation = false;  // a Seabed-only optimization
  const Translator translator(*fact.enc, *context_->keys);
  const TranslatedQuery tq = translator.Translate(query, topts);

  const EncryptedDatabase* right_db = nullptr;
  const Table* right_table = nullptr;
  if (tq.server.join.has_value()) {
    const AttachedTable& right = context_->catalog->Get(query.join->right_table);
    SEABED_CHECK_MSG(right.enc.has_value(), "joined table " << right.name << " not prepared");
    right_db = &*right.enc;
    right_table = right.enc->table.get();
  }
  const double translate_seconds = translate_sw.ElapsedSeconds();

  const PaillierBaseline baseline(paillier_, context_->keys);
  ResultSet result =
      baseline.Execute(*fact.enc, tq, *context_->cluster, right_db, right_table, stats);
  if (stats != nullptr) {
    stats->translate_seconds = translate_seconds;
  }
  return result;
}

std::unique_ptr<Executor> MakeExecutor(BackendKind kind, const ExecutionContext* context,
                                       const PaillierBackendOptions& paillier_options,
                                       size_t shards, const CacheOptions& cache) {
  switch (kind) {
    case BackendKind::kPlain:
      return std::make_unique<PlainExecutorBackend>(context);
    case BackendKind::kSeabed:
      return std::make_unique<SeabedBackend>(context);
    case BackendKind::kPaillier:
      return std::make_unique<PaillierBackend>(context, paillier_options);
    case BackendKind::kShardedSeabed:
      return std::make_unique<ShardedSeabedBackend>(context, shards);
    case BackendKind::kCachingSeabed: {
      SEABED_CHECK_MSG(cache.inner != BackendKind::kCachingSeabed,
                       "a caching backend cannot wrap another caching backend");
      return std::make_unique<CachingSeabedBackend>(
          cache, MakeExecutor(cache.inner, context, paillier_options, shards, cache));
    }
  }
  SEABED_CHECK_MSG(false, "unknown backend kind");
  return nullptr;
}

}  // namespace seabed
