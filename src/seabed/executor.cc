#include "src/seabed/executor.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/query/plain_executor.h"
#include "src/seabed/caching_backend.h"
#include "src/seabed/client.h"
#include "src/seabed/sharded_backend.h"

namespace seabed {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPlain:
      return "plain";
    case BackendKind::kSeabed:
      return "seabed";
    case BackendKind::kPaillier:
      return "paillier";
    case BackendKind::kShardedSeabed:
      return "sharded-seabed";
    case BackendKind::kCachingSeabed:
      return "caching-seabed";
  }
  return "?";
}

AttachedTable& TableCatalog::Add(AttachedTable table) {
  SEABED_CHECK_MSG(tables_.find(table.name) == tables_.end(),
                   "table " << table.name << " attached twice");
  const std::string name = table.name;
  return tables_.emplace(name, std::move(table)).first->second;
}

const AttachedTable& TableCatalog::Get(const std::string& name) const {
  const auto it = tables_.find(name);
  SEABED_CHECK_MSG(it != tables_.end(), "table " << name << " is not attached to the session");
  return it->second;
}

AttachedTable& TableCatalog::GetMutable(const std::string& name) {
  const auto it = tables_.find(name);
  SEABED_CHECK_MSG(it != tables_.end(), "table " << name << " is not attached to the session");
  return it->second;
}

const AttachedTable* TableCatalog::Find(const std::string& name) const {
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Executor::~Executor() = default;

ResultSet Executor::ExecutePrepared(const PreparedQuery& prepared,
                                    std::span<const Value> params, QueryStats* stats) {
  SEABED_CHECK_MSG(prepared.valid(), "ExecutePrepared on an invalid (default) handle");
  Stopwatch bind_sw;
  const Query bound = prepared.Bind(params);
  const double bind_seconds = bind_sw.ElapsedSeconds();
  ResultSet result = Execute(bound, stats);
  if (stats != nullptr) {
    stats->prepared = true;
    stats->bind_seconds = bind_seconds;
  }
  return result;
}

void GrowPlainTable(Table& dst, const Table& src, const Table* shared_with) {
  for (const std::string& name : dst.column_names()) {
    const ColumnPtr& col = dst.GetColumn(name);
    if (shared_with != nullptr && shared_with->HasColumn(name) &&
        shared_with->GetColumn(name).get() == col.get()) {
      continue;
    }
    const ColumnPtr& from = src.GetColumn(name);
    SEABED_CHECK_MSG(from->type() == col->type(), "append schema mismatch on " << name);
    if (col->type() == ColumnType::kInt64) {
      auto* d = static_cast<Int64Column*>(col.get());
      const auto* s = static_cast<const Int64Column*>(from.get());
      for (size_t row = 0; row < src.NumRows(); ++row) {
        d->Append(s->Get(row));
      }
    } else {
      SEABED_CHECK_MSG(col->type() == ColumnType::kString,
                       "append supports plaintext int/string columns only");
      auto* d = static_cast<StringColumn*>(col.get());
      const auto* s = static_cast<const StringColumn*>(from.get());
      for (size_t row = 0; row < src.NumRows(); ++row) {
        d->Append(s->Get(row));
      }
    }
  }
}

std::shared_ptr<Table> CloneTable(const Table& src) {
  auto out = std::make_shared<Table>(src.name());
  for (const std::string& name : src.column_names()) {
    const ColumnPtr& col = src.GetColumn(name);
    if (col->type() == ColumnType::kInt64) {
      auto c = std::make_shared<Int64Column>();
      const auto* s = static_cast<const Int64Column*>(col.get());
      for (size_t i = 0; i < src.NumRows(); ++i) {
        c->Append(s->Get(i));
      }
      out->AddColumn(name, std::move(c));
    } else {
      SEABED_CHECK_MSG(col->type() == ColumnType::kString,
                       "clone supports plaintext int/string columns only (" << name << ")");
      auto c = std::make_shared<StringColumn>();
      const auto* s = static_cast<const StringColumn*>(col.get());
      for (size_t i = 0; i < src.NumRows(); ++i) {
        c->Append(s->Get(i));
      }
      out->AddColumn(name, std::move(c));
    }
  }
  return out;
}

// One real-measured unit of ingest work, priced on the synthetic fabric: the
// batch splits into row-range tasks round-robined over the modeled workers,
// exactly Cluster::RunJob's accounting. The work itself ran sequentially on
// the host (encryption streams append to one destination column), so the
// measured compute is divided rather than re-run.
JobStats ModelIngestJob(const Cluster& cluster, double compute_seconds, size_t num_tasks) {
  const ClusterConfig& cfg = cluster.config();
  const size_t workers = std::max<size_t>(1, cfg.num_workers);
  JobStats stats;
  stats.num_tasks = std::max<size_t>(1, num_tasks);
  stats.total_compute_seconds = compute_seconds;
  const size_t tasks_per_worker = (stats.num_tasks + workers - 1) / workers;
  const double compute_per_worker = compute_seconds / static_cast<double>(workers);
  stats.server_seconds = cfg.job_overhead_seconds +
                         static_cast<double>(tasks_per_worker) * cfg.task_overhead_seconds +
                         compute_per_worker;
  stats.worker_seconds.assign(workers, compute_per_worker);
  return stats;
}

// Task granularity for modeled ingest jobs: the row-range a fabric worker
// would encrypt as one task.
constexpr size_t kIngestTaskRows = 8192;

static size_t IngestTasks(const Table& new_rows) {
  return (new_rows.NumRows() + kIngestTaskRows - 1) / kIngestTaskRows;
}

// --- NoEnc -------------------------------------------------------------------

void PlainExecutorBackend::Prepare(AttachedTable& table) {
  (void)table;  // plaintext execution needs no preparation
}

void PlainExecutorBackend::Append(AttachedTable& table, const Table& new_rows,
                                  JobStats* stats) {
  Stopwatch sw;
  GrowPlainTable(*table.plain, new_rows, nullptr);
  if (stats != nullptr) {
    *stats = ModelIngestJob(*context_->cluster, sw.ElapsedSeconds(), IngestTasks(new_rows));
  }
}

ResultSet PlainExecutorBackend::Execute(const Query& query, QueryStats* stats) {
  const AttachedTable& fact = context_->catalog->Get(query.table);
  const Table* right = nullptr;
  if (query.join.has_value()) {
    right = context_->catalog->Get(query.join->right_table).plain.get();
  }
  return ExecutePlain(*fact.plain, query, *context_->cluster, right, stats);
}

// --- Seabed ------------------------------------------------------------------

SeabedBackend::TableState& SeabedBackend::StateFor(const std::string& name) {
  std::lock_guard<std::mutex> lock(states_mu_);
  std::unique_ptr<TableState>& slot = states_[name];
  if (slot == nullptr) {
    slot = std::make_unique<TableState>();
  }
  return *slot;
}

const TableVersion* SeabedBackend::CurrentVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(states_mu_);
  const auto it = states_.find(name);
  if (it == states_.end()) {
    return nullptr;
  }
  return it->second->current.load(std::memory_order_seq_cst);
}

uint64_t SeabedBackend::probe_index_builds(const std::string& table) const {
  EpochDomain::Guard guard(epochs_);
  const TableVersion* version = CurrentVersion(table);
  return version == nullptr ? 0 : version->probe.builds();
}

void SeabedBackend::Prepare(AttachedTable& table) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  const Encryptor encryptor(*context_->keys);
  auto version = std::make_shared<TableVersion>();
  version->enc = encryptor.Encrypt(*table.plain, table.schema, table.plan);
  table.enc = version->enc;  // session-visible client view (shares the table)

  TableState& state = StateFor(table.name);
  std::shared_ptr<const TableVersion> old = std::move(state.owner);
  state.owner = std::move(version);
  state.current.store(state.owner.get(), std::memory_order_seq_cst);
  if (old != nullptr) {
    epochs_.Retire(std::move(old));  // re-attach: drain readers of the old one
  }
}

void SeabedBackend::Append(AttachedTable& table, const Table& new_rows, JobStats* stats) {
  SEABED_CHECK_MSG(table.enc.has_value(), "append to unprepared table " << table.name);
  std::lock_guard<std::mutex> writer(writer_mu_);
  Stopwatch sw;
  TableState& state = StateFor(table.name);
  const std::shared_ptr<const TableVersion> old = state.owner;

  // Build the successor version off to the side: copy, grow the copy, seed
  // its probe summaries from the parent. Readers keep scanning `old`.
  auto next = std::make_shared<TableVersion>();
  next->enc = CopyEncryptedDatabase(old->enc);
  const Encryptor encryptor(*context_->keys);
  encryptor.AppendRows(next->enc, new_rows, table.schema);
  next->probe.SeedFrom(old->probe, *next->enc.table);

  // The attached plaintext table has no snapshot readers (encrypted Execute
  // never touches it); grow it in place for the session's own accessors.
  GrowPlainTable(*table.plain, new_rows, nullptr);
  table.enc = next->enc;

  // Publish, then retire: any reader that misses the new pointer is pinned
  // at an epoch that keeps `old` alive until its guard drops.
  state.current.store(next.get(), std::memory_order_seq_cst);
  state.owner = std::move(next);
  epochs_.Retire(old);
  if (stats != nullptr) {
    *stats = ModelIngestJob(*context_->cluster, sw.ElapsedSeconds(), IngestTasks(new_rows));
  }
}

ResultSet SeabedBackend::Execute(const Query& query, QueryStats* stats) {
  const AttachedTable& fact = context_->catalog->Get(query.table);

  // Pin this query's snapshot: every table pointer resolved below stays
  // alive until the guard drops, and all of them belong to versions
  // published before this point — an overlapping append is invisible.
  EpochDomain::Guard guard(epochs_);
  const TableVersion* fver = CurrentVersion(query.table);
  SEABED_CHECK_MSG(fver != nullptr, "table " << fact.name << " was not prepared");

  Stopwatch translate_sw;
  TranslatorOptions topts = context_->translator;
  topts.cluster_workers = context_->cluster->num_workers();

  // Joined-table resolution, from the joined table's own published version.
  // Resolved before the plan-cache probe because decryption needs `right_db`
  // on hits too.
  const EncryptedDatabase* right_db = nullptr;
  if (query.join.has_value()) {
    const TableVersion* rver = CurrentVersion(query.join->right_table);
    SEABED_CHECK_MSG(rver != nullptr,
                     "joined table " << query.join->right_table << " not prepared");
    right_db = &rver->enc;
  }

  std::shared_ptr<const TranslatedQuery> tq;
  bool plan_cache_hit = false;
  std::string plan_key;
  if (plan_cache_ != nullptr) {
    plan_key = PlanCacheKey(query, topts);
    tq = plan_cache_->Find(plan_key);
    plan_cache_hit = tq != nullptr;
  }
  if (tq == nullptr) {
    const Translator translator(fver->enc, *context_->keys);
    auto fresh = std::make_shared<TranslatedQuery>(translator.Translate(query, topts));
    if (fresh->server.join.has_value()) {
      // The resolution is deterministic (encrypted table names are fixed at
      // Prepare), so the cached plan carries it.
      fresh->server.join->right_table = right_db->table->name();
    }
    tq = std::move(fresh);
    if (plan_cache_ != nullptr) {
      plan_cache_->Insert(plan_key, tq);
    }
  }
  const double translate_seconds = translate_sw.ElapsedSeconds();

  ResultSet result = RunTranslated(query, fact, fver, right_db, *tq, stats);
  if (stats != nullptr) {
    stats->translate_seconds = translate_seconds;
    stats->plan_cache_hit = plan_cache_hit;
  }
  return result;
}

ResultSet SeabedBackend::RunTranslated(const Query& query, const AttachedTable& fact,
                                       const TableVersion* fver,
                                       const EncryptedDatabase* right_db,
                                       const TranslatedQuery& tq, QueryStats* stats) {
  // Round one (adaptive two-round execution): evaluate the plan's probe
  // section against the pinned version's row-group summaries, then scan only
  // the surviving groups — or skip round two entirely when nothing can
  // match. kAuto pays the probe only when the planner's selectivity estimate
  // (or an explicit client two-round hint) predicts round two will skip most
  // rows.
  const ProbeOptions& popts = context_->probe;
  bool probe_used = false;
  ServerProbeResult probe;
  if (popts.mode != ProbeMode::kOff && tq.probe.prunable) {
    bool go = popts.mode == ProbeMode::kForced || query.needs_two_round_trips;
    if (!go) {
      go = EstimateFilterSelectivity(query, fact.schema) <= popts.auto_selectivity_threshold;
    }
    if (go) {
      probe = fver->probe.Probe(*fver->enc.table, tq.probe, popts.row_group_size);
      probe_used = true;
    }
  }

  EncryptedResponse response;
  if (probe_used && probe.surviving.empty()) {
    // Zero-match short-circuit: no row group can satisfy the predicates, so
    // round two never runs. An empty response decrypts to the same rows a
    // zero-match scan produces (global aggregates still yield the SQL zero
    // row).
    response = EncryptedResponse{};
  } else {
    response = server_.Execute(tq.server, *context_->cluster, fver->enc.table.get(),
                               right_db == nullptr ? nullptr : right_db->table.get(),
                               probe_used ? &probe.surviving : nullptr);
  }
  const Client client(fver->enc, *context_->keys);
  ResultSet result = client.Decrypt(response, tq, *context_->cluster, right_db, stats);
  if (stats != nullptr) {
    stats->probe_used = probe_used;
    stats->probe_seconds = probe.seconds;
    stats->row_groups_total = probe.total_groups;
    stats->row_groups_pruned = probe.pruned_groups;
    stats->server_seconds += probe.seconds;  // round one is server latency too
  }
  return result;
}

ResultSet SeabedBackend::ExecutePrepared(const PreparedQuery& prepared,
                                         std::span<const Value> params, QueryStats* stats) {
  SEABED_CHECK_MSG(prepared.valid(), "ExecutePrepared on an invalid (default) handle");
  if (!prepared.parameterized()) {
    // A placeholder rides on a SPLASHE column: its rewrite depends on the
    // literal value, so the shape cannot be translated once. Bind, then run
    // the ad-hoc path (the base implementation reports prepared/bind stats).
    return Executor::ExecutePrepared(prepared, params, stats);
  }
  const Query& shape = prepared.shape();
  const AttachedTable& fact = context_->catalog->Get(shape.table);

  // The bound Query still exists per call — the probe cost gate estimates
  // selectivity from the literals — but it is a plain struct copy, not a
  // parse or a translation.
  Stopwatch bind_sw;
  const Query bound = prepared.Bind(params);
  double bind_seconds = bind_sw.ElapsedSeconds();

  EpochDomain::Guard guard(epochs_);
  const TableVersion* fver = CurrentVersion(shape.table);
  SEABED_CHECK_MSG(fver != nullptr, "table " << fact.name << " was not prepared");

  Stopwatch translate_sw;
  TranslatorOptions topts = context_->translator;
  topts.cluster_workers = context_->cluster->num_workers();

  const EncryptedDatabase* right_db = nullptr;
  if (shape.join.has_value()) {
    const TableVersion* rver = CurrentVersion(shape.join->right_table);
    SEABED_CHECK_MSG(rver != nullptr,
                     "joined table " << shape.join->right_table << " not prepared");
    right_db = &rver->enc;
  }

  // One translation per shape: the handle carries the fingerprint half of
  // the plan key, so a warm call is one map lookup away from its plan.
  TranslatedPlanCache& cache = plan_cache_ != nullptr ? *plan_cache_ : own_plan_cache_;
  const std::string plan_key =
      prepared.plan_key_base() + PlanCacheKeySuffix(shape.expected_groups, topts);
  std::shared_ptr<const TranslatedQuery> shape_tq = cache.Find(plan_key);
  const bool plan_cache_hit = shape_tq != nullptr;
  if (shape_tq == nullptr) {
    const Translator translator(fver->enc, *context_->keys);
    auto fresh = std::make_shared<TranslatedQuery>(translator.Translate(shape, topts));
    if (fresh->server.join.has_value()) {
      fresh->server.join->right_table = right_db->table->name();
    }
    shape_tq = std::move(fresh);
    cache.Insert(plan_key, shape_tq);
  }
  const double translate_seconds = translate_sw.ElapsedSeconds();

  Stopwatch plan_bind_sw;
  const TranslatedQuery bound_tq = BindTranslatedQuery(*shape_tq, params);
  bind_seconds += plan_bind_sw.ElapsedSeconds();

  ResultSet result = RunTranslated(bound, fact, fver, right_db, bound_tq, stats);
  if (stats != nullptr) {
    stats->translate_seconds = translate_seconds;
    stats->plan_cache_hit = plan_cache_hit;
    stats->prepared = true;
    stats->bind_seconds = bind_seconds;
  }
  return result;
}

// --- Paillier baseline -------------------------------------------------------

PaillierBackend::PaillierBackend(const ExecutionContext* context,
                                 const PaillierBackendOptions& options)
    : context_(context),
      rng_(options.seed),
      paillier_(Paillier::GenerateKey(rng_, options.modulus_bits)),
      randomness_pool_size_(options.randomness_pool_size) {}

void PaillierBackend::Prepare(AttachedTable& table) {
  const Encryptor encryptor(*context_->keys);
  table.enc = encryptor.EncryptPaillierBaseline(*table.plain, table.schema, table.plan,
                                                paillier_, rng_, randomness_pool_size_);
}

void PaillierBackend::Append(AttachedTable& table, const Table& new_rows,
                             JobStats* stats) {
  // The baseline has no incremental path (Paillier construction dominates
  // anyway — Table 1); grow the plaintext table and re-encrypt it. The
  // modeled ingest job prices that full rebuild, so the whole table counts
  // as the task set.
  Stopwatch sw;
  GrowPlainTable(*table.plain, new_rows, nullptr);
  Prepare(table);
  if (stats != nullptr) {
    *stats = ModelIngestJob(*context_->cluster, sw.ElapsedSeconds(), IngestTasks(*table.plain));
  }
}

ResultSet PaillierBackend::Execute(const Query& query, QueryStats* stats) {
  const AttachedTable& fact = context_->catalog->Get(query.table);
  SEABED_CHECK_MSG(fact.enc.has_value(), "table " << fact.name << " was not prepared");

  Stopwatch translate_sw;
  TranslatorOptions topts = context_->translator;
  topts.cluster_workers = context_->cluster->num_workers();
  topts.enable_group_inflation = false;  // a Seabed-only optimization
  const Translator translator(*fact.enc, *context_->keys);
  const TranslatedQuery tq = translator.Translate(query, topts);

  const EncryptedDatabase* right_db = nullptr;
  const Table* right_table = nullptr;
  if (tq.server.join.has_value()) {
    const AttachedTable& right = context_->catalog->Get(query.join->right_table);
    SEABED_CHECK_MSG(right.enc.has_value(), "joined table " << right.name << " not prepared");
    right_db = &*right.enc;
    right_table = right.enc->table.get();
  }
  const double translate_seconds = translate_sw.ElapsedSeconds();

  const PaillierBaseline baseline(paillier_, context_->keys);
  ResultSet result =
      baseline.Execute(*fact.enc, tq, *context_->cluster, right_db, right_table, stats);
  if (stats != nullptr) {
    stats->translate_seconds = translate_seconds;
  }
  return result;
}

std::unique_ptr<Executor> MakeExecutor(BackendKind kind, const ExecutionContext* context,
                                       const PaillierBackendOptions& paillier_options,
                                       size_t shards, const CacheOptions& cache) {
  switch (kind) {
    case BackendKind::kPlain:
      return std::make_unique<PlainExecutorBackend>(context);
    case BackendKind::kSeabed:
      return std::make_unique<SeabedBackend>(context);
    case BackendKind::kPaillier:
      return std::make_unique<PaillierBackend>(context, paillier_options);
    case BackendKind::kShardedSeabed:
      return std::make_unique<ShardedSeabedBackend>(context, shards);
    case BackendKind::kCachingSeabed: {
      SEABED_CHECK_MSG(cache.inner != BackendKind::kCachingSeabed,
                       "a caching backend cannot wrap another caching backend");
      return std::make_unique<CachingSeabedBackend>(
          cache, MakeExecutor(cache.inner, context, paillier_options, shards, cache));
    }
  }
  SEABED_CHECK_MSG(false, "unknown backend kind");
  return nullptr;
}

}  // namespace seabed
