// A standalone, thread-safe, cross-session result cache.
//
// Lifted out of CachingSeabedBackend (which is now a thin adapter over it)
// so that many Sessions — or a whole seabed::Service fleet — can attach to
// ONE cache via SessionOptions::cache.shared: a dashboard answered warm in
// session A stays warm for sessions B..N, and any session's Append
// invalidates the table for all of them.
//
// Semantics are exactly the PR 3/PR 7 cache: entries keyed by
// Query::Fingerprint(kExact), LRU eviction under an entry budget and a byte
// budget, per-table invalidation, and an atomic invalidation EPOCH fencing
// miss-inserts — Find returns the epoch observed at lookup time, and Insert
// drops the entry when the epoch has advanced since, so a result computed
// over a pre-append snapshot never outlives the append.
//
// The cache stores final DECRYPTED rows and therefore lives on the client
// side of the trust boundary; sharing it across sessions is sound only when
// those sessions belong to the same trust domain (same master key — e.g. the
// proxy process the paper places all clients behind).
#ifndef SEABED_SRC_SEABED_RESULT_CACHE_H_
#define SEABED_SRC_SEABED_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/query/query.h"

namespace seabed {

// Rough client-memory footprint of a cached ResultSet, used for the byte
// budget (value payloads + per-row/-string overheads).
size_t EstimateResultBytes(const ResultSet& result);

class SharedResultCache {
 public:
  struct Limits {
    size_t max_entries = 1024;
    size_t max_bytes = 64u << 20;
  };

  SharedResultCache();  // default Limits
  explicit SharedResultCache(Limits limits);

  struct Lookup {
    // The cached payload, or null on a miss. Immutable and shared: callers
    // copy rows outside any lock, and a hit outlives concurrent eviction.
    std::shared_ptr<const ResultSet> result;
    // Result-shape stats of the cold run, replayed into hit stats.
    size_t result_bytes = 0;
    uint64_t rows_touched = 0;
    // Invalidation epoch observed under the lookup's lock; pass to Insert.
    uint64_t epoch = 0;
  };

  // Probes the cache (counting a hit or miss, touching the LRU on a hit).
  Lookup Find(const std::string& key);

  // Publishes a miss's result. `tables` lists what the query read (fact +
  // join right side) for per-table invalidation; `lookup_epoch` is the epoch
  // Find returned — when any invalidation ran in between, the insert is
  // dropped (the result may predate the invalidating append).
  void Insert(const std::string& key, std::shared_ptr<const ResultSet> result,
              size_t result_bytes, uint64_t rows_touched, std::vector<std::string> tables,
              uint64_t lookup_epoch);

  // Drops entries that read `table`; bumps the epoch.
  void InvalidateTable(const std::string& table);
  // Drops everything; bumps the epoch.
  void InvalidateAll();

  // --- observability ----------------------------------------------------------
  uint64_t hits() const;
  uint64_t misses() const;
  size_t entries() const;
  size_t bytes() const;

 private:
  struct Entry {
    std::shared_ptr<const ResultSet> result;
    size_t result_bytes = 0;
    uint64_t rows_touched = 0;
    size_t bytes = 0;                      // EstimateResultBytes at insert time
    std::vector<std::string> tables;       // fact + join right side
    std::list<std::string>::iterator lru;  // position in lru_ (front = hottest)
  };

  // Both require `mu_` held.
  void InsertLocked(const std::string& key, Entry entry);
  void EvictLocked();

  const Limits limits_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> results_;
  std::list<std::string> lru_;  // most-recently-used at the front
  size_t total_bytes_ = 0;
  // Invalidation epoch, fencing misses against invalidation (see file
  // comment). Atomic with acquire/release ordering: with a snapshot-isolated
  // backend an append's invalidation races the miss path, and the fence must
  // be visible without relying on `mu_` alone — the release increment
  // happens after the backend published its post-append version, so a miss
  // whose acquire load still saw the old epoch pinned the old version and is
  // dropped.
  std::atomic<uint64_t> epoch_{0};
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_RESULT_CACHE_H_
