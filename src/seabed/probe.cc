#include "src/seabed/probe.h"

#include <algorithm>
#include <set>

#include "src/common/check.h"

namespace seabed {
namespace {

// Whether any value in [min_order, max_order] (orders of the group's min and
// max relative to the operand) can satisfy `op`. The column is a range, so a
// value of every order between the two extremes may exist in the group.
bool RangeMayMatch(CmpOp op, int min_order, int max_order) {
  switch (op) {
    case CmpOp::kEq:
      return min_order <= 0 && max_order >= 0;
    case CmpOp::kNe:
      return !(min_order == 0 && max_order == 0);
    case CmpOp::kLt:
    case CmpOp::kLe:
      return CmpOpMatchesOrder(op, min_order);
    case CmpOp::kGt:
    case CmpOp::kGe:
      return CmpOpMatchesOrder(op, max_order);
  }
  return true;
}

int IntOrder(int64_t v, int64_t operand) { return v < operand ? -1 : (v > operand ? 1 : 0); }

}  // namespace

const char* ProbeModeName(ProbeMode mode) {
  switch (mode) {
    case ProbeMode::kOff:
      return "off";
    case ProbeMode::kAuto:
      return "auto";
    case ProbeMode::kForced:
      return "forced";
  }
  return "?";
}

ServerPlan CountProbePlan(const ServerPlan& plan) {
  ServerPlan probe = plan;
  probe.aggregates.clear();
  ServerAggregate count;
  count.kind = ServerAggregate::Kind::kRowCount;
  probe.aggregates.push_back(count);
  probe.group_by.clear();
  probe.inflation = 1;
  return probe;
}

ProbeSection DeriveProbeSection(const ServerPlan& plan) {
  ProbeSection out;
  for (const ServerPredicate& pred : plan.predicates) {
    if (pred.on_right) {
      continue;  // joined-table predicates cannot exclude fact row groups
    }
    out.predicates.push_back(pred);
  }
  out.prunable = !out.predicates.empty();
  return out;
}

RowGroupSummary SummarizeRowGroup(const Table& table, RowRange range) {
  RowGroupSummary out;
  out.rows = range;
  for (const std::string& name : table.column_names()) {
    const ColumnPtr& col = table.GetColumn(name);
    switch (col->type()) {
      case ColumnType::kDet: {
        const auto* det = static_cast<const DetColumn*>(col.get());
        std::set<uint64_t> tokens;
        RowGroupSummary::TokenSet& ts = out.det[name];
        for (size_t row = range.begin; row < range.end; ++row) {
          tokens.insert(det->Get(row));
          if (tokens.size() > RowGroupSummary::kMaxDistinct) {
            ts.overflowed = true;
            break;
          }
        }
        if (!ts.overflowed) {
          ts.tokens.assign(tokens.begin(), tokens.end());
        }
        break;
      }
      case ColumnType::kOre: {
        const auto* ore = static_cast<const OreColumn*>(col.get());
        RowGroupSummary::OreRange& r = out.ore[name];
        r.min = r.max = ore->Get(range.begin);
        for (size_t row = range.begin + 1; row < range.end; ++row) {
          const OreCiphertext& ct = ore->Get(row);
          if (Ore::Less(ct, r.min)) {
            r.min = ct;
          } else if (Ore::Less(r.max, ct)) {
            r.max = ct;
          }
        }
        break;
      }
      case ColumnType::kInt64: {
        const auto* i64 = static_cast<const Int64Column*>(col.get());
        RowGroupSummary::IntRange& r = out.ints[name];
        r.min = r.max = i64->Get(range.begin);
        for (size_t row = range.begin + 1; row < range.end; ++row) {
          const int64_t v = i64->Get(row);
          r.min = std::min(r.min, v);
          r.max = std::max(r.max, v);
        }
        break;
      }
      case ColumnType::kString: {
        const auto* str = static_cast<const StringColumn*>(col.get());
        std::set<std::string> values;
        RowGroupSummary::StringSet& ss = out.strings[name];
        for (size_t row = range.begin; row < range.end; ++row) {
          values.insert(str->Get(row));
          if (values.size() > RowGroupSummary::kMaxDistinct) {
            ss.overflowed = true;
            break;
          }
        }
        if (!ss.overflowed) {
          ss.values.assign(values.begin(), values.end());
        }
        break;
      }
      case ColumnType::kAshe:
      case ColumnType::kPaillier:
        break;  // semantically opaque to the server — nothing to summarize
    }
  }
  return out;
}

bool GroupMayMatch(const RowGroupSummary& group,
                   const std::vector<ServerPredicate>& predicates) {
  for (const ServerPredicate& pred : predicates) {
    switch (pred.kind) {
      case ServerPredicate::Kind::kDetEq: {
        const auto it = group.det.find(pred.column);
        if (it == group.det.end() || it->second.overflowed) {
          break;  // unknown column or saturated set: cannot prune
        }
        const std::vector<uint64_t>& tokens = it->second.tokens;
        const bool present =
            std::binary_search(tokens.begin(), tokens.end(), pred.det_token);
        if (pred.op == CmpOp::kEq ? !present
                                  : tokens.size() == 1 && tokens.front() == pred.det_token) {
          return false;
        }
        break;
      }
      case ServerPredicate::Kind::kOreCmp: {
        const auto it = group.ore.find(pred.column);
        if (it == group.ore.end()) {
          break;
        }
        const int min_order = Ore::Compare(it->second.min, pred.ore_operand).order;
        const int max_order = Ore::Compare(it->second.max, pred.ore_operand).order;
        if (!RangeMayMatch(pred.op, min_order, max_order)) {
          return false;
        }
        break;
      }
      case ServerPredicate::Kind::kPlainInt: {
        const auto it = group.ints.find(pred.column);
        if (it == group.ints.end()) {
          break;
        }
        if (!RangeMayMatch(pred.op, IntOrder(it->second.min, pred.int_operand),
                           IntOrder(it->second.max, pred.int_operand))) {
          return false;
        }
        break;
      }
      case ServerPredicate::Kind::kPlainString: {
        const auto it = group.strings.find(pred.column);
        if (it == group.strings.end() || it->second.overflowed) {
          break;
        }
        const std::vector<std::string>& values = it->second.values;
        const bool present =
            std::binary_search(values.begin(), values.end(), pred.str_operand);
        if (pred.op == CmpOp::kEq ? !present
                                  : values.size() == 1 && values.front() == pred.str_operand) {
          return false;
        }
        break;
      }
    }
  }
  return true;
}

RowGroupIndex::RowGroupIndex(size_t group_size)
    : group_size_(group_size > 0 ? group_size : 1) {}

void RowGroupIndex::Refresh(const Table& table) {
  const size_t rows = table.NumRows();
  if (rows < rows_summarized_) {
    // The table shrank (re-attach under the same name): rebuild from scratch.
    groups_.clear();
    rows_summarized_ = 0;
  }
  if (rows == rows_summarized_) {
    return;
  }
  // Appends may have grown the trailing partial group; re-summarize it along
  // with the new rows. Only the last group can be partial, so everything
  // before it stays valid.
  if (!groups_.empty() && groups_.back().rows.size() < group_size_) {
    rows_summarized_ = groups_.back().rows.begin;
    groups_.pop_back();
  }
  for (size_t begin = rows_summarized_; begin < rows; begin += group_size_) {
    groups_.push_back(SummarizeRowGroup(table, {begin, std::min(begin + group_size_, rows)}));
  }
  rows_summarized_ = rows;
}

RowGroupIndex::PruneResult RowGroupIndex::Prune(const ProbeSection& probe) const {
  PruneResult out;
  out.total_groups = groups_.size();
  for (const RowGroupSummary& group : groups_) {
    if (!GroupMayMatch(group, probe.predicates)) {
      ++out.pruned_groups;
      continue;
    }
    if (!out.surviving.empty() && out.surviving.back().end == group.rows.begin) {
      out.surviving.back().end = group.rows.end;
    } else {
      out.surviving.push_back(group.rows);
    }
  }
  return out;
}

std::vector<std::vector<RowRange>> PartitionRanges(const std::vector<RowRange>& ranges,
                                                   size_t max_tasks) {
  std::vector<std::vector<RowRange>> tasks;
  size_t total = 0;
  for (const RowRange& r : ranges) {
    total += r.size();
  }
  if (total == 0 || max_tasks == 0) {
    return tasks;
  }
  // Don't shred a tiny pruned scan across the whole fleet: below this many
  // rows a task is pure dispatch overhead, which would eat exactly the win
  // the probe round just bought.
  constexpr size_t kMinRowsPerTask = 2048;
  max_tasks = std::min(max_tasks, std::max<size_t>(1, total / kMinRowsPerTask));
  const size_t per_task = (total + max_tasks - 1) / max_tasks;
  tasks.emplace_back();
  size_t filled = 0;  // rows assigned to the current task
  for (RowRange r : ranges) {
    while (r.size() > 0) {
      if (filled >= per_task) {
        tasks.emplace_back();
        filled = 0;
      }
      size_t take = std::min(r.size(), per_task - filled);
      if (take < r.size()) {
        // Align intra-range split points to whole 64-row bitmap words: the
        // vectorized scan fills one selection-bitmap word per 64 rows, and a
        // split mid-word would leave both neighboring tasks a partial tail
        // word where full-word kernels degrade to the masked-tail path.
        take = std::min(r.size(), (take + 63) & ~size_t{63});
      }
      tasks.back().push_back({r.begin, r.begin + take});
      r.begin += take;
      filled += take;
    }
  }
  return tasks;
}

}  // namespace seabed
