// The Paillier baseline executor — the CryptDB/Monomi-style system Seabed is
// compared against throughout the paper's evaluation.
//
// Executes a translated query over a Paillier-encrypted table: the server
// multiplies ciphertexts (homomorphic addition, ~µs of multi-precision math
// per row instead of ASHE's single native add), dimensions use the same
// DET/ORE machinery as Seabed, and the client performs one Paillier
// decryption per aggregate result. No ID lists are involved — the trade the
// paper quantifies is cheap server adds + ID lists (Seabed) versus expensive
// server adds + tiny responses (Paillier).
#ifndef SEABED_SRC_SEABED_PAILLIER_BASELINE_H_
#define SEABED_SRC_SEABED_PAILLIER_BASELINE_H_

#include "src/crypto/paillier.h"
#include "src/query/query.h"
#include "src/seabed/encryptor.h"
#include "src/seabed/translator.h"

namespace seabed {

class PaillierBaseline {
 public:
  // `keys`, when provided, lets the client side render int DET group keys
  // back to plaintext (the baseline shares DET keys with Seabed); without
  // keys the raw token is emitted.
  explicit PaillierBaseline(const Paillier& paillier, const ClientKeys* keys = nullptr)
      : paillier_(&paillier), keys_(keys) {}

  // Executes `tq` (translated against the baseline database's plan) over
  // `db.table` and decrypts the response. ASHE sum aggregates are
  // reinterpreted over the corresponding "#paillier" columns. `right_db` /
  // `right_table` supply the joined table (nullptr for non-join queries).
  // `stats`, when non-null, receives the latency breakdown of the call.
  ResultSet Execute(const EncryptedDatabase& db, const TranslatedQuery& tq,
                    const Cluster& cluster, const EncryptedDatabase* right_db,
                    const Table* right_table, QueryStats* stats) const;

 private:
  const Paillier* paillier_;
  const ClientKeys* keys_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_PAILLIER_BASELINE_H_
