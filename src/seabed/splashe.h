// SPLASHE layout computation (paper Sections 3.3, 3.4).
//
// Basic SPLASHE splays a d-valued dimension into d ASHE-encrypted indicator
// columns (and each co-queried measure into d columns). Enhanced SPLASHE
// keeps dedicated columns only for the k most frequent values and routes the
// rest through a DET "others" column whose value frequencies are equalized
// using the cells left unused by frequent-value rows.
//
// This header holds the planning math: choosing k, computing storage
// overheads (Figure 10b), and computing the DET equalization targets used by
// the encryptor.
#ifndef SEABED_SRC_SEABED_SPLASHE_H_
#define SEABED_SRC_SEABED_SPLASHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/seabed/schema.h"

namespace seabed {

// Chooses the minimum k (number of splayed values) such that the rows of the
// k frequent values provide enough "dummy" DET cells to pad every non-splayed
// value up to the frequency of the (k+1)-th value:
//
//     sum_{i<=k} n_i  >=  sum_{i>k} (n_{k+1} - n_i)
//
// `sorted_counts` must be in non-increasing order. Returns k in [0, d]; k = d
// means every value gets its own column (degenerates to basic SPLASHE) and
// can happen only for d <= 1 or uniform distributions where k < d never
// satisfies the inequality (the inequality always holds at k = d vacuously).
size_t ChooseSplayK(const std::vector<uint64_t>& sorted_counts);

// Storage expansion factor for protecting one dimension with basic SPLASHE:
// the dimension column becomes `cardinality` indicator columns, and each of
// the `num_measures` co-queried measures becomes `cardinality` columns.
// (Relative to 1 dimension column + num_measures measure columns.)
double BasicSplasheExpansion(size_t cardinality, size_t num_measures);

// Expansion factor for enhanced SPLASHE with k splayed values: k+1 indicator
// columns + 1 DET column, and k+1 columns per measure.
double EnhancedSplasheExpansion(size_t k, size_t num_measures);

// Builds the full layout for a dimension given its expected value
// distribution. `enhanced` selects enhanced vs basic splaying. For enhanced,
// counts are estimated as frequency * expected_rows.
SplasheLayout BuildSplasheLayout(const std::string& dimension,
                                 const ValueDistribution& distribution,
                                 const std::vector<std::string>& splayed_measures,
                                 bool enhanced, uint64_t expected_rows);

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SPLASHE_H_
