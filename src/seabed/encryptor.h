// The Seabed encryption module (paper Section 4.3).
//
// Turns a plaintext table into the encrypted table uploaded to the untrusted
// server, following the planner's EncryptionPlan: ASHE for measures (with
// consecutive row identifiers), SPLASHE splaying with enhanced-mode DET
// frequency equalization, DET/ORE for fallback dimensions, plus the squared
// columns used for server-side variance.
//
// Also builds the Paillier baseline table (CryptDB/Monomi configuration:
// Paillier measures + DET/OPE dimensions, no SPLASHE).
#ifndef SEABED_SRC_SEABED_ENCRYPTOR_H_
#define SEABED_SRC_SEABED_ENCRYPTOR_H_

#include <map>
#include <memory>
#include <string>

#include "src/crypto/paillier.h"
#include "src/engine/table.h"
#include "src/seabed/keys.h"
#include "src/seabed/schema.h"

namespace seabed {

// Result of encryption. `table` is what the cloud stores; everything else is
// trusted proxy state (the client keeps keys and DET dictionaries so it can
// translate constants and render results).
struct EncryptedDatabase {
  std::shared_ptr<Table> table;
  EncryptionPlan plan;

  // DET column name -> (token -> plaintext) for string dimensions.
  std::map<std::string, std::map<uint64_t, std::string>> det_dictionaries;
  // DET column name -> underlying plaintext type (int DET is invertible, so
  // it has no dictionary).
  std::map<std::string, ColumnType> det_value_types;
};

// Downgrades a Seabed plan to what a CryptDB/Monomi-style baseline supports:
// SPLASHE dimensions fall back to DET, layouts are dropped.
EncryptionPlan BaselinePlan(const EncryptionPlan& plan);

class Encryptor {
 public:
  explicit Encryptor(const ClientKeys& keys) : keys_(keys) {}

  // Encrypts `plain` according to `plan`. Multi-threaded per column family.
  EncryptedDatabase Encrypt(const Table& plain, const PlainSchema& schema,
                            const EncryptionPlan& plan) const;

  // Same, but ASHE row identifiers start at `ashe_base_id` instead of 1.
  // The sharded backend gives every shard a disjoint identifier space this
  // way, so per-shard aggregate ciphertexts stay additively combinable at
  // the coordinator (the ID multiset union never collides across shards).
  EncryptedDatabase EncryptWithBaseId(const Table& plain, const PlainSchema& schema,
                                      const EncryptionPlan& plan,
                                      uint64_t ashe_base_id) const;

  // Appends `new_rows` (a plaintext table with the same schema) to an
  // existing encrypted database — "database insertions are handled in the
  // same way" (Section 4.1). ASHE identifiers continue from the current row
  // count; enhanced-SPLASHE DET columns keep their frequency equalization by
  // assigning the batch's dummy cells against the *combined* token counts
  // (Section 3.5 discusses the drift this bounds).
  void AppendRows(EncryptedDatabase& db, const Table& new_rows,
                  const PlainSchema& schema) const;

  // Builds the Paillier-baseline encrypted table: measures (any column the
  // plan realizes with ASHE, including "both"-role ones) become Paillier
  // ciphertexts; SPLASHE dimensions degrade to DET (the baseline has no
  // frequency defense); DET/OPE/plain columns are shared with Seabed.
  // `randomness_pool_size` controls the construction-time speedup (see
  // Paillier::MakeRandomnessPool). The returned database carries the
  // baseline plan (BaselinePlan(plan)) so the Translator can rewrite queries
  // against it.
  EncryptedDatabase EncryptPaillierBaseline(const Table& plain, const PlainSchema& schema,
                                            const EncryptionPlan& plan,
                                            const Paillier& paillier, Rng& rng,
                                            size_t randomness_pool_size = 64) const;

  const ClientKeys& keys() const { return keys_; }

 private:
  ClientKeys keys_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_ENCRYPTOR_H_
