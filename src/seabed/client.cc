#include "src/seabed/client.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/crypto/ashe.h"
#include "src/crypto/det.h"
#include "src/encoding/id_list_codec.h"

namespace seabed {
namespace {

// Deflated (post-merge) per-aggregate state.
struct MergedAgg {
  uint64_t ashe_value = 0;
  std::vector<IdSet> id_parts;  // merged lazily with one normalization pass
  uint64_t row_count = 0;
  bool minmax_valid = false;
  OreCiphertext minmax_ore;
  uint64_t minmax_cipher = 0;
  uint64_t minmax_id = 0;
};

struct MergedGroup {
  std::vector<Value> key_parts;
  std::vector<MergedAgg> aggs;
};

std::string BaseKey(const ServerGroup& g) {
  // Re-serialize key parts without the inflation suffix. Must byte-match the
  // server's key builder (Server::Execute) exactly — deflation merges the
  // server's inflated groups by this key — so it uses the same
  // length-prefixed AppendGroupKeyPart encoding.
  std::string key;
  for (const Value& v : g.key_parts) {
    if (const auto* i = std::get_if<int64_t>(&v)) {
      AppendGroupKeyPart(key, static_cast<uint64_t>(*i));
    } else {
      AppendGroupKeyPart(key, std::get<std::string>(v));
    }
  }
  return key;
}

}  // namespace

ResultSet Client::Decrypt(const EncryptedResponse& response, const TranslatedQuery& tq,
                          const Cluster& cluster, const EncryptedDatabase* right_db,
                          QueryStats* stats) const {
  const ServerPlan& splan = tq.server;
  const ClientPlan& cplan = tq.client;
  uint64_t prf_calls = 0;

  ResultSet result;
  Stopwatch client_sw;

  // Per-aggregate crypto contexts, keyed by the owning table's name.
  auto table_name_for = [&](bool on_right) -> const std::string& {
    if (on_right) {
      SEABED_CHECK_MSG(right_db != nullptr, "joined query decoded without right_db");
      return right_db->plan.table_name;
    }
    return db_->plan.table_name;
  };
  std::vector<std::unique_ptr<Ashe>> agg_ashe(splan.aggregates.size());
  std::vector<std::unique_ptr<Ashe>> agg_value_ashe(splan.aggregates.size());
  for (size_t a = 0; a < splan.aggregates.size(); ++a) {
    const ServerAggregate& sa = splan.aggregates[a];
    if (sa.kind == ServerAggregate::Kind::kAsheSum) {
      agg_ashe[a] = std::make_unique<Ashe>(keys_->DeriveColumnKey(
          ColumnKeyLabel(table_name_for(sa.on_right), sa.column)));
    } else if (sa.kind == ServerAggregate::Kind::kOreMin ||
               sa.kind == ServerAggregate::Kind::kOreMax) {
      agg_value_ashe[a] = std::make_unique<Ashe>(keys_->DeriveColumnKey(
          ColumnKeyLabel(table_name_for(sa.on_right), sa.value_column)));
    }
  }

  // 1. Decompress ID lists and deflate inflated groups (merge by base key).
  std::map<std::string, MergedGroup> merged;
  for (const ServerGroup& g : response.groups) {
    MergedGroup& dst = merged[BaseKey(g)];
    if (dst.aggs.empty()) {
      dst.aggs.resize(splan.aggregates.size());
      dst.key_parts = g.key_parts;
    }
    for (size_t a = 0; a < splan.aggregates.size(); ++a) {
      const ServerAggResult& src = g.aggs[a];
      MergedAgg& agg = dst.aggs[a];
      const ServerAggregate& sa = splan.aggregates[a];
      switch (sa.kind) {
        case ServerAggregate::Kind::kAsheSum: {
          agg.ashe_value += src.ashe_value;
          for (const Bytes& blob : src.id_blobs) {
            agg.id_parts.push_back(IdListDecode(blob));
          }
          break;
        }
        case ServerAggregate::Kind::kRowCount:
          agg.row_count += src.row_count;
          break;
        case ServerAggregate::Kind::kOreMin:
        case ServerAggregate::Kind::kOreMax: {
          if (!src.minmax_valid) {
            break;
          }
          bool better = !agg.minmax_valid;
          if (!better) {
            const int order = Ore::Compare(src.minmax_ore, agg.minmax_ore).order;
            better = sa.kind == ServerAggregate::Kind::kOreMin ? order < 0 : order > 0;
          }
          if (better) {
            agg.minmax_valid = true;
            agg.minmax_ore = src.minmax_ore;
            agg.minmax_cipher = src.minmax_cipher;
            agg.minmax_id = src.minmax_id;
          }
          break;
        }
      }
    }
  }

  // SQL semantics: a global aggregate over zero matching rows still yields
  // one (all-zero) result row.
  if (merged.empty() && cplan.group_outputs.empty()) {
    MergedGroup zero;
    zero.aggs.resize(splan.aggregates.size());
    merged.emplace("", std::move(zero));
  }

  // 2. Decrypt per group; 3. apply post-processing; 4. render group values.
  result.column_names.reserve(cplan.group_outputs.size() + cplan.outputs.size());
  for (const ClientGroupOutput& g : cplan.group_outputs) {
    result.column_names.push_back(g.plain_name);
  }
  for (const ClientOutput& o : cplan.outputs) {
    result.column_names.push_back(o.alias);
  }

  for (auto& [key, group] : merged) {
    // Decrypt every ASHE aggregate once.
    std::vector<int64_t> decrypted(splan.aggregates.size(), 0);
    for (size_t a = 0; a < splan.aggregates.size(); ++a) {
      const ServerAggregate& sa = splan.aggregates[a];
      MergedAgg& agg = group.aggs[a];
      switch (sa.kind) {
        case ServerAggregate::Kind::kAsheSum: {
          AsheCiphertext ct;
          ct.value = agg.ashe_value;
          ct.ids = IdSet::MergeAll(agg.id_parts);
          agg.id_parts.clear();
          prf_calls += Ashe::DecryptPrfCalls(ct);
          decrypted[a] = static_cast<int64_t>(agg_ashe[a]->Decrypt(ct));
          break;
        }
        case ServerAggregate::Kind::kRowCount:
          decrypted[a] = static_cast<int64_t>(agg.row_count);
          break;
        case ServerAggregate::Kind::kOreMin:
        case ServerAggregate::Kind::kOreMax:
          if (agg.minmax_valid) {
            prf_calls += 2;
            decrypted[a] = static_cast<int64_t>(
                agg_value_ashe[a]->DecryptCell(agg.minmax_cipher, agg.minmax_id));
          }
          break;
      }
    }

    // SPLASHE-filtered GROUP BY: a group where the filtered value never
    // occurs decrypts to an all-zero row plaintext semantics would not emit.
    if (cplan.splashe_filter_count >= 0 &&
        decrypted[static_cast<size_t>(cplan.splashe_filter_count)] == 0) {
      continue;
    }

    std::vector<Value> row;
    row.reserve(cplan.group_outputs.size() + cplan.outputs.size());
    for (size_t g = 0; g < cplan.group_outputs.size(); ++g) {
      const ClientGroupOutput& go = cplan.group_outputs[g];
      const Value& part = group.key_parts[g];
      switch (go.kind) {
        case ClientGroupOutput::Kind::kPlainInt:
        case ClientGroupOutput::Kind::kPlainString:
          row.push_back(part);
          break;
        case ClientGroupOutput::Kind::kDetInt: {
          const DetInt det(keys_->DeriveColumnKey(go.key_label));
          row.emplace_back(static_cast<int64_t>(
              det.Decrypt(static_cast<uint64_t>(std::get<int64_t>(part)))));
          break;
        }
        case ClientGroupOutput::Kind::kDetString: {
          const EncryptedDatabase& owner = go.on_right ? *right_db : *db_;
          const auto dict_it = owner.det_dictionaries.find(go.enc_column);
          SEABED_CHECK(dict_it != owner.det_dictionaries.end());
          const uint64_t token = static_cast<uint64_t>(std::get<int64_t>(part));
          const auto val_it = dict_it->second.find(token);
          SEABED_CHECK_MSG(val_it != dict_it->second.end(),
                           "unknown DET token in group key for " << go.enc_column);
          row.emplace_back(val_it->second);
          break;
        }
      }
    }

    for (const ClientOutput& o : cplan.outputs) {
      switch (o.kind) {
        case ClientOutput::Kind::kSum:
        case ClientOutput::Kind::kCount:
          row.emplace_back(decrypted[o.arg0]);
          break;
        case ClientOutput::Kind::kAvg: {
          const double count = static_cast<double>(decrypted[o.arg1]);
          row.emplace_back(count == 0 ? 0.0 : static_cast<double>(decrypted[o.arg0]) / count);
          break;
        }
        case ClientOutput::Kind::kVariance:
        case ClientOutput::Kind::kStddev: {
          const double count = static_cast<double>(decrypted[o.arg2]);
          double var = 0;
          if (count > 0) {
            const double mean = static_cast<double>(decrypted[o.arg1]) / count;
            var = static_cast<double>(decrypted[o.arg0]) / count - mean * mean;
          }
          row.emplace_back(o.kind == ClientOutput::Kind::kVariance
                               ? var
                               : std::sqrt(std::max(0.0, var)));
          break;
        }
        case ClientOutput::Kind::kMinMax:
          row.emplace_back(decrypted[o.arg0]);
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }

  if (stats != nullptr) {
    stats->backend = "seabed";
    stats->job = response.job;
    stats->server_seconds = response.ServerSeconds();
    stats->result_bytes = response.response_bytes;
    stats->result_rows = result.rows.size();
    stats->network_seconds =
        cluster.config().client_link.TransferSeconds(response.response_bytes);
    stats->client_seconds = client_sw.ElapsedSeconds();
    stats->prf_calls = prf_calls;
    stats->rows_touched = response.rows_touched;
  }
  return result;
}

}  // namespace seabed
