#include "src/seabed/schema.h"

#include <algorithm>

#include "src/common/check.h"

namespace seabed {

const PlainColumnSpec* PlainSchema::Find(const std::string& name) const {
  for (const auto& col : columns) {
    if (col.name == name) {
      return &col;
    }
  }
  return nullptr;
}

const char* EncSchemeName(EncScheme scheme) {
  switch (scheme) {
    case EncScheme::kPlain:
      return "plain";
    case EncScheme::kAshe:
      return "ashe";
    case EncScheme::kSplasheBasic:
      return "splashe-basic";
    case EncScheme::kSplasheEnhanced:
      return "splashe-enhanced";
    case EncScheme::kDet:
      return "det";
    case EncScheme::kOpe:
      return "ope";
  }
  return "?";
}

bool SplasheLayout::IsSplayedValue(const std::string& v) const {
  return std::find(splayed_values.begin(), splayed_values.end(), v) != splayed_values.end();
}

const SplasheLayout* EncryptionPlan::FindSplashe(const std::string& dimension) const {
  for (const auto& layout : splashe) {
    if (layout.dimension == dimension) {
      return &layout;
    }
  }
  return nullptr;
}

const ColumnPlan& EncryptionPlan::Plan(const std::string& column) const {
  const auto it = columns.find(column);
  SEABED_CHECK_MSG(it != columns.end(), "no plan for column " << column);
  return it->second;
}

std::string EncryptionPlan::DetKeyLabelFor(const std::string& plain_column) const {
  const ColumnPlan& cp = Plan(plain_column);
  if (!cp.det_key_label.empty()) {
    return cp.det_key_label;
  }
  return table_name + "/" + plain_column + "#det";
}

}  // namespace seabed
