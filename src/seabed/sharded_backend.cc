#include "src/seabed/sharded_backend.h"

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/seabed/client.h"
#include "src/seabed/placement.h"
#include "src/seabed/planner.h"
#include "src/seabed/probe.h"

namespace seabed {
namespace {

// Shards encrypt into disjoint ASHE identifier spaces: shard s starts at
// 1 + s * kShardIdStride. The stride leaves each shard ~10^12 identifiers of
// headroom, so appends keep growing a shard's contiguous run without ever
// reaching the next shard's space.
constexpr uint64_t kShardIdStride = uint64_t{1} << 40;

uint64_t ShardBaseId(size_t shard) { return 1 + shard * kShardIdStride; }

// Copies the selected rows of a plaintext table into a fresh table (fresh
// columns — sub-tables must not alias the attached table, whose columns the
// full replica shares).
std::shared_ptr<Table> SubsetRows(const Table& src, const std::string& name,
                                  const std::vector<size_t>& rows) {
  auto out = std::make_shared<Table>(name);
  for (const std::string& col_name : src.column_names()) {
    const ColumnPtr& col = src.GetColumn(col_name);
    if (col->type() == ColumnType::kInt64) {
      const auto* s = static_cast<const Int64Column*>(col.get());
      auto c = std::make_shared<Int64Column>();
      for (const size_t row : rows) {
        c->Append(s->Get(row));
      }
      out->AddColumn(col_name, std::move(c));
    } else {
      SEABED_CHECK_MSG(col->type() == ColumnType::kString,
                       "sharding supports plaintext int/string columns only (" << col_name << ")");
      const auto* s = static_cast<const StringColumn*>(col.get());
      auto c = std::make_shared<StringColumn>();
      for (const size_t row : rows) {
        c->Append(s->Get(row));
      }
      out->AddColumn(col_name, std::move(c));
    }
  }
  return out;
}

void MergeDictionaries(const EncryptedDatabase& from, EncryptedDatabase& into) {
  for (const auto& [col, dict] : from.det_dictionaries) {
    into.det_dictionaries[col].insert(dict.begin(), dict.end());
  }
  into.det_value_types.insert(from.det_value_types.begin(), from.det_value_types.end());
}

// Keeps an ORE winner if `src` beats it (or `dst` has none yet).
void ReduceMinMax(ServerAggregate::Kind kind, const ServerAggResult& src, ServerAggResult& dst) {
  if (!src.minmax_valid) {
    return;
  }
  bool better = !dst.minmax_valid;
  if (!better) {
    const int order = Ore::Compare(src.minmax_ore, dst.minmax_ore).order;
    better = kind == ServerAggregate::Kind::kOreMin ? order < 0 : order > 0;
  }
  if (better) {
    dst.minmax_valid = true;
    dst.minmax_ore = src.minmax_ore;
    dst.minmax_cipher = src.minmax_cipher;
    dst.minmax_id = src.minmax_id;
  }
}

// The coordinator merge: combines per-shard encrypted responses without any
// key material. Groups union-merge by serialized key; within a group, ASHE
// sums add ciphertext-side (ID blobs concatenate — identifier spaces are
// disjoint), counts add, and ORE min/max reduce. Timing fields model the
// shards running in parallel (max), byte counts add. The caller adds the
// measured merge wall-clock to `driver_seconds`.
EncryptedResponse MergeShardResponses(const ServerPlan& plan,
                                      std::vector<EncryptedResponse>& parts) {
  EncryptedResponse out;
  std::vector<JobStats> jobs;
  jobs.reserve(parts.size());
  std::map<std::string, ServerGroup> merged;
  for (EncryptedResponse& part : parts) {
    jobs.push_back(part.job);
    out.driver_seconds = std::max(out.driver_seconds, part.driver_seconds);
    out.shuffle_seconds = std::max(out.shuffle_seconds, part.shuffle_seconds);
    out.shuffle_bytes += part.shuffle_bytes;
    out.rows_touched += part.rows_touched;
    for (ServerGroup& group : part.groups) {
      auto [it, inserted] = merged.try_emplace(group.key, std::move(group));
      if (inserted) {
        continue;
      }
      ServerGroup& dst = it->second;
      for (size_t a = 0; a < plan.aggregates.size(); ++a) {
        ServerAggResult& da = dst.aggs[a];
        ServerAggResult& sa = group.aggs[a];
        switch (plan.aggregates[a].kind) {
          case ServerAggregate::Kind::kAsheSum:
            da.ashe_value += sa.ashe_value;
            da.id_blobs.insert(da.id_blobs.end(),
                               std::make_move_iterator(sa.id_blobs.begin()),
                               std::make_move_iterator(sa.id_blobs.end()));
            break;
          case ServerAggregate::Kind::kRowCount:
            da.row_count += sa.row_count;
            break;
          case ServerAggregate::Kind::kOreMin:
          case ServerAggregate::Kind::kOreMax:
            ReduceMinMax(plan.aggregates[a].kind, sa, da);
            break;
        }
      }
    }
  }
  out.job = MergeParallelJobs(jobs);

  size_t bytes = 0;
  for (auto& [key, group] : merged) {
    bytes += group.key.size();
    for (const ServerAggResult& agg : group.aggs) {
      bytes += 8;
      for (const Bytes& blob : agg.id_blobs) {
        bytes += blob.size();
      }
      if (agg.minmax_valid) {
        bytes += 16;
      }
    }
    out.groups.push_back(std::move(group));
  }
  out.response_bytes = bytes;
  return out;
}

}  // namespace

ShardedSeabedBackend::ShardedSeabedBackend(const ExecutionContext* context, size_t shards)
    : context_(context),
      shards_(shards),
      servers_(shards),
      pool_(std::min<size_t>(std::max<size_t>(shards, 1),
                             std::max<unsigned>(1, std::thread::hardware_concurrency()))) {
  SEABED_CHECK_MSG(shards_ >= 1, "a sharded backend needs at least one shard");
}

size_t ShardedSeabedBackend::ShardOfRow(size_t row) const {
  // Multiplicative hash so placement cannot correlate with data order.
  return Placement::HashShardOfRow(row, shards_);
}

ShardedSeabedBackend::TableState& ShardedSeabedBackend::StateFor(const std::string& table) {
  std::lock_guard<std::mutex> lock(states_mu_);
  std::unique_ptr<TableState>& slot = states_[table];
  if (slot == nullptr) {
    slot = std::make_unique<TableState>();
  }
  return *slot;
}

const ShardedTableVersion* ShardedSeabedBackend::CurrentVersion(const std::string& table) const {
  std::lock_guard<std::mutex> lock(states_mu_);
  const auto it = states_.find(table);
  if (it == states_.end()) {
    return nullptr;
  }
  return it->second->current.load(std::memory_order_seq_cst);
}

void ShardedSeabedBackend::Publish(TableState& state,
                                   std::shared_ptr<const ShardedTableVersion> next) {
  std::shared_ptr<const ShardedTableVersion> old = std::move(state.owner);
  state.owner = std::move(next);
  state.current.store(state.owner.get(), std::memory_order_seq_cst);
  if (old != nullptr) {
    epochs_.Retire(std::move(old));
  }
}

std::optional<RebalanceStats> ShardedSeabedBackend::rebalance_stats() const {
  // Append mutates the counters under the writer mutex; snapshot under the
  // same one so monitors can poll between appends.
  std::lock_guard<std::mutex> lock(writer_mu_);
  return rebalance_stats_;
}

const Server& ShardedSeabedBackend::shard_server(size_t shard) const {
  SEABED_CHECK(shard < shards_);
  return servers_[shard];
}

const EncryptedDatabase& ShardedSeabedBackend::shard_database(const std::string& table,
                                                              size_t shard) const {
  SEABED_CHECK(shard < shards_);
  EpochDomain::Guard guard(epochs_);
  const ShardedTableVersion* version = CurrentVersion(table);
  SEABED_CHECK_MSG(version != nullptr, "table " << table << " was not prepared for sharding");
  return version->parts[shard];
}

const EncryptedDatabase* ShardedSeabedBackend::replica_database(const std::string& table) const {
  EpochDomain::Guard guard(epochs_);
  const ShardedTableVersion* version = CurrentVersion(table);
  SEABED_CHECK_MSG(version != nullptr, "table " << table << " was not prepared for sharding");
  return version->replica.get();
}

std::vector<size_t> ShardedSeabedBackend::ShardRowCounts(const std::string& table) const {
  EpochDomain::Guard guard(epochs_);
  const ShardedTableVersion* version = CurrentVersion(table);
  SEABED_CHECK_MSG(version != nullptr, "table " << table << " was not prepared for sharding");
  std::vector<size_t> counts(shards_);
  for (size_t s = 0; s < shards_; ++s) {
    counts[s] = version->plain_parts[s]->NumRows();
  }
  return counts;
}

uint64_t ShardedSeabedBackend::probe_index_builds(const std::string& table, size_t shard) const {
  SEABED_CHECK(shard < shards_);
  EpochDomain::Guard guard(epochs_);
  const ShardedTableVersion* version = CurrentVersion(table);
  return version == nullptr ? 0 : version->probes[shard]->builds();
}

void ShardedSeabedBackend::EnsureReplica(const AttachedTable& right) {
  {
    EpochDomain::Guard guard(epochs_);
    const ShardedTableVersion* version = CurrentVersion(right.name);
    SEABED_CHECK_MSG(version != nullptr, "joined table " << right.name << " not prepared");
    if (version->replica != nullptr) {
      return;
    }
  }
  std::lock_guard<std::mutex> writer(writer_mu_);
  TableState& state = StateFor(right.name);
  if (state.owner->replica != nullptr) {
    return;  // a racing query built it while we waited for the writer mutex
  }
  // The replica shares column keys with the shard partitions, so it must
  // occupy its own identifier space — it lives just above the last shard's.
  // Reusing a shard's base would repeat ASHE pads across two ciphertexts of
  // different plaintexts, leaking their difference. Built from the attached
  // plaintext table, which the writer mutex keeps in sync with the published
  // version, and published as a successor version that shares every part.
  const Encryptor encryptor(*context_->keys);
  auto next = std::make_shared<ShardedTableVersion>(*state.owner);
  next->replica = std::make_shared<const EncryptedDatabase>(encryptor.EncryptWithBaseId(
      *right.plain, right.schema, right.plan, ShardBaseId(shards_)));
  Publish(state, std::move(next));
}

void ShardedSeabedBackend::Prepare(AttachedTable& table) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  const Encryptor encryptor(*context_->keys);
  auto version = std::make_shared<ShardedTableVersion>();
  // Slots 0..shards-1 belong to the shard partitions, slot `shards_` to the
  // lazily built join replica; rebalancing allocates fresh slots from here.
  version->next_id_slot = shards_ + 1;

  // Partition the rows under the session's placement policy (hash by
  // default; contiguous clustering-key quantiles for tables configured
  // kKeyRange). The policy and its boundary metadata become part of the
  // published version, so routing and later appends read placement state
  // consistent with the parts they touch.
  const Placement placement =
      Placement::Resolve(context_->placement, table.name, *table.plain, shards_);
  const std::vector<std::vector<size_t>> assignment = placement.PartitionRows(*table.plain);
  version->placement = placement.policy();
  version->clustering_column = placement.clustering_column();
  version->boundaries = placement.InitialBoundaries(*table.plain, assignment);

  version->plain_parts.resize(shards_);
  version->parts.resize(shards_);
  version->probes.resize(shards_);
  // Shard encryptions are independent (shared inputs are const) — build
  // them concurrently on the fan-out pool so attach cost does not grow
  // linearly with the shard count.
  pool_.ParallelFor(shards_, [&](size_t s) {
    version->plain_parts[s] =
        SubsetRows(*table.plain, table.name + "#shard" + std::to_string(s), assignment[s]);
    version->parts[s] = encryptor.EncryptWithBaseId(*version->plain_parts[s], table.schema,
                                                    table.plan, ShardBaseId(s));
  });
  for (size_t s = 0; s < shards_; ++s) {
    version->probes[s] = std::make_shared<VersionProbeIndex>();
  }

  // The client-side view: one plan (identical across shards) plus the union
  // of the shards' DET dictionaries, so group keys produced by any shard
  // render back to plaintext.
  version->view.plan = version->parts.front().plan;
  version->view.table = version->parts.front().table;
  for (const EncryptedDatabase& part : version->parts) {
    MergeDictionaries(part, version->view);
  }
  table.enc = version->view;

  Publish(StateFor(table.name), std::move(version));
}

void ShardedSeabedBackend::Append(AttachedTable& table, const Table& new_rows,
                                  JobStats* stats) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  Stopwatch append_sw;
  TableState& state = StateFor(table.name);
  const std::shared_ptr<const ShardedTableVersion> old = state.owner;
  SEABED_CHECK_MSG(old != nullptr, "append to unprepared table " << table.name);
  const Encryptor encryptor(*context_->keys);
  const size_t prior_rows = table.plain->NumRows();

  // Successor version: structural sharing for everything, then replace just
  // the pieces this append touches. Readers pinned on `old` see none of it.
  auto next = std::make_shared<ShardedTableVersion>(*old);

  // A replica, once built, stays consistent with its version: copy and grow.
  if (old->replica != nullptr) {
    auto replica = std::make_shared<EncryptedDatabase>(CopyEncryptedDatabase(*old->replica));
    encryptor.AppendRows(*replica, new_rows, table.schema);
    next->replica = std::move(replica);
  }

  // The attached plaintext table has no snapshot readers (encrypted Execute
  // never touches it); grow it in place for the session's own accessors.
  GrowPlainTable(*table.plain, new_rows, nullptr);

  // Row→shard assignment is the placement policy's call. Hash placement
  // keeps append locality: the whole batch lands on the shard that owns its
  // first global row — one encryption stream per batch, the way
  // log-structured ingest appends land in one partition (a skewed stream of
  // batches can therefore concentrate rows on few shards; MaybeRebalance
  // repairs that when SessionOptions::shards_rebalance says to). Key-range
  // placement splits the batch by owning range against the parent version's
  // boundaries, widening the destination shards' boundaries to cover their
  // new keys. Only destination shards are copied; everything else stays
  // structurally shared with `old`.
  const Placement placement(old->placement, old->clustering_column, shards_);
  const std::vector<std::vector<size_t>> assignment =
      placement.AssignAppend(new_rows, prior_rows, old->boundaries);
  std::vector<char> rebuilt(shards_, 0);
  for (size_t dest = 0; dest < shards_; ++dest) {
    if (assignment[dest].empty()) {
      continue;
    }
    // The whole-batch case (always under hash) appends `new_rows` directly —
    // the same encryption stream as before placement was pluggable.
    std::shared_ptr<Table> owned;
    const Table* segment = &new_rows;
    if (assignment[dest].size() != new_rows.NumRows()) {
      owned = SubsetRows(new_rows, table.name + "#append", assignment[dest]);
      segment = owned.get();
    }
    next->plain_parts[dest] = DeepCopyTable(*old->plain_parts[dest]);
    GrowPlainTable(*next->plain_parts[dest], *segment, nullptr);
    next->parts[dest] = CopyEncryptedDatabase(old->parts[dest]);
    encryptor.AppendRows(next->parts[dest], *segment, table.schema);
    auto dest_probe = std::make_shared<VersionProbeIndex>();
    dest_probe->SeedFrom(*old->probes[dest], *next->parts[dest].table);
    next->probes[dest] = std::move(dest_probe);
    if (old->placement == PlacementPolicy::kKeyRange) {
      placement.WidenBoundary(new_rows, assignment[dest], next->boundaries[dest]);
    }
    rebuilt[dest] = 1;
  }

  // Appends may mint new DET tokens (dictionary growth); refresh the view.
  next->view.table = next->parts.front().table;
  for (size_t dest = 0; dest < shards_; ++dest) {
    if (rebuilt[dest]) {
      MergeDictionaries(next->parts[dest], next->view);
    }
  }
  const double encrypt_seconds = append_sw.ElapsedSeconds();
  const uint64_t moved_before = rebalance_stats_.rows_moved;
  MaybeRebalance(table, *next, encryptor, rebuilt);
  next->view.table = next->parts.front().table;  // rebalance may replace part 0

  SEABED_CHECK(table.enc.has_value());
  table.enc = next->view;  // session-visible merged view
  if (stats != nullptr) {
    // The ingest prices as two fabric stages, mirroring how the real system
    // would run it: an encrypt-and-append job over the batch's row ranges,
    // then — when the skew trigger fired — a migration stage whose moved
    // row-groups additionally shuffle to their recipient shards.
    const Cluster& cluster = *context_->cluster;
    *stats = ModelIngestJob(cluster, encrypt_seconds,
                            (new_rows.NumRows() + 8191) / 8192);
    const uint64_t moved = rebalance_stats_.rows_moved - moved_before;
    if (moved > 0) {
      const double migrate_seconds = append_sw.ElapsedSeconds() - encrypt_seconds;
      JobStats migrate = ModelIngestJob(cluster, migrate_seconds, (moved + 8191) / 8192);
      const size_t moved_bytes = moved * new_rows.column_names().size() * sizeof(int64_t);
      migrate.server_seconds += cluster.ShuffleSeconds(moved_bytes, /*num_reducers=*/1);
      stats->server_seconds += migrate.server_seconds;
      stats->total_compute_seconds += migrate.total_compute_seconds;
      stats->num_tasks += migrate.num_tasks;
    }
  }
  Publish(state, std::move(next));
}

void ShardedSeabedBackend::MaybeRebalance(const AttachedTable& table, ShardedTableVersion& next,
                                          const Encryptor& encryptor,
                                          std::vector<char>& rebuilt) {
  const ShardRebalanceOptions& opts = context_->rebalance;
  if (!opts.enabled || shards_ < 2) {
    return;
  }
  if (next.placement == PlacementPolicy::kKeyRange) {
    // Key-range tables rebalance by boundary moves between key-space
    // neighbors — migrating arbitrary row-groups anywhere would shred the
    // contiguous owning ranges routing depends on.
    MaybeRebalanceKeyRange(table, next, encryptor, rebuilt);
    return;
  }
  const size_t group = std::max<size_t>(1, opts.row_group_size);

  std::vector<size_t> counts(shards_);
  size_t total = 0;
  for (size_t s = 0; s < shards_; ++s) {
    counts[s] = next.plain_parts[s]->NumRows();
    total += counts[s];
  }
  if (total == 0) {
    return;
  }
  const double ideal = static_cast<double>(total) / static_cast<double>(shards_);
  // Below one whole row-group of surplus there is nothing movable, whatever
  // the ratio says.
  const double trigger = std::max(ideal * opts.max_skew_ratio, ideal + static_cast<double>(group));

  // Plan the moves on row counts first (cheap), then execute with a single
  // donor re-encryption per donor. Every move carves whole row-groups off
  // the donor's current tail — the cut lands on a boundary of the donor's
  // local group grid, so moved units are exactly the groups a probe index
  // summarizes. A shard never plays both roles: a donor turned recipient
  // would invalidate the tail arithmetic below.
  struct Move {
    size_t donor = 0;
    size_t recipient = 0;
    size_t rows = 0;
  };
  std::vector<Move> moves;
  std::vector<char> was_donor(shards_, 0), was_recipient(shards_, 0);
  for (size_t iter = 0; iter < shards_ * 8; ++iter) {
    const size_t donor =
        std::max_element(counts.begin(), counts.end()) - counts.begin();
    const size_t recipient =
        std::min_element(counts.begin(), counts.end()) - counts.begin();
    if (donor == recipient || static_cast<double>(counts[donor]) <= trigger ||
        was_recipient[donor] || was_donor[recipient]) {
      break;
    }
    const size_t surplus = counts[donor] - static_cast<size_t>(ideal);
    const size_t deficit = static_cast<size_t>(ideal) > counts[recipient]
                               ? static_cast<size_t>(ideal) - counts[recipient]
                               : 0;
    const size_t want = std::min(surplus, std::max(deficit, group));
    // The donor's tail partial group moves first, then whole groups.
    size_t rows = counts[donor] % group;
    while (rows + group <= want) {
      rows += group;
    }
    if (rows == 0) {
      rows = std::min(counts[donor], group);
    }
    if (rows >= counts[donor] || counts[recipient] + rows >= counts[donor] - rows + group) {
      break;  // never empty a shard or mint a new hotspot
    }
    moves.push_back({donor, recipient, rows});
    was_donor[donor] = 1;
    was_recipient[recipient] = 1;
    counts[donor] -= rows;
    counts[recipient] += rows;
  }
  if (moves.empty()) {
    return;
  }

  Stopwatch sw;
  rebalance_stats_.rebalances += 1;
  std::vector<size_t> tail(shards_);  // donor cut position, walks toward 0
  for (size_t s = 0; s < shards_; ++s) {
    tail[s] = next.plain_parts[s]->NumRows();
  }
  for (const Move& move : moves) {
    // Recipients grow, so `next` must own their part objects before the
    // first row lands (donors are only read here — replaced wholesale
    // below — and need no copy).
    if (!rebuilt[move.recipient]) {
      next.plain_parts[move.recipient] = DeepCopyTable(*next.plain_parts[move.recipient]);
      next.parts[move.recipient] = CopyEncryptedDatabase(next.parts[move.recipient]);
      auto probe = std::make_shared<VersionProbeIndex>();
      probe->SeedFrom(*next.probes[move.recipient], *next.parts[move.recipient].table);
      next.probes[move.recipient] = std::move(probe);
      rebuilt[move.recipient] = 1;
    }
    // Re-encrypting into the recipient's identifier space is the canonical
    // append path: AppendRows continues the recipient's contiguous ASHE run,
    // so identifier spaces stay disjoint and merge semantics are untouched.
    // The recipient's seeded probe summaries lag the migrated tail; the
    // version's first probe re-syncs them (VersionProbeIndex::Probe).
    std::vector<size_t> rows(move.rows);
    std::iota(rows.begin(), rows.end(), tail[move.donor] - move.rows);
    const auto segment =
        SubsetRows(*next.plain_parts[move.donor], table.name + "#migrate", rows);
    GrowPlainTable(*next.plain_parts[move.recipient], *segment, nullptr);
    encryptor.AppendRows(next.parts[move.recipient], *segment, table.schema);
    tail[move.donor] -= move.rows;
    rebalance_stats_.rows_moved += move.rows;
    rebalance_stats_.row_groups_moved += (move.rows + group - 1) / group;
  }
  for (size_t s = 0; s < shards_; ++s) {
    if (!was_donor[s]) {
      continue;
    }
    // The donor's remainder re-encrypts into a fresh identifier-space slot.
    // This costs O(remaining rows) per donor, but the cheap alternative —
    // truncating the donor in place, which would keep the prefix
    // ciphertexts unchanged — is unsafe: later appends would re-mint the
    // truncated tail's identifiers (ids are base + row) for different
    // plaintexts, repeating ASHE pads an adversary who recorded the old
    // upload could subtract to learn plaintext differences.
    std::vector<size_t> kept(tail[s]);
    std::iota(kept.begin(), kept.end(), size_t{0});
    auto remainder = SubsetRows(*next.plain_parts[s],
                                table.name + "#shard" + std::to_string(s), kept);
    next.parts[s] = encryptor.EncryptWithBaseId(*remainder, table.schema, table.plan,
                                                ShardBaseId(next.next_id_slot++));
    next.plain_parts[s] = std::move(remainder);
    // A fresh table object gets a fresh (empty) probe index: summaries of
    // the old object can never leak onto the re-encrypted one, the stale-
    // summary class of bug PR 5 fixed by registry resets.
    next.probes[s] = std::make_shared<VersionProbeIndex>();
    rebuilt[s] = 1;
    rebalance_stats_.rows_reencrypted += tail[s];
  }
  rebalance_stats_.seconds += sw.ElapsedSeconds();
}

void ShardedSeabedBackend::MaybeRebalanceKeyRange(const AttachedTable& table,
                                                  ShardedTableVersion& next,
                                                  const Encryptor& encryptor,
                                                  std::vector<char>& rebuilt) {
  const ShardRebalanceOptions& opts = context_->rebalance;
  const size_t group = std::max<size_t>(1, opts.row_group_size);
  const Placement placement(PlacementPolicy::kKeyRange, next.clustering_column, shards_);

  std::vector<size_t> counts(shards_);
  size_t total = 0;
  for (size_t s = 0; s < shards_; ++s) {
    counts[s] = next.plain_parts[s]->NumRows();
    total += counts[s];
  }
  if (total == 0) {
    return;
  }
  const double ideal = static_cast<double>(total) / static_cast<double>(shards_);
  const double trigger = std::max(ideal * opts.max_skew_ratio, ideal + static_cast<double>(group));

  // Plan boundary moves on row counts (deterministic — same trigger
  // arithmetic as the hash arm). The recipient is constrained to a key-space
  // neighbor of the donor: shard index order IS key order under key-range
  // placement (attach assigns quantiles in index order and appends preserve
  // range disjointness), so donor s sheds its lowest keys to s-1 or its
  // highest to s+1 and every owning range stays contiguous.
  //
  // Unlike the hash arm, moves CASCADE: a hot-tail append stream piles
  // everything onto one edge shard, and a single neighbor hop per pass can
  // never carry the surplus past that neighbor — the fleet diverges. So a
  // recipient may itself donate onward (3→2 then 2→1 in one pass), the only
  // exclusion being the reversal of an earlier move's pair, which would
  // ping-pong the same segment. Segments are always drawn from a shard's
  // PRE-PASS rows: cascaded donations at a shard's far end never contain
  // keys it received this pass (neighbor ranges are disjoint and ordered),
  // so the planned `taken` budget below keeps every slice valid.
  struct Move {
    size_t donor = 0;
    size_t recipient = 0;
    size_t rows = 0;
    bool low_end = false;  // true: donor's smallest keys move (left neighbor)
  };
  std::vector<Move> moves;
  const std::vector<size_t> orig_counts = counts;
  std::vector<size_t> taken(shards_, 0);  // pre-pass rows already promised away
  std::vector<char> was_donor(shards_, 0), was_recipient(shards_, 0);
  std::vector<char> paired(shards_ * shards_, 0);  // donor*shards_+recipient
  for (size_t iter = 0; iter < shards_ * 8; ++iter) {
    const size_t donor =
        std::max_element(counts.begin(), counts.end()) - counts.begin();
    if (static_cast<double>(counts[donor]) <= trigger) {
      break;
    }
    // The lighter of the donor's eligible neighbors takes the segment
    // (left on a tie — deterministic). A neighbor is eligible when it is
    // lighter than the donor and the reverse pair hasn't moved this pass.
    size_t recipient = shards_;
    bool low_end = false;
    if (donor > 0 && counts[donor - 1] < counts[donor] &&
        !paired[(donor - 1) * shards_ + donor]) {
      recipient = donor - 1;
      low_end = true;
    }
    if (donor + 1 < shards_ && counts[donor + 1] < counts[donor] &&
        !paired[(donor + 1) * shards_ + donor] &&
        (recipient == shards_ || counts[donor + 1] < counts[recipient])) {
      recipient = donor + 1;
      low_end = false;
    }
    if (recipient == shards_) {
      break;
    }
    const size_t surplus = counts[donor] - static_cast<size_t>(ideal);
    const size_t deficit = static_cast<size_t>(ideal) > counts[recipient]
                               ? static_cast<size_t>(ideal) - counts[recipient]
                               : 0;
    size_t rows = std::min(surplus, std::max(deficit, group));
    if (rows == 0) {
      rows = std::min(counts[donor], group);
    }
    if (rows + taken[donor] >= orig_counts[donor] || rows >= counts[donor] ||
        counts[recipient] + rows >= counts[donor] - rows + group) {
      break;  // never drain a shard's pre-pass rows or mint a new hotspot
    }
    moves.push_back({donor, recipient, rows, low_end});
    was_donor[donor] = 1;
    was_recipient[recipient] = 1;
    paired[donor * shards_ + recipient] = 1;
    taken[donor] += rows;
    counts[donor] -= rows;
    counts[recipient] += rows;
  }
  if (moves.empty()) {
    return;
  }

  Stopwatch sw;
  rebalance_stats_.rebalances += 1;
  // Per-donor key order over the shard's PRE-PASS rows (ties broken by row
  // index — deterministic) with two cursors: a donor may shed its low end to
  // the left neighbor and its high end to the right in the same pass. Rows a
  // cascading shard receives this pass land past orig_counts (GrowPlainTable
  // appends) and so never enter its order — matching the planner's `taken`
  // budget, which only promised away pre-pass rows.
  std::vector<std::vector<size_t>> key_order(shards_);
  std::vector<size_t> low_taken(shards_, 0), high_taken(shards_, 0);
  for (const Move& move : moves) {
    std::vector<size_t>& order = key_order[move.donor];
    if (order.empty()) {
      const Table& part = *next.plain_parts[move.donor];
      order.resize(orig_counts[move.donor]);
      std::iota(order.begin(), order.end(), size_t{0});
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const int64_t ka = placement.KeyAt(part, a), kb = placement.KeyAt(part, b);
        return ka != kb ? ka < kb : a < b;
      });
    }
    if (!rebuilt[move.recipient]) {
      next.plain_parts[move.recipient] = DeepCopyTable(*next.plain_parts[move.recipient]);
      next.parts[move.recipient] = CopyEncryptedDatabase(next.parts[move.recipient]);
      auto probe = std::make_shared<VersionProbeIndex>();
      probe->SeedFrom(*next.probes[move.recipient], *next.parts[move.recipient].table);
      next.probes[move.recipient] = std::move(probe);
      rebuilt[move.recipient] = 1;
    }
    // The boundary segment: the donor's `rows` smallest (or largest) not-yet-
    // taken keys, restored to row order so the moved slice keeps its relative
    // time order inside the recipient. Re-encrypting into the recipient's
    // identifier space is the canonical append path, as in the hash arm — but
    // a recipient that donates onward re-encrypts wholesale below, so feeding
    // its encrypted side here would be wasted work (the plain part must still
    // grow either way; it is the source of truth for the re-encryption).
    std::vector<size_t> segment_rows(
        move.low_end ? order.begin() + low_taken[move.donor]
                     : order.end() - high_taken[move.donor] - move.rows,
        move.low_end ? order.begin() + low_taken[move.donor] + move.rows
                     : order.end() - high_taken[move.donor]);
    (move.low_end ? low_taken : high_taken)[move.donor] += move.rows;
    std::sort(segment_rows.begin(), segment_rows.end());
    const auto segment =
        SubsetRows(*next.plain_parts[move.donor], table.name + "#migrate", segment_rows);
    GrowPlainTable(*next.plain_parts[move.recipient], *segment, nullptr);
    if (!was_donor[move.recipient]) {
      encryptor.AppendRows(next.parts[move.recipient], *segment, table.schema);
    }
    placement.WidenBoundary(*next.plain_parts[move.donor], segment_rows,
                            next.boundaries[move.recipient]);
    rebalance_stats_.rows_moved += move.rows;
    rebalance_stats_.row_groups_moved += (move.rows + group - 1) / group;
  }
  for (size_t s = 0; s < shards_; ++s) {
    if (!was_donor[s]) {
      continue;
    }
    // The donor's remainder — everything between the two cursors, plus any
    // rows received this pass (appended past its pre-pass count) — re-
    // encrypts into a fresh identifier-space slot, with a fresh probe index
    // and a recomputed boundary, for exactly the reasons the hash arm
    // documents: truncation in place would re-mint retired identifiers.
    const std::vector<size_t>& order = key_order[s];
    std::vector<size_t> kept(order.begin() + low_taken[s], order.end() - high_taken[s]);
    std::sort(kept.begin(), kept.end());
    for (size_t r = orig_counts[s]; r < next.plain_parts[s]->NumRows(); ++r) {
      kept.push_back(r);
    }
    auto remainder = SubsetRows(*next.plain_parts[s],
                                table.name + "#shard" + std::to_string(s), kept);
    next.parts[s] = encryptor.EncryptWithBaseId(*remainder, table.schema, table.plan,
                                                ShardBaseId(next.next_id_slot++));
    next.boundaries[s] = placement.BoundaryOfRows(*next.plain_parts[s], kept);
    next.plain_parts[s] = std::move(remainder);
    next.probes[s] = std::make_shared<VersionProbeIndex>();
    rebuilt[s] = 1;
    rebalance_stats_.rows_reencrypted += kept.size();
  }
  rebalance_stats_.seconds += sw.ElapsedSeconds();
}

std::vector<EncryptedResponse> ShardedSeabedBackend::FanOut(const ShardedTableVersion& version,
                                                            const ServerPlan& plan,
                                                            const std::vector<bool>& active,
                                                            const Table* right) const {
  std::vector<EncryptedResponse> responses(shards_);
  pool_.ParallelFor(shards_, [&](size_t s) {
    if (active[s]) {
      responses[s] =
          servers_[s].Execute(plan, *context_->cluster, version.parts[s].table.get(), right);
    }
  });
  return responses;
}

ResultSet ShardedSeabedBackend::Execute(const Query& query, QueryStats* stats) {
  const AttachedTable& fact = context_->catalog->Get(query.table);

  // Joins need the right table's broadcast replica. Guarantee it exists
  // BEFORE pinning: replica presence is monotone across versions, so any
  // version pinned after EnsureReplica returns carries one consistent with
  // its own rows.
  if (query.join.has_value()) {
    EnsureReplica(context_->catalog->Get(query.join->right_table));
  }

  // Pin this query's snapshot: every part table, probe index and replica
  // resolved below belongs to versions published before this point and
  // stays alive until the guard drops — an overlapping append is invisible.
  EpochDomain::Guard guard(epochs_);
  const ShardedTableVersion* ver = CurrentVersion(query.table);
  SEABED_CHECK_MSG(ver != nullptr, "table " << fact.name << " was not prepared");

  // One translation serves every shard: the shards share the encryption
  // plan, keys and table name, so the server plan is identical across the
  // fleet. Repeated dashboard shapes skip it entirely via the shared plan
  // cache (installed by the caching decorator; nullptr otherwise).
  Stopwatch translate_sw;
  TranslatorOptions topts = context_->translator;
  topts.cluster_workers = context_->cluster->num_workers();
  std::shared_ptr<const TranslatedQuery> cached_tq;
  bool plan_cache_hit = false;
  std::string plan_key;
  if (plan_cache_ != nullptr) {
    plan_key = PlanCacheKey(query, topts);
    cached_tq = plan_cache_->Find(plan_key);
    plan_cache_hit = cached_tq != nullptr;
  }
  if (cached_tq == nullptr) {
    const Translator translator(ver->view, *context_->keys);
    cached_tq = std::make_shared<TranslatedQuery>(translator.Translate(query, topts));
    if (plan_cache_ != nullptr) {
      plan_cache_->Insert(plan_key, cached_tq);
    }
  }
  const TranslatedQuery& tq = *cached_tq;

  // Joins broadcast the full replica: every shard joins its partition
  // against the whole right table, handed to the servers directly from the
  // right table's pinned version.
  const EncryptedDatabase* right_db = nullptr;
  const Table* right_table = nullptr;
  if (tq.server.join.has_value()) {
    const ShardedTableVersion* rver = CurrentVersion(query.join->right_table);
    SEABED_CHECK_MSG(rver != nullptr,
                     "joined table " << query.join->right_table << " not prepared");
    SEABED_CHECK(rver->replica != nullptr);
    right_db = rver->replica.get();
    right_table = right_db->table.get();
  }
  const double translate_seconds = translate_sw.ElapsedSeconds();

  ResultSet result = RunTranslated(query, fact, ver, right_db, right_table, tq, stats);
  if (stats != nullptr) {
    stats->translate_seconds = translate_seconds;
    stats->plan_cache_hit = plan_cache_hit;
  }
  return result;
}

ResultSet ShardedSeabedBackend::ExecutePrepared(const PreparedQuery& prepared,
                                                std::span<const Value> params,
                                                QueryStats* stats) {
  SEABED_CHECK_MSG(prepared.valid(), "ExecutePrepared on an invalid (default) handle");
  if (!prepared.parameterized()) {
    // A placeholder rides on a SPLASHE column: bind, then run the ad-hoc
    // path (the base implementation reports prepared/bind stats).
    return Executor::ExecutePrepared(prepared, params, stats);
  }
  const Query& shape = prepared.shape();
  const AttachedTable& fact = context_->catalog->Get(shape.table);
  if (shape.join.has_value()) {
    EnsureReplica(context_->catalog->Get(shape.join->right_table));
  }

  // The bound Query is still materialized per call — the intra-shard prune
  // gate estimates selectivity from the literals — but it is a plain struct
  // copy, not a parse or a translation.
  Stopwatch bind_sw;
  const Query bound = prepared.Bind(params);
  double bind_seconds = bind_sw.ElapsedSeconds();

  EpochDomain::Guard guard(epochs_);
  const ShardedTableVersion* ver = CurrentVersion(shape.table);
  SEABED_CHECK_MSG(ver != nullptr, "table " << fact.name << " was not prepared");

  // One translation per shape, shared by the whole fleet: the handle carries
  // the fingerprint half of the plan key, so a warm call is one map lookup.
  Stopwatch translate_sw;
  TranslatorOptions topts = context_->translator;
  topts.cluster_workers = context_->cluster->num_workers();
  TranslatedPlanCache& cache = plan_cache_ != nullptr ? *plan_cache_ : own_plan_cache_;
  const std::string plan_key =
      prepared.plan_key_base() + PlanCacheKeySuffix(shape.expected_groups, topts);
  std::shared_ptr<const TranslatedQuery> shape_tq = cache.Find(plan_key);
  const bool plan_cache_hit = shape_tq != nullptr;
  if (shape_tq == nullptr) {
    const Translator translator(ver->view, *context_->keys);
    shape_tq = std::make_shared<TranslatedQuery>(translator.Translate(shape, topts));
    cache.Insert(plan_key, shape_tq);
  }

  const EncryptedDatabase* right_db = nullptr;
  const Table* right_table = nullptr;
  if (shape_tq->server.join.has_value()) {
    const ShardedTableVersion* rver = CurrentVersion(shape.join->right_table);
    SEABED_CHECK_MSG(rver != nullptr,
                     "joined table " << shape.join->right_table << " not prepared");
    SEABED_CHECK(rver->replica != nullptr);
    right_db = rver->replica.get();
    right_table = right_db->table.get();
  }
  const double translate_seconds = translate_sw.ElapsedSeconds();

  Stopwatch plan_bind_sw;
  const TranslatedQuery bound_tq = BindTranslatedQuery(*shape_tq, params);
  bind_seconds += plan_bind_sw.ElapsedSeconds();

  ResultSet result = RunTranslated(bound, fact, ver, right_db, right_table, bound_tq, stats);
  if (stats != nullptr) {
    stats->translate_seconds = translate_seconds;
    stats->plan_cache_hit = plan_cache_hit;
    stats->prepared = true;
    stats->bind_seconds = bind_seconds;
  }
  return result;
}

ResultSet ShardedSeabedBackend::RunTranslated(const Query& query, const AttachedTable& fact,
                                              const ShardedTableVersion* ver,
                                              const EncryptedDatabase* right_db,
                                              const Table* right_table,
                                              const TranslatedQuery& tq, QueryStats* stats) {
  // Round one: probe all shards with a cheap row count (the shared
  // CountProbePlan, src/seabed/probe.h); round two then skips shards with no
  // matching rows. Two-round-trip queries always probe (the PR-2 contract);
  // ProbeMode::kForced extends the probe to every query.
  const ProbeOptions& popts = context_->probe;
  std::vector<bool> active(shards_, true);
  std::vector<double> shard_probe_seconds(shards_, 0.0);
  bool shard_probe_used = false;
  size_t shards_skipped = 0;

  // Round zero — coordinator-side shard routing, before any fan-out. Under
  // key-range placement, a clustering-key range predicate can only match
  // rows on shards whose owning [lo, hi] intersects it; every other shard is
  // excluded without ever being contacted. Routing reads the SAME pinned
  // version's boundaries the scan below runs on, so a rebalance publishing
  // moved boundaries concurrently can't make this query miss rows — it
  // either pinned the old version (old boundaries, old parts) or the new one
  // (both updated together). Non-routable queries (hash placement, no
  // clustering-key filter) keep the full fleet active.
  size_t shards_routed = shards_;
  if (ver->placement == PlacementPolicy::kKeyRange) {
    const std::optional<ClusteringKeyRange> range =
        ExtractClusteringKeyRange(query, ver->clustering_column);
    if (range.has_value()) {
      active = Placement::RouteShards(ver->boundaries, *range);
      shards_routed = static_cast<size_t>(std::count(active.begin(), active.end(), true));
    }
  }

  // kForced is still gated on the plan being prunable at the shard level —
  // without a predicate or join every non-empty shard reports matches and
  // the probe round is a second full fan-out for nothing. (Client-flagged
  // two-round queries keep probing unconditionally: the PR-2 contract.)
  // A query routed to zero shards skips the probe round outright: round two
  // is already decided.
  const bool shard_prunable = !tq.server.predicates.empty() || tq.server.join.has_value();
  if (shards_routed > 0 &&
      (query.needs_two_round_trips ||
       (popts.mode == ProbeMode::kForced && shard_prunable))) {
    shard_probe_used = true;
    std::vector<EncryptedResponse> probes =
        FanOut(*ver, CountProbePlan(tq.server), active, right_table);
    for (size_t s = 0; s < shards_; ++s) {
      if (!active[s]) {
        continue;  // routed out in round zero, not pruned by the probe
      }
      active[s] = probes[s].rows_touched > 0;
      shards_skipped += active[s] ? 0 : 1;
      shard_probe_seconds[s] = probes[s].ServerSeconds();
    }
  }

  // Intra-shard pruning gate — the same adaptive rule SeabedBackend applies:
  // the plan must be prunable at row-group granularity, and either the mode
  // forces it, the client flagged the two-round path, or the planner's
  // selectivity estimate predicts a win.
  bool intra_prune = false;
  if (popts.mode != ProbeMode::kOff && tq.probe.prunable) {
    intra_prune = popts.mode == ProbeMode::kForced || query.needs_two_round_trips ||
                  EstimateFilterSelectivity(query, fact.schema) <= popts.auto_selectivity_threshold;
  }

  bool any_active = false;
  for (size_t s = 0; s < shards_; ++s) {
    any_active = any_active || active[s];
  }

  std::vector<double> shard_round_two_seconds(shards_, 0.0);
  EncryptedResponse merged;
  double merge_seconds = 0;
  bool intra_probed = false;
  uint64_t row_groups_total = 0;
  uint64_t row_groups_pruned = 0;
  if (!any_active) {
    // Zero-match short-circuit (mirrors SeabedBackend): no shard holds a
    // matching row, so round two never fans out — the empty merged response
    // decrypts to the same rows a zero-match scan produces (global
    // aggregates still yield the SQL zero row).
    merged = EncryptedResponse{};
  } else {
    // Round two, pruned inside each surviving shard: the shard's Server
    // evaluates the plan's ProbeSection against its row-group summary index
    // and scans only the surviving ranges — the same pruned-scan
    // Execute(scan_ranges) path the single-server backend runs, now inside
    // the fleet. Shards whose index rules out every group skip the scan.
    std::vector<EncryptedResponse> responses(shards_);
    std::vector<ServerProbeResult> probes(shards_);
    std::vector<char> probed(shards_, 0);
    pool_.ParallelFor(shards_, [&](size_t s) {
      if (!active[s]) {
        return;
      }
      const std::vector<RowRange>* scan_ranges = nullptr;
      if (intra_prune) {
        probes[s] = ver->probes[s]->Probe(*ver->parts[s].table, tq.probe, popts.row_group_size);
        probed[s] = 1;
        if (probes[s].surviving.empty()) {
          return;  // shard-local zero match: no round-two scan here
        }
        scan_ranges = &probes[s].surviving;
      }
      responses[s] = servers_[s].Execute(tq.server, *context_->cluster,
                                         ver->parts[s].table.get(), right_table, scan_ranges);
    });
    for (size_t s = 0; s < shards_; ++s) {
      if (probed[s]) {
        intra_probed = true;
        row_groups_total += probes[s].total_groups;
        row_groups_pruned += probes[s].pruned_groups;
        shard_probe_seconds[s] += probes[s].seconds;
      }
      shard_round_two_seconds[s] = responses[s].ServerSeconds();
    }

    Stopwatch merge_sw;
    merged = MergeShardResponses(tq.server, responses);
    merge_seconds = merge_sw.ElapsedSeconds();
    merged.driver_seconds += merge_seconds;
  }

  // Shards probe in parallel, so the probe round costs the slowest shard.
  double probe_seconds = 0;
  for (const double s : shard_probe_seconds) {
    probe_seconds = std::max(probe_seconds, s);
  }
  const bool probe_used = shard_probe_used || intra_probed;

  const Client client(ver->view, *context_->keys);
  ResultSet result = client.Decrypt(merged, tq, *context_->cluster, right_db, stats);
  if (stats != nullptr) {
    stats->backend = name();
    // Shards are independent clusters running in parallel: total simulated
    // server latency is the probe round (if any) plus the slowest shard of
    // round two plus the coordinator merge (already inside driver_seconds).
    stats->server_seconds += probe_seconds;
    // The two rounds report separately: a shard pruned in round one (or by
    // its own index) did no round-two work and must not bill any.
    stats->shard_server_seconds = std::move(shard_round_two_seconds);
    stats->shard_probe_seconds = std::move(shard_probe_seconds);
    stats->merge_seconds = merge_seconds;
    stats->shards_routed = shards_routed;
    stats->shards_total = shards_;
    stats->probe_used = probe_used;
    stats->probe_seconds = probe_seconds;
    if (intra_probed) {
      // Row groups of the shards' summary indexes, aggregated across the
      // fleet (shards skipped by round one were never probed at row-group
      // granularity and contribute nothing).
      stats->row_groups_total = row_groups_total;
      stats->row_groups_pruned = row_groups_pruned;
    } else {
      // Only the shard-level count probe ran: a "row group" is a shard.
      stats->row_groups_total = shard_probe_used ? shards_ : 0;
      stats->row_groups_pruned = shards_skipped;
    }
  }
  return result;
}

}  // namespace seabed
