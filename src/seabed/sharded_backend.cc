#include "src/seabed/sharded_backend.h"

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/seabed/client.h"
#include "src/seabed/planner.h"
#include "src/seabed/probe.h"

namespace seabed {
namespace {

// Shards encrypt into disjoint ASHE identifier spaces: shard s starts at
// 1 + s * kShardIdStride. The stride leaves each shard ~10^12 identifiers of
// headroom, so appends keep growing a shard's contiguous run without ever
// reaching the next shard's space.
constexpr uint64_t kShardIdStride = uint64_t{1} << 40;

uint64_t ShardBaseId(size_t shard) { return 1 + shard * kShardIdStride; }

// Copies the selected rows of a plaintext table into a fresh table (fresh
// columns — sub-tables must not alias the attached table, whose columns the
// full replica shares).
std::shared_ptr<Table> SubsetRows(const Table& src, const std::string& name,
                                  const std::vector<size_t>& rows) {
  auto out = std::make_shared<Table>(name);
  for (const std::string& col_name : src.column_names()) {
    const ColumnPtr& col = src.GetColumn(col_name);
    if (col->type() == ColumnType::kInt64) {
      const auto* s = static_cast<const Int64Column*>(col.get());
      auto c = std::make_shared<Int64Column>();
      for (const size_t row : rows) {
        c->Append(s->Get(row));
      }
      out->AddColumn(col_name, std::move(c));
    } else {
      SEABED_CHECK_MSG(col->type() == ColumnType::kString,
                       "sharding supports plaintext int/string columns only (" << col_name << ")");
      const auto* s = static_cast<const StringColumn*>(col.get());
      auto c = std::make_shared<StringColumn>();
      for (const size_t row : rows) {
        c->Append(s->Get(row));
      }
      out->AddColumn(col_name, std::move(c));
    }
  }
  return out;
}

void MergeDictionaries(const EncryptedDatabase& from, EncryptedDatabase& into) {
  for (const auto& [col, dict] : from.det_dictionaries) {
    into.det_dictionaries[col].insert(dict.begin(), dict.end());
  }
  into.det_value_types.insert(from.det_value_types.begin(), from.det_value_types.end());
}

// Keeps an ORE winner if `src` beats it (or `dst` has none yet).
void ReduceMinMax(ServerAggregate::Kind kind, const ServerAggResult& src, ServerAggResult& dst) {
  if (!src.minmax_valid) {
    return;
  }
  bool better = !dst.minmax_valid;
  if (!better) {
    const int order = Ore::Compare(src.minmax_ore, dst.minmax_ore).order;
    better = kind == ServerAggregate::Kind::kOreMin ? order < 0 : order > 0;
  }
  if (better) {
    dst.minmax_valid = true;
    dst.minmax_ore = src.minmax_ore;
    dst.minmax_cipher = src.minmax_cipher;
    dst.minmax_id = src.minmax_id;
  }
}

// The coordinator merge: combines per-shard encrypted responses without any
// key material. Groups union-merge by serialized key; within a group, ASHE
// sums add ciphertext-side (ID blobs concatenate — identifier spaces are
// disjoint), counts add, and ORE min/max reduce. Timing fields model the
// shards running in parallel (max), byte counts add. The caller adds the
// measured merge wall-clock to `driver_seconds`.
EncryptedResponse MergeShardResponses(const ServerPlan& plan,
                                      std::vector<EncryptedResponse>& parts) {
  EncryptedResponse out;
  std::vector<JobStats> jobs;
  jobs.reserve(parts.size());
  std::map<std::string, ServerGroup> merged;
  for (EncryptedResponse& part : parts) {
    jobs.push_back(part.job);
    out.driver_seconds = std::max(out.driver_seconds, part.driver_seconds);
    out.shuffle_seconds = std::max(out.shuffle_seconds, part.shuffle_seconds);
    out.shuffle_bytes += part.shuffle_bytes;
    out.rows_touched += part.rows_touched;
    for (ServerGroup& group : part.groups) {
      auto [it, inserted] = merged.try_emplace(group.key, std::move(group));
      if (inserted) {
        continue;
      }
      ServerGroup& dst = it->second;
      for (size_t a = 0; a < plan.aggregates.size(); ++a) {
        ServerAggResult& da = dst.aggs[a];
        ServerAggResult& sa = group.aggs[a];
        switch (plan.aggregates[a].kind) {
          case ServerAggregate::Kind::kAsheSum:
            da.ashe_value += sa.ashe_value;
            da.id_blobs.insert(da.id_blobs.end(),
                               std::make_move_iterator(sa.id_blobs.begin()),
                               std::make_move_iterator(sa.id_blobs.end()));
            break;
          case ServerAggregate::Kind::kRowCount:
            da.row_count += sa.row_count;
            break;
          case ServerAggregate::Kind::kOreMin:
          case ServerAggregate::Kind::kOreMax:
            ReduceMinMax(plan.aggregates[a].kind, sa, da);
            break;
        }
      }
    }
  }
  out.job = MergeParallelJobs(jobs);

  size_t bytes = 0;
  for (auto& [key, group] : merged) {
    bytes += group.key.size();
    for (const ServerAggResult& agg : group.aggs) {
      bytes += 8;
      for (const Bytes& blob : agg.id_blobs) {
        bytes += blob.size();
      }
      if (agg.minmax_valid) {
        bytes += 16;
      }
    }
    out.groups.push_back(std::move(group));
  }
  out.response_bytes = bytes;
  return out;
}

}  // namespace

ShardedSeabedBackend::ShardedSeabedBackend(const ExecutionContext* context, size_t shards)
    : context_(context),
      shards_(shards),
      servers_(shards),
      pool_(std::min<size_t>(std::max<size_t>(shards, 1),
                             std::max<unsigned>(1, std::thread::hardware_concurrency()))) {
  SEABED_CHECK_MSG(shards_ >= 1, "a sharded backend needs at least one shard");
}

size_t ShardedSeabedBackend::ShardOfRow(size_t row) const {
  // Multiplicative hash so placement cannot correlate with data order.
  return static_cast<size_t>((row * 0x9E3779B97F4A7C15ULL) >> 33) % shards_;
}

ShardedSeabedBackend::ShardedTable& ShardedSeabedBackend::State(const std::string& table) {
  const auto it = tables_.find(table);
  SEABED_CHECK_MSG(it != tables_.end(), "table " << table << " was not prepared for sharding");
  return it->second;
}

const ShardedSeabedBackend::ShardedTable& ShardedSeabedBackend::State(
    const std::string& table) const {
  const auto it = tables_.find(table);
  SEABED_CHECK_MSG(it != tables_.end(), "table " << table << " was not prepared for sharding");
  return it->second;
}

const Server& ShardedSeabedBackend::shard_server(size_t shard) const {
  SEABED_CHECK(shard < shards_);
  return servers_[shard];
}

const EncryptedDatabase& ShardedSeabedBackend::shard_database(const std::string& table,
                                                              size_t shard) const {
  SEABED_CHECK(shard < shards_);
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return State(table).parts[shard];
}

const EncryptedDatabase* ShardedSeabedBackend::replica_database(const std::string& table) const {
  std::shared_lock<std::shared_mutex> state_lock(state_mu_);
  std::lock_guard<std::mutex> lock(replica_mu_);
  const ShardedTable& state = State(table);
  return state.replica.has_value() ? &*state.replica : nullptr;
}

std::vector<size_t> ShardedSeabedBackend::ShardRowCounts(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  const ShardedTable& state = State(table);
  std::vector<size_t> counts(shards_);
  for (size_t s = 0; s < shards_; ++s) {
    counts[s] = state.plain_parts[s]->NumRows();
  }
  return counts;
}

const EncryptedDatabase& ShardedSeabedBackend::EnsureReplica(const AttachedTable& right) {
  std::lock_guard<std::mutex> lock(replica_mu_);
  ShardedTable& state = State(right.name);
  if (!state.replica.has_value()) {
    // The replica shares column keys with the shard partitions, so it must
    // occupy its own identifier space — it lives just above the last
    // shard's. Reusing a shard's base would repeat ASHE pads across two
    // ciphertexts of different plaintexts, leaking their difference.
    const Encryptor encryptor(*context_->keys);
    state.replica = encryptor.EncryptWithBaseId(*right.plain, right.schema, right.plan,
                                                ShardBaseId(shards_));
  }
  return *state.replica;
}

void ShardedSeabedBackend::Prepare(AttachedTable& table) {
  std::unique_lock<std::shared_mutex> state_lock(state_mu_);
  const Encryptor encryptor(*context_->keys);
  ShardedTable state;
  // Slots 0..shards-1 belong to the shard partitions, slot `shards_` to the
  // lazily built join replica; rebalancing allocates fresh slots from here.
  state.next_id_slot = shards_ + 1;

  // Hash-partition the rows.
  std::vector<std::vector<size_t>> assignment(shards_);
  const size_t rows = table.plain->NumRows();
  for (size_t row = 0; row < rows; ++row) {
    assignment[ShardOfRow(row)].push_back(row);
  }

  state.plain_parts.resize(shards_);
  state.parts.resize(shards_);
  // Shard encryptions are independent (shared inputs are const) — build
  // them concurrently on the fan-out pool so attach cost does not grow
  // linearly with the shard count.
  pool_.ParallelFor(shards_, [&](size_t s) {
    state.plain_parts[s] =
        SubsetRows(*table.plain, table.name + "#shard" + std::to_string(s), assignment[s]);
    state.parts[s] = encryptor.EncryptWithBaseId(*state.plain_parts[s], table.schema,
                                                 table.plan, ShardBaseId(s));
  });
  for (size_t s = 0; s < shards_; ++s) {
    servers_[s].RegisterTable(state.parts[s].table);
  }

  // The client-side view: one plan (identical across shards) plus the union
  // of the shards' DET dictionaries, so group keys produced by any shard
  // render back to plaintext.
  EncryptedDatabase view;
  view.plan = state.parts.front().plan;
  view.table = state.parts.front().table;
  for (const EncryptedDatabase& part : state.parts) {
    MergeDictionaries(part, view);
  }
  table.enc = std::move(view);

  tables_[table.name] = std::move(state);
}

void ShardedSeabedBackend::Append(AttachedTable& table, const Table& new_rows) {
  std::unique_lock<std::shared_mutex> state_lock(state_mu_);
  ShardedTable& state = State(table.name);
  const Encryptor encryptor(*context_->keys);
  const size_t prior_rows = table.plain->NumRows();

  // When a replica exists it shares the attached table's non-sensitive
  // columns, so grow those through AppendRows and the rest directly
  // (mirrors SeabedBackend); without one, grow the plaintext table whole.
  {
    std::lock_guard<std::mutex> lock(replica_mu_);
    if (state.replica.has_value()) {
      GrowPlainTable(*table.plain, new_rows, state.replica->table.get());
      encryptor.AppendRows(*state.replica, new_rows, table.schema);
    } else {
      GrowPlainTable(*table.plain, new_rows, nullptr);
    }
  }

  // Append locality: the whole batch lands on the shard that owns its first
  // global row — one encryption stream per batch, the way log-structured
  // ingest appends land in one partition. A skewed stream of batches can
  // therefore concentrate rows on few shards; MaybeRebalance repairs that
  // when SessionOptions::shards_rebalance says to.
  const size_t dest = ShardOfRow(prior_rows);
  GrowPlainTable(*state.plain_parts[dest], new_rows, state.parts[dest].table.get());
  encryptor.AppendRows(state.parts[dest], new_rows, table.schema);

  // Appends may mint new DET tokens (dictionary growth); refresh the view.
  SEABED_CHECK(table.enc.has_value());
  MergeDictionaries(state.parts[dest], *table.enc);

  MaybeRebalance(table, state, encryptor);
}

void ShardedSeabedBackend::MaybeRebalance(const AttachedTable& table, ShardedTable& state,
                                          const Encryptor& encryptor) {
  const ShardRebalanceOptions& opts = context_->rebalance;
  if (!opts.enabled || shards_ < 2) {
    return;
  }
  const size_t group = std::max<size_t>(1, opts.row_group_size);

  std::vector<size_t> counts(shards_);
  size_t total = 0;
  for (size_t s = 0; s < shards_; ++s) {
    counts[s] = state.plain_parts[s]->NumRows();
    total += counts[s];
  }
  if (total == 0) {
    return;
  }
  const double ideal = static_cast<double>(total) / static_cast<double>(shards_);
  // Below one whole row-group of surplus there is nothing movable, whatever
  // the ratio says.
  const double trigger = std::max(ideal * opts.max_skew_ratio, ideal + static_cast<double>(group));

  // Plan the moves on row counts first (cheap), then execute with a single
  // donor re-encryption per donor. Every move carves whole row-groups off
  // the donor's current tail — the cut lands on a boundary of the donor's
  // local group grid, so moved units are exactly the groups a probe index
  // summarizes. A shard never plays both roles: a donor turned recipient
  // would invalidate the tail arithmetic below.
  struct Move {
    size_t donor = 0;
    size_t recipient = 0;
    size_t rows = 0;
  };
  std::vector<Move> moves;
  std::vector<char> was_donor(shards_, 0), was_recipient(shards_, 0);
  for (size_t iter = 0; iter < shards_ * 8; ++iter) {
    const size_t donor =
        std::max_element(counts.begin(), counts.end()) - counts.begin();
    const size_t recipient =
        std::min_element(counts.begin(), counts.end()) - counts.begin();
    if (donor == recipient || static_cast<double>(counts[donor]) <= trigger ||
        was_recipient[donor] || was_donor[recipient]) {
      break;
    }
    const size_t surplus = counts[donor] - static_cast<size_t>(ideal);
    const size_t deficit = static_cast<size_t>(ideal) > counts[recipient]
                               ? static_cast<size_t>(ideal) - counts[recipient]
                               : 0;
    const size_t want = std::min(surplus, std::max(deficit, group));
    // The donor's tail partial group moves first, then whole groups.
    size_t rows = counts[donor] % group;
    while (rows + group <= want) {
      rows += group;
    }
    if (rows == 0) {
      rows = std::min(counts[donor], group);
    }
    if (rows >= counts[donor] || counts[recipient] + rows >= counts[donor] - rows + group) {
      break;  // never empty a shard or mint a new hotspot
    }
    moves.push_back({donor, recipient, rows});
    was_donor[donor] = 1;
    was_recipient[recipient] = 1;
    counts[donor] -= rows;
    counts[recipient] += rows;
  }
  if (moves.empty()) {
    return;
  }

  Stopwatch sw;
  rebalance_stats_.rebalances += 1;
  std::vector<size_t> tail(shards_);  // donor cut position, walks toward 0
  for (size_t s = 0; s < shards_; ++s) {
    tail[s] = state.plain_parts[s]->NumRows();
  }
  for (const Move& move : moves) {
    // Re-encrypting into the recipient's identifier space is the canonical
    // append path: AppendRows continues the recipient's contiguous ASHE run,
    // so identifier spaces stay disjoint and merge semantics are untouched.
    std::vector<size_t> rows(move.rows);
    std::iota(rows.begin(), rows.end(), tail[move.donor] - move.rows);
    const auto segment =
        SubsetRows(*state.plain_parts[move.donor], table.name + "#migrate", rows);
    GrowPlainTable(*state.plain_parts[move.recipient], *segment,
                   state.parts[move.recipient].table.get());
    encryptor.AppendRows(state.parts[move.recipient], *segment, table.schema);
    tail[move.donor] -= move.rows;
    rebalance_stats_.rows_moved += move.rows;
    rebalance_stats_.row_groups_moved += (move.rows + group - 1) / group;
  }
  for (size_t s = 0; s < shards_; ++s) {
    if (!was_donor[s]) {
      continue;
    }
    // The donor's remainder re-encrypts into a fresh identifier-space slot.
    // This costs O(remaining rows) per donor, but the cheap alternative —
    // truncating the donor in place, which would keep the prefix
    // ciphertexts unchanged — is unsafe: later appends would re-mint the
    // truncated tail's identifiers (ids are base + row) for different
    // plaintexts, repeating ASHE pads an adversary who recorded the old
    // upload could subtract to learn plaintext differences.
    std::vector<size_t> kept(tail[s]);
    std::iota(kept.begin(), kept.end(), size_t{0});
    auto remainder = SubsetRows(*state.plain_parts[s],
                                table.name + "#shard" + std::to_string(s), kept);
    state.parts[s] = encryptor.EncryptWithBaseId(*remainder, table.schema, table.plan,
                                                 ShardBaseId(state.next_id_slot++));
    state.plain_parts[s] = std::move(remainder);
    // Replaces the old registration; the server's row-group index re-syncs
    // against the shrunken table at the next probe.
    servers_[s].RegisterTable(state.parts[s].table);
    rebalance_stats_.rows_reencrypted += tail[s];
  }
  rebalance_stats_.seconds += sw.ElapsedSeconds();
}

std::vector<EncryptedResponse> ShardedSeabedBackend::FanOut(const ServerPlan& plan,
                                                            const std::vector<bool>& active,
                                                            const Table* right) const {
  std::vector<EncryptedResponse> responses(shards_);
  pool_.ParallelFor(shards_, [&](size_t s) {
    if (active[s]) {
      responses[s] = servers_[s].Execute(plan, *context_->cluster, right);
    }
  });
  return responses;
}

ResultSet ShardedSeabedBackend::Execute(const Query& query, QueryStats* stats) {
  // Shared for the whole call: Append (exclusive) must never grow a shard
  // partition or the join replica while a fan-out is scanning them.
  std::shared_lock<std::shared_mutex> state_lock(state_mu_);
  const AttachedTable& fact = context_->catalog->Get(query.table);
  SEABED_CHECK_MSG(fact.enc.has_value(), "table " << fact.name << " was not prepared");

  // One translation serves every shard: the shards share the encryption
  // plan, keys and table name, so the server plan is identical across the
  // fleet. Repeated dashboard shapes skip it entirely via the shared plan
  // cache (installed by the caching decorator; nullptr otherwise).
  Stopwatch translate_sw;
  TranslatorOptions topts = context_->translator;
  topts.cluster_workers = context_->cluster->num_workers();
  std::shared_ptr<const TranslatedQuery> cached_tq;
  bool plan_cache_hit = false;
  std::string plan_key;
  if (plan_cache_ != nullptr) {
    plan_key = PlanCacheKey(query, topts);
    cached_tq = plan_cache_->Find(plan_key);
    plan_cache_hit = cached_tq != nullptr;
  }
  if (cached_tq == nullptr) {
    const Translator translator(*fact.enc, *context_->keys);
    cached_tq = std::make_shared<TranslatedQuery>(translator.Translate(query, topts));
    if (plan_cache_ != nullptr) {
      plan_cache_->Insert(plan_key, cached_tq);
    }
  }
  const TranslatedQuery& tq = *cached_tq;

  // Joins broadcast the full replica: every shard joins its partition
  // against the whole right table, handed to the servers directly (it never
  // enters their registries).
  const EncryptedDatabase* right_db = nullptr;
  const Table* right_table = nullptr;
  if (tq.server.join.has_value()) {
    const AttachedTable& right = context_->catalog->Get(query.join->right_table);
    SEABED_CHECK_MSG(right.enc.has_value(), "joined table " << right.name << " not prepared");
    right_db = &EnsureReplica(right);
    right_table = right_db->table.get();
  }
  const double translate_seconds = translate_sw.ElapsedSeconds();

  // Round one: probe all shards with a cheap row count (the shared
  // CountProbePlan, src/seabed/probe.h); round two then skips shards with no
  // matching rows. Two-round-trip queries always probe (the PR-2 contract);
  // ProbeMode::kForced extends the probe to every query.
  const ProbeOptions& popts = context_->probe;
  std::vector<bool> active(shards_, true);
  std::vector<double> shard_probe_seconds(shards_, 0.0);
  bool shard_probe_used = false;
  size_t shards_skipped = 0;
  // kForced is still gated on the plan being prunable at the shard level —
  // without a predicate or join every non-empty shard reports matches and
  // the probe round is a second full fan-out for nothing. (Client-flagged
  // two-round queries keep probing unconditionally: the PR-2 contract.)
  const bool shard_prunable = !tq.server.predicates.empty() || tq.server.join.has_value();
  if (query.needs_two_round_trips ||
      (popts.mode == ProbeMode::kForced && shard_prunable)) {
    shard_probe_used = true;
    std::vector<EncryptedResponse> probes = FanOut(CountProbePlan(tq.server), active, right_table);
    for (size_t s = 0; s < shards_; ++s) {
      active[s] = probes[s].rows_touched > 0;
      shards_skipped += active[s] ? 0 : 1;
      shard_probe_seconds[s] = probes[s].ServerSeconds();
    }
  }

  // Intra-shard pruning gate — the same adaptive rule SeabedBackend applies:
  // the plan must be prunable at row-group granularity, and either the mode
  // forces it, the client flagged the two-round path, or the planner's
  // selectivity estimate predicts a win.
  bool intra_prune = false;
  if (popts.mode != ProbeMode::kOff && tq.probe.prunable) {
    intra_prune = popts.mode == ProbeMode::kForced || query.needs_two_round_trips ||
                  EstimateFilterSelectivity(query, fact.schema) <= popts.auto_selectivity_threshold;
  }

  bool any_active = false;
  for (size_t s = 0; s < shards_; ++s) {
    any_active = any_active || active[s];
  }

  std::vector<double> shard_round_two_seconds(shards_, 0.0);
  EncryptedResponse merged;
  double merge_seconds = 0;
  bool intra_probed = false;
  uint64_t row_groups_total = 0;
  uint64_t row_groups_pruned = 0;
  if (!any_active) {
    // Zero-match short-circuit (mirrors SeabedBackend): no shard holds a
    // matching row, so round two never fans out — the empty merged response
    // decrypts to the same rows a zero-match scan produces (global
    // aggregates still yield the SQL zero row).
    merged = EncryptedResponse{};
  } else {
    // Round two, pruned inside each surviving shard: the shard's Server
    // evaluates the plan's ProbeSection against its row-group summary index
    // and scans only the surviving ranges — the same pruned-scan
    // Execute(scan_ranges) path the single-server backend runs, now inside
    // the fleet. Shards whose index rules out every group skip the scan.
    std::vector<EncryptedResponse> responses(shards_);
    std::vector<ServerProbeResult> probes(shards_);
    std::vector<char> probed(shards_, 0);
    pool_.ParallelFor(shards_, [&](size_t s) {
      if (!active[s]) {
        return;
      }
      const std::vector<RowRange>* scan_ranges = nullptr;
      if (intra_prune) {
        probes[s] = servers_[s].Probe(tq.server.table, tq.probe, popts.row_group_size);
        probed[s] = 1;
        if (probes[s].surviving.empty()) {
          return;  // shard-local zero match: no round-two scan here
        }
        scan_ranges = &probes[s].surviving;
      }
      responses[s] = servers_[s].Execute(tq.server, *context_->cluster, right_table, scan_ranges);
    });
    for (size_t s = 0; s < shards_; ++s) {
      if (probed[s]) {
        intra_probed = true;
        row_groups_total += probes[s].total_groups;
        row_groups_pruned += probes[s].pruned_groups;
        shard_probe_seconds[s] += probes[s].seconds;
      }
      shard_round_two_seconds[s] = responses[s].ServerSeconds();
    }

    Stopwatch merge_sw;
    merged = MergeShardResponses(tq.server, responses);
    merge_seconds = merge_sw.ElapsedSeconds();
    merged.driver_seconds += merge_seconds;
  }

  // Shards probe in parallel, so the probe round costs the slowest shard.
  double probe_seconds = 0;
  for (const double s : shard_probe_seconds) {
    probe_seconds = std::max(probe_seconds, s);
  }
  const bool probe_used = shard_probe_used || intra_probed;

  const Client client(*fact.enc, *context_->keys);
  ResultSet result = client.Decrypt(merged, tq, *context_->cluster, right_db, stats);
  if (stats != nullptr) {
    stats->backend = name();
    stats->translate_seconds = translate_seconds;
    stats->plan_cache_hit = plan_cache_hit;
    // Shards are independent clusters running in parallel: total simulated
    // server latency is the probe round (if any) plus the slowest shard of
    // round two plus the coordinator merge (already inside driver_seconds).
    stats->server_seconds += probe_seconds;
    // The two rounds report separately: a shard pruned in round one (or by
    // its own index) did no round-two work and must not bill any.
    stats->shard_server_seconds = std::move(shard_round_two_seconds);
    stats->shard_probe_seconds = std::move(shard_probe_seconds);
    stats->merge_seconds = merge_seconds;
    stats->probe_used = probe_used;
    stats->probe_seconds = probe_seconds;
    if (intra_probed) {
      // Row groups of the shards' summary indexes, aggregated across the
      // fleet (shards skipped by round one were never probed at row-group
      // granularity and contribute nothing).
      stats->row_groups_total = row_groups_total;
      stats->row_groups_pruned = row_groups_pruned;
    } else {
      // Only the shard-level count probe ran: a "row group" is a shard.
      stats->row_groups_total = shard_probe_used ? shards_ : 0;
      stats->row_groups_pruned = shards_skipped;
    }
  }
  return result;
}

}  // namespace seabed
