// The seabed::Session facade — one object for the paper's whole pipeline.
//
// A Session owns everything the five-class dance used to thread by hand:
// the cluster model, client keys, planner output, encrypted databases, the
// join-table registry, and the execution backend. Typical use:
//
//   SessionOptions options;
//   options.backend = BackendKind::kSeabed;
//   Session session(options);
//   session.Attach(table, schema, sample_queries);   // plan + encrypt + upload
//   QueryStats stats;
//   ResultSet r = session.Execute(MustParseSql(sql), &stats);
//
// Swapping `options.backend` re-runs the same queries on the NoEnc or
// Paillier baseline — the evaluation's backend-for-backend comparison in one
// line. Joined tables are Attach()ed like any other table and resolved by
// name from the query's JOIN clause.
#ifndef SEABED_SRC_SEABED_SESSION_H_
#define SEABED_SRC_SEABED_SESSION_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/seabed/executor.h"

namespace seabed {

struct SessionOptions {
  BackendKind backend = BackendKind::kSeabed;

  // Cluster model for this session. Ignored when `external_cluster` is set
  // (non-owning; must outlive the Session) — benches sweeping core counts
  // share one encrypted database across many cluster shapes that way.
  ClusterConfig cluster;
  const Cluster* external_cluster = nullptr;

  PlannerOptions planner;
  TranslatorOptions translator;
  PaillierBackendOptions paillier;

  // Two-round probe-and-prune execution (src/seabed/probe.h). On kSeabed
  // (standalone or as a caching inner) round one consults the server's
  // row-group summaries and round two scans only surviving groups; on
  // kShardedSeabed kForced extends the shard-level probe to every query.
  // kPlain/kPaillier ignore it.
  ProbeOptions probe;

  // Fan-out width of the kShardedSeabed backend (ignored by the others).
  // Each shard is an independent Server holding a hash partition of every
  // attached table; queries fan out and merge at the coordinator.
  size_t shards = 4;

  // Row→shard placement of the kShardedSeabed backend (ignored by the
  // others). The default reproduces the PR-2 multiplicative hash bit-for-bit;
  // PlacementPolicy::kKeyRange places each table named in
  // `shards_placement.clustering_columns` by contiguous ranges of that
  // column, enabling round-zero shard routing of clustering-key range
  // predicates (see src/seabed/placement.h and QueryStats::shards_routed).
  ShardPlacementOptions shards_placement;

  // Skew-aware rebalancing of the kShardedSeabed backend (off by default;
  // ignored by the others). Appends place whole batches on one shard, so a
  // skewed stream unbalances the fleet; past the configured skew ratio,
  // Append migrates whole row-groups to underloaded shards (see
  // ShardRebalanceOptions in executor.h and Session::rebalance_stats()).
  ShardRebalanceOptions shards_rebalance;

  // kCachingSeabed configuration: the inner backend that executes misses
  // (kSeabed or kShardedSeabed — `shards` applies to the latter) and the
  // result-cache LRU budgets. Ignored by the other backends.
  CacheOptions cache;

  // Master-secret seed for the per-column key derivation.
  uint64_t key_seed = 0xC0FFEE;
};

class Session {
 public:
  explicit Session(SessionOptions options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Registers `table` under its name: runs the planner over `sample_queries`
  // and lets the backend encrypt/upload as needed. Joined tables are attached
  // the same way and resolved by name at query time.
  void Attach(std::shared_ptr<Table> table, const PlainSchema& schema,
              const std::vector<Query>& sample_queries);

  // Attach with a precomputed encryption plan (skips the planner) — used
  // when several sessions must share the exact plan.
  void AttachPlanned(std::shared_ptr<Table> table, const PlainSchema& schema,
                     EncryptionPlan plan);

  // Appends plaintext rows to an attached table (paper Section 4.1): the
  // attached plaintext table and the backend's encrypted state both grow.
  // `stats`, when non-null, receives the ingest job's modeled cluster cost
  // (same real-compute / synthetic-fabric contract as query execution).
  void Append(const std::string& table, const Table& new_rows,
              JobStats* stats = nullptr);

  // Runs one query end-to-end on the session's backend. `stats`, when
  // non-null, receives the per-call latency breakdown.
  ResultSet Execute(const Query& query, QueryStats* stats = nullptr);

  // --- prepared statements (src/seabed/prepared.h) ---------------------------
  // Validates `shape` (table attached, placeholder slots contiguous and
  // unique) and freezes its fingerprints into a reusable handle. The first
  // Execute of the handle translates the shape into the plan cache; every
  // later Execute binds and runs — no parser, no planner lookup, no
  // retranslation. Shapes whose placeholders land on SPLASHE-protected
  // columns are marked non-parameterized and transparently fall back to
  // bind-then-ad-hoc execution (same rows, no plan reuse).
  PreparedQuery Prepare(const Query& shape) const;

  // Executes the prepared shape with `params` bound to its slots. Returns
  // exactly the rows of Execute(prepared.Bind(params)).
  ResultSet Execute(const PreparedQuery& prepared, std::span<const Value> params,
                    QueryStats* stats = nullptr);

  // Concurrent prepared executions, one per parameter vector (the prepared
  // analogue of ExecuteBatch — same contract, same stats caveat).
  std::vector<ResultSet> ExecutePreparedBatch(const PreparedQuery& prepared,
                                              std::span<const std::vector<Value>> param_sets,
                                              std::vector<QueryStats>* stats = nullptr);

  // Runs a batch concurrently on the host pool, reusing the session's
  // prepared translation state. `stats`, when non-null, is resized to one
  // entry per query. Rows are identical to serial Execute calls; the timing
  // fields reflect contended host cores, so use serial Execute when
  // measuring latency and ExecuteBatch when measuring throughput.
  std::vector<ResultSet> ExecuteBatch(std::span<const Query> queries,
                                      std::vector<QueryStats>* stats = nullptr);

  // --- knobs benches sweep between Execute calls -----------------------------
  // Point the session at a different cluster model (nullptr = back to the
  // session-owned cluster). Non-owning.
  void UseCluster(const Cluster* cluster);
  void set_translator_options(const TranslatorOptions& options);
  const TranslatorOptions& translator_options() const { return context_.translator; }
  // Probe-mode sweeps (off vs. auto vs. forced) without re-encrypting
  // anything — the probe benches flip this between Execute calls.
  void set_probe_options(const ProbeOptions& options);
  const ProbeOptions& probe_options() const { return context_.probe; }

  // --- accessors --------------------------------------------------------------
  const Cluster& cluster() const { return *context_.cluster; }
  const ClientKeys& keys() const { return keys_; }
  BackendKind backend_kind() const { return options_.backend; }
  Executor& executor() { return *executor_; }

  // Snapshot of the cumulative shard-rebalancing moves, or nullopt on
  // backends that never migrate rows (everything but kShardedSeabed / a
  // caching wrapper over it). Safe to poll while appends run.
  std::optional<RebalanceStats> rebalance_stats() const { return executor_->rebalance_stats(); }

  const AttachedTable& attached(const std::string& table) const { return catalog_.Get(table); }
  const EncryptionPlan& plan(const std::string& table) const;
  // The encrypted database the backend built for `table` (aborts on the
  // plain backend, which has none).
  const EncryptedDatabase& encrypted_database(const std::string& table) const;

 private:
  SessionOptions options_;
  ClientKeys keys_;
  std::unique_ptr<Cluster> own_cluster_;
  TableCatalog catalog_;
  ExecutionContext context_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace seabed

#endif  // SEABED_SRC_SEABED_SESSION_H_
