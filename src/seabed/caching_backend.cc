#include "src/seabed/caching_backend.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"

namespace seabed {

size_t EstimateResultBytes(const ResultSet& result) {
  size_t bytes = sizeof(ResultSet);
  for (const std::string& name : result.column_names) {
    bytes += sizeof(std::string) + name.size();
  }
  for (const auto& row : result.rows) {
    bytes += sizeof(row) + row.size() * sizeof(Value);
    for (const Value& v : row) {
      if (const auto* s = std::get_if<std::string>(&v)) {
        bytes += s->size();
      }
    }
  }
  return bytes;
}

CachingSeabedBackend::CachingSeabedBackend(const CacheOptions& options,
                                           std::unique_ptr<Executor> inner)
    : options_(options), inner_(std::move(inner)), plan_cache_(options.plan_cache_entries) {
  SEABED_CHECK_MSG(inner_ != nullptr, "caching backend needs an inner executor");
  SEABED_CHECK_MSG(options_.max_entries >= 1, "caching backend needs room for one entry");
  if (options_.cache_plans) {
    inner_->SetPlanCache(&plan_cache_);
  }
}

void CachingSeabedBackend::Prepare(AttachedTable& table) {
  // Exclusive: the inner backend's tables must not change under a running
  // query (the inner executors assume Prepare/Append are externally ordered
  // against Execute — see Executor).
  std::unique_lock<std::shared_mutex> serve_lock(serve_mu_);
  inner_->Prepare(table);
  // A (re-)attach changes what queries over this table should see.
  InvalidateTable(table.name);
}

void CachingSeabedBackend::Append(AttachedTable& table, const Table& new_rows,
                                 JobStats* stats) {
  // Snapshot-isolated inner backends synchronize appends internally (the new
  // version is built off to the side and published with one atomic swap), so
  // in-flight misses keep executing over their pinned snapshot — no serve
  // exclusion needed. Legacy backends still require external ordering
  // against Execute.
  std::unique_lock<std::shared_mutex> serve_lock(serve_mu_, std::defer_lock);
  if (!inner_->snapshot_isolated()) {
    serve_lock.lock();
  }
  inner_->Append(table, new_rows, stats);
  // Invalidate AFTER the post-append version is published: a miss racing
  // this append either pinned the new version (its result is current) or
  // pinned the old one — and then its lookup epoch predates this bump, so
  // its insert is dropped. Cached PLANS are not invalidated: translation
  // depends on the encryption plan, keys and column schemes, all fixed at
  // Prepare — appends only add rows (and DET tokens derive deterministically
  // per value, so old literals still match).
  InvalidateTable(table.name);
}

void CachingSeabedBackend::TouchLocked(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru);
  lru_.push_front(key);
  entry.lru = lru_.begin();
}

void CachingSeabedBackend::EvictLocked() {
  while (!lru_.empty() &&
         (results_.size() > options_.max_entries || total_bytes_ > options_.max_bytes)) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = results_.find(victim);
    SEABED_CHECK(it != results_.end());
    total_bytes_ -= it->second.bytes;
    results_.erase(it);
  }
}

void CachingSeabedBackend::InsertLocked(const std::string& key, Entry entry) {
  const auto it = results_.find(key);
  if (it != results_.end()) {
    // Concurrent miss on the same key: keep one copy, refresh its payload.
    total_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    results_.erase(it);
  }
  lru_.push_front(key);
  entry.lru = lru_.begin();
  total_bytes_ += entry.bytes;
  results_.emplace(key, std::move(entry));
  EvictLocked();
}

ResultSet CachingSeabedBackend::Execute(const Query& query, QueryStats* stats) {
  const std::string key = query.Fingerprint(Query::FingerprintMode::kExact);

  Stopwatch lookup_sw;
  std::shared_ptr<const ResultSet> hit;
  size_t hit_result_bytes = 0;
  uint64_t hit_rows_touched = 0;
  uint64_t lookup_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lookup_epoch = epoch_.load(std::memory_order_acquire);
    const auto it = results_.find(key);
    if (it != results_.end()) {
      ++hits_;
      TouchLocked(it->second, key);
      hit = it->second.result;
      hit_result_bytes = it->second.result_bytes;
      hit_rows_touched = it->second.rows_touched;
    } else {
      ++misses_;
    }
  }
  if (hit != nullptr) {
    // The row copy happens outside the lock: concurrent warm hits
    // (ExecuteBatch) must not serialize on it.
    if (stats != nullptr) {
      *stats = QueryStats{};
      stats->backend = name();
      stats->cache_hit = true;
      stats->cache_lookup_seconds = lookup_sw.ElapsedSeconds();
      stats->result_rows = hit->rows.size();
      stats->result_bytes = hit_result_bytes;
      stats->rows_touched = hit_rows_touched;
    }
    return *hit;
  }
  const double lookup_seconds = lookup_sw.ElapsedSeconds();

  // Miss: run the inner backend outside the cache lock (concurrent queries
  // must keep overlapping). A snapshot-isolated inner pins its own immutable
  // version, so no serve lock is needed and a concurrent Append proceeds
  // unblocked; legacy inner backends take the SHARED serve lock so a
  // concurrent Prepare/Append cannot mutate their tables mid-query.
  QueryStats local_stats;
  QueryStats* inner_stats = stats != nullptr ? stats : &local_stats;
  *inner_stats = QueryStats{};
  ResultSet result;
  {
    std::shared_lock<std::shared_mutex> serve_lock(serve_mu_, std::defer_lock);
    if (!inner_->snapshot_isolated()) {
      serve_lock.lock();
    }
    result = inner_->Execute(query, inner_stats);
  }

  Entry entry;
  entry.result = std::make_shared<const ResultSet>(result);
  entry.result_bytes = inner_stats->result_bytes;
  entry.rows_touched = inner_stats->rows_touched;
  entry.bytes = key.size() + EstimateResultBytes(result);
  entry.tables.push_back(query.table);
  if (query.join.has_value()) {
    entry.tables.push_back(query.join->right_table);
  }

  Stopwatch insert_sw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Publish only if no invalidation ran since the lookup — a result
    // computed over the pre-append snapshot must not outlive the append.
    if (epoch_.load(std::memory_order_acquire) == lookup_epoch) {
      InsertLocked(key, std::move(entry));
    }
  }
  if (stats != nullptr) {
    stats->backend = name();
    stats->cache_hit = false;
    stats->cache_lookup_seconds = lookup_seconds + insert_sw.ElapsedSeconds();
  }
  return result;
}

void CachingSeabedBackend::InvalidateResults() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  results_.clear();
  lru_.clear();
  total_bytes_ = 0;
}

void CachingSeabedBackend::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto it = results_.begin(); it != results_.end();) {
    const Entry& entry = it->second;
    if (std::find(entry.tables.begin(), entry.tables.end(), table) != entry.tables.end()) {
      total_bytes_ -= entry.bytes;
      lru_.erase(entry.lru);
      it = results_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t CachingSeabedBackend::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t CachingSeabedBackend::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t CachingSeabedBackend::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

size_t CachingSeabedBackend::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

}  // namespace seabed
