#include "src/seabed/caching_backend.h"

#include <mutex>
#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"

namespace seabed {

CachingSeabedBackend::CachingSeabedBackend(const CacheOptions& options,
                                           std::unique_ptr<Executor> inner)
    : options_(options),
      inner_(std::move(inner)),
      results_(options.shared != nullptr
                   ? options.shared
                   : std::make_shared<SharedResultCache>(
                         SharedResultCache::Limits{options.max_entries, options.max_bytes})),
      plan_cache_(std::make_shared<TranslatedPlanCache>(options.plan_cache_entries)) {
  SEABED_CHECK_MSG(inner_ != nullptr, "caching backend needs an inner executor");
  if (options_.cache_plans) {
    inner_->SetPlanCache(plan_cache_);
  }
}

void CachingSeabedBackend::Prepare(AttachedTable& table) {
  // Exclusive: the inner backend's tables must not change under a running
  // query (the inner executors assume Prepare/Append are externally ordered
  // against Execute — see Executor).
  std::unique_lock<std::shared_mutex> serve_lock(serve_mu_);
  inner_->Prepare(table);
  // A (re-)attach changes what queries over this table should see.
  InvalidateTable(table.name);
}

void CachingSeabedBackend::Append(AttachedTable& table, const Table& new_rows,
                                  JobStats* stats) {
  // Snapshot-isolated inner backends synchronize appends internally (the new
  // version is built off to the side and published with one atomic swap), so
  // in-flight misses keep executing over their pinned snapshot — no serve
  // exclusion needed. Legacy backends still require external ordering
  // against Execute.
  std::unique_lock<std::shared_mutex> serve_lock(serve_mu_, std::defer_lock);
  if (!inner_->snapshot_isolated()) {
    serve_lock.lock();
  }
  inner_->Append(table, new_rows, stats);
  // Invalidate AFTER the post-append version is published: a miss racing
  // this append either pinned the new version (its result is current) or
  // pinned the old one — and then its lookup epoch predates this bump, so
  // its insert is dropped. Cached PLANS are not invalidated: translation
  // depends on the encryption plan, keys and column schemes, all fixed at
  // Prepare — appends only add rows (and DET tokens derive deterministically
  // per value, so old literals still match).
  InvalidateTable(table.name);
}

ResultSet CachingSeabedBackend::Execute(const Query& query, QueryStats* stats) {
  return ExecuteVia(query, stats,
                    [&](QueryStats* inner_stats) { return inner_->Execute(query, inner_stats); });
}

ResultSet CachingSeabedBackend::ExecutePrepared(const PreparedQuery& prepared,
                                                std::span<const Value> params,
                                                QueryStats* stats) {
  // The result cache keys on the BOUND literals (a prepared hit and an
  // ad-hoc hit of the same values share one entry); the inner backend's
  // prepared path supplies the plan reuse on misses.
  Stopwatch bind_sw;
  const Query bound = prepared.Bind(params);
  const double bind_seconds = bind_sw.ElapsedSeconds();
  ResultSet result = ExecuteVia(bound, stats, [&](QueryStats* inner_stats) {
    return inner_->ExecutePrepared(prepared, params, inner_stats);
  });
  if (stats != nullptr) {
    stats->prepared = true;
    stats->bind_seconds += bind_seconds;  // a miss already billed the inner bind
  }
  return result;
}

ResultSet CachingSeabedBackend::ExecuteVia(
    const Query& bound, QueryStats* stats,
    const std::function<ResultSet(QueryStats*)>& run_inner) {
  const std::string key = bound.Fingerprint(Query::FingerprintMode::kExact);

  Stopwatch lookup_sw;
  const SharedResultCache::Lookup lookup = results_->Find(key);
  if (lookup.result != nullptr) {
    // The row copy happens outside every cache lock: concurrent warm hits
    // (ExecuteBatch) must not serialize on it.
    if (stats != nullptr) {
      *stats = QueryStats{};
      stats->backend = name();
      stats->cache_hit = true;
      stats->cache_lookup_seconds = lookup_sw.ElapsedSeconds();
      stats->result_rows = lookup.result->rows.size();
      stats->result_bytes = lookup.result_bytes;
      stats->rows_touched = lookup.rows_touched;
    }
    return *lookup.result;
  }
  const double lookup_seconds = lookup_sw.ElapsedSeconds();

  // Miss: run the inner backend outside the cache lock (concurrent queries
  // must keep overlapping). A snapshot-isolated inner pins its own immutable
  // version, so no serve lock is needed and a concurrent Append proceeds
  // unblocked; legacy inner backends take the SHARED serve lock so a
  // concurrent Prepare/Append cannot mutate their tables mid-query.
  QueryStats local_stats;
  QueryStats* inner_stats = stats != nullptr ? stats : &local_stats;
  *inner_stats = QueryStats{};
  ResultSet result;
  {
    std::shared_lock<std::shared_mutex> serve_lock(serve_mu_, std::defer_lock);
    if (!inner_->snapshot_isolated()) {
      serve_lock.lock();
    }
    result = run_inner(inner_stats);
  }

  std::vector<std::string> tables;
  tables.push_back(bound.table);
  if (bound.join.has_value()) {
    tables.push_back(bound.join->right_table);
  }

  Stopwatch insert_sw;
  results_->Insert(key, std::make_shared<const ResultSet>(result), inner_stats->result_bytes,
                   inner_stats->rows_touched, std::move(tables), lookup.epoch);
  if (stats != nullptr) {
    stats->backend = name();
    stats->cache_hit = false;
    stats->cache_lookup_seconds = lookup_seconds + insert_sw.ElapsedSeconds();
  }
  return result;
}

}  // namespace seabed
