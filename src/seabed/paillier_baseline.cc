#include "src/seabed/paillier_baseline.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/crypto/det.h"

namespace seabed {
namespace {

// Rewrites an ASHE column name to its Paillier twin: "m#ashe" -> "m#paillier".
std::string PaillierColumnName(const std::string& ashe_column) {
  const std::string suffix = "#ashe";
  SEABED_CHECK_MSG(ashe_column.size() > suffix.size() &&
                       ashe_column.compare(ashe_column.size() - suffix.size(), suffix.size(),
                                           suffix) == 0,
                   "not an ASHE column: " << ashe_column);
  return ashe_column.substr(0, ashe_column.size() - suffix.size()) + "#paillier";
}

struct PartialAgg {
  BigNum product{1};  // multiplicative identity == Enc(0) with unit randomness
  bool touched = false;
  uint64_t count = 0;
  bool minmax_valid = false;
  OreCiphertext minmax_ore;
  BigNum minmax_cipher;
};

struct PartialGroup {
  std::vector<Value> key_parts;
  std::vector<PartialAgg> aggs;
};

}  // namespace

ResultSet PaillierBaseline::Execute(const EncryptedDatabase& db, const TranslatedQuery& tq,
                                    const Cluster& cluster, const EncryptedDatabase* right_db,
                                    const Table* right_table, QueryStats* stats) const {
  const ServerPlan& splan = tq.server;
  const ClientPlan& cplan = tq.client;
  const Table& fact = *db.table;
  const Table* right = right_table;

  // Broadcast join index on DET tokens.
  std::unordered_multimap<uint64_t, size_t> join_index;
  const DetColumn* join_left = nullptr;
  if (splan.join.has_value()) {
    SEABED_CHECK(right != nullptr);
    const auto* right_key =
        static_cast<const DetColumn*>(right->GetColumn(splan.join->right_column).get());
    for (size_t row = 0; row < right->NumRows(); ++row) {
      join_index.emplace(right_key->Get(row), row);
    }
    join_left = static_cast<const DetColumn*>(fact.GetColumn(splan.join->left_column).get());
  }

  const BigNum& n2 = paillier_->public_key().n_squared;
  const auto partitions = fact.Partitions(cluster.num_workers());
  std::vector<std::unordered_map<std::string, PartialGroup>> partials(partitions.size());
  std::vector<uint64_t> touched(partitions.size(), 0);

  const JobStats job = cluster.RunJob(partitions.size(), [&](size_t p) {
    auto& local = partials[p];
    auto table_of = [&](bool on_right) -> const Table& { return on_right ? *right : fact; };
    auto process = [&](size_t row, size_t right_row) {
      for (const ServerPredicate& sp : splan.predicates) {
        const Table& t = table_of(sp.on_right);
        const size_t r = sp.on_right ? right_row : row;
        bool pass = true;
        switch (sp.kind) {
          case ServerPredicate::Kind::kPlainInt: {
            const int64_t v =
                static_cast<const Int64Column*>(t.GetColumn(sp.column).get())->Get(r);
            pass = CmpOpMatchesOrder(sp.op, v < sp.int_operand ? -1 : (v > sp.int_operand ? 1 : 0));
            break;
          }
          case ServerPredicate::Kind::kPlainString: {
            const bool eq =
                static_cast<const StringColumn*>(t.GetColumn(sp.column).get())->Get(r) ==
                sp.str_operand;
            pass = sp.op == CmpOp::kEq ? eq : !eq;
            break;
          }
          case ServerPredicate::Kind::kDetEq: {
            const bool eq =
                static_cast<const DetColumn*>(t.GetColumn(sp.column).get())->Get(r) ==
                sp.det_token;
            pass = sp.op == CmpOp::kEq ? eq : !eq;
            break;
          }
          case ServerPredicate::Kind::kOreCmp: {
            const auto& ct =
                static_cast<const OreColumn*>(t.GetColumn(sp.column).get())->Get(r);
            pass = CmpOpMatchesOrder(sp.op, Ore::Compare(ct, sp.ore_operand).order);
            break;
          }
        }
        if (!pass) {
          return;
        }
      }
      ++touched[p];

      std::string key;
      std::vector<Value> key_parts;
      for (const ServerGroupBy& g : splan.group_by) {
        const Table& t = table_of(g.on_right);
        const size_t r = g.on_right ? right_row : row;
        const ColumnPtr& col = t.GetColumn(g.column);
        // Same length-prefixed encoding as the Seabed server's keys (see
        // AppendGroupKeyPart in src/engine/value.h): adjacent parts must
        // never alias, and mixed string/int tuples must stay unambiguous.
        if (col->type() == ColumnType::kDet) {
          const uint64_t token = static_cast<const DetColumn*>(col.get())->Get(r);
          AppendGroupKeyPart(key, token);
          key_parts.emplace_back(static_cast<int64_t>(token));
        } else if (col->type() == ColumnType::kInt64) {
          const int64_t v = static_cast<const Int64Column*>(col.get())->Get(r);
          AppendGroupKeyPart(key, static_cast<uint64_t>(v));
          key_parts.emplace_back(v);
        } else {
          const std::string& v = static_cast<const StringColumn*>(col.get())->Get(r);
          AppendGroupKeyPart(key, v);
          key_parts.emplace_back(v);
        }
      }

      PartialGroup& group = local[key];
      if (group.aggs.empty()) {
        group.aggs.resize(splan.aggregates.size());
        group.key_parts = std::move(key_parts);
      }
      for (size_t a = 0; a < splan.aggregates.size(); ++a) {
        const ServerAggregate& sa = splan.aggregates[a];
        const Table& t = table_of(sa.on_right);
        const size_t r = sa.on_right ? right_row : row;
        PartialAgg& pa = group.aggs[a];
        switch (sa.kind) {
          case ServerAggregate::Kind::kAsheSum: {
            const auto* col = static_cast<const PaillierColumn*>(
                t.GetColumn(PaillierColumnName(sa.column)).get());
            pa.product = BigNum::ModMul(pa.product, col->Get(r), n2);
            pa.touched = true;
            break;
          }
          case ServerAggregate::Kind::kRowCount:
            ++pa.count;
            break;
          case ServerAggregate::Kind::kOreMin:
          case ServerAggregate::Kind::kOreMax: {
            const auto& ct =
                static_cast<const OreColumn*>(t.GetColumn(sa.column).get())->Get(r);
            bool better = !pa.minmax_valid;
            if (!better) {
              const int order = Ore::Compare(ct, pa.minmax_ore).order;
              better = sa.kind == ServerAggregate::Kind::kOreMin ? order < 0 : order > 0;
            }
            if (better) {
              pa.minmax_valid = true;
              pa.minmax_ore = ct;
              const auto* col = static_cast<const PaillierColumn*>(
                  t.GetColumn(PaillierColumnName(sa.value_column)).get());
              pa.minmax_cipher = col->Get(r);
            }
            break;
          }
        }
      }
    };

    for (size_t row = partitions[p].begin; row < partitions[p].end; ++row) {
      if (join_left != nullptr) {
        const auto [lo, hi] = join_index.equal_range(join_left->Get(row));
        for (auto it = lo; it != hi; ++it) {
          process(row, it->second);
        }
      } else {
        process(row, 0);
      }
    }
  });

  // Driver merge (ciphertext multiplications — counted as server time).
  Stopwatch driver_sw;
  std::map<std::string, PartialGroup> merged;
  for (auto& local : partials) {
    for (auto& [key, group] : local) {
      auto [it, inserted] = merged.try_emplace(key, std::move(group));
      if (inserted) {
        continue;
      }
      PartialGroup& dst = it->second;
      for (size_t a = 0; a < splan.aggregates.size(); ++a) {
        const ServerAggregate& sa = splan.aggregates[a];
        PartialAgg& pa = dst.aggs[a];
        PartialAgg& src = group.aggs[a];
        switch (sa.kind) {
          case ServerAggregate::Kind::kAsheSum:
            pa.product = BigNum::ModMul(pa.product, src.product, n2);
            pa.touched = pa.touched || src.touched;
            break;
          case ServerAggregate::Kind::kRowCount:
            pa.count += src.count;
            break;
          case ServerAggregate::Kind::kOreMin:
          case ServerAggregate::Kind::kOreMax:
            if (src.minmax_valid) {
              bool better = !pa.minmax_valid;
              if (!better) {
                const int order = Ore::Compare(src.minmax_ore, pa.minmax_ore).order;
                better = sa.kind == ServerAggregate::Kind::kOreMin ? order < 0 : order > 0;
              }
              if (better) {
                pa = std::move(src);
              }
            }
            break;
        }
      }
    }
  }
  const double driver_seconds = driver_sw.ElapsedSeconds();

  // SQL semantics: a global aggregate over zero matching rows still yields
  // one (all-zero) result row — the plain executor and the Seabed client
  // both synthesize it, so the baseline must too.
  if (merged.empty() && cplan.group_outputs.empty()) {
    PartialGroup zero;
    zero.aggs.resize(splan.aggregates.size());
    merged.emplace("", std::move(zero));
  }

  // Response size: one ciphertext per ASHE-sum aggregate per group.
  const size_t ct_bytes = paillier_->public_key().CiphertextBytes();
  size_t response_bytes = 0;
  for (const auto& [key, group] : merged) {
    response_bytes += key.size();
    for (size_t a = 0; a < splan.aggregates.size(); ++a) {
      const auto kind = splan.aggregates[a].kind;
      response_bytes +=
          kind == ServerAggregate::Kind::kRowCount ? 8 : ct_bytes;
    }
  }

  ResultSet result;

  // Client: one Paillier decryption per aggregate result.
  Stopwatch client_sw;
  for (const ClientGroupOutput& g : cplan.group_outputs) {
    result.column_names.push_back(g.plain_name);
  }
  for (const ClientOutput& o : cplan.outputs) {
    result.column_names.push_back(o.alias);
  }

  auto keys_owner = [&](bool on_right) -> const EncryptedDatabase& {
    return on_right && right_db != nullptr ? *right_db : db;
  };

  for (const auto& [key, group] : merged) {
    std::vector<int64_t> decrypted(splan.aggregates.size(), 0);
    for (size_t a = 0; a < splan.aggregates.size(); ++a) {
      const ServerAggregate& sa = splan.aggregates[a];
      const PartialAgg& pa = group.aggs[a];
      switch (sa.kind) {
        case ServerAggregate::Kind::kAsheSum:
          decrypted[a] = pa.touched ? paillier_->DecryptSigned(pa.product) : 0;
          break;
        case ServerAggregate::Kind::kRowCount:
          decrypted[a] = static_cast<int64_t>(pa.count);
          break;
        case ServerAggregate::Kind::kOreMin:
        case ServerAggregate::Kind::kOreMax:
          decrypted[a] = pa.minmax_valid ? paillier_->DecryptSigned(pa.minmax_cipher) : 0;
          break;
      }
    }

    std::vector<Value> row;
    for (size_t g = 0; g < cplan.group_outputs.size(); ++g) {
      const ClientGroupOutput& go = cplan.group_outputs[g];
      const Value& part = group.key_parts[g];
      switch (go.kind) {
        case ClientGroupOutput::Kind::kPlainInt:
        case ClientGroupOutput::Kind::kPlainString:
          row.push_back(part);
          break;
        case ClientGroupOutput::Kind::kDetInt:
          // Int DET is invertible given the column key; without keys the raw
          // token is emitted.
          if (keys_ != nullptr) {
            const DetInt det(keys_->DeriveColumnKey(go.key_label));
            row.emplace_back(static_cast<int64_t>(
                det.Decrypt(static_cast<uint64_t>(std::get<int64_t>(part)))));
          } else {
            row.push_back(part);
          }
          break;
        case ClientGroupOutput::Kind::kDetString: {
          const EncryptedDatabase& owner = keys_owner(go.on_right);
          const auto dict_it = owner.det_dictionaries.find(go.enc_column);
          if (dict_it == owner.det_dictionaries.end()) {
            row.push_back(part);
            break;
          }
          const uint64_t token = static_cast<uint64_t>(std::get<int64_t>(part));
          const auto val_it = dict_it->second.find(token);
          row.emplace_back(val_it == dict_it->second.end() ? std::string("?")
                                                           : val_it->second);
          break;
        }
      }
    }
    for (const ClientOutput& o : cplan.outputs) {
      switch (o.kind) {
        case ClientOutput::Kind::kSum:
        case ClientOutput::Kind::kCount:
        case ClientOutput::Kind::kMinMax:
          row.emplace_back(decrypted[o.arg0]);
          break;
        case ClientOutput::Kind::kAvg: {
          const double count = static_cast<double>(decrypted[o.arg1]);
          row.emplace_back(count == 0 ? 0.0 : static_cast<double>(decrypted[o.arg0]) / count);
          break;
        }
        case ClientOutput::Kind::kVariance:
        case ClientOutput::Kind::kStddev: {
          const double count = static_cast<double>(decrypted[o.arg2]);
          double var = 0;
          if (count > 0) {
            const double mean = static_cast<double>(decrypted[o.arg1]) / count;
            var = static_cast<double>(decrypted[o.arg0]) / count - mean * mean;
          }
          row.emplace_back(o.kind == ClientOutput::Kind::kVariance ? var
                                                                   : std::sqrt(std::max(0.0, var)));
          break;
        }
      }
    }
    result.rows.push_back(std::move(row));
  }
  if (stats != nullptr) {
    stats->backend = "paillier";
    stats->job = job;
    stats->server_seconds = job.server_seconds + driver_seconds;
    stats->result_bytes = response_bytes;
    stats->result_rows = result.rows.size();
    stats->network_seconds = cluster.config().client_link.TransferSeconds(response_bytes);
    stats->client_seconds = client_sw.ElapsedSeconds();
    stats->rows_touched = 0;
    for (const uint64_t t : touched) {
      stats->rows_touched += t;
    }
  }
  return result;
}

}  // namespace seabed
