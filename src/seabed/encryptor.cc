#include "src/seabed/encryptor.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"
#include "src/crypto/ashe.h"
#include "src/crypto/det.h"
#include "src/crypto/ore.h"

namespace seabed {
namespace {

// Reads row `row` of a plaintext column as an int64 (int columns only).
int64_t IntAt(const ColumnPtr& col, size_t row) {
  SEABED_CHECK(col->type() == ColumnType::kInt64);
  return static_cast<const Int64Column*>(col.get())->Get(row);
}

// Reads row `row` as the string form used by SPLASHE value matching: string
// columns verbatim, int columns via decimal rendering.
std::string StringAt(const ColumnPtr& col, size_t row) {
  if (col->type() == ColumnType::kString) {
    return static_cast<const StringColumn*>(col.get())->Get(row);
  }
  return std::to_string(IntAt(col, row));
}

}  // namespace

EncryptedDatabase Encryptor::Encrypt(const Table& plain, const PlainSchema& schema,
                                     const EncryptionPlan& plan) const {
  return EncryptWithBaseId(plain, schema, plan, 1);
}

EncryptedDatabase Encryptor::EncryptWithBaseId(const Table& plain, const PlainSchema& schema,
                                               const EncryptionPlan& plan,
                                               uint64_t ashe_base_id) const {
  EncryptedDatabase db;
  db.plan = plan;
  db.table = std::make_shared<Table>(plan.table_name + "#enc");
  const size_t rows = plain.NumRows();

  // Dimensions consumed by a SPLASHE layout do not appear under their own
  // name; collect them for the skip check below.
  auto splayed_dim = [&](const std::string& name) { return plan.FindSplashe(name) != nullptr; };

  for (const auto& spec : schema.columns) {
    const ColumnPlan& cp = plan.Plan(spec.name);
    const ColumnPtr& source = plain.GetColumn(spec.name);

    if (cp.scheme == EncScheme::kPlain) {
      // Copy (not share) plain-scheme columns: the encrypted table must own
      // every column so snapshot versions can be copied and grown without
      // mutating the attached plaintext table under concurrent readers.
      db.table->AddColumn(spec.name, DeepCopyColumn(*source));
      continue;
    }

    const bool is_splashe = cp.scheme == EncScheme::kSplasheBasic ||
                            cp.scheme == EncScheme::kSplasheEnhanced;

    // ASHE column (primary for measures, additional for "both"-role dims).
    if (cp.scheme == EncScheme::kAshe || cp.add_ashe) {
      const Ashe ashe(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, spec.name + "#ashe")));
      auto col = std::make_shared<AsheColumn>(ashe_base_id);
      for (size_t row = 0; row < rows; ++row) {
        const auto m = static_cast<uint64_t>(IntAt(source, row));
        col->Append(ashe.EncryptCell(m, col->IdOfRow(row)));
      }
      db.table->AddColumn(spec.name + "#ashe", std::move(col));
    }
    if (cp.needs_square) {
      const Ashe ashe(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, spec.name + "#sq#ashe")));
      auto col = std::make_shared<AsheColumn>(ashe_base_id);
      for (size_t row = 0; row < rows; ++row) {
        const int64_t v = IntAt(source, row);
        col->Append(ashe.EncryptCell(static_cast<uint64_t>(v) * static_cast<uint64_t>(v),
                                     col->IdOfRow(row)));
      }
      db.table->AddColumn(spec.name + "#sq#ashe", std::move(col));
    }
    if (cp.scheme == EncScheme::kOpe || cp.add_ope) {
      const Ore ore(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, spec.name + "#ope")));
      auto col = std::make_shared<OreColumn>();
      for (size_t row = 0; row < rows; ++row) {
        col->Append(ore.Encrypt(static_cast<uint64_t>(IntAt(source, row))));
      }
      db.table->AddColumn(spec.name + "#ope", std::move(col));
    }
    if (cp.scheme == EncScheme::kDet || cp.add_det) {
      const std::string col_name = spec.name + "#det";
      auto col = std::make_shared<DetColumn>();
      if (spec.type == ColumnType::kInt64) {
        const DetInt det(keys_.DeriveColumnKey(plan.DetKeyLabelFor(spec.name)));
        for (size_t row = 0; row < rows; ++row) {
          col->Append(det.Encrypt(static_cast<uint64_t>(IntAt(source, row))));
        }
        db.det_value_types[col_name] = ColumnType::kInt64;
      } else {
        const DetToken det(keys_.DeriveColumnKey(plan.DetKeyLabelFor(spec.name)));
        auto& dictionary = db.det_dictionaries[col_name];
        for (size_t row = 0; row < rows; ++row) {
          const std::string& v = static_cast<const StringColumn*>(source.get())->Get(row);
          const uint64_t token = det.Tag(v);
          dictionary.emplace(token, v);
          col->Append(token);
        }
        db.det_value_types[col_name] = ColumnType::kString;
      }
      db.table->AddColumn(col_name, std::move(col));
    }

    if (!is_splashe && (cp.scheme == EncScheme::kAshe || cp.scheme == EncScheme::kDet ||
                        cp.scheme == EncScheme::kOpe)) {
      continue;
    }
    if (!is_splashe) {
      continue;
    }

    // --- SPLASHE splaying (basic or enhanced) --------------------------------
    SEABED_CHECK(splayed_dim(spec.name));
    const SplasheLayout& layout = *plan.FindSplashe(spec.name);

    // Indicator (count) columns for splayed values.
    for (const std::string& value : layout.splayed_values) {
      const std::string col_name = layout.CountColumn(value);
      const Ashe ashe(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, col_name)));
      auto col = std::make_shared<AsheColumn>(ashe_base_id);
      for (size_t row = 0; row < rows; ++row) {
        const uint64_t bit = StringAt(source, row) == value ? 1 : 0;
        col->Append(ashe.EncryptCell(bit, col->IdOfRow(row)));
      }
      db.table->AddColumn(col_name, std::move(col));
    }

    // Splayed measure columns.
    for (const std::string& measure : layout.splayed_measures) {
      const ColumnPtr& m_src = plain.GetColumn(measure);
      for (const std::string& value : layout.splayed_values) {
        const std::string col_name = SplasheLayout::MeasureColumn(measure, value);
        const Ashe ashe(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, col_name)));
        auto col = std::make_shared<AsheColumn>(ashe_base_id);
        for (size_t row = 0; row < rows; ++row) {
          const uint64_t v = StringAt(source, row) == value
                                 ? static_cast<uint64_t>(IntAt(m_src, row))
                                 : 0;
          col->Append(ashe.EncryptCell(v, col->IdOfRow(row)));
        }
        db.table->AddColumn(col_name, std::move(col));
      }
    }

    if (!layout.enhanced) {
      continue;
    }

    // Enhanced SPLASHE: "others" indicator + measures, and the
    // frequency-equalized DET column.
    auto is_splayed_row = [&](size_t row) { return layout.IsSplayedValue(StringAt(source, row)); };

    {
      const std::string col_name = layout.OthersCountColumn();
      const Ashe ashe(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, col_name)));
      auto col = std::make_shared<AsheColumn>(ashe_base_id);
      for (size_t row = 0; row < rows; ++row) {
        col->Append(ashe.EncryptCell(is_splayed_row(row) ? 0 : 1, col->IdOfRow(row)));
      }
      db.table->AddColumn(col_name, std::move(col));
    }
    for (const std::string& measure : layout.splayed_measures) {
      const ColumnPtr& m_src = plain.GetColumn(measure);
      const std::string col_name = SplasheLayout::OthersMeasureColumn(measure);
      const Ashe ashe(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, col_name)));
      auto col = std::make_shared<AsheColumn>(ashe_base_id);
      for (size_t row = 0; row < rows; ++row) {
        const uint64_t v =
            is_splayed_row(row) ? 0 : static_cast<uint64_t>(IntAt(m_src, row));
        col->Append(ashe.EncryptCell(v, col->IdOfRow(row)));
      }
      db.table->AddColumn(col_name, std::move(col));
    }

    // Equalized DET column (Section 3.4): real rows of infrequent value v
    // carry DET(v); rows of frequent values are "dummy" cells reused to pad
    // every infrequent value up to the same count T.
    {
      const std::string col_name = layout.DetColumn();
      const DetToken det(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, col_name)));
      auto& dictionary = db.det_dictionaries[col_name];
      db.det_value_types[col_name] = ColumnType::kString;

      // Actual counts of the "other" values.
      std::map<std::string, uint64_t> counts;
      for (const std::string& v : layout.other_values) {
        counts[v] = 0;
      }
      uint64_t dummy_cells = 0;
      for (size_t row = 0; row < rows; ++row) {
        if (is_splayed_row(row)) {
          ++dummy_cells;
        } else {
          ++counts[StringAt(source, row)];
        }
      }
      uint64_t target = 0;
      for (const auto& [v, n] : counts) {
        target = std::max(target, n);
      }
      // Fill list: each other value repeated (target - count) times, then the
      // remaining dummy cells cycle round-robin to keep counts balanced.
      std::vector<std::string> fill;
      for (const std::string& v : layout.other_values) {
        for (uint64_t i = counts[v]; i < target; ++i) {
          fill.push_back(v);
        }
      }
      size_t fill_cursor = 0;
      size_t cycle_cursor = 0;
      auto col = std::make_shared<DetColumn>();
      for (size_t row = 0; row < rows; ++row) {
        std::string v;
        if (is_splayed_row(row)) {
          if (fill_cursor < fill.size()) {
            v = fill[fill_cursor++];
          } else if (!layout.other_values.empty()) {
            v = layout.other_values[cycle_cursor++ % layout.other_values.size()];
          } else {
            v = "(none)";
          }
        } else {
          v = StringAt(source, row);
        }
        const uint64_t token = det.Tag(v);
        dictionary.emplace(token, v);
        col->Append(token);
      }
      db.table->AddColumn(col_name, std::move(col));
    }
  }
  return db;
}


void Encryptor::AppendRows(EncryptedDatabase& db, const Table& new_rows,
                           const PlainSchema& schema) const {
  const EncryptionPlan& plan = db.plan;
  const size_t batch = new_rows.NumRows();
  Table& enc = *db.table;

  for (const auto& spec : schema.columns) {
    const ColumnPlan& cp = plan.Plan(spec.name);
    const ColumnPtr& source = new_rows.GetColumn(spec.name);

    if (cp.scheme == EncScheme::kPlain) {
      auto* dst = enc.GetMutableColumn(spec.name);
      if (spec.type == ColumnType::kInt64) {
        auto* c = static_cast<Int64Column*>(dst);
        for (size_t row = 0; row < batch; ++row) {
          c->Append(IntAt(source, row));
        }
      } else {
        auto* c = static_cast<StringColumn*>(dst);
        for (size_t row = 0; row < batch; ++row) {
          c->Append(static_cast<const StringColumn*>(source.get())->Get(row));
        }
      }
      continue;
    }

    const bool is_splashe = cp.scheme == EncScheme::kSplasheBasic ||
                            cp.scheme == EncScheme::kSplasheEnhanced;

    if (cp.scheme == EncScheme::kAshe || cp.add_ashe) {
      const Ashe ashe(
          keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, spec.name + "#ashe")));
      auto* c = static_cast<AsheColumn*>(enc.GetMutableColumn(spec.name + "#ashe"));
      for (size_t row = 0; row < batch; ++row) {
        c->Append(ashe.EncryptCell(static_cast<uint64_t>(IntAt(source, row)),
                                   c->IdOfRow(c->RowCount())));
      }
    }
    if (cp.needs_square) {
      const Ashe ashe(
          keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, spec.name + "#sq#ashe")));
      auto* c = static_cast<AsheColumn*>(enc.GetMutableColumn(spec.name + "#sq#ashe"));
      for (size_t row = 0; row < batch; ++row) {
        const int64_t v = IntAt(source, row);
        c->Append(ashe.EncryptCell(static_cast<uint64_t>(v) * static_cast<uint64_t>(v),
                                   c->IdOfRow(c->RowCount())));
      }
    }
    if (cp.scheme == EncScheme::kOpe || cp.add_ope) {
      const Ore ore(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, spec.name + "#ope")));
      auto* c = static_cast<OreColumn*>(enc.GetMutableColumn(spec.name + "#ope"));
      for (size_t row = 0; row < batch; ++row) {
        c->Append(ore.Encrypt(static_cast<uint64_t>(IntAt(source, row))));
      }
    }
    if (cp.scheme == EncScheme::kDet || cp.add_det) {
      const std::string col_name = spec.name + "#det";
      auto* c = static_cast<DetColumn*>(enc.GetMutableColumn(col_name));
      if (spec.type == ColumnType::kInt64) {
        const DetInt det(keys_.DeriveColumnKey(plan.DetKeyLabelFor(spec.name)));
        for (size_t row = 0; row < batch; ++row) {
          c->Append(det.Encrypt(static_cast<uint64_t>(IntAt(source, row))));
        }
      } else {
        const DetToken det(keys_.DeriveColumnKey(plan.DetKeyLabelFor(spec.name)));
        auto& dictionary = db.det_dictionaries[col_name];
        for (size_t row = 0; row < batch; ++row) {
          const std::string& v = static_cast<const StringColumn*>(source.get())->Get(row);
          const uint64_t token = det.Tag(v);
          dictionary.emplace(token, v);
          c->Append(token);
        }
      }
    }

    if (!is_splashe) {
      continue;
    }

    const SplasheLayout& layout = *plan.FindSplashe(spec.name);
    auto append_indicator = [&](const std::string& col_name, auto&& value_of) {
      const Ashe ashe(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, col_name)));
      auto* c = static_cast<AsheColumn*>(enc.GetMutableColumn(col_name));
      for (size_t row = 0; row < batch; ++row) {
        c->Append(ashe.EncryptCell(value_of(row), c->IdOfRow(c->RowCount())));
      }
    };

    for (const std::string& value : layout.splayed_values) {
      append_indicator(layout.CountColumn(value), [&](size_t row) -> uint64_t {
        return StringAt(source, row) == value ? 1 : 0;
      });
    }
    for (const std::string& measure : layout.splayed_measures) {
      const ColumnPtr& m_src = new_rows.GetColumn(measure);
      for (const std::string& value : layout.splayed_values) {
        append_indicator(SplasheLayout::MeasureColumn(measure, value),
                         [&](size_t row) -> uint64_t {
                           return StringAt(source, row) == value
                                      ? static_cast<uint64_t>(IntAt(m_src, row))
                                      : 0;
                         });
      }
    }
    if (!layout.enhanced) {
      continue;
    }
    auto is_splayed_row = [&](size_t row) {
      return layout.IsSplayedValue(StringAt(source, row));
    };
    append_indicator(layout.OthersCountColumn(),
                     [&](size_t row) -> uint64_t { return is_splayed_row(row) ? 0 : 1; });
    for (const std::string& measure : layout.splayed_measures) {
      const ColumnPtr& m_src = new_rows.GetColumn(measure);
      append_indicator(SplasheLayout::OthersMeasureColumn(measure),
                       [&](size_t row) -> uint64_t {
                         return is_splayed_row(row)
                                    ? 0
                                    : static_cast<uint64_t>(IntAt(m_src, row));
                       });
    }

    // Equalized DET column: balance the batch's dummy cells against the
    // *combined* (existing + new) token counts so insertions keep every
    // token's frequency as close as the available dummies allow.
    {
      const std::string col_name = layout.DetColumn();
      const DetToken det(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, col_name)));
      auto* c = static_cast<DetColumn*>(enc.GetMutableColumn(col_name));
      auto& dictionary = db.det_dictionaries[col_name];

      std::map<std::string, uint64_t> counts;
      for (const std::string& v : layout.other_values) {
        counts[v] = 0;
      }
      // Existing token frequencies (the proxy can invert via its dictionary).
      for (size_t row = 0; row < c->RowCount(); ++row) {
        const auto it = dictionary.find(c->Get(row));
        if (it != dictionary.end() && counts.count(it->second)) {
          ++counts[it->second];
        }
      }
      uint64_t dummy_cells = 0;
      for (size_t row = 0; row < batch; ++row) {
        if (is_splayed_row(row)) {
          ++dummy_cells;
        } else {
          ++counts[StringAt(source, row)];
        }
      }
      // Greedy rebalance: repeatedly pad the currently-rarest value.
      std::vector<std::string> fill;
      fill.reserve(dummy_cells);
      for (uint64_t i = 0; i < dummy_cells; ++i) {
        auto rarest = counts.begin();
        for (auto it = counts.begin(); it != counts.end(); ++it) {
          if (it->second < rarest->second) {
            rarest = it;
          }
        }
        ++rarest->second;
        fill.push_back(rarest->first);
      }
      size_t fill_cursor = 0;
      for (size_t row = 0; row < batch; ++row) {
        std::string v;
        if (is_splayed_row(row)) {
          v = fill_cursor < fill.size() ? fill[fill_cursor++] : "(none)";
        } else {
          v = StringAt(source, row);
        }
        const uint64_t token = det.Tag(v);
        dictionary.emplace(token, v);
        c->Append(token);
      }
    }
  }
}

EncryptionPlan BaselinePlan(const EncryptionPlan& plan) {
  EncryptionPlan baseline = plan;
  baseline.splashe.clear();
  for (auto& [name, cp] : baseline.columns) {
    if (cp.scheme == EncScheme::kSplasheBasic || cp.scheme == EncScheme::kSplasheEnhanced) {
      cp.scheme = EncScheme::kDet;
    }
  }
  return baseline;
}

EncryptedDatabase Encryptor::EncryptPaillierBaseline(const Table& plain,
                                                     const PlainSchema& schema,
                                                     const EncryptionPlan& plan,
                                                     const Paillier& paillier, Rng& rng,
                                                     size_t randomness_pool_size) const {
  EncryptedDatabase db;
  db.plan = BaselinePlan(plan);
  db.table = std::make_shared<Table>(plan.table_name + "#paillier");
  const size_t rows = plain.NumRows();
  const std::vector<BigNum> pool = paillier.MakeRandomnessPool(rng, randomness_pool_size);

  for (const auto& spec : schema.columns) {
    const ColumnPlan& cp = db.plan.Plan(spec.name);
    const ColumnPtr& source = plain.GetColumn(spec.name);

    if (cp.scheme == EncScheme::kPlain) {
      db.table->AddColumn(spec.name, DeepCopyColumn(*source));
      continue;
    }

    const bool is_measure = cp.scheme == EncScheme::kAshe || cp.add_ashe;
    if (is_measure) {
      auto col = std::make_shared<PaillierColumn>();
      for (size_t row = 0; row < rows; ++row) {
        col->Append(paillier.EncryptSignedPooled(IntAt(source, row), pool[row % pool.size()]));
      }
      db.table->AddColumn(spec.name + "#paillier", std::move(col));
    }
    if (cp.scheme == EncScheme::kOpe || cp.add_ope) {
      const Ore ore(keys_.DeriveColumnKey(ColumnKeyLabel(plan.table_name, spec.name + "#ope")));
      auto col = std::make_shared<OreColumn>();
      for (size_t row = 0; row < rows; ++row) {
        col->Append(ore.Encrypt(static_cast<uint64_t>(IntAt(source, row))));
      }
      db.table->AddColumn(spec.name + "#ope", std::move(col));
    }
    const bool needs_det = cp.scheme == EncScheme::kDet || cp.add_det;
    if (needs_det) {
      const std::string col_name = spec.name + "#det";
      auto col = std::make_shared<DetColumn>();
      if (spec.type == ColumnType::kInt64) {
        const DetInt det(keys_.DeriveColumnKey(db.plan.DetKeyLabelFor(spec.name)));
        for (size_t row = 0; row < rows; ++row) {
          col->Append(det.Encrypt(static_cast<uint64_t>(IntAt(source, row))));
        }
        db.det_value_types[col_name] = ColumnType::kInt64;
      } else {
        const DetToken det(keys_.DeriveColumnKey(db.plan.DetKeyLabelFor(spec.name)));
        auto& dictionary = db.det_dictionaries[col_name];
        for (size_t row = 0; row < rows; ++row) {
          const std::string& v = static_cast<const StringColumn*>(source.get())->Get(row);
          const uint64_t token = det.Tag(v);
          dictionary.emplace(token, v);
          col->Append(token);
        }
        db.det_value_types[col_name] = ColumnType::kString;
      }
      db.table->AddColumn(col_name, std::move(col));
    }
  }
  return db;
}

}  // namespace seabed
