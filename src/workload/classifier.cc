#include "src/workload/classifier.h"

namespace seabed {
namespace {

Query ServerQuery(AggFunc func) {
  Query q;
  q.table = "cube";
  q.aggregates.push_back({func, func == AggFunc::kCount ? "" : "measure", "out"});
  return q;
}

Query PreQuery() {
  // All client-pre-processing MDX functions are quadratic forms (variance,
  // covariance, correlation, ...): the client uploads squared / cross-term
  // columns encrypted with ASHE.
  Query q;
  q.table = "cube";
  q.Variance("measure");
  return q;
}

Query PostQuery() {
  Query q = ServerQuery(AggFunc::kSum);
  q.has_udf = true;
  return q;
}

Query TwoRoundTripQuery() {
  Query q = ServerQuery(AggFunc::kSum);
  q.needs_two_round_trips = true;
  return q;
}

}  // namespace

const char* QueryCategoryName(QueryCategory c) {
  switch (c) {
    case QueryCategory::kServerOnly:
      return "server-only";
    case QueryCategory::kClientPre:
      return "client-pre";
    case QueryCategory::kClientPost:
      return "client-post";
    case QueryCategory::kTwoRoundTrips:
      return "two-round-trips";
  }
  return "?";
}

QueryCategory ClassifyQuery(const Query& query) {
  if (query.needs_two_round_trips) {
    return QueryCategory::kTwoRoundTrips;
  }
  if (query.has_udf) {
    return QueryCategory::kClientPost;
  }
  for (const Aggregate& agg : query.aggregates) {
    if (agg.func == AggFunc::kVariance || agg.func == AggFunc::kStddev) {
      return QueryCategory::kClientPre;
    }
  }
  return QueryCategory::kServerOnly;
}

CategoryCounts ClassifyAll(const std::vector<Query>& queries) {
  CategoryCounts counts;
  for (const Query& q : queries) {
    switch (ClassifyQuery(q)) {
      case QueryCategory::kServerOnly:
        ++counts.server_only;
        break;
      case QueryCategory::kClientPre:
        ++counts.client_pre;
        break;
      case QueryCategory::kClientPost:
        ++counts.client_post;
        break;
      case QueryCategory::kTwoRoundTrips:
        ++counts.two_round_trips;
        break;
    }
  }
  return counts;
}

std::vector<Query> MdxQuerySet() {
  // One entry per Table 6 row, in row order.
  std::vector<Query> set;
  set.push_back(ServerQuery(AggFunc::kSum));    // 1 Aggregate
  set.push_back(ServerQuery(AggFunc::kAvg));    // 2 Avg
  set.push_back(ServerQuery(AggFunc::kCount));  // 3 CalculationCurrentPass
  set.push_back(ServerQuery(AggFunc::kCount));  // 4 CalculationPassValue
  set.push_back(PreQuery());                    // 5 CoalesceEmpty
  set.push_back(PreQuery());                    // 6 Correlation
  set.push_back(ServerQuery(AggFunc::kCount));  // 7 Count(Dimensions)
  set.push_back(ServerQuery(AggFunc::kCount));  // 8 Count(Hierarchy Levels)
  set.push_back(ServerQuery(AggFunc::kCount));  // 9 Count(Set)
  set.push_back(ServerQuery(AggFunc::kCount));  // 10 Count(Tuple)
  set.push_back(PreQuery());                    // 11 Covariance
  set.push_back(PreQuery());                    // 12 CovarianceN
  set.push_back(ServerQuery(AggFunc::kCount));  // 13 DistinctCount
  set.push_back(PostQuery());                   // 14 IIf
  set.push_back(TwoRoundTripQuery());           // 15 LinRegIntercept
  set.push_back(TwoRoundTripQuery());           // 16 LinRegPoint
  set.push_back(TwoRoundTripQuery());           // 17 LinRegR2
  set.push_back(TwoRoundTripQuery());           // 18 LinRegSlope
  set.push_back(TwoRoundTripQuery());           // 19 LinRegVariance
  set.push_back(PostQuery());                   // 20 LookupCube
  set.push_back(ServerQuery(AggFunc::kMax));    // 21 Max
  set.push_back(ServerQuery(AggFunc::kMax));    // 22 Median (via OPE)
  set.push_back(ServerQuery(AggFunc::kMin));    // 23 Min
  set.push_back(ServerQuery(AggFunc::kMin));    // 24 Ordinal (via OPE)
  set.push_back(PostQuery());                   // 25 Predict
  set.push_back(ServerQuery(AggFunc::kMax));    // 26 Rank (via OPE)
  set.push_back(PostQuery());                   // 27 RollupChildren
  set.push_back(PreQuery());                    // 28 Stddev
  set.push_back(PreQuery());                    // 29 StddevP
  set.push_back(PreQuery());                    // 30 Stdev
  set.push_back(PreQuery());                    // 31 StdevP
  set.push_back(ServerQuery(AggFunc::kSum));    // 32 StrToValue
  set.push_back(ServerQuery(AggFunc::kSum));    // 33 Sum
  set.push_back(ServerQuery(AggFunc::kSum));    // 34 Value
  set.push_back(PreQuery());                    // 35 Var
  set.push_back(PreQuery());                    // 36 Variance
  set.push_back(PreQuery());                    // 37 VarianceP
  set.push_back(PreQuery());                    // 38 VarP
  return set;
}

std::vector<Query> TpcDsQuerySet() {
  // Structural stand-in with the published split: 69 / 2 / 25 / 3.
  std::vector<Query> set;
  for (int i = 0; i < 69; ++i) {
    Query q = ServerQuery(i % 3 == 0 ? AggFunc::kSum : (i % 3 == 1 ? AggFunc::kAvg
                                                                   : AggFunc::kCount));
    q.GroupBy("dim");
    set.push_back(std::move(q));
  }
  for (int i = 0; i < 2; ++i) {
    set.push_back(PreQuery());
  }
  for (int i = 0; i < 25; ++i) {
    set.push_back(PostQuery());
  }
  for (int i = 0; i < 3; ++i) {
    set.push_back(TwoRoundTripQuery());
  }
  return set;
}

}  // namespace seabed
