#include "src/workload/bdb.h"

#include "src/common/rng.h"

namespace seabed {
namespace {

std::string MakeIp(Rng& rng) {
  // Dotted quad over a reduced universe so prefix group counts stay
  // interesting at benchmark scale.
  return std::to_string(rng.Below(64)) + "." + std::to_string(rng.Below(64)) + "." +
         std::to_string(rng.Below(64)) + "." + std::to_string(rng.Below(64));
}

}  // namespace

std::shared_ptr<Table> MakeRankingsTable(const BdbSpec& spec) {
  Rng rng(spec.seed);
  auto table = std::make_shared<Table>("rankings");
  auto url = std::make_shared<StringColumn>();
  auto rank = std::make_shared<Int64Column>();
  auto duration = std::make_shared<Int64Column>();
  for (uint64_t i = 0; i < spec.rankings_rows; ++i) {
    url->Append("url_" + std::to_string(i));
    rank->Append(static_cast<int64_t>(rng.Below(10000)));
    duration->Append(static_cast<int64_t>(rng.Below(600)));
  }
  table->AddColumn("pageURL", std::move(url));
  table->AddColumn("pageRank", std::move(rank));
  table->AddColumn("avgDuration", std::move(duration));
  return table;
}

std::shared_ptr<Table> MakeUserVisitsTable(const BdbSpec& spec) {
  Rng rng(spec.seed + 1);
  const uint64_t url_universe = std::min<uint64_t>(spec.num_urls, spec.rankings_rows);
  auto table = std::make_shared<Table>("uservisits");
  auto source_ip = std::make_shared<StringColumn>();
  auto prefix8 = std::make_shared<StringColumn>();
  auto prefix10 = std::make_shared<StringColumn>();
  auto prefix12 = std::make_shared<StringColumn>();
  auto dest_url = std::make_shared<StringColumn>();
  auto visit_date = std::make_shared<Int64Column>();
  auto ad_revenue = std::make_shared<Int64Column>();
  auto user_agent = std::make_shared<StringColumn>();
  auto country = std::make_shared<StringColumn>();
  auto language = std::make_shared<StringColumn>();
  auto search_word = std::make_shared<StringColumn>();
  auto duration = std::make_shared<Int64Column>();

  static const char* kAgents[] = {"Mozilla", "Chrome", "Safari", "Opera"};
  static const char* kCountries[] = {"USA", "IND", "CHN", "BRA", "DEU", "GBR"};
  static const char* kLanguages[] = {"en", "hi", "zh", "pt", "de"};
  static const char* kWords[] = {"car", "phone", "shoes", "cloud", "game", "news"};

  for (uint64_t i = 0; i < spec.uservisits_rows; ++i) {
    const std::string ip = MakeIp(rng);
    source_ip->Append(ip);
    prefix8->Append(ip.substr(0, std::min<size_t>(8, ip.size())));
    prefix10->Append(ip.substr(0, std::min<size_t>(10, ip.size())));
    prefix12->Append(ip.substr(0, std::min<size_t>(12, ip.size())));
    dest_url->Append("url_" + std::to_string(rng.Below(url_universe)));
    visit_date->Append(static_cast<int64_t>(rng.Below(3650)));
    ad_revenue->Append(static_cast<int64_t>(rng.Below(100000)));  // cents
    user_agent->Append(kAgents[rng.Below(4)]);
    country->Append(kCountries[rng.Below(6)]);
    language->Append(kLanguages[rng.Below(5)]);
    search_word->Append(kWords[rng.Below(6)]);
    duration->Append(static_cast<int64_t>(rng.Below(600)));
  }
  table->AddColumn("sourceIP", std::move(source_ip));
  table->AddColumn("ipPrefix8", std::move(prefix8));
  table->AddColumn("ipPrefix10", std::move(prefix10));
  table->AddColumn("ipPrefix12", std::move(prefix12));
  table->AddColumn("destURL", std::move(dest_url));
  table->AddColumn("visitDate", std::move(visit_date));
  table->AddColumn("adRevenue", std::move(ad_revenue));
  table->AddColumn("userAgent", std::move(user_agent));
  table->AddColumn("countryCode", std::move(country));
  table->AddColumn("languageCode", std::move(language));
  table->AddColumn("searchWord", std::move(search_word));
  table->AddColumn("duration", std::move(duration));
  return table;
}

PlainSchema RankingsSchema() {
  PlainSchema schema;
  schema.table_name = "rankings";
  schema.columns.push_back({"pageURL", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"pageRank", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"avgDuration", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

PlainSchema UserVisitsSchema() {
  PlainSchema schema;
  schema.table_name = "uservisits";
  schema.columns.push_back({"sourceIP", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ipPrefix8", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ipPrefix10", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ipPrefix12", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"destURL", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"visitDate", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"adRevenue", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"userAgent", ColumnType::kString, false, std::nullopt});
  schema.columns.push_back({"countryCode", ColumnType::kString, false, std::nullopt});
  schema.columns.push_back({"languageCode", ColumnType::kString, false, std::nullopt});
  schema.columns.push_back({"searchWord", ColumnType::kString, false, std::nullopt});
  schema.columns.push_back({"duration", ColumnType::kInt64, false, std::nullopt});
  return schema;
}

std::vector<BdbQuery> BdbQuerySet() {
  std::vector<BdbQuery> set;

  // Q1: scan with a rank threshold. We report COUNT + MAX(pageRank) so the
  // measured cost is the encrypted scan (ORE predicate), matching the paper's
  // observation that Q1 is fast for all systems but OPE adds overhead.
  const int64_t q1_thresholds[] = {9000, 5000, 1000};  // A, B, C
  const char* q1_labels[] = {"Q1A", "Q1B", "Q1C"};
  for (int v = 0; v < 3; ++v) {
    BdbQuery bq;
    bq.label = q1_labels[v];
    bq.query.table = "rankings";
    bq.query.Count().Max("pageRank");
    bq.query.Where("pageRank", CmpOp::kGt, q1_thresholds[v]);
    set.push_back(std::move(bq));
  }

  // Q2: revenue by sourceIP prefix (DET prefix columns = the paper's
  // simplification of SUBSTR).
  const char* q2_cols[] = {"ipPrefix8", "ipPrefix10", "ipPrefix12"};
  const char* q2_labels[] = {"Q2A", "Q2B", "Q2C"};
  for (int v = 0; v < 3; ++v) {
    BdbQuery bq;
    bq.label = q2_labels[v];
    bq.on_uservisits = true;
    bq.query.table = "uservisits";
    bq.query.Sum("adRevenue");
    bq.query.GroupBy(q2_cols[v]);
    set.push_back(std::move(bq));
  }

  // Q3: join with a visitDate window, grouped by sourceIP. Variants widen the
  // window (and thus the number of matching rows / groups).
  struct Q3 {
    const char* label;
    int64_t lo;
    int64_t hi;
  };
  const Q3 q3_variants[] = {{"Q3A", 1000, 1030}, {"Q3B", 1000, 1365}, {"Q3C", 0, 3650}};
  for (const Q3& v : q3_variants) {
    BdbQuery bq;
    bq.label = v.label;
    bq.on_uservisits = true;
    bq.query.table = "uservisits";
    bq.query.join = Join{"rankings", "destURL", "right:pageURL"};
    bq.query.Sum("adRevenue").Avg("right:pageRank", "avg_pageRank");
    bq.query.Where("visitDate", CmpOp::kGe, v.lo).Where("visitDate", CmpOp::kLt, v.hi);
    bq.query.GroupBy("sourceIP");
    set.push_back(std::move(bq));
  }

  // Q4: the aggregation phase (phase 2) — visit counts per destination.
  {
    BdbQuery bq;
    bq.label = "Q4";
    bq.on_uservisits = true;
    bq.query.table = "uservisits";
    bq.query.Count("visits");
    bq.query.GroupBy("destURL");
    set.push_back(std::move(bq));
  }
  return set;
}

std::vector<Query> RankingsSampleQueries() {
  std::vector<Query> queries;
  for (const BdbQuery& bq : BdbQuerySet()) {
    if (!bq.on_uservisits) {
      queries.push_back(bq.query);
    } else if (bq.query.join.has_value()) {
      // The join touches rankings as the right table: pageURL is a join key
      // and pageRank is aggregated. Express that for the rankings planner.
      Query q;
      q.table = "rankings";
      q.Avg("pageRank");
      q.join = Join{"uservisits", "pageURL", "right:destURL"};
      queries.push_back(std::move(q));
    }
  }
  return queries;
}

std::vector<Query> UserVisitsSampleQueries() {
  std::vector<Query> queries;
  for (const BdbQuery& bq : BdbQuerySet()) {
    if (bq.on_uservisits) {
      queries.push_back(bq.query);
    }
  }
  return queries;
}

}  // namespace seabed
