// Advertising-analytics workload (paper Sections 6.6, Table 5, Figure 10).
//
// The paper's dataset is proprietary: 759 M rows, 33 dimensions, 18 measures,
// with 10 sensitive dimensions and 10 sensitive measures; its query log is
// 168,352 aggregation queries grouping by hour-of-day with 1–12 groups.
// This generator reproduces the published *shape*: the same column counts,
// Zipf-skewed sensitive dimensions whose cardinalities span the Figure 10b
// range, and a query-log synthesizer with the same category split
// (Table 4: 134,298 server-only + 34,054 client-post-processing).
#ifndef SEABED_SRC_WORKLOAD_AD_ANALYTICS_H_
#define SEABED_SRC_WORKLOAD_AD_ANALYTICS_H_

#include <memory>

#include "src/engine/table.h"
#include "src/query/query.h"
#include "src/seabed/schema.h"

namespace seabed {

struct AdAnalyticsSpec {
  uint64_t rows = 200000;  // paper: 759 M
  uint64_t seed = 11;
  // Cardinalities of the 10 sensitive dimensions, sorted ascending (the
  // Figure 10b x-axis ordering). Zipf(1.1) skew gives enhanced SPLASHE its
  // frequent/infrequent split.
  std::vector<uint64_t> sensitive_dim_cardinalities = {4, 6, 10, 16, 24, 40, 64, 100, 160, 256};
  double zipf_s = 1.1;
  size_t num_plain_dims = 22;  // 33 total dims = 1 hour + 10 sensitive + 22 plain
  size_t num_measures = 18;    // first 10 sensitive
  size_t num_sensitive_measures = 10;
};

// Table columns: hour (int 0..23), SDim1..SDim10 (string, sensitive, Zipf),
// PDim1..PDim22 (string, plaintext), M1..M18 (int64; M1..M10 sensitive).
std::shared_ptr<Table> MakeAdAnalyticsTable(const AdAnalyticsSpec& spec);

// Schema with value distributions attached to the sensitive dimensions (the
// planner input enhanced SPLASHE requires).
PlainSchema AdAnalyticsSchema(const AdAnalyticsSpec& spec);

// Planner sample queries: hourly sums of sensitive measures filtered by
// sensitive dimensions.
std::vector<Query> AdAnalyticsSampleQueries(const AdAnalyticsSpec& spec);

// A performance query in the style of the paper's Section 6.6 experiment:
// sum of `num_measures` measures grouped by hour, restricted to `groups`
// distinct hours (1, 4 or 8 in the paper). `variant` perturbs which measures
// are used.
Query AdAnalyticsPerfQuery(size_t groups, size_t num_measures, uint64_t variant);

// The month-long query log for Table 4: `total` queries of which
// `client_post` require client post-processing (UDF-style finishing).
std::vector<Query> AdAnalyticsQueryLog(const AdAnalyticsSpec& spec, size_t total = 168352,
                                       size_t client_post = 34054);

}  // namespace seabed

#endif  // SEABED_SRC_WORKLOAD_AD_ANALYTICS_H_
