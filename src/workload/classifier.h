// The Section 5 / Table 4 query classifier.
//
// Seabed supports a query in one of four ways: fully on the server, with
// client pre-processing (quadratic aggregates over uploaded squared columns),
// with client post-processing (arbitrary finishing functions), or with two
// client round-trips (iterative computations that re-encrypt an intermediate
// result). This module classifies Query objects by those rules and ships the
// MDX (Table 6) and TPC-DS query sets as structural stand-ins.
#ifndef SEABED_SRC_WORKLOAD_CLASSIFIER_H_
#define SEABED_SRC_WORKLOAD_CLASSIFIER_H_

#include <string>
#include <vector>

#include "src/query/query.h"

namespace seabed {

enum class QueryCategory {
  kServerOnly,      // "Purely on Server"
  kClientPre,       // client uploads derived (e.g. squared) columns
  kClientPost,      // client finishes the computation after decryption
  kTwoRoundTrips,   // client re-encrypts an intermediate result
};

const char* QueryCategoryName(QueryCategory c);

// Classification rules (Section 5): two-round-trip flags dominate, then UDFs
// (client post), then quadratic aggregates (client pre), else server-only.
QueryCategory ClassifyQuery(const Query& query);

struct CategoryCounts {
  size_t server_only = 0;
  size_t client_pre = 0;
  size_t client_post = 0;
  size_t two_round_trips = 0;

  size_t Total() const {
    return server_only + client_pre + client_post + two_round_trips;
  }
};

CategoryCounts ClassifyAll(const std::vector<Query>& queries);

// The 38 MDX back-end functions of Table 6, as Query objects whose
// classification reproduces the published S/CPre/CPost/2R assignment
// (17 / 12 / 4 / 5).
std::vector<Query> MdxQuerySet();

// A TPC-DS-shaped query set: 99 queries with the published category split
// (69 server / 2 pre / 25 post / 3 two-round-trip).
std::vector<Query> TpcDsQuerySet();

}  // namespace seabed

#endif  // SEABED_SRC_WORKLOAD_CLASSIFIER_H_
