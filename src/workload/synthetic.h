// Synthetic microbenchmark workload (paper Section 6.1).
//
// The paper's synthetic dataset is one integer measure column (plus the ASHE
// ID column); predicates "select each row randomly with probability p"
// (selectivity). We realize selectivity with a plaintext helper column `sel`
// holding a uniform value in [0, 100): `WHERE sel < p` selects a uniform
// random p% of rows, exactly the paper's random-selection model. Group-by
// microbenchmarks (Figure 9a) add an integer group column.
#ifndef SEABED_SRC_WORKLOAD_SYNTHETIC_H_
#define SEABED_SRC_WORKLOAD_SYNTHETIC_H_

#include <memory>

#include "src/engine/table.h"
#include "src/query/query.h"
#include "src/seabed/schema.h"

namespace seabed {

struct SyntheticSpec {
  uint64_t rows = 2000000;
  uint64_t seed = 42;
  int64_t value_min = 0;
  int64_t value_max = 1000;
  // > 0 adds a `grp` column with this many distinct values (Figure 9a).
  uint64_t group_cardinality = 0;
};

// Plaintext table with columns: value (int64, sensitive measure),
// sel (int64 in [0,100), plaintext selectivity helper), and optionally grp.
std::shared_ptr<Table> MakeSyntheticTable(const SyntheticSpec& spec);

// Matching schema (value sensitive; sel and grp plaintext).
PlainSchema SyntheticSchema(const SyntheticSpec& spec);

// Sample queries for the planner: aggregation with selectivity predicates and
// (when group_cardinality > 0) group-bys.
std::vector<Query> SyntheticSampleQueries(const SyntheticSpec& spec);

// SUM(value) over a uniform `selectivity_percent`% of rows.
Query SyntheticSumQuery(int64_t selectivity_percent);

// SUM(value) GROUP BY grp, with the expected-group hint set.
Query SyntheticGroupByQuery(uint64_t expected_groups);

}  // namespace seabed

#endif  // SEABED_SRC_WORKLOAD_SYNTHETIC_H_
