#include "src/workload/synthetic.h"

#include "src/common/rng.h"

namespace seabed {

std::shared_ptr<Table> MakeSyntheticTable(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  auto table = std::make_shared<Table>("synthetic");
  auto value = std::make_shared<Int64Column>();
  auto sel = std::make_shared<Int64Column>();
  std::shared_ptr<Int64Column> grp;
  if (spec.group_cardinality > 0) {
    grp = std::make_shared<Int64Column>();
  }
  for (uint64_t i = 0; i < spec.rows; ++i) {
    value->Append(rng.Range(spec.value_min, spec.value_max));
    sel->Append(static_cast<int64_t>(rng.Below(100)));
    if (grp) {
      grp->Append(static_cast<int64_t>(rng.Below(spec.group_cardinality)));
    }
  }
  table->AddColumn("value", std::move(value));
  table->AddColumn("sel", std::move(sel));
  if (grp) {
    table->AddColumn("grp", std::move(grp));
  }
  return table;
}

PlainSchema SyntheticSchema(const SyntheticSpec& spec) {
  PlainSchema schema;
  schema.table_name = "synthetic";
  schema.columns.push_back({"value", ColumnType::kInt64, /*sensitive=*/true, std::nullopt});
  schema.columns.push_back({"sel", ColumnType::kInt64, /*sensitive=*/false, std::nullopt});
  if (spec.group_cardinality > 0) {
    schema.columns.push_back({"grp", ColumnType::kInt64, /*sensitive=*/false, std::nullopt});
  }
  return schema;
}

std::vector<Query> SyntheticSampleQueries(const SyntheticSpec& spec) {
  std::vector<Query> queries;
  queries.push_back(SyntheticSumQuery(50));
  if (spec.group_cardinality > 0) {
    queries.push_back(SyntheticGroupByQuery(spec.group_cardinality));
  }
  return queries;
}

Query SyntheticSumQuery(int64_t selectivity_percent) {
  Query q;
  q.table = "synthetic";
  q.Sum("value");
  if (selectivity_percent < 100) {
    q.Where("sel", CmpOp::kLt, selectivity_percent);
  }
  return q;
}

Query SyntheticGroupByQuery(uint64_t expected_groups) {
  Query q;
  q.table = "synthetic";
  q.Sum("value");
  q.GroupBy("grp");
  q.expected_groups = expected_groups;
  return q;
}

}  // namespace seabed
