// AmpLab Big Data Benchmark workload (paper Section 6.7).
//
// Synthetic Rankings and UserVisits tables with the BDB schema, plus the ten
// benchmark queries (Q1A–C, Q2A–C, Q3A–C, Q4) under the simplifications the
// paper itself made: Q2 matches deterministically-encrypted sourceIP
// *prefixes* (pre-materialized prefix columns, a client pre-processing step),
// and Q4 is its aggregation phase (the external-script phase stays plaintext
// in the paper). Fractional adRevenue is stored in cents (fixed point).
#ifndef SEABED_SRC_WORKLOAD_BDB_H_
#define SEABED_SRC_WORKLOAD_BDB_H_

#include <memory>
#include <string>

#include "src/engine/table.h"
#include "src/query/query.h"
#include "src/seabed/schema.h"

namespace seabed {

struct BdbSpec {
  uint64_t rankings_rows = 90000;     // paper: 90 M
  uint64_t uservisits_rows = 775000;  // paper: 775 M
  uint64_t seed = 7;
  // Distinct pageURLs; destURL values reference this universe.
  uint64_t num_urls = 30000;
};

std::shared_ptr<Table> MakeRankingsTable(const BdbSpec& spec);
std::shared_ptr<Table> MakeUserVisitsTable(const BdbSpec& spec);

PlainSchema RankingsSchema();
PlainSchema UserVisitsSchema();

// A named benchmark query.
struct BdbQuery {
  std::string label;  // "Q1A", ..., "Q4"
  Query query;
  bool on_uservisits = false;  // fact table selector
};

// All ten queries, in benchmark order.
std::vector<BdbQuery> BdbQuerySet();

// Sample-query sets for the planner (per table).
std::vector<Query> RankingsSampleQueries();
std::vector<Query> UserVisitsSampleQueries();

}  // namespace seabed

#endif  // SEABED_SRC_WORKLOAD_BDB_H_
