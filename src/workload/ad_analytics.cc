#include "src/workload/ad_analytics.h"

#include "src/common/check.h"
#include "src/common/rng.h"

namespace seabed {
namespace {

std::string SDimName(size_t i) { return "SDim" + std::to_string(i + 1); }
std::string PDimName(size_t i) { return "PDim" + std::to_string(i + 1); }
std::string MeasureName(size_t i) { return "M" + std::to_string(i + 1); }
std::string DimValue(size_t dim, uint64_t v) {
  return "d" + std::to_string(dim + 1) + "_v" + std::to_string(v);
}

}  // namespace

std::shared_ptr<Table> MakeAdAnalyticsTable(const AdAnalyticsSpec& spec) {
  Rng rng(spec.seed);
  auto table = std::make_shared<Table>("ad_analytics");

  auto hour = std::make_shared<Int64Column>();
  std::vector<std::shared_ptr<StringColumn>> sdims;
  std::vector<ZipfSampler> samplers;
  for (size_t d = 0; d < spec.sensitive_dim_cardinalities.size(); ++d) {
    sdims.push_back(std::make_shared<StringColumn>());
    samplers.emplace_back(spec.sensitive_dim_cardinalities[d], spec.zipf_s);
  }
  std::vector<std::shared_ptr<StringColumn>> pdims;
  for (size_t d = 0; d < spec.num_plain_dims; ++d) {
    pdims.push_back(std::make_shared<StringColumn>());
  }
  std::vector<std::shared_ptr<Int64Column>> measures;
  for (size_t m = 0; m < spec.num_measures; ++m) {
    measures.push_back(std::make_shared<Int64Column>());
  }

  for (uint64_t row = 0; row < spec.rows; ++row) {
    hour->Append(static_cast<int64_t>(rng.Below(24)));
    for (size_t d = 0; d < sdims.size(); ++d) {
      sdims[d]->Append(DimValue(d, samplers[d].Sample(rng)));
    }
    for (size_t d = 0; d < pdims.size(); ++d) {
      pdims[d]->Append("p" + std::to_string(d) + "_" + std::to_string(rng.Below(16)));
    }
    for (size_t m = 0; m < measures.size(); ++m) {
      measures[m]->Append(static_cast<int64_t>(rng.Below(10000)));
    }
  }

  table->AddColumn("hour", std::move(hour));
  for (size_t d = 0; d < sdims.size(); ++d) {
    table->AddColumn(SDimName(d), sdims[d]);
  }
  for (size_t d = 0; d < pdims.size(); ++d) {
    table->AddColumn(PDimName(d), pdims[d]);
  }
  for (size_t m = 0; m < measures.size(); ++m) {
    table->AddColumn(MeasureName(m), measures[m]);
  }
  return table;
}

PlainSchema AdAnalyticsSchema(const AdAnalyticsSpec& spec) {
  PlainSchema schema;
  schema.table_name = "ad_analytics";
  schema.columns.push_back({"hour", ColumnType::kInt64, false, std::nullopt});
  for (size_t d = 0; d < spec.sensitive_dim_cardinalities.size(); ++d) {
    const uint64_t card = spec.sensitive_dim_cardinalities[d];
    ValueDistribution dist;
    const ZipfSampler sampler(card, spec.zipf_s);
    for (uint64_t v = 0; v < card; ++v) {
      dist.values.push_back(DimValue(d, v));
      dist.frequencies.push_back(sampler.Pmf(v));
    }
    schema.columns.push_back({SDimName(d), ColumnType::kString, true, std::move(dist)});
  }
  for (size_t d = 0; d < spec.num_plain_dims; ++d) {
    schema.columns.push_back({PDimName(d), ColumnType::kString, false, std::nullopt});
  }
  for (size_t m = 0; m < spec.num_measures; ++m) {
    schema.columns.push_back(
        {MeasureName(m), ColumnType::kInt64, m < spec.num_sensitive_measures, std::nullopt});
  }
  return schema;
}

std::vector<Query> AdAnalyticsSampleQueries(const AdAnalyticsSpec& spec) {
  std::vector<Query> queries;
  // Hourly sums of each sensitive measure, filtered by each sensitive
  // dimension — the filter/measure co-occurrence drives which measures the
  // planner splays per dimension.
  for (size_t d = 0; d < spec.sensitive_dim_cardinalities.size(); ++d) {
    Query q;
    q.table = "ad_analytics";
    const size_t m = d % spec.num_sensitive_measures;
    q.Sum(MeasureName(m));
    q.Count();
    q.Where(SDimName(d), CmpOp::kEq, DimValue(d, 0));
    q.GroupBy("hour");
    q.expected_groups = 24;
    queries.push_back(std::move(q));
  }
  return queries;
}

Query AdAnalyticsPerfQuery(size_t groups, size_t num_measures, uint64_t variant) {
  SEABED_CHECK(groups >= 1 && groups <= 24);
  Query q;
  q.table = "ad_analytics";
  for (size_t m = 0; m < num_measures; ++m) {
    q.Sum(MeasureName((variant + m) % 10));
  }
  if (groups < 24) {
    // Restrict to the first `groups` hours so the result has exactly that
    // many groups (the paper's queries have 1–12 groups).
    q.Where("hour", CmpOp::kLt, static_cast<int64_t>(groups));
  }
  q.GroupBy("hour");
  q.expected_groups = groups;
  return q;
}

std::vector<Query> AdAnalyticsQueryLog(const AdAnalyticsSpec& spec, size_t total,
                                       size_t client_post) {
  SEABED_CHECK(client_post <= total);
  Rng rng(spec.seed + 99);
  std::vector<Query> log;
  log.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    Query q = AdAnalyticsPerfQuery(1 + rng.Below(12), 1 + rng.Below(3), rng.Next());
    // The paper's log is 80% pure server-side aggregations and 20% queries
    // whose finishing step (custom trend / anomaly functions) runs on the
    // client. Deterministic striping reproduces the exact split.
    q.has_udf = (i * client_post) / total != ((i + 1) * client_post) / total;
    log.push_back(std::move(q));
  }
  return log;
}

}  // namespace seabed
