// Wall-clock timing helpers used by the cluster model and benchmarks.
#ifndef SEABED_SRC_COMMON_STOPWATCH_H_
#define SEABED_SRC_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace seabed {

// Monotonic stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  // Restarts the stopwatch and returns the elapsed time since construction
  // (or the previous Restart) in seconds.
  double Restart();

  // Elapsed seconds since construction / last Restart, without resetting.
  double ElapsedSeconds() const;

  // Elapsed nanoseconds since construction / last Restart.
  uint64_t ElapsedNanos() const;

 private:
  static std::chrono::steady_clock::time_point Now() {
    return std::chrono::steady_clock::now();
  }

  std::chrono::steady_clock::time_point start_;
};

}  // namespace seabed

#endif  // SEABED_SRC_COMMON_STOPWATCH_H_
