// Byte-buffer helpers shared by the crypto and encoding layers.
#ifndef SEABED_SRC_COMMON_BYTES_H_
#define SEABED_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace seabed {

using Bytes = std::vector<uint8_t>;

// Appends `value` to `out` in little-endian order.
inline void PutU64(Bytes& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

// Reads a little-endian u64 at `offset`; the caller guarantees 8 bytes exist.
inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;  // assumes little-endian host; asserted in bytes.cc
}

inline void PutU32(Bytes& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

// Hex rendering, for tests and debugging.
std::string ToHex(const uint8_t* data, size_t len);
std::string ToHex(const Bytes& bytes);

}  // namespace seabed

#endif  // SEABED_SRC_COMMON_BYTES_H_
