// Epoch-based reclamation for immutable versioned snapshots.
//
// The serving layer publishes table versions through a single atomic pointer
// swap; readers pin the version they started on by entering an epoch-guarded
// critical section. A retired version is freed only once every reader that
// could possibly still dereference it has left its critical section — no
// reader/writer lock, no reference-count contention on the read path.
//
// Protocol (all operations are seq_cst, which is what makes the reasoning
// below airtight and is cheap next to the crypto work per query):
//
//   reader:  claim a slot, store the current global epoch into it,
//            THEN load the version pointer and use it;
//            clear the slot when done.
//   writer:  swap the version pointer, THEN retire the old version
//            (stamping it with the current epoch and bumping the epoch),
//            THEN scan the slots: a retired object is freed once
//            min(active slot epochs) exceeds its stamp.
//
// Safety sketch: if the writer's slot scan observed a reader's slot as empty,
// the reader's slot-store comes after the scan in the seq_cst total order,
// hence after the pointer swap — so that reader's subsequent pointer load
// sees the NEW version and never touches the freed one. If the scan observed
// the slot as occupied, its pinned epoch is <= the retirement stamp and the
// object is simply kept.
//
// Guards are slot-scoped, not thread-scoped: nesting guards on one thread is
// fine (each claims its own slot). With more simultaneous guards than slots,
// surplus readers spin-wait for a slot — acceptable because guard lifetimes
// are one query execution.
#ifndef SEABED_SRC_COMMON_EPOCH_H_
#define SEABED_SRC_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace seabed {

class EpochDomain {
 public:
  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;
  ~EpochDomain();

  // RAII critical section: while alive, any version whose retirement the
  // guard's pinned epoch precedes stays allocated.
  class Guard {
   public:
    explicit Guard(EpochDomain& domain);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochDomain* domain_;
    size_t slot_;
  };

  // Hands `object` to the domain for deferred destruction. The object is
  // destroyed (possibly immediately, possibly at a later Retire/Collect)
  // once no guard pinned an epoch at or before the retirement stamp.
  // Callers must have already unpublished the object (swapped the pointer).
  void Retire(std::shared_ptr<const void> object);

  // Frees every retired object no active guard can still reach. Called
  // automatically by Retire; exposed for tests and for backend teardown.
  void Collect();

  // Number of retired-but-not-yet-freed objects (diagnostics / tests).
  size_t retired_count() const;

  uint64_t epoch() const { return epoch_.load(std::memory_order_seq_cst); }

 private:
  static constexpr size_t kSlots = 256;
  struct alignas(64) Slot {
    // 0 = quiescent; otherwise the epoch the occupying guard pinned.
    std::atomic<uint64_t> pinned{0};
  };

  // Smallest epoch pinned by any active guard, or UINT64_MAX when idle.
  uint64_t MinActiveEpoch() const;
  void CollectLocked();

  std::atomic<uint64_t> epoch_{1};
  Slot slots_[kSlots];

  mutable std::mutex retired_mu_;
  // (retirement stamp, object) — freed once MinActiveEpoch() > stamp.
  std::vector<std::pair<uint64_t, std::shared_ptr<const void>>> retired_;
};

}  // namespace seabed

#endif  // SEABED_SRC_COMMON_EPOCH_H_
