// Bounded multi-lane MPMC queue with group-pop and barrier jobs — the
// submission spine of seabed::Service.
//
// Producers TryPush into one of `lanes` FIFO lanes sharing a single depth
// budget (`max_depth`): admission control is a non-blocking reject, never a
// blocking producer. Consumers PopGroup: the head of the lowest-numbered
// non-empty lane is popped together with the run of immediately-following
// items in the same lane that the caller's `same_group` predicate accepts
// (shape batching), up to `max_batch`. Lower lane indices strictly win, so
// lane 0 is the interactive/priority lane.
//
// BARRIER items (caller's `is_barrier` predicate) are ordering jobs, always
// delivered alone: a consumer that finds a barrier at the overall front
// freezes the queue, so nothing queued after the barrier dispatches before
// it completes; the consumer runs the job, then Thaw()s and GroupDone()s.
// With `quiesce_barriers` (the default) the consumer additionally waits
// until every previously-popped group has reported GroupDone() before
// receiving the barrier — the barrier then EXCLUDES all other work, not just
// orders against it. Non-quiescing queues skip that wait: the barrier runs
// concurrently with in-flight groups (a snapshot-isolated backend needs only
// the ordering half — appends never block queries). The popped-group
// accounting lives inside the queue's own mutex — a group counts as active
// from the moment it is popped, so a quiescing barrier can never slip
// between a pop and the start of its execution.
//
// Close() wakes everyone; consumers keep draining until empty, then PopGroup
// returns 0 (the shutdown-with-drain path). Drain() instead rips the backlog
// out so the caller can fail it (shutdown-without-drain).
#ifndef SEABED_SRC_COMMON_MPMC_QUEUE_H_
#define SEABED_SRC_COMMON_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace seabed {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t max_depth, size_t lanes = 1, bool quiesce_barriers = true)
      : max_depth_(max_depth), quiesce_barriers_(quiesce_barriers), lanes_(lanes) {
    SEABED_CHECK_MSG(lanes >= 1, "MpmcQueue needs at least one lane");
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Non-blocking push to `lane`. Returns false when the shared depth budget
  // is exhausted or the queue is closed — the caller's item is NOT consumed
  // on failure (it is only moved from once admitted), so a rejected job can
  // still be failed through its own promise.
  bool TryPush(T&& item, size_t lane = 0) {
    SEABED_CHECK_MSG(lane < lanes_.size(), "lane " << lane << " out of range");
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ >= max_depth_) {
        return false;
      }
      lanes_[lane].push_back(std::move(item));
      ++size_;
    }
    cv_pop_.notify_one();
    return true;
  }

  bool TryPush(const T& item, size_t lane = 0) { return TryPush(T(item), lane); }

  // Blocks until work is available (or the queue is closed and empty, which
  // returns 0). Appends the popped group to `*out` and marks it active; the
  // caller MUST call GroupDone() after finishing it, and additionally Thaw()
  // when the group was a barrier (is_barrier(front) — always delivered alone).
  //
  // `same_group(a, b)` says b may ride in a group whose first member is a;
  // `is_barrier(x)` marks exclusive items.
  template <typename GroupPred, typename BarrierPred>
  size_t PopGroup(std::vector<T>* out, size_t max_batch, GroupPred same_group,
                  BarrierPred is_barrier) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_pop_.wait(lock, [&] {
        return (closed_ && size_ == 0) || (!frozen_ && size_ > 0);
      });
      if (size_ == 0) {
        return 0;  // closed and drained
      }
      std::deque<T>& lane = *FirstNonEmptyLaneLocked();
      if (is_barrier(lane.front())) {
        // Freeze: nothing queued after the barrier dispatches until Thaw().
        // In quiescing mode, additionally wait for every already-popped
        // group to finish (the barrier EXCLUDES in-flight work); otherwise
        // the barrier pops immediately and overlaps them. The barrier item
        // stays queued while we wait so a concurrent Drain() still collects
        // it (size_ == 0 detects that and restarts).
        frozen_ = true;
        if (quiesce_barriers_) {
          cv_quiesce_.wait(lock, [&] { return active_ == 0 || size_ == 0; });
        }
        if (size_ == 0) {
          frozen_ = false;
          lock.unlock();
          cv_pop_.notify_all();
          lock.lock();
          continue;
        }
        // Still frozen: nothing popped since, so the barrier is still at the
        // front of its lane.
        std::deque<T>& blane = *FirstNonEmptyLaneLocked();
        SEABED_CHECK_MSG(is_barrier(blane.front()), "barrier vanished while frozen");
        out->push_back(std::move(blane.front()));
        blane.pop_front();
        --size_;
        ++active_;
        return 1;
      }
      const size_t first = out->size();
      out->push_back(std::move(lane.front()));
      lane.pop_front();
      --size_;
      while (out->size() - first < max_batch && !lane.empty() &&
             !is_barrier(lane.front()) && same_group((*out)[first], lane.front())) {
        out->push_back(std::move(lane.front()));
        lane.pop_front();
        --size_;
      }
      ++active_;
      const bool more = size_ > 0;
      lock.unlock();
      if (more) {
        cv_pop_.notify_one();  // baton: there is work left for a sibling
      }
      return out->size() - first;
    }
  }

  // Reports a popped group finished. Unblocks a barrier waiting to quiesce.
  void GroupDone() {
    std::lock_guard<std::mutex> lock(mu_);
    SEABED_CHECK_MSG(active_ > 0, "GroupDone without a popped group");
    if (--active_ == 0) {
      cv_quiesce_.notify_all();
    }
  }

  // Lifts the freeze a barrier pop installed.
  void Thaw() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      frozen_ = false;
    }
    cv_pop_.notify_all();
  }

  // Rejects future pushes; consumers drain the backlog then PopGroup -> 0.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_pop_.notify_all();
    cv_quiesce_.notify_all();
  }

  // Rips out everything still queued (lane order, FIFO within a lane) so the
  // caller can fail it. Does not close.
  std::vector<T> Drain() {
    std::vector<T> dropped;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::deque<T>& lane : lanes_) {
        for (T& item : lane) {
          dropped.push_back(std::move(item));
        }
        lane.clear();
      }
      size_ = 0;
    }
    cv_pop_.notify_all();
    cv_quiesce_.notify_all();
    return dropped;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  // Requires mu_ held and size_ > 0.
  std::deque<T>* FirstNonEmptyLaneLocked() {
    for (std::deque<T>& lane : lanes_) {
      if (!lane.empty()) {
        return &lane;
      }
    }
    SEABED_CHECK_MSG(false, "size_ > 0 but all lanes empty");
    return nullptr;
  }

  const size_t max_depth_;
  const bool quiesce_barriers_;
  mutable std::mutex mu_;
  std::condition_variable cv_pop_;      // consumers waiting for work
  std::condition_variable cv_quiesce_;  // a barrier waiting for active_ == 0
  std::vector<std::deque<T>> lanes_;
  size_t size_ = 0;    // total across lanes
  size_t active_ = 0;  // popped-but-unfinished groups
  bool frozen_ = false;
  bool closed_ = false;
};

}  // namespace seabed

#endif  // SEABED_SRC_COMMON_MPMC_QUEUE_H_
