#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace seabed {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[seabed fatal] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace seabed
