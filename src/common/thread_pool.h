// Fixed-size thread pool used by the cluster executor (src/engine/cluster.h).
//
// The pool runs closures on `num_threads` host threads. Seabed's cluster
// model maps many *logical* workers onto however many host threads the
// machine actually has; the pool is deliberately simple (no work stealing, no
// futures) because the cluster layer does its own per-worker accounting.
#ifndef SEABED_SRC_COMMON_THREAD_POOL_H_
#define SEABED_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seabed {

class ThreadPool {
 public:
  // Spawns `num_threads` worker threads (at least one).
  explicit ThreadPool(size_t num_threads);

  // Drains outstanding work, then joins all threads.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  // Runs `fn(i)` for every i in [0, n), in parallel, and waits for all of
  // them. `fn` must be safe to invoke concurrently.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace seabed

#endif  // SEABED_SRC_COMMON_THREAD_POOL_H_
