#include "src/common/thread_pool.h"

#include <atomic>

#include "src/common/check.h"

namespace seabed {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  SEABED_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    SEABED_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1 || threads_.size() == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t spawn = std::min(n, threads_.size());
  for (size_t t = 0; t < spawn; ++t) {
    Submit([next, n, &fn] {
      for (;;) {
        const size_t i = next->fetch_add(1);
        if (i >= n) {
          return;
        }
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace seabed
