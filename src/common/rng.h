// Deterministic pseudo-random number generation for workload synthesis.
//
// All Seabed experiments are seeded so that benchmark rows and query sets are
// reproducible run-to-run. The generator is SplitMix64 (for seeding) feeding
// xoshiro256**, which is fast, well distributed, and has a tiny state.
//
// These generators are NOT cryptographic. Cryptographic pseudo-randomness
// (the ASHE PRF, DET, ORE) lives in src/crypto and is AES-based.
#ifndef SEABED_SRC_COMMON_RNG_H_
#define SEABED_SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace seabed {

// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  // Next 64 uniform bits.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be non-zero.
  uint64_t Below(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli draw with probability `p` of returning true.
  bool Chance(double p);

 private:
  uint64_t state_[4];
};

// Zipf(s) sampler over {0, ..., n-1}: value k has probability proportional to
// 1 / (k+1)^s. Used to synthesize the skewed dimension-value distributions
// that enhanced SPLASHE exploits (Section 3.4 of the paper).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  // Probability mass of value `k`.
  double Pmf(uint64_t k) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cumulative distribution, cdf_[k] = P(value <= k)
};

}  // namespace seabed

#endif  // SEABED_SRC_COMMON_RNG_H_
