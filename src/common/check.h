// Lightweight invariant checking used across the Seabed libraries.
//
// SEABED_CHECK(cond) aborts with a diagnostic when `cond` is false. Unlike
// assert(), the checks stay enabled in release builds: the library manages
// ciphertexts and compressed ID lists where silent corruption would produce
// wrong (and hard-to-debug) aggregates rather than crashes.
#ifndef SEABED_SRC_COMMON_CHECK_H_
#define SEABED_SRC_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace seabed {

// Terminates the process after printing `message` with source location.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& message);

}  // namespace seabed

#define SEABED_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::seabed::CheckFailed(__FILE__, __LINE__, "check failed: " #cond); \
    }                                                                   \
  } while (0)

#define SEABED_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream seabed_check_oss;                                   \
      seabed_check_oss << "check failed: " #cond << " — " << msg;            \
      ::seabed::CheckFailed(__FILE__, __LINE__, seabed_check_oss.str());     \
    }                                                                        \
  } while (0)

#endif  // SEABED_SRC_COMMON_CHECK_H_
