#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace seabed {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  SEABED_CHECK(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  SEABED_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(Below(span));
}

double Rng::NextDouble() {
  // 53 uniform mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  SEABED_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first k with cdf_[k] >= u.
  uint64_t lo = 0;
  uint64_t hi = n_ - 1;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(uint64_t k) const {
  SEABED_CHECK(k < n_);
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace seabed
