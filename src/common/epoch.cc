#include "src/common/epoch.h"

#include <thread>

namespace seabed {

EpochDomain::~EpochDomain() {
  // Backends destroy their domain only after all readers are gone; anything
  // still retired is unreachable and can be dropped outright.
  std::lock_guard<std::mutex> lock(retired_mu_);
  retired_.clear();
}

EpochDomain::Guard::Guard(EpochDomain& domain) : domain_(&domain), slot_(0) {
  // Spread threads across the slot array so concurrent guards rarely collide
  // on a cache line; fall back to a linear probe (and, in the pathological
  // all-slots-busy case, a yield loop — guards last one query execution).
  const size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots;
  for (;;) {
    for (size_t i = 0; i < kSlots; ++i) {
      const size_t s = (start + i) % kSlots;
      uint64_t expected = 0;
      const uint64_t epoch = domain_->epoch_.load(std::memory_order_seq_cst);
      if (domain_->slots_[s].pinned.compare_exchange_strong(
              expected, epoch, std::memory_order_seq_cst)) {
        slot_ = s;
        return;
      }
    }
    std::this_thread::yield();
  }
}

EpochDomain::Guard::~Guard() {
  domain_->slots_[slot_].pinned.store(0, std::memory_order_seq_cst);
}

void EpochDomain::Retire(std::shared_ptr<const void> object) {
  std::lock_guard<std::mutex> lock(retired_mu_);
  // Stamp with the epoch in force while the object was still published;
  // any guard pinned at or before the stamp may have loaded it.
  const uint64_t stamp = epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.emplace_back(stamp, std::move(object));
  CollectLocked();
}

void EpochDomain::Collect() {
  std::lock_guard<std::mutex> lock(retired_mu_);
  CollectLocked();
}

size_t EpochDomain::retired_count() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  return retired_.size();
}

uint64_t EpochDomain::MinActiveEpoch() const {
  uint64_t min = UINT64_MAX;
  for (const Slot& slot : slots_) {
    const uint64_t pinned = slot.pinned.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < min) min = pinned;
  }
  return min;
}

void EpochDomain::CollectLocked() {
  const uint64_t min_active = MinActiveEpoch();
  size_t kept = 0;
  for (size_t i = 0; i < retired_.size(); ++i) {
    if (retired_[i].first >= min_active) {
      if (kept != i) retired_[kept] = std::move(retired_[i]);
      ++kept;
    }
  }
  retired_.resize(kept);
}

}  // namespace seabed
