#include "src/common/stopwatch.h"

namespace seabed {

double Stopwatch::Restart() {
  const auto now = Now();
  const double elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - start_).count();
  start_ = now;
  return elapsed;
}

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration_cast<std::chrono::duration<double>>(Now() - start_).count();
}

uint64_t Stopwatch::ElapsedNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - start_).count());
}

}  // namespace seabed
