#include "src/common/bytes.h"

#include <bit>

namespace seabed {

static_assert(std::endian::native == std::endian::little,
              "Seabed's serialized formats assume a little-endian host.");

std::string ToHex(const uint8_t* data, size_t len) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

std::string ToHex(const Bytes& bytes) { return ToHex(bytes.data(), bytes.size()); }

}  // namespace seabed
