// Order-revealing encryption with limited leakage (Chenette–Lewi–Weis–Wu,
// FSE 2016) — the OPE scheme Seabed adopts for range predicates (paper
// Section 4.2 and Appendix A.3).
//
// For a 64-bit message with bits b_1 ... b_64 (most significant first), the
// ciphertext is (u_1, ..., u_64) with
//
//     u_i = ( F(k, (i, b_1 b_2 ... b_{i-1} || 0^{64-i})) + b_i ) mod 3
//
// Compare() finds the first index where two ciphertexts differ; ct1 encrypts
// the larger message iff u_i = u'_i + 1 (mod 3). The only leakage beyond
// order is inddiff — the index of the most significant differing bit.
//
// Each u_i takes 2 bits, so a ciphertext is 16 bytes.
#ifndef SEABED_SRC_CRYPTO_ORE_H_
#define SEABED_SRC_CRYPTO_ORE_H_

#include <array>
#include <cstdint>

#include "src/crypto/aes128.h"

namespace seabed {

struct OreCiphertext {
  // u_i for i in [0, 64), 2 bits each, packed little-endian within bytes.
  std::array<uint8_t, 16> packed{};

  uint8_t U(int i) const { return (packed[i >> 2] >> ((i & 3) * 2)) & 3; }
  void SetU(int i, uint8_t v) {
    packed[i >> 2] = static_cast<uint8_t>(
        (packed[i >> 2] & ~(3u << ((i & 3) * 2))) | (static_cast<unsigned>(v) << ((i & 3) * 2)));
  }

  bool operator==(const OreCiphertext&) const = default;
};

// Result of a comparison with its leakage.
struct OreComparison {
  int order = 0;     // -1: ct1 < ct2, 0: equal, +1: ct1 > ct2
  int inddiff = 64;  // index (0 = MSB) of the first differing bit; 64 if equal
};

class Ore {
 public:
  explicit Ore(const AesKey& key) : aes_(key) {}

  OreCiphertext Encrypt(uint64_t m) const;

  // Order of the underlying plaintexts, plus the scheme's leakage.
  static OreComparison Compare(const OreCiphertext& ct1, const OreCiphertext& ct2);

  // Convenience predicates used by the query engine.
  static bool Less(const OreCiphertext& a, const OreCiphertext& b) {
    return Compare(a, b).order < 0;
  }
  static bool LessEq(const OreCiphertext& a, const OreCiphertext& b) {
    return Compare(a, b).order <= 0;
  }

 private:
  Aes128 aes_;
};

}  // namespace seabed

#endif  // SEABED_SRC_CRYPTO_ORE_H_
