#include "src/crypto/ore.h"

#include <cstring>

namespace seabed {

OreCiphertext Ore::Encrypt(uint64_t m) const {
  OreCiphertext ct;
  uint64_t prefix = 0;  // b_1 ... b_{i-1} left-aligned, zero-padded
  for (int i = 0; i < 64; ++i) {
    const uint8_t bit = static_cast<uint8_t>((m >> (63 - i)) & 1);
    // PRF input: (index, prefix) with domain separation.
    uint8_t block[16] = {};
    block[0] = static_cast<uint8_t>(i);
    block[1] = 0x0e;  // domain tag: ORE
    std::memcpy(block + 2, &prefix, 8);
    uint8_t out[16];
    aes_.EncryptBlock(block, out);
    const uint8_t f_mod3 = static_cast<uint8_t>(out[0] % 3);
    ct.SetU(i, static_cast<uint8_t>((f_mod3 + bit) % 3));
    prefix |= static_cast<uint64_t>(bit) << (63 - i);
  }
  return ct;
}

OreComparison Ore::Compare(const OreCiphertext& ct1, const OreCiphertext& ct2) {
  OreComparison result;
  for (int byte = 0; byte < 16; ++byte) {
    if (ct1.packed[byte] == ct2.packed[byte]) {
      continue;  // four u-values at a time
    }
    for (int slot = 0; slot < 4; ++slot) {
      const int i = byte * 4 + slot;
      const uint8_t u1 = ct1.U(i);
      const uint8_t u2 = ct2.U(i);
      if (u1 == u2) {
        continue;
      }
      result.inddiff = i;
      result.order = (u1 == (u2 + 1) % 3) ? 1 : -1;
      return result;
    }
  }
  return result;  // equal
}

}  // namespace seabed
