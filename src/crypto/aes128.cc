#include "src/crypto/aes128.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <wmmintrin.h>
#define SEABED_HAS_AESNI_BUILD 1
#endif

namespace seabed {
namespace {

// FIPS-197 S-box.
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36};

uint8_t XTime(uint8_t x) { return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b)); }

}  // namespace

AesKey AesKey::FromSeed(uint64_t seed) {
  AesKey key;
  // SplitMix64 expansion of the seed into 16 bytes.
  uint64_t s = seed;
  for (int w = 0; w < 2; ++w) {
    s += 0x9e3779b97f4a7c15ULL;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    std::memcpy(key.bytes.data() + 8 * w, &z, 8);
  }
  return key;
}

bool Aes128::HardwareAvailable() {
#if defined(SEABED_HAS_AESNI_BUILD)
  return __builtin_cpu_supports("aes");
#else
  return false;
#endif
}

Aes128::Aes128(const AesKey& key, bool force_portable) {
  // FIPS-197 key expansion (shared by both paths; the hardware path loads the
  // expanded schedule directly).
  std::memcpy(round_keys_.data(), key.bytes.data(), 16);
  for (int i = 4; i < 44; ++i) {
    uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % 4 == 0) {
      const uint8_t t0 = temp[0];
      temp[0] = static_cast<uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4 - 1]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[4 * i + b] = round_keys_[4 * (i - 4) + b] ^ temp[b];
    }
  }
  use_hardware_ = !force_portable && HardwareAvailable();
}

void Aes128::EncryptBlockPortable(const uint8_t in[16], uint8_t out[16]) const {
  uint8_t state[16];
  for (int i = 0; i < 16; ++i) {
    state[i] = in[i] ^ round_keys_[i];
  }
  for (int round = 1; round <= 10; ++round) {
    // SubBytes.
    for (auto& b : state) {
      b = kSbox[b];
    }
    // ShiftRows: state is column-major (state[4*col + row]).
    uint8_t t[16];
    for (int col = 0; col < 4; ++col) {
      for (int row = 0; row < 4; ++row) {
        t[4 * col + row] = state[4 * ((col + row) % 4) + row];
      }
    }
    std::memcpy(state, t, 16);
    // MixColumns (skipped in the final round).
    if (round != 10) {
      for (int col = 0; col < 4; ++col) {
        uint8_t* c = state + 4 * col;
        const uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        const uint8_t x = a0 ^ a1 ^ a2 ^ a3;
        c[0] = static_cast<uint8_t>(a0 ^ x ^ XTime(a0 ^ a1));
        c[1] = static_cast<uint8_t>(a1 ^ x ^ XTime(a1 ^ a2));
        c[2] = static_cast<uint8_t>(a2 ^ x ^ XTime(a2 ^ a3));
        c[3] = static_cast<uint8_t>(a3 ^ x ^ XTime(a3 ^ a0));
      }
    }
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) {
      state[i] ^= round_keys_[16 * round + i];
    }
  }
  std::memcpy(out, state, 16);
}

#if defined(SEABED_HAS_AESNI_BUILD)
void Aes128::EncryptBlockHardware(const uint8_t in[16], uint8_t out[16]) const {
  __m128i block = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys_.data());
  block = _mm_xor_si128(block, _mm_loadu_si128(rk));
  for (int round = 1; round < 10; ++round) {
    block = _mm_aesenc_si128(block, _mm_loadu_si128(rk + round));
  }
  block = _mm_aesenclast_si128(block, _mm_loadu_si128(rk + 10));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), block);
}
#else
void Aes128::EncryptBlockHardware(const uint8_t in[16], uint8_t out[16]) const {
  EncryptBlockPortable(in, out);
}
#endif

void Aes128::EncryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  if (use_hardware_) {
    EncryptBlockHardware(in, out);
  } else {
    EncryptBlockPortable(in, out);
  }
}

void Aes128::EncryptCounter(uint64_t counter, uint64_t out_words[2]) const {
  uint8_t block[16] = {};
  std::memcpy(block, &counter, 8);
  uint8_t cipher[16];
  EncryptBlock(block, cipher);
  std::memcpy(&out_words[0], cipher, 8);
  std::memcpy(&out_words[1], cipher + 8, 8);
}

}  // namespace seabed
