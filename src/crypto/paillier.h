// Paillier additively homomorphic public-key encryption.
//
// This is the baseline Seabed is compared against: CryptDB and Monomi encrypt
// aggregable measures with Paillier (paper Sections 2.1, 6). We implement the
// standard scheme with the g = n + 1 optimization:
//
//   keygen:  n = p q (distinct primes), lambda = lcm(p-1, q-1),
//            mu = lambda^{-1} mod n
//   enc(m):  c = (1 + m n) r^n mod n^2,   r uniform in Z_n^*
//   dec(c):  m = L(c^lambda mod n^2) * mu mod n,  L(x) = (x-1)/n
//   add:     c1 * c2 mod n^2
//
// Signed measures use the two's-complement-style embedding around n/2.
#ifndef SEABED_SRC_CRYPTO_PAILLIER_H_
#define SEABED_SRC_CRYPTO_PAILLIER_H_

#include <cstdint>

#include "src/bignum/bignum.h"
#include "src/common/rng.h"

namespace seabed {

struct PaillierPublicKey {
  BigNum n;
  BigNum n_squared;

  // Serialized ciphertext size in bytes (2 * |n|), used for storage accounting.
  size_t CiphertextBytes() const { return static_cast<size_t>(2 * ((n.BitLength() + 7) / 8)); }
};

struct PaillierPrivateKey {
  BigNum lambda;
  BigNum mu;
};

class Paillier {
 public:
  // Generates a key pair with an n of roughly `modulus_bits` bits. The paper
  // uses 2048-bit ciphertexts, i.e. modulus_bits = 1024; tests use smaller
  // keys to stay fast.
  static Paillier GenerateKey(Rng& rng, int modulus_bits);

  // Encrypts m (interpreted mod n).
  BigNum Encrypt(const BigNum& m, Rng& rng) const;

  // Encrypts a signed 64-bit value using the centered embedding.
  BigNum EncryptSigned(int64_t m, Rng& rng) const;

  // Homomorphic addition of two ciphertexts.
  BigNum Add(const BigNum& c1, const BigNum& c2) const;

  // Decrypts to the raw residue in [0, n).
  BigNum Decrypt(const BigNum& c) const;

  // Decrypts and undoes the centered embedding (values in (-n/2, n/2]).
  int64_t DecryptSigned(const BigNum& c) const;

  // Bulk-encryption support: Paillier encryption is dominated by the r^n
  // mod n^2 exponentiation, which is independent of the message. A
  // randomness pool precomputes `size` such factors so baseline *datasets*
  // can be built in reasonable time (one modular multiplication per cell).
  // Reusing pool entries weakens semantic security, so this is strictly a
  // benchmark-construction device — per-operation costs (Table 1) are always
  // measured with full Encrypt(). See DESIGN.md.
  std::vector<BigNum> MakeRandomnessPool(Rng& rng, size_t size) const;
  BigNum EncryptSignedPooled(int64_t m, const BigNum& pool_entry) const;

  const PaillierPublicKey& public_key() const { return public_key_; }

 private:
  Paillier(PaillierPublicKey pub, PaillierPrivateKey priv)
      : public_key_(std::move(pub)), private_key_(std::move(priv)) {}

  PaillierPublicKey public_key_;
  PaillierPrivateKey private_key_;
};

}  // namespace seabed

#endif  // SEABED_SRC_CRYPTO_PAILLIER_H_
