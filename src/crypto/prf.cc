#include "src/crypto/prf.h"

#include "src/common/check.h"

namespace seabed {

uint64_t Prf::Eval(uint64_t id) const {
  const uint64_t block = id >> 1;
  if (block != cached_block_) {
    aes_.EncryptCounter(block, cached_words_);
    cached_block_ = block;
  }
  return cached_words_[id & 1];
}

uint64_t Prf::Delta(uint64_t id) const {
  SEABED_CHECK(id >= 1);
  return Eval(id) - Eval(id - 1);
}

uint64_t Prf::RangeDelta(uint64_t lo, uint64_t hi) const {
  SEABED_CHECK(lo >= 1 && lo <= hi);
  return Eval(hi) - Eval(lo - 1);
}

}  // namespace seabed
