#include "src/crypto/id_set.h"

#include <algorithm>

#include "src/common/check.h"

namespace seabed {

IdSet IdSet::Single(uint64_t id) {
  IdSet s;
  s.runs_.push_back({id, id, 1});
  return s;
}

IdSet IdSet::FromRange(uint64_t lo, uint64_t hi) {
  SEABED_CHECK(lo <= hi);
  IdSet s;
  s.runs_.push_back({lo, hi, 1});
  return s;
}

void IdSet::Add(uint64_t id) {
  if (!runs_.empty()) {
    Run& back = runs_.back();
    if (id == back.hi + 1 && back.count == 1) {
      back.hi = id;  // extend the trailing run — the common sequential case
      return;
    }
    if (id <= back.hi) {
      runs_.push_back({id, id, 1});
      Normalize();
      return;
    }
  }
  runs_.push_back({id, id, 1});
}

void IdSet::AddRange(uint64_t lo, uint64_t hi) {
  SEABED_CHECK(lo <= hi);
  if (!runs_.empty()) {
    Run& back = runs_.back();
    if (lo == back.hi + 1 && back.count == 1) {
      back.hi = hi;
      return;
    }
    if (lo <= back.hi) {
      runs_.push_back({lo, hi, 1});
      Normalize();
      return;
    }
  }
  runs_.push_back({lo, hi, 1});
}

void IdSet::UnionWith(const IdSet& other) {
  if (other.runs_.empty()) {
    return;
  }
  if (runs_.empty()) {
    runs_ = other.runs_;
    return;
  }
  // Fast path: disjoint and ordered (partition-wise aggregation produces
  // exactly this shape).
  if (other.runs_.front().lo > runs_.back().hi) {
    // Possibly coalesce across the seam.
    const Run& first = other.runs_.front();
    Run& back = runs_.back();
    size_t start = 0;
    if (first.lo == back.hi + 1 && first.count == back.count) {
      back.hi = first.hi;
      start = 1;
    }
    runs_.insert(runs_.end(), other.runs_.begin() + start, other.runs_.end());
    return;
  }
  runs_.insert(runs_.end(), other.runs_.begin(), other.runs_.end());
  Normalize();
}

IdSet IdSet::MergeAll(const std::vector<IdSet>& parts) {
  IdSet merged;
  size_t total_runs = 0;
  for (const IdSet& p : parts) {
    total_runs += p.runs_.size();
  }
  merged.runs_.reserve(total_runs);
  bool sorted_disjoint = true;
  for (const IdSet& p : parts) {
    if (p.runs_.empty()) {
      continue;
    }
    if (!merged.runs_.empty() && p.runs_.front().lo <= merged.runs_.back().hi) {
      sorted_disjoint = false;
    }
    merged.runs_.insert(merged.runs_.end(), p.runs_.begin(), p.runs_.end());
  }
  if (!sorted_disjoint) {
    merged.Normalize();
  }
  return merged;
}

uint64_t IdSet::TotalCount() const {
  uint64_t total = 0;
  for (const Run& r : runs_) {
    total += (r.hi - r.lo + 1) * r.count;
  }
  return total;
}

bool IdSet::IsPlainSet() const {
  for (const Run& r : runs_) {
    if (r.count != 1) {
      return false;
    }
  }
  return true;
}

void IdSet::Normalize() {
  // Event sweep: +count at lo, -count at hi+1; emit runs where the active
  // multiplicity is positive. Handles arbitrary overlap, which arises when a
  // ciphertext is added to an aggregate more than once.
  struct Event {
    uint64_t pos;
    int64_t delta;
  };
  std::vector<Event> events;
  events.reserve(runs_.size() * 2);
  for (const Run& r : runs_) {
    events.push_back({r.lo, static_cast<int64_t>(r.count)});
    events.push_back({r.hi + 1, -static_cast<int64_t>(r.count)});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.pos < b.pos; });

  std::vector<Run> merged;
  int64_t active = 0;
  uint64_t prev_pos = 0;
  for (size_t i = 0; i < events.size();) {
    const uint64_t pos = events[i].pos;
    if (active > 0 && pos > prev_pos) {
      // Emit [prev_pos, pos - 1] with multiplicity `active`.
      if (!merged.empty() && merged.back().hi + 1 == prev_pos &&
          merged.back().count == static_cast<uint64_t>(active)) {
        merged.back().hi = pos - 1;
      } else {
        merged.push_back({prev_pos, pos - 1, static_cast<uint64_t>(active)});
      }
    }
    while (i < events.size() && events[i].pos == pos) {
      active += events[i].delta;
      ++i;
    }
    prev_pos = pos;
  }
  SEABED_CHECK(active == 0);
  runs_ = std::move(merged);
}

}  // namespace seabed
