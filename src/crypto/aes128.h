// AES-128 block cipher.
//
// This is the cryptographic workhorse of Seabed: the ASHE PRF, deterministic
// encryption, and the ORE scheme all reduce to AES-128 invocations
// (Section 4.3 of the paper). Two implementations are provided:
//
//   * a hardware path using Intel AES-NI intrinsics, matching the paper's
//     "hardware accelerated AES" C++ module, and
//   * a portable constant-time-ish software path (used when the CPU lacks the
//     extension and as a cross-check in tests).
//
// The implementation is selected once at construction; EncryptBlock is
// branch-free thereafter.
#ifndef SEABED_SRC_CRYPTO_AES128_H_
#define SEABED_SRC_CRYPTO_AES128_H_

#include <array>
#include <cstdint>

namespace seabed {

// 128-bit key for AES and all derived primitives.
struct AesKey {
  std::array<uint8_t, 16> bytes{};

  // Derives a key deterministically from a 64-bit seed (test/benchmark use).
  static AesKey FromSeed(uint64_t seed);
};

class Aes128 {
 public:
  // `force_portable` bypasses the AES-NI path (used by tests to cross-check
  // the two implementations against each other).
  explicit Aes128(const AesKey& key, bool force_portable = false);

  // Encrypts one 16-byte block: out = AES128_k(in). In-place use is allowed.
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  // Convenience: encrypts the 128-bit block (hi||lo) and returns the low and
  // high 64-bit words of the ciphertext. This is the building block of the
  // batched PRF (one AES call yields two 64-bit pseudo-random words).
  void EncryptCounter(uint64_t counter, uint64_t out_words[2]) const;

  // True when this instance uses the AES-NI hardware path.
  bool using_hardware() const { return use_hardware_; }

  // True when the host CPU supports AES-NI.
  static bool HardwareAvailable();

 private:
  void EncryptBlockPortable(const uint8_t in[16], uint8_t out[16]) const;
  void EncryptBlockHardware(const uint8_t in[16], uint8_t out[16]) const;

  // 11 round keys, 16 bytes each.
  alignas(16) std::array<uint8_t, 176> round_keys_{};
  bool use_hardware_ = false;
};

}  // namespace seabed

#endif  // SEABED_SRC_CRYPTO_AES128_H_
