// ASHE — Additively Symmetric Homomorphic Encryption (paper Section 3.1).
//
// Plaintexts live in Z_n with n = 2^64 (native wrap-around arithmetic).
// Encryption of m under identifier i is
//
//     Enc_k(m, i) = (m - F_k(i) + F_k(i-1),  {i})
//
// where F_k is the AES-based PRF of src/crypto/prf.h. Ciphertexts "add" by
// adding the group elements and taking the multiset union of identifiers;
// decryption adds back sum_{i in S} (F_k(i) - F_k(i-1)), which telescopes to
// two PRF calls per contiguous identifier run.
//
// Signed measures are handled by two's-complement embedding: int64 values map
// into Z_{2^64} and sums decode correctly as long as the true sum fits in
// int64 (the same precondition a plaintext system has).
#ifndef SEABED_SRC_CRYPTO_ASHE_H_
#define SEABED_SRC_CRYPTO_ASHE_H_

#include <cstdint>

#include "src/crypto/id_set.h"
#include "src/crypto/prf.h"

namespace seabed {

// An aggregate ASHE ciphertext: the running group element plus the identifier
// multiset. A freshly encrypted single value is the special case of one
// single-id run.
struct AsheCiphertext {
  uint64_t value = 0;
  IdSet ids;

  // The homomorphic ⊕.
  void Accumulate(const AsheCiphertext& other) {
    value += other.value;
    ids.UnionWith(other.ids);
  }
};

class Ashe {
 public:
  explicit Ashe(const AesKey& key) : prf_(key) {}

  // Encrypts `m` under identifier `id` (id >= 1). Returns only the group
  // element; the identifier is implicit (stored columnar, ids are the row
  // numbers). This is the hot path used during upload.
  uint64_t EncryptCell(uint64_t m, uint64_t id) const { return m - prf_.Delta(id); }

  // Full ciphertext (group element + identifier multiset).
  AsheCiphertext Encrypt(uint64_t m, uint64_t id) const;

  // Decrypts an aggregate: value + sum over runs of count * RangeDelta.
  uint64_t Decrypt(const AsheCiphertext& ct) const;

  // Decrypts the group element of a single cell with known id.
  uint64_t DecryptCell(uint64_t cipher, uint64_t id) const { return cipher + prf_.Delta(id); }

  // Number of PRF evaluations Decrypt will perform (2 per run) — the quantity
  // reported as "AES operations required for decryption" in Section 6.6.
  static uint64_t DecryptPrfCalls(const AsheCiphertext& ct) { return 2 * ct.ids.NumRuns(); }

  bool using_hardware() const { return prf_.using_hardware(); }

 private:
  Prf prf_;
};

}  // namespace seabed

#endif  // SEABED_SRC_CRYPTO_ASHE_H_
