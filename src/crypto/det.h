// Deterministic encryption (DET).
//
// Seabed uses DET for dimensions that participate in joins or that enhanced
// SPLASHE stores in its "others" column (paper Sections 2.1, 3.4, 4.2). Two
// primitives are provided:
//
//  * DetInt — an invertible pseudo-random permutation over 64-bit values,
//    built as a 4-round Luby–Rackoff Feistel network whose round function is
//    AES-128. Invertibility lets the client decrypt DET-encrypted dimension
//    values returned in query results.
//
//  * DetToken — a deterministic equality token (AES-CMAC-style PRF tag) for
//    variable-length strings. Tokens support equality checks and GROUP BY on
//    the server; the client keeps a token -> plaintext dictionary for display
//    (the Seabed proxy knows the dimension domain from the planner).
//
// Like every deterministic scheme, DET leaks value frequencies — that leak is
// exactly what SPLASHE (src/seabed/splashe.h) exists to close.
#ifndef SEABED_SRC_CRYPTO_DET_H_
#define SEABED_SRC_CRYPTO_DET_H_

#include <cstdint>
#include <string>

#include "src/crypto/aes128.h"

namespace seabed {

class DetInt {
 public:
  explicit DetInt(const AesKey& key) : aes_(key) {}

  // Deterministic, invertible encryption of a 64-bit value.
  uint64_t Encrypt(uint64_t plaintext) const;

  // Inverse of Encrypt.
  uint64_t Decrypt(uint64_t ciphertext) const;

 private:
  // Feistel round function: AES(round || half) truncated to 32 bits.
  uint32_t RoundF(uint32_t half, uint32_t round) const;

  Aes128 aes_;
};

class DetToken {
 public:
  explicit DetToken(const AesKey& key) : aes_(key) {}

  // 64-bit deterministic equality token for `text`.
  uint64_t Tag(const std::string& text) const;

 private:
  Aes128 aes_;
};

}  // namespace seabed

#endif  // SEABED_SRC_CRYPTO_DET_H_
