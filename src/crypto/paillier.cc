#include "src/crypto/paillier.h"

#include "src/bignum/prime.h"
#include "src/common/check.h"

namespace seabed {

Paillier Paillier::GenerateKey(Rng& rng, int modulus_bits) {
  SEABED_CHECK(modulus_bits >= 32);
  const int prime_bits = modulus_bits / 2;
  for (;;) {
    const BigNum p = GeneratePrime(rng, prime_bits);
    const BigNum q = GeneratePrime(rng, prime_bits);
    if (p == q) {
      continue;
    }
    const BigNum n = BigNum::Mul(p, q);
    // gcd(n, (p-1)(q-1)) must be 1; guaranteed for distinct primes of equal
    // length per Paillier's paper, but we assert anyway.
    const BigNum p1 = BigNum::Sub(p, BigNum(1));
    const BigNum q1 = BigNum::Sub(q, BigNum(1));
    if (!BigNum::Gcd(n, BigNum::Mul(p1, q1)).IsOne()) {
      continue;
    }
    PaillierPublicKey pub;
    pub.n = n;
    pub.n_squared = BigNum::Mul(n, n);

    PaillierPrivateKey priv;
    priv.lambda = BigNum::Lcm(p1, q1);
    // With g = n+1: L(g^lambda mod n^2) = lambda mod n, so mu = lambda^{-1}.
    priv.mu = BigNum::ModInverse(BigNum::Mod(priv.lambda, n), n);
    return Paillier(std::move(pub), std::move(priv));
  }
}

BigNum Paillier::Encrypt(const BigNum& m, Rng& rng) const {
  const BigNum& n = public_key_.n;
  const BigNum& n2 = public_key_.n_squared;
  const BigNum m_mod = BigNum::Mod(m, n);
  // (1 + m n) mod n^2.
  const BigNum gm = BigNum::Mod(BigNum::Add(BigNum(1), BigNum::Mul(m_mod, n)), n2);
  // r uniform in Z_n^*.
  BigNum r;
  do {
    r = BigNum::RandomBelow(rng, n);
  } while (r.IsZero() || !BigNum::Gcd(r, n).IsOne());
  const BigNum rn = BigNum::ModExp(r, n, n2);
  return BigNum::ModMul(gm, rn, n2);
}

BigNum Paillier::EncryptSigned(int64_t m, Rng& rng) const {
  if (m >= 0) {
    return Encrypt(BigNum(static_cast<uint64_t>(m)), rng);
  }
  const BigNum mag(static_cast<uint64_t>(-(m + 1)) + 1);  // |m| without UB at INT64_MIN
  return Encrypt(BigNum::Sub(public_key_.n, mag), rng);
}

BigNum Paillier::Add(const BigNum& c1, const BigNum& c2) const {
  return BigNum::ModMul(c1, c2, public_key_.n_squared);
}

BigNum Paillier::Decrypt(const BigNum& c) const {
  const BigNum& n = public_key_.n;
  const BigNum& n2 = public_key_.n_squared;
  const BigNum u = BigNum::ModExp(c, private_key_.lambda, n2);
  // L(u) = (u - 1) / n.
  BigNum l;
  BigNum::DivMod(BigNum::Sub(u, BigNum(1)), n, &l, nullptr);
  return BigNum::ModMul(l, private_key_.mu, n);
}

std::vector<BigNum> Paillier::MakeRandomnessPool(Rng& rng, size_t size) const {
  const BigNum& n = public_key_.n;
  const BigNum& n2 = public_key_.n_squared;
  std::vector<BigNum> pool;
  pool.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    BigNum r;
    do {
      r = BigNum::RandomBelow(rng, n);
    } while (r.IsZero() || !BigNum::Gcd(r, n).IsOne());
    pool.push_back(BigNum::ModExp(r, n, n2));
  }
  return pool;
}

BigNum Paillier::EncryptSignedPooled(int64_t m, const BigNum& pool_entry) const {
  const BigNum& n = public_key_.n;
  const BigNum& n2 = public_key_.n_squared;
  BigNum m_mod;
  if (m >= 0) {
    m_mod = BigNum(static_cast<uint64_t>(m));
  } else {
    const BigNum mag(static_cast<uint64_t>(-(m + 1)) + 1);
    m_mod = BigNum::Sub(n, mag);
  }
  const BigNum gm = BigNum::Mod(BigNum::Add(BigNum(1), BigNum::Mul(m_mod, n)), n2);
  return BigNum::ModMul(gm, pool_entry, n2);
}

int64_t Paillier::DecryptSigned(const BigNum& c) const {
  const BigNum& n = public_key_.n;
  const BigNum residue = Decrypt(c);
  const BigNum half = BigNum::ShiftRight(n, 1);
  if (residue > half) {
    const BigNum mag = BigNum::Sub(n, residue);
    return -static_cast<int64_t>(mag.Low64());
  }
  return static_cast<int64_t>(residue.Low64());
}

}  // namespace seabed
