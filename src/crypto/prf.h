// The AES-based pseudo-random function used by ASHE.
//
// ASHE (Section 3.1) needs F_k : I -> Z_n. We fix n = 2^64 so the group
// operation is native wrap-around arithmetic on uint64_t, and instantiate F_k
// with AES-128 in counter mode. Section 4.3's batching optimization is
// implemented here: one AES call on block (i >> 1) yields two 64-bit
// pseudo-random words, covering identifiers 2j and 2j+1. Sequential row IDs
// therefore cost ~0.5 AES invocations per encryption, and a tiny one-entry
// cache makes Delta(i) = F(i) - F(i-1) of consecutive IDs nearly free.
#ifndef SEABED_SRC_CRYPTO_PRF_H_
#define SEABED_SRC_CRYPTO_PRF_H_

#include <cstdint>

#include "src/crypto/aes128.h"

namespace seabed {

class Prf {
 public:
  explicit Prf(const AesKey& key) : aes_(key) {}

  // F_k(id): 64-bit pseudo-random word for `id`.
  uint64_t Eval(uint64_t id) const;

  // F_k(id) - F_k(id - 1), the per-row pad used by ASHE. id >= 1.
  uint64_t Delta(uint64_t id) const;

  // Sum over id in [lo, hi] of Delta(id) = F_k(hi) - F_k(lo - 1).
  // This is the telescoping trick that lets a contiguous range decrypt with
  // two PRF calls regardless of length. lo >= 1, lo <= hi.
  uint64_t RangeDelta(uint64_t lo, uint64_t hi) const;

  bool using_hardware() const { return aes_.using_hardware(); }

 private:
  Aes128 aes_;
  // One-block cache: both words of the most recently evaluated AES block.
  mutable uint64_t cached_block_ = ~uint64_t{0};
  mutable uint64_t cached_words_[2] = {0, 0};
};

}  // namespace seabed

#endif  // SEABED_SRC_CRYPTO_PRF_H_
