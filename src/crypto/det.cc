#include "src/crypto/det.h"

#include <cstring>

namespace seabed {

uint32_t DetInt::RoundF(uint32_t half, uint32_t round) const {
  uint8_t block[16] = {};
  std::memcpy(block, &half, 4);
  std::memcpy(block + 4, &round, 4);
  block[8] = 0xf5;  // domain separation from the PRF / token uses
  uint8_t out[16];
  aes_.EncryptBlock(block, out);
  uint32_t result = 0;
  std::memcpy(&result, out, 4);
  return result;
}

uint64_t DetInt::Encrypt(uint64_t plaintext) const {
  uint32_t left = static_cast<uint32_t>(plaintext >> 32);
  uint32_t right = static_cast<uint32_t>(plaintext);
  for (uint32_t round = 0; round < 4; ++round) {
    const uint32_t next_left = right;
    right = left ^ RoundF(right, round);
    left = next_left;
  }
  return (static_cast<uint64_t>(left) << 32) | right;
}

uint64_t DetInt::Decrypt(uint64_t ciphertext) const {
  uint32_t left = static_cast<uint32_t>(ciphertext >> 32);
  uint32_t right = static_cast<uint32_t>(ciphertext);
  for (uint32_t round = 4; round-- > 0;) {
    const uint32_t prev_right = left;
    left = right ^ RoundF(left, round);
    right = prev_right;
  }
  return (static_cast<uint64_t>(left) << 32) | right;
}

uint64_t DetToken::Tag(const std::string& text) const {
  // CBC-MAC over zero-padded 16-byte blocks with a length block appended.
  // Fine as a PRF for our fixed-key, trusted-encryptor setting.
  uint8_t state[16] = {};
  const size_t len = text.size();
  for (size_t off = 0; off < len; off += 16) {
    uint8_t block[16] = {};
    const size_t chunk = std::min<size_t>(16, len - off);
    std::memcpy(block, text.data() + off, chunk);
    for (int i = 0; i < 16; ++i) {
      state[i] ^= block[i];
    }
    aes_.EncryptBlock(state, state);
  }
  uint8_t length_block[16] = {};
  const uint64_t len64 = len;
  std::memcpy(length_block, &len64, 8);
  length_block[15] = 0xa7;  // domain separation
  for (int i = 0; i < 16; ++i) {
    state[i] ^= length_block[i];
  }
  aes_.EncryptBlock(state, state);
  uint64_t tag = 0;
  std::memcpy(&tag, state, 8);
  return tag;
}

}  // namespace seabed
