// The identifier multiset attached to an ASHE aggregate ciphertext.
//
// ASHE's homomorphic addition is (c1, S1) ⊕ (c2, S2) = (c1 + c2, S1 ∪ S2)
// where S is a *multiset* of row identifiers (Section 3.1). Because Seabed
// assigns consecutive row IDs at upload time (Section 4.2), S is almost always
// a union of long contiguous runs, so the in-memory representation is a sorted
// vector of {lo, hi, count} runs. A run with count > 1 records an identifier
// that was added more than once (legal under multiset semantics and needed
// when a ciphertext participates in several additions).
//
// Decryption sums count * (F_k(hi) - F_k(lo-1)) per run — two PRF calls per
// run regardless of run length (the telescoping optimization of Section 3.2).
#ifndef SEABED_SRC_CRYPTO_ID_SET_H_
#define SEABED_SRC_CRYPTO_ID_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seabed {

class IdSet {
 public:
  struct Run {
    uint64_t lo = 0;
    uint64_t hi = 0;       // inclusive
    uint64_t count = 1;    // multiplicity of every id in [lo, hi]

    bool operator==(const Run&) const = default;
  };

  IdSet() = default;

  // Singleton {id}.
  static IdSet Single(uint64_t id);

  // Contiguous range [lo, hi] with multiplicity 1.
  static IdSet FromRange(uint64_t lo, uint64_t hi);

  // Appends `id` with multiplicity 1. Amortized O(1) when ids arrive in
  // non-decreasing order (the server's aggregation loop); falls back to a
  // general merge otherwise.
  void Add(uint64_t id);

  // Appends the contiguous range [lo, hi] (multiplicity 1).
  void AddRange(uint64_t lo, uint64_t hi);

  // Multiset union: *this = *this ∪ other. This is the S1 ∪ S2 of ⊕.
  void UnionWith(const IdSet& other);

  // Multiset union of many sets with a single normalization pass. Much
  // faster than repeated UnionWith when the inputs interleave (e.g. merging
  // the per-suffix ID lists of an inflated group — Section 4.5).
  static IdSet MergeAll(const std::vector<IdSet>& parts);

  // Number of identifiers counting multiplicity.
  uint64_t TotalCount() const;

  // Number of distinct runs (the quantity that drives list size / PRF work).
  size_t NumRuns() const { return runs_.size(); }

  bool Empty() const { return runs_.empty(); }

  const std::vector<Run>& runs() const { return runs_; }

  // True when every run has multiplicity 1 and runs are disjoint & sorted —
  // i.e. the set case. (Always true for sums over distinct rows.)
  bool IsPlainSet() const;

  bool operator==(const IdSet&) const = default;

 private:
  // Invariant: runs sorted by lo, non-overlapping, adjacent runs with equal
  // count are coalesced.
  std::vector<Run> runs_;
  bool needs_normalize_ = false;

  void Normalize();
  friend class IdSetTestPeer;
};

}  // namespace seabed

#endif  // SEABED_SRC_CRYPTO_ID_SET_H_
