#include "src/crypto/ashe.h"

namespace seabed {

AsheCiphertext Ashe::Encrypt(uint64_t m, uint64_t id) const {
  AsheCiphertext ct;
  ct.value = EncryptCell(m, id);
  ct.ids = IdSet::Single(id);
  return ct;
}

uint64_t Ashe::Decrypt(const AsheCiphertext& ct) const {
  uint64_t pad = 0;
  for (const IdSet::Run& run : ct.ids.runs()) {
    pad += run.count * prf_.RangeDelta(run.lo, run.hi);
  }
  return ct.value + pad;
}

}  // namespace seabed
