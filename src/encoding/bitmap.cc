#include "src/encoding/bitmap.h"

#include "src/common/check.h"
#include "src/encoding/varint.h"

namespace seabed {

Bytes BitmapEncode(const IdSet& ids) {
  SEABED_CHECK_MSG(ids.IsPlainSet(), "bitmap codec requires multiplicity-1 sets");
  Bytes out;
  if (ids.Empty()) {
    PutVarint(out, 0);  // width 0 encodes the empty set
    return out;
  }
  const uint64_t base = ids.runs().front().lo;
  const uint64_t top = ids.runs().back().hi;
  const uint64_t width = top - base + 1;
  PutVarint(out, width);
  PutVarint(out, base);
  const size_t bitmap_offset = out.size();
  out.resize(bitmap_offset + (width + 7) / 8, 0);
  for (const IdSet::Run& run : ids.runs()) {
    for (uint64_t id = run.lo; id <= run.hi; ++id) {
      const uint64_t bit = id - base;
      out[bitmap_offset + bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  return out;
}

IdSet BitmapDecode(const Bytes& bytes) {
  size_t cursor = 0;
  const uint64_t width = GetVarint(bytes, &cursor);
  IdSet ids;
  if (width == 0) {
    return ids;
  }
  const uint64_t base = GetVarint(bytes, &cursor);
  SEABED_CHECK(cursor + (width + 7) / 8 <= bytes.size());
  for (uint64_t bit = 0; bit < width; ++bit) {
    if (bytes[cursor + bit / 8] & (1u << (bit % 8))) {
      ids.Add(base + bit);
    }
  }
  return ids;
}

}  // namespace seabed
