#include "src/encoding/lz.h"

#include <cstring>

#include "src/common/check.h"
#include "src/encoding/varint.h"

namespace seabed {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 16;
constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = 1 << kHashBits;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

size_t MatchLength(const uint8_t* a, const uint8_t* b, size_t max_len) {
  size_t len = 0;
  while (len < max_len && a[len] == b[len]) {
    ++len;
  }
  return len;
}

void FlushLiterals(Bytes& out, const Bytes& input, size_t start, size_t end) {
  while (start < end) {
    const size_t chunk = end - start;
    PutVarint(out, static_cast<uint64_t>(chunk) << 1);
    out.insert(out.end(), input.begin() + start, input.begin() + start + chunk);
    start += chunk;
  }
}

struct Match {
  size_t length = 0;
  size_t distance = 0;
};

Match FindMatch(const Bytes& input, size_t pos, const std::vector<uint32_t>& head,
                size_t window) {
  Match best;
  if (pos + kMinMatch > input.size()) {
    return best;
  }
  const uint32_t candidate = head[Hash4(input.data() + pos)];
  if (candidate == UINT32_MAX) {
    return best;
  }
  const size_t cand_pos = candidate;
  if (cand_pos >= pos || pos - cand_pos > window) {
    return best;
  }
  const size_t max_len = std::min(input.size() - pos, kMaxMatch);
  const size_t len = MatchLength(input.data() + cand_pos, input.data() + pos, max_len);
  if (len >= kMinMatch) {
    best.length = len;
    best.distance = pos - cand_pos;
  }
  return best;
}

}  // namespace

Bytes LzCompress(const Bytes& input, LzLevel level) {
  Bytes out;
  PutVarint(out, input.size());
  if (input.empty()) {
    return out;
  }
  const size_t window = level == LzLevel::kFast ? (1u << 16) : (1u << 20);
  const bool lazy = level == LzLevel::kCompact;

  std::vector<uint32_t> head(kHashSize, UINT32_MAX);
  size_t literal_start = 0;
  size_t pos = 0;
  while (pos < input.size()) {
    Match m = FindMatch(input, pos, head, window);
    if (m.length >= kMinMatch && lazy && pos + 1 + kMinMatch <= input.size()) {
      // Lazy matching: if the next position has a strictly longer match, emit
      // this byte as a literal instead.
      if (pos + 4 <= input.size()) {
        head[Hash4(input.data() + pos)] = static_cast<uint32_t>(pos);
      }
      const Match next = FindMatch(input, pos + 1, head, window);
      if (next.length > m.length) {
        ++pos;
        continue;
      }
    }
    if (m.length >= kMinMatch) {
      FlushLiterals(out, input, literal_start, pos);
      PutVarint(out, (static_cast<uint64_t>(m.length) << 1) | 1);
      PutVarint(out, m.distance);
      // Insert hash entries across the match (sparsely for speed).
      const size_t step = level == LzLevel::kFast ? 4 : 1;
      const size_t match_end = pos + m.length;
      for (size_t i = pos; i + 4 <= input.size() && i < match_end; i += step) {
        head[Hash4(input.data() + i)] = static_cast<uint32_t>(i);
      }
      pos = match_end;
      literal_start = pos;
    } else {
      if (pos + 4 <= input.size()) {
        head[Hash4(input.data() + pos)] = static_cast<uint32_t>(pos);
      }
      ++pos;
    }
  }
  FlushLiterals(out, input, literal_start, input.size());
  return out;
}

Bytes LzDecompress(const Bytes& input) {
  size_t cursor = 0;
  const uint64_t total = GetVarint(input, &cursor);
  Bytes out;
  out.reserve(total);
  while (out.size() < total) {
    const uint64_t token = GetVarint(input, &cursor);
    const uint64_t len = token >> 1;
    if (token & 1) {
      const uint64_t distance = GetVarint(input, &cursor);
      SEABED_CHECK_MSG(distance >= 1 && distance <= out.size(), "corrupt LZ match");
      size_t src = out.size() - distance;
      for (uint64_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);  // byte-wise: overlapping matches are legal
      }
    } else {
      SEABED_CHECK_MSG(cursor + len <= input.size(), "corrupt LZ literal run");
      out.insert(out.end(), input.begin() + cursor, input.begin() + cursor + len);
      cursor += len;
    }
  }
  SEABED_CHECK(out.size() == total);
  return out;
}

}  // namespace seabed
