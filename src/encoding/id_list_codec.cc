#include "src/encoding/id_list_codec.h"

#include "src/common/check.h"
#include "src/encoding/varint.h"

namespace seabed {
namespace {

constexpr uint8_t kFlagRange = 1 << 0;
constexpr uint8_t kFlagDiff = 1 << 1;
constexpr uint8_t kFlagVb = 1 << 2;
constexpr uint8_t kCompressionShift = 3;  // 2 bits
constexpr uint8_t kFlagCounts = 1 << 5;

void PutInt(Bytes& out, uint64_t v, bool vb) {
  if (vb) {
    PutVarint(out, v);
  } else {
    PutU64(out, v);
  }
}

uint64_t GetInt(const Bytes& in, size_t* cursor, bool vb) {
  if (vb) {
    return GetVarint(in, cursor);
  }
  SEABED_CHECK(*cursor + 8 <= in.size());
  const uint64_t v = GetU64(in.data() + *cursor);
  *cursor += 8;
  return v;
}

}  // namespace

const char* IdListOptions::Label() const {
  if (!use_range && use_diff && use_vb) {
    return "Diff&VB (group-by)";
  }
  if (use_range && !use_diff) {
    return compression == IdListCompression::kNone ? "Ranges & VB" : "Ranges & VB + Lz";
  }
  switch (compression) {
    case IdListCompression::kNone:
      return "Ranges & VB + Diff";
    case IdListCompression::kFast:
      return "Ranges & VB + Diff + Lz(fast)";
    case IdListCompression::kCompact:
      return "Ranges & VB + Diff + Lz(compact)";
  }
  return "?";
}

Bytes IdListEncode(const IdSet& ids, const IdListOptions& options) {
  const bool has_counts = options.use_range && !ids.IsPlainSet();
  uint8_t header = 0;
  if (options.use_range) {
    header |= kFlagRange;
  }
  if (options.use_diff) {
    header |= kFlagDiff;
  }
  if (options.use_vb) {
    header |= kFlagVb;
  }
  header |= static_cast<uint8_t>(static_cast<uint8_t>(options.compression) << kCompressionShift);
  if (has_counts) {
    header |= kFlagCounts;
  }

  Bytes payload;
  const bool vb = options.use_vb;
  if (options.use_range) {
    PutInt(payload, ids.NumRuns(), vb);
    uint64_t prev = 0;  // previous run's hi + 1 when diff-coding
    for (const IdSet::Run& run : ids.runs()) {
      const uint64_t lo_field = options.use_diff ? run.lo - prev : run.lo;
      PutInt(payload, lo_field, vb);
      PutInt(payload, run.hi - run.lo, vb);
      if (has_counts) {
        PutInt(payload, run.count - 1, vb);
      }
      prev = run.hi + 1;
    }
  } else {
    // Id-at-a-time encoding (multiplicity realized by repetition).
    PutInt(payload, ids.TotalCount(), vb);
    uint64_t prev = 0;
    for (const IdSet::Run& run : ids.runs()) {
      for (uint64_t id = run.lo; id <= run.hi; ++id) {
        for (uint64_t c = 0; c < run.count; ++c) {
          PutInt(payload, options.use_diff ? id - prev : id, vb);
          prev = id;
        }
      }
    }
  }

  Bytes out;
  out.push_back(header);
  switch (options.compression) {
    case IdListCompression::kNone:
      out.insert(out.end(), payload.begin(), payload.end());
      break;
    case IdListCompression::kFast: {
      const Bytes packed = LzCompress(payload, LzLevel::kFast);
      out.insert(out.end(), packed.begin(), packed.end());
      break;
    }
    case IdListCompression::kCompact: {
      const Bytes packed = LzCompress(payload, LzLevel::kCompact);
      out.insert(out.end(), packed.begin(), packed.end());
      break;
    }
  }
  return out;
}

IdSet IdListDecode(const Bytes& bytes) {
  SEABED_CHECK(!bytes.empty());
  const uint8_t header = bytes[0];
  const bool use_range = header & kFlagRange;
  const bool use_diff = header & kFlagDiff;
  const bool vb = header & kFlagVb;
  const bool has_counts = header & kFlagCounts;
  const auto compression =
      static_cast<IdListCompression>((header >> kCompressionShift) & 3);

  Bytes payload;
  if (compression == IdListCompression::kNone) {
    payload.assign(bytes.begin() + 1, bytes.end());
  } else {
    Bytes packed(bytes.begin() + 1, bytes.end());
    payload = LzDecompress(packed);
  }

  IdSet ids;
  size_t cursor = 0;
  if (use_range) {
    const uint64_t num_runs = GetInt(payload, &cursor, vb);
    uint64_t prev = 0;
    for (uint64_t r = 0; r < num_runs; ++r) {
      const uint64_t lo_field = GetInt(payload, &cursor, vb);
      const uint64_t lo = use_diff ? prev + lo_field : lo_field;
      const uint64_t span = GetInt(payload, &cursor, vb);
      const uint64_t hi = lo + span;
      uint64_t count = 1;
      if (has_counts) {
        count = GetInt(payload, &cursor, vb) + 1;
      }
      for (uint64_t c = 0; c < count; ++c) {
        ids.AddRange(lo, hi);
      }
      prev = hi + 1;
    }
  } else {
    const uint64_t total = GetInt(payload, &cursor, vb);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < total; ++i) {
      const uint64_t field = GetInt(payload, &cursor, vb);
      const uint64_t id = use_diff ? prev + field : field;
      ids.Add(id);
      prev = id;
    }
  }
  return ids;
}

}  // namespace seabed
