// Variable-byte (VB) integer encoding — one of the three ID-list encodings
// Seabed combines (paper Table 3): smaller numbers use fewer bytes.
// LEB128 format: 7 payload bits per byte, high bit = continuation.
#ifndef SEABED_SRC_ENCODING_VARINT_H_
#define SEABED_SRC_ENCODING_VARINT_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"

namespace seabed {

// Appends the VB encoding of `value` to `out`.
void PutVarint(Bytes& out, uint64_t value);

// Decodes a VB integer at *cursor, advancing it. Aborts on truncated input.
uint64_t GetVarint(const Bytes& in, size_t* cursor);

// Number of bytes PutVarint would append.
size_t VarintSize(uint64_t value);

}  // namespace seabed

#endif  // SEABED_SRC_ENCODING_VARINT_H_
