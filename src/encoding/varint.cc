#include "src/encoding/varint.h"

#include "src/common/check.h"

namespace seabed {

void PutVarint(Bytes& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

uint64_t GetVarint(const Bytes& in, size_t* cursor) {
  uint64_t value = 0;
  int shift = 0;
  for (;;) {
    SEABED_CHECK_MSG(*cursor < in.size(), "truncated varint");
    const uint8_t byte = in[(*cursor)++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
    SEABED_CHECK_MSG(shift < 64, "varint overflow");
  }
}

size_t VarintSize(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace seabed
