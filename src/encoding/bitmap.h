// Bitmap encoding of ID sets — evaluated and rejected by the paper.
//
// Section 6.4: "The bitmap algorithms performed poorly, so we omit them here
// for brevity." We keep the codec so the Figure 8 ablation can show *why*
// (bitmaps pay for the full id universe between min and max, which is exactly
// wrong for sparse selections). Only plain sets (multiplicity 1) are
// representable; callers fall back to the run codec otherwise.
#ifndef SEABED_SRC_ENCODING_BITMAP_H_
#define SEABED_SRC_ENCODING_BITMAP_H_

#include "src/common/bytes.h"
#include "src/crypto/id_set.h"

namespace seabed {

// Encodes `ids` (must satisfy IsPlainSet()) as base + bit array.
Bytes BitmapEncode(const IdSet& ids);

// Inverse of BitmapEncode.
IdSet BitmapDecode(const Bytes& bytes);

}  // namespace seabed

#endif  // SEABED_SRC_ENCODING_BITMAP_H_
