// Bitmap encoding of ID sets — evaluated and rejected by the paper — plus
// the in-memory selection bitmaps the vectorized scan kernels fill.
//
// Section 6.4: "The bitmap algorithms performed poorly, so we omit them here
// for brevity." We keep the codec so the Figure 8 ablation can show *why*
// (bitmaps pay for the full id universe between min and max, which is exactly
// wrong for sparse selections). Only plain sets (multiplicity 1) are
// representable; callers fall back to the run codec otherwise.
//
// SelectionBitmap is different machinery with the same substrate: one bit per
// row of a scan row group, filled by the predicate kernels
// (src/seabed/scan_kernels.h) and consumed word-at-a-time by the aggregation
// loop. Invariant: bits at positions >= size() are always zero (Reset masks
// the tail word), so kernels may AND whole words — including a garbage tail —
// without ever resurrecting an out-of-range row.
#ifndef SEABED_SRC_ENCODING_BITMAP_H_
#define SEABED_SRC_ENCODING_BITMAP_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/check.h"
#include "src/crypto/id_set.h"

namespace seabed {

// Encodes `ids` (must satisfy IsPlainSet()) as base + bit array.
Bytes BitmapEncode(const IdSet& ids);

// Inverse of BitmapEncode.
IdSet BitmapDecode(const Bytes& bytes);

// One bit per row of a row group, stored in 64-bit words. Predicates AND
// into it (a kernel can only clear bits), aggregation iterates the set bits.
class SelectionBitmap {
 public:
  SelectionBitmap() = default;
  explicit SelectionBitmap(size_t bits, bool all_set = false) { Reset(bits, all_set); }

  // Mask selecting the valid bits of the last word of a `bits`-bit bitmap.
  static constexpr uint64_t TailMask(size_t bits) {
    const size_t rem = bits % 64;
    return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
  }

  // Re-dimensions to `bits` and sets every valid bit (or none). Reuses the
  // word storage, so one bitmap serves every chunk of a scan task.
  void Reset(size_t bits, bool all_set) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, all_set ? ~uint64_t{0} : 0);
    if (all_set && !words_.empty()) {
      words_.back() &= TailMask(bits);
    }
  }

  size_t size() const { return bits_; }
  size_t num_words() const { return words_.size(); }
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(size_t i) const { return (words_[i / 64] >> (i % 64)) & 1; }
  void Set(size_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }
  void Clear(size_t i) { words_[i / 64] &= ~(uint64_t{1} << (i % 64)); }

  // Intersects with `other` (same length required): predicates combine by
  // AND instead of short-circuiting row-at-a-time.
  void And(const SelectionBitmap& other) {
    SEABED_CHECK_MSG(other.bits_ == bits_, "AND of selection bitmaps of unequal length");
    for (size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= other.words_[w];
    }
  }

  bool Any() const {
    for (const uint64_t w : words_) {
      if (w != 0) {
        return true;
      }
    }
    return false;
  }

  size_t Count() const {
    size_t n = 0;
    for (const uint64_t w : words_) {
      n += static_cast<size_t>(std::popcount(w));
    }
    return n;
  }

  // Word-at-a-time set-bit iteration (ascending): `fn(bit_index)`.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        fn(w * 64 + static_cast<size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  // Scalar residual filter: clears every set bit whose row `keep` rejects.
  // Runs over surviving bits only — the cheap predicates already thinned the
  // bitmap, so expensive residuals (string compares) touch few rows.
  template <typename Fn>
  void Retain(Fn&& keep) {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const uint64_t lowest = word & (0 - word);
        if (!keep(w * 64 + static_cast<size_t>(std::countr_zero(word)))) {
          words_[w] &= ~lowest;
        }
        word &= word - 1;
      }
    }
  }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace seabed

#endif  // SEABED_SRC_ENCODING_BITMAP_H_
