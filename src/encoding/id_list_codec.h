// The composed ID-list codec: Range → Diff → VB → Lz (paper Table 3 and
// Section 4.5).
//
// Seabed ships results from workers to the driver (and driver to client) as
// compressed ID lists. The codec composes four independently-toggleable
// stages, which is exactly the ablation of Figure 8:
//
//   use_range — contiguous id runs become (gap, length) pairs. Great for
//               dense/sequential selections, wasteful for sparse ones, which
//               is why group-by paths turn it off (Section 4.5).
//   use_diff  — values are delta-coded against their predecessor.
//   use_vb    — integers are variable-byte coded (else fixed 8 bytes).
//   compression — none / Lz-fast / Lz-compact applied to the whole payload
//               ("Deflate optimized for speed / compactness" in the paper).
//
// Multiset runs (count > 1) are supported via a header flag; they occur only
// when an aggregate added some ciphertext twice, which the standard query
// paths never do.
#ifndef SEABED_SRC_ENCODING_ID_LIST_CODEC_H_
#define SEABED_SRC_ENCODING_ID_LIST_CODEC_H_

#include "src/common/bytes.h"
#include "src/crypto/id_set.h"
#include "src/encoding/lz.h"

namespace seabed {

enum class IdListCompression : uint8_t {
  kNone = 0,
  kFast = 1,     // Lz fast — Seabed's production default
  kCompact = 2,  // Lz compact — the "high compression ratio" variant
};

struct IdListOptions {
  bool use_range = true;
  bool use_diff = true;
  bool use_vb = true;
  IdListCompression compression = IdListCompression::kFast;

  // Seabed production default (Section 6.4): Range + VB + Diff + Deflate(fast).
  static IdListOptions Default() { return IdListOptions{}; }

  // Group-by default (Section 4.5): range encoding off.
  static IdListOptions GroupBy() {
    IdListOptions o;
    o.use_range = false;
    return o;
  }

  const char* Label() const;
};

// Serializes `ids` under `options`. The options are recorded in the header,
// so Decode needs no side information.
Bytes IdListEncode(const IdSet& ids, const IdListOptions& options);

// Inverse of IdListEncode.
IdSet IdListDecode(const Bytes& bytes);

}  // namespace seabed

#endif  // SEABED_SRC_ENCODING_ID_LIST_CODEC_H_
