// General-purpose LZ77 byte compressor.
//
// Seabed applies Deflate on top of the range/diff/VB encodings and found that
// "Deflate optimized for speed" wins end-to-end while "optimized for high
// compression ratio" costs more time than it saves (paper Section 6.4,
// Figure 8). We reproduce that knob with two parameterizations of one LZ77
// coder:
//
//   kFast    — 64 KiB window, greedy matching (speed-oriented)
//   kCompact — 1 MiB window, lazy matching (ratio-oriented)
//
// Output format (self-delimiting, little-endian varints):
//   token := literal-run | match
//   literal-run := varint(len << 1)        followed by `len` raw bytes
//   match       := varint(len << 1 | 1)    varint(distance); len >= kMinMatch
#ifndef SEABED_SRC_ENCODING_LZ_H_
#define SEABED_SRC_ENCODING_LZ_H_

#include "src/common/bytes.h"

namespace seabed {

enum class LzLevel {
  kFast,
  kCompact,
};

// Compresses `input`; output always round-trips through LzDecompress.
Bytes LzCompress(const Bytes& input, LzLevel level);

// Inverse of LzCompress. Aborts on corrupt input.
Bytes LzDecompress(const Bytes& input);

}  // namespace seabed

#endif  // SEABED_SRC_ENCODING_LZ_H_
