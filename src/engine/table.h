// Tables: named typed columns with horizontal partitioning.
//
// Partitions are the unit of parallel work in the cluster model (one Spark
// task per partition). Encrypted and plaintext tables share this type; the
// distinction lives in the column types and the accompanying schema object.
#ifndef SEABED_SRC_ENGINE_TABLE_H_
#define SEABED_SRC_ENGINE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/column.h"

namespace seabed {

// Half-open row range [begin, end).
struct RowRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Adds a column. All columns must have equal row counts by query time.
  void AddColumn(const std::string& column_name, ColumnPtr column);

  bool HasColumn(const std::string& column_name) const;
  const ColumnPtr& GetColumn(const std::string& column_name) const;

  // Mutable access for appends (database insertions — paper Section 4.1).
  Column* GetMutableColumn(const std::string& column_name) {
    return const_cast<Column*>(GetColumn(column_name).get());
  }
  const std::vector<std::string>& column_names() const { return names_; }

  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const;

  // Total payload bytes across columns (Table 5 accounting).
  size_t ByteSize() const;

  // Splits rows into `n` near-equal partitions.
  std::vector<RowRange> Partitions(size_t n) const;

 private:
  std::string name_;
  std::vector<std::string> names_;
  std::vector<ColumnPtr> columns_;
};

// Value copy of a single column (any type, plaintext or encrypted).
ColumnPtr DeepCopyColumn(const Column& column);

// Fully independent copy of `src`: fresh column objects, same values. The
// snapshot machinery uses this to build a new table version off to the side
// while readers keep scanning the published one.
std::shared_ptr<Table> DeepCopyTable(const Table& src);

}  // namespace seabed

#endif  // SEABED_SRC_ENGINE_TABLE_H_
