// The cluster execution model — Seabed's stand-in for a Spark cluster.
//
// The paper runs on an Azure HDInsight cluster and sweeps the number of cores
// (Figure 7). This repo runs on one machine, so the cluster is modeled: a job
// is a set of per-partition tasks; every task's wall-clock compute time is
// measured for real on a host thread pool, tasks are assigned round-robin to
// `num_workers` logical workers, and the *simulated server latency* is
//
//     job_overhead + max over workers ( Σ assigned task times
//                                       + per-task scheduling overhead )
//
// This keeps core-count sweeps meaningful and monotone on any host: per-row
// crypto and ID-list costs are real measurements, only the parallel fabric is
// synthetic. Shuffle and client-transfer costs are added by the callers using
// NetworkModel (they know the bytes moved).
#ifndef SEABED_SRC_ENGINE_CLUSTER_H_
#define SEABED_SRC_ENGINE_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/engine/network_model.h"

namespace seabed {

struct ClusterConfig {
  // Logical workers ("cores" in the paper's Figure 7).
  size_t num_workers = 10;

  // Fixed per-job driver overhead (job setup, result collection). The paper's
  // NoEnc floor of ~0.6 s is dominated by this kind of cost.
  double job_overhead_seconds = 0.25;

  // Per-task scheduling overhead (Spark task creation).
  double task_overhead_seconds = 0.004;

  // Link between the driver and the (trusted) client proxy.
  NetworkModel client_link = NetworkModel::InCluster();

  // Aggregate bisection bandwidth available to the shuffle phase, per worker.
  double shuffle_bandwidth_bits_per_sec_per_worker = 1e9;
};

struct JobStats {
  // Simulated cluster latency for the job (the Figure 6/7 quantity).
  double server_seconds = 0;
  // Sum of real measured task compute time.
  double total_compute_seconds = 0;
  // Per logical worker busy time.
  std::vector<double> worker_seconds;
  size_t num_tasks = 0;
};

// Accounting for jobs that ran concurrently on independent clusters (one per
// shard in the scale-out backend): latency is the slowest job, compute and
// task counts add, and the per-worker busy times are concatenated in job
// order (shard 0's workers first).
JobStats MergeParallelJobs(const std::vector<JobStats>& jobs);

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  size_t num_workers() const { return config_.num_workers; }

  // Runs `num_tasks` closures; task i executes fn(i) on some host thread.
  // Tasks must be independent (no ordering guarantees). Returns simulated
  // latency statistics.
  JobStats RunJob(size_t num_tasks, const std::function<void(size_t)>& fn) const;

  // Simulated duration of a shuffle moving `total_bytes` across the cluster
  // into `num_reducers` reduce tasks. With fewer reducers than workers, only
  // `num_reducers` links drain the data — the bottleneck Section 4.5
  // describes and the group-inflation optimization removes.
  double ShuffleSeconds(size_t total_bytes, size_t num_reducers) const;

 private:
  ClusterConfig config_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace seabed

#endif  // SEABED_SRC_ENGINE_CLUSTER_H_
