#include "src/engine/network_model.h"

// Header-only today; this file anchors the library target.
