// Table serialization — the upload/storage format.
//
// The paper stores tables in HDFS using protobuf serialization (Section 6.1)
// and reports both disk and in-memory sizes (Table 5). This module provides
// the equivalent: a compact self-describing binary encoding of any Table
// (plaintext or encrypted), used by the storage benchmarks for "disk size"
// and usable to persist/upload encrypted databases.
//
// Format (little-endian, varint-framed):
//   magic "SBED" u32 | version u8 | name | column count
//   per column: name | type tag u8 | row count | payload
// Int64 payloads are zigzag-delta-varint coded; dictionary strings are
// length-prefixed; ASHE/DET cells are raw 8-byte words; ORE cells 16 bytes;
// Paillier cells length-prefixed byte strings.
#ifndef SEABED_SRC_ENGINE_SERIALIZE_H_
#define SEABED_SRC_ENGINE_SERIALIZE_H_

#include <memory>

#include "src/common/bytes.h"
#include "src/engine/table.h"

namespace seabed {

// Serializes the table (all column types supported).
Bytes SerializeTable(const Table& table);

// Inverse of SerializeTable. Aborts on corrupt input (trusted storage).
std::shared_ptr<Table> DeserializeTable(const Bytes& bytes);

// Serialized ("disk") size without materializing the buffer.
size_t SerializedTableSize(const Table& table);

}  // namespace seabed

#endif  // SEABED_SRC_ENGINE_SERIALIZE_H_
