// Scalar values flowing through the query layers.
//
// Measures are 64-bit integers: Seabed's ASHE works over Z_{2^64}, so
// fractional measures (e.g. BDB's adRevenue) are stored in fixed point
// (scaled by 100) exactly as a production deployment would scale currency.
#ifndef SEABED_SRC_ENGINE_VALUE_H_
#define SEABED_SRC_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace seabed {

using Value = std::variant<int64_t, double, std::string>;

// Render a value for test assertions and example output.
inline std::string ValueToString(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    return std::to_string(*d);
  }
  return std::get<std::string>(v);
}

}  // namespace seabed

#endif  // SEABED_SRC_ENGINE_VALUE_H_
