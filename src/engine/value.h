// Scalar values flowing through the query layers.
//
// Measures are 64-bit integers: Seabed's ASHE works over Z_{2^64}, so
// fractional measures (e.g. BDB's adRevenue) are stored in fixed point
// (scaled by 100) exactly as a production deployment would scale currency.
#ifndef SEABED_SRC_ENGINE_VALUE_H_
#define SEABED_SRC_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace seabed {

using Value = std::variant<int64_t, double, std::string>;

// Appends one part of a serialized group key: varint length prefix, then the
// raw bytes. The prefix makes the concatenation a prefix code, so distinct
// part tuples can never serialize to the same key — raw '\x1f'-separated
// concatenation collided ("a\x1f", "b") with ("a", "\x1fb") and silently
// merged their aggregates. Every group-key builder (plain executor, Seabed
// server, Paillier baseline, client deflation) must share this one encoding:
// the client's deflation key must byte-match the server's key minus the
// inflation suffix, and the sharded coordinator merges groups by key bytes.
inline void AppendGroupKeyPart(std::string& key, std::string_view part) {
  uint64_t len = part.size();
  while (len >= 0x80) {
    key.push_back(static_cast<char>(len | 0x80));
    len >>= 7;
  }
  key.push_back(static_cast<char>(len));
  key.append(part);
}

// Fixed-width parts (DET tokens, plain int64s, inflation suffixes) use the
// same encoding as an 8-byte part, so mixed string/int key tuples stay
// unambiguous too.
inline void AppendGroupKeyPart(std::string& key, uint64_t part) {
  AppendGroupKeyPart(key, std::string_view(reinterpret_cast<const char*>(&part), 8));
}

// Render a value for test assertions and example output.
inline std::string ValueToString(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    return std::to_string(*d);
  }
  return std::get<std::string>(v);
}

}  // namespace seabed

#endif  // SEABED_SRC_ENGINE_VALUE_H_
