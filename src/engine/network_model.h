// Network cost model for the server ↔ client link.
//
// The paper's cluster places the client on a node with a 2 Gbps / sub-ms link
// and then re-runs experiments at 100 Mbps/10 ms and 10 Mbps/100 ms with `tc`
// (Section 6.6). We model transfers as latency + bytes/bandwidth, which is
// all those experiments exercise (ID lists are the payload).
#ifndef SEABED_SRC_ENGINE_NETWORK_MODEL_H_
#define SEABED_SRC_ENGINE_NETWORK_MODEL_H_

#include <cstddef>

namespace seabed {

struct NetworkModel {
  double bandwidth_bits_per_sec = 2e9;  // default: in-cluster 2 Gbps TCP
  double latency_seconds = 0.0005;

  double TransferSeconds(size_t bytes) const {
    return latency_seconds + static_cast<double>(bytes) * 8.0 / bandwidth_bits_per_sec;
  }

  static NetworkModel InCluster() { return NetworkModel{2e9, 0.0005}; }
  static NetworkModel Wan100Mbps() { return NetworkModel{100e6, 0.010}; }
  static NetworkModel Wan10Mbps() { return NetworkModel{10e6, 0.100}; }
};

}  // namespace seabed

#endif  // SEABED_SRC_ENGINE_NETWORK_MODEL_H_
