#include "src/engine/cluster.h"

#include <algorithm>
#include <thread>

#include "src/common/check.h"
#include "src/common/stopwatch.h"

namespace seabed {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  SEABED_CHECK(config_.num_workers >= 1);
  const size_t host_threads =
      std::min<size_t>(config_.num_workers,
                       std::max<unsigned>(1, std::thread::hardware_concurrency()));
  pool_ = std::make_unique<ThreadPool>(host_threads);
}

Cluster::~Cluster() = default;

JobStats Cluster::RunJob(size_t num_tasks, const std::function<void(size_t)>& fn) const {
  JobStats stats;
  stats.num_tasks = num_tasks;
  stats.worker_seconds.assign(config_.num_workers, 0.0);
  if (num_tasks == 0) {
    stats.server_seconds = config_.job_overhead_seconds;
    return stats;
  }

  std::vector<double> task_seconds(num_tasks, 0.0);
  pool_->ParallelFor(num_tasks, [&](size_t i) {
    Stopwatch sw;
    fn(i);
    task_seconds[i] = sw.ElapsedSeconds();
  });

  // Round-robin assignment of tasks to logical workers.
  for (size_t i = 0; i < num_tasks; ++i) {
    const size_t worker = i % config_.num_workers;
    stats.worker_seconds[worker] += task_seconds[i] + config_.task_overhead_seconds;
    stats.total_compute_seconds += task_seconds[i];
  }
  stats.server_seconds =
      config_.job_overhead_seconds +
      *std::max_element(stats.worker_seconds.begin(), stats.worker_seconds.end());
  return stats;
}

JobStats MergeParallelJobs(const std::vector<JobStats>& jobs) {
  JobStats merged;
  for (const JobStats& job : jobs) {
    merged.server_seconds = std::max(merged.server_seconds, job.server_seconds);
    merged.total_compute_seconds += job.total_compute_seconds;
    merged.num_tasks += job.num_tasks;
    merged.worker_seconds.insert(merged.worker_seconds.end(), job.worker_seconds.begin(),
                                 job.worker_seconds.end());
  }
  return merged;
}

double Cluster::ShuffleSeconds(size_t total_bytes, size_t num_reducers) const {
  if (total_bytes == 0) {
    return 0;
  }
  const size_t active = std::max<size_t>(1, std::min(num_reducers, config_.num_workers));
  const double aggregate_bw =
      config_.shuffle_bandwidth_bits_per_sec_per_worker * static_cast<double>(active);
  return static_cast<double>(total_bytes) * 8.0 / aggregate_bw;
}

}  // namespace seabed
