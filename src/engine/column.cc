#include "src/engine/column.h"

namespace seabed {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kString:
      return "string";
    case ColumnType::kAshe:
      return "ashe";
    case ColumnType::kDet:
      return "det";
    case ColumnType::kOre:
      return "ore";
    case ColumnType::kPaillier:
      return "paillier";
  }
  return "?";
}

size_t StringColumn::ByteSize() const {
  size_t total = codes_.size() * sizeof(uint32_t);
  for (const auto& s : dictionary_) {
    total += s.size() + sizeof(uint32_t);
  }
  return total;
}

void StringColumn::Append(const std::string& v) {
  auto it = index_.find(v);
  if (it == index_.end()) {
    const uint32_t code = static_cast<uint32_t>(dictionary_.size());
    dictionary_.push_back(v);
    it = index_.emplace(v, code).first;
  }
  codes_.push_back(it->second);
}

uint32_t StringColumn::Lookup(const std::string& v) const {
  const auto it = index_.find(v);
  return it == index_.end() ? UINT32_MAX : it->second;
}

size_t PaillierColumn::ByteSize() const {
  size_t total = 0;
  for (const auto& c : cells_) {
    total += c.ByteSize();
  }
  return total;
}

}  // namespace seabed
