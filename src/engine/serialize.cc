#include "src/engine/serialize.h"

#include "src/common/check.h"
#include "src/encoding/varint.h"

namespace seabed {
namespace {

constexpr uint32_t kMagic = 0x44454253;  // "SBED"
constexpr uint8_t kVersion = 1;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutString(Bytes& out, const std::string& s) {
  PutVarint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string GetString(const Bytes& in, size_t* cursor) {
  const uint64_t len = GetVarint(in, cursor);
  SEABED_CHECK(*cursor + len <= in.size());
  std::string s(in.begin() + *cursor, in.begin() + *cursor + len);
  *cursor += len;
  return s;
}

void SerializeColumn(Bytes& out, const std::string& name, const Column& col) {
  PutString(out, name);
  out.push_back(static_cast<uint8_t>(col.type()));
  PutVarint(out, col.RowCount());
  switch (col.type()) {
    case ColumnType::kInt64: {
      const auto& c = static_cast<const Int64Column&>(col);
      int64_t prev = 0;
      for (size_t row = 0; row < c.RowCount(); ++row) {
        PutVarint(out, ZigZag(c.Get(row) - prev));
        prev = c.Get(row);
      }
      break;
    }
    case ColumnType::kString: {
      const auto& c = static_cast<const StringColumn&>(col);
      PutVarint(out, c.DictionarySize());
      // Dictionary entries appear in code order; emitting the first
      // occurrence of each code preserves that order on reload.
      std::vector<bool> emitted(c.DictionarySize(), false);
      std::vector<std::string> dict(c.DictionarySize());
      for (size_t row = 0; row < c.RowCount(); ++row) {
        const uint32_t code = c.GetCode(row);
        if (!emitted[code]) {
          emitted[code] = true;
          dict[code] = c.Get(row);
        }
      }
      for (const auto& entry : dict) {
        PutString(out, entry);
      }
      for (size_t row = 0; row < c.RowCount(); ++row) {
        PutVarint(out, c.GetCode(row));
      }
      break;
    }
    case ColumnType::kAshe: {
      const auto& c = static_cast<const AsheColumn&>(col);
      PutVarint(out, c.base_id());
      for (size_t row = 0; row < c.RowCount(); ++row) {
        PutU64(out, c.Get(row));  // ciphertexts are incompressible
      }
      break;
    }
    case ColumnType::kDet: {
      const auto& c = static_cast<const DetColumn&>(col);
      for (size_t row = 0; row < c.RowCount(); ++row) {
        PutU64(out, c.Get(row));
      }
      break;
    }
    case ColumnType::kOre: {
      const auto& c = static_cast<const OreColumn&>(col);
      for (size_t row = 0; row < c.RowCount(); ++row) {
        const auto& ct = c.Get(row);
        out.insert(out.end(), ct.packed.begin(), ct.packed.end());
      }
      break;
    }
    case ColumnType::kPaillier: {
      const auto& c = static_cast<const PaillierColumn&>(col);
      for (size_t row = 0; row < c.RowCount(); ++row) {
        const auto bytes = c.Get(row).ToBytes();
        PutVarint(out, bytes.size());
        out.insert(out.end(), bytes.begin(), bytes.end());
      }
      break;
    }
  }
}

ColumnPtr DeserializeColumn(const Bytes& in, size_t* cursor, ColumnType type, uint64_t rows) {
  switch (type) {
    case ColumnType::kInt64: {
      auto col = std::make_shared<Int64Column>();
      int64_t prev = 0;
      for (uint64_t row = 0; row < rows; ++row) {
        prev += UnZigZag(GetVarint(in, cursor));
        col->Append(prev);
      }
      return col;
    }
    case ColumnType::kString: {
      auto col = std::make_shared<StringColumn>();
      const uint64_t dict_size = GetVarint(in, cursor);
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (uint64_t i = 0; i < dict_size; ++i) {
        dict.push_back(GetString(in, cursor));
      }
      for (uint64_t row = 0; row < rows; ++row) {
        const uint64_t code = GetVarint(in, cursor);
        SEABED_CHECK(code < dict.size());
        col->Append(dict[code]);
      }
      return col;
    }
    case ColumnType::kAshe: {
      const uint64_t base_id = GetVarint(in, cursor);
      auto col = std::make_shared<AsheColumn>(base_id);
      for (uint64_t row = 0; row < rows; ++row) {
        SEABED_CHECK(*cursor + 8 <= in.size());
        col->Append(GetU64(in.data() + *cursor));
        *cursor += 8;
      }
      return col;
    }
    case ColumnType::kDet: {
      auto col = std::make_shared<DetColumn>();
      for (uint64_t row = 0; row < rows; ++row) {
        SEABED_CHECK(*cursor + 8 <= in.size());
        col->Append(GetU64(in.data() + *cursor));
        *cursor += 8;
      }
      return col;
    }
    case ColumnType::kOre: {
      auto col = std::make_shared<OreColumn>();
      for (uint64_t row = 0; row < rows; ++row) {
        SEABED_CHECK(*cursor + 16 <= in.size());
        OreCiphertext ct;
        std::copy(in.begin() + *cursor, in.begin() + *cursor + 16, ct.packed.begin());
        *cursor += 16;
        col->Append(ct);
      }
      return col;
    }
    case ColumnType::kPaillier: {
      auto col = std::make_shared<PaillierColumn>();
      for (uint64_t row = 0; row < rows; ++row) {
        const uint64_t len = GetVarint(in, cursor);
        SEABED_CHECK(*cursor + len <= in.size());
        col->Append(BigNum::FromBytes(in.data() + *cursor, len));
        *cursor += len;
      }
      return col;
    }
  }
  SEABED_CHECK_MSG(false, "unknown column type tag");
  __builtin_unreachable();
}

}  // namespace

Bytes SerializeTable(const Table& table) {
  Bytes out;
  PutU32(out, kMagic);
  out.push_back(kVersion);
  PutString(out, table.name());
  PutVarint(out, table.NumColumns());
  for (const auto& name : table.column_names()) {
    SerializeColumn(out, name, *table.GetColumn(name));
  }
  return out;
}

std::shared_ptr<Table> DeserializeTable(const Bytes& bytes) {
  size_t cursor = 0;
  SEABED_CHECK(bytes.size() >= 5);
  SEABED_CHECK_MSG(GetU32(bytes.data()) == kMagic, "bad table magic");
  cursor += 4;
  SEABED_CHECK_MSG(bytes[cursor] == kVersion, "unsupported table version");
  ++cursor;
  auto table = std::make_shared<Table>(GetString(bytes, &cursor));
  const uint64_t columns = GetVarint(bytes, &cursor);
  for (uint64_t i = 0; i < columns; ++i) {
    const std::string name = GetString(bytes, &cursor);
    SEABED_CHECK(cursor < bytes.size());
    const auto type = static_cast<ColumnType>(bytes[cursor]);
    ++cursor;
    const uint64_t rows = GetVarint(bytes, &cursor);
    table->AddColumn(name, DeserializeColumn(bytes, &cursor, type, rows));
  }
  SEABED_CHECK_MSG(cursor == bytes.size(), "trailing bytes after table");
  return table;
}

size_t SerializedTableSize(const Table& table) { return SerializeTable(table).size(); }

}  // namespace seabed
