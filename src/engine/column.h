// Columnar storage for plaintext and encrypted tables.
//
// The engine stores data column-major, mirroring the layout Seabed uses on
// Spark/HDFS. Plaintext tables use Int64 / String columns; encrypted tables
// use Ashe / Det / Ore / Paillier columns. ASHE cells carry only the 64-bit
// group element — the identifier is implicit (base_id + row), reproducing the
// "consecutive row IDs" upload strategy of Section 4.2.
#ifndef SEABED_SRC_ENGINE_COLUMN_H_
#define SEABED_SRC_ENGINE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bignum/bignum.h"
#include "src/common/check.h"
#include "src/crypto/ore.h"

namespace seabed {

enum class ColumnType {
  kInt64,     // plaintext integer (or fixed-point) measure/dimension
  kString,    // plaintext string dimension (dictionary encoded)
  kAshe,      // ASHE group elements, ids implicit (base_id + row index)
  kDet,       // 64-bit deterministic tokens
  kOre,       // 16-byte ORE ciphertexts
  kPaillier,  // Paillier ciphertexts (baseline system)
};

const char* ColumnTypeName(ColumnType type);

class Column {
 public:
  virtual ~Column() = default;

  virtual ColumnType type() const = 0;
  virtual size_t RowCount() const = 0;

  // Bytes of payload data (storage accounting for Table 5).
  virtual size_t ByteSize() const = 0;
};

class Int64Column : public Column {
 public:
  Int64Column() = default;
  explicit Int64Column(std::vector<int64_t> values) : values_(std::move(values)) {}

  ColumnType type() const override { return ColumnType::kInt64; }
  size_t RowCount() const override { return values_.size(); }
  size_t ByteSize() const override { return values_.size() * sizeof(int64_t); }

  int64_t Get(size_t row) const { return values_[row]; }
  void Append(int64_t v) { values_.push_back(v); }
  const std::vector<int64_t>& values() const { return values_; }

 private:
  std::vector<int64_t> values_;
};

// Dictionary-encoded strings: per-column dictionary plus 32-bit codes.
class StringColumn : public Column {
 public:
  ColumnType type() const override { return ColumnType::kString; }
  size_t RowCount() const override { return codes_.size(); }
  size_t ByteSize() const override;

  void Append(const std::string& v);
  const std::string& Get(size_t row) const { return dictionary_[codes_[row]]; }
  uint32_t GetCode(size_t row) const { return codes_[row]; }

  // Contiguous code span for the scan kernels: dictionary codes compare like
  // the strings they encode (the dictionary dedups), so an equality filter
  // is one code compare per row.
  std::span<const uint32_t> codes() const { return codes_; }

  // Code for `v`, or UINT32_MAX when absent from the dictionary.
  uint32_t Lookup(const std::string& v) const;

  size_t DictionarySize() const { return dictionary_.size(); }

 private:
  std::vector<uint32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, uint32_t> index_;
};

class AsheColumn : public Column {
 public:
  // Identifier of row r is base_id + r; base_id >= 1.
  explicit AsheColumn(uint64_t base_id = 1) : base_id_(base_id) { SEABED_CHECK(base_id >= 1); }

  ColumnType type() const override { return ColumnType::kAshe; }
  size_t RowCount() const override { return cells_.size(); }
  size_t ByteSize() const override { return cells_.size() * sizeof(uint64_t); }

  uint64_t base_id() const { return base_id_; }
  uint64_t IdOfRow(size_t row) const { return base_id_ + row; }

  uint64_t Get(size_t row) const { return cells_[row]; }
  void Append(uint64_t cipher) { cells_.push_back(cipher); }

  // Contiguous cell span for batched ASHE accumulation over a selection.
  std::span<const uint64_t> cells() const { return cells_; }

 private:
  uint64_t base_id_;
  std::vector<uint64_t> cells_;
};

class DetColumn : public Column {
 public:
  ColumnType type() const override { return ColumnType::kDet; }
  size_t RowCount() const override { return tokens_.size(); }
  size_t ByteSize() const override { return tokens_.size() * sizeof(uint64_t); }

  uint64_t Get(size_t row) const { return tokens_[row]; }
  void Append(uint64_t token) { tokens_.push_back(token); }

  // Contiguous token span for the SIMD equality kernel.
  std::span<const uint64_t> tokens() const { return tokens_; }

 private:
  std::vector<uint64_t> tokens_;
};

class OreColumn : public Column {
 public:
  ColumnType type() const override { return ColumnType::kOre; }
  size_t RowCount() const override { return cells_.size(); }
  size_t ByteSize() const override { return cells_.size() * sizeof(OreCiphertext); }

  const OreCiphertext& Get(size_t row) const { return cells_[row]; }
  void Append(const OreCiphertext& ct) { cells_.push_back(ct); }

  // Contiguous ciphertext span for the vectorized ORE comparison kernel.
  std::span<const OreCiphertext> cells() const { return cells_; }

 private:
  std::vector<OreCiphertext> cells_;
};

class PaillierColumn : public Column {
 public:
  ColumnType type() const override { return ColumnType::kPaillier; }
  size_t RowCount() const override { return cells_.size(); }
  size_t ByteSize() const override;

  const BigNum& Get(size_t row) const { return cells_[row]; }
  void Append(BigNum ct) { cells_.push_back(std::move(ct)); }

 private:
  std::vector<BigNum> cells_;
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace seabed

#endif  // SEABED_SRC_ENGINE_COLUMN_H_
