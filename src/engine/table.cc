#include "src/engine/table.h"

#include <algorithm>

#include "src/common/check.h"

namespace seabed {

void Table::AddColumn(const std::string& column_name, ColumnPtr column) {
  SEABED_CHECK(column != nullptr);
  SEABED_CHECK_MSG(!HasColumn(column_name), "duplicate column " << column_name);
  names_.push_back(column_name);
  columns_.push_back(std::move(column));
}

bool Table::HasColumn(const std::string& column_name) const {
  return std::find(names_.begin(), names_.end(), column_name) != names_.end();
}

const ColumnPtr& Table::GetColumn(const std::string& column_name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == column_name) {
      return columns_[i];
    }
  }
  SEABED_CHECK_MSG(false, "no such column: " << column_name << " in table " << name_);
  __builtin_unreachable();
}

size_t Table::NumRows() const {
  if (columns_.empty()) {
    return 0;
  }
  const size_t rows = columns_.front()->RowCount();
  for (const auto& col : columns_) {
    SEABED_CHECK(col->RowCount() == rows);
  }
  return rows;
}

size_t Table::ByteSize() const {
  size_t total = 0;
  for (const auto& col : columns_) {
    total += col->ByteSize();
  }
  return total;
}

std::vector<RowRange> Table::Partitions(size_t n) const {
  SEABED_CHECK(n >= 1);
  const size_t rows = NumRows();
  std::vector<RowRange> parts;
  const size_t actual = std::min(n, std::max<size_t>(rows, 1));
  parts.reserve(actual);
  for (size_t i = 0; i < actual; ++i) {
    const size_t begin = rows * i / actual;
    const size_t end = rows * (i + 1) / actual;
    parts.push_back({begin, end});
  }
  return parts;
}

ColumnPtr DeepCopyColumn(const Column& column) {
  switch (column.type()) {
    case ColumnType::kInt64:
      return std::make_shared<Int64Column>(static_cast<const Int64Column&>(column));
    case ColumnType::kString:
      return std::make_shared<StringColumn>(static_cast<const StringColumn&>(column));
    case ColumnType::kAshe:
      return std::make_shared<AsheColumn>(static_cast<const AsheColumn&>(column));
    case ColumnType::kDet:
      return std::make_shared<DetColumn>(static_cast<const DetColumn&>(column));
    case ColumnType::kOre:
      return std::make_shared<OreColumn>(static_cast<const OreColumn&>(column));
    case ColumnType::kPaillier:
      return std::make_shared<PaillierColumn>(static_cast<const PaillierColumn&>(column));
  }
  SEABED_CHECK_MSG(false, "unknown column type");
  __builtin_unreachable();
}

std::shared_ptr<Table> DeepCopyTable(const Table& src) {
  auto copy = std::make_shared<Table>(src.name());
  for (const std::string& name : src.column_names()) {
    copy->AddColumn(name, DeepCopyColumn(*src.GetColumn(name)));
  }
  return copy;
}

}  // namespace seabed
