#include "src/query/query.h"

#include <sstream>

namespace seabed {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kVariance:
      return "variance";
    case AggFunc::kStddev:
      return "stddev";
  }
  return "?";
}

namespace {
std::string DefaultAlias(AggFunc func, const std::string& column) {
  std::string name = AggFuncName(func);
  if (!column.empty()) {
    name += "_" + column;
  }
  return name;
}
}  // namespace

Query& Query::Sum(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kSum, column,
                        alias.empty() ? DefaultAlias(AggFunc::kSum, column) : alias});
  return *this;
}

Query& Query::Count(const std::string& alias) {
  aggregates.push_back({AggFunc::kCount, "", alias.empty() ? "count" : alias});
  return *this;
}

Query& Query::Avg(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kAvg, column,
                        alias.empty() ? DefaultAlias(AggFunc::kAvg, column) : alias});
  return *this;
}

Query& Query::Min(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kMin, column,
                        alias.empty() ? DefaultAlias(AggFunc::kMin, column) : alias});
  return *this;
}

Query& Query::Max(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kMax, column,
                        alias.empty() ? DefaultAlias(AggFunc::kMax, column) : alias});
  return *this;
}

Query& Query::Variance(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kVariance, column,
                        alias.empty() ? DefaultAlias(AggFunc::kVariance, column) : alias});
  return *this;
}

Query& Query::Where(const std::string& column, CmpOp op, Value operand) {
  filters.push_back({column, op, std::move(operand)});
  return *this;
}

Query& Query::GroupBy(const std::string& column) {
  group_by.push_back(column);
  return *this;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::ostringstream oss;
  for (size_t i = 0; i < column_names.size(); ++i) {
    oss << (i ? " | " : "") << column_names[i];
  }
  oss << "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ == max_rows) {
      oss << "... (" << rows.size() - max_rows << " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      oss << (i ? " | " : "") << ValueToString(row[i]);
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace seabed
