#include "src/query/query.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace seabed {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kVariance:
      return "variance";
    case AggFunc::kStddev:
      return "stddev";
  }
  return "?";
}

namespace {

const char* CmpOpToken(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

// Typed literal rendering so `x = 1` and `x = '1'` fingerprint apart.
std::string TypedLiteral(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    return "i" + std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "d%.17g", *d);
    return buf;
  }
  return "s" + std::get<std::string>(v);
}

// Length-prefixes every variable-length component (column names, aliases,
// literals): user-controlled strings may contain the fingerprint's own
// separator characters, and an unescaped `dim = "x&grp=sy"` must not
// collide with the two-predicate `dim="x" AND grp="y"`.
void AppendToken(std::string& out, const std::string& token) {
  out += std::to_string(token.size());
  out += ':';
  out += token;
}

std::string DefaultAlias(AggFunc func, const std::string& column) {
  std::string name = AggFuncName(func);
  if (!column.empty()) {
    name += "_" + column;
  }
  return name;
}
}  // namespace

std::string Query::Fingerprint(FingerprintMode mode) const {
  std::string key = "t=";
  AppendToken(key, table);

  key += ";a=";
  for (const Aggregate& agg : aggregates) {
    key += AggFuncName(agg.func);
    AppendToken(key, agg.column);
    AppendToken(key, agg.alias);
  }

  // A WHERE clause is a conjunction: serialize each predicate, then sort, so
  // reordered dashboards share a cache line.
  std::vector<std::string> preds;
  preds.reserve(filters.size());
  for (const Predicate& p : filters) {
    std::string s;
    AppendToken(s, p.column);
    s += CmpOpToken(p.op);
    std::string literal;
    if (mode == FingerprintMode::kShape) {
      literal = "?";
    } else if (p.param >= 0) {
      // Unbound placeholder: the slot is the literal's identity. `?N` cannot
      // collide with TypedLiteral output, which always starts with i/d/s.
      literal = "?" + std::to_string(p.param);
    } else {
      literal = TypedLiteral(p.operand);
    }
    AppendToken(s, literal);
    preds.push_back(std::move(s));
  }
  std::sort(preds.begin(), preds.end());
  key += ";f=";
  for (const std::string& pred : preds) {
    key += pred;
  }

  key += ";g=";
  for (const std::string& column : group_by) {
    AppendToken(key, column);
  }

  if (join.has_value()) {
    key += ";j=";
    AppendToken(key, join->right_table);
    AppendToken(key, join->left_column);
    AppendToken(key, join->right_column);
  }
  if (has_udf) {
    key += ";udf";
  }
  return key;
}

Query& Query::Sum(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kSum, column,
                        alias.empty() ? DefaultAlias(AggFunc::kSum, column) : alias});
  return *this;
}

Query& Query::Count(const std::string& alias) {
  aggregates.push_back({AggFunc::kCount, "", alias.empty() ? "count" : alias});
  return *this;
}

Query& Query::Avg(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kAvg, column,
                        alias.empty() ? DefaultAlias(AggFunc::kAvg, column) : alias});
  return *this;
}

Query& Query::Min(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kMin, column,
                        alias.empty() ? DefaultAlias(AggFunc::kMin, column) : alias});
  return *this;
}

Query& Query::Max(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kMax, column,
                        alias.empty() ? DefaultAlias(AggFunc::kMax, column) : alias});
  return *this;
}

Query& Query::Variance(const std::string& column, const std::string& alias) {
  aggregates.push_back({AggFunc::kVariance, column,
                        alias.empty() ? DefaultAlias(AggFunc::kVariance, column) : alias});
  return *this;
}

size_t Query::num_params() const {
  int max_slot = -1;
  for (const Predicate& p : filters) {
    max_slot = std::max(max_slot, p.param);
  }
  return static_cast<size_t>(max_slot + 1);
}

Query Query::BindParams(std::span<const Value> params) const {
  SEABED_CHECK_MSG(params.size() == num_params(),
                   "BindParams: query has " << num_params() << " placeholder slot(s), got "
                                            << params.size() << " value(s)");
  Query bound = *this;
  for (Predicate& p : bound.filters) {
    if (p.param < 0) {
      continue;
    }
    p.operand = params[static_cast<size_t>(p.param)];
    p.param = -1;
  }
  return bound;
}

Query& Query::Where(const std::string& column, CmpOp op, Value operand) {
  filters.push_back({column, op, std::move(operand)});
  return *this;
}

Query& Query::WhereParam(const std::string& column, CmpOp op) {
  Predicate p;
  p.column = column;
  p.op = op;
  p.param = static_cast<int>(num_params());
  filters.push_back(std::move(p));
  return *this;
}

Query& Query::GroupBy(const std::string& column) {
  group_by.push_back(column);
  return *this;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::ostringstream oss;
  for (size_t i = 0; i < column_names.size(); ++i) {
    oss << (i ? " | " : "") << column_names[i];
  }
  oss << "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ == max_rows) {
      oss << "... (" << rows.size() - max_rows << " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      oss << (i ? " | " : "") << ValueToString(row[i]);
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace seabed
