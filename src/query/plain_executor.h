// Plaintext query execution — the paper's "NoEnc" baseline.
//
// Executes the Query AST directly over plaintext columns on the cluster
// model, including broadcast hash joins against a second table.
#ifndef SEABED_SRC_QUERY_PLAIN_EXECUTOR_H_
#define SEABED_SRC_QUERY_PLAIN_EXECUTOR_H_

#include "src/engine/table.h"
#include "src/query/query.h"

namespace seabed {

// Runs `query` over `table`, parallelized across the cluster's workers.
// When the query joins a second table, `right` must point at it (nullptr
// otherwise); joined columns carry the "right:" prefix in the query.
// `stats`, when non-null, receives the latency breakdown of the call.
//
// Prefer Session::Execute with a PlainExecutorBackend (src/seabed/session.h);
// this free function remains as the backend's engine.
ResultSet ExecutePlain(const Table& table, const Query& query, const Cluster& cluster,
                       const Table* right, QueryStats* stats);

}  // namespace seabed

#endif  // SEABED_SRC_QUERY_PLAIN_EXECUTOR_H_
