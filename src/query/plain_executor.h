// Plaintext query execution — the paper's "NoEnc" baseline.
//
// Executes the Query AST directly over plaintext columns on the cluster
// model. Also exports the row-predicate helper shared with the encrypted
// executors (filters on plaintext helper columns behave identically there).
#ifndef SEABED_SRC_QUERY_PLAIN_EXECUTOR_H_
#define SEABED_SRC_QUERY_PLAIN_EXECUTOR_H_

#include "src/engine/table.h"
#include "src/query/query.h"

namespace seabed {

// Runs `query` over `table`, parallelized across the cluster's workers.
ResultSet ExecutePlain(const Table& table, const Query& query, const Cluster& cluster);

// True when row `row` of `table` satisfies every filter in `filters`.
bool RowMatches(const Table& table, const std::vector<Predicate>& filters, size_t row);

// Serialized composite group key for row `row` (empty group_by -> "" key).
std::string GroupKeyOfRow(const Table& table, const std::vector<std::string>& group_by,
                          size_t row);

}  // namespace seabed

#endif  // SEABED_SRC_QUERY_PLAIN_EXECUTOR_H_
