#include "src/query/plain_executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/stopwatch.h"

namespace seabed {
namespace {

int CompareInt(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

// Running state for one aggregate within one group.
struct AggState {
  int64_t sum = 0;
  double sum_squares = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  int64_t count = 0;

  void Observe(int64_t v) {
    sum += v;
    sum_squares += static_cast<double>(v) * static_cast<double>(v);
    min = std::min(min, v);
    max = std::max(max, v);
    ++count;
  }

  void Merge(const AggState& o) {
    sum += o.sum;
    sum_squares += o.sum_squares;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    count += o.count;
  }
};

struct GroupState {
  std::vector<Value> group_values;
  std::vector<AggState> aggs;
};

Value Finalize(const Aggregate& agg, const AggState& s) {
  switch (agg.func) {
    case AggFunc::kSum:
      return s.sum;
    case AggFunc::kCount:
      return s.count;
    case AggFunc::kAvg:
      return s.count == 0 ? 0.0 : static_cast<double>(s.sum) / static_cast<double>(s.count);
    case AggFunc::kMin:
      return s.count == 0 ? int64_t{0} : s.min;
    case AggFunc::kMax:
      return s.count == 0 ? int64_t{0} : s.max;
    case AggFunc::kVariance: {
      if (s.count == 0) {
        return 0.0;
      }
      const double mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
      return s.sum_squares / static_cast<double>(s.count) - mean * mean;
    }
    case AggFunc::kStddev: {
      if (s.count == 0) {
        return 0.0;
      }
      const double mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
      const double var = s.sum_squares / static_cast<double>(s.count) - mean * mean;
      return std::sqrt(std::max(0.0, var));
    }
  }
  return int64_t{0};
}

}  // namespace

namespace {

// A column reference resolved against the fact table or the joined table.
struct ResolvedColumn {
  const Table* table = nullptr;
  bool on_right = false;
  std::string name;  // without the "right:" prefix
};

constexpr const char kRightPrefix[] = "right:";

ResolvedColumn ResolveColumn(const std::string& name, const Table& fact, const Table* right) {
  ResolvedColumn rc;
  if (name.rfind(kRightPrefix, 0) == 0) {
    SEABED_CHECK_MSG(right != nullptr, "joined column " << name << " without a right table");
    rc.table = right;
    rc.on_right = true;
    rc.name = name.substr(sizeof(kRightPrefix) - 1);
  } else {
    rc.table = &fact;
    rc.name = name;
  }
  return rc;
}

int64_t IntCell(const Table& t, const std::string& column, size_t row) {
  const ColumnPtr& col = t.GetColumn(column);
  SEABED_CHECK(col->type() == ColumnType::kInt64);
  return static_cast<const Int64Column*>(col.get())->Get(row);
}

Value CellValue(const Table& t, const std::string& column, size_t row) {
  const ColumnPtr& col = t.GetColumn(column);
  if (col->type() == ColumnType::kInt64) {
    return static_cast<const Int64Column*>(col.get())->Get(row);
  }
  SEABED_CHECK_MSG(col->type() == ColumnType::kString,
                   "unsupported plaintext column type for " << column);
  return static_cast<const StringColumn*>(col.get())->Get(row);
}

bool PredicateHolds(const Predicate& pred, const ResolvedColumn& rc, size_t row) {
  const ColumnPtr& col = rc.table->GetColumn(rc.name);
  if (col->type() == ColumnType::kInt64) {
    const int64_t v = static_cast<const Int64Column*>(col.get())->Get(row);
    const int64_t operand = std::get<int64_t>(pred.operand);
    return CmpOpMatchesOrder(pred.op, CompareInt(v, operand));
  }
  SEABED_CHECK_MSG(col->type() == ColumnType::kString,
                   "plaintext predicate on encrypted column " << rc.name);
  SEABED_CHECK_MSG(pred.op == CmpOp::kEq || pred.op == CmpOp::kNe,
                   "string predicates support equality only");
  const bool eq = static_cast<const StringColumn*>(col.get())->Get(row) ==
                  std::get<std::string>(pred.operand);
  return (pred.op == CmpOp::kEq) == eq;
}

}  // namespace

ResultSet ExecutePlain(const Table& table, const Query& query, const Cluster& cluster,
                       const Table* right, QueryStats* stats) {
  const size_t num_aggs = query.aggregates.size();

  // Resolve every column reference once, up front.
  std::vector<ResolvedColumn> filter_cols;
  filter_cols.reserve(query.filters.size());
  for (const Predicate& p : query.filters) {
    filter_cols.push_back(ResolveColumn(p.column, table, right));
  }
  std::vector<ResolvedColumn> group_cols;
  group_cols.reserve(query.group_by.size());
  for (const std::string& g : query.group_by) {
    group_cols.push_back(ResolveColumn(g, table, right));
  }
  std::vector<ResolvedColumn> agg_cols(num_aggs);
  for (size_t a = 0; a < num_aggs; ++a) {
    if (!query.aggregates[a].column.empty()) {
      agg_cols[a] = ResolveColumn(query.aggregates[a].column, table, right);
    }
  }

  // Broadcast hash join: right join column value -> right row numbers.
  std::unordered_multimap<std::string, size_t> join_index;
  const bool has_join = query.join.has_value();
  if (has_join) {
    SEABED_CHECK_MSG(right != nullptr,
                     "join against " << query.join->right_table << " without a right table");
    const ResolvedColumn right_key{right, true,
                                   query.join->right_column.rfind(kRightPrefix, 0) == 0
                                       ? query.join->right_column.substr(sizeof(kRightPrefix) - 1)
                                       : query.join->right_column};
    for (size_t r = 0; r < right->NumRows(); ++r) {
      join_index.emplace(ValueToString(CellValue(*right_key.table, right_key.name, r)), r);
    }
  }

  const auto partitions = table.Partitions(cluster.num_workers());
  std::vector<std::unordered_map<std::string, GroupState>> partials(partitions.size());
  std::vector<uint64_t> touched(partitions.size(), 0);

  const JobStats job = cluster.RunJob(partitions.size(), [&](size_t p) {
    auto& local = partials[p];
    auto process = [&](size_t row, size_t right_row) {
      for (size_t f = 0; f < query.filters.size(); ++f) {
        const ResolvedColumn& rc = filter_cols[f];
        if (!PredicateHolds(query.filters[f], rc, rc.on_right ? right_row : row)) {
          return;
        }
      }
      ++touched[p];
      std::string key;
      for (const ResolvedColumn& rc : group_cols) {
        // Length-prefixed so adjacent parts can never alias (see
        // AppendGroupKeyPart in src/engine/value.h).
        AppendGroupKeyPart(key,
                           ValueToString(CellValue(*rc.table, rc.name, rc.on_right ? right_row : row)));
      }
      GroupState& group = local[key];
      if (group.aggs.empty()) {
        group.aggs.resize(num_aggs);
        for (const ResolvedColumn& rc : group_cols) {
          group.group_values.push_back(
              CellValue(*rc.table, rc.name, rc.on_right ? right_row : row));
        }
      }
      for (size_t a = 0; a < num_aggs; ++a) {
        int64_t v = 0;
        if (!query.aggregates[a].column.empty()) {
          const ResolvedColumn& rc = agg_cols[a];
          v = IntCell(*rc.table, rc.name, rc.on_right ? right_row : row);
        }
        group.aggs[a].Observe(v);
      }
    };
    for (size_t row = partitions[p].begin; row < partitions[p].end; ++row) {
      if (has_join) {
        const std::string left_key = ValueToString(CellValue(table, query.join->left_column, row));
        const auto [lo, hi] = join_index.equal_range(left_key);
        for (auto it = lo; it != hi; ++it) {
          process(row, it->second);
        }
      } else {
        process(row, 0);
      }
    }
  });

  // Driver-side merge (ordered map for deterministic output).
  Stopwatch client_sw;
  std::map<std::string, GroupState> merged;
  for (auto& partial : partials) {
    for (auto& [key, group] : partial) {
      auto [it, inserted] = merged.try_emplace(key, std::move(group));
      if (!inserted) {
        for (size_t a = 0; a < num_aggs; ++a) {
          it->second.aggs[a].Merge(group.aggs[a]);
        }
      }
    }
  }

  // SQL semantics: a global aggregate (no GROUP BY) over zero rows still
  // yields one result row.
  if (merged.empty() && query.group_by.empty()) {
    merged.emplace("", GroupState{{}, std::vector<AggState>(num_aggs)});
  }

  ResultSet result;
  size_t result_bytes = 0;
  for (const std::string& g : query.group_by) {
    result.column_names.push_back(g);
  }
  for (const Aggregate& agg : query.aggregates) {
    result.column_names.push_back(agg.alias);
  }
  for (auto& [key, group] : merged) {
    std::vector<Value> row = group.group_values;
    for (size_t a = 0; a < num_aggs; ++a) {
      row.push_back(Finalize(query.aggregates[a], group.aggs[a]));
    }
    result_bytes += row.size() * 8;
    result.rows.push_back(std::move(row));
  }
  // Rows sorted by group values. The serialized keys are length-prefixed
  // (collision-proofing), which makes their byte order diverge from value
  // order — e.g. "west" (4 bytes) would sort before "north" (5 bytes).
  const size_t num_group_cols = query.group_by.size();
  std::sort(result.rows.begin(), result.rows.end(),
            [num_group_cols](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t g = 0; g < num_group_cols; ++g) {
                if (a[g] != b[g]) {
                  return a[g] < b[g];
                }
              }
              return false;
            });
  if (stats != nullptr) {
    stats->backend = "plain";
    stats->job = job;
    stats->server_seconds = job.server_seconds;
    stats->result_bytes = result_bytes;
    stats->result_rows = result.rows.size();
    stats->network_seconds = cluster.config().client_link.TransferSeconds(result_bytes);
    stats->client_seconds = client_sw.ElapsedSeconds();
    stats->rows_touched = 0;
    for (const uint64_t t : touched) {
      stats->rows_touched += t;
    }
  }
  return result;
}

}  // namespace seabed
