#include "src/query/plain_executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/stopwatch.h"

namespace seabed {
namespace {

int CompareInt(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

bool ApplyCmp(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

// Running state for one aggregate within one group.
struct AggState {
  int64_t sum = 0;
  double sum_squares = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  int64_t count = 0;

  void Observe(int64_t v) {
    sum += v;
    sum_squares += static_cast<double>(v) * static_cast<double>(v);
    min = std::min(min, v);
    max = std::max(max, v);
    ++count;
  }

  void Merge(const AggState& o) {
    sum += o.sum;
    sum_squares += o.sum_squares;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    count += o.count;
  }
};

struct GroupState {
  std::vector<Value> group_values;
  std::vector<AggState> aggs;
};

Value Finalize(const Aggregate& agg, const AggState& s) {
  switch (agg.func) {
    case AggFunc::kSum:
      return s.sum;
    case AggFunc::kCount:
      return s.count;
    case AggFunc::kAvg:
      return s.count == 0 ? 0.0 : static_cast<double>(s.sum) / static_cast<double>(s.count);
    case AggFunc::kMin:
      return s.count == 0 ? int64_t{0} : s.min;
    case AggFunc::kMax:
      return s.count == 0 ? int64_t{0} : s.max;
    case AggFunc::kVariance: {
      if (s.count == 0) {
        return 0.0;
      }
      const double mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
      return s.sum_squares / static_cast<double>(s.count) - mean * mean;
    }
    case AggFunc::kStddev: {
      if (s.count == 0) {
        return 0.0;
      }
      const double mean = static_cast<double>(s.sum) / static_cast<double>(s.count);
      const double var = s.sum_squares / static_cast<double>(s.count) - mean * mean;
      return std::sqrt(std::max(0.0, var));
    }
  }
  return int64_t{0};
}

}  // namespace

bool RowMatches(const Table& table, const std::vector<Predicate>& filters, size_t row) {
  for (const Predicate& pred : filters) {
    const ColumnPtr& col = table.GetColumn(pred.column);
    switch (col->type()) {
      case ColumnType::kInt64: {
        const auto* c = static_cast<const Int64Column*>(col.get());
        const int64_t operand = std::get<int64_t>(pred.operand);
        if (!ApplyCmp(pred.op, CompareInt(c->Get(row), operand))) {
          return false;
        }
        break;
      }
      case ColumnType::kString: {
        const auto* c = static_cast<const StringColumn*>(col.get());
        SEABED_CHECK_MSG(pred.op == CmpOp::kEq || pred.op == CmpOp::kNe,
                         "string predicates support equality only");
        const bool eq = c->Get(row) == std::get<std::string>(pred.operand);
        if ((pred.op == CmpOp::kEq) != eq) {
          return false;
        }
        break;
      }
      default:
        SEABED_CHECK_MSG(false, "plaintext predicate on encrypted column " << pred.column);
    }
  }
  return true;
}

std::string GroupKeyOfRow(const Table& table, const std::vector<std::string>& group_by,
                          size_t row) {
  std::string key;
  for (const std::string& name : group_by) {
    const ColumnPtr& col = table.GetColumn(name);
    if (col->type() == ColumnType::kInt64) {
      key += std::to_string(static_cast<const Int64Column*>(col.get())->Get(row));
    } else if (col->type() == ColumnType::kString) {
      key += static_cast<const StringColumn*>(col.get())->Get(row);
    } else {
      SEABED_CHECK_MSG(false, "group-by on unsupported column type");
    }
    key.push_back('\x1f');
  }
  return key;
}

ResultSet ExecutePlain(const Table& table, const Query& query, const Cluster& cluster) {
  const auto partitions = table.Partitions(cluster.num_workers());
  std::vector<std::unordered_map<std::string, GroupState>> partials(partitions.size());

  const size_t num_aggs = query.aggregates.size();
  const JobStats job = cluster.RunJob(partitions.size(), [&](size_t p) {
    auto& local = partials[p];
    for (size_t row = partitions[p].begin; row < partitions[p].end; ++row) {
      if (!RowMatches(table, query.filters, row)) {
        continue;
      }
      const std::string key = GroupKeyOfRow(table, query.group_by, row);
      GroupState& group = local[key];
      if (group.aggs.empty()) {
        group.aggs.resize(num_aggs);
        for (const std::string& name : query.group_by) {
          const ColumnPtr& col = table.GetColumn(name);
          if (col->type() == ColumnType::kInt64) {
            group.group_values.emplace_back(
                static_cast<const Int64Column*>(col.get())->Get(row));
          } else {
            group.group_values.emplace_back(
                static_cast<const StringColumn*>(col.get())->Get(row));
          }
        }
      }
      for (size_t a = 0; a < num_aggs; ++a) {
        const Aggregate& agg = query.aggregates[a];
        int64_t v = 0;
        if (!agg.column.empty()) {
          const ColumnPtr& col = table.GetColumn(agg.column);
          SEABED_CHECK(col->type() == ColumnType::kInt64);
          v = static_cast<const Int64Column*>(col.get())->Get(row);
        }
        group.aggs[a].Observe(v);
      }
    }
  });

  // Driver-side merge (ordered map for deterministic output).
  Stopwatch client_sw;
  std::map<std::string, GroupState> merged;
  for (auto& partial : partials) {
    for (auto& [key, group] : partial) {
      auto [it, inserted] = merged.try_emplace(key, std::move(group));
      if (!inserted) {
        for (size_t a = 0; a < num_aggs; ++a) {
          it->second.aggs[a].Merge(group.aggs[a]);
        }
      }
    }
  }

  // SQL semantics: a global aggregate (no GROUP BY) over zero rows still
  // yields one result row.
  if (merged.empty() && query.group_by.empty()) {
    merged.emplace("", GroupState{{}, std::vector<AggState>(num_aggs)});
  }

  ResultSet result;
  for (const std::string& g : query.group_by) {
    result.column_names.push_back(g);
  }
  for (const Aggregate& agg : query.aggregates) {
    result.column_names.push_back(agg.alias);
  }
  for (auto& [key, group] : merged) {
    std::vector<Value> row = group.group_values;
    for (size_t a = 0; a < num_aggs; ++a) {
      row.push_back(Finalize(query.aggregates[a], group.aggs[a]));
    }
    result.result_bytes += row.size() * 8;
    result.rows.push_back(std::move(row));
  }
  result.job = job;
  result.network_seconds = cluster.config().client_link.TransferSeconds(result.result_bytes);
  result.client_seconds = client_sw.ElapsedSeconds();
  return result;
}

}  // namespace seabed
