// A small SQL parser for the Seabed query subset.
//
// Users of the paper's system write SQL (or MDX); the proxy's translator
// consumes a parsed form. This parser covers the grammar the engine
// executes:
//
//   SELECT item {, item}
//   FROM ident
//   [JOIN ident ON ident = ident]        -- right side as table.column
//   [WHERE pred {AND pred}]
//   [GROUP BY ident {, ident}]
//
//   item  := agg '(' (ident | '*') ')' ['AS' ident]
//   agg   := SUM | COUNT | AVG | MIN | MAX | VARIANCE | STDDEV
//          | ident (bare column in GROUP BY position is implied)
//   pred  := operand cmp literal
//   cmp   := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//   literal := integer | 'single quoted string' | '?'
//
// Keywords are case-insensitive. Joined-table columns are written
// table.column and mapped to the engine's "right:" prefix. A '?' literal is
// a prepared-statement placeholder (Predicate::param); slots number left to
// right across the WHERE clause and bind via Session::Prepare + Execute.
#ifndef SEABED_SRC_QUERY_PARSER_H_
#define SEABED_SRC_QUERY_PARSER_H_

#include <string>

#include "src/query/query.h"

namespace seabed {

// Result of a parse: either a query or a diagnostic.
struct ParseResult {
  bool ok = false;
  Query query;
  std::string error;  // human-readable, with position info
};

// Parses `sql` into a Query. Never aborts; malformed input yields ok=false.
ParseResult ParseSql(const std::string& sql);

// Convenience for tests/examples: parses or dies with the diagnostic.
Query MustParseSql(const std::string& sql);

}  // namespace seabed

#endif  // SEABED_SRC_QUERY_PARSER_H_
