// Query AST for the OLAP subset Seabed targets.
//
// Section 5 of the paper finds that BI workloads are dominated by filtered
// aggregations with group-by: SUM / COUNT / AVG / MIN / MAX plus quadratic
// aggregates (VARIANCE, STDDEV) that the client supports by pre-computing a
// squared column. That subset is exactly what this AST expresses. The same
// Query object is executed by the plaintext engine (NoEnc baseline), by the
// Paillier baseline, and — after rewriting by the Seabed translator — by the
// encrypted server.
#ifndef SEABED_SRC_QUERY_QUERY_H_
#define SEABED_SRC_QUERY_QUERY_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/engine/cluster.h"
#include "src/engine/value.h"

namespace seabed {

enum class AggFunc {
  kSum,
  kCount,
  kAvg,
  kMin,
  kMax,
  kVariance,  // needs the client-uploaded squared column on the server path
  kStddev,
};

const char* AggFuncName(AggFunc func);

enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

// Whether `op` accepts a three-way comparison result (`order` < 0, == 0 or
// > 0 as in strcmp). The single definition every predicate evaluator —
// plain executor, encrypted server, Paillier baseline, planner estimate,
// probe pruning — must share, so a CmpOp addition cannot diverge them.
// Header-inline: this sits in every scan's per-row hot loop.
constexpr bool CmpOpMatchesOrder(CmpOp op, int order) {
  switch (op) {
    case CmpOp::kEq:
      return order == 0;
    case CmpOp::kNe:
      return order != 0;
    case CmpOp::kLt:
      return order < 0;
    case CmpOp::kLe:
      return order <= 0;
    case CmpOp::kGt:
      return order > 0;
    case CmpOp::kGe:
      return order >= 0;
  }
  return false;
}

struct Aggregate {
  AggFunc func = AggFunc::kSum;
  std::string column;  // empty for COUNT(*)
  std::string alias;
};

struct Predicate {
  std::string column;
  CmpOp op = CmpOp::kEq;
  Value operand;
  // Placeholder slot for prepared statements: -1 means `operand` holds a
  // bound literal; >= 0 names the 0-based parameter this predicate binds at
  // execution time (`operand` is ignored until then). Slots are assigned in
  // order of appearance by the parser (`?`) and by WhereParam().
  int param = -1;
};

// Equi-join of the query's (fact) table against a second table. Columns of
// the joined table are referenced with a "right:" prefix in aggregates,
// filters and group-bys. On the encrypted path the join key must be DET
// encrypted (SPLASHE cannot support joins — paper Section 3.5).
struct Join {
  std::string right_table;
  std::string left_column;   // column of the fact table
  std::string right_column;  // column of the joined table
};

struct Query {
  std::string table;
  std::vector<Aggregate> aggregates;
  std::vector<Predicate> filters;
  std::vector<std::string> group_by;
  std::optional<Join> join;

  // Client hint: expected number of result groups, used by the group-by
  // inflation optimization (Section 4.5). 0 = unknown.
  size_t expected_groups = 0;

  // Markers used by the Section 5 classifier and the translator: a UDF means
  // the server returns raw aggregates and the client applies the function; a
  // two-round-trip query (e.g. iterative regression) re-encrypts an
  // intermediate result.
  bool has_udf = false;
  bool needs_two_round_trips = false;

  // Canonical query fingerprint for caching layers (result + translated-plan
  // caches). Two queries with the same fingerprint produce identical result
  // rows on every backend:
  //   * filters are ORDER-NORMALIZED (the WHERE clause is a conjunction, so
  //     `a=1 AND b=2` and `b=2 AND a=1` collapse to one key);
  //   * aggregates and group-by keys keep their declared order (it defines
  //     the result columns);
  //   * literals are typed, so WHERE x = 1 and WHERE x = '1' stay distinct;
  //   * execution hints that cannot change the rows (`expected_groups`,
  //     `needs_two_round_trips`) are EXCLUDED — plan caches that depend on
  //     them must mix them into their own key.
  // kShape elides filter literals (`ts>=?`), collapsing a dashboard's
  // parameter sweeps onto one key — the granularity plan/shape statistics
  // want, too coarse for a result cache. Unbound placeholder predicates
  // render as `?N` (slot index) in kExact mode: the slot is part of the
  // query's identity, and `?N` cannot collide with typed literals (which
  // always start with i/d/s).
  enum class FingerprintMode { kExact, kShape };
  std::string Fingerprint(FingerprintMode mode = FingerprintMode::kExact) const;

  // Placeholder support (prepared statements, src/seabed/prepared.h).
  // num_params() is 1 + the highest slot index (0 when fully bound);
  // BindParams substitutes `params[slot]` into every placeholder predicate
  // and returns the fully-bound copy. Slot-contiguity is validated by
  // Session::Prepare, not here.
  size_t num_params() const;
  bool has_params() const { return num_params() > 0; }
  Query BindParams(std::span<const Value> params) const;

  // Fluent builders for tests/examples.
  Query& Sum(const std::string& column, const std::string& alias = "");
  Query& Count(const std::string& alias = "");
  Query& Avg(const std::string& column, const std::string& alias = "");
  Query& Min(const std::string& column, const std::string& alias = "");
  Query& Max(const std::string& column, const std::string& alias = "");
  Query& Variance(const std::string& column, const std::string& alias = "");
  Query& Where(const std::string& column, CmpOp op, Value operand);
  // Adds a placeholder predicate on the next free slot (== num_params()).
  Query& WhereParam(const std::string& column, CmpOp op);
  Query& GroupBy(const std::string& column);
};

// A fully-processed query answer: just the data. The latency breakdown the
// paper reports lives in QueryStats, filled per call by every executor.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;  // sorted by group key

  // Pretty-printer for examples.
  std::string ToString(size_t max_rows = 20) const;
};

// Per-query metrics, populated by every execution backend (the Figure 6/7
// latency breakdown plus the Section 6.6 decryption-cost statistics). One
// QueryStats is produced per Execute call, so concurrent queries never share
// mutable counters.
struct QueryStats {
  std::string backend;          // name of the executing backend

  JobStats job;                 // simulated-cluster detail for the scan phase
  double server_seconds = 0;    // scan + driver merge + modeled shuffle
  double network_seconds = 0;   // driver -> client transfer (modeled)
  double client_seconds = 0;    // decryption + post-processing (measured)
  double translate_seconds = 0; // proxy-side query rewriting (measured)

  uint64_t prf_calls = 0;       // AES/PRF invocations during decryption
  size_t result_bytes = 0;      // payload shipped to the client
  size_t result_rows = 0;       // rows in the final ResultSet

  // Rows that survived the server-side predicates (each join match counts
  // once). Deterministic for a fixed table + query, so regression tests can
  // pin it across sessions.
  uint64_t rows_touched = 0;

  // Sharded fan-out detail (kShardedSeabed): simulated round-two server
  // latency per shard, the per-shard probe cost (round-one count probe plus
  // any intra-shard row-group probe) reported separately so pruned shards —
  // which run no round two — don't over-report, and the coordinator's
  // ciphertext-side merge time. Empty / zero on single-server backends.
  std::vector<double> shard_server_seconds;
  std::vector<double> shard_probe_seconds;
  double merge_seconds = 0;

  // Round-zero shard routing (kShardedSeabed under key-range placement,
  // src/seabed/placement.h): how many of the fleet's shards the coordinator
  // routed this query to before any fan-out, and the fleet size. Equal when
  // the query is not routable (hash placement, or no clustering-key filter
  // — full fan-out); routed == 0 means no shard's key range intersects the
  // predicate and both rounds were skipped outright. Both zero on
  // single-server backends.
  uint64_t shards_routed = 0;
  uint64_t shards_total = 0;

  // Caching detail (kCachingSeabed): whether this call was answered from the
  // result cache, whether the inner backend reused a cached translated plan,
  // and the time spent probing/updating the result cache. All zero/false on
  // non-caching backends.
  bool cache_hit = false;
  bool plan_cache_hit = false;
  double cache_lookup_seconds = 0;

  // Prepared-statement detail: whether this call went through the
  // Prepare+bind path, and the time spent binding parameters (Query
  // substitution plus per-slot DET/ORE encryption). Reported uniformly by
  // every backend; zero/false on ad-hoc Execute calls. translate_seconds on
  // a warm prepared call covers only the shape-plan cache lookup.
  bool prepared = false;
  double bind_seconds = 0;

  // Two-round probe detail (src/seabed/probe.h): whether round one ran, its
  // cost (also folded into server_seconds), and how much of the fleet it let
  // round two skip. The units are row groups of the summary index — on
  // kShardedSeabed aggregated across the shards' per-server indexes when the
  // intra-shard prune ran, and falling back to shard granularity when only
  // the shard-level count probe did. All zero/false when no probe ran —
  // cache hits in particular never probe.
  bool probe_used = false;
  double probe_seconds = 0;
  uint64_t row_groups_total = 0;
  uint64_t row_groups_pruned = 0;

  double TotalSeconds() const {
    return server_seconds + network_seconds + client_seconds;
  }
};

// Skew-aware shard-rebalancing detail (kShardedSeabed,
// src/seabed/sharded_backend.h). Appends place whole batches, so a skewed
// stream unbalances the fleet; when rebalancing is enabled the backend
// migrates whole row-groups off overloaded shards and accumulates the moves
// here (cumulative over the backend's lifetime — Append has no per-call
// stats object the way Execute does).
struct RebalanceStats {
  uint64_t rebalances = 0;         // Append calls that triggered a migration
  uint64_t row_groups_moved = 0;   // whole row-groups shipped between shards
  uint64_t rows_moved = 0;         // rows re-encrypted into recipient shards
  uint64_t rows_reencrypted = 0;   // donor remainders re-encrypted into fresh
                                   // identifier-space slots
  double seconds = 0;              // measured migration wall-clock
};

}  // namespace seabed

#endif  // SEABED_SRC_QUERY_QUERY_H_
