#include "src/query/parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "src/common/check.h"

namespace seabed {
namespace {

enum class TokenType {
  kIdent,
  kInt,
  kString,
  kSymbol,  // punctuation / comparison operator
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifiers upper-cased copy in `upper`
  std::string upper;
  int64_t int_value = 0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  // Tokenizes fully; returns false (with error_) on bad input.
  bool Run() {
    size_t i = 0;
    while (i < input_.size()) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[j])) || input_[j] == '_' ||
                input_[j] == '.')) {
          ++j;
        }
        Token t;
        t.type = TokenType::kIdent;
        t.text = input_.substr(i, j - i);
        t.upper = Upper(t.text);
        t.pos = i;
        tokens_.push_back(std::move(t));
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t j = i + 1;
        while (j < input_.size() && std::isdigit(static_cast<unsigned char>(input_[j]))) {
          ++j;
        }
        Token t;
        t.type = TokenType::kInt;
        t.text = input_.substr(i, j - i);
        t.int_value = std::stoll(t.text);
        t.pos = i;
        tokens_.push_back(std::move(t));
        i = j;
        continue;
      }
      if (c == '\'') {
        const size_t close = input_.find('\'', i + 1);
        if (close == std::string::npos) {
          error_ = "unterminated string literal at position " + std::to_string(i);
          return false;
        }
        Token t;
        t.type = TokenType::kString;
        t.text = input_.substr(i + 1, close - i - 1);
        t.pos = i;
        tokens_.push_back(std::move(t));
        i = close + 1;
        continue;
      }
      // Two-char comparison operators first.
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (input_.compare(i, 2, op) == 0) {
          Token t;
          t.type = TokenType::kSymbol;
          t.text = op;
          t.pos = i;
          tokens_.push_back(std::move(t));
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
      if (std::string("(),*=<>?").find(c) != std::string::npos) {
        Token t;
        t.type = TokenType::kSymbol;
        t.text = std::string(1, c);
        t.pos = i;
        tokens_.push_back(std::move(t));
        ++i;
        continue;
      }
      error_ = std::string("unexpected character '") + c + "' at position " + std::to_string(i);
      return false;
    }
    Token end;
    end.type = TokenType::kEnd;
    end.pos = input_.size();
    tokens_.push_back(std::move(end));
    return true;
  }

  static std::string Upper(const std::string& s) {
    std::string u = s;
    std::transform(u.begin(), u.end(), u.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return u;
  }

  const std::vector<Token>& tokens() const { return tokens_; }
  const std::string& error() const { return error_; }

 private:
  const std::string& input_;
  std::vector<Token> tokens_;
  std::string error_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult Run() {
    ParseResult result;
    if (!ParseQuery(&result.query)) {
      result.error = error_;
      return result;
    }
    if (!AtEnd()) {
      result.error = "trailing input at position " + std::to_string(Peek().pos);
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[cursor_]; }
  const Token& Advance() { return tokens_[cursor_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool Fail(const std::string& message) {
    error_ = message + " at position " + std::to_string(Peek().pos);
    return false;
  }

  bool ConsumeKeyword(const char* keyword) {
    if (Peek().type == TokenType::kIdent && Peek().upper == keyword) {
      Advance();
      return true;
    }
    return false;
  }

  bool ExpectKeyword(const char* keyword) {
    if (!ConsumeKeyword(keyword)) {
      return Fail(std::string("expected ") + keyword);
    }
    return true;
  }

  bool ConsumeSymbol(const char* symbol) {
    if (Peek().type == TokenType::kSymbol && Peek().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  bool ExpectSymbol(const char* symbol) {
    if (!ConsumeSymbol(symbol)) {
      return Fail(std::string("expected '") + symbol + "'");
    }
    return true;
  }

  bool ExpectIdent(std::string* out) {
    if (Peek().type != TokenType::kIdent) {
      return Fail("expected identifier");
    }
    *out = Advance().text;
    return true;
  }

  // table.column -> right:column (the engine's joined-table reference).
  std::string MapColumnRef(const std::string& ident, const std::string& fact_table) const {
    const size_t dot = ident.find('.');
    if (dot == std::string::npos) {
      return ident;
    }
    const std::string table = ident.substr(0, dot);
    const std::string column = ident.substr(dot + 1);
    if (table == fact_table) {
      return column;
    }
    return "right:" + column;
  }

  bool ParseQuery(Query* q) {
    if (!ExpectKeyword("SELECT")) {
      return false;
    }
    struct PendingItem {
      bool is_aggregate = false;
      AggFunc func = AggFunc::kSum;
      std::string column;
      std::string alias;
    };
    std::vector<PendingItem> items;
    do {
      PendingItem item;
      if (!ParseSelectItem(&item.is_aggregate, &item.func, &item.column, &item.alias)) {
        return false;
      }
      items.push_back(std::move(item));
    } while (ConsumeSymbol(","));

    if (!ExpectKeyword("FROM") || !ExpectIdent(&q->table)) {
      return false;
    }

    if (ConsumeKeyword("JOIN")) {
      Join join;
      if (!ExpectIdent(&join.right_table) || !ExpectKeyword("ON")) {
        return false;
      }
      std::string left;
      std::string right;
      if (!ExpectIdent(&left) || !ExpectSymbol("=") || !ExpectIdent(&right)) {
        return false;
      }
      join.left_column = MapColumnRef(left, q->table);
      join.right_column = MapColumnRef(right, q->table);
      if (join.left_column.rfind("right:", 0) == 0) {
        std::swap(join.left_column, join.right_column);
      }
      q->join = std::move(join);
    }

    if (ConsumeKeyword("WHERE")) {
      do {
        Predicate pred;
        std::string column;
        if (!ExpectIdent(&column)) {
          return false;
        }
        pred.column = MapColumnRef(column, q->table);
        if (!ParseCmpOp(&pred.op)) {
          return false;
        }
        if (Peek().type == TokenType::kInt) {
          pred.operand = Advance().int_value;
        } else if (Peek().type == TokenType::kString) {
          pred.operand = Advance().text;
        } else if (ConsumeSymbol("?")) {
          // Placeholder literal: slots are assigned left to right across the
          // WHERE clause, matching the bind order of Session::Prepare.
          pred.param = num_params_++;
        } else {
          return Fail("expected literal or '?'");
        }
        q->filters.push_back(std::move(pred));
      } while (ConsumeKeyword("AND"));
    }

    if (ConsumeKeyword("GROUP")) {
      if (!ExpectKeyword("BY")) {
        return false;
      }
      do {
        std::string column;
        if (!ExpectIdent(&column)) {
          return false;
        }
        q->group_by.push_back(MapColumnRef(column, q->table));
      } while (ConsumeSymbol(","));
    }

    // Materialize select items: bare identifiers must be group-by columns
    // (SQL projection of the key); aggregates become Aggregate entries.
    for (auto& item : items) {
      if (!item.is_aggregate) {
        const std::string mapped = MapColumnRef(item.column, q->table);
        const bool in_group = std::find(q->group_by.begin(), q->group_by.end(), mapped) !=
                              q->group_by.end();
        if (!in_group) {
          error_ = "bare column '" + item.column + "' must appear in GROUP BY";
          return false;
        }
        continue;  // group columns are always projected
      }
      Aggregate agg;
      agg.func = item.func;
      agg.column = item.column.empty() ? "" : MapColumnRef(item.column, q->table);
      if (!item.alias.empty()) {
        agg.alias = item.alias;
      } else {
        agg.alias = std::string(AggFuncName(item.func)) +
                    (agg.column.empty() ? "" : "_" + agg.column);
      }
      q->aggregates.push_back(std::move(agg));
    }
    if (q->aggregates.empty()) {
      error_ = "query has no aggregate functions";
      return false;
    }
    return true;
  }

  bool ParseSelectItem(bool* is_aggregate, AggFunc* func, std::string* column,
                       std::string* alias) {
    std::string head;
    if (!ExpectIdent(&head)) {
      return false;
    }
    const std::string upper = Lexer::Upper(head);
    static const std::pair<const char*, AggFunc> kAggs[] = {
        {"SUM", AggFunc::kSum},     {"COUNT", AggFunc::kCount},
        {"AVG", AggFunc::kAvg},     {"MIN", AggFunc::kMin},
        {"MAX", AggFunc::kMax},     {"VARIANCE", AggFunc::kVariance},
        {"VAR", AggFunc::kVariance}, {"STDDEV", AggFunc::kStddev}};
    const auto agg_it =
        std::find_if(std::begin(kAggs), std::end(kAggs),
                     [&](const auto& entry) { return upper == entry.first; });
    if (agg_it != std::end(kAggs) && Peek().type == TokenType::kSymbol &&
        Peek().text == "(") {
      Advance();  // '('
      *is_aggregate = true;
      *func = agg_it->second;
      if (ConsumeSymbol("*")) {
        if (*func != AggFunc::kCount) {
          return Fail("'*' argument is only valid for COUNT");
        }
        column->clear();
      } else if (!ExpectIdent(column)) {
        return false;
      }
      if (!ExpectSymbol(")")) {
        return false;
      }
    } else {
      *is_aggregate = false;
      *column = head;
    }
    if (ConsumeKeyword("AS")) {
      if (!ExpectIdent(alias)) {
        return false;
      }
    }
    return true;
  }

  bool ParseCmpOp(CmpOp* op) {
    if (Peek().type != TokenType::kSymbol) {
      return Fail("expected comparison operator");
    }
    const std::string symbol = Advance().text;
    if (symbol == "=") {
      *op = CmpOp::kEq;
    } else if (symbol == "!=" || symbol == "<>") {
      *op = CmpOp::kNe;
    } else if (symbol == "<") {
      *op = CmpOp::kLt;
    } else if (symbol == "<=") {
      *op = CmpOp::kLe;
    } else if (symbol == ">") {
      *op = CmpOp::kGt;
    } else if (symbol == ">=") {
      *op = CmpOp::kGe;
    } else {
      return Fail("unknown comparison operator '" + symbol + "'");
    }
    return true;
  }

  std::vector<Token> tokens_;
  size_t cursor_ = 0;
  int num_params_ = 0;
  std::string error_;
};

}  // namespace

ParseResult ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  if (!lexer.Run()) {
    ParseResult result;
    result.error = lexer.error();
    return result;
  }
  Parser parser(lexer.tokens());
  return parser.Run();
}

Query MustParseSql(const std::string& sql) {
  ParseResult result = ParseSql(sql);
  SEABED_CHECK_MSG(result.ok, "SQL parse error: " << result.error << " in: " << sql);
  return std::move(result.query);
}

}  // namespace seabed
