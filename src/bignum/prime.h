// Probabilistic primality testing and random prime generation.
//
// Used by Paillier key generation. Miller–Rabin with 20 rounds gives an error
// probability below 2^-40, which is standard for benchmark-grade keys.
#ifndef SEABED_SRC_BIGNUM_PRIME_H_
#define SEABED_SRC_BIGNUM_PRIME_H_

#include "src/bignum/bignum.h"
#include "src/common/rng.h"

namespace seabed {

// Miller–Rabin primality test with `rounds` random witnesses.
bool IsProbablePrime(const BigNum& n, Rng& rng, int rounds = 20);

// Generates a random prime with exactly `bits` bits.
BigNum GeneratePrime(Rng& rng, int bits);

}  // namespace seabed

#endif  // SEABED_SRC_BIGNUM_PRIME_H_
