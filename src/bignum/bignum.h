// Arbitrary-precision unsigned integers.
//
// This is the substrate for the Paillier baseline (src/crypto/paillier.h):
// CryptDB/Monomi-style systems encrypt measures with 2048-bit Paillier, so the
// baseline needs multi-precision modular arithmetic. The representation is a
// little-endian vector of 32-bit limbs (64-bit intermediates), which keeps
// Knuth's division algorithm simple and portable.
//
// Values are non-negative. Subtraction requires a >= b and checks it.
#ifndef SEABED_SRC_BIGNUM_BIGNUM_H_
#define SEABED_SRC_BIGNUM_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace seabed {

class BigNum {
 public:
  // Zero.
  BigNum() = default;

  // From a 64-bit value.
  explicit BigNum(uint64_t value);

  // Parses a decimal string (digits only). Aborts on malformed input.
  static BigNum FromDecimal(const std::string& text);

  // Uniform value with exactly `bits` bits (top bit set). bits >= 1.
  static BigNum RandomWithBits(Rng& rng, int bits);

  // Uniform value in [0, bound).
  static BigNum RandomBelow(Rng& rng, const BigNum& bound);

  // --- predicates & accessors -------------------------------------------------

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }

  // Number of significant bits (0 for zero).
  int BitLength() const;

  // Bit i (0 = least significant).
  bool Bit(int i) const;

  // Value of the low 64 bits.
  uint64_t Low64() const;

  // Comparison: negative / zero / positive like memcmp.
  int Compare(const BigNum& other) const;

  bool operator==(const BigNum& o) const { return Compare(o) == 0; }
  bool operator!=(const BigNum& o) const { return Compare(o) != 0; }
  bool operator<(const BigNum& o) const { return Compare(o) < 0; }
  bool operator<=(const BigNum& o) const { return Compare(o) <= 0; }
  bool operator>(const BigNum& o) const { return Compare(o) > 0; }
  bool operator>=(const BigNum& o) const { return Compare(o) >= 0; }

  // --- arithmetic -------------------------------------------------------------

  static BigNum Add(const BigNum& a, const BigNum& b);
  // Requires a >= b.
  static BigNum Sub(const BigNum& a, const BigNum& b);
  static BigNum Mul(const BigNum& a, const BigNum& b);
  // Quotient and remainder; b must be non-zero.
  static void DivMod(const BigNum& a, const BigNum& b, BigNum* quotient, BigNum* remainder);
  static BigNum Mod(const BigNum& a, const BigNum& m);

  static BigNum ShiftLeft(const BigNum& a, int bits);
  static BigNum ShiftRight(const BigNum& a, int bits);

  // (a * b) mod m.
  static BigNum ModMul(const BigNum& a, const BigNum& b, const BigNum& m);
  // (base ^ exp) mod m, square-and-multiply.
  static BigNum ModExp(const BigNum& base, const BigNum& exp, const BigNum& m);
  // Multiplicative inverse of a mod m; aborts if gcd(a, m) != 1.
  static BigNum ModInverse(const BigNum& a, const BigNum& m);
  // Greatest common divisor.
  static BigNum Gcd(const BigNum& a, const BigNum& b);
  // Least common multiple.
  static BigNum Lcm(const BigNum& a, const BigNum& b);

  BigNum operator+(const BigNum& o) const { return Add(*this, o); }
  BigNum operator-(const BigNum& o) const { return Sub(*this, o); }
  BigNum operator*(const BigNum& o) const { return Mul(*this, o); }
  BigNum operator%(const BigNum& o) const { return Mod(*this, o); }

  // Decimal rendering (for tests / debugging).
  std::string ToDecimal() const;

  // Serialized little-endian byte form (no padding) and its inverse.
  std::vector<uint8_t> ToBytes() const;
  static BigNum FromBytes(const uint8_t* data, size_t len);

  // Approximate byte size of the in-memory representation.
  size_t ByteSize() const { return limbs_.size() * sizeof(uint32_t); }

 private:
  void Trim();

  // Little-endian 32-bit limbs; empty vector encodes zero.
  std::vector<uint32_t> limbs_;
};

}  // namespace seabed

#endif  // SEABED_SRC_BIGNUM_BIGNUM_H_
