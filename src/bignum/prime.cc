#include "src/bignum/prime.h"

#include "src/common/check.h"

namespace seabed {
namespace {

// Small primes for cheap trial division before Miller–Rabin.
constexpr uint32_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113,
    127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197,
    199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

bool IsProbablePrime(const BigNum& n, Rng& rng, int rounds) {
  if (n < BigNum(2)) {
    return false;
  }
  for (uint32_t p : kSmallPrimes) {
    const BigNum bp(p);
    if (n == bp) {
      return true;
    }
    if (BigNum::Mod(n, bp).IsZero()) {
      return false;
    }
  }

  // Write n - 1 = d * 2^r with d odd.
  const BigNum n_minus_1 = BigNum::Sub(n, BigNum(1));
  BigNum d = n_minus_1;
  int r = 0;
  while (!d.IsOdd()) {
    d = BigNum::ShiftRight(d, 1);
    ++r;
  }

  const BigNum two(2);
  for (int round = 0; round < rounds; ++round) {
    // Witness a in [2, n-2].
    const BigNum a =
        BigNum::Add(BigNum::RandomBelow(rng, BigNum::Sub(n, BigNum(3))), two);
    BigNum x = BigNum::ModExp(a, d, n);
    if (x.IsOne() || x == n_minus_1) {
      continue;
    }
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = BigNum::ModMul(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

BigNum GeneratePrime(Rng& rng, int bits) {
  SEABED_CHECK(bits >= 8);
  for (;;) {
    BigNum candidate = BigNum::RandomWithBits(rng, bits);
    if (!candidate.IsOdd()) {
      candidate = BigNum::Add(candidate, BigNum(1));
    }
    if (IsProbablePrime(candidate, rng)) {
      return candidate;
    }
  }
}

}  // namespace seabed
