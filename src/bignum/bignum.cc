#include "src/bignum/bignum.h"

#include <algorithm>

#include "src/common/check.h"

namespace seabed {
namespace {

constexpr int kLimbBits = 32;
constexpr uint64_t kLimbBase = uint64_t{1} << kLimbBits;

}  // namespace

BigNum::BigNum(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value));
    if (value >> 32) {
      limbs_.push_back(static_cast<uint32_t>(value >> 32));
    }
  }
}

void BigNum::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigNum BigNum::FromDecimal(const std::string& text) {
  SEABED_CHECK(!text.empty());
  BigNum result;
  const BigNum ten(10);
  for (char c : text) {
    SEABED_CHECK_MSG(c >= '0' && c <= '9', "non-digit in decimal literal");
    result = Add(Mul(result, ten), BigNum(static_cast<uint64_t>(c - '0')));
  }
  return result;
}

BigNum BigNum::RandomWithBits(Rng& rng, int bits) {
  SEABED_CHECK(bits >= 1);
  BigNum r;
  const int limbs = (bits + kLimbBits - 1) / kLimbBits;
  r.limbs_.resize(limbs);
  for (int i = 0; i < limbs; ++i) {
    r.limbs_[i] = static_cast<uint32_t>(rng.Next());
  }
  // Clear bits above `bits`, then force the top bit on.
  const int top = (bits - 1) % kLimbBits;
  r.limbs_.back() &= (top == kLimbBits - 1) ? ~uint32_t{0} : ((uint32_t{1} << (top + 1)) - 1);
  r.limbs_.back() |= uint32_t{1} << top;
  r.Trim();
  return r;
}

BigNum BigNum::RandomBelow(Rng& rng, const BigNum& bound) {
  SEABED_CHECK(!bound.IsZero());
  const int bits = bound.BitLength();
  const int limbs = (bits + kLimbBits - 1) / kLimbBits;
  const int top = (bits - 1) % kLimbBits;
  const uint32_t mask = (top == kLimbBits - 1) ? ~uint32_t{0} : ((uint32_t{1} << (top + 1)) - 1);
  // Rejection sampling: expected < 2 iterations.
  for (;;) {
    BigNum r;
    r.limbs_.resize(limbs);
    for (int i = 0; i < limbs; ++i) {
      r.limbs_[i] = static_cast<uint32_t>(rng.Next());
    }
    r.limbs_.back() &= mask;
    r.Trim();
    if (r < bound) {
      return r;
    }
  }
}

int BigNum::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  const uint32_t top = limbs_.back();
  return static_cast<int>(limbs_.size() - 1) * kLimbBits + (32 - __builtin_clz(top));
}

bool BigNum::Bit(int i) const {
  SEABED_CHECK(i >= 0);
  const size_t limb = static_cast<size_t>(i) / kLimbBits;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % kLimbBits)) & 1;
}

uint64_t BigNum::Low64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) {
    v = limbs_[0];
  }
  if (limbs_.size() > 1) {
    v |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return v;
}

int BigNum::Compare(const BigNum& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigNum BigNum::Add(const BigNum& a, const BigNum& b) {
  BigNum r;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  r.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) {
      sum += a.limbs_[i];
    }
    if (i < b.limbs_.size()) {
      sum += b.limbs_[i];
    }
    r.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> kLimbBits;
  }
  r.limbs_[n] = static_cast<uint32_t>(carry);
  r.Trim();
  return r;
}

BigNum BigNum::Sub(const BigNum& a, const BigNum& b) {
  SEABED_CHECK_MSG(a >= b, "BigNum::Sub underflow");
  BigNum r;
  r.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.limbs_[i] = static_cast<uint32_t>(diff);
  }
  r.Trim();
  return r;
}

BigNum BigNum::Mul(const BigNum& a, const BigNum& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigNum();
  }
  BigNum r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      const uint64_t cur = static_cast<uint64_t>(r.limbs_[i + j]) + ai * b.limbs_[j] + carry;
      r.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> kLimbBits;
    }
    size_t k = i + b.limbs_.size();
    while (carry != 0) {
      const uint64_t cur = static_cast<uint64_t>(r.limbs_[k]) + carry;
      r.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  r.Trim();
  return r;
}

BigNum BigNum::ShiftLeft(const BigNum& a, int bits) {
  SEABED_CHECK(bits >= 0);
  if (a.IsZero() || bits == 0) {
    return a;
  }
  const int limb_shift = bits / kLimbBits;
  const int bit_shift = bits % kLimbBits;
  BigNum r;
  r.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    const uint64_t v = static_cast<uint64_t>(a.limbs_[i]) << bit_shift;
    r.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    r.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> kLimbBits);
  }
  r.Trim();
  return r;
}

BigNum BigNum::ShiftRight(const BigNum& a, int bits) {
  SEABED_CHECK(bits >= 0);
  if (a.IsZero() || bits == 0) {
    return a;
  }
  const int limb_shift = bits / kLimbBits;
  const int bit_shift = bits % kLimbBits;
  if (static_cast<size_t>(limb_shift) >= a.limbs_.size()) {
    return BigNum();
  }
  BigNum r;
  r.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < r.limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(a.limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<uint64_t>(a.limbs_[i + limb_shift + 1]) << (kLimbBits - bit_shift);
    }
    r.limbs_[i] = static_cast<uint32_t>(v);
  }
  r.Trim();
  return r;
}

void BigNum::DivMod(const BigNum& a, const BigNum& b, BigNum* quotient, BigNum* remainder) {
  SEABED_CHECK_MSG(!b.IsZero(), "division by zero");
  if (a < b) {
    if (quotient != nullptr) {
      *quotient = BigNum();
    }
    if (remainder != nullptr) {
      *remainder = a;
    }
    return;
  }
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const uint64_t d = b.limbs_[0];
    BigNum q;
    q.limbs_.resize(a.limbs_.size());
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      const uint64_t cur = (rem << kLimbBits) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Trim();
    if (quotient != nullptr) {
      *quotient = std::move(q);
    }
    if (remainder != nullptr) {
      *remainder = BigNum(rem);
    }
    return;
  }

  // Knuth algorithm D. Normalize so the top limb of the divisor has its high
  // bit set.
  const int shift = kLimbBits - (b.BitLength() % kLimbBits == 0
                                     ? kLimbBits
                                     : b.BitLength() % kLimbBits);
  const BigNum u = ShiftLeft(a, shift);
  const BigNum v = ShiftLeft(b, shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;

  std::vector<uint32_t> un(u.limbs_);
  un.resize(u.limbs_.size() + 1, 0);
  const std::vector<uint32_t>& vn = v.limbs_;

  BigNum q;
  q.limbs_.assign(m + 1, 0);

  const uint64_t v_top = vn[n - 1];
  const uint64_t v_next = vn[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    const uint64_t numerator = (static_cast<uint64_t>(un[j + n]) << kLimbBits) | un[j + n - 1];
    uint64_t qhat = numerator / v_top;
    uint64_t rhat = numerator % v_top;
    while (qhat >= kLimbBase ||
           qhat * v_next > ((rhat << kLimbBits) | un[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= kLimbBase) {
        break;
      }
    }
    // Multiply-subtract qhat * v from un[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t p = qhat * vn[i] + carry;
      carry = p >> kLimbBits;
      const int64_t t = static_cast<int64_t>(un[i + j]) - static_cast<int64_t>(p & 0xffffffffULL) - borrow;
      un[i + j] = static_cast<uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const int64_t t = static_cast<int64_t>(un[j + n]) - static_cast<int64_t>(carry) - borrow;
    un[j + n] = static_cast<uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add v back.
      --qhat;
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t s = static_cast<uint64_t>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<uint32_t>(s);
        c = s >> kLimbBits;
      }
      un[j + n] = static_cast<uint32_t>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }
  q.Trim();

  if (quotient != nullptr) {
    *quotient = std::move(q);
  }
  if (remainder != nullptr) {
    BigNum r;
    r.limbs_.assign(un.begin(), un.begin() + n);
    r.Trim();
    *remainder = ShiftRight(r, shift);
  }
}

BigNum BigNum::Mod(const BigNum& a, const BigNum& m) {
  BigNum r;
  DivMod(a, m, nullptr, &r);
  return r;
}

BigNum BigNum::ModMul(const BigNum& a, const BigNum& b, const BigNum& m) {
  return Mod(Mul(a, b), m);
}

BigNum BigNum::ModExp(const BigNum& base, const BigNum& exp, const BigNum& m) {
  SEABED_CHECK(!m.IsZero());
  if (m.IsOne()) {
    return BigNum();
  }
  BigNum result(1);
  BigNum b = Mod(base, m);
  const int bits = exp.BitLength();
  for (int i = 0; i < bits; ++i) {
    if (exp.Bit(i)) {
      result = ModMul(result, b, m);
    }
    if (i + 1 < bits) {
      b = ModMul(b, b, m);
    }
  }
  return result;
}

BigNum BigNum::Gcd(const BigNum& a, const BigNum& b) {
  BigNum x = a;
  BigNum y = b;
  while (!y.IsZero()) {
    BigNum r = Mod(x, y);
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigNum BigNum::Lcm(const BigNum& a, const BigNum& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigNum();
  }
  BigNum g = Gcd(a, b);
  BigNum q;
  DivMod(a, g, &q, nullptr);
  return Mul(q, b);
}

BigNum BigNum::ModInverse(const BigNum& a, const BigNum& m) {
  // Extended Euclid, tracking only the coefficient of `a`. Coefficients can go
  // negative, so carry a sign flag alongside each magnitude.
  BigNum r0 = Mod(a, m);
  BigNum r1 = m;
  BigNum s0(1);
  bool s0_neg = false;
  BigNum s1;
  bool s1_neg = false;

  while (!r1.IsZero()) {
    BigNum q;
    BigNum r2;
    DivMod(r0, r1, &q, &r2);
    // s2 = s0 - q * s1 (signed).
    const BigNum qs1 = Mul(q, s1);
    BigNum s2;
    bool s2_neg;
    if (s0_neg == s1_neg) {
      // s0 and q*s1 have the same sign: subtract magnitudes.
      if (s0 >= qs1) {
        s2 = Sub(s0, qs1);
        s2_neg = s0_neg;
      } else {
        s2 = Sub(qs1, s0);
        s2_neg = !s0_neg;
      }
    } else {
      s2 = Add(s0, qs1);
      s2_neg = s0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    s0 = std::move(s1);
    s0_neg = s1_neg;
    s1 = std::move(s2);
    s1_neg = s2_neg;
  }
  SEABED_CHECK_MSG(r0.IsOne(), "ModInverse: arguments are not coprime");
  if (s0_neg) {
    return Sub(m, Mod(s0, m));
  }
  return Mod(s0, m);
}

std::string BigNum::ToDecimal() const {
  if (IsZero()) {
    return "0";
  }
  BigNum v = *this;
  const BigNum billion(1000000000ULL);
  std::vector<uint32_t> chunks;
  while (!v.IsZero()) {
    BigNum q;
    BigNum r;
    DivMod(v, billion, &q, &r);
    chunks.push_back(static_cast<uint32_t>(r.Low64()));
    v = std::move(q);
  }
  std::string out = std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(9 - part.size(), '0') + part;
  }
  return out;
}

std::vector<uint8_t> BigNum::ToBytes() const {
  std::vector<uint8_t> out;
  out.reserve(limbs_.size() * 4);
  for (uint32_t limb : limbs_) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<uint8_t>(limb >> (8 * i)));
    }
  }
  while (!out.empty() && out.back() == 0) {
    out.pop_back();
  }
  return out;
}

BigNum BigNum::FromBytes(const uint8_t* data, size_t len) {
  BigNum r;
  r.limbs_.assign((len + 3) / 4, 0);
  for (size_t i = 0; i < len; ++i) {
    r.limbs_[i / 4] |= static_cast<uint32_t>(data[i]) << (8 * (i % 4));
  }
  r.Trim();
  return r;
}

}  // namespace seabed
