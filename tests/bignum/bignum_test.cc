#include "src/bignum/bignum.h"

#include <gtest/gtest.h>

namespace seabed {
namespace {

TEST(BigNumTest, ConstructionAndLow64) {
  EXPECT_TRUE(BigNum().IsZero());
  EXPECT_EQ(BigNum(0).Low64(), 0u);
  EXPECT_EQ(BigNum(42).Low64(), 42u);
  EXPECT_EQ(BigNum(~uint64_t{0}).Low64(), ~uint64_t{0});
}

TEST(BigNumTest, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "9", "10", "4294967296", "18446744073709551616",
                         "123456789012345678901234567890123456789"};
  for (const char* text : cases) {
    EXPECT_EQ(BigNum::FromDecimal(text).ToDecimal(), text) << text;
  }
}

TEST(BigNumTest, CompareOrdering) {
  const BigNum a = BigNum::FromDecimal("99999999999999999999");
  const BigNum b = BigNum::FromDecimal("100000000000000000000");
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, a);
  EXPECT_LE(a, a);
  EXPECT_NE(a, b);
}

TEST(BigNumTest, AddSubInverse) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const BigNum a = BigNum::RandomWithBits(rng, 200);
    const BigNum b = BigNum::RandomWithBits(rng, 150);
    EXPECT_EQ(BigNum::Sub(BigNum::Add(a, b), b), a);
    EXPECT_EQ(BigNum::Sub(BigNum::Add(a, b), a), b);
  }
}

TEST(BigNumTest, AddCarryPropagation) {
  // 2^64 - 1 + 1 = 2^64.
  const BigNum a(~uint64_t{0});
  const BigNum sum = BigNum::Add(a, BigNum(1));
  EXPECT_EQ(sum.ToDecimal(), "18446744073709551616");
}

TEST(BigNumTest, MulKnownValues) {
  EXPECT_EQ(BigNum::Mul(BigNum(0), BigNum(12345)).ToDecimal(), "0");
  EXPECT_EQ(BigNum::Mul(BigNum(12345), BigNum(6789)).ToDecimal(), "83810205");
  const BigNum big = BigNum::FromDecimal("340282366920938463463374607431768211456");  // 2^128
  EXPECT_EQ(BigNum::Mul(big, big).ToDecimal(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639936");
}

TEST(BigNumTest, DivModReconstruction) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const BigNum a = BigNum::RandomWithBits(rng, 30 + static_cast<int>(rng.Below(300)));
    const BigNum b = BigNum::RandomWithBits(rng, 8 + static_cast<int>(rng.Below(200)));
    BigNum q;
    BigNum r;
    BigNum::DivMod(a, b, &q, &r);
    EXPECT_LT(r, b);
    EXPECT_EQ(BigNum::Add(BigNum::Mul(q, b), r), a);
  }
}

TEST(BigNumTest, DivModSmallerDividend) {
  BigNum q;
  BigNum r;
  BigNum::DivMod(BigNum(5), BigNum(7), &q, &r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r.Low64(), 5u);
}

TEST(BigNumTest, DivModSingleLimbDivisor) {
  const BigNum a = BigNum::FromDecimal("123456789012345678901234567890");
  BigNum q;
  BigNum r;
  BigNum::DivMod(a, BigNum(97), &q, &r);
  EXPECT_EQ(BigNum::Add(BigNum::Mul(q, BigNum(97)), r), a);
  EXPECT_LT(r.Low64(), 97u);
}

TEST(BigNumTest, ShiftRoundTrip) {
  Rng rng(9);
  for (int shift : {1, 31, 32, 33, 64, 100}) {
    const BigNum a = BigNum::RandomWithBits(rng, 123);
    EXPECT_EQ(BigNum::ShiftRight(BigNum::ShiftLeft(a, shift), shift), a) << shift;
  }
}

TEST(BigNumTest, ShiftRightBelowZeroBits) {
  EXPECT_TRUE(BigNum::ShiftRight(BigNum(5), 3).IsZero());
  EXPECT_EQ(BigNum::ShiftRight(BigNum(8), 3).Low64(), 1u);
}

TEST(BigNumTest, BitLengthAndBit) {
  EXPECT_EQ(BigNum().BitLength(), 0);
  EXPECT_EQ(BigNum(1).BitLength(), 1);
  EXPECT_EQ(BigNum(255).BitLength(), 8);
  EXPECT_EQ(BigNum(256).BitLength(), 9);
  const BigNum x(0b1010);
  EXPECT_FALSE(x.Bit(0));
  EXPECT_TRUE(x.Bit(1));
  EXPECT_FALSE(x.Bit(2));
  EXPECT_TRUE(x.Bit(3));
  EXPECT_FALSE(x.Bit(100));
}

TEST(BigNumTest, ModExpFermat) {
  // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
  const BigNum p(1000000007);
  for (uint64_t a : {2ull, 3ull, 999999999ull}) {
    EXPECT_TRUE(BigNum::ModExp(BigNum(a), BigNum(1000000006), p).IsOne()) << a;
  }
}

TEST(BigNumTest, ModExpEdgeCases) {
  EXPECT_TRUE(BigNum::ModExp(BigNum(5), BigNum(0), BigNum(7)).IsOne());
  EXPECT_TRUE(BigNum::ModExp(BigNum(5), BigNum(100), BigNum(1)).IsZero());
  EXPECT_EQ(BigNum::ModExp(BigNum(2), BigNum(10), BigNum(10000)).Low64(), 1024u);
}

TEST(BigNumTest, ModInverseProperty) {
  Rng rng(13);
  const BigNum m = BigNum::FromDecimal("1000000000000000003");  // prime
  for (int i = 0; i < 30; ++i) {
    const BigNum a = BigNum::Add(BigNum::RandomBelow(rng, BigNum::Sub(m, BigNum(1))), BigNum(1));
    const BigNum inv = BigNum::ModInverse(a, m);
    EXPECT_TRUE(BigNum::ModMul(a, inv, m).IsOne());
  }
}

TEST(BigNumTest, GcdLcm) {
  EXPECT_EQ(BigNum::Gcd(BigNum(12), BigNum(18)).Low64(), 6u);
  EXPECT_EQ(BigNum::Gcd(BigNum(17), BigNum(13)).Low64(), 1u);
  EXPECT_EQ(BigNum::Gcd(BigNum(0), BigNum(5)).Low64(), 5u);
  EXPECT_EQ(BigNum::Lcm(BigNum(4), BigNum(6)).Low64(), 12u);
  EXPECT_TRUE(BigNum::Lcm(BigNum(0), BigNum(6)).IsZero());
}

TEST(BigNumTest, BytesRoundTrip) {
  Rng rng(17);
  for (int bits : {1, 8, 9, 31, 32, 33, 64, 65, 257}) {
    const BigNum a = BigNum::RandomWithBits(rng, bits);
    const auto bytes = a.ToBytes();
    EXPECT_EQ(BigNum::FromBytes(bytes.data(), bytes.size()), a) << bits;
  }
  EXPECT_TRUE(BigNum::FromBytes(nullptr, 0).IsZero());
}

TEST(BigNumTest, RandomWithBitsHasExactBitLength) {
  Rng rng(19);
  for (int bits : {1, 2, 17, 32, 33, 512, 1024}) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(BigNum::RandomWithBits(rng, bits).BitLength(), bits);
    }
  }
}

TEST(BigNumTest, RandomBelowStaysBelow) {
  Rng rng(23);
  const BigNum bound = BigNum::FromDecimal("123456789012345678901");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigNum::RandomBelow(rng, bound), bound);
  }
}

TEST(BigNumTest, OperatorSugar) {
  const BigNum a(100);
  const BigNum b(7);
  EXPECT_EQ((a + b).Low64(), 107u);
  EXPECT_EQ((a - b).Low64(), 93u);
  EXPECT_EQ((a * b).Low64(), 700u);
  EXPECT_EQ((a % b).Low64(), 2u);
}

}  // namespace
}  // namespace seabed
