#include "src/bignum/prime.h"

#include <gtest/gtest.h>

namespace seabed {
namespace {

TEST(PrimeTest, KnownSmallPrimes) {
  Rng rng(1);
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 97ull, 251ull, 65537ull}) {
    EXPECT_TRUE(IsProbablePrime(BigNum(p), rng)) << p;
  }
}

TEST(PrimeTest, KnownComposites) {
  Rng rng(2);
  for (uint64_t c : {0ull, 1ull, 4ull, 100ull, 65536ull, 561ull /* Carmichael */,
                     41041ull /* Carmichael */}) {
    EXPECT_FALSE(IsProbablePrime(BigNum(c), rng)) << c;
  }
}

TEST(PrimeTest, LargeKnownPrime) {
  Rng rng(3);
  // 2^89 - 1 is a Mersenne prime.
  const BigNum m89 = BigNum::Sub(BigNum::ShiftLeft(BigNum(1), 89), BigNum(1));
  EXPECT_TRUE(IsProbablePrime(m89, rng));
  // 2^67 - 1 is famously composite (193707721 * 761838257287).
  const BigNum m67 = BigNum::Sub(BigNum::ShiftLeft(BigNum(1), 67), BigNum(1));
  EXPECT_FALSE(IsProbablePrime(m67, rng));
}

TEST(PrimeTest, GeneratePrimeHasRequestedBits) {
  Rng rng(4);
  for (int bits : {16, 32, 64, 128}) {
    const BigNum p = GeneratePrime(rng, bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(IsProbablePrime(p, rng));
  }
}

TEST(PrimeTest, GeneratedPrimesAreOdd) {
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(GeneratePrime(rng, 48).IsOdd());
  }
}

}  // namespace
}  // namespace seabed
