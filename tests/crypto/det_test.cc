#include "src/crypto/det.h"

#include <gtest/gtest.h>

#include <set>

namespace seabed {
namespace {

TEST(DetIntTest, RoundTrip) {
  const DetInt det(AesKey::FromSeed(1));
  for (uint64_t m : {0ull, 1ull, 42ull, 1234567890123ull, ~0ull}) {
    EXPECT_EQ(det.Decrypt(det.Encrypt(m)), m) << m;
  }
}

TEST(DetIntTest, Deterministic) {
  const DetInt a(AesKey::FromSeed(2));
  const DetInt b(AesKey::FromSeed(2));
  EXPECT_EQ(a.Encrypt(999), b.Encrypt(999));
}

TEST(DetIntTest, IsPermutation) {
  const DetInt det(AesKey::FromSeed(3));
  std::set<uint64_t> outputs;
  for (uint64_t m = 0; m < 4096; ++m) {
    outputs.insert(det.Encrypt(m));
  }
  EXPECT_EQ(outputs.size(), 4096u);  // injective on the sample
}

TEST(DetIntTest, KeysMatter) {
  const DetInt a(AesKey::FromSeed(4));
  const DetInt b(AesKey::FromSeed(5));
  EXPECT_NE(a.Encrypt(7), b.Encrypt(7));
}

TEST(DetIntTest, CiphertextNotIdentity) {
  const DetInt det(AesKey::FromSeed(6));
  int fixed = 0;
  for (uint64_t m = 0; m < 1000; ++m) {
    fixed += det.Encrypt(m) == m;
  }
  EXPECT_LE(fixed, 1);
}

TEST(DetTokenTest, EqualStringsEqualTags) {
  const DetToken det(AesKey::FromSeed(7));
  EXPECT_EQ(det.Tag("Canada"), det.Tag("Canada"));
  EXPECT_EQ(det.Tag(""), det.Tag(""));
}

TEST(DetTokenTest, DistinctStringsDistinctTags) {
  const DetToken det(AesKey::FromSeed(8));
  std::set<uint64_t> tags;
  const char* values[] = {"", "a", "b", "ab", "ba", "Canada", "canada", "USA",
                          "a longer string that spans multiple AES blocks......"};
  for (const char* v : values) {
    tags.insert(det.Tag(v));
  }
  EXPECT_EQ(tags.size(), std::size(values));
}

TEST(DetTokenTest, LengthExtensionResistance) {
  // "ab" + "" must differ from "a" + "b"-style prefix confusion: the length
  // block breaks naive padding collisions.
  const DetToken det(AesKey::FromSeed(9));
  EXPECT_NE(det.Tag(std::string("ab\0", 3)), det.Tag("ab"));
  EXPECT_NE(det.Tag(std::string(16, 'x')), det.Tag(std::string(17, 'x')));
}

TEST(DetTokenTest, KeysMatter) {
  const DetToken a(AesKey::FromSeed(10));
  const DetToken b(AesKey::FromSeed(11));
  EXPECT_NE(a.Tag("hello"), b.Tag("hello"));
}

}  // namespace
}  // namespace seabed
