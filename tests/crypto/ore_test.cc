#include "src/crypto/ore.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace seabed {
namespace {

int Sign(uint64_t a, uint64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

TEST(OreTest, EqualPlaintextsCompareEqual) {
  const Ore ore(AesKey::FromSeed(1));
  for (uint64_t m : {0ull, 1ull, 77ull, ~0ull}) {
    const OreCiphertext a = ore.Encrypt(m);
    const OreCiphertext b = ore.Encrypt(m);
    EXPECT_EQ(a, b);  // deterministic scheme
    EXPECT_EQ(Ore::Compare(a, b).order, 0);
    EXPECT_EQ(Ore::Compare(a, b).inddiff, 64);
  }
}

TEST(OreTest, OrderMatchesPlaintextRandomPairs) {
  const Ore ore(AesKey::FromSeed(2));
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const uint64_t x = rng.Next() >> (rng.Below(64));
    const uint64_t y = rng.Next() >> (rng.Below(64));
    EXPECT_EQ(Ore::Compare(ore.Encrypt(x), ore.Encrypt(y)).order, Sign(x, y))
        << x << " vs " << y;
  }
}

TEST(OreTest, AdjacentValues) {
  const Ore ore(AesKey::FromSeed(3));
  for (uint64_t m : {0ull, 1ull, 255ull, 256ull, (1ull << 32) - 1, 1ull << 32}) {
    EXPECT_EQ(Ore::Compare(ore.Encrypt(m), ore.Encrypt(m + 1)).order, -1) << m;
    EXPECT_EQ(Ore::Compare(ore.Encrypt(m + 1), ore.Encrypt(m)).order, 1) << m;
  }
}

TEST(OreTest, InddiffLeakageIsFirstDifferingBit) {
  const Ore ore(AesKey::FromSeed(4));
  // 0b1000... vs 0b0000...: differ at bit 0 (MSB).
  EXPECT_EQ(Ore::Compare(ore.Encrypt(1ull << 63), ore.Encrypt(0)).inddiff, 0);
  // Values differing only in the LSB: inddiff = 63.
  EXPECT_EQ(Ore::Compare(ore.Encrypt(2), ore.Encrypt(3)).inddiff, 63);
  // 12 = 0b1100, 10 = 0b1010: first difference at bit 61 (the 4's place).
  EXPECT_EQ(Ore::Compare(ore.Encrypt(12), ore.Encrypt(10)).inddiff, 61);
}

TEST(OreTest, LessHelpers) {
  const Ore ore(AesKey::FromSeed(5));
  const OreCiphertext a = ore.Encrypt(10);
  const OreCiphertext b = ore.Encrypt(20);
  EXPECT_TRUE(Ore::Less(a, b));
  EXPECT_FALSE(Ore::Less(b, a));
  EXPECT_TRUE(Ore::LessEq(a, a));
  EXPECT_TRUE(Ore::LessEq(a, b));
}

TEST(OreTest, TransitivityOnSortedSample) {
  const Ore ore(AesKey::FromSeed(6));
  Rng rng(6);
  std::vector<uint64_t> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(rng.Next());
  }
  std::vector<OreCiphertext> cts;
  for (uint64_t v : values) {
    cts.push_back(ore.Encrypt(v));
  }
  std::sort(values.begin(), values.end());
  std::sort(cts.begin(), cts.end(),
            [](const OreCiphertext& a, const OreCiphertext& b) { return Ore::Less(a, b); });
  // Sorting ciphertexts by ORE order must match sorting plaintexts.
  const Ore same_key(AesKey::FromSeed(6));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(cts[i], same_key.Encrypt(values[i]));
  }
}

TEST(OreTest, PackedAccessors) {
  OreCiphertext ct;
  for (int i = 0; i < 64; ++i) {
    ct.SetU(i, static_cast<uint8_t>(i % 3));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(ct.U(i), i % 3);
  }
}

class OreBitPositionTest : public ::testing::TestWithParam<int> {};

TEST_P(OreBitPositionTest, SingleBitDifference) {
  const int bit = GetParam();
  const Ore ore(AesKey::FromSeed(7));
  const uint64_t base = 0xf0f0f0f0f0f0f0f0ULL & ~(1ull << (63 - bit));
  const uint64_t with_bit = base | (1ull << (63 - bit));
  const OreComparison cmp = Ore::Compare(ore.Encrypt(with_bit), ore.Encrypt(base));
  EXPECT_EQ(cmp.order, 1);
  EXPECT_EQ(cmp.inddiff, bit);
}

INSTANTIATE_TEST_SUITE_P(Bits, OreBitPositionTest, ::testing::Values(0, 1, 7, 8, 31, 32, 62, 63));

}  // namespace
}  // namespace seabed
