#include "src/crypto/aes128.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/bytes.h"
#include "src/common/rng.h"

namespace seabed {
namespace {

TEST(Aes128Test, Fips197AppendixCVector) {
  // FIPS-197 Appendix C.1: AES-128 known-answer test.
  AesKey key;
  for (int i = 0; i < 16; ++i) {
    key.bytes[i] = static_cast<uint8_t>(i);
  }
  const uint8_t plaintext[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  const Aes128 aes(key);
  uint8_t out[16];
  aes.EncryptBlock(plaintext, out);
  EXPECT_EQ(ToHex(out, 16), ToHex(expected, 16));
}

TEST(Aes128Test, SunMicrosystemsVector) {
  // Classic AES-128 vector: key = 2b7e1516..., pt = 6bc1bee2...
  AesKey key;
  const uint8_t key_bytes[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  std::memcpy(key.bytes.data(), key_bytes, 16);
  const uint8_t plaintext[16] = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
                                 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a};
  const uint8_t expected[16] = {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60,
                                0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66, 0xef, 0x97};
  const Aes128 aes(key);
  uint8_t out[16];
  aes.EncryptBlock(plaintext, out);
  EXPECT_EQ(ToHex(out, 16), ToHex(expected, 16));
}

TEST(Aes128Test, InPlaceEncryptionAllowed) {
  const Aes128 aes(AesKey::FromSeed(1));
  uint8_t a[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  uint8_t b[16];
  std::memcpy(b, a, 16);
  uint8_t expected[16];
  aes.EncryptBlock(a, expected);
  aes.EncryptBlock(b, b);  // in place
  EXPECT_EQ(ToHex(b, 16), ToHex(expected, 16));
}

TEST(Aes128Test, CounterWordsDiffer) {
  const Aes128 aes(AesKey::FromSeed(2));
  uint64_t w0[2];
  uint64_t w1[2];
  aes.EncryptCounter(0, w0);
  aes.EncryptCounter(1, w1);
  EXPECT_NE(w0[0], w1[0]);
  EXPECT_NE(w0[1], w1[1]);
  EXPECT_NE(w0[0], w0[1]);
}

TEST(Aes128Test, CounterIsDeterministic) {
  const Aes128 a(AesKey::FromSeed(3));
  const Aes128 b(AesKey::FromSeed(3));
  uint64_t wa[2];
  uint64_t wb[2];
  for (uint64_t ctr : {0ull, 1ull, 12345ull, ~0ull}) {
    a.EncryptCounter(ctr, wa);
    b.EncryptCounter(ctr, wb);
    EXPECT_EQ(wa[0], wb[0]);
    EXPECT_EQ(wa[1], wb[1]);
  }
}

TEST(Aes128Test, DistinctKeysProduceDistinctStreams) {
  const Aes128 a(AesKey::FromSeed(4));
  const Aes128 b(AesKey::FromSeed(5));
  uint64_t wa[2];
  uint64_t wb[2];
  a.EncryptCounter(7, wa);
  b.EncryptCounter(7, wb);
  EXPECT_NE(wa[0], wb[0]);
}

TEST(Aes128Test, PortableMatchesHardwarePath) {
  const AesKey key = AesKey::FromSeed(77);
  const Aes128 fast(key);
  const Aes128 portable(key, /*force_portable=*/true);
  EXPECT_FALSE(portable.using_hardware());
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    uint8_t block[16];
    for (auto& b : block) {
      b = static_cast<uint8_t>(rng.Next());
    }
    uint8_t a[16];
    uint8_t b[16];
    fast.EncryptBlock(block, a);
    portable.EncryptBlock(block, b);
    EXPECT_EQ(ToHex(a, 16), ToHex(b, 16));
  }
}

TEST(Aes128Test, KeyFromSeedIsStable) {
  const AesKey k1 = AesKey::FromSeed(99);
  const AesKey k2 = AesKey::FromSeed(99);
  EXPECT_EQ(k1.bytes, k2.bytes);
  EXPECT_NE(AesKey::FromSeed(100).bytes, k1.bytes);
}

}  // namespace
}  // namespace seabed
