#include "src/crypto/ashe.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace seabed {
namespace {

TEST(AsheTest, SingleValueRoundTrip) {
  const Ashe ashe(AesKey::FromSeed(1));
  for (uint64_t m : {0ull, 1ull, 12345ull, ~0ull}) {
    const AsheCiphertext ct = ashe.Encrypt(m, 1);
    EXPECT_EQ(ashe.Decrypt(ct), m);
  }
}

TEST(AsheTest, CellRoundTrip) {
  const Ashe ashe(AesKey::FromSeed(2));
  for (uint64_t id = 1; id <= 100; ++id) {
    const uint64_t cipher = ashe.EncryptCell(id * 7, id);
    EXPECT_EQ(ashe.DecryptCell(cipher, id), id * 7);
  }
}

TEST(AsheTest, CiphertextLooksUnlikePlaintext) {
  const Ashe ashe(AesKey::FromSeed(3));
  int equal = 0;
  for (uint64_t id = 1; id <= 100; ++id) {
    equal += ashe.EncryptCell(42, id) == 42;
  }
  EXPECT_LE(equal, 1);
}

TEST(AsheTest, HomomorphicPairSum) {
  const Ashe ashe(AesKey::FromSeed(4));
  AsheCiphertext a = ashe.Encrypt(100, 1);
  const AsheCiphertext b = ashe.Encrypt(23, 2);
  a.Accumulate(b);
  EXPECT_EQ(ashe.Decrypt(a), 123u);
}

TEST(AsheTest, ContiguousRangeSumDecryptsWithOneRun) {
  const Ashe ashe(AesKey::FromSeed(5));
  Rng rng(5);
  AsheCiphertext acc;
  uint64_t expected = 0;
  for (uint64_t id = 1; id <= 5000; ++id) {
    const uint64_t m = rng.Below(1000);
    expected += m;
    acc.value += ashe.EncryptCell(m, id);
    acc.ids.Add(id);
  }
  EXPECT_EQ(acc.ids.NumRuns(), 1u);
  EXPECT_EQ(Ashe::DecryptPrfCalls(acc), 2u);
  EXPECT_EQ(ashe.Decrypt(acc), expected);
}

TEST(AsheTest, SparseSelectionSum) {
  const Ashe ashe(AesKey::FromSeed(6));
  Rng rng(6);
  AsheCiphertext acc;
  uint64_t expected = 0;
  for (uint64_t id = 1; id <= 2000; ++id) {
    const uint64_t m = rng.Below(100);
    if (rng.Chance(0.5)) {
      expected += m;
      acc.value += ashe.EncryptCell(m, id);
      acc.ids.Add(id);
    } else {
      ashe.EncryptCell(m, id);  // encrypted but not selected
    }
  }
  EXPECT_EQ(ashe.Decrypt(acc), expected);
}

TEST(AsheTest, SignedValuesViaTwosComplement) {
  const Ashe ashe(AesKey::FromSeed(7));
  AsheCiphertext acc;
  acc.value += ashe.EncryptCell(static_cast<uint64_t>(int64_t{-500}), 1);
  acc.ids.Add(1);
  acc.value += ashe.EncryptCell(static_cast<uint64_t>(int64_t{200}), 2);
  acc.ids.Add(2);
  EXPECT_EQ(static_cast<int64_t>(ashe.Decrypt(acc)), -300);
}

TEST(AsheTest, MultisetDoubleAddCountsTwice) {
  const Ashe ashe(AesKey::FromSeed(8));
  AsheCiphertext a = ashe.Encrypt(10, 1);
  AsheCiphertext b = ashe.Encrypt(10, 1);  // same id, added twice
  a.Accumulate(b);
  EXPECT_EQ(ashe.Decrypt(a), 20u);
}

TEST(AsheTest, JoinStyleRepeatedRightRow) {
  // A right-table row joined against k left rows is accumulated k times;
  // multiset semantics must recover k * m.
  const Ashe ashe(AesKey::FromSeed(9));
  const uint64_t cipher = ashe.EncryptCell(77, 5);
  AsheCiphertext acc;
  for (int i = 0; i < 13; ++i) {
    acc.value += cipher;
    acc.ids.Add(5);
  }
  EXPECT_EQ(ashe.Decrypt(acc), 77u * 13);
}

TEST(AsheTest, PartitionedAggregationMatchesSequential) {
  const Ashe ashe(AesKey::FromSeed(10));
  Rng rng(10);
  std::vector<uint64_t> values(999);
  for (auto& v : values) {
    v = rng.Below(10000);
  }
  // Sequential.
  AsheCiphertext all;
  uint64_t expected = 0;
  for (uint64_t i = 0; i < values.size(); ++i) {
    all.value += ashe.EncryptCell(values[i], i + 1);
    all.ids.Add(i + 1);
    expected += values[i];
  }
  // Three partitions merged.
  AsheCiphertext parts[3];
  for (uint64_t i = 0; i < values.size(); ++i) {
    AsheCiphertext& p = parts[i % 3];
    p.value += ashe.EncryptCell(values[i], i + 1);
    p.ids.Add(i + 1);
  }
  AsheCiphertext merged = parts[0];
  merged.Accumulate(parts[1]);
  merged.Accumulate(parts[2]);
  EXPECT_EQ(ashe.Decrypt(merged), expected);
  EXPECT_EQ(ashe.Decrypt(all), expected);
}

TEST(AsheTest, DifferentKeysDisagree) {
  const Ashe a(AesKey::FromSeed(11));
  const Ashe b(AesKey::FromSeed(12));
  const AsheCiphertext ct = a.Encrypt(999, 3);
  EXPECT_NE(b.Decrypt(ct), 999u);
}

class AsheRangeSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AsheRangeSweepTest, RangeOfLengthNDecrypts) {
  const uint64_t n = GetParam();
  const Ashe ashe(AesKey::FromSeed(13));
  AsheCiphertext acc;
  uint64_t expected = 0;
  for (uint64_t id = 1; id <= n; ++id) {
    acc.value += ashe.EncryptCell(id, id);
    acc.ids.Add(id);
    expected += id;
  }
  EXPECT_EQ(ashe.Decrypt(acc), expected);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AsheRangeSweepTest,
                         ::testing::Values(1, 2, 3, 17, 256, 4096));

}  // namespace
}  // namespace seabed
