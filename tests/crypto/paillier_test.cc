#include "src/crypto/paillier.h"

#include <gtest/gtest.h>

namespace seabed {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  // 256-bit keys keep the suite fast; the scheme is parameter-independent.
  PaillierTest() : rng_(42), paillier_(Paillier::GenerateKey(rng_, 256)) {}

  Rng rng_;
  Paillier paillier_;
};

TEST_F(PaillierTest, RoundTrip) {
  for (uint64_t m : {0ull, 1ull, 123456789ull}) {
    const BigNum ct = paillier_.Encrypt(BigNum(m), rng_);
    EXPECT_EQ(paillier_.Decrypt(ct).Low64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  const BigNum c1 = paillier_.Encrypt(BigNum(5), rng_);
  const BigNum c2 = paillier_.Encrypt(BigNum(5), rng_);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(paillier_.Decrypt(c1).Low64(), 5u);
  EXPECT_EQ(paillier_.Decrypt(c2).Low64(), 5u);
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  const BigNum c1 = paillier_.Encrypt(BigNum(1000), rng_);
  const BigNum c2 = paillier_.Encrypt(BigNum(234), rng_);
  EXPECT_EQ(paillier_.Decrypt(paillier_.Add(c1, c2)).Low64(), 1234u);
}

TEST_F(PaillierTest, LongSum) {
  BigNum acc = paillier_.Encrypt(BigNum(0), rng_);
  uint64_t expected = 0;
  for (uint64_t i = 1; i <= 100; ++i) {
    acc = paillier_.Add(acc, paillier_.Encrypt(BigNum(i), rng_));
    expected += i;
  }
  EXPECT_EQ(paillier_.Decrypt(acc).Low64(), expected);
}

TEST_F(PaillierTest, SignedRoundTrip) {
  for (int64_t m : {0ll, 1ll, -1ll, 1000000ll, -987654321ll}) {
    const BigNum ct = paillier_.EncryptSigned(m, rng_);
    EXPECT_EQ(paillier_.DecryptSigned(ct), m);
  }
}

TEST_F(PaillierTest, SignedSumsCancel) {
  const BigNum c1 = paillier_.EncryptSigned(-500, rng_);
  const BigNum c2 = paillier_.EncryptSigned(200, rng_);
  EXPECT_EQ(paillier_.DecryptSigned(paillier_.Add(c1, c2)), -300);
}

TEST_F(PaillierTest, PooledEncryptionDecrypts) {
  const auto pool = paillier_.MakeRandomnessPool(rng_, 4);
  ASSERT_EQ(pool.size(), 4u);
  for (int64_t m : {0ll, 77ll, -77ll}) {
    for (const BigNum& entry : pool) {
      EXPECT_EQ(paillier_.DecryptSigned(paillier_.EncryptSignedPooled(m, entry)), m);
    }
  }
}

TEST_F(PaillierTest, PooledHomomorphismMatchesFull) {
  const auto pool = paillier_.MakeRandomnessPool(rng_, 2);
  const BigNum c1 = paillier_.EncryptSignedPooled(40, pool[0]);
  const BigNum c2 = paillier_.EncryptSigned(2, rng_);
  EXPECT_EQ(paillier_.DecryptSigned(paillier_.Add(c1, c2)), 42);
}

TEST_F(PaillierTest, MultiplicativeIdentityIsEncryptedZero) {
  // BigNum(1) acts as Enc(0): used as the aggregation identity.
  const BigNum c = paillier_.Encrypt(BigNum(17), rng_);
  EXPECT_EQ(paillier_.Decrypt(paillier_.Add(c, BigNum(1))).Low64(), 17u);
  EXPECT_EQ(paillier_.DecryptSigned(BigNum(1)), 0);
}

TEST_F(PaillierTest, CiphertextBytesMatchesModulus) {
  const size_t bytes = paillier_.public_key().CiphertextBytes();
  EXPECT_EQ(bytes, static_cast<size_t>(2 * ((paillier_.public_key().n.BitLength() + 7) / 8)));
}

TEST(PaillierKeygenTest, DistinctSeedsDistinctKeys) {
  Rng r1(1);
  Rng r2(2);
  const Paillier p1 = Paillier::GenerateKey(r1, 128);
  const Paillier p2 = Paillier::GenerateKey(r2, 128);
  EXPECT_NE(p1.public_key().n, p2.public_key().n);
}

TEST(PaillierKeygenTest, WrapAroundModulusIsExercised) {
  // Messages larger than n wrap (mod n) — documents the fixed-point range
  // requirement for measures.
  Rng rng(3);
  const Paillier p = Paillier::GenerateKey(rng, 64);
  const BigNum big = BigNum::Add(p.public_key().n, BigNum(5));
  EXPECT_EQ(p.Decrypt(p.Encrypt(big, rng)).Low64(), 5u);
}

}  // namespace
}  // namespace seabed
