#include "src/crypto/id_set.h"

#include <gtest/gtest.h>

namespace seabed {
namespace {

TEST(IdSetTest, EmptySet) {
  const IdSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.TotalCount(), 0u);
  EXPECT_EQ(s.NumRuns(), 0u);
  EXPECT_TRUE(s.IsPlainSet());
}

TEST(IdSetTest, SequentialAddsCoalesceToOneRun) {
  IdSet s;
  for (uint64_t id = 1; id <= 1000; ++id) {
    s.Add(id);
  }
  EXPECT_EQ(s.NumRuns(), 1u);
  EXPECT_EQ(s.TotalCount(), 1000u);
  EXPECT_EQ(s.runs()[0], (IdSet::Run{1, 1000, 1}));
}

TEST(IdSetTest, GapsCreateRuns) {
  IdSet s;
  s.Add(1);
  s.Add(2);
  s.Add(10);
  s.Add(11);
  s.Add(20);
  EXPECT_EQ(s.NumRuns(), 3u);
  EXPECT_EQ(s.TotalCount(), 5u);
}

TEST(IdSetTest, OutOfOrderAddNormalizes) {
  IdSet s;
  s.Add(10);
  s.Add(5);
  s.Add(7);
  s.Add(6);
  EXPECT_EQ(s.TotalCount(), 4u);
  EXPECT_EQ(s.NumRuns(), 2u);  // {5-7}, {10}
  EXPECT_EQ(s.runs()[0], (IdSet::Run{5, 7, 1}));
  EXPECT_EQ(s.runs()[1], (IdSet::Run{10, 10, 1}));
}

TEST(IdSetTest, DuplicateAddBecomesMultiset) {
  IdSet s;
  s.Add(5);
  s.Add(5);
  EXPECT_EQ(s.TotalCount(), 2u);
  EXPECT_FALSE(s.IsPlainSet());
  EXPECT_EQ(s.runs()[0], (IdSet::Run{5, 5, 2}));
}

TEST(IdSetTest, FromRange) {
  const IdSet s = IdSet::FromRange(10, 20);
  EXPECT_EQ(s.TotalCount(), 11u);
  EXPECT_EQ(s.NumRuns(), 1u);
}

TEST(IdSetTest, AddRangeExtendsTrailingRun) {
  IdSet s = IdSet::FromRange(1, 10);
  s.AddRange(11, 20);
  EXPECT_EQ(s.NumRuns(), 1u);
  EXPECT_EQ(s.runs()[0], (IdSet::Run{1, 20, 1}));
}

TEST(IdSetTest, UnionDisjointOrderedFastPath) {
  IdSet a = IdSet::FromRange(1, 100);
  const IdSet b = IdSet::FromRange(200, 300);
  a.UnionWith(b);
  EXPECT_EQ(a.NumRuns(), 2u);
  EXPECT_EQ(a.TotalCount(), 201u);
}

TEST(IdSetTest, UnionAdjacentCoalescesAcrossSeam) {
  IdSet a = IdSet::FromRange(1, 100);
  const IdSet b = IdSet::FromRange(101, 200);
  a.UnionWith(b);
  EXPECT_EQ(a.NumRuns(), 1u);
  EXPECT_EQ(a.runs()[0], (IdSet::Run{1, 200, 1}));
}

TEST(IdSetTest, UnionOverlapAccumulatesMultiplicity) {
  IdSet a = IdSet::FromRange(1, 10);
  const IdSet b = IdSet::FromRange(5, 15);
  a.UnionWith(b);
  EXPECT_EQ(a.TotalCount(), 21u);  // 10 + 11
  EXPECT_FALSE(a.IsPlainSet());
  // Runs: [1,4]x1 [5,10]x2 [11,15]x1.
  ASSERT_EQ(a.NumRuns(), 3u);
  EXPECT_EQ(a.runs()[1], (IdSet::Run{5, 10, 2}));
}

TEST(IdSetTest, UnionWithEmpty) {
  IdSet a = IdSet::FromRange(1, 3);
  a.UnionWith(IdSet());
  EXPECT_EQ(a.TotalCount(), 3u);
  IdSet empty;
  empty.UnionWith(a);
  EXPECT_EQ(empty.TotalCount(), 3u);
}

TEST(IdSetTest, SelfLikeUnionDoublesCount) {
  IdSet a = IdSet::FromRange(1, 50);
  IdSet b = IdSet::FromRange(1, 50);
  a.UnionWith(b);
  EXPECT_EQ(a.TotalCount(), 100u);
  EXPECT_EQ(a.NumRuns(), 1u);
  EXPECT_EQ(a.runs()[0].count, 2u);
}

TEST(IdSetTest, SingleFactory) {
  const IdSet s = IdSet::Single(42);
  EXPECT_EQ(s.TotalCount(), 1u);
  EXPECT_EQ(s.runs()[0], (IdSet::Run{42, 42, 1}));
}

TEST(IdSetTest, InterleavedUnionNormalizes) {
  IdSet a;
  a.Add(1);
  a.Add(5);
  a.Add(9);
  IdSet b;
  b.Add(2);
  b.Add(5);
  b.Add(10);
  a.UnionWith(b);
  EXPECT_EQ(a.TotalCount(), 6u);
  // id 5 has multiplicity 2.
  uint64_t count5 = 0;
  for (const auto& run : a.runs()) {
    if (run.lo <= 5 && 5 <= run.hi) {
      count5 = run.count;
    }
  }
  EXPECT_EQ(count5, 2u);
}

TEST(IdSetTest, LargeAlternatingPattern) {
  // Every even id in [0, 2000): 1000 runs of length 1 — the paper's
  // "query that selects all even rows" worst case for range encoding.
  IdSet s;
  for (uint64_t id = 0; id < 2000; id += 2) {
    s.Add(id);
  }
  EXPECT_EQ(s.NumRuns(), 1000u);
  EXPECT_EQ(s.TotalCount(), 1000u);
  EXPECT_TRUE(s.IsPlainSet());
}

}  // namespace
}  // namespace seabed
