#include "src/crypto/prf.h"

#include <gtest/gtest.h>

#include <set>

namespace seabed {
namespace {

TEST(PrfTest, Deterministic) {
  const Prf a(AesKey::FromSeed(1));
  const Prf b(AesKey::FromSeed(1));
  for (uint64_t id : {0ull, 1ull, 2ull, 1000ull, ~0ull}) {
    EXPECT_EQ(a.Eval(id), b.Eval(id));
  }
}

TEST(PrfTest, AdjacentIdsShareBlockButDiffer) {
  const Prf prf(AesKey::FromSeed(2));
  // Ids 2j and 2j+1 come from one AES block; they must still be distinct.
  for (uint64_t j = 0; j < 100; ++j) {
    EXPECT_NE(prf.Eval(2 * j), prf.Eval(2 * j + 1));
  }
}

TEST(PrfTest, OutputsLookDistinct) {
  const Prf prf(AesKey::FromSeed(3));
  std::set<uint64_t> seen;
  for (uint64_t id = 0; id < 1000; ++id) {
    seen.insert(prf.Eval(id));
  }
  EXPECT_EQ(seen.size(), 1000u);  // collisions in 1000 draws are ~impossible
}

TEST(PrfTest, DeltaTelescopes) {
  const Prf prf(AesKey::FromSeed(4));
  // Sum of Delta(i) over [lo, hi] equals RangeDelta(lo, hi).
  for (auto [lo, hi] : std::initializer_list<std::pair<uint64_t, uint64_t>>{
           {1, 1}, {1, 10}, {5, 300}, {1000, 1001}}) {
    uint64_t sum = 0;
    for (uint64_t i = lo; i <= hi; ++i) {
      sum += prf.Delta(i);
    }
    EXPECT_EQ(sum, prf.RangeDelta(lo, hi)) << lo << ".." << hi;
  }
}

TEST(PrfTest, RangeDeltaSplitsAdditively) {
  const Prf prf(AesKey::FromSeed(5));
  // RangeDelta(1, 100) = RangeDelta(1, 40) + RangeDelta(41, 100).
  EXPECT_EQ(prf.RangeDelta(1, 100), prf.RangeDelta(1, 40) + prf.RangeDelta(41, 100));
}

TEST(PrfTest, KeysAreIndependent) {
  const Prf a(AesKey::FromSeed(6));
  const Prf b(AesKey::FromSeed(7));
  int same = 0;
  for (uint64_t id = 0; id < 64; ++id) {
    same += a.Eval(id) == b.Eval(id);
  }
  EXPECT_EQ(same, 0);
}

TEST(PrfTest, CacheSurvivesNonSequentialAccess) {
  const Prf prf(AesKey::FromSeed(8));
  const uint64_t direct = prf.Eval(500);
  prf.Eval(1);
  prf.Eval(10000);
  EXPECT_EQ(prf.Eval(500), direct);
}

}  // namespace
}  // namespace seabed
