#include "src/query/plain_executor.h"

#include <gtest/gtest.h>

namespace seabed {
namespace {

class PlainExecutorTest : public ::testing::Test {
 protected:
  PlainExecutorTest() : cluster_(MakeConfig()), table_("sales") {
    auto region = std::make_shared<StringColumn>();
    auto amount = std::make_shared<Int64Column>();
    auto year = std::make_shared<Int64Column>();
    const struct {
      const char* region;
      int64_t amount;
      int64_t year;
    } rows[] = {
        {"east", 100, 2020}, {"west", 200, 2020}, {"east", 50, 2021},
        {"west", 75, 2021},  {"east", 25, 2021},  {"north", 10, 2020},
    };
    for (const auto& r : rows) {
      region->Append(r.region);
      amount->Append(r.amount);
      year->Append(r.year);
    }
    table_.AddColumn("region", region);
    table_.AddColumn("amount", amount);
    table_.AddColumn("year", year);
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig cfg;
    cfg.num_workers = 3;
    cfg.job_overhead_seconds = 0;
    cfg.task_overhead_seconds = 0;
    return cfg;
  }

  Cluster cluster_;
  Table table_;
};

TEST_F(PlainExecutorTest, GlobalSum) {
  Query q;
  q.table = "sales";
  q.Sum("amount");
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 460);
}

TEST_F(PlainExecutorTest, CountStar) {
  Query q;
  q.table = "sales";
  q.Count();
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 6);
}

TEST_F(PlainExecutorTest, FilteredSumStringEq) {
  Query q;
  q.table = "sales";
  q.Sum("amount");
  q.Where("region", CmpOp::kEq, std::string("east"));
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 175);
}

TEST_F(PlainExecutorTest, FilteredSumIntRange) {
  Query q;
  q.table = "sales";
  q.Sum("amount");
  q.Where("year", CmpOp::kGe, int64_t{2021});
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 150);
}

TEST_F(PlainExecutorTest, ConjunctiveFilters) {
  Query q;
  q.table = "sales";
  q.Count();
  q.Where("region", CmpOp::kEq, std::string("west"));
  q.Where("year", CmpOp::kLt, int64_t{2021});
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 1);
}

TEST_F(PlainExecutorTest, GroupBySums) {
  Query q;
  q.table = "sales";
  q.Sum("amount");
  q.Count();
  q.GroupBy("region");
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  ASSERT_EQ(r.rows.size(), 3u);
  // Rows sorted by group key: east, north, west.
  EXPECT_EQ(std::get<std::string>(r.rows[0][0]), "east");
  EXPECT_EQ(std::get<int64_t>(r.rows[0][1]), 175);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][2]), 3);
  EXPECT_EQ(std::get<std::string>(r.rows[1][0]), "north");
  EXPECT_EQ(std::get<int64_t>(r.rows[1][1]), 10);
  EXPECT_EQ(std::get<std::string>(r.rows[2][0]), "west");
  EXPECT_EQ(std::get<int64_t>(r.rows[2][1]), 275);
}

TEST_F(PlainExecutorTest, MultiColumnGroupBy) {
  Query q;
  q.table = "sales";
  q.Count();
  q.GroupBy("region").GroupBy("year");
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_EQ(r.rows.size(), 5u);  // east/2020, east/2021, north/2020, west/2020, west/2021
}

TEST_F(PlainExecutorTest, AvgIsDouble) {
  Query q;
  q.table = "sales";
  q.Avg("amount");
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_NEAR(std::get<double>(r.rows[0][0]), 460.0 / 6, 1e-9);
}

TEST_F(PlainExecutorTest, MinMax) {
  Query q;
  q.table = "sales";
  q.Min("amount").Max("amount");
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 10);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][1]), 200);
}

TEST_F(PlainExecutorTest, Variance) {
  Query q;
  q.table = "sales";
  q.Variance("amount");
  q.Where("region", CmpOp::kEq, std::string("east"));
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  // Values {100, 50, 25}: mean 58.333, var = (100^2+50^2+25^2)/3 - mean^2.
  const double mean = 175.0 / 3;
  const double expected = (10000.0 + 2500.0 + 625.0) / 3 - mean * mean;
  EXPECT_NEAR(std::get<double>(r.rows[0][0]), expected, 1e-6);
}

TEST_F(PlainExecutorTest, EmptyResultFilter) {
  Query q;
  q.table = "sales";
  q.Sum("amount");
  q.Where("region", CmpOp::kEq, std::string("south"));
  q.GroupBy("region");
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(PlainExecutorTest, NeFilter) {
  Query q;
  q.table = "sales";
  q.Count();
  q.Where("region", CmpOp::kNe, std::string("east"));
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, nullptr);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 3);
}

TEST_F(PlainExecutorTest, LatencyBreakdownPopulated) {
  Query q;
  q.table = "sales";
  q.Sum("amount");
  QueryStats stats;
  const ResultSet r = ExecutePlain(table_, q, cluster_, nullptr, &stats);
  EXPECT_EQ(stats.backend, "plain");
  EXPECT_EQ(stats.result_rows, r.rows.size());
  EXPECT_GT(stats.result_bytes, 0u);
  EXPECT_GT(stats.network_seconds, 0.0);
  EXPECT_GE(stats.TotalSeconds(), stats.job.server_seconds);
}

}  // namespace
}  // namespace seabed
