// Query::Fingerprint is the cache key of the caching backend: it must
// collapse semantically identical queries (predicate reordering) while
// keeping every row-changing variation distinct.
#include <gtest/gtest.h>

#include <string>

#include "src/query/parser.h"
#include "src/query/query.h"

namespace seabed {
namespace {

Query BaseQuery() {
  Query q;
  q.table = "retail";
  q.Sum("revenue", "total").Count("orders");
  q.Where("country", CmpOp::kEq, std::string("india"));
  q.Where("ts", CmpOp::kGe, int64_t{10});
  q.GroupBy("store");
  return q;
}

TEST(QueryFingerprintTest, ReorderedFiltersCollapse) {
  Query a = BaseQuery();

  Query b;
  b.table = "retail";
  b.Sum("revenue", "total").Count("orders");
  b.Where("ts", CmpOp::kGe, int64_t{10});  // swapped order
  b.Where("country", CmpOp::kEq, std::string("india"));
  b.GroupBy("store");

  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(QueryFingerprintTest, RowChangingVariationsStayDistinct) {
  const Query base = BaseQuery();
  const std::string fp = base.Fingerprint();

  {
    Query q = BaseQuery();
    q.filters[1].operand = int64_t{11};  // different literal
    EXPECT_NE(q.Fingerprint(), fp);
  }
  {
    Query q = BaseQuery();
    q.filters[1].op = CmpOp::kGt;  // different operator
    EXPECT_NE(q.Fingerprint(), fp);
  }
  {
    Query q = BaseQuery();
    q.table = "retail2";
    EXPECT_NE(q.Fingerprint(), fp);
  }
  {
    Query q = BaseQuery();
    q.group_by.clear();  // grouping changes the rows
    EXPECT_NE(q.Fingerprint(), fp);
  }
  {
    Query q = BaseQuery();
    q.aggregates[0].alias = "sum2";  // alias names the result column
    EXPECT_NE(q.Fingerprint(), fp);
  }
  {
    Query q = BaseQuery();
    q.join = Join{"dim", "fk", "right:key"};
    EXPECT_NE(q.Fingerprint(), fp);
  }
}

TEST(QueryFingerprintTest, SeparatorCharactersCannotForgeCollisions) {
  // One predicate whose literal embeds the serialized form of another
  // predicate must not collide with the genuine two-predicate query
  // (components are length-prefixed, not merely joined).
  Query a;
  a.table = "t";
  a.Count("n");
  a.Where("dim", CmpOp::kEq, std::string("x&grp=sy"));

  Query b;
  b.table = "t";
  b.Count("n");
  b.Where("dim", CmpOp::kEq, std::string("x"));
  b.Where("grp", CmpOp::kEq, std::string("y"));

  EXPECT_NE(a.Fingerprint(), b.Fingerprint());

  // Same idea through an aggregate alias.
  Query c;
  c.table = "t";
  c.Sum("m", "x,sum(m)y");
  Query d;
  d.table = "t";
  d.Sum("m", "x").Sum("m", "y");
  EXPECT_NE(c.Fingerprint(), d.Fingerprint());
}

TEST(QueryFingerprintTest, TypedLiteralsDoNotCollide) {
  Query a;
  a.table = "t";
  a.Count();
  a.Where("x", CmpOp::kEq, int64_t{1});

  Query b;
  b.table = "t";
  b.Count();
  b.Where("x", CmpOp::kEq, std::string("1"));

  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(QueryFingerprintTest, ExecutionHintsAreExcluded) {
  // expected_groups and needs_two_round_trips change the execution strategy,
  // never the rows — a result cache should hit across them.
  Query a = BaseQuery();
  Query b = BaseQuery();
  b.expected_groups = 7;
  b.needs_two_round_trips = true;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(QueryFingerprintTest, ShapeModeElidesLiteralsOnly) {
  Query a = BaseQuery();
  Query b = BaseQuery();
  b.filters[0].operand = std::string("chile");
  b.filters[1].operand = int64_t{99};

  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.Fingerprint(Query::FingerprintMode::kShape),
            b.Fingerprint(Query::FingerprintMode::kShape));

  // Shape still distinguishes which columns are filtered.
  Query c = BaseQuery();
  c.filters[0].column = "region";
  EXPECT_NE(a.Fingerprint(Query::FingerprintMode::kShape),
            c.Fingerprint(Query::FingerprintMode::kShape));
}

TEST(QueryFingerprintTest, SqlAndFluentFormsAgree) {
  const Query sql = MustParseSql(
      "SELECT SUM(revenue) AS total, COUNT(*) AS orders FROM retail "
      "WHERE ts >= 10 AND country = 'india' GROUP BY store");
  EXPECT_EQ(sql.Fingerprint(), BaseQuery().Fingerprint());
}

}  // namespace
}  // namespace seabed
