#include "src/query/parser.h"

#include <gtest/gtest.h>

#include "src/query/plain_executor.h"

namespace seabed {
namespace {

TEST(ParserTest, SimpleSum) {
  const Query q = MustParseSql("SELECT SUM(revenue) FROM sales");
  EXPECT_EQ(q.table, "sales");
  ASSERT_EQ(q.aggregates.size(), 1u);
  EXPECT_EQ(q.aggregates[0].func, AggFunc::kSum);
  EXPECT_EQ(q.aggregates[0].column, "revenue");
  EXPECT_TRUE(q.filters.empty());
  EXPECT_TRUE(q.group_by.empty());
}

TEST(ParserTest, CountStarAndAlias) {
  const Query q = MustParseSql("SELECT COUNT(*) AS n, AVG(x) AS mean FROM t");
  ASSERT_EQ(q.aggregates.size(), 2u);
  EXPECT_EQ(q.aggregates[0].func, AggFunc::kCount);
  EXPECT_TRUE(q.aggregates[0].column.empty());
  EXPECT_EQ(q.aggregates[0].alias, "n");
  EXPECT_EQ(q.aggregates[1].func, AggFunc::kAvg);
  EXPECT_EQ(q.aggregates[1].alias, "mean");
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  const Query q = MustParseSql("select sum(a) from t where b = 3 group by c");
  EXPECT_EQ(q.table, "t");
  ASSERT_EQ(q.filters.size(), 1u);
  ASSERT_EQ(q.group_by.size(), 1u);
}

TEST(ParserTest, AllComparisonOperators) {
  struct Case {
    const char* sql_op;
    CmpOp expected;
  };
  const Case cases[] = {{"=", CmpOp::kEq}, {"!=", CmpOp::kNe}, {"<>", CmpOp::kNe},
                        {"<", CmpOp::kLt}, {"<=", CmpOp::kLe}, {">", CmpOp::kGt},
                        {">=", CmpOp::kGe}};
  for (const Case& c : cases) {
    const Query q =
        MustParseSql(std::string("SELECT SUM(a) FROM t WHERE b ") + c.sql_op + " 10");
    ASSERT_EQ(q.filters.size(), 1u) << c.sql_op;
    EXPECT_EQ(q.filters[0].op, c.expected) << c.sql_op;
    EXPECT_EQ(std::get<int64_t>(q.filters[0].operand), 10);
  }
}

TEST(ParserTest, StringLiteralAndConjunction) {
  const Query q = MustParseSql(
      "SELECT SUM(salary) FROM emp WHERE country = 'India' AND ts >= 100");
  ASSERT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(std::get<std::string>(q.filters[0].operand), "India");
  EXPECT_EQ(q.filters[1].op, CmpOp::kGe);
}

TEST(ParserTest, NegativeIntegerLiteral) {
  const Query q = MustParseSql("SELECT SUM(a) FROM t WHERE b > -5");
  EXPECT_EQ(std::get<int64_t>(q.filters[0].operand), -5);
}

TEST(ParserTest, GroupByWithProjectedKey) {
  const Query q = MustParseSql("SELECT store, SUM(revenue) FROM sales GROUP BY store");
  ASSERT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.group_by[0], "store");
  // Bare projected key does not create an aggregate.
  ASSERT_EQ(q.aggregates.size(), 1u);
}

TEST(ParserTest, MultiColumnGroupBy) {
  const Query q = MustParseSql("SELECT COUNT(*) FROM t GROUP BY a, b");
  ASSERT_EQ(q.group_by.size(), 2u);
}

TEST(ParserTest, JoinMapsRightColumns) {
  const Query q = MustParseSql(
      "SELECT SUM(adRevenue), AVG(rankings.pageRank) FROM uservisits "
      "JOIN rankings ON destURL = rankings.pageURL "
      "WHERE visitDate >= 1000 GROUP BY sourceIP");
  ASSERT_TRUE(q.join.has_value());
  EXPECT_EQ(q.join->right_table, "rankings");
  EXPECT_EQ(q.join->left_column, "destURL");
  EXPECT_EQ(q.join->right_column, "right:pageURL");
  ASSERT_EQ(q.aggregates.size(), 2u);
  EXPECT_EQ(q.aggregates[1].column, "right:pageRank");
}

TEST(ParserTest, JoinConditionOrderIsNormalized) {
  // ON rankings.pageURL = destURL — right side listed first.
  const Query q = MustParseSql(
      "SELECT SUM(a) FROM uservisits JOIN rankings ON rankings.pageURL = destURL");
  ASSERT_TRUE(q.join.has_value());
  EXPECT_EQ(q.join->left_column, "destURL");
  EXPECT_EQ(q.join->right_column, "right:pageURL");
}

TEST(ParserTest, VarianceAndStddev) {
  const Query q = MustParseSql("SELECT VARIANCE(x), STDDEV(x), VAR(x) FROM t");
  ASSERT_EQ(q.aggregates.size(), 3u);
  EXPECT_EQ(q.aggregates[0].func, AggFunc::kVariance);
  EXPECT_EQ(q.aggregates[1].func, AggFunc::kStddev);
  EXPECT_EQ(q.aggregates[2].func, AggFunc::kVariance);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok);
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok);
  EXPECT_FALSE(ParseSql("SELECT SUM(a FROM t").ok);
  EXPECT_FALSE(ParseSql("SELECT SUM(a) FROM").ok);
  EXPECT_FALSE(ParseSql("SELECT SUM(a) FROM t WHERE").ok);
  EXPECT_FALSE(ParseSql("SELECT SUM(a) FROM t WHERE b ~ 3").ok);
  EXPECT_FALSE(ParseSql("SELECT SUM(a) FROM t WHERE b = 'unterminated").ok);
  EXPECT_FALSE(ParseSql("SELECT SUM(a) FROM t GROUP a").ok);
  EXPECT_FALSE(ParseSql("SELECT SUM(*) FROM t").ok);       // * only for COUNT
  EXPECT_FALSE(ParseSql("SELECT a FROM t").ok);            // bare col not in GROUP BY
  EXPECT_FALSE(ParseSql("SELECT SUM(a) FROM t extra").ok); // trailing tokens
  // Errors carry position info.
  EXPECT_NE(ParseSql("SELECT SUM(a) FROM t WHERE b ~ 3").error.find("position"),
            std::string::npos);
}

TEST(ParserTest, ParsedQueryExecutes) {
  // Integration: parse and run against the plaintext executor.
  Table table("sales");
  auto store = std::make_shared<StringColumn>();
  auto revenue = std::make_shared<Int64Column>();
  const struct {
    const char* s;
    int64_t r;
  } rows[] = {{"a", 10}, {"b", 20}, {"a", 30}};
  for (const auto& row : rows) {
    store->Append(row.s);
    revenue->Append(row.r);
  }
  table.AddColumn("store", store);
  table.AddColumn("revenue", revenue);

  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.job_overhead_seconds = 0;
  cfg.task_overhead_seconds = 0;
  const Cluster cluster(cfg);
  const Query q =
      MustParseSql("SELECT store, SUM(revenue) AS total FROM sales GROUP BY store");
  const ResultSet r = ExecutePlain(table, q, cluster, nullptr, nullptr);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][1]), 40);
  EXPECT_EQ(std::get<int64_t>(r.rows[1][1]), 20);
}

}  // namespace
}  // namespace seabed
