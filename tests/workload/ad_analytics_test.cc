#include "src/workload/ad_analytics.h"

#include <gtest/gtest.h>

#include "src/query/plain_executor.h"
#include "src/seabed/session.h"

namespace seabed {
namespace {

AdAnalyticsSpec SmallSpec() {
  AdAnalyticsSpec spec;
  spec.rows = 3000;
  spec.sensitive_dim_cardinalities = {3, 5, 8};
  return spec;
}

TEST(AdAnalyticsTest, TableShapeMatchesSpec) {
  const AdAnalyticsSpec spec = SmallSpec();
  const auto table = MakeAdAnalyticsTable(spec);
  EXPECT_EQ(table->NumRows(), spec.rows);
  // 1 hour + 3 sensitive + 22 plain dims + 18 measures.
  EXPECT_EQ(table->NumColumns(), 1 + 3 + 22 + 18);
}

TEST(AdAnalyticsTest, SchemaDistributionsSumToOne) {
  const PlainSchema schema = AdAnalyticsSchema(SmallSpec());
  for (const auto& col : schema.columns) {
    if (!col.distribution.has_value()) {
      continue;
    }
    double total = 0;
    for (double f : col.distribution->frequencies) {
      total += f;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << col.name;
  }
}

TEST(AdAnalyticsTest, PerfQueryShape) {
  const Query q = AdAnalyticsPerfQuery(4, 2, 0);
  EXPECT_EQ(q.aggregates.size(), 2u);
  EXPECT_EQ(q.expected_groups, 4u);
  ASSERT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.group_by[0], "hour");
}

TEST(AdAnalyticsTest, FullGroupQueryHasNoHourFilter) {
  const Query q = AdAnalyticsPerfQuery(24, 1, 0);
  EXPECT_TRUE(q.filters.empty());
}

TEST(AdAnalyticsTest, QueryLogSplitIsExact) {
  const auto log = AdAnalyticsQueryLog(SmallSpec(), 1000, 200);
  size_t post = 0;
  for (const Query& q : log) {
    post += q.has_udf;
  }
  EXPECT_EQ(log.size(), 1000u);
  EXPECT_EQ(post, 200u);
}

TEST(AdAnalyticsTest, EndToEndHourlyQueryMatchesPlain) {
  const AdAnalyticsSpec spec = SmallSpec();
  const auto table = MakeAdAnalyticsTable(spec);
  const PlainSchema schema = AdAnalyticsSchema(spec);

  SessionOptions options;
  options.backend = BackendKind::kSeabed;
  options.planner.expected_rows = spec.rows;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.key_seed = 8;
  Session session(options);
  session.Attach(table, schema, AdAnalyticsSampleQueries(spec));

  Query q = AdAnalyticsPerfQuery(4, 2, 1);
  const ResultSet plain = ExecutePlain(*table, q, session.cluster(), nullptr, nullptr);
  const ResultSet enc = session.Execute(q);

  ASSERT_EQ(enc.rows.size(), plain.rows.size());
  for (size_t i = 0; i < enc.rows.size(); ++i) {
    for (size_t j = 0; j < enc.rows[i].size(); ++j) {
      EXPECT_EQ(ValueToString(enc.rows[i][j]), ValueToString(plain.rows[i][j]));
    }
  }
}

TEST(AdAnalyticsTest, SplasheFilterQueryMatchesPlain) {
  const AdAnalyticsSpec spec = SmallSpec();
  const auto table = MakeAdAnalyticsTable(spec);
  const PlainSchema schema = AdAnalyticsSchema(spec);

  SessionOptions options;
  options.backend = BackendKind::kSeabed;
  options.planner.expected_rows = spec.rows;
  options.cluster.num_workers = 2;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.key_seed = 9;
  Session session(options);
  session.Attach(table, schema, AdAnalyticsSampleQueries(spec));

  const EncryptionPlan& plan = session.plan("ad_analytics");
  // At least one sensitive dimension must be protected by SPLASHE.
  EXPECT_FALSE(plan.splashe.empty());

  const SplasheLayout& layout = plan.splashe.front();
  Query q;
  q.table = "ad_analytics";
  const std::string& measure = layout.splayed_measures.front();
  q.Sum(measure).Count();
  q.Where(layout.dimension, CmpOp::kEq, layout.splayed_values.front());

  const ResultSet plain = ExecutePlain(*table, q, session.cluster(), nullptr, nullptr);
  const ResultSet enc = session.Execute(q);

  ASSERT_EQ(enc.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(enc.rows[0][0]), std::get<int64_t>(plain.rows[0][0]));
  EXPECT_EQ(std::get<int64_t>(enc.rows[0][1]), std::get<int64_t>(plain.rows[0][1]));
}

}  // namespace
}  // namespace seabed
