// Runs the Big Data Benchmark queries end-to-end on small tables and checks
// the encrypted pipeline against the plaintext executor.
#include "src/workload/bdb.h"

#include <gtest/gtest.h>

#include "src/query/plain_executor.h"
#include "src/seabed/client.h"
#include "src/seabed/planner.h"
#include "src/seabed/server.h"

namespace seabed {
namespace {

std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class BdbTest : public ::testing::Test {
 protected:
  BdbTest() : cluster_(Config()), keys_(ClientKeys::FromSeed(3)) {
    spec_.rankings_rows = 500;
    spec_.uservisits_rows = 2000;
    spec_.num_urls = 300;
    rankings_ = MakeRankingsTable(spec_);
    uservisits_ = MakeUserVisitsTable(spec_);

    PlannerOptions options;
    const Encryptor encryptor(keys_);
    rankings_plan_ = PlanEncryption(RankingsSchema(), RankingsSampleQueries(), options);
    uservisits_plan_ = PlanEncryption(UserVisitsSchema(), UserVisitsSampleQueries(), options);
    rankings_db_ = encryptor.Encrypt(*rankings_, RankingsSchema(), rankings_plan_);
    uservisits_db_ = encryptor.Encrypt(*uservisits_, UserVisitsSchema(), uservisits_plan_);
    server_.RegisterTable(rankings_db_.table);
    server_.RegisterTable(uservisits_db_.table);
  }

  static ClusterConfig Config() {
    ClusterConfig cfg;
    cfg.num_workers = 4;
    cfg.job_overhead_seconds = 0;
    cfg.task_overhead_seconds = 0;
    return cfg;
  }

  const Table& FactTable(const BdbQuery& bq) const {
    return bq.on_uservisits ? *uservisits_ : *rankings_;
  }
  const EncryptedDatabase& FactDb(const BdbQuery& bq) const {
    return bq.on_uservisits ? uservisits_db_ : rankings_db_;
  }

  ResultSet RunSeabed(const BdbQuery& bq) {
    TranslatorOptions topts;
    topts.cluster_workers = cluster_.num_workers();
    const EncryptedDatabase& db = FactDb(bq);
    const Translator translator(db, keys_);
    TranslatedQuery tq = translator.Translate(bq.query, topts);
    if (tq.server.join.has_value()) {
      tq.server.join->right_table = rankings_db_.table->name();
    }
    const EncryptedResponse response = server_.Execute(tq.server, cluster_);
    const Client client(db, keys_);
    return client.Decrypt(response, tq, cluster_, &rankings_db_);
  }

  ResultSet RunPlain(const BdbQuery& bq) {
    if (!bq.query.join.has_value()) {
      return ExecutePlain(FactTable(bq), bq.query, cluster_);
    }
    // The plaintext executor has no join support; materialize the join by
    // hand for the expected answer.
    return PlainJoin(bq.query);
  }

  // Materialized nested-loop join via a URL -> rankings-row index.
  ResultSet PlainJoin(const Query& q);

  BdbSpec spec_;
  Cluster cluster_;
  ClientKeys keys_;
  std::shared_ptr<Table> rankings_;
  std::shared_ptr<Table> uservisits_;
  EncryptionPlan rankings_plan_;
  EncryptionPlan uservisits_plan_;
  EncryptedDatabase rankings_db_;
  EncryptedDatabase uservisits_db_;
  Server server_;
};

ResultSet BdbTest::PlainJoin(const Query& q) {
  // Supports the Q3 shape: join uservisits->rankings on destURL = pageURL,
  // visitDate window, group by sourceIP, SUM(adRevenue), AVG(right:pageRank).
  const auto* dest = static_cast<const StringColumn*>(uservisits_->GetColumn("destURL").get());
  const auto* src = static_cast<const StringColumn*>(uservisits_->GetColumn("sourceIP").get());
  const auto* date = static_cast<const Int64Column*>(uservisits_->GetColumn("visitDate").get());
  const auto* revenue = static_cast<const Int64Column*>(uservisits_->GetColumn("adRevenue").get());
  const auto* url = static_cast<const StringColumn*>(rankings_->GetColumn("pageURL").get());
  const auto* rank = static_cast<const Int64Column*>(rankings_->GetColumn("pageRank").get());

  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;
  for (const Predicate& p : q.filters) {
    if (p.op == CmpOp::kGe) {
      lo = std::get<int64_t>(p.operand);
    }
    if (p.op == CmpOp::kLt) {
      hi = std::get<int64_t>(p.operand) - 1;
    }
  }
  std::map<std::string, size_t> url_index;
  for (size_t r = 0; r < url->RowCount(); ++r) {
    url_index[url->Get(r)] = r;
  }
  struct Acc {
    int64_t revenue = 0;
    int64_t rank_sum = 0;
    int64_t count = 0;
  };
  std::map<std::string, Acc> groups;
  for (size_t r = 0; r < dest->RowCount(); ++r) {
    if (date->Get(r) < lo || date->Get(r) > hi) {
      continue;
    }
    const auto it = url_index.find(dest->Get(r));
    if (it == url_index.end()) {
      continue;
    }
    Acc& acc = groups[src->Get(r)];
    acc.revenue += revenue->Get(r);
    acc.rank_sum += rank->Get(it->second);
    ++acc.count;
  }
  ResultSet result;
  result.column_names = {"sourceIP", "sum_adRevenue", "avg_pageRank"};
  for (const auto& [ip, acc] : groups) {
    result.rows.push_back({ip, acc.revenue,
                           static_cast<double>(acc.rank_sum) / static_cast<double>(acc.count)});
  }
  return result;
}

TEST_F(BdbTest, QuerySetHasTenQueries) {
  const auto set = BdbQuerySet();
  ASSERT_EQ(set.size(), 10u);
  EXPECT_EQ(set[0].label, "Q1A");
  EXPECT_EQ(set[9].label, "Q4");
}

TEST_F(BdbTest, AllQueriesMatchPlaintext) {
  for (const BdbQuery& bq : BdbQuerySet()) {
    SCOPED_TRACE(bq.label);
    const ResultSet plain = RunPlain(bq);
    const ResultSet enc = RunSeabed(bq);
    EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain)) << bq.label;
  }
}

TEST_F(BdbTest, TablesHaveExpectedShape) {
  EXPECT_EQ(rankings_->NumRows(), 500u);
  EXPECT_EQ(uservisits_->NumRows(), 2000u);
  EXPECT_EQ(uservisits_->NumColumns(), 12u);
}

TEST_F(BdbTest, JoinKeysAreDetEncrypted) {
  EXPECT_TRUE(rankings_db_.table->HasColumn("pageURL#det"));
  EXPECT_TRUE(uservisits_db_.table->HasColumn("destURL#det"));
}

TEST_F(BdbTest, VisitDateIsOpe) {
  EXPECT_TRUE(uservisits_db_.table->HasColumn("visitDate#ope"));
}

}  // namespace
}  // namespace seabed
