// Runs the Big Data Benchmark queries end-to-end on small tables and checks
// the encrypted pipeline against the plaintext executor (which materializes
// the same broadcast hash join).
#include "src/workload/bdb.h"

#include <gtest/gtest.h>

#include "src/query/plain_executor.h"
#include "src/seabed/session.h"

namespace seabed {
namespace {

std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class BdbTest : public ::testing::Test {
 protected:
  BdbTest() : session_(Options()) {
    spec_.rankings_rows = 500;
    spec_.uservisits_rows = 2000;
    spec_.num_urls = 300;
    rankings_ = MakeRankingsTable(spec_);
    uservisits_ = MakeUserVisitsTable(spec_);
    session_.Attach(rankings_, RankingsSchema(), RankingsSampleQueries());
    session_.Attach(uservisits_, UserVisitsSchema(), UserVisitsSampleQueries());
  }

  static SessionOptions Options() {
    SessionOptions options;
    options.backend = BackendKind::kSeabed;
    options.cluster.num_workers = 4;
    options.cluster.job_overhead_seconds = 0;
    options.cluster.task_overhead_seconds = 0;
    options.key_seed = 3;
    return options;
  }

  const Table& FactTable(const BdbQuery& bq) const {
    return bq.on_uservisits ? *uservisits_ : *rankings_;
  }

  ResultSet RunSeabed(const BdbQuery& bq) { return session_.Execute(bq.query); }

  ResultSet RunPlain(const BdbQuery& bq) {
    const Table* right = bq.query.join.has_value() ? rankings_.get() : nullptr;
    return ExecutePlain(FactTable(bq), bq.query, session_.cluster(), right, nullptr);
  }

  BdbSpec spec_;
  Session session_;
  std::shared_ptr<Table> rankings_;
  std::shared_ptr<Table> uservisits_;
};

TEST_F(BdbTest, QuerySetHasTenQueries) {
  const auto set = BdbQuerySet();
  ASSERT_EQ(set.size(), 10u);
  EXPECT_EQ(set[0].label, "Q1A");
  EXPECT_EQ(set[9].label, "Q4");
}

TEST_F(BdbTest, AllQueriesMatchPlaintext) {
  for (const BdbQuery& bq : BdbQuerySet()) {
    SCOPED_TRACE(bq.label);
    const ResultSet plain = RunPlain(bq);
    const ResultSet enc = RunSeabed(bq);
    EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain)) << bq.label;
  }
}

TEST_F(BdbTest, TablesHaveExpectedShape) {
  EXPECT_EQ(rankings_->NumRows(), 500u);
  EXPECT_EQ(uservisits_->NumRows(), 2000u);
  EXPECT_EQ(uservisits_->NumColumns(), 12u);
}

TEST_F(BdbTest, JoinKeysAreDetEncrypted) {
  EXPECT_TRUE(session_.encrypted_database("rankings").table->HasColumn("pageURL#det"));
  EXPECT_TRUE(session_.encrypted_database("uservisits").table->HasColumn("destURL#det"));
}

TEST_F(BdbTest, VisitDateIsOpe) {
  EXPECT_TRUE(session_.encrypted_database("uservisits").table->HasColumn("visitDate#ope"));
}

}  // namespace
}  // namespace seabed
