#include "src/workload/classifier.h"

#include <gtest/gtest.h>

#include "src/workload/ad_analytics.h"

namespace seabed {
namespace {

TEST(ClassifierTest, RulesInPriorityOrder) {
  Query q;
  q.table = "t";
  q.Sum("m");
  EXPECT_EQ(ClassifyQuery(q), QueryCategory::kServerOnly);
  q.Variance("m");
  EXPECT_EQ(ClassifyQuery(q), QueryCategory::kClientPre);
  q.has_udf = true;
  EXPECT_EQ(ClassifyQuery(q), QueryCategory::kClientPost);
  q.needs_two_round_trips = true;
  EXPECT_EQ(ClassifyQuery(q), QueryCategory::kTwoRoundTrips);
}

TEST(ClassifierTest, ServerSideAggregates) {
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kAvg, AggFunc::kMin, AggFunc::kMax}) {
    Query q;
    q.table = "t";
    q.aggregates.push_back({f, "m", "x"});
    EXPECT_EQ(ClassifyQuery(q), QueryCategory::kServerOnly) << AggFuncName(f);
  }
}

TEST(ClassifierTest, MdxSetMatchesTable6) {
  // Paper Table 4, MDX row: 38 total = 17 S + 12 CPre + 4 CPost + 5 2R.
  const CategoryCounts counts = ClassifyAll(MdxQuerySet());
  EXPECT_EQ(counts.Total(), 38u);
  EXPECT_EQ(counts.server_only, 17u);
  EXPECT_EQ(counts.client_pre, 12u);
  EXPECT_EQ(counts.client_post, 4u);
  EXPECT_EQ(counts.two_round_trips, 5u);
}

TEST(ClassifierTest, TpcDsSetMatchesTable4) {
  // Paper Table 4, TPC-DS row: 99 = 69 S + 2 CPre + 25 CPost + 3 2R.
  const CategoryCounts counts = ClassifyAll(TpcDsQuerySet());
  EXPECT_EQ(counts.Total(), 99u);
  EXPECT_EQ(counts.server_only, 69u);
  EXPECT_EQ(counts.client_pre, 2u);
  EXPECT_EQ(counts.client_post, 25u);
  EXPECT_EQ(counts.two_round_trips, 3u);
}

TEST(ClassifierTest, AdAnalyticsLogMatchesTable4) {
  // Paper Table 4, Ad Analytics row: 168,352 = 134,298 S + 34,054 CPost.
  AdAnalyticsSpec spec;
  const auto log = AdAnalyticsQueryLog(spec);
  const CategoryCounts counts = ClassifyAll(log);
  EXPECT_EQ(counts.Total(), 168352u);
  EXPECT_EQ(counts.server_only, 134298u);
  EXPECT_EQ(counts.client_pre, 0u);
  EXPECT_EQ(counts.client_post, 34054u);
  EXPECT_EQ(counts.two_round_trips, 0u);
}

TEST(ClassifierTest, CategoryNames) {
  EXPECT_STREQ(QueryCategoryName(QueryCategory::kServerOnly), "server-only");
  EXPECT_STREQ(QueryCategoryName(QueryCategory::kTwoRoundTrips), "two-round-trips");
}

}  // namespace
}  // namespace seabed
