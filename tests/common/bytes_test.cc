#include "src/common/bytes.h"

#include <gtest/gtest.h>

namespace seabed {
namespace {

TEST(BytesTest, PutGetU64RoundTrip) {
  Bytes buf;
  PutU64(buf, 0);
  PutU64(buf, 0x0123456789abcdefULL);
  PutU64(buf, ~uint64_t{0});
  ASSERT_EQ(buf.size(), 24u);
  EXPECT_EQ(GetU64(buf.data()), 0u);
  EXPECT_EQ(GetU64(buf.data() + 8), 0x0123456789abcdefULL);
  EXPECT_EQ(GetU64(buf.data() + 16), ~uint64_t{0});
}

TEST(BytesTest, PutGetU32RoundTrip) {
  Bytes buf;
  PutU32(buf, 0xdeadbeef);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(GetU32(buf.data()), 0xdeadbeefu);
}

TEST(BytesTest, ToHex) {
  const Bytes data = {0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(ToHex(data), "000fa5ff");
  EXPECT_EQ(ToHex(nullptr, 0), "");
}

}  // namespace
}  // namespace seabed
