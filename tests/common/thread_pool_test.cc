#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace seabed {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZero) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForSingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, NestedSubmissionFromTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace seabed
