#include "src/common/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace seabed {
namespace {

struct Item {
  int id = 0;
  std::string shape;
  bool barrier = false;
};

bool SameShape(const Item& a, const Item& b) { return a.shape == b.shape; }
bool IsBarrier(const Item& x) { return x.barrier; }

TEST(MpmcQueueTest, TryPushRejectsBeyondDepth) {
  MpmcQueue<Item> q(/*max_depth=*/3, /*lanes=*/2);
  EXPECT_TRUE(q.TryPush({1, "a", false}, 0));
  EXPECT_TRUE(q.TryPush({2, "a", false}, 1));
  EXPECT_TRUE(q.TryPush({3, "a", false}, 0));
  EXPECT_FALSE(q.TryPush({4, "a", false}, 0));  // depth budget shared by lanes
  EXPECT_EQ(q.size(), 3u);
}

TEST(MpmcQueueTest, TryPushRejectsAfterClose) {
  MpmcQueue<Item> q(8);
  q.Close();
  EXPECT_FALSE(q.TryPush({1, "a", false}));
}

TEST(MpmcQueueTest, PopGroupBatchesConsecutiveSameShape) {
  MpmcQueue<Item> q(16);
  for (int i = 0; i < 3; ++i) q.TryPush({i, "sum", false});
  q.TryPush({3, "groupby", false});
  q.TryPush({4, "sum", false});

  std::vector<Item> group;
  EXPECT_EQ(q.PopGroup(&group, 8, SameShape, IsBarrier), 3u);
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group[0].id, 0);
  EXPECT_EQ(group[2].id, 2);
  q.GroupDone();

  group.clear();
  EXPECT_EQ(q.PopGroup(&group, 8, SameShape, IsBarrier), 1u);
  EXPECT_EQ(group[0].id, 3);
  q.GroupDone();

  group.clear();
  EXPECT_EQ(q.PopGroup(&group, 8, SameShape, IsBarrier), 1u);
  EXPECT_EQ(group[0].id, 4);
  q.GroupDone();
}

TEST(MpmcQueueTest, PopGroupHonorsMaxBatch) {
  MpmcQueue<Item> q(16);
  for (int i = 0; i < 5; ++i) q.TryPush({i, "sum", false});
  std::vector<Item> group;
  EXPECT_EQ(q.PopGroup(&group, 2, SameShape, IsBarrier), 2u);
  q.GroupDone();
  EXPECT_EQ(q.size(), 3u);
}

TEST(MpmcQueueTest, LowerLaneWins) {
  MpmcQueue<Item> q(16, /*lanes=*/2);
  q.TryPush({1, "batch", false}, 1);
  q.TryPush({2, "interactive", false}, 0);
  std::vector<Item> group;
  EXPECT_EQ(q.PopGroup(&group, 8, SameShape, IsBarrier), 1u);
  EXPECT_EQ(group[0].id, 2);  // lane 0 first even though pushed later
  q.GroupDone();
}

TEST(MpmcQueueTest, CloseDrainsThenReturnsZero) {
  MpmcQueue<Item> q(16);
  q.TryPush({1, "a", false});
  q.Close();
  std::vector<Item> group;
  EXPECT_EQ(q.PopGroup(&group, 8, SameShape, IsBarrier), 1u);
  q.GroupDone();
  group.clear();
  EXPECT_EQ(q.PopGroup(&group, 8, SameShape, IsBarrier), 0u);  // drained + closed
}

TEST(MpmcQueueTest, DrainRipsOutBacklog) {
  MpmcQueue<Item> q(16, 2);
  q.TryPush({1, "a", false}, 1);
  q.TryPush({2, "a", false}, 0);
  std::vector<Item> dropped = q.Drain();
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_EQ(dropped[0].id, 2);  // lane order
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.TryPush({3, "a", false}));  // drain does not close
}

TEST(MpmcQueueTest, BarrierWaitsForActiveGroupsAndRunsAlone) {
  MpmcQueue<Item> q(16);
  q.TryPush({1, "sum", false});
  q.TryPush({2, "", true});  // barrier
  q.TryPush({3, "sum", false});

  std::vector<Item> first;
  ASSERT_EQ(q.PopGroup(&first, 8, SameShape, IsBarrier), 1u);
  EXPECT_EQ(first[0].id, 1);  // group stops at the barrier

  std::atomic<int> stage{0};
  std::thread barrier_worker([&] {
    std::vector<Item> g;
    ASSERT_EQ(q.PopGroup(&g, 8, SameShape, IsBarrier), 1u);  // blocks on quiesce
    EXPECT_TRUE(g[0].barrier);
    stage.store(1);
    q.Thaw();
    q.GroupDone();
  });

  // The barrier must not pop while group 1 is still active.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(stage.load(), 0);
  q.GroupDone();  // finish group 1 -> barrier proceeds
  barrier_worker.join();
  EXPECT_EQ(stage.load(), 1);

  std::vector<Item> last;
  EXPECT_EQ(q.PopGroup(&last, 8, SameShape, IsBarrier), 1u);
  EXPECT_EQ(last[0].id, 3);
  q.GroupDone();
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kItemsPer = 200;
  MpmcQueue<Item> q(64, 2);
  std::atomic<int> seen{0};
  std::vector<std::atomic<int>> counts(kProducers * kItemsPer);

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<Item> group;
      for (;;) {
        group.clear();
        if (q.PopGroup(&group, 4, SameShape, IsBarrier) == 0) return;
        for (const Item& item : group) {
          counts[static_cast<size_t>(item.id)].fetch_add(1);
          seen.fetch_add(1);
        }
        q.GroupDone();
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsPer; ++i) {
        Item item{p * kItemsPer + i, p % 2 == 0 ? "even" : "odd", false};
        while (!q.TryPush(item, static_cast<size_t>(p % 2))) {
          std::this_thread::yield();  // backpressure: retry until admitted
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  while (seen.load() < kProducers * kItemsPer) std::this_thread::yield();
  q.Close();
  for (std::thread& t : consumers) t.join();

  for (const std::atomic<int>& n : counts) EXPECT_EQ(n.load(), 1);
}

}  // namespace
}  // namespace seabed
