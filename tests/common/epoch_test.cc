// EpochDomain: the reclamation protocol under the snapshot-isolated read
// path. The unit tests pin the deferred-destruction contract (a guard keeps
// retired objects alive; quiescence frees them); the stress test at the
// bottom is the TSan centerpiece for the epoch machinery — publish/retire
// churn against lock-free readers, with a torn-read tripwire in the payload.
// Everything here is fast-tier on purpose: the sanitizer CI jobs run
// `ctest -LE slow`, and this is exactly the code they must cover.
#include "src/common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

namespace seabed {
namespace {

// Retire-visible payload: destruction bumps the counter, and the two halves
// let readers detect a torn or stale view (the writer keeps them equal).
struct Payload {
  explicit Payload(std::atomic<size_t>* destroyed, uint64_t value)
      : destroyed_(destroyed) {
    a.store(value, std::memory_order_relaxed);
    b.store(value, std::memory_order_relaxed);
  }
  ~Payload() { destroyed_->fetch_add(1, std::memory_order_relaxed); }

  std::atomic<size_t>* destroyed_;
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
};

TEST(EpochDomainTest, RetireWithoutGuardsFreesImmediately) {
  EpochDomain domain;
  std::atomic<size_t> destroyed{0};
  domain.Retire(std::make_shared<const Payload>(&destroyed, 1));
  EXPECT_EQ(destroyed.load(), 1u);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomainTest, ActiveGuardKeepsRetiredObjectAlive) {
  EpochDomain domain;
  std::atomic<size_t> destroyed{0};
  {
    EpochDomain::Guard guard(domain);
    domain.Retire(std::make_shared<const Payload>(&destroyed, 1));
    // The guard pinned an epoch at or before the retirement stamp: the
    // object must survive the guard's whole critical section.
    EXPECT_EQ(destroyed.load(), 0u);
    EXPECT_EQ(domain.retired_count(), 1u);
    domain.Collect();  // still pinned: a collect must not free it
    EXPECT_EQ(destroyed.load(), 0u);
  }
  domain.Collect();
  EXPECT_EQ(destroyed.load(), 1u);
  EXPECT_EQ(domain.retired_count(), 0u);
}

TEST(EpochDomainTest, GuardDoesNotPinObjectsRetiredAfterItsEpoch) {
  EpochDomain domain;
  std::atomic<size_t> old_destroyed{0};
  std::atomic<size_t> new_destroyed{0};
  std::optional<EpochDomain::Guard> guard;
  guard.emplace(domain);
  domain.Retire(std::make_shared<const Payload>(&old_destroyed, 1));
  EXPECT_EQ(old_destroyed.load(), 0u);  // pinned by the guard

  // A second retirement stamps a later epoch; the old guard pins BOTH (its
  // pinned epoch precedes both stamps), so nothing frees until it drops.
  domain.Retire(std::make_shared<const Payload>(&new_destroyed, 2));
  EXPECT_EQ(domain.retired_count(), 2u);
  guard.reset();
  domain.Collect();
  EXPECT_EQ(old_destroyed.load(), 1u);
  EXPECT_EQ(new_destroyed.load(), 1u);
}

TEST(EpochDomainTest, NestedGuardsOnOneThreadEachClaimASlot) {
  EpochDomain domain;
  std::atomic<size_t> destroyed{0};
  {
    EpochDomain::Guard outer(domain);
    {
      EpochDomain::Guard inner(domain);
      domain.Retire(std::make_shared<const Payload>(&destroyed, 1));
      EXPECT_EQ(destroyed.load(), 0u);
    }
    // Inner released; outer still pins the pre-retirement epoch.
    domain.Collect();
    EXPECT_EQ(destroyed.load(), 0u);
  }
  domain.Collect();
  EXPECT_EQ(destroyed.load(), 1u);
}

TEST(EpochDomainTest, RetireAdvancesTheEpoch) {
  EpochDomain domain;
  std::atomic<size_t> destroyed{0};
  const uint64_t before = domain.epoch();
  domain.Retire(std::make_shared<const Payload>(&destroyed, 1));
  domain.Retire(std::make_shared<const Payload>(&destroyed, 2));
  EXPECT_EQ(domain.epoch(), before + 2);
}

// The TSan stress for the whole publish/pin/retire machinery, shaped exactly
// like the backends' read path: a writer republishes an atomic pointer and
// retires the predecessor; readers pin a guard, load the pointer, and
// dereference. Any reclamation bug is a use-after-free (ASan) or a data race
// (TSan); the a==b tripwire additionally catches a torn snapshot even in an
// unsanitized run.
TEST(EpochDomainStressTest, ReadersNeverTouchFreedVersions) {
  EpochDomain domain;
  std::atomic<size_t> destroyed{0};
  constexpr size_t kReaders = 4;
  constexpr uint64_t kPublishes = 2000;

  // `owner` is the ONLY long-lived reference to the published payload; any
  // extra copy would keep a retired version alive past Collect() below.
  std::shared_ptr<const Payload> owner =
      std::make_shared<const Payload>(&destroyed, 0);
  std::atomic<const Payload*> current{owner.get()};

  std::atomic<bool> done{false};
  std::atomic<size_t> torn{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        EpochDomain::Guard guard(domain);
        const Payload* p = current.load(std::memory_order_seq_cst);
        const uint64_t a = p->a.load(std::memory_order_relaxed);
        const uint64_t b = p->b.load(std::memory_order_relaxed);
        if (a != b) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (uint64_t i = 1; i <= kPublishes; ++i) {
    auto next = std::make_shared<const Payload>(&destroyed, i);
    current.store(next.get(), std::memory_order_seq_cst);
    std::shared_ptr<const Payload> old = std::move(owner);
    owner = std::move(next);
    domain.Retire(std::move(old));  // publish first, retire second
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) {
    reader.join();
  }

  EXPECT_EQ(torn.load(), 0u);
  domain.Collect();
  EXPECT_EQ(domain.retired_count(), 0u);
  // Every retired predecessor was freed; only the live version remains.
  EXPECT_EQ(destroyed.load(), kPublishes);
  EXPECT_EQ(current.load()->a.load(), kPublishes);
}

}  // namespace
}  // namespace seabed
