#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace seabed {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, UniformityRoughCheck) {
  Rng rng(19);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.Below(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfSampler zipf(50, 1.1);
  double total = 0;
  for (uint64_t k = 0; k < 50; ++k) {
    total += zipf.Pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsDecreasing) {
  const ZipfSampler zipf(20, 1.3);
  for (uint64_t k = 1; k < 20; ++k) {
    EXPECT_GT(zipf.Pmf(k - 1), zipf.Pmf(k));
  }
}

TEST(ZipfTest, SampleMatchesPmf) {
  const ZipfSampler zipf(8, 1.0);
  Rng rng(23);
  std::array<int, 8> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfTest, SingleValueDomain) {
  const ZipfSampler zipf(1, 2.0);
  Rng rng(29);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace seabed
