// Prepared-statement mechanics: `?` placeholders through the parser,
// placeholder-aware fingerprints, Prepare-time slot validation, the
// translate-once/bind-per-call contract on every backend (with the SPLASHE
// bind-then-ad-hoc fallback), the plan-cache churn regression the LRU
// rewrite fixes, and prepared submissions through seabed::Service.
// Row-level equivalence across random shapes is pinned by the prepared axis
// of the fuzz equivalence suite; this file tests the machinery itself.
#include "src/seabed/prepared.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/query/parser.h"
#include "src/seabed/service.h"
#include "src/seabed/session.h"
#include "src/seabed/translator.h"
#include "tests/seabed/test_util.h"

namespace seabed {
namespace {

SessionOptions TestOptions(BackendKind backend) {
  SessionOptions options;
  options.backend = backend;
  options.shards = 3;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.planner.expected_rows = 600;
  options.paillier.modulus_bits = 256;
  options.key_seed = 777;
  return options;
}

std::shared_ptr<Table> MakeFactTable(size_t rows, uint64_t seed) {
  auto table = std::make_shared<Table>("sales");
  auto region = std::make_shared<StringColumn>();
  auto store = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto amount = std::make_shared<Int64Column>();
  Rng rng(seed);
  const char* regions[] = {"na", "eu", "apac"};
  const char* stores[] = {"s1", "s2", "s3", "s4"};
  for (size_t i = 0; i < rows; ++i) {
    region->Append(regions[rng.Below(3)]);
    store->Append(stores[rng.Below(4)]);
    ts->Append(static_cast<int64_t>(rng.Below(100)));
    amount->Append(rng.Range(-100, 1000));
  }
  table->AddColumn("region", region);
  table->AddColumn("store", store);
  table->AddColumn("ts", ts);
  table->AddColumn("amount", amount);
  return table;
}

PlainSchema FactSchema() {
  PlainSchema schema;
  schema.table_name = "sales";
  ValueDistribution regions;
  regions.values = {"na", "eu", "apac"};
  regions.frequencies = {0.34, 0.33, 0.33};
  schema.columns.push_back({"region", ColumnType::kString, true, regions});
  schema.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"amount", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

std::vector<Query> SampleQueries() {
  std::vector<Query> samples;
  {
    Query q;
    q.table = "sales";
    q.Sum("amount").Count().Avg("amount");
    q.Where("region", CmpOp::kEq, std::string("na"));
    q.GroupBy("store");
    samples.push_back(q);
  }
  {
    Query q;
    q.table = "sales";
    q.Min("ts").Max("ts").Where("ts", CmpOp::kGe, int64_t{0});
    samples.push_back(q);
  }
  return samples;
}

// DET equality + ORE range, both parameterized (`store` stays DET: only
// `region` is SPLASHE-planned via its value distribution).
Query TwoSlotShape() {
  Query q;
  q.table = "sales";
  q.Sum("amount", "total").Count("n");
  q.WhereParam("store", CmpOp::kEq);
  q.WhereParam("ts", CmpOp::kGe);
  return q;
}

// --- parser / fingerprint ----------------------------------------------------

TEST(PreparedParserTest, QuestionMarksBecomeContiguousSlots) {
  const Query q = MustParseSql(
      "SELECT SUM(amount) AS total FROM sales WHERE ts >= ? AND store = ? GROUP BY store");
  ASSERT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.filters[0].param, 0);
  EXPECT_EQ(q.filters[1].param, 1);
  EXPECT_EQ(q.num_params(), 2u);
  EXPECT_TRUE(q.has_params());
}

TEST(PreparedParserTest, BindParamsReproducesTheLiteralQuery) {
  const Query shape =
      MustParseSql("SELECT SUM(amount) AS total FROM sales WHERE ts >= ? AND store = ?");
  const Query literal =
      MustParseSql("SELECT SUM(amount) AS total FROM sales WHERE ts >= 42 AND store = 's2'");
  const std::vector<Value> params = {int64_t{42}, std::string("s2")};
  EXPECT_EQ(shape.BindParams(params).Fingerprint(Query::FingerprintMode::kExact),
            literal.Fingerprint(Query::FingerprintMode::kExact));
  // Unbound, the exact fingerprints must differ (the slot renders as `?0`,
  // never colliding with a typed literal)...
  EXPECT_NE(shape.Fingerprint(Query::FingerprintMode::kExact),
            literal.Fingerprint(Query::FingerprintMode::kExact));
  // ...while the shape fingerprints agree: a placeholder and a moving
  // literal are the same dashboard shape.
  EXPECT_EQ(shape.Fingerprint(Query::FingerprintMode::kShape),
            literal.Fingerprint(Query::FingerprintMode::kShape));
}

TEST(PreparedParserTest, TwoShapesDifferingInAFixedLiteralKeepDistinctPlanKeys) {
  const Query a = MustParseSql("SELECT SUM(amount) FROM sales WHERE store = 's1' AND ts >= ?");
  const Query b = MustParseSql("SELECT SUM(amount) FROM sales WHERE store = 's2' AND ts >= ?");
  // Same shape fingerprint (both literals erase), but the plan-key half must
  // differ: the fixed literal's DET token is baked into the translated plan.
  EXPECT_EQ(a.Fingerprint(Query::FingerprintMode::kShape),
            b.Fingerprint(Query::FingerprintMode::kShape));
  EXPECT_NE(a.Fingerprint(Query::FingerprintMode::kExact),
            b.Fingerprint(Query::FingerprintMode::kExact));
}

// --- Prepare validation ------------------------------------------------------

TEST(PreparedDeathTest, NonContiguousSlotsFailAtPrepare) {
  Session session(TestOptions(BackendKind::kPlain));
  session.Attach(MakeFactTable(50, 1), FactSchema(), SampleQueries());
  Query q;
  q.table = "sales";
  q.Sum("amount");
  q.Where("ts", CmpOp::kGe, int64_t{0});
  q.filters[0].param = 1;  // slot 0 unused
  EXPECT_DEATH(session.Prepare(q), "not contiguous");
}

TEST(PreparedDeathTest, DuplicateSlotsFailAtPrepare) {
  Session session(TestOptions(BackendKind::kPlain));
  session.Attach(MakeFactTable(50, 1), FactSchema(), SampleQueries());
  Query q;
  q.table = "sales";
  q.Sum("amount");
  q.WhereParam("ts", CmpOp::kGe);
  q.Where("ts", CmpOp::kLt, int64_t{50});
  q.filters[1].param = 0;  // reuses slot 0
  EXPECT_DEATH(session.Prepare(q), "used twice");
}

TEST(PreparedDeathTest, BindWithWrongArityFails) {
  const Query shape = MustParseSql("SELECT SUM(amount) FROM sales WHERE ts >= ?");
  EXPECT_DEATH(shape.BindParams(std::vector<Value>{}), "placeholder slot");
}

// --- backend matrix ----------------------------------------------------------

class PreparedBackendTest : public ::testing::Test {
 protected:
  void Build(BackendKind backend) {
    SessionOptions options = TestOptions(backend);
    if (backend == BackendKind::kCachingSeabed) {
      options.cache.inner = BackendKind::kSeabed;
    }
    session_ = std::make_unique<Session>(options);
    plain_ = std::make_unique<Session>(TestOptions(BackendKind::kPlain));
    const auto fact = MakeFactTable(600, 99);
    session_->Attach(CloneTable(*fact), FactSchema(), SampleQueries());
    plain_->Attach(CloneTable(*fact), FactSchema(), SampleQueries());
  }

  void RunMatrix() {
    const Query shape = TwoSlotShape();
    const std::vector<Value> params = {std::string("s2"), int64_t{30}};
    const auto reference = RowsAsStrings(plain_->Execute(shape.BindParams(params)));
    ExpectPreparedStatsInvariants(*session_, shape, params, reference);

    // Fresh literals through the same handle keep matching the plaintext
    // reference (the fuzz suite covers random shapes; this pins the re-bind).
    const PreparedQuery prepared = session_->Prepare(shape);
    EXPECT_TRUE(prepared.parameterized());
    for (int64_t bound = 0; bound < 4; ++bound) {
      const std::vector<Value> p = {std::string("s1"), bound * 25};
      EXPECT_EQ(RowsAsStrings(session_->Execute(prepared, p)),
                RowsAsStrings(plain_->Execute(shape.BindParams(p))))
          << "bound=" << bound;
    }
  }

  std::unique_ptr<Session> session_;
  std::unique_ptr<Session> plain_;
};

TEST_F(PreparedBackendTest, Plain) {
  Build(BackendKind::kPlain);
  RunMatrix();
}

TEST_F(PreparedBackendTest, Seabed) {
  Build(BackendKind::kSeabed);
  RunMatrix();
}

TEST_F(PreparedBackendTest, Paillier) {
  Build(BackendKind::kPaillier);
  RunMatrix();
}

TEST_F(PreparedBackendTest, ShardedSeabed) {
  Build(BackendKind::kShardedSeabed);
  RunMatrix();
}

TEST_F(PreparedBackendTest, CachingSeabed) {
  Build(BackendKind::kCachingSeabed);
  RunMatrix();
}

TEST_F(PreparedBackendTest, SplasheSlotsFallBackAndStayCorrect) {
  Build(BackendKind::kSeabed);
  Query shape;
  shape.table = "sales";
  shape.Sum("amount", "total").Count("n");
  shape.WhereParam("region", CmpOp::kEq);  // SPLASHE-protected dimension
  const PreparedQuery prepared = session_->Prepare(shape);
  EXPECT_FALSE(prepared.parameterized());
  for (const char* region : {"na", "eu", "apac"}) {
    const std::vector<Value> params = {std::string(region)};
    QueryStats stats;
    EXPECT_EQ(RowsAsStrings(session_->Execute(prepared, params, &stats)),
              RowsAsStrings(plain_->Execute(shape.BindParams(params))))
        << "region=" << region;
    EXPECT_TRUE(stats.prepared);  // the fallback still reports prepared stats
  }
}

TEST_F(PreparedBackendTest, SweepTranslatesExactlyOncePerShape) {
  Build(BackendKind::kSeabed);
  auto cache = std::make_shared<TranslatedPlanCache>(64);
  session_->executor().SetPlanCache(cache);

  const Query shape = TwoSlotShape();
  const PreparedQuery prepared = session_->Prepare(shape);
  constexpr int kSweep = 40;
  for (int i = 0; i < kSweep; ++i) {
    QueryStats stats;
    const std::vector<Value> p = {std::string("s3"), int64_t{i}};
    session_->Execute(prepared, p, &stats);
    EXPECT_EQ(stats.plan_cache_hit, i > 0);
  }
  // One shape, one translation — the moving literal never mints a plan key.
  EXPECT_EQ(cache->size(), 1u);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->hits(), static_cast<uint64_t>(kSweep - 1));

  // The same sweep ad-hoc pays one plan entry (and one miss) per literal.
  for (int i = 0; i < kSweep; ++i) {
    const std::vector<Value> p = {std::string("s3"), int64_t{i}};
    session_->Execute(shape.BindParams(p));
  }
  EXPECT_EQ(cache->misses(), 1u + kSweep);
}

// --- plan-cache churn regression ---------------------------------------------
// The pre-LRU cache kept a FIFO insertion_order_ deque that (a) grew by one
// entry per Insert even for keys already resident, and (b) evicted the
// OLDEST insertion regardless of use — so a moving-literal dashboard's
// one-shot plans flushed the hot shape entries prepared statements live on.
// A 10k-literal sweep of one shape must leave the cache at its budget with
// the hot entry resident, and re-inserting one key 10k times must not grow
// anything.

TEST(TranslatedPlanCacheChurnTest, RepeatedInsertsOfOneKeyDoNotGrow) {
  TranslatedPlanCache cache(8);
  const auto plan = std::make_shared<const TranslatedQuery>();
  for (int i = 0; i < 10000; ++i) {
    cache.Insert("hot-shape", plan);
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Find("hot-shape"), nullptr);
}

TEST(TranslatedPlanCacheChurnTest, HotShapeSurvivesTenThousandLiteralChurn) {
  TranslatedPlanCache cache(8);
  const auto plan = std::make_shared<const TranslatedQuery>();
  cache.Insert("hot-shape", plan);
  // One shape swept across 10k literals: each bound query mints a one-shot
  // exact-keyed plan. The hot entry is touched between insertions (as a
  // prepared dashboard would) and must never be evicted by the churn.
  for (int i = 0; i < 10000; ++i) {
    cache.Insert("literal-" + std::to_string(i), plan);
    ASSERT_NE(cache.Find("hot-shape"), nullptr) << "evicted at literal " << i;
    ASSERT_LE(cache.size(), 8u);
  }
  EXPECT_EQ(cache.size(), 8u);
  // FIFO would have kept the earliest insertions; LRU keeps the latest churn
  // keys plus the hot entry.
  EXPECT_NE(cache.Find("literal-9999"), nullptr);
  EXPECT_EQ(cache.Find("literal-0"), nullptr);
}

// --- service -----------------------------------------------------------------

TEST(PreparedServiceTest, SubmitPreparedBatchesOnTheHandleAndCoalescesDuplicates) {
  ServiceOptions options;
  options.session = TestOptions(BackendKind::kSeabed);
  options.num_workers = 2;
  options.max_batch = 8;
  options.autostart = false;
  Service service(options);
  const auto fact = MakeFactTable(600, 7);
  service.Attach(CloneTable(*fact), FactSchema(), SampleQueries());

  Session plain(TestOptions(BackendKind::kPlain));
  plain.Attach(CloneTable(*fact), FactSchema(), SampleQueries());

  Query shape;
  shape.table = "sales";
  shape.Sum("amount", "total").Count("n");
  shape.WhereParam("ts", CmpOp::kGe);
  const PreparedQuery prepared = service.Prepare(shape);

  // Queue before Start so the whole burst is poppable as shape groups; the
  // duplicate parameter vector must coalesce onto one execution.
  constexpr int kDistinct = 6;
  std::vector<std::future<ServiceResult>> futures;
  std::vector<int64_t> bounds;
  for (int i = 0; i < kDistinct; ++i) {
    bounds.push_back(i * 10);
    futures.push_back(service.SubmitPrepared(prepared, {int64_t{i * 10}}));
  }
  bounds.push_back(0);
  futures.push_back(service.SubmitPrepared(prepared, {int64_t{0}}));  // duplicate
  service.Start();

  for (size_t i = 0; i < futures.size(); ++i) {
    ServiceResult r = futures[i].get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.stats.query.prepared);
    Query bound = shape;
    bound.filters[0].param = -1;
    bound.filters[0].operand = bounds[i];
    EXPECT_EQ(RowsAsStrings(r.rows), RowsAsStrings(plain.Execute(bound)))
        << "bound=" << bounds[i];
  }
  service.Shutdown();

  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.executed, static_cast<uint64_t>(kDistinct) + 1);
  EXPECT_GE(counters.coalesced, 1u);
  EXPECT_GE(counters.max_group, 2u);  // prepared submissions grouped on the handle
  // Every execution reused the one translated shape plan.
  EXPECT_EQ(service.plan_cache().size(), 1u);
}

}  // namespace
}  // namespace seabed
