// Scan-kernel correctness: every vectorized kernel must agree bit-for-bit
// with the scalar predicate it replaces, across all CmpOps, negation, word
// tails (n not a multiple of 64) and pre-thinned bitmaps. On a SIMD build
// this exercises the dispatched ISA paths; under SEABED_NO_SIMD the same
// assertions pin the portable fallback.
#include "src/seabed/scan_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/ore.h"

namespace seabed {
namespace {

constexpr CmpOp kAllOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                             CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};

// Sizes straddling word and SIMD-lane boundaries, plus a full row group.
constexpr size_t kSizes[] = {0, 1, 3, 63, 64, 65, 127, 128, 130, 1000, 4096};

TEST(ScanKernelsTest, IsaNameIsKnown) {
  const std::string isa = ScanKernelIsaName();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "neon" || isa == "scalar") << isa;
}

TEST(ScanKernelsTest, DetEqMatchesScalar) {
  Rng rng(11);
  for (const size_t n : kSizes) {
    std::vector<uint64_t> tokens(n);
    const uint64_t needle = 0xabcdef0123456789ULL;
    for (size_t i = 0; i < n; ++i) {
      // ~1/4 of rows match so both verdicts are well represented.
      tokens[i] = rng.Below(4) == 0 ? needle : rng.Next();
    }
    for (const bool negate : {false, true}) {
      SelectionBitmap sel(n, /*all_set=*/true);
      FilterDetEq(tokens.data(), n, negate, needle, sel);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sel.Test(i), (tokens[i] == needle) != negate) << n << " @" << i;
      }
    }
  }
}

TEST(ScanKernelsTest, Int64CmpMatchesScalarAllOps) {
  Rng rng(12);
  for (const size_t n : kSizes) {
    std::vector<int64_t> values(n);
    for (size_t i = 0; i < n; ++i) {
      // Small range around the operand, including negatives, so every
      // comparison outcome occurs; a few extremes to catch overflow tricks.
      values[i] = static_cast<int64_t>(rng.Below(41)) - 20;
      if (rng.Below(32) == 0) {
        values[i] = rng.Below(2) ? INT64_MAX : INT64_MIN;
      }
    }
    for (const CmpOp op : kAllOps) {
      for (const int64_t operand : {int64_t{0}, int64_t{-7}, INT64_MAX, INT64_MIN}) {
        SelectionBitmap sel(n, /*all_set=*/true);
        FilterInt64Cmp(values.data(), n, op, operand, sel);
        for (size_t i = 0; i < n; ++i) {
          const int64_t v = values[i];
          const int order = v < operand ? -1 : (v > operand ? 1 : 0);
          EXPECT_EQ(sel.Test(i), CmpOpMatchesOrder(op, order))
              << n << " @" << i << " op=" << static_cast<int>(op);
        }
      }
    }
  }
}

TEST(ScanKernelsTest, OreCmpMatchesScalarAllOps) {
  const Ore ore(AesKey::FromSeed(99));
  Rng rng(13);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{65}, size_t{1000}}) {
    // Cluster plaintexts around the operand so ciphertexts share long
    // prefixes (the realistic timestamp case) and equality occurs.
    const uint64_t pivot = 1'600'000'000;
    std::vector<uint64_t> plain(n);
    std::vector<OreCiphertext> cells(n);
    for (size_t i = 0; i < n; ++i) {
      plain[i] = pivot + rng.Below(200) - 100;
      cells[i] = ore.Encrypt(plain[i]);
    }
    const OreCiphertext operand = ore.Encrypt(pivot);
    for (const CmpOp op : kAllOps) {
      SelectionBitmap sel(n, /*all_set=*/true);
      FilterOreCmp(cells.data(), n, op, operand, sel);
      for (size_t i = 0; i < n; ++i) {
        const int order = Ore::Compare(cells[i], operand).order;
        EXPECT_EQ(sel.Test(i), CmpOpMatchesOrder(op, order))
            << n << " @" << i << " op=" << static_cast<int>(op);
      }
    }
  }
}

TEST(ScanKernelsTest, KernelsAndIntoPrethinnedBitmap) {
  // Kernels AND into the bitmap: a bit cleared by an earlier predicate must
  // stay cleared even where the later predicate matches.
  const size_t n = 200;
  std::vector<uint64_t> tokens(n, 42);  // every row matches DET eq
  SelectionBitmap sel(n, /*all_set=*/true);
  for (size_t i = 0; i < n; i += 2) {
    sel.Clear(i);
  }
  FilterDetEq(tokens.data(), n, /*negate=*/false, 42, sel);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sel.Test(i), i % 2 == 1) << i;
  }

  // Same for the ORE kernel (it skips already-dead words).
  const Ore ore(AesKey::FromSeed(7));
  std::vector<OreCiphertext> cells(n, ore.Encrypt(5));
  FilterOreCmp(cells.data(), n, CmpOp::kLe, ore.Encrypt(9), sel);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sel.Test(i), i % 2 == 1) << i;
  }
}

TEST(ScanKernelsTest, ScanModeRoundTrips) {
  EXPECT_EQ(ServerScanMode(), ScanMode::kVectorized);
  SetServerScanMode(ScanMode::kRowAtATime);
  EXPECT_EQ(ServerScanMode(), ScanMode::kRowAtATime);
  SetServerScanMode(ScanMode::kVectorized);
  EXPECT_EQ(ServerScanMode(), ScanMode::kVectorized);
}

}  // namespace
}  // namespace seabed
