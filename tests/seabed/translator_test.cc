// Structural tests on the translator's output plans (complement to the
// black-box end-to-end suite).
#include "src/seabed/translator.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/seabed/planner.h"

namespace seabed {
namespace {

class TranslatorTest : public ::testing::Test {
 protected:
  TranslatorTest() : keys_(ClientKeys::FromSeed(44)) {
    schema_.table_name = "t";
    ValueDistribution dist;
    dist.values = {"a", "b", "c", "d"};
    dist.frequencies = {0.55, 0.30, 0.10, 0.05};
    schema_.columns.push_back({"dim", ColumnType::kString, true, dist});
    schema_.columns.push_back({"grp", ColumnType::kString, true, std::nullopt});
    schema_.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"m", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"plain_col", ColumnType::kInt64, false, std::nullopt});

    std::vector<Query> samples;
    {
      Query q;
      q.table = "t";
      q.Sum("m").Count().Where("dim", CmpOp::kEq, std::string("c"));
      samples.push_back(q);
      Query q2;
      q2.table = "t";
      q2.Variance("m").Where("ts", CmpOp::kGe, int64_t{10}).GroupBy("grp");
      samples.push_back(q2);
      Query q3;
      q3.table = "t";
      q3.Min("ts").Max("ts");
      samples.push_back(q3);
    }
    PlannerOptions popts;
    popts.expected_rows = 1000;
    plan_ = PlanEncryption(schema_, samples, popts);

    // Tiny table (the translator needs det_value_types from a real encrypt).
    auto table = std::make_shared<Table>("t");
    auto dim = std::make_shared<StringColumn>();
    auto grp = std::make_shared<StringColumn>();
    auto ts = std::make_shared<Int64Column>();
    auto m = std::make_shared<Int64Column>();
    auto pc = std::make_shared<Int64Column>();
    Rng rng(4);
    const char* values[] = {"a", "a", "a", "b", "b", "c", "d", "a", "b", "a"};
    for (int i = 0; i < 100; ++i) {
      dim->Append(values[i % 10]);
      grp->Append(i % 2 ? "g1" : "g2");
      ts->Append(i);
      m->Append(i * 3);
      pc->Append(i % 7);
    }
    table->AddColumn("dim", dim);
    table->AddColumn("grp", grp);
    table->AddColumn("ts", ts);
    table->AddColumn("m", m);
    table->AddColumn("plain_col", pc);
    const Encryptor encryptor(keys_);
    db_ = encryptor.Encrypt(*table, schema_, plan_);
  }

  TranslatedQuery Translate(const Query& q, TranslatorOptions topts = {}) {
    const Translator translator(db_, keys_);
    return translator.Translate(q, topts);
  }

  ClientKeys keys_;
  PlainSchema schema_;
  EncryptionPlan plan_;
  EncryptedDatabase db_;
};

TEST_F(TranslatorTest, SplasheFrequentValueRemovesPredicate) {
  Query q;
  q.table = "t";
  q.Sum("m").Where("dim", CmpOp::kEq, std::string("a"));
  const TranslatedQuery tq = Translate(q);
  EXPECT_TRUE(tq.server.predicates.empty());
  ASSERT_EQ(tq.server.aggregates.size(), 1u);
  EXPECT_EQ(tq.server.aggregates[0].column, "m@a#ashe");
}

TEST_F(TranslatorTest, SplasheInfrequentValueUsesDetAndOthers) {
  Query q;
  q.table = "t";
  q.Sum("m").Count().Where("dim", CmpOp::kEq, std::string("d"));
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.server.predicates.size(), 1u);
  EXPECT_EQ(tq.server.predicates[0].kind, ServerPredicate::Kind::kDetEq);
  EXPECT_EQ(tq.server.predicates[0].column, "dim#det");
  ASSERT_EQ(tq.server.aggregates.size(), 2u);
  EXPECT_EQ(tq.server.aggregates[0].column, "m@#ashe");
  EXPECT_EQ(tq.server.aggregates[1].column, "dim@#cnt");  // count via indicator
}

TEST_F(TranslatorTest, SplasheCountUsesIndicatorNotRowCount) {
  Query q;
  q.table = "t";
  q.Count().Where("dim", CmpOp::kEq, std::string("a"));
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.server.aggregates.size(), 1u);
  EXPECT_EQ(tq.server.aggregates[0].kind, ServerAggregate::Kind::kAsheSum);
  EXPECT_EQ(tq.server.aggregates[0].column, "dim@a#cnt");
}

TEST_F(TranslatorTest, PlainCountUsesRowCount) {
  Query q;
  q.table = "t";
  q.Count();
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.server.aggregates.size(), 1u);
  EXPECT_EQ(tq.server.aggregates[0].kind, ServerAggregate::Kind::kRowCount);
}

TEST_F(TranslatorTest, AvgSharesAggregatesWithSumAndCount) {
  Query q;
  q.table = "t";
  q.Sum("m").Count().Avg("m");
  const TranslatedQuery tq = Translate(q);
  // sum + count are deduplicated: exactly two server aggregates.
  EXPECT_EQ(tq.server.aggregates.size(), 2u);
  ASSERT_EQ(tq.client.outputs.size(), 3u);
  EXPECT_EQ(tq.client.outputs[2].kind, ClientOutput::Kind::kAvg);
  EXPECT_EQ(tq.client.outputs[2].arg0, tq.client.outputs[0].arg0);
  EXPECT_EQ(tq.client.outputs[2].arg1, tq.client.outputs[1].arg0);
}

TEST_F(TranslatorTest, VarianceSchedulesThreeAggregates) {
  Query q;
  q.table = "t";
  q.Variance("m");
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.server.aggregates.size(), 3u);
  EXPECT_EQ(tq.server.aggregates[0].column, "m#sq#ashe");
  EXPECT_EQ(tq.server.aggregates[1].column, "m#ashe");
  EXPECT_EQ(tq.server.aggregates[2].kind, ServerAggregate::Kind::kRowCount);
}

TEST_F(TranslatorTest, RangePredicateEncryptsOreConstant) {
  Query q;
  q.table = "t";
  q.Sum("m").Where("ts", CmpOp::kGe, int64_t{42});
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.server.predicates.size(), 1u);
  const ServerPredicate& sp = tq.server.predicates[0];
  EXPECT_EQ(sp.kind, ServerPredicate::Kind::kOreCmp);
  EXPECT_EQ(sp.column, "ts#ope");
  // The encrypted constant must compare correctly against encryptions.
  const Ore ore(keys_.DeriveColumnKey(ColumnKeyLabel("t", "ts#ope")));
  EXPECT_EQ(Ore::Compare(ore.Encrypt(42), sp.ore_operand).order, 0);
  EXPECT_EQ(Ore::Compare(ore.Encrypt(41), sp.ore_operand).order, -1);
}

TEST_F(TranslatorTest, MinMaxBindsOreAndCompanionColumns) {
  Query q;
  q.table = "t";
  q.Min("ts");
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.server.aggregates.size(), 1u);
  EXPECT_EQ(tq.server.aggregates[0].kind, ServerAggregate::Kind::kOreMin);
  EXPECT_EQ(tq.server.aggregates[0].column, "ts#ope");
  EXPECT_EQ(tq.server.aggregates[0].value_column, "ts#ashe");
}

TEST_F(TranslatorTest, GroupByPicksDetColumnAndDictionaryKind) {
  Query q;
  q.table = "t";
  q.Sum("m").GroupBy("grp");
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.server.group_by.size(), 1u);
  EXPECT_EQ(tq.server.group_by[0].column, "grp#det");
  ASSERT_EQ(tq.client.group_outputs.size(), 1u);
  EXPECT_EQ(tq.client.group_outputs[0].kind, ClientGroupOutput::Kind::kDetString);
}

TEST_F(TranslatorTest, GroupByDropsRangeEncoding) {
  Query q;
  q.table = "t";
  q.Sum("m").GroupBy("grp");
  const TranslatedQuery tq = Translate(q);
  EXPECT_FALSE(tq.server.idlist.use_range);
  Query global;
  global.table = "t";
  global.Sum("m");
  EXPECT_TRUE(Translate(global).server.idlist.use_range);
}

TEST_F(TranslatorTest, InflationOnlyWhenFewerGroupsThanWorkers) {
  Query q;
  q.table = "t";
  q.Sum("m").GroupBy("grp");
  q.expected_groups = 2;
  TranslatorOptions topts;
  topts.cluster_workers = 10;
  EXPECT_EQ(Translate(q, topts).server.inflation, 5u);
  q.expected_groups = 50;
  EXPECT_EQ(Translate(q, topts).server.inflation, 1u);
  q.expected_groups = 0;  // unknown: no inflation
  EXPECT_EQ(Translate(q, topts).server.inflation, 1u);
  q.expected_groups = 2;
  topts.enable_group_inflation = false;
  EXPECT_EQ(Translate(q, topts).server.inflation, 1u);
}

TEST_F(TranslatorTest, PlainColumnPredicatePassesThrough) {
  Query q;
  q.table = "t";
  q.Sum("m").Where("plain_col", CmpOp::kLt, int64_t{3});
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.server.predicates.size(), 1u);
  EXPECT_EQ(tq.server.predicates[0].kind, ServerPredicate::Kind::kPlainInt);
  EXPECT_EQ(tq.server.predicates[0].column, "plain_col");
}

TEST_F(TranslatorTest, AliasesPropagateToClientPlan) {
  Query q;
  q.table = "t";
  q.Sum("m", "custom_name");
  const TranslatedQuery tq = Translate(q);
  ASSERT_EQ(tq.client.outputs.size(), 1u);
  EXPECT_EQ(tq.client.outputs[0].alias, "custom_name");
}

}  // namespace
}  // namespace seabed
