// Adversarial edges of the two-round probe-and-prune path
// (src/seabed/probe.h):
//
//   * zero-match queries short-circuit round two entirely,
//   * all-match queries prune nothing (and still answer correctly),
//   * row-group summaries stay correct across Append — the stale-summary
//     trap: a probe that trusted pre-append summaries would prune groups
//     that now contain matches,
//   * the probe_used / row_groups_pruned stats invariants hold across
//     off/auto/forced, and kAuto's selectivity gate fires only when the
//     planner's estimate predicts a win.
//
// The ProbeForcedMiniFuzz suite at the bottom is the probe-forced subset of
// the cross-backend equivalence argument sized for the sanitizer CI job: it
// lives in the fast test tier (unlike the full `slow`-labeled fuzz suite),
// with the query count capped so ASan/UBSan runs stay cheap.
#include "src/seabed/probe.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/seabed/session.h"
#include "src/seabed/snapshot.h"

namespace seabed {
namespace {

std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

ClusterConfig TestClusterConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.job_overhead_seconds = 0;
  cfg.task_overhead_seconds = 0;
  return cfg;
}

// Clustered test data: 4000 rows in contiguous runs per segment value (the
// layout row-group pruning exists for — time- or tenant-partitioned data),
// with a monotone ts column so ORE range summaries prune too.
constexpr struct {
  const char* seg;
  size_t rows;
} kRuns[] = {{"a", 2000}, {"b", 1500}, {"c", 400}, {"d", 100}};

std::shared_ptr<Table> MakeClusteredTable() {
  auto table = std::make_shared<Table>("pt");
  auto seg = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto value = std::make_shared<Int64Column>();
  Rng rng(7);
  int64_t t = 0;
  for (const auto& run : kRuns) {
    for (size_t i = 0; i < run.rows; ++i) {
      seg->Append(run.seg);
      ts->Append(t++);
      value->Append(rng.Range(-50, 500));
    }
  }
  table->AddColumn("seg", seg);
  table->AddColumn("ts", ts);
  table->AddColumn("value", value);
  return table;
}

PlainSchema ClusteredSchema() {
  PlainSchema schema;
  schema.table_name = "pt";
  ValueDistribution dist;
  dist.values = {"a", "b", "c", "d"};
  dist.frequencies = {0.5, 0.375, 0.1, 0.025};
  schema.columns.push_back({"seg", ColumnType::kString, true, dist});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"value", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

std::vector<Query> ClusteredSamples() {
  std::vector<Query> samples;
  {
    // seg appears in GROUP BY too, so the planner gives it DET (SPLASHE
    // would swallow the filter into splayed columns — nothing to probe).
    Query q;
    q.table = "pt";
    q.Sum("value").Count();
    q.Where("seg", CmpOp::kEq, std::string("a"));
    q.GroupBy("seg");
    samples.push_back(q);
  }
  {
    Query q;
    q.table = "pt";
    q.Min("ts").Max("ts");
    q.Where("ts", CmpOp::kGe, int64_t{0});
    samples.push_back(q);
  }
  return samples;
}

SessionOptions ProbeSessionOptions(BackendKind backend, ProbeMode mode) {
  SessionOptions options;
  options.backend = backend;
  options.cluster = TestClusterConfig();
  options.planner.expected_rows = 4000;
  options.key_seed = 99;
  options.probe.mode = mode;
  options.probe.row_group_size = 256;
  return options;
}

std::shared_ptr<Table> MakeBatch(const std::string& seg_value, size_t rows, uint64_t seed) {
  auto batch = std::make_shared<Table>("pt");
  auto seg = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto value = std::make_shared<Int64Column>();
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    seg->Append(seg_value);
    ts->Append(static_cast<int64_t>(4000 + i));
    value->Append(rng.Range(0, 100));
  }
  batch->AddColumn("seg", seg);
  batch->AddColumn("ts", ts);
  batch->AddColumn("value", value);
  return batch;
}

// Satellite regression for the append-resync path: Refresh must re-compute
// the trailing *partial* group when an append lands inside it rather than
// only appending full new groups — a stale partial summary would keep
// pruning a group that now holds matches and silently drop rows.
TEST(RowGroupIndexTest, RefreshRecomputesThePartialLastGroupAfterMidGroupAppend) {
  auto v = std::make_shared<Int64Column>();
  for (int i = 0; i < 10; ++i) {
    v->Append(1);
  }
  Table table("t");
  table.AddColumn("v", v);

  RowGroupIndex index(8);  // groups [0,8) and the partial [8,10)
  index.Refresh(table);
  EXPECT_EQ(index.num_groups(), 2u);
  EXPECT_EQ(index.rows_summarized(), 10u);

  ServerPredicate pred;
  pred.kind = ServerPredicate::Kind::kPlainInt;
  pred.column = "v";
  pred.op = CmpOp::kEq;
  pred.int_operand = 5;
  ProbeSection probe;
  probe.predicates.push_back(pred);
  probe.prunable = true;
  EXPECT_TRUE(index.Prune(probe).surviving.empty());

  // Mid-group append: the new rows extend the partial group [8,10) to
  // [8,13) without starting a new one.
  for (int i = 0; i < 3; ++i) {
    v->Append(5);
  }
  index.Refresh(table);
  EXPECT_EQ(index.num_groups(), 2u);
  EXPECT_EQ(index.rows_summarized(), 13u);

  const RowGroupIndex::PruneResult pruned = index.Prune(probe);
  ASSERT_EQ(pruned.surviving.size(), 1u);
  EXPECT_EQ(pruned.surviving.front().begin, 8u);
  EXPECT_EQ(pruned.surviving.front().end, 13u);
  EXPECT_EQ(pruned.total_groups, 2u);
  EXPECT_EQ(pruned.pruned_groups, 1u);
}

std::shared_ptr<Table> MakeValueTable(size_t rows, int64_t value) {
  auto v = std::make_shared<Int64Column>();
  for (size_t i = 0; i < rows; ++i) {
    v->Append(value);
  }
  auto t = std::make_shared<Table>("t#enc");
  t->AddColumn("v", v);
  return t;
}

ProbeSection MakeEqProbe(int64_t operand) {
  ServerPredicate pred;
  pred.kind = ServerPredicate::Kind::kPlainInt;
  pred.column = "v";
  pred.op = CmpOp::kEq;
  pred.int_operand = operand;
  ProbeSection probe;
  probe.predicates.push_back(pred);
  probe.prunable = true;
  return probe;
}

// Regression for the table-swap staleness hole (formerly a server-registry
// reset): shard rebalancing re-encrypts a donor's remainder into a fresh,
// smaller table, and summaries built over the OLD object must not survive
// onto the replacement — if the replacement regrows PAST the old summarized
// count, stale summaries would keep pruning groups that now hold matches.
// With versioned snapshots the fix is structural: each fresh table object
// ships with a fresh VersionProbeIndex, so the old index (and its
// summaries) retires with the old version instead of being reset in place.
TEST(VersionProbeIndexTest, FreshIndexPerRebuiltTableDropsStaleSummaries) {
  const ProbeSection probe = MakeEqProbe(5);

  // Summaries built at 12 rows of value 1: everything prunes.
  const auto old_table = MakeValueTable(12, 1);
  VersionProbeIndex old_index;
  EXPECT_TRUE(old_index.Probe(*old_table, probe, 8).surviving.empty());
  EXPECT_EQ(old_index.builds(), 1u);

  // The rebalance shape: a 4-row replacement object with its own fresh
  // index, later grown past the old 12-row count with rows that DO match.
  const auto replacement = MakeValueTable(4, 1);
  VersionProbeIndex fresh_index;
  auto* v = static_cast<Int64Column*>(replacement->GetColumn("v").get());
  for (size_t i = 0; i < 8; ++i) {
    v->Append(5);
  }

  // The old index would report 12 rows summarized over the wrong object and
  // prune every group; the fresh one summarizes the replacement itself.
  const ServerProbeResult result = fresh_index.Probe(*replacement, probe, 8);
  EXPECT_EQ(result.total_groups, 2u);
  ASSERT_FALSE(result.surviving.empty());
  EXPECT_EQ(result.surviving.front().begin, 0u);
  EXPECT_EQ(result.surviving.back().end, 12u);
}

// Regression for the first-touch double-build race: two queries probing a
// freshly published version at the same group size used to both find the
// summaries missing and both pay the full summarization scan. The index
// builds under its own mutex now — whoever wins builds once, the racers
// find the summaries current and only prune. builds() is the witness.
TEST(VersionProbeIndexTest, ConcurrentFirstTouchProbesBuildExactlyOnce) {
  const auto table = MakeValueTable(4096, 1);
  const ProbeSection probe = MakeEqProbe(1);
  VersionProbeIndex index;

  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<size_t> mismatches{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const ServerProbeResult result = index.Probe(*table, probe, 256);
      if (result.total_groups != 16 || result.surviving.size() != 1) {
        mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0u);
  // The version is immutable, so exactly one probe may pay the build; a
  // double build is the regression.
  EXPECT_EQ(index.builds(), 1u);

  // A second group size is a separate lazy build on the same version.
  index.Probe(*table, probe, 512);
  EXPECT_EQ(index.builds(), 2u);
  index.Probe(*table, probe, 512);
  EXPECT_EQ(index.builds(), 2u);
}

class ProbeTest : public ::testing::Test {
 protected:
  ProbeTest()
      : plain_(ProbeSessionOptions(BackendKind::kPlain, ProbeMode::kOff)),
        seabed_(ProbeSessionOptions(BackendKind::kSeabed, ProbeMode::kForced)) {
    const auto table = MakeClusteredTable();
    plain_.Attach(CloneTable(*table), ClusteredSchema(), ClusteredSamples());
    seabed_.Attach(CloneTable(*table), ClusteredSchema(), ClusteredSamples());
  }

  std::vector<std::string> Reference(const Query& q) {
    return RowsAsStrings(plain_.Execute(q));
  }

  Session plain_;
  Session seabed_;  // probe forced, 256-row groups (4000 rows -> 16 groups)
};

TEST_F(ProbeTest, ZeroMatchQueriesShortCircuitRoundTwo) {
  Query q;
  q.table = "pt";
  q.Sum("value", "total").Count("n");
  q.Where("seg", CmpOp::kEq, std::string("nope"));

  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(q, &stats)), Reference(q));
  EXPECT_TRUE(stats.probe_used);
  EXPECT_GT(stats.row_groups_total, 0u);
  EXPECT_EQ(stats.row_groups_pruned, stats.row_groups_total);
  // Round two never ran: no scan job, no touched rows — only the probe.
  EXPECT_EQ(stats.job.num_tasks, 0u);
  EXPECT_EQ(stats.rows_touched, 0u);
  EXPECT_GT(stats.probe_seconds, 0.0);
}

TEST_F(ProbeTest, AllMatchQueriesPruneNothing) {
  Query q;
  q.table = "pt";
  q.Sum("value", "total");
  q.Where("ts", CmpOp::kGe, int64_t{0});

  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(q, &stats)), Reference(q));
  EXPECT_TRUE(stats.probe_used);
  EXPECT_EQ(stats.row_groups_pruned, 0u);
  EXPECT_EQ(stats.row_groups_total, 16u);
  EXPECT_EQ(stats.rows_touched, 4000u);
  EXPECT_GT(stats.job.num_tasks, 0u);
}

TEST_F(ProbeTest, SelectiveQueriesPruneMostGroupsAndStillMatch) {
  // seg='d' is the last 100 rows: at most two 256-row groups straddle it.
  Query q;
  q.table = "pt";
  q.Sum("value", "total").Count("n");
  q.Where("seg", CmpOp::kEq, std::string("d"));

  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(q, &stats)), Reference(q));
  EXPECT_TRUE(stats.probe_used);
  EXPECT_EQ(stats.row_groups_total, 16u);
  EXPECT_GE(stats.row_groups_pruned, 14u);
  EXPECT_EQ(stats.rows_touched, 100u);

  // An ORE range over the monotone ts column prunes via ciphertext min/max.
  Query range;
  range.table = "pt";
  range.Sum("value", "total");
  range.Where("ts", CmpOp::kLt, int64_t{300});
  QueryStats range_stats;
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(range, &range_stats)), Reference(range));
  EXPECT_TRUE(range_stats.probe_used);
  EXPECT_GE(range_stats.row_groups_pruned, 13u);
  EXPECT_EQ(range_stats.rows_touched, 300u);

  // Pruned scans agree on GROUP BY too (group keys live outside the probe).
  Query grouped = q;
  grouped.GroupBy("seg");
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(grouped)), Reference(grouped));
}

TEST_F(ProbeTest, SummariesStayCorrectAcrossAppend) {
  Query q;
  q.table = "pt";
  q.Sum("value", "total").Count("n");
  q.Where("seg", CmpOp::kEq, std::string("e"));

  // Before the append 'e' matches nothing and every group prunes.
  QueryStats before;
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(q, &before)), Reference(q));
  EXPECT_EQ(before.row_groups_pruned, before.row_groups_total);

  // Two odd-sized appends: the first leaves a partial trailing group, which
  // the second must re-summarize — a summary that went stale here would
  // keep pruning groups that now hold 'e' rows and silently drop them.
  for (uint64_t round = 0; round < 2; ++round) {
    const auto batch = MakeBatch("e", 90, 1000 + round);
    plain_.Append("pt", *batch);
    seabed_.Append("pt", *batch);
  }

  QueryStats after;
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(q, &after)), Reference(q));
  EXPECT_TRUE(after.probe_used);
  EXPECT_EQ(after.rows_touched, 180u);
  EXPECT_GT(after.row_groups_total, before.row_groups_total);
  EXPECT_LT(after.row_groups_pruned, after.row_groups_total);

  // Pre-append segments still answer correctly over the grown index.
  Query old_seg;
  old_seg.table = "pt";
  old_seg.Sum("value", "total");
  old_seg.Where("seg", CmpOp::kEq, std::string("d"));
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(old_seg)), Reference(old_seg));
}

TEST_F(ProbeTest, StatsInvariantsAcrossModes) {
  Query q;
  q.table = "pt";
  q.Sum("value", "total");
  q.Where("seg", CmpOp::kEq, std::string("c"));

  ProbeOptions popts = seabed_.probe_options();

  popts.mode = ProbeMode::kOff;
  seabed_.set_probe_options(popts);
  QueryStats off;
  const auto off_rows = RowsAsStrings(seabed_.Execute(q, &off));
  EXPECT_FALSE(off.probe_used);
  EXPECT_EQ(off.probe_seconds, 0.0);
  EXPECT_EQ(off.row_groups_total, 0u);
  EXPECT_EQ(off.row_groups_pruned, 0u);

  popts.mode = ProbeMode::kForced;
  seabed_.set_probe_options(popts);
  QueryStats forced;
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(q, &forced)), off_rows);
  EXPECT_TRUE(forced.probe_used);
  EXPECT_LE(forced.row_groups_pruned, forced.row_groups_total);
  // Pruning only skips groups with no match, so the predicate-surviving row
  // count is identical with and without the probe.
  EXPECT_EQ(forced.rows_touched, off.rows_touched);

  // A query with nothing to prune never probes, even when forced.
  Query unfiltered;
  unfiltered.table = "pt";
  unfiltered.Sum("value", "total");
  QueryStats none;
  seabed_.Execute(unfiltered, &none);
  EXPECT_FALSE(none.probe_used);
}

TEST_F(ProbeTest, AutoModeGatesOnSelectivityEstimate) {
  ProbeOptions popts = seabed_.probe_options();
  popts.mode = ProbeMode::kAuto;
  popts.auto_selectivity_threshold = 0.25;
  seabed_.set_probe_options(popts);

  auto run = [&](const Query& q) {
    QueryStats stats;
    EXPECT_EQ(RowsAsStrings(seabed_.Execute(q, &stats)), Reference(q));
    return stats;
  };

  // seg='d' has distribution frequency 0.025 <= 0.25: probe.
  Query selective;
  selective.table = "pt";
  selective.Sum("value", "total");
  selective.Where("seg", CmpOp::kEq, std::string("d"));
  EXPECT_TRUE(run(selective).probe_used);

  // seg='a' has frequency 0.5: the estimate predicts no win, decline.
  Query broad = selective;
  broad.filters[0].operand = std::string("a");
  EXPECT_FALSE(run(broad).probe_used);

  // ts has no distribution, so the range default (0.5) declines too...
  Query range;
  range.table = "pt";
  range.Sum("value", "total");
  range.Where("ts", CmpOp::kGe, int64_t{3900});
  EXPECT_FALSE(run(range).probe_used);

  // ...unless the client hints the two-round path explicitly.
  range.needs_two_round_trips = true;
  EXPECT_TRUE(run(range).probe_used);
}

// --- probe-forced mini-fuzz (the sanitize job's cross-backend subset) --------

class ProbeForcedMiniFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProbeForcedMiniFuzz, ProbedBackendsMatchPlainWithAppendsInterleaved) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  const auto table = MakeClusteredTable();
  const PlainSchema schema = ClusteredSchema();
  const std::vector<Query> samples = ClusteredSamples();

  struct Backend {
    std::string label;
    std::unique_ptr<Session> session;
  };
  std::vector<Backend> backends;
  backends.push_back(
      {"plain", std::make_unique<Session>(ProbeSessionOptions(BackendKind::kPlain,
                                                              ProbeMode::kOff))});
  for (const ProbeMode mode : {ProbeMode::kOff, ProbeMode::kAuto, ProbeMode::kForced}) {
    backends.push_back(
        {std::string("seabed-") + ProbeModeName(mode),
         std::make_unique<Session>(ProbeSessionOptions(BackendKind::kSeabed, mode))});
  }
  {
    SessionOptions options = ProbeSessionOptions(BackendKind::kShardedSeabed, ProbeMode::kForced);
    options.shards = 3;
    backends.push_back({"sharded-forced", std::make_unique<Session>(std::move(options))});
  }
  {
    // Rebalancing in the fast tier, so the sanitizer job covers row-group
    // migration: a tight ratio + small groups makes the interleaved appends
    // below actually trigger moves.
    SessionOptions options = ProbeSessionOptions(BackendKind::kShardedSeabed, ProbeMode::kForced);
    options.shards = 3;
    options.shards_rebalance.enabled = true;
    options.shards_rebalance.max_skew_ratio = 1.2;
    options.shards_rebalance.row_group_size = 64;
    backends.push_back({"sharded-rebal", std::make_unique<Session>(std::move(options))});
  }
  for (Backend& b : backends) {
    b.session->Attach(CloneTable(*table), schema, samples);
  }

  const char* segs[] = {"a", "b", "c", "d", "e"};
  for (int trial = 0; trial < 10; ++trial) {
    // The Execute API gives appends no seam between round one and round two
    // of a single query, so the adversarial interleaving is append-between-
    // queries: stale summaries from the pre-append probes must not leak
    // into post-append answers.
    if (trial == 4 || trial == 7) {
      const auto batch = MakeBatch(segs[rng.Below(5)], 30 + rng.Below(80), seed * 10 + trial);
      for (Backend& b : backends) {
        b.session->Append("pt", *batch);
      }
    }

    Query q;
    q.table = "pt";
    const size_t num_aggs = 1 + rng.Below(2);
    for (size_t a = 0; a < num_aggs; ++a) {
      const std::string alias = "agg" + std::to_string(a);
      switch (rng.Below(3)) {
        case 0:
          q.Sum("value", alias);
          break;
        case 1:
          q.Count(alias);
          break;
        default:
          q.Avg("value", alias);
          break;
      }
    }
    if (rng.Chance(0.7)) {
      q.Where("seg", CmpOp::kEq, std::string(segs[rng.Below(5)]));
    }
    if (rng.Chance(0.5)) {
      const int64_t bound = static_cast<int64_t>(rng.Below(4200));
      q.Where("ts", rng.Chance(0.5) ? CmpOp::kGe : CmpOp::kLt, bound);
    }
    if (rng.Chance(0.3)) {
      q.GroupBy("seg");
    }
    q.needs_two_round_trips = rng.Chance(0.2);

    SCOPED_TRACE("seed=" + std::to_string(seed) + " trial=" + std::to_string(trial));
    const std::vector<std::string> reference =
        RowsAsStrings(backends.front().session->Execute(q, nullptr));
    for (size_t b = 1; b < backends.size(); ++b) {
      SCOPED_TRACE("backend=" + backends[b].label);
      EXPECT_EQ(RowsAsStrings(backends[b].session->Execute(q, nullptr)), reference);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbeForcedMiniFuzz, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace seabed
