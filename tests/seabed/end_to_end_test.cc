// End-to-end equivalence: for every supported query shape, the Seabed
// pipeline (plan → encrypt → translate → encrypted execution → decrypt) and
// the Paillier baseline must produce exactly the answers of the plaintext
// executor. This is the correctness contract of the whole system.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/query/plain_executor.h"
#include "src/seabed/client.h"
#include "src/seabed/paillier_baseline.h"
#include "src/seabed/planner.h"
#include "src/seabed/server.h"

namespace seabed {
namespace {

ClusterConfig TestClusterConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.job_overhead_seconds = 0;
  cfg.task_overhead_seconds = 0;
  return cfg;
}

// Canonicalization: the full row as one string; compare sorted sets.
std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() : cluster_(TestClusterConfig()), keys_(ClientKeys::FromSeed(1234)) {
    // Schema: one SPLASHE dimension (country), one DET group dimension
    // (store), one OPE dimension (ts), measures salary & bonus.
    schema_.table_name = "emp";
    ValueDistribution country;
    country.values = {"usa", "canada", "india", "chile", "iraq"};
    country.frequencies = {0.42, 0.38, 0.08, 0.07, 0.05};
    schema_.columns.push_back({"country", ColumnType::kString, true, country});
    schema_.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
    schema_.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"bonus", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"dept", ColumnType::kString, false, std::nullopt});

    table_ = std::make_shared<Table>("emp");
    auto country_col = std::make_shared<StringColumn>();
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    auto bonus_col = std::make_shared<Int64Column>();
    auto dept_col = std::make_shared<StringColumn>();
    Rng rng(77);
    const char* countries[] = {"usa", "canada", "india", "chile", "iraq"};
    const double cdf[] = {0.42, 0.80, 0.88, 0.95, 1.0};
    const char* stores[] = {"s1", "s2", "s3"};
    const char* depts[] = {"eng", "sales"};
    for (int i = 0; i < 4000; ++i) {
      const double u = rng.NextDouble();
      int pick = 0;
      while (u > cdf[pick]) {
        ++pick;
      }
      country_col->Append(countries[pick]);
      store_col->Append(stores[rng.Below(3)]);
      ts_col->Append(static_cast<int64_t>(rng.Below(1000)));
      salary_col->Append(rng.Range(-1000, 100000));  // negatives exercised too
      bonus_col->Append(rng.Range(0, 5000));
      dept_col->Append(depts[rng.Below(2)]);
    }
    table_->AddColumn("country", country_col);
    table_->AddColumn("store", store_col);
    table_->AddColumn("ts", ts_col);
    table_->AddColumn("salary", salary_col);
    table_->AddColumn("bonus", bonus_col);
    table_->AddColumn("dept", dept_col);

    PlannerOptions options;
    options.expected_rows = 4000;
    plan_ = PlanEncryption(schema_, SampleQueries(), options);

    const Encryptor encryptor(keys_);
    db_ = encryptor.Encrypt(*table_, schema_, plan_);
    server_.RegisterTable(db_.table);
  }

  static std::vector<Query> SampleQueries() {
    std::vector<Query> queries;
    {
      Query q;
      q.table = "emp";
      q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("india"));
      queries.push_back(q);
    }
    {
      Query q;
      q.table = "emp";
      q.Avg("salary").Variance("bonus").Where("ts", CmpOp::kGe, int64_t{500});
      queries.push_back(q);
    }
    {
      Query q;
      q.table = "emp";
      q.Sum("bonus").Min("ts").Max("ts").GroupBy("store");
      queries.push_back(q);
    }
    return queries;
  }

  ResultSet RunSeabed(const Query& q, TranslatorOptions topts = {}) {
    topts.cluster_workers = cluster_.num_workers();
    const Translator translator(db_, keys_);
    const TranslatedQuery tq = translator.Translate(q, topts);
    const EncryptedResponse response = server_.Execute(tq.server, cluster_);
    const Client client(db_, keys_);
    return client.Decrypt(response, tq, cluster_);
  }

  void ExpectMatchesPlain(const Query& q, TranslatorOptions topts = {}) {
    const ResultSet plain = ExecutePlain(*table_, q, cluster_);
    const ResultSet enc = RunSeabed(q, topts);
    EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
  }

  Cluster cluster_;
  ClientKeys keys_;
  PlainSchema schema_;
  std::shared_ptr<Table> table_;
  EncryptionPlan plan_;
  EncryptedDatabase db_;
  Server server_;
};

TEST_F(EndToEndTest, GlobalSum) {
  Query q;
  q.table = "emp";
  q.Sum("salary");
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, GlobalCount) {
  Query q;
  q.table = "emp";
  q.Count();
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SumWithPlainFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("dept", CmpOp::kEq, std::string("eng"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SplasheFrequentValueFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("usa"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SplasheInfrequentValueFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("chile"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SplasheAvg) {
  Query q;
  q.table = "emp";
  q.Avg("salary").Where("country", CmpOp::kEq, std::string("iraq"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, OreRangeFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count().Where("ts", CmpOp::kGe, int64_t{500});
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, OreRangeWindow) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").Where("ts", CmpOp::kGe, int64_t{250}).Where("ts", CmpOp::kLt, int64_t{750});
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, DetGroupBy) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").Count().GroupBy("store");
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, GroupByWithInflation) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").Count().GroupBy("store");
  q.expected_groups = 3;  // fewer than the 4 workers -> inflation kicks in
  TranslatorOptions topts;
  topts.enable_group_inflation = true;
  ExpectMatchesPlain(q, topts);
}

TEST_F(EndToEndTest, InflationPlanActuallyInflates) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").GroupBy("store");
  q.expected_groups = 3;
  TranslatorOptions topts;
  topts.cluster_workers = 4;
  const Translator translator(db_, keys_);
  const TranslatedQuery tq = translator.Translate(q, topts);
  EXPECT_GT(tq.server.inflation, 1u);
  const EncryptedResponse response = server_.Execute(tq.server, cluster_);
  EXPECT_GT(response.groups.size(), 3u);  // inflated on the wire
  const Client client(db_, keys_);
  const ResultSet r = client.Decrypt(response, tq, cluster_);
  EXPECT_EQ(r.rows.size(), 3u);  // deflated at the client
}

TEST_F(EndToEndTest, VarianceAndStddev) {
  Query q;
  q.table = "emp";
  q.Variance("bonus");
  q.aggregates.push_back({AggFunc::kStddev, "bonus", "sd_bonus"});
  q.Where("ts", CmpOp::kGe, int64_t{500});
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, MinMaxViaOre) {
  Query q;
  q.table = "emp";
  q.Min("ts").Max("ts").Where("dept", CmpOp::kEq, std::string("sales"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, CombinedSplasheAndPlainFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count();
  q.Where("country", CmpOp::kEq, std::string("usa"));
  q.Where("dept", CmpOp::kEq, std::string("eng"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SplasheFilterWithGroupBy) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count();
  q.Where("country", CmpOp::kEq, std::string("india"));
  q.GroupBy("store");
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, MultipleAggregatesOneQuery) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Sum("bonus").Count().Avg("bonus");
  q.GroupBy("store");
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, EmptyResult) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("ts", CmpOp::kGt, int64_t{99999});
  // Plain yields one row (sum over nothing = 0); Seabed's server finds no
  // matching rows and returns an all-zero aggregate as well.
  const ResultSet plain = ExecutePlain(*table_, q, cluster_);
  const ResultSet enc = RunSeabed(q);
  ASSERT_EQ(plain.rows.size(), 1u);
  ASSERT_EQ(enc.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(enc.rows[0][0]), std::get<int64_t>(plain.rows[0][0]));
}

TEST_F(EndToEndTest, DriverSideCompressionMatches) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("ts", CmpOp::kLt, int64_t{300});
  TranslatorOptions topts;
  topts.worker_side_compression = false;
  ExpectMatchesPlain(q, topts);
}

TEST_F(EndToEndTest, AllCodecOptionsMatch) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("ts", CmpOp::kGe, int64_t{100});
  for (bool range : {false, true}) {
    for (auto compression : {IdListCompression::kNone, IdListCompression::kFast,
                             IdListCompression::kCompact}) {
      TranslatorOptions topts;
      topts.idlist.use_range = range;
      topts.idlist.compression = compression;
      ExpectMatchesPlain(q, topts);
    }
  }
}

TEST_F(EndToEndTest, ResponseCarriesLatencyBreakdown) {
  Query q;
  q.table = "emp";
  q.Sum("salary");
  const ResultSet r = RunSeabed(q);
  EXPECT_GT(r.result_bytes, 0u);
  EXPECT_GT(r.network_seconds, 0.0);
  EXPECT_GE(r.client_seconds, 0.0);
}

TEST_F(EndToEndTest, PrfCallCountIsTracked) {
  Query q;
  q.table = "emp";
  q.Sum("salary");
  const Translator translator(db_, keys_);
  TranslatorOptions topts;
  topts.cluster_workers = cluster_.num_workers();
  const TranslatedQuery tq = translator.Translate(q, topts);
  const EncryptedResponse response = server_.Execute(tq.server, cluster_);
  const Client client(db_, keys_);
  client.Decrypt(response, tq, cluster_);
  // Selectivity 100% with 4 partitions: one contiguous run per partition and
  // worker-side compression -> at most 2 PRF calls per partition blob.
  EXPECT_GT(client.last_prf_calls(), 0u);
  EXPECT_LE(client.last_prf_calls(), 8u);
}

// --- Paillier baseline equivalence ------------------------------------------

class PaillierEndToEndTest : public EndToEndTest {
 protected:
  PaillierEndToEndTest() : rng_(55), paillier_(Paillier::GenerateKey(rng_, 256)) {
    const Encryptor encryptor(keys_);
    baseline_ = encryptor.EncryptPaillierBaseline(*table_, schema_, plan_, paillier_, rng_);
  }

  ResultSet RunPaillier(const Query& q) {
    TranslatorOptions topts;
    topts.cluster_workers = cluster_.num_workers();
    topts.enable_group_inflation = false;
    const Translator translator(baseline_, keys_);
    const TranslatedQuery tq = translator.Translate(q, topts);
    const PaillierBaseline exec(paillier_);
    return exec.Execute(baseline_, tq, cluster_);
  }

  Rng rng_;
  Paillier paillier_;
  EncryptedDatabase baseline_;
};

TEST_F(PaillierEndToEndTest, GlobalSumMatchesPlain) {
  Query q;
  q.table = "emp";
  q.Sum("salary");
  const ResultSet plain = ExecutePlain(*table_, q, cluster_);
  const ResultSet enc = RunPaillier(q);
  EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
}

TEST_F(PaillierEndToEndTest, DetFilterMatchesPlain) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("india"));
  const ResultSet plain = ExecutePlain(*table_, q, cluster_);
  const ResultSet enc = RunPaillier(q);
  EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
}

TEST_F(PaillierEndToEndTest, GroupByMatchesPlain) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").Count().GroupBy("store");
  const ResultSet plain = ExecutePlain(*table_, q, cluster_);
  const ResultSet enc = RunPaillier(q);
  EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
}

TEST_F(PaillierEndToEndTest, OreFilterMatchesPlain) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("ts", CmpOp::kGe, int64_t{800});
  const ResultSet plain = ExecutePlain(*table_, q, cluster_);
  const ResultSet enc = RunPaillier(q);
  EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
}

}  // namespace
}  // namespace seabed
