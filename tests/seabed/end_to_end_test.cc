// End-to-end equivalence: for every supported query shape, the Seabed
// pipeline (plan → encrypt → translate → encrypted execution → decrypt) and
// the Paillier baseline must produce exactly the answers of the plaintext
// executor. This is the correctness contract of the whole system. Everything
// runs through the Session facade; the few tests that inspect translator or
// server internals drop down to the component APIs on the session's state.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/query/plain_executor.h"
#include "src/seabed/client.h"
#include "src/seabed/planner.h"
#include "src/seabed/server.h"
#include "src/seabed/session.h"

namespace seabed {
namespace {

ClusterConfig TestClusterConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.job_overhead_seconds = 0;
  cfg.task_overhead_seconds = 0;
  return cfg;
}

// Canonicalization: the full row as one string; compare sorted sets.
std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() : session_(SeabedOptions()) {
    // Schema: one SPLASHE dimension (country), one DET group dimension
    // (store), one OPE dimension (ts), measures salary & bonus.
    schema_.table_name = "emp";
    ValueDistribution country;
    country.values = {"usa", "canada", "india", "chile", "iraq"};
    country.frequencies = {0.42, 0.38, 0.08, 0.07, 0.05};
    schema_.columns.push_back({"country", ColumnType::kString, true, country});
    schema_.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
    schema_.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"bonus", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"dept", ColumnType::kString, false, std::nullopt});

    table_ = std::make_shared<Table>("emp");
    auto country_col = std::make_shared<StringColumn>();
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    auto bonus_col = std::make_shared<Int64Column>();
    auto dept_col = std::make_shared<StringColumn>();
    Rng rng(77);
    const char* countries[] = {"usa", "canada", "india", "chile", "iraq"};
    const double cdf[] = {0.42, 0.80, 0.88, 0.95, 1.0};
    const char* stores[] = {"s1", "s2", "s3"};
    const char* depts[] = {"eng", "sales"};
    for (int i = 0; i < 4000; ++i) {
      const double u = rng.NextDouble();
      int pick = 0;
      while (u > cdf[pick]) {
        ++pick;
      }
      country_col->Append(countries[pick]);
      store_col->Append(stores[rng.Below(3)]);
      ts_col->Append(static_cast<int64_t>(rng.Below(1000)));
      salary_col->Append(rng.Range(-1000, 100000));  // negatives exercised too
      bonus_col->Append(rng.Range(0, 5000));
      dept_col->Append(depts[rng.Below(2)]);
    }
    table_->AddColumn("country", country_col);
    table_->AddColumn("store", store_col);
    table_->AddColumn("ts", ts_col);
    table_->AddColumn("salary", salary_col);
    table_->AddColumn("bonus", bonus_col);
    table_->AddColumn("dept", dept_col);

    session_.Attach(table_, schema_, SampleQueries());
  }

  static SessionOptions SeabedOptions() {
    SessionOptions options;
    options.backend = BackendKind::kSeabed;
    options.cluster = TestClusterConfig();
    options.planner.expected_rows = 4000;
    options.key_seed = 1234;
    return options;
  }

  static std::vector<Query> SampleQueries() {
    std::vector<Query> queries;
    {
      Query q;
      q.table = "emp";
      q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("india"));
      queries.push_back(q);
    }
    {
      Query q;
      q.table = "emp";
      q.Avg("salary").Variance("bonus").Where("ts", CmpOp::kGe, int64_t{500});
      queries.push_back(q);
    }
    {
      Query q;
      q.table = "emp";
      q.Sum("bonus").Min("ts").Max("ts").GroupBy("store");
      queries.push_back(q);
    }
    return queries;
  }

  ResultSet RunSeabed(const Query& q, TranslatorOptions topts = {},
                      QueryStats* stats = nullptr) {
    session_.set_translator_options(topts);
    return session_.Execute(q, stats);
  }

  void ExpectMatchesPlain(const Query& q, TranslatorOptions topts = {}) {
    const ResultSet plain = ExecutePlain(*table_, q, session_.cluster(), nullptr, nullptr);
    const ResultSet enc = RunSeabed(q, topts);
    EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
  }

  Session session_;
  PlainSchema schema_;
  std::shared_ptr<Table> table_;
};

TEST_F(EndToEndTest, GlobalSum) {
  Query q;
  q.table = "emp";
  q.Sum("salary");
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, GlobalCount) {
  Query q;
  q.table = "emp";
  q.Count();
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SumWithPlainFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("dept", CmpOp::kEq, std::string("eng"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SplasheFrequentValueFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("usa"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SplasheInfrequentValueFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("chile"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SplasheAvg) {
  Query q;
  q.table = "emp";
  q.Avg("salary").Where("country", CmpOp::kEq, std::string("iraq"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, OreRangeFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count().Where("ts", CmpOp::kGe, int64_t{500});
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, OreRangeWindow) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").Where("ts", CmpOp::kGe, int64_t{250}).Where("ts", CmpOp::kLt, int64_t{750});
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, DetGroupBy) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").Count().GroupBy("store");
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, GroupByWithInflation) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").Count().GroupBy("store");
  q.expected_groups = 3;  // fewer than the 4 workers -> inflation kicks in
  TranslatorOptions topts;
  topts.enable_group_inflation = true;
  ExpectMatchesPlain(q, topts);
}

TEST_F(EndToEndTest, InflationPlanActuallyInflates) {
  // Inspects the translated plan and raw server response, so this test talks
  // to the components directly, over the session's encrypted state.
  Query q;
  q.table = "emp";
  q.Sum("bonus").GroupBy("store");
  q.expected_groups = 3;
  TranslatorOptions topts;
  topts.cluster_workers = 4;
  const EncryptedDatabase& db = session_.encrypted_database("emp");
  const Translator translator(db, session_.keys());
  const TranslatedQuery tq = translator.Translate(q, topts);
  EXPECT_GT(tq.server.inflation, 1u);
  const Server& server = static_cast<SeabedBackend&>(session_.executor()).server();
  const EncryptedResponse response =
      server.Execute(tq.server, session_.cluster(), db.table.get(), nullptr);
  EXPECT_GT(response.groups.size(), 3u);  // inflated on the wire
  const Client client(db, session_.keys());
  const ResultSet r = client.Decrypt(response, tq, session_.cluster(), nullptr, nullptr);
  EXPECT_EQ(r.rows.size(), 3u);  // deflated at the client
}

TEST_F(EndToEndTest, VarianceAndStddev) {
  Query q;
  q.table = "emp";
  q.Variance("bonus");
  q.aggregates.push_back({AggFunc::kStddev, "bonus", "sd_bonus"});
  q.Where("ts", CmpOp::kGe, int64_t{500});
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, MinMaxViaOre) {
  Query q;
  q.table = "emp";
  q.Min("ts").Max("ts").Where("dept", CmpOp::kEq, std::string("sales"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, CombinedSplasheAndPlainFilter) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count();
  q.Where("country", CmpOp::kEq, std::string("usa"));
  q.Where("dept", CmpOp::kEq, std::string("eng"));
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, SplasheFilterWithGroupBy) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count();
  q.Where("country", CmpOp::kEq, std::string("india"));
  q.GroupBy("store");
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, MultipleAggregatesOneQuery) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Sum("bonus").Count().Avg("bonus");
  q.GroupBy("store");
  ExpectMatchesPlain(q);
}

TEST_F(EndToEndTest, EmptyResult) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("ts", CmpOp::kGt, int64_t{99999});
  // Plain yields one row (sum over nothing = 0); Seabed's server finds no
  // matching rows and returns an all-zero aggregate as well.
  const ResultSet plain = ExecutePlain(*table_, q, session_.cluster(), nullptr, nullptr);
  const ResultSet enc = RunSeabed(q);
  ASSERT_EQ(plain.rows.size(), 1u);
  ASSERT_EQ(enc.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(enc.rows[0][0]), std::get<int64_t>(plain.rows[0][0]));
}

TEST_F(EndToEndTest, DriverSideCompressionMatches) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("ts", CmpOp::kLt, int64_t{300});
  TranslatorOptions topts;
  topts.worker_side_compression = false;
  ExpectMatchesPlain(q, topts);
}

TEST_F(EndToEndTest, AllCodecOptionsMatch) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("ts", CmpOp::kGe, int64_t{100});
  for (bool range : {false, true}) {
    for (auto compression : {IdListCompression::kNone, IdListCompression::kFast,
                             IdListCompression::kCompact}) {
      TranslatorOptions topts;
      topts.idlist.use_range = range;
      topts.idlist.compression = compression;
      ExpectMatchesPlain(q, topts);
    }
  }
}

TEST_F(EndToEndTest, StatsCarryLatencyBreakdown) {
  Query q;
  q.table = "emp";
  q.Sum("salary");
  QueryStats stats;
  RunSeabed(q, {}, &stats);
  EXPECT_GT(stats.result_bytes, 0u);
  EXPECT_GT(stats.network_seconds, 0.0);
  EXPECT_GE(stats.client_seconds, 0.0);
  EXPECT_EQ(stats.backend, "seabed");
}

TEST_F(EndToEndTest, PrfCallCountIsTracked) {
  Query q;
  q.table = "emp";
  q.Sum("salary");
  QueryStats stats;
  RunSeabed(q, {}, &stats);
  // Selectivity 100% with 4 partitions: one contiguous run per partition and
  // worker-side compression -> at most 2 PRF calls per partition blob.
  EXPECT_GT(stats.prf_calls, 0u);
  EXPECT_LE(stats.prf_calls, 8u);
}

// --- Paillier baseline equivalence ------------------------------------------

class PaillierEndToEndTest : public EndToEndTest {
 protected:
  PaillierEndToEndTest() : baseline_(PaillierOptions()) {
    baseline_.Attach(table_, schema_, SampleQueries());
  }

  static SessionOptions PaillierOptions() {
    SessionOptions options = SeabedOptions();
    options.backend = BackendKind::kPaillier;
    options.paillier.modulus_bits = 256;
    options.paillier.seed = 55;
    return options;
  }

  ResultSet RunPaillier(const Query& q) { return baseline_.Execute(q); }

  Session baseline_;
};

TEST_F(PaillierEndToEndTest, GlobalSumMatchesPlain) {
  Query q;
  q.table = "emp";
  q.Sum("salary");
  const ResultSet plain = ExecutePlain(*table_, q, session_.cluster(), nullptr, nullptr);
  const ResultSet enc = RunPaillier(q);
  EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
}

TEST_F(PaillierEndToEndTest, DetFilterMatchesPlain) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("india"));
  const ResultSet plain = ExecutePlain(*table_, q, session_.cluster(), nullptr, nullptr);
  const ResultSet enc = RunPaillier(q);
  EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
}

TEST_F(PaillierEndToEndTest, GroupByMatchesPlain) {
  Query q;
  q.table = "emp";
  q.Sum("bonus").Count().GroupBy("store");
  const ResultSet plain = ExecutePlain(*table_, q, session_.cluster(), nullptr, nullptr);
  const ResultSet enc = RunPaillier(q);
  EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
}

TEST_F(PaillierEndToEndTest, OreFilterMatchesPlain) {
  Query q;
  q.table = "emp";
  q.Sum("salary").Where("ts", CmpOp::kGe, int64_t{800});
  const ResultSet plain = ExecutePlain(*table_, q, session_.cluster(), nullptr, nullptr);
  const ResultSet enc = RunPaillier(q);
  EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
}

}  // namespace
}  // namespace seabed
